package core

import (
	"strings"
	"testing"

	"instantcheck/internal/mem"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

// toy is a closure-driven test program.
type toy struct {
	nt     int
	setup  func(*sim.Thread)
	worker func(*sim.Thread)
}

func (p *toy) Name() string { return "toy" }
func (p *toy) Threads() int { return p.nt }
func (p *toy) Setup(t *sim.Thread) {
	if p.setup != nil {
		p.setup(t)
	}
}
func (p *toy) Worker(t *sim.Thread) {
	if p.worker != nil {
		p.worker(t)
	}
}

// detBuilder returns a fresh deterministic program: disjoint writes, one
// barrier.
func detBuilder() Builder {
	return func() sim.Program {
		p := &toy{nt: 2}
		var arr uint64
		var bar *sched.Barrier
		p.setup = func(t *sim.Thread) {
			arr = t.AllocStatic("static:arr", 8, mem.KindWord)
			bar = t.Machine().NewBarrier("b")
		}
		p.worker = func(t *sim.Thread) {
			for i := 0; i < 4; i++ {
				t.Store(arr+uint64(t.TID()*4+i)*8, uint64(t.TID()*100+i))
			}
			t.BarrierWait(bar)
		}
		return p
	}
}

// racyBuilder returns a program whose final state depends on the schedule:
// last writer wins on a shared word.
func racyBuilder() Builder {
	return func() sim.Program {
		p := &toy{nt: 2}
		var w uint64
		p.setup = func(t *sim.Thread) {
			w = t.AllocStatic("static:w", 1, mem.KindWord)
		}
		p.worker = func(t *sim.Thread) {
			for i := 0; i < 5; i++ {
				t.Store(w, uint64(t.TID())+1)
				t.Compute(3)
			}
		}
		return p
	}
}

func testCampaign() Campaign {
	return Campaign{Runs: 10, Threads: 2, BaseScheduleSeed: 50}
}

// TestDeterministicVerdict checks a clean program gets a clean report.
func TestDeterministicVerdict(t *testing.T) {
	rep, err := testCampaign().Check(detBuilder())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deterministic() {
		t.Fatalf("ndet points: %d", rep.NDetPoints)
	}
	if rep.Points() != 2 { // barrier + end
		t.Errorf("points = %d", rep.Points())
	}
	if rep.FirstNDetRun != 0 {
		t.Errorf("FirstNDetRun = %d", rep.FirstNDetRun)
	}
	if !rep.DetAtEnd || rep.FirstNDetPoint() != -1 {
		t.Error("end verdicts")
	}
	for _, s := range rep.Stats {
		if len(s.Distribution) != 1 || s.Distribution[0] != 10 {
			t.Errorf("distribution %v", s.Distribution)
		}
	}
	groups := rep.DistGroups()
	if len(groups) != 1 || groups[0].Checkpoints != 2 {
		t.Errorf("groups = %+v", groups)
	}
	if len(rep.NDetDistGroups()) != 0 {
		t.Error("spurious ndet groups")
	}
}

// TestNondeterministicVerdict checks a racy program is flagged quickly.
func TestNondeterministicVerdict(t *testing.T) {
	rep, err := testCampaign().Check(racyBuilder())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deterministic() {
		t.Fatal("race not detected")
	}
	if rep.FirstNDetRun < 2 || rep.FirstNDetRun > 4 {
		t.Errorf("FirstNDetRun = %d", rep.FirstNDetRun)
	}
	if rep.DetAtEnd {
		t.Error("end should be nondeterministic")
	}
	sum := 0
	for _, g := range rep.NDetDistGroups() {
		sum += g.Checkpoints
	}
	if sum != rep.NDetPoints {
		t.Errorf("group sum %d != ndet points %d", sum, rep.NDetPoints)
	}
}

// TestOutputDeterminismPerStream checks §4.3 across descriptors: a racy
// write ORDER on one stream makes the output nondeterministic even though
// the memory state stays deterministic; a fixed order is deterministic.
func TestOutputDeterminismPerStream(t *testing.T) {
	build := func(racy bool) Builder {
		return func() sim.Program {
			p := &toy{nt: 2}
			p.worker = func(t *sim.Thread) {
				if !racy && t.TID() == 1 {
					// Fixed order: thread 1 defers to a flag... simply:
					// only thread 0 writes.
					return
				}
				t.WriteFd(7, []byte{byte(t.TID() + 'a')})
			}
			return p
		}
	}
	det, err := testCampaign().Check(build(false))
	if err != nil {
		t.Fatal(err)
	}
	if det.OutputDistinct != 1 {
		t.Errorf("single-writer output distinct = %d", det.OutputDistinct)
	}
	racy, err := testCampaign().Check(build(true))
	if err != nil {
		t.Fatal(err)
	}
	if racy.OutputDistinct < 2 {
		t.Errorf("racy write order not visible in output hash (distinct=%d)", racy.OutputDistinct)
	}
	if !racy.Deterministic() {
		t.Error("memory state should still be deterministic")
	}
}

// TestDistKey pins the distribution formatting of Figures 5/8.
func TestDistKey(t *testing.T) {
	s := CheckpointStat{Distribution: []int{16, 11, 3}}
	if s.DistKey() != "16/11/3" {
		t.Errorf("key = %q", s.DistKey())
	}
}

// TestCharacterizeClasses runs the Table 1 taxonomy on three toy programs
// engineered into the three non-bit classes.
func TestCharacterizeClasses(t *testing.T) {
	// FP class: racy-order locked FP accumulation.
	fpBuilder := func() sim.Program {
		p := &toy{nt: 2}
		var acc uint64
		var mu *sched.Mutex
		p.setup = func(t *sim.Thread) {
			acc = t.AllocStatic("static:acc", 1, mem.KindFloat)
			mu = t.Machine().NewMutex("acc")
		}
		p.worker = func(t *sim.Thread) {
			for i := 0; i < 6; i++ {
				t.Lock(mu)
				v := t.LoadF(acc)
				t.StoreF(acc, v+0.1*float64(t.TID()*6+i+1))
				t.Unlock(mu)
			}
		}
		return p
	}
	ch, err := testCampaign().Characterize(fpBuilder, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Class != ClassFPDeterministic {
		t.Errorf("class = %v, want FP-prec (bit det=%v, rounded det=%v)",
			ch.Class, ch.BitByBit.Deterministic(), ch.AfterRounding.Deterministic())
	}
	if ch.Best() != ch.AfterRounding {
		t.Error("Best() for FP class")
	}

	// Struct class: schedule-dependent scratch content at one site.
	structBuilder := func() sim.Program {
		p := &toy{nt: 2}
		var cur uint64
		var mu *sched.Mutex
		var scratch uint64
		p.setup = func(t *sim.Thread) {
			cur = t.AllocStatic("static:cur", 1, mem.KindWord)
			mu = t.Machine().NewMutex("cur")
			scratch = t.Malloc("scratch", 4, mem.KindWord)
		}
		p.worker = func(t *sim.Thread) {
			for i := 0; i < 4; i++ {
				t.Lock(mu)
				slot := t.Load(cur)
				t.Store(cur, slot+1)
				t.Unlock(mu)
				t.Store(scratch+(slot%4)*8, uint64(t.TID()*1000+i))
			}
		}
		return p
	}
	ig := sim.NewIgnoreSet(sim.IgnoreRule{Site: "scratch"})
	ch2, err := testCampaign().Characterize(structBuilder, ig)
	if err != nil {
		t.Fatal(err)
	}
	if ch2.Class != ClassStructDeterministic {
		t.Errorf("class = %v, want small-struct", ch2.Class)
	}
	if ch2.Best() != ch2.AfterIsolation {
		t.Error("Best() for struct class")
	}

	// NDet class: the racy program with no isolation offered.
	ch3, err := testCampaign().Characterize(racyBuilder(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ch3.Class != ClassNondeterministic {
		t.Errorf("class = %v, want NDet", ch3.Class)
	}

	// Bit class.
	ch4, err := testCampaign().Characterize(detBuilder(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ch4.Class != ClassBitDeterministic || ch4.Best() != ch4.BitByBit {
		t.Errorf("class = %v, want bit-by-bit", ch4.Class)
	}
}

// TestClassStrings pins the Table 1 group labels.
func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		ClassBitDeterministic:    "bit-by-bit",
		ClassFPDeterministic:     "FP-prec",
		ClassStructDeterministic: "small-struct",
		ClassNondeterministic:    "NDet",
	}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("%d = %q", c, c.String())
		}
	}
}

// TestDiffCapture checks the §2.3 re-execution flow produces snapshots of
// the first differing checkpoint that actually differ at the racy word.
func TestDiffCapture(t *testing.T) {
	camp := testCampaign()
	camp.SnapshotDifferingRuns = true
	rep, err := camp.Check(racyBuilder())
	if err != nil {
		t.Fatal(err)
	}
	d := rep.DiffSnapshots
	if d == nil {
		t.Fatal("no capture")
	}
	if d.RunA != 1 || d.RunB != rep.FirstNDetRun {
		t.Errorf("runs %d/%d", d.RunA, d.RunB)
	}
	if d.A == nil || d.B == nil {
		t.Fatal("missing snapshots")
	}
	va, _ := d.A.Word(mem.StaticBase)
	vb, _ := d.B.Word(mem.StaticBase)
	if va == vb {
		t.Error("snapshots agree at the racy word; capture mis-aimed")
	}
}

// TestNativeCampaignRejected checks the configuration guard.
func TestNativeCampaignRejected(t *testing.T) {
	c := testCampaign()
	c.Scheme = sim.SWTr // valid
	if _, err := c.Check(detBuilder()); err != nil {
		t.Fatal(err)
	}
	// Native cannot check determinism. (Scheme zero value upgrades to
	// HWInc via defaults, so this must be explicit.)
	rep, err := Campaign{Runs: 2, Threads: 2}.Check(detBuilder())
	if err != nil || rep.Campaign.Scheme != sim.HWInc {
		t.Errorf("default scheme: %v %v", rep.Campaign.Scheme, err)
	}
}

// TestRunError propagates worker failures with run context.
func TestRunError(t *testing.T) {
	b := func() sim.Program {
		return &toy{nt: 2, worker: func(t *sim.Thread) { panic("kaboom") }}
	}
	_, err := testCampaign().Check(b)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("err = %v", err)
	}
}

// TestOverheadModel pins the §7.3 cost model arithmetic on hand-computed
// counters.
func TestOverheadModel(t *testing.T) {
	c := sim.Counters{
		Instr:           1000,
		Stores:          10,
		AllocZeroWords:  4,
		FreeEraseWords:  2,
		CheckpointWords: 50,
	}
	ov := DefaultCostModel.Overheads("x", c)
	// HW: (1000 + 6) / 1000
	if got, want := ov.HWInc, 1.006; !fpnear(got, want) {
		t.Errorf("HW = %v, want %v", got, want)
	}
	// SW-Inc: 1000 + 6 + 10*161 + 2*161 = 2938
	if got, want := ov.SWIncIdeal, 2.938; !fpnear(got, want) {
		t.Errorf("SWInc = %v, want %v", got, want)
	}
	// Unbuffered run (no flushes): the buffered bound degenerates to ideal.
	if got, want := ov.SWIncBuffered, ov.SWIncIdeal; !fpnear(got, want) {
		t.Errorf("SWIncBuffered = %v, want ideal %v on an unbuffered run", got, want)
	}
	// SW-Tr: 1000 + 6 + 50*80 = 5006
	if got, want := ov.SWTrIdeal, 5.006; !fpnear(got, want) {
		t.Errorf("SWTr = %v, want %v", got, want)
	}
}

// TestOverheadBuffered pins the buffered SW-Inc accounting: stores pay the
// append, only the measured drain pairs pay the hash.
func TestOverheadBuffered(t *testing.T) {
	c := sim.Counters{
		Instr:                   1000,
		Stores:                  10,
		AllocZeroWords:          4,
		FreeEraseWords:          2,
		CheckpointWords:         50,
		StoreBufferFlushes:      1,
		StoreBufferDrainedWords: 3,
		StoreBufferEvictions:    1,
	}
	ov := DefaultCostModel.Overheads("x", c)
	// 1000 + 6 + (10+2)*8 + (3+1)*2*80 = 1742.
	if got, want := ov.SWIncBuffered, 1.742; !fpnear(got, want) {
		t.Errorf("SWIncBuffered = %v, want %v", got, want)
	}
	if !(ov.SWIncBuffered < ov.SWIncIdeal) {
		t.Errorf("buffered (%v) should undercut ideal (%v)", ov.SWIncBuffered, ov.SWIncIdeal)
	}
	if !(ov.HWInc < ov.SWIncBuffered) {
		t.Errorf("buffered (%v) should still cost more than hardware (%v)", ov.SWIncBuffered, ov.HWInc)
	}
}

// TestOverheadWithIgnores pins the deletion costs.
func TestOverheadWithIgnores(t *testing.T) {
	c := sim.Counters{Instr: 1000, IgnoredWordChecks: 100}
	ov := DefaultCostModel.Overheads("x", c)
	if got, want := ov.HWInc, 1.3; !fpnear(got, want) { // 3 instr/word
		t.Errorf("HW = %v", got)
	}
	// SW-Inc pays a full minus+plus hash pair per ignored word.
	if got, want := ov.SWIncIdeal, (1000.0+100*161)/1000; !fpnear(got, want) {
		t.Errorf("SWInc = %v, want %v", got, want)
	}
	// SW-Tr simply skips ignored words; with CheckpointWords=0 the
	// subtraction clamps at zero sweep.
	if got, want := ov.SWTrIdeal, 1.0; !fpnear(got, want) {
		t.Errorf("SWTr = %v", got)
	}
}

// TestNonIdealSWTr checks the §4.2 table-maintenance accounting: the
// non-ideal traversal cost strictly dominates the ideal one and grows with
// allocation traffic and sweep volume.
func TestNonIdealSWTr(t *testing.T) {
	c := sim.Counters{
		Instr:           10000,
		CheckpointWords: 500,
		Allocs:          20,
		Frees:           15,
	}
	ideal := DefaultCostModel.Overheads("x", c).SWTrIdeal
	real := DefaultCostModel.NonIdealSWTr(DefaultTrTableCosts, c)
	if real <= ideal {
		t.Errorf("non-ideal %v <= ideal %v", real, ideal)
	}
	// Hand-computed: 10000 + 500*80 + (20*60 + 15*40 + 500*4) = 53800.
	if want := 5.38; !fpnear(real, want) {
		t.Errorf("non-ideal = %v, want %v", real, want)
	}
	// No allocations, no sweep: both collapse to 1.
	empty := sim.Counters{Instr: 1000}
	if got := DefaultCostModel.NonIdealSWTr(DefaultTrTableCosts, empty); !fpnear(got, 1) {
		t.Errorf("empty = %v", got)
	}
}

// TestGeoMean checks the Figure 6 aggregate.
func TestGeoMean(t *testing.T) {
	rows := []Overhead{
		{HWInc: 1, SWIncIdeal: 2, SWTrIdeal: 4},
		{HWInc: 1, SWIncIdeal: 8, SWTrIdeal: 16},
	}
	g := GeoMean(rows)
	if !fpnear(g.HWInc, 1) || !fpnear(g.SWIncIdeal, 4) || !fpnear(g.SWTrIdeal, 8) {
		t.Errorf("geomean = %+v", g)
	}
	empty := GeoMean(nil)
	if empty.Program != "GEOM" {
		t.Error("empty geomean")
	}
}

// TestMeasureOverhead smoke-checks the one-run measurement path.
func TestMeasureOverhead(t *testing.T) {
	ov, err := testCampaign().MeasureOverhead(detBuilder())
	if err != nil {
		t.Fatal(err)
	}
	if ov.NativeInstr == 0 || ov.SWIncIdeal <= 1 || ov.SWTrIdeal <= 1 {
		t.Errorf("overhead = %+v", ov)
	}
	if ov.HWInc != 1 { // no heap allocation in detBuilder
		t.Errorf("HW = %v, want exactly 1 (no allocations)", ov.HWInc)
	}
}

func fpnear(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
