package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
)

// IgnoreSite flags IgnoreRule site strings that match no Malloc/AllocStatic
// site literal anywhere in the package.
//
// Ignore rules implement the paper's §2.2 deletion of legitimately
// nondeterministic structures from the state hash. A rule whose site label
// matches nothing is silently inert: the structure it was meant to exclude
// stays in the hash and the campaign reports false nondeterminism — a
// frustrating failure mode because the rule *looks* right. Typos in site
// labels ("cholesky.tasknode" vs "cholesky.taskNode") are exactly the bug
// class this catches.
//
// The check is per-package and purely literal: when the package computes
// any allocation site dynamically (fmt.Sprintf per-instance labels, as
// sphinx3 does), the universe of sites is unknowable statically and the
// analyzer stays silent.
var IgnoreSite = &Analyzer{
	Name: "ignoresite",
	Doc:  "IgnoreRule sites that match no allocation site in the package",
	Run:  runIgnoreSite,
}

func runIgnoreSite(pass *Pass) {
	pkg := pass.Pkg

	sites := make(map[string]bool)
	dynamicAlloc := false
	anyAlloc := false
	inspectFiles(pkg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := threadMethod(pkg, call)
		if !ok || (name != "Malloc" && name != "AllocStatic") || len(call.Args) != 3 {
			return true
		}
		anyAlloc = true
		if lit, ok := call.Args[0].(*ast.BasicLit); ok {
			if s, err := strconv.Unquote(lit.Value); err == nil {
				sites[s] = true
				return true
			}
		}
		dynamicAlloc = true
		return true
	})
	// Without a complete literal universe there is nothing sound to say:
	// a package with no allocations draws its sites from elsewhere, and a
	// package with dynamic site labels has sites we cannot enumerate.
	if !anyAlloc || dynamicAlloc {
		return
	}

	inspectFiles(pkg, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := pkg.Info.Types[lit]
		if !ok || !simNamed(tv.Type, "IgnoreRule") {
			return true
		}
		site, pos, ok := ruleSite(lit)
		if !ok {
			return true
		}
		if !sites[site] {
			pass.Reportf(pos, "IgnoreRule site %q matches no Malloc/AllocStatic site literal in this package: the rule deletes nothing from the hash", site)
		}
		return true
	})
}

// ruleSite extracts the literal Site string of an IgnoreRule composite
// literal (keyed or positional); ok is false when the site is not a string
// literal.
func ruleSite(lit *ast.CompositeLit) (string, token.Pos, bool) {
	var expr ast.Expr
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Site" {
				expr = kv.Value
			}
			continue
		}
		// Positional literal: Site is the first field.
		if expr == nil {
			expr = elt
		}
	}
	if expr == nil {
		return "", 0, false
	}
	bl, ok := expr.(*ast.BasicLit)
	if !ok {
		return "", 0, false
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return "", 0, false
	}
	return s, bl.Pos(), true
}
