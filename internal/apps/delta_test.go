package apps

import (
	"reflect"
	"testing"

	"instantcheck/internal/core"
	"instantcheck/internal/sim"
)

// TestDeltaTraversalMatchesSequential runs every workload's checking
// campaign under the traversal scheme twice — dirty-page delta hashing vs
// full sweeps at every checkpoint — and requires byte-identical reports:
// the same raw and ignore-adjusted State Hash at every checkpoint of every
// run, the same distributions, the same verdicts. This is the delta
// hasher's end-to-end correctness contract (the digests must be
// bit-identical, not merely verdict-equivalent), checked across all 17
// apps' allocation, free, FP-rounding, and ignore-set behavior.
func TestDeltaTraversalMatchesSequential(t *testing.T) {
	for _, app := range Registry() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			opts := testOptions()
			camp := testCampaign()
			camp.Runs = 4
			camp.Scheme = sim.SWTr
			camp.RoundFP = app.UsesFP
			camp.Ignore = app.IgnoreSet()

			run := func(mode sim.TraverseDeltaMode) *core.Report {
				t.Helper()
				c := camp
				c.TraverseDelta = mode
				rep, err := c.Check(app.Builder(opts))
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			full := run(sim.TraverseDeltaOff)
			delta := run(sim.TraverseDeltaAuto)

			if full.Points() != delta.Points() {
				t.Fatalf("point counts differ: full %d, delta %d", full.Points(), delta.Points())
			}
			for i := range full.Runs {
				fr, dr := full.Runs[i], delta.Runs[i]
				if !reflect.DeepEqual(fr.Checkpoints, dr.Checkpoints) {
					for j := range fr.Checkpoints {
						f, d := fr.Checkpoints[j], dr.Checkpoints[j]
						if f.RawSH != d.RawSH || f.SH != d.SH {
							t.Fatalf("run %d checkpoint %d (%s): full raw %s adj %s, delta raw %s adj %s",
								i, j, f.Label, f.RawSH, f.SH, d.RawSH, d.SH)
						}
					}
					t.Fatalf("run %d: checkpoint records differ beyond hashes", i)
				}
				// Every checkpoint after the seeding sweep must go through
				// the delta path (apps with a single end-of-run checkpoint,
				// like pbzip2's pipeline, have nothing to delta).
				if want := uint64(len(dr.Checkpoints) - 1); dr.Counters.TraverseDeltaSweeps != want {
					t.Errorf("run %d: %d delta sweeps, want %d", i, dr.Counters.TraverseDeltaSweeps, want)
				}
				if fr.Counters.TraverseDeltaSweeps != 0 {
					t.Errorf("run %d: full-sweep campaign took the delta path", i)
				}
			}
			for i := range full.Stats {
				if full.Stats[i].DistKey() != delta.Stats[i].DistKey() {
					t.Errorf("checkpoint %d: distributions differ: %s vs %s",
						i, full.Stats[i].DistKey(), delta.Stats[i].DistKey())
				}
			}
			if full.Deterministic() != delta.Deterministic() {
				t.Errorf("verdicts differ: full %v, delta %v", full.Deterministic(), delta.Deterministic())
			}
		})
	}
}
