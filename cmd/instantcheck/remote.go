package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"instantcheck/internal/farm"
)

// remote is the client side of the checkfarm: it talks to a checkd daemon
// so that campaigns run on a farm machine while this binary only submits
// specs and renders results.
//
//	instantcheck remote [-server URL] submit <app> [flags]
//	instantcheck remote [-server URL] status <job>
//	instantcheck remote [-server URL] report <job>
//	instantcheck remote [-server URL] jobs
//	instantcheck remote [-server URL] hashlog <job>
//	instantcheck remote [-server URL] compare <job|@file> <job|@file>
//	instantcheck remote [-server URL] cancel <job>
//	instantcheck remote [-server URL] stats [-raw]
func remote(args []string) error {
	fs := flag.NewFlagSet("remote", flag.ExitOnError)
	server := fs.String("server", "http://localhost:8347", "checkd base URL")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: instantcheck remote [-server URL] <verb> [args]

verbs:
  submit <app> [-runs N] [-threads N] [-parallelism N] [-seed S] [-input S]
               [-scheme hwinc|swinc|swinc-nonatomic|swtr] [-hasher mix64|crc64]
               [-round-fp] [-isolate] [-small] [-bug semantic|atomicity|order]
               [-interval N] [-explore]
               [-strategy uniform|pct|race-directed|coverage]
               [-pct-depth N] [-wait]
          -explore submits a schedule-exploration job: the strategy hunts
          for a State-Hash divergence and stops at the first one (-runs is
          the search budget); -bug seeds the workload's Figure 7 bug
  status  <job>             one job's state and progress
  report  <job>             finished campaign's determinism report
  jobs                      list all jobs on the daemon
  hashlog <job>             per-checkpoint hash stream (canonical text form)
  compare <a> <b>           diff two hash logs; each side is a job id or
                            @file with a saved hashlog (e.g. from another host)
  cancel  <job>             cancel a queued or running job
  stats   [-raw]            daemon health and metrics snapshot (-raw dumps
                            the Prometheus text exposition verbatim)`)
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		os.Exit(2)
	}
	c := farm.NewClient(*server)
	verb, rest := rest[0], rest[1:]

	// Every daemon call runs under a signal-aware context: ^C aborts the
	// in-flight HTTP request (and Wait's poll loop) immediately instead of
	// waiting out the client's retry/backoff budget.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	one := func() (farm.JobID, error) {
		if len(rest) != 1 {
			return "", fmt.Errorf("remote %s: want exactly one job id", verb)
		}
		return farm.JobID(rest[0]), nil
	}
	switch verb {
	case "submit":
		return remoteSubmit(ctx, c, rest)
	case "status":
		id, err := one()
		if err != nil {
			return err
		}
		job, err := c.Job(ctx, id)
		if err != nil {
			return err
		}
		printJob(job)
		return nil
	case "jobs":
		jobs, err := c.Jobs(ctx)
		if err != nil {
			return err
		}
		for _, job := range jobs {
			printJob(job)
		}
		return nil
	case "report":
		id, err := one()
		if err != nil {
			return err
		}
		rep, err := c.Report(ctx, id)
		if err != nil {
			return err
		}
		printReport(rep)
		return nil
	case "hashlog":
		id, err := one()
		if err != nil {
			return err
		}
		text, err := c.HashLog(ctx, id)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	case "compare":
		if len(rest) != 2 {
			return fmt.Errorf("remote compare: want two sides (job id or @file)")
		}
		req := farm.CompareRequest{}
		var err error
		if req.JobA, req.LogA, err = compareSideArg(rest[0]); err != nil {
			return err
		}
		if req.JobB, req.LogB, err = compareSideArg(rest[1]); err != nil {
			return err
		}
		res, err := c.Compare(ctx, req)
		if err != nil {
			return err
		}
		if res.Equal {
			fmt.Printf("equal: %d runs, hash-identical\n", res.RunsCompared)
			return nil
		}
		fmt.Printf("DIFFER: %d/%d compared runs diverge (a has %d runs, b has %d)\n",
			len(res.DifferingRuns), res.RunsCompared, res.RunsA, res.RunsB)
		if res.First != nil {
			fmt.Printf("first divergence: run %d checkpoint %d (%s): %s vs %s\n",
				res.First.Run+1, res.First.Ordinal, res.First.Label, res.First.A, res.First.B)
		}
		return nil
	case "stats":
		return remoteStats(ctx, c, rest, os.Stdout)
	case "cancel":
		id, err := one()
		if err != nil {
			return err
		}
		ok, err := c.Cancel(ctx, id)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("job %s was already finished", id)
		}
		fmt.Printf("%s canceled\n", id)
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("remote: unknown verb %q", verb)
	}
}

// compareSideArg maps a CLI compare operand to one side of the request:
// "@path" loads a saved hash log, anything else names a job on the daemon.
func compareSideArg(arg string) (farm.JobID, string, error) {
	if path, ok := strings.CutPrefix(arg, "@"); ok {
		b, err := os.ReadFile(path)
		if err != nil {
			return "", "", err
		}
		return "", string(b), nil
	}
	return farm.JobID(arg), "", nil
}

func remoteSubmit(ctx context.Context, c *farm.Client, args []string) error {
	fs := flag.NewFlagSet("remote submit", flag.ExitOnError)
	runs := fs.Int("runs", 0, "test runs per campaign (daemon default 30)")
	threads := fs.Int("threads", 0, "worker threads per run (daemon default 8)")
	par := fs.Int("parallelism", 0, "concurrent runs (0: daemon's worker count)")
	seed := fs.Int64("seed", 0, "base schedule seed")
	input := fs.Int64("input", 0, "input seed for replayed library calls")
	scheme := fs.String("scheme", "", "hashing scheme: hwinc (default), swinc, swinc-nonatomic, swtr")
	hasher := fs.String("hasher", "", "location hash: mix64 (default) or crc64")
	roundFP := fs.Bool("round-fp", false, "round FP values before hashing")
	isolate := fs.Bool("isolate", false, "apply the workload's small-structure ignore set")
	small := fs.Bool("small", false, "reduced inputs (fast)")
	interval := fs.Int("interval", 0, "mean operations between forced preemptions (0: scheduler default)")
	explore := fs.Bool("explore", false, "submit an exploration job (hunt for a divergence) instead of a check campaign")
	strategy := fs.String("strategy", "", "exploration strategy: uniform (default), pct, race-directed or coverage")
	pctDepth := fs.Int("pct-depth", 0, "priority-change points for the pct strategy (0: default)")
	bug := fs.String("bug", "", "seed the workload's Figure 7 bug: semantic, atomicity or order")
	wait := fs.Bool("wait", false, "block until the job finishes and print its report")
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("usage: instantcheck remote submit <app> [flags]")
	}
	app := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	kind := ""
	if *explore {
		kind = "explore"
	} else if *strategy != "" || *pctDepth != 0 {
		return fmt.Errorf("remote submit: -strategy and -pct-depth require -explore")
	}
	job, err := c.Submit(ctx, farm.JobSpec{
		App:            app,
		Runs:           *runs,
		Threads:        *threads,
		Parallelism:    *par,
		Seed:           *seed,
		InputSeed:      *input,
		Scheme:         *scheme,
		Hasher:         *hasher,
		RoundFP:        *roundFP,
		Isolate:        *isolate,
		Small:          *small,
		SwitchInterval: *interval,
		Kind:           kind,
		Strategy:       *strategy,
		PCTDepth:       *pctDepth,
		Bug:            *bug,
	})
	if err != nil {
		return err
	}
	printJob(job)
	if !*wait {
		return nil
	}
	job, err = c.Wait(ctx, job.ID, 500*time.Millisecond)
	if err != nil {
		return err
	}
	printJob(job)
	if job.State != farm.JobDone {
		return fmt.Errorf("job %s finished as %s: %s", job.ID, job.State, job.Error)
	}
	rep, err := c.Report(ctx, job.ID)
	if err != nil {
		return err
	}
	printReport(rep)
	return nil
}

func printJob(job *farm.Job) {
	progress := ""
	if job.RunsTotal > 0 {
		progress = fmt.Sprintf("  %d/%d runs", job.RunsDone, job.RunsTotal)
	}
	msg := ""
	if job.Error != "" {
		msg = "  " + job.Error
	}
	fmt.Printf("%-8s %-9s %-14s%s%s\n", job.ID, job.State, job.Spec.App, progress, msg)
}

func printReport(rep *farm.Report) {
	if out := rep.Explore; out != nil {
		verdict := fmt.Sprintf("no divergence in %d runs (budget %d)", out.Runs, out.Budget)
		if out.Found {
			verdict = fmt.Sprintf("DIVERGENCE at run %d of %d (budget %d)", out.DivergedRun, out.Runs, out.Budget)
		}
		fmt.Printf("%s: explore[%s]: %s\n", rep.Program, out.Strategy, verdict)
		fmt.Printf("  %d distinct (checkpoint, hash) outcomes, %d distinct final hashes\n",
			out.DistinctOutcomes, out.DistinctFinals)
		if out.Hits > 0 {
			fmt.Printf("  %d directed preemptions at hinted racy sites\n", out.Hits)
		}
		return
	}
	verdict := "DETERMINISTIC"
	if !rep.Deterministic {
		verdict = "NONDETERMINISTIC"
		if rep.DetAtEnd {
			verdict = "internally nondeterministic, deterministic at end"
		}
	}
	fmt.Printf("%s: %s  (%d runs, %d checkpoints: %d det, %d ndet)\n",
		rep.Program, verdict, rep.Runs, rep.Points, rep.DetPoints, rep.NDetPoints)
	if rep.ShapeMismatch {
		fmt.Println("  runs disagree on checkpoint count (shape mismatch)")
	}
	if rep.FirstNDetRun > 0 {
		fmt.Printf("  first nondeterminism detected in run %d\n", rep.FirstNDetRun)
	}
	if rep.OutputDistinct > 1 {
		fmt.Printf("  %d distinct external outputs\n", rep.OutputDistinct)
	}
	for _, st := range rep.Stats {
		if st.Deterministic {
			continue
		}
		fmt.Printf("  ndet checkpoint %2d (%s): hash distribution %v\n", st.Ordinal, st.Label, st.Distribution)
	}
}
