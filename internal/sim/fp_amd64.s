//go:build amd64

#include "textflag.h"

// func fpchain(buf *[8]uintptr) int32
//
// Walk the frame-pointer chain. On entry BP is the caller's frame
// pointer (callee-saved, untouched by this NOFRAME function): (BP) holds
// the parent frame pointer and 8(BP) the caller's return address, the
// same frame sequence runtime.Callers(2, ...) reports (minus inline
// expansion, which the consumers of these pcs never rely on).
TEXT ·fpchain(SB), NOSPLIT|NOFRAME, $0-12
	MOVQ buf+0(FP), DI
	MOVQ BP, AX
	XORL CX, CX
loop:
	CMPQ CX, $8
	JGE  done
	TESTQ AX, AX
	JZ   done
	MOVQ 8(AX), DX
	TESTQ DX, DX
	JZ   done
	MOVQ DX, (DI)(CX*8)
	INCQ CX
	MOVQ (AX), AX
	JMP  loop
done:
	MOVL CX, ret+8(FP)
	RET
