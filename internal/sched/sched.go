// Package sched provides the serializing thread scheduler InstantCheck is
// evaluated under (paper §7.1): one logical thread runs at a time, and the
// scheduler switches between threads at synchronization operations and at
// chosen preemption points. With the default random decider this is the
// testing model used by PCT and CHESS, which the paper adopts because it
// exposes interleaving complexity much better and faster than truly
// parallel stress runs; with a scripted decider (see Decider) schedules can
// be enumerated systematically (paper §6.2).
//
// Threads are coroutines (iter.Pull): a context switch is a direct
// coroutine handoff through the dispatcher rather than a channel
// send/receive pair through the Go runtime's park/unpark machinery, which
// makes the switch several times cheaper — and switches dominate the
// scheduler's cost. Exactly one thread executes at any moment. Given the
// same decisions the scheduler replays a run exactly; different seeds
// explore different interleavings. The scheduler is not part of
// InstantCheck itself — in real usage it is whatever testing tool the
// programmer already uses — but the checker needs one to drive test runs.
package sched

import (
	"errors"
	"fmt"
	"iter"
	"sort"
	"strings"
)

// ErrAborted is returned (wrapped) by Run when the run was cancelled via
// Abort — e.g. by the systematic-testing explorer pruning a schedule whose
// state was already visited.
var ErrAborted = errors.New("sched: run aborted")

// runAbort is the panic sentinel used to unwind thread coroutines cleanly
// during shutdown.
type runAbort struct{}

// Scheduler serializes n logical threads. Create one per run with New (or
// NewControlled), call Run with the body of each thread. A Scheduler
// cannot be reused across runs.
type Scheduler struct {
	n       int
	decider Decider
	// resume[tid] re-enters thread tid's coroutine; yields[tid] is the
	// thread-side suspend function (set by the coroutine on startup);
	// stops[tid] unwinds the coroutine during shutdown.
	resume []func() (struct{}, bool)
	yields []func(struct{}) bool
	stops  []func()
	// nextTid is the dispatcher trampoline mailbox: a suspending thread
	// nominates its successor here before yielding, and the dispatcher
	// loop in Run performs the actual switch. -1 means no successor (all
	// finished, or the run failed).
	nextTid int
	// curTid is the thread currently executing, maintained by the
	// dispatcher at every handoff. It lets the per-operation Yield fast
	// path take no arguments at all, which keeps it (and the simulator's
	// per-access wrappers around it) within the compiler's inline budget.
	curTid      int
	runnable    []int    // ids of runnable threads
	runnablePos []int    // thread id -> index in runnable, or -1
	blocked     []string // thread id -> block reason, "" if not blocked
	blockedEp   []int    // thread id -> episode suffix for the reason, or -1
	finished    []bool
	nFinished   int
	untilSwitch int
	// lastBudget is the value untilSwitch was last refilled to and opsBase
	// the number of Yields consumed in earlier budget windows; together they
	// reconstruct the op count without a second counter update on the
	// per-operation fast path (Ops() = opsBase + lastBudget - untilSwitch).
	lastBudget int
	opsBase    uint64
	aborted    bool
	err        error
}

// New returns a scheduler for n threads using the default seeded random
// decider. interval sets the forced-preemption cadence: switch budgets are
// drawn uniformly on [1, 2*interval], so the mean number of operations
// between forced preemptions is interval + 0.5 (see randomDecider). Values
// <= 0 select the default of 8, which for the workload kernels in this
// repository gives rich interleaving variety at modest cost.
func New(n int, seed int64, interval int) *Scheduler {
	if interval <= 0 {
		interval = 8
	}
	return NewControlled(n, newRandomDecider(seed, interval))
}

// Inert returns a scheduler for instrumentation that runs outside any
// schedule, such as a program's single-threaded setup phase: Yield is a
// pure counter decrement that never consults a decider and never context-
// switches (the budget starts effectively infinite). Only Yield and Ops may
// be called on an inert scheduler.
func Inert() *Scheduler {
	const never = int(^uint(0) >> 1)
	return &Scheduler{untilSwitch: never, lastBudget: never, nextTid: -1, curTid: -1}
}

// NewControlled returns a scheduler driven by an explicit decision policy.
func NewControlled(n int, d Decider) *Scheduler {
	if n <= 0 {
		panic("sched: thread count must be positive")
	}
	if d == nil {
		panic("sched: nil decider")
	}
	s := &Scheduler{
		n:           n,
		decider:     d,
		resume:      make([]func() (struct{}, bool), n),
		yields:      make([]func(struct{}) bool, n),
		stops:       make([]func(), n),
		nextTid:     -1,
		curTid:      -1, // no thread dispatched yet (see TidPicker)
		runnable:    make([]int, 0, n),
		runnablePos: make([]int, n),
		blocked:     make([]string, n),
		blockedEp:   make([]int, n),
		finished:    make([]bool, n),
	}
	for i := 0; i < n; i++ {
		s.runnablePos[i] = -1
		s.blockedEp[i] = -1
	}
	s.untilSwitch = d.SwitchBudget()
	s.lastBudget = s.untilSwitch
	return s
}

// N returns the number of threads.
func (s *Scheduler) N() int { return s.n }

// Ops returns the number of Yield points observed so far (a progress clock).
func (s *Scheduler) Ops() uint64 { return s.opsBase + uint64(s.lastBudget-s.untilSwitch) }

// Run executes body(tid) for every thread id in [0, n) under the
// serialized schedule and returns when all threads have finished. It
// returns an error if the run deadlocks, a thread panics, or the run is
// aborted.
func (s *Scheduler) Run(body func(tid int)) error {
	for i := 0; i < s.n; i++ {
		s.addRunnable(i)
	}
	for i := 0; i < s.n; i++ {
		tid := i
		next, stop := iter.Pull(func(yield func(struct{}) bool) {
			s.yields[tid] = yield
			if !yield(struct{}{}) {
				return // stopped before ever being scheduled
			}
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(runAbort); ok {
						return // clean shutdown unwind
					}
					s.fail(fmt.Errorf("sched: thread %d panicked: %v", tid, r))
					return
				}
				s.finish(tid)
			}()
			body(tid)
		})
		s.resume[tid] = next
		s.stops[tid] = stop
		next() // start the coroutine; it parks awaiting its first schedule
	}
	// Dispatcher trampoline: hand control to the chosen thread; each time
	// its coroutine suspends (or returns), switch to whichever successor it
	// nominated. A switch is one yield + one resume — no runtime parking.
	s.nextTid = s.pick()
	for s.nextTid >= 0 {
		tid := s.nextTid
		s.nextTid = -1
		s.curTid = tid
		s.resume[tid]()
	}
	// Unwind every still-parked coroutine so their deferred cleanup runs
	// before Run returns (the pending yield inside switchTo reports the
	// stop and the thread panics runAbort).
	for tid := 0; tid < s.n; tid++ {
		s.stops[tid]()
	}
	return s.err
}

// Yield is a potential preemption point for the currently running thread,
// which calls it at every simulated operation; most calls return
// immediately, and the decider's switch budget determines when a real
// context-switch decision happens. The fast path is small enough to inline
// into the simulator's per-operation instrumentation (it takes no arguments
// — the scheduler already knows who is running); only budget exhaustion
// pays a call.
func (s *Scheduler) Yield() {
	s.untilSwitch--
	if s.untilSwitch > 0 {
		return
	}
	s.yieldSwitch()
}

// yieldSwitch is Yield's slow path: bank the consumed budget window into the
// op count, refill the switch budget, and let the decider pick who runs next.
func (s *Scheduler) yieldSwitch() {
	s.opsBase += uint64(s.lastBudget - s.untilSwitch)
	b := s.decider.SwitchBudget()
	s.untilSwitch = b
	s.lastBudget = b
	s.Preempt(s.curTid)
}

// Preempt forces a context-switch decision now: the decider picks a
// runnable thread to run next. The caller remains runnable.
func (s *Scheduler) Preempt(tid int) {
	next := s.pick()
	if next == tid {
		return
	}
	s.switchTo(tid, next)
}

// Block removes the calling thread from the runnable set, recording reason
// for deadlock diagnostics, and switches to another thread. It returns
// when some other thread calls Unpark for the caller and the scheduler
// later selects it.
func (s *Scheduler) Block(tid int, reason string) {
	s.BlockEp(tid, reason, -1)
}

// BlockEp is Block with an episode number appended to the diagnostic
// reason (rendered as "<reason> ep<ep>" when ep >= 0). Episodic primitives
// like barriers use it so the blocking hot path never formats a string;
// the suffix is only rendered if the run actually deadlocks.
func (s *Scheduler) BlockEp(tid int, reason string, ep int) {
	s.removeRunnable(tid)
	s.blocked[tid] = reason
	s.blockedEp[tid] = ep
	if len(s.runnable) == 0 {
		s.fail(s.deadlockError())
		panic(runAbort{})
	}
	s.switchTo(tid, s.pick())
}

// Unpark makes thread tid runnable again. It must be called by the running
// thread (or a barrier/mutex implementation executing on its behalf); it
// does not switch.
func (s *Scheduler) Unpark(tid int) {
	if s.finished[tid] {
		panic(fmt.Sprintf("sched: unpark of finished thread %d", tid))
	}
	if s.runnablePos[tid] >= 0 {
		return // already runnable
	}
	s.blocked[tid] = ""
	s.blockedEp[tid] = -1
	s.addRunnable(tid)
}

// Abort cancels the run from the currently running thread: every other
// thread is unwound, and Run returns an error wrapping both ErrAborted and
// reason. It does not return.
func (s *Scheduler) Abort(reason error) {
	s.fail(fmt.Errorf("%w: %w", ErrAborted, reason))
	panic(runAbort{})
}

// switchTo suspends the calling thread after nominating next as its
// successor; the dispatcher performs the handoff. It returns when the
// scheduler later selects the caller again, and unwinds the caller if the
// run was stopped in the meantime.
func (s *Scheduler) switchTo(tid, next int) {
	s.nextTid = next
	if !s.yields[tid](struct{}{}) || s.aborted {
		panic(runAbort{})
	}
}

// finish retires the calling thread and nominates a successor, or leaves
// the dispatcher with none if it was the last (or the run just deadlocked).
func (s *Scheduler) finish(tid int) {
	s.finished[tid] = true
	s.nFinished++
	s.removeRunnable(tid)
	if s.nFinished == s.n {
		return
	}
	if len(s.runnable) == 0 {
		s.fail(s.deadlockError())
		return
	}
	s.nextTid = s.pick()
}

// fail records the first failure and marks the run aborted; the dispatcher
// then unwinds every parked thread before Run returns.
func (s *Scheduler) fail(err error) {
	if s.err == nil {
		s.err = err
	}
	s.aborted = true
	s.nextTid = -1
}

func (s *Scheduler) pick() int {
	if len(s.runnable) == 1 {
		return s.runnable[0]
	}
	if tp, ok := s.decider.(TidPicker); ok {
		return tp.PickTid(s.curTid, s.runnable)
	}
	return s.runnable[s.decider.Pick(len(s.runnable))]
}

func (s *Scheduler) addRunnable(tid int) {
	if s.runnablePos[tid] >= 0 {
		return
	}
	s.runnablePos[tid] = len(s.runnable)
	s.runnable = append(s.runnable, tid)
}

func (s *Scheduler) removeRunnable(tid int) {
	pos := s.runnablePos[tid]
	if pos < 0 {
		return
	}
	last := len(s.runnable) - 1
	moved := s.runnable[last]
	s.runnable[pos] = moved
	s.runnablePos[moved] = pos
	s.runnable = s.runnable[:last]
	s.runnablePos[tid] = -1
}

func (s *Scheduler) deadlockError() error {
	var waiting []string
	for tid, reason := range s.blocked {
		if reason != "" && !s.finished[tid] {
			if ep := s.blockedEp[tid]; ep >= 0 {
				reason = fmt.Sprintf("%s ep%d", reason, ep)
			}
			waiting = append(waiting, fmt.Sprintf("thread %d: %s", tid, reason))
		}
	}
	sort.Strings(waiting)
	return fmt.Errorf("sched: deadlock, no runnable threads; blocked: [%s]", strings.Join(waiting, "; "))
}
