# InstantCheck reproduction — convenience targets.

GO ?= go

.PHONY: all test race race-farm bench bench-json bench-smoke obs-smoke build table1 table2 figures everything cover fmt vet lint

all: test lint

# Build every command, the checkfarm daemon included, into ./bin.
build:
	$(GO) build -o bin/ ./cmd/instantcheck ./cmd/statediff ./cmd/icvet ./cmd/checkd

test:
	$(GO) test ./...

lint:
	$(GO) run ./cmd/icvet ./...

race:
	$(GO) test -race ./...

# The farm's invariants (parallel == sequential, crash resume) under the
# race detector — the CI subset.
race-farm:
	$(GO) test -race ./internal/farm ./internal/core

bench:
	$(GO) test -bench=. -benchmem ./...

# One-iteration pass over every benchmark: proves the benchmark code still
# compiles and runs. This is the CI smoke step — it measures nothing.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Observability smoke gate: boot a real checkd, run one small campaign,
# scrape /metrics from the live daemon and fail on malformed exposition or
# missing key series (see cmd/obssmoke).
obs-smoke:
	$(GO) run ./cmd/obssmoke

# The tier-1 perf suite, recorded into the repo's benchmark trajectory.
# BENCH_REGEX picks the benchmarks that gate performance work; BENCHTIME
# trades runtime for stability. Results land in the "after" section of
# $(BENCH_OUT); a pre-change binary's numbers can be recorded with
#   <old-binary> -test.bench=... | go run ./cmd/benchjson -out $(BENCH_OUT) -section baseline
BENCH_OUT   ?= BENCH_3.json
BENCHTIME   ?= 20x
BENCH_REGEX ?= SchemeAblation|CheckApp|FarmThroughput|MemStoreLoad|AllocFree|TraverseHash|ZeroSumCache|WriteBatch|HashWord|AccumulatorWrite
bench-json:
	$(GO) test -run=NONE -bench='$(BENCH_REGEX)' -benchmem -benchtime=$(BENCHTIME) . ./internal/mem ./internal/sim ./internal/ihash \
		| $(GO) run ./cmd/benchjson -out $(BENCH_OUT) -section after -note "make bench-json, benchtime=$(BENCHTIME)"

table1:
	$(GO) run ./cmd/instantcheck table1

table2:
	$(GO) run ./cmd/instantcheck table2

figures:
	$(GO) run ./cmd/instantcheck fig5
	$(GO) run ./cmd/instantcheck fig6
	$(GO) run ./cmd/instantcheck fig8

everything:
	$(GO) run ./cmd/instantcheck all

cover:
	$(GO) test -cover ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
