package apps

import (
	"instantcheck/internal/core"
	"instantcheck/internal/mem"
	"instantcheck/internal/sim"
)

func init() {
	register(&App{
		Name:   "streamcluster",
		Source: "parsec",
		UsesFP: true,
		// With the author's fix the program is bit-by-bit deterministic;
		// the shipped version carries a real order-violation bug that is
		// nondeterministic at interior barriers but masked at program end
		// for the default input (Table 1's ★ footnote).
		ExpectedClass: core.ClassBitDeterministic,
		Build: func(o Options) sim.Program {
			// 128-dimensional points, as in PARSEC's simmedium input: the
			// coordinate block is by far the largest live structure and is
			// read-only once the stream has been loaded.
			p := &streamclusterProg{
				nt: o.threads(), points: 64, dims: 128,
				chunks: 2, speedyIters: 37, pgainIters: 6463,
				fixed: o.FixBug,
			}
			if o.Small {
				p.chunks, p.speedyIters, p.pgainIters = 1, 6, 20
			}
			return p
		},
	})
}

// streamclusterProg reproduces PARSEC's streamcluster: online k-median
// clustering of a stream of points, processed in chunks. Each chunk first
// runs a "speedy" initial-solution phase and then a long "pgain" local
// search. The pgain loop recomputes assignments and costs from the raw
// point data deterministically with disjoint writes, and its barriers —
// the overwhelming majority — are deterministic.
//
// The shipped program (version 2.1) contains the real concurrency bug the
// paper found with InstantCheck: in the speedy phase, worker threads read
// thread 0's center-opening decisions without waiting for the flag that
// orders those writes before the reads — a non-benign order violation.
// The racy reads leave schedule-dependent values in the per-thread cost
// scratch, so the 74 speedy barriers (37 per chunk × 2 chunks) are
// nondeterministic. The pgain phase then deterministically overwrites
// every tainted word, masking the bug by the end of the run — exactly the
// masking the paper reports for the simmedium input, and the reason
// checking only at program end would miss the bug. Options.FixBug inserts
// the missing flag wait (the author's fix).
type streamclusterProg struct {
	nt          int
	points      int
	dims        int
	chunks      int
	speedyIters int
	pgainIters  int
	fixed       bool

	data      uint64 // points × dims coordinates
	open      uint64 // speedy's open-center decisions (thread 0 writes)
	openBuf   uint64 // pgain's double-buffered decisions (2 × points)
	openReady uint64 // per-(chunk,iter) ready flags
	cost      uint64 // per-thread cost scratch
	centers   uint64 // final per-thread medians
	final     barrier

	speedyBar barrier
	pgainBar  barrier
}

func (p *streamclusterProg) Name() string { return "streamcluster" }

func (p *streamclusterProg) Threads() int { return p.nt }

func (p *streamclusterProg) Setup(t *sim.Thread) {
	n := p.points * p.dims
	p.data = t.AllocStatic("static:sc.data", n, mem.KindFloat)
	p.open = t.AllocStatic("static:sc.open", p.points, mem.KindWord)
	p.openBuf = t.AllocStatic("static:sc.openbuf", 2*p.points, mem.KindWord)
	p.openReady = t.AllocStatic("static:sc.ready", p.chunks*p.speedyIters, mem.KindWord)
	p.cost = t.AllocStatic("static:sc.cost", p.nt, mem.KindFloat)
	p.centers = t.AllocStatic("static:sc.centers", p.nt, mem.KindFloat)
	rng := newXorshift(77)
	for i := 0; i < n; i++ {
		t.StoreF(idx(p.data, i), 10*rng.unitFloat())
	}
	p.speedyBar = newBarrier(t, "sc.speedy")
	p.pgainBar = newBarrier(t, "sc.pgain")
	p.final = newBarrier(t, "sc.final")
}

func (p *streamclusterProg) Worker(t *sim.Thread) {
	tid := t.TID()
	lo, hi := span(p.points, p.nt, tid)

	for chunk := 0; chunk < p.chunks; chunk++ {
		// ---- speedy phase: builds an initial solution hint ----
		for it := 0; it < p.speedyIters; it++ {
			flag := idx(p.openReady, chunk*p.speedyIters+it)
			if tid == 0 {
				// Decide which points open a center this round — a pure
				// function of the data and the iteration.
				for i := 0; i < p.points; i++ {
					d := t.LoadF(idx(p.data, i*p.dims))
					openIt := uint64(0)
					if int(d*16)%(it+2) == 0 {
						openIt = 1
					}
					t.Store(idx(p.open, i), openIt)
				}
				t.Store(flag, 1)
			} else if p.fixed {
				// The author's fix: wait until the decisions are written.
				spinWaitFlag(t, flag)
			}
			// BUG (shipped version): without the wait, these reads race
			// with thread 0's writes above and may observe a mix of this
			// round's and last round's decisions.
			sum := 0.0
			for i := lo; i < hi; i++ {
				if t.Load(idx(p.open, i)) == 1 {
					sum += t.LoadF(idx(p.data, i*p.dims+1))
					t.Compute(2 * p.dims) // distance evaluation over the dimensions
				}
			}
			t.StoreF(idx(p.cost, tid), sum)
			p.speedyBar.await(t)
		}

		// ---- pgain phase: deterministic local search ----
		// The per-thread cost scratch the buggy speedy phase tainted is
		// recomputed here from the raw data, so the bug's effects are
		// masked. Decisions are double-buffered by iteration parity:
		// thread 0 writes this iteration's buffer before the barrier
		// while slower threads may still be reading the OTHER buffer for
		// the previous iteration — no race, one barrier per iteration.
		for it := 0; it < p.pgainIters; it++ {
			buf := (it % 2) * p.points
			if tid == 0 {
				for i := 0; i < p.points; i++ {
					d := t.LoadF(idx(p.data, i*p.dims))
					openIt := uint64(0)
					if int(d*32)%((it%7)+2) == 0 {
						openIt = 1
					}
					t.Compute(20) // gain evaluation for the candidate
					t.Store(idx(p.openBuf, buf+i), openIt)
				}
			}
			p.pgainBar.await(t) // this iteration's decisions stable from here
			sum := 0.0
			for i := lo; i < hi; i++ {
				//icvet:ignore race parity double-buffer: readers use the previous phase's buffer, disjoint from the one being written
				if t.Load(idx(p.openBuf, buf+i)) == 1 {
					sum += t.LoadF(idx(p.data, i*p.dims+2))
					t.Compute(2 * p.dims) // distance evaluation over the dimensions
				}
			}
			t.StoreF(idx(p.cost, tid), sum)
			t.StoreF(idx(p.centers, tid), sum*0.5+float64(chunk))
		}
	}
	p.final.await(t)
}
