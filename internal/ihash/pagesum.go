package ihash

// This file holds the per-page contribution cache behind dirty-page delta
// hashing. The traversal scheme's state hash is a mod-2⁶⁴ sum over live
// words,
//
//	SH = Σ_a (h(a, v_a) ⊖ h(a, 0))
//
// and because ⊕ is commutative and associative the sum can be bracketed by
// 4 KiB page:
//
//	SH = Σ_p C(p),   C(p) = Σ_{a ∈ p} (h(a, v_a) ⊖ h(a, 0))
//
// A page whose live words did not change between two checkpoints keeps its
// C(p), so a checkpoint only needs to rehash the pages the program dirtied
// and patch the running total:
//
//	SH' = SH ⊖ C_old(p) ⊕ C_new(p)   for each dirty page p.
//
// Pages that hold no live words — or only zero-valued ones, including
// never-materialized (zero-fill-elided) backing — have C(p) = 0, because
// each of their terms is h(a,0) ⊖ h(a,0); the cache stores no entry for
// them, mirroring how the traversal sweep skips zero runs via the memoized
// ZeroSumCache.

// PageSumCache memoizes per-page state-hash contributions keyed by page
// number and maintains their running total — the raw (pre-ignore-set) State
// Hash. Zero contributions are not stored: an absent page reads as
// Digest(0), so freed or all-zero pages cost no map entry. Not safe for
// concurrent use.
type PageSumCache struct {
	sums  map[uint64]Digest
	total Digest
}

// NewPageSumCache returns an empty cache: no pages, total Zero.
func NewPageSumCache() *PageSumCache {
	return &PageSumCache{sums: make(map[uint64]Digest)}
}

// Sum returns the cached contribution of page, Zero when none is stored.
func (c *PageSumCache) Sum(page uint64) Digest { return c.sums[page] }

// Replace swaps page's contribution for next and patches the running total:
// total = total ⊖ old ⊕ next. It returns the contribution replaced. A zero
// next deletes the entry, keeping the cache's footprint proportional to
// pages with live nonzero state.
func (c *PageSumCache) Replace(page uint64, next Digest) (old Digest) {
	old = c.sums[page]
	c.total = c.total.Subtract(old).Combine(next)
	if next == Zero {
		delete(c.sums, page)
	} else {
		c.sums[page] = next
	}
	return old
}

// Add accumulates d into page's contribution and the running total — the
// rebuild primitive a full sweep uses to seed the cache one run at a time
// (several runs may land on one page when blocks share it).
func (c *PageSumCache) Add(page uint64, d Digest) {
	if d == Zero {
		return
	}
	c.total = c.total.Combine(d)
	c.sums[page] = c.sums[page].Combine(d)
}

// Total returns Σ C(p) over all cached pages — the raw State Hash.
func (c *PageSumCache) Total() Digest { return c.total }

// Len returns the number of pages with a nonzero cached contribution.
func (c *PageSumCache) Len() int { return len(c.sums) }

// Reset empties the cache for a full rebuild.
func (c *PageSumCache) Reset() {
	clear(c.sums)
	c.total = Zero
}
