package sim

import (
	"math/rand"
	"testing"

	"instantcheck/internal/mem"
	"instantcheck/internal/replay"
)

// bufStreamProg is the store-buffer torture workload: a randomized mix of
// stores, FP stores, malloc/free churn, explicit checkpoints, hashing-gate
// toggles and machine-wide rounding flips — every event that can interleave
// with a buffered window. All sync-free, so any schedule is comparable.
type bufStreamProg struct {
	nt       int
	progSeed uint64
	steps    int

	global uint64
	fps    uint64
}

func (p *bufStreamProg) Name() string { return "bufstream" }
func (p *bufStreamProg) Threads() int { return p.nt }
func (p *bufStreamProg) Setup(t *Thread) {
	p.global = t.AllocStatic("static:buf.global", 32, mem.KindWord)
	p.fps = t.AllocStatic("static:buf.fps", 8*p.nt, mem.KindFloat)
}
func (p *bufStreamProg) Worker(t *Thread) {
	rng := rand.New(rand.NewSource(int64(p.progSeed) + int64(t.TID())*7919))
	var blocks []uint64
	for s := 0; s < p.steps; s++ {
		switch rng.Intn(12) {
		case 0, 1, 2, 3: // store to a thread-owned slice (hot: coalesces)
			i := t.TID()*8 + rng.Intn(8)
			t.Store(p.global+uint64(i)*8, rng.Uint64())
		case 4, 5: // FP store (exercises rounding at drain)
			j := t.TID()*8 + rng.Intn(8)
			t.StoreF(p.fps+uint64(j)*8, float64(rng.Intn(1000))/7.0)
		case 6: // malloc + fill
			b := t.Malloc("buf.heap", rng.Intn(4)+1, mem.KindWord)
			t.Store(b, rng.Uint64())
			blocks = append(blocks, b)
		case 7: // free — the erase pair rides the batch path
			if len(blocks) > 0 {
				k := rng.Intn(len(blocks))
				t.Free(blocks[k])
				blocks = append(blocks[:k], blocks[k+1:]...)
			}
		case 8: // explicit checkpoint: TH becomes observable mid-window
			if t.TID() == 0 {
				t.Checkpoint("cp")
			}
		case 9: // hashing gate toggle (analysis-tool windows, §3.3)
			if rng.Intn(2) == 0 {
				t.StopHashing()
				t.Store(p.global+uint64(t.TID()*8)*8, rng.Uint64())
				t.StartHashing()
			}
		case 10: // machine-wide rounding flip: must drain every buffer
			if t.TID() == 0 {
				t.Machine().SetFPRounding(rng.Intn(2) == 0)
			}
		case 11: // pure compute: varies preemption alignment
			t.Compute(rng.Intn(10))
		}
	}
	for _, b := range blocks {
		t.Free(b)
	}
}

// runBufStream executes the torture workload with the given buffer size.
func runBufStream(t *testing.T, scheme Scheme, words int, progSeed uint64, schedSeed int64, log *replay.AddrLog) *Result {
	t.Helper()
	m := NewMachine(Config{
		Threads:          3,
		ScheduleSeed:     schedSeed,
		Scheme:           scheme,
		StoreBufferWords: words,
		AddrLog:          log,
	})
	res, err := m.Run(&bufStreamProg{nt: 3, progSeed: progSeed, steps: 60})
	if err != nil {
		t.Fatalf("bufstream run: %v", err)
	}
	return res
}

// FuzzBufferedEqualsUnbatched is the tentpole's bit-identity gate at the
// simulator level: for any op stream, any schedule and any buffer size,
// the buffered SW-Inc and HW-Inc schemes must produce exactly the
// per-checkpoint hash vector of inline per-store hashing. Not "equivalent
// modulo reordering" — the same uint64s, at every checkpoint.
func FuzzBufferedEqualsUnbatched(f *testing.F) {
	f.Add(uint64(1), int64(2), uint8(0))
	f.Add(uint64(11), int64(5), uint8(4))
	f.Add(uint64(99), int64(42), uint8(255))
	f.Fuzz(func(t *testing.T, progSeed uint64, schedSeed int64, words uint8) {
		for _, scheme := range []Scheme{SWInc, HWInc} {
			log := replay.NewAddrLog()
			inline := runBufStream(t, scheme, -1, progSeed, schedSeed, log)
			buffered := runBufStream(t, scheme, int(words)%128+1, progSeed, schedSeed, log)
			iv, bv := inline.SHVector(), buffered.SHVector()
			if len(iv) != len(bv) {
				t.Fatalf("%v: checkpoint counts differ: inline %d, buffered %d", scheme, len(iv), len(bv))
			}
			for i := range iv {
				if iv[i] != bv[i] {
					t.Fatalf("%v checkpoint %d (%s): inline %s != buffered %s",
						scheme, i, inline.Checkpoints[i].Label, iv[i], bv[i])
				}
			}
			if inline.MHMStats.BufferFlushes != 0 {
				t.Fatalf("%v: inline run flushed %d times", scheme, inline.MHMStats.BufferFlushes)
			}
			if buffered.MHMStats.BufferFlushes == 0 {
				t.Fatalf("%v: buffered run never drained", scheme)
			}
			// Legacy accounting must not notice the buffer.
			is, bs := inline.MHMStats, buffered.MHMStats
			if is.HashedStores != bs.HashedStores || is.SkippedStores != bs.SkippedStores ||
				is.RoundedStores != bs.RoundedStores || is.MinusOps != bs.MinusOps || is.PlusOps != bs.PlusOps {
				t.Fatalf("%v: per-store stats diverged: inline %+v, buffered %+v", scheme, is, bs)
			}
		}
	})
}

// TestStoreBufferEnvPin checks ICHECK_STORE_BUFFER=off disables buffering
// process-wide regardless of the config (the benchmark A/B pin).
func TestStoreBufferEnvPin(t *testing.T) {
	t.Setenv("ICHECK_STORE_BUFFER", "off")
	res := runBufStream(t, SWInc, 0, 3, 4, replay.NewAddrLog())
	if res.MHMStats.BufferFlushes != 0 {
		t.Errorf("env pin ignored: %d flushes", res.MHMStats.BufferFlushes)
	}
	if res.Counters.StoreBufferFlushes != 0 {
		t.Errorf("counters mirror shows %d flushes under pin", res.Counters.StoreBufferFlushes)
	}
}

// TestStoreBufferSchemeGate checks the buffer only attaches to the true
// incremental schemes: SW-InstantCheck_NonAtomic keeps its naive inline
// instrumentation (its §4.1 race window must stay observable), and the
// traversal scheme has no per-store hashing to batch.
func TestStoreBufferSchemeGate(t *testing.T) {
	for _, scheme := range []Scheme{SWIncNonAtomic, SWTr, Native} {
		m := NewMachine(Config{Threads: 2, ScheduleSeed: 1, Scheme: scheme, StoreBufferWords: 64})
		res, err := m.Run(&allocFreeProg{nt: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.MHMStats.BufferFlushes != 0 || res.Counters.StoreBufferFlushes != 0 {
			t.Errorf("%v: store buffer attached (flushes=%d)", scheme, res.MHMStats.BufferFlushes)
		}
	}
}

// TestStoreBufferCountersMirror checks the run-end copy of the aggregated
// buffer stats into the cost-model counters.
func TestStoreBufferCountersMirror(t *testing.T) {
	res := runBufStream(t, HWInc, 16, 7, 8, replay.NewAddrLog())
	c, s := res.Counters, res.MHMStats
	if c.StoreBufferFlushes != s.BufferFlushes || c.StoreBufferDrainedWords != s.DrainedWords ||
		c.StoreBufferCoalesced != s.CoalescedStores {
		t.Errorf("counters %+v do not mirror MHM stats %+v", c, s)
	}
	if s.BufferFlushes == 0 || s.DrainedWords == 0 {
		t.Errorf("buffered run did no batch work: %+v", s)
	}
}
