package core

import "instantcheck/internal/sim"

// Class is the determinism taxonomy of Table 1.
type Class int

const (
	// ClassBitDeterministic: every run produces bit-identical state at
	// every checking point.
	ClassBitDeterministic Class = iota
	// ClassFPDeterministic: deterministic once FP values are rounded
	// (differences come only from FP-precision limitations).
	ClassFPDeterministic
	// ClassStructDeterministic: deterministic once small, explicitly
	// identified nondeterministic structures are deleted from the hash
	// (with FP rounding also applied, as the paper does for cholesky).
	ClassStructDeterministic
	// ClassNondeterministic: nondeterministic even after rounding and
	// (if provided) structure isolation.
	ClassNondeterministic
)

// String names the class like Table 1's row groups.
func (c Class) String() string {
	switch c {
	case ClassBitDeterministic:
		return "bit-by-bit"
	case ClassFPDeterministic:
		return "FP-prec"
	case ClassStructDeterministic:
		return "small-struct"
	case ClassNondeterministic:
		return "NDet"
	default:
		return "Class(?)"
	}
}

// Characterization gathers the campaigns behind one Table 1 row.
type Characterization struct {
	// Program names the workload.
	Program string
	// Class is the resulting determinism class.
	Class Class
	// BitByBit is the campaign with no rounding and no isolation
	// (Table 1 columns 5–6).
	BitByBit *Report
	// AfterRounding is the campaign with FP rounding (columns 7–8).
	AfterRounding *Report
	// AfterIsolation is the campaign with rounding plus the ignore set
	// (column 9); nil when no ignore set was supplied.
	AfterIsolation *Report
}

// Best returns the report for the app's final configuration: the one whose
// checking-point counts Table 1 columns 10–12 report (isolation if it was
// needed and provided, else rounding if needed, else bit-by-bit).
func (ch *Characterization) Best() *Report {
	switch ch.Class {
	case ClassBitDeterministic:
		return ch.BitByBit
	case ClassFPDeterministic:
		return ch.AfterRounding
	case ClassStructDeterministic:
		return ch.AfterIsolation
	default:
		if ch.AfterIsolation != nil {
			return ch.AfterIsolation
		}
		return ch.AfterRounding
	}
}

// Characterize classifies a program into the Table 1 taxonomy by running up
// to three campaigns: bit-by-bit, with FP rounding, and (when ignore is
// non-nil) with rounding plus structure isolation. The ignore set is the
// paper's explicit programmer input; passing nil means no structures are
// isolated.
func (c Campaign) Characterize(build Builder, ignore *sim.IgnoreSet) (*Characterization, error) {
	c, err := c.withDefaults()
	if err != nil {
		return nil, err
	}

	bitC := c
	bitC.RoundFP = false
	bitC.Ignore = nil
	bit, err := bitC.Check(build)
	if err != nil {
		return nil, err
	}

	roundC := c
	roundC.RoundFP = true
	roundC.Ignore = nil
	rounded, err := roundC.Check(build)
	if err != nil {
		return nil, err
	}

	ch := &Characterization{Program: bit.Program, BitByBit: bit, AfterRounding: rounded}

	if ignore != nil && !ignore.Empty() {
		isoC := c
		isoC.RoundFP = true
		isoC.Ignore = ignore
		iso, err := isoC.Check(build)
		if err != nil {
			return nil, err
		}
		ch.AfterIsolation = iso
	}

	switch {
	case bit.Deterministic():
		ch.Class = ClassBitDeterministic
	case rounded.Deterministic():
		ch.Class = ClassFPDeterministic
	case ch.AfterIsolation != nil && ch.AfterIsolation.Deterministic():
		ch.Class = ClassStructDeterministic
	default:
		ch.Class = ClassNondeterministic
	}
	return ch, nil
}
