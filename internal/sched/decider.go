package sched

import "math/rand"

// Decider supplies the scheduler's decisions: how many operations to run
// before the next forced preemption, and which runnable thread to pick at
// each switch point. The default is the seeded random decider (the
// PCT/CHESS-style testing model of §7.1); the systematic-testing explorer
// (paper §6.2) substitutes a scripted decider to enumerate schedules.
type Decider interface {
	// SwitchBudget returns the number of Yield calls to absorb before the
	// next forced preemption decision (>= 1).
	SwitchBudget() int
	// Pick selects one of n runnable candidates (0 <= result < n). The
	// candidate list order is a deterministic function of the schedule so
	// far, so a scripted decider replays exactly.
	Pick(n int) int
}

// TidPicker is an optional Decider extension for policies that need thread
// identities rather than a candidate count — priority scheduling cannot be
// expressed through Pick(n) because the runnable list's order is an
// artifact of the scheduler's swap-removal bookkeeping. When a Decider
// implements TidPicker, the scheduler calls PickTid instead of Pick at
// every switch point with more than one candidate.
type TidPicker interface {
	// PickTid selects the next thread from runnable (never empty, len >= 2).
	// cur is the thread that was running (-1 before the first dispatch);
	// cur's presence in runnable distinguishes a forced preemption (cur
	// still runnable) from a blocking switch (cur absent). runnable must
	// not be retained or mutated.
	PickTid(cur int, runnable []int) int
}

// randomDecider is the default seeded random policy.
type randomDecider struct {
	rng      *rand.Rand
	interval int
}

// newRandomDecider builds the default policy. interval is the mean
// operation count between preemptions.
func newRandomDecider(seed int64, interval int) *randomDecider {
	return &randomDecider{rng: rand.New(rand.NewSource(seed)), interval: interval}
}

// SwitchBudget draws uniformly on [1, 2*interval] (mean interval + 0.5).
func (d *randomDecider) SwitchBudget() int { return 1 + d.rng.Intn(2*d.interval) }

// Pick selects uniformly.
func (d *randomDecider) Pick(n int) int { return d.rng.Intn(n) }
