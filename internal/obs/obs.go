// Package obs is the reproduction's observability layer: a small,
// stdlib-only metrics registry with atomic counters, gauges and histograms
// and a Prometheus text-exposition exporter. The checkfarm daemon mounts a
// registry at /metrics so that a long-running determinism-checking service
// is not a black box: job lifecycle, queue depth, store latencies and the
// hash-path counters of the simulator are all scrapeable.
//
// Design constraints, in order:
//
//   - zero dependencies: the repo's no-third-party-code rule applies, so the
//     exposition format is written (and linted) by hand;
//   - no hot-path cost: the simulator's load/store fast path must not gain a
//     single instruction. Per-event counters are therefore accumulated in the
//     simulator's existing plain (single-threaded) counters and flushed into
//     the registry once per run; counters that concurrent run workers bump
//     are sharded across padded cells and aggregated only at scrape time;
//   - scrape-time aggregation: Value() and WritePrometheus fold shards and
//     compute derived series, so readers pay, writers don't.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// cell is one shard of a ShardedCounter, padded to its own cache line so
// concurrent writers on different shards never false-share.
type cell struct {
	n atomic.Uint64
	_ [7]uint64
}

// ShardedCounter is a counter for write paths hot enough that a single
// atomic would bounce a cache line between workers. Each writer owns a
// shard (any int hint — a worker index, a run index — is masked into
// range); Value aggregates the shards at read time.
type ShardedCounter struct {
	cells []cell
	mask  int
}

// newSharded returns a counter with at least shards cells (rounded up to a
// power of two so Add can mask instead of mod).
func newSharded(shards int) *ShardedCounter {
	n := 1
	for n < shards {
		n <<= 1
	}
	return &ShardedCounter{cells: make([]cell, n), mask: n - 1}
}

// Add adds n to the shard selected by hint.
func (s *ShardedCounter) Add(hint int, n uint64) {
	s.cells[hint&s.mask].n.Add(n)
}

// Value sums all shards.
func (s *ShardedCounter) Value() uint64 {
	var total uint64
	for i := range s.cells {
		total += s.cells[i].n.Load()
	}
	return total
}

// Histogram counts observations into fixed buckets, Prometheus-style:
// cumulative bucket counts plus a running sum. Observe is lock-free.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implied
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// DurationBuckets is the default bucket layout for latencies in seconds,
// spanning 10µs to 10s.
var DurationBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// kind is the exposition TYPE of a family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// series is one labeled time series within a family. read returns the
// current value; hist is set instead for histogram series.
type series struct {
	labels string // rendered `{k="v"}` suffix, "" for unlabeled
	read   func() float64
	hist   *Histogram
}

// family is one registered metric name with its help text and series.
type family struct {
	name   string
	help   string
	kind   kind
	mu     sync.Mutex
	series []*series
}

// Registry holds named metric families and renders them in the Prometheus
// text exposition format. All registration methods panic on an invalid or
// duplicate name: metrics are wired at startup, and a misnamed metric is a
// programming error, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var (
	metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// newFamily registers a family, panicking on invalid or duplicate names.
func (r *Registry) newFamily(name, help string, k kind) *family {
	if !metricName.MatchString(name) {
		panic("obs: invalid metric name " + name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	f := &family{name: name, help: help, kind: k}
	r.families[name] = f
	return f
}

func (f *family) add(s *series) {
	f.mu.Lock()
	f.series = append(f.series, s)
	f.mu.Unlock()
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	f := r.newFamily(name, help, kindCounter)
	f.add(&series{read: func() float64 { return float64(c.Value()) }})
	return c
}

// Sharded registers and returns a sharded counter with at least shards
// cells; shards <= 0 selects a single cell.
func (r *Registry) Sharded(name, help string, shards int) *ShardedCounter {
	if shards <= 0 {
		shards = 1
	}
	s := newSharded(shards)
	f := r.newFamily(name, help, kindCounter)
	f.add(&series{read: func() float64 { return float64(s.Value()) }})
	return s
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	f := r.newFamily(name, help, kindGauge)
	f.add(&series{read: func() float64 { return float64(g.Value()) }})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time. fn
// must be safe to call concurrently.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.newFamily(name, help, kindGauge)
	f.add(&series{read: fn})
}

// Histogram registers and returns a histogram with the given bucket upper
// bounds (ascending; +Inf is implicit). Nil selects DurationBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	h := newHistogram(bounds)
	f := r.newFamily(name, help, kindHistogram)
	f.add(&series{hist: h})
	return h
}

// CounterVec is a family of counters distinguished by one label.
type CounterVec struct {
	f     *family
	label string

	mu      sync.Mutex
	byValue map[string]*Counter
	sharded map[string]*ShardedCounter
	shards  int
}

// CounterVec registers a counter family partitioned by the given label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if !labelName.MatchString(label) {
		panic("obs: invalid label name " + label)
	}
	return &CounterVec{
		f:       r.newFamily(name, help, kindCounter),
		label:   label,
		byValue: make(map[string]*Counter),
		sharded: make(map[string]*ShardedCounter),
	}
}

// ShardedCounterVec registers a counter family partitioned by the given
// label whose per-value counters are sharded across at least shards cells.
func (r *Registry) ShardedCounterVec(name, help, label string, shards int) *CounterVec {
	v := r.CounterVec(name, help, label)
	if shards <= 0 {
		shards = 1
	}
	v.shards = shards
	return v
}

// With returns the counter for the given label value, creating it on first
// use. The returned counter is cached; hot callers should hold on to it.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.byValue[value]
	if c == nil {
		c = &Counter{}
		v.byValue[value] = c
		v.f.add(&series{
			labels: renderLabels(v.label, value),
			read:   func() float64 { return float64(c.Value()) },
		})
	}
	return c
}

// WithSharded returns the sharded counter for the given label value (only
// on vecs created with ShardedCounterVec).
func (v *CounterVec) WithSharded(value string) *ShardedCounter {
	if v.shards == 0 {
		panic("obs: WithSharded on a non-sharded CounterVec")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	s := v.sharded[value]
	if s == nil {
		s = newSharded(v.shards)
		v.sharded[value] = s
		v.f.add(&series{
			labels: renderLabels(v.label, value),
			read:   func() float64 { return float64(s.Value()) },
		})
	}
	return s
}

// GaugeVec is a family of gauges distinguished by one label — the fleet's
// per-worker liveness series is the motivating user: one family, one series
// per worker name, workers appearing dynamically as they first report in.
type GaugeVec struct {
	f     *family
	label string

	mu      sync.Mutex
	byValue map[string]*Gauge
	funcs   map[string]bool
}

// GaugeVec registers a gauge family partitioned by the given label.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if !labelName.MatchString(label) {
		panic("obs: invalid label name " + label)
	}
	return &GaugeVec{
		f:       r.newFamily(name, help, kindGauge),
		label:   label,
		byValue: make(map[string]*Gauge),
		funcs:   make(map[string]bool),
	}
}

// With returns the gauge for the given label value, creating it on first
// use. The returned gauge is cached; hot callers should hold on to it.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g := v.byValue[value]
	if g == nil {
		g = &Gauge{}
		v.byValue[value] = g
		v.f.add(&series{
			labels: renderLabels(v.label, value),
			read:   func() float64 { return float64(g.Value()) },
		})
	}
	return g
}

// Func registers a scrape-time computed series for the given label value.
// The first registration for a value wins; later calls are no-ops, so
// callers that re-announce an entity (a worker reconnecting) need not track
// whether its series already exists. fn must be safe to call concurrently.
func (v *GaugeVec) Func(value string, fn func() float64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.funcs[value] || v.byValue[value] != nil {
		return
	}
	v.funcs[value] = true
	v.f.add(&series{labels: renderLabels(v.label, value), read: fn})
}

// renderLabels formats a single-label suffix with exposition escaping.
func renderLabels(name, value string) string {
	return fmt.Sprintf("{%s=%q}", name, value)
}
