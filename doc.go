// Package instantcheck is a from-scratch reproduction of "InstantCheck:
// Checking the Determinism of Parallel Programs Using On-the-Fly
// Incremental Hashing" (Nistor, Marinov, Torrellas — MICRO 2010).
//
// InstantCheck checks the *external determinism* of parallel programs
// during testing: run the program many times for one input, distill the
// memory state into a 64-bit hash at every checkpoint (each barrier and the
// end of the run), and compare the hashes across runs. The hash is
// maintained *incrementally* as the program writes memory — the
// Bellare-Micciancio construction SH = ⊕ h(addr, value) over a mod-2^64
// group — so it is instantly available at any checkpoint without traversing
// memory.
//
// The package exposes:
//
//   - the checking API (Campaign, Check, Characterize): run a simulated
//     parallel program N times under a randomized serializing scheduler and
//     compare per-checkpoint state hashes;
//   - the program-authoring API (Program, Thread, Machine): write workloads
//     against a simulated shared memory with locks, barriers, condition
//     variables, malloc/free, output, and replayed library calls;
//   - the three hashing schemes of the paper (HWInc, SWInc, SWTr) and the
//     §7.3 instruction-count overhead model;
//   - the control of input nondeterminism (§5): malloc address replay,
//     library-call record/replay, FP round-off policies, and ignore-sets
//     that delete nondeterministic structures from the hash;
//   - the state-diff bug-localization tool (§2.3);
//   - the paper's 17 evaluation workloads and the drivers that regenerate
//     Table 1, Table 2 and Figures 5, 6 and 8 (see Table1, Table2,
//     Figure5, Figure6, Figure8);
//   - a static analyzer, cmd/icvet, that checks simulated programs obey
//     the instrumentation contract the hashing schemes assume: no shared
//     state outside Thread.Load/Store, no unlocked read-modify-writes
//     (§4.1), kind-correct stores (§5), balanced lock and hashing
//     regions, and ignore rules that name real allocation sites (§2.2);
//   - a determinism-checking service, cmd/checkd (internal/farm): a
//     daemon with a job queue, a worker pool that runs a campaign's
//     independent runs in parallel (Campaign.Parallelism uses the same
//     machinery in-process), an append-only crash-tolerant hash-log
//     store that resumes half-finished campaigns across restarts, and an
//     HTTP API — driven by `instantcheck remote` — whose hash-log
//     streams can be diffed across hosts;
//   - an observability layer (internal/obs): stdlib-only counters,
//     gauges and histograms with a Prometheus text exporter, served by
//     checkd at /metrics alongside a JSON /healthz and opt-in
//     net/http/pprof (-pprof). Job lifecycle, queue depth, store fsync
//     latency and the per-scheme hash path (stores hashed, checkpoints,
//     traversal sweeps, fast-window hit rate) are all scrapeable;
//     `instantcheck remote stats` renders a snapshot.
//
// Quick start: see examples/quickstart, which checks the paper's Figure 1
// program — internally nondeterministic, externally deterministic.
package instantcheck
