package explore

import (
	"errors"
	"fmt"

	"instantcheck/internal/ihash"
	"instantcheck/internal/replay"
	"instantcheck/internal/sim"
)

// Options configures an exploration.
type Options struct {
	// Threads is the program's worker count.
	Threads int
	// PreemptEvery inserts a scheduling decision every k simulated
	// operations in addition to the decisions at blocking points; 0
	// explores only blocking-point nondeterminism (non-preemptive
	// schedules).
	PreemptEvery int
	// MaxRuns bounds the number of schedules executed (0 = 100000).
	MaxRuns int
	// MaxDecisions bounds the branching depth considered per run: free
	// decisions beyond it are not branched on (0 = unlimited). This is
	// the "bounded" in bounded systematic testing.
	MaxDecisions int
	// Prune enables state-hash pruning at quiescent checkpoints.
	Prune bool
	// Scheme selects the hashing scheme (default HWInc).
	Scheme sim.Scheme
	// RoundFP enables FP rounding for the state hashes.
	RoundFP bool
	// InputSeed fixes the program's replayed input.
	InputSeed int64
	// SwitchInterval is the mean operation count between random forced
	// preemptions for FindNondeterminism and strategy runs (<= 0 selects
	// the scheduler default). Systematic ignores it: its decider controls
	// switching through PreemptEvery.
	SwitchInterval int
	// ScheduleSeed is the base schedule seed: run i of a random-schedule
	// search uses ScheduleSeed + i + 1, so repeated campaigns with
	// different bases explore different schedule sequences. The zero
	// value reproduces the historical sequence (seeds 1, 2, 3, ...).
	ScheduleSeed int64
	// Hasher overrides the location hash (nil selects the default).
	Hasher ihash.Hasher
	// Ignore applies an ignore set to every run's hashes (§2.2).
	Ignore *sim.IgnoreSet
	// SeedPrefixes pre-loads Systematic's DFS stack with scripted choice
	// prefixes to explore before the free search — the coverage-guided
	// re-entry point, and the knob regression tests use to feed a stale
	// prefix. A prefix that no longer matches the program's decision tree
	// is counted as a replay divergence, not silently explored.
	SeedPrefixes [][]int
}

// Result summarizes an exploration.
type Result struct {
	// Runs is the number of schedules executed (including aborted ones).
	Runs int
	// CompletedRuns is the number of schedules that ran to the end.
	CompletedRuns int
	// PrunedRuns is the number of schedules aborted by state-hash pruning.
	PrunedRuns int
	// FinalStates maps each distinct final State Hash to the number of
	// completed runs that produced it. One entry means the program is
	// externally deterministic across the explored schedules.
	FinalStates map[ihash.Digest]int
	// StatesSeen is the number of distinct (checkpoint, hash) pairs
	// encountered.
	StatesSeen int
	// Exhausted is true when the whole bounded schedule tree was covered
	// within MaxRuns.
	Exhausted bool
	// ReplayDivergences counts runs whose scripted prefix no longer
	// matched the program's decision tree (a stale or corrupt replay
	// script). Divergent runs explore an unintended schedule, so their
	// states are not marked visited and they are not branched on.
	ReplayDivergences int
}

// Deterministic reports whether every completed schedule ended in the same
// state.
func (r *Result) Deterministic() bool { return len(r.FinalStates) <= 1 }

// errPruned marks a run cancelled by state-hash pruning.
var errPruned = errors.New("explore: state already visited")

// errReplayDivergence marks a run whose scripted prefix went out of range
// — the script was recorded against a different decision tree. The run is
// aborted at the next checkpoint so it cannot corrupt the visited-state
// bookkeeping.
var errReplayDivergence = errors.New("explore: scripted prefix diverged from the decision tree")

// decision records one branching point encountered during a run.
type decision struct {
	options int
	chosen  int
}

// scriptedDecider replays a choice prefix, then follows a deterministic
// round-robin default, recording every decision point. The default must
// rotate rather than always taking option 0: a fixed choice can starve a
// program that spins on a flag (hand-coded synchronization) by re-picking
// the spinner forever, while rotation guarantees progress.
type scriptedDecider struct {
	prefix       []int
	preemptEvery int
	trace        []decision
	// diverged is set when a prefix choice was out of range for its
	// decision point: the script no longer matches the tree, and every
	// subsequent decision is off-script. The explorer surfaces it as a
	// counted replay divergence instead of silently exploring the wrong
	// schedule.
	diverged bool
}

// SwitchBudget implements sched.Decider.
func (d *scriptedDecider) SwitchBudget() int {
	if d.preemptEvery <= 0 {
		return 1 << 30 // switch only at blocking points
	}
	return d.preemptEvery
}

// Pick implements sched.Decider: scripted prefix first, then round-robin.
func (d *scriptedDecider) Pick(n int) int {
	i := len(d.trace)
	choice := i % n
	if i < len(d.prefix) {
		choice = d.prefix[i]
		if choice >= n || choice < 0 {
			// The script was recorded against a different tree. Fall back
			// to the rotation default to keep the run progressing, and
			// flag the divergence so the explorer aborts at the next
			// checkpoint and discards the run's bookkeeping.
			d.diverged = true
			choice = i % n
		}
	}
	d.trace = append(d.trace, decision{options: n, chosen: choice})
	return choice
}

// stateKey identifies a quiescent program state.
type stateKey struct {
	ordinal int
	sh      ihash.Digest
}

// Systematic enumerates the program's bounded schedule tree and returns
// coverage statistics. With Prune set, subtrees rooted at already-visited
// quiescent states are cut.
func Systematic(build func() sim.Program, o Options) (*Result, error) {
	if o.Threads <= 0 {
		return nil, fmt.Errorf("explore: Threads must be positive")
	}
	maxRuns := o.MaxRuns
	if maxRuns == 0 {
		maxRuns = 100000
	}
	scheme := o.Scheme
	if scheme == sim.Native {
		scheme = sim.HWInc
	}

	res := &Result{FinalStates: make(map[ihash.Digest]int)}
	seen := make(map[stateKey]bool)
	env := replay.NewEnv(o.InputSeed)
	addrLog := replay.NewAddrLog()

	// DFS over choice prefixes. Caller-seeded prefixes (coverage-guided
	// re-entry) are pushed above the free root so they explore first.
	stack := [][]int{nil}
	for i := len(o.SeedPrefixes) - 1; i >= 0; i-- {
		stack = append(stack, o.SeedPrefixes[i])
	}
	for len(stack) > 0 && res.Runs < maxRuns {
		prefix := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		d := &scriptedDecider{prefix: prefix, preemptEvery: o.PreemptEvery}
		pruned := false
		// The hook is the single place visited states are marked: it sees
		// every non-final checkpoint of every run, whether the run later
		// completes or is pruned, so the completed-run path below must not
		// (and does not) re-mark anything — the two bookkeeping paths
		// cannot drift apart.
		hook := func(cp sim.Checkpoint) error {
			if cp.Label == "end" {
				return nil
			}
			if d.diverged {
				// Fail loudly at the first quiescent point after the
				// script went off the rails; nothing from this run is
				// marked visited.
				return errReplayDivergence
			}
			// Checkpoints reached before the scripted prefix is consumed
			// lie on a path shared with the parent schedule; their states
			// are necessarily already marked and must not prune this run
			// before it diverges.
			if len(d.trace) < len(d.prefix) {
				return nil
			}
			key := stateKey{cp.Ordinal, cp.SH}
			if o.Prune && seen[key] {
				pruned = true
				return errPruned
			}
			seen[key] = true
			return nil
		}
		m := sim.NewMachine(sim.Config{
			Threads:        o.Threads,
			Scheme:         scheme,
			Hasher:         o.Hasher,
			RoundFP:        o.RoundFP,
			Ignore:         o.Ignore,
			Decider:        d,
			CheckpointHook: hook,
			Env:            env,
			AddrLog:        addrLog,
		})
		r, err := m.Run(build())
		res.Runs++
		switch {
		case d.diverged && (err == nil || errors.Is(err, errReplayDivergence)):
			// A diverged run explored an unintended schedule: count it,
			// mark nothing, branch on nothing.
			res.ReplayDivergences++
			continue
		case err == nil:
			res.CompletedRuns++
			res.FinalStates[r.FinalSH()]++
		case pruned && errors.Is(err, errPruned):
			res.PrunedRuns++
		default:
			return nil, fmt.Errorf("explore: run %d: %w", res.Runs, err)
		}

		// Branch on the free decisions this run took (beyond the prefix),
		// in reverse order so the DFS explores left-to-right.
		limit := len(d.trace)
		if o.MaxDecisions > 0 && o.MaxDecisions < limit {
			limit = o.MaxDecisions
		}
		for i := limit - 1; i >= len(prefix); i-- {
			dec := d.trace[i]
			for c := dec.options - 1; c >= 1; c-- {
				branch := make([]int, i+1)
				for j := 0; j < i; j++ {
					branch[j] = d.trace[j].chosen
				}
				branch[i] = c
				stack = append(stack, branch)
			}
		}
	}
	res.StatesSeen = len(seen)
	res.Exhausted = len(stack) == 0
	return res, nil
}
