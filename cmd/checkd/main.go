// Command checkd is the checkfarm daemon: a determinism-checking service
// that accepts campaign submissions over HTTP, executes their runs on a
// parallel worker pool, and persists every State Hash to an append-only
// log so that a killed daemon resumes half-finished campaigns exactly
// where they stopped.
//
// Usage:
//
//	checkd -addr :8347 -store farm.log [-run-workers N] [-job-workers N]
//
// The API (see internal/farm):
//
//	POST   /api/v1/jobs              submit a campaign (JSON JobSpec)
//	GET    /api/v1/jobs              list jobs
//	GET    /api/v1/jobs/{id}         one job's status
//	DELETE /api/v1/jobs/{id}         cancel
//	GET    /api/v1/jobs/{id}/report  finished campaign's report
//	GET    /api/v1/jobs/{id}/hashlog per-checkpoint hash stream (text)
//	POST   /api/v1/compare           diff two hash logs
//	GET    /healthz                  liveness
//
// On SIGINT/SIGTERM the daemon stops accepting connections, interrupts
// running campaigns after their in-flight runs commit, and exits; the
// store keeps every committed run, so the next start re-queues the
// interrupted campaigns and re-executes only what is missing.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"instantcheck/internal/farm"
)

func main() {
	addr := flag.String("addr", ":8347", "HTTP listen address")
	storePath := flag.String("store", "checkfarm.log", "path of the persistent hash-log store")
	runWorkers := flag.Int("run-workers", runtime.GOMAXPROCS(0), "default run-level parallelism for jobs that set none")
	jobWorkers := flag.Int("job-workers", 1, "campaigns executed concurrently")
	flag.Parse()
	log.SetPrefix("checkd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	store, err := farm.OpenStore(*storePath)
	if err != nil {
		log.Fatal(err)
	}
	srv := farm.NewServer(store, farm.Options{
		RunWorkers: *runWorkers,
		JobWorkers: *jobWorkers,
		Logf:       log.Printf,
	})
	if n := srv.Resume(); n > 0 {
		log.Printf("re-queued %d unfinished job(s) from %s", n, *storePath)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv.Start(ctx)

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		<-ctx.Done()
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx)
	}()

	log.Printf("listening on %s (store %s, %d run workers, %d job workers)",
		*addr, *storePath, *runWorkers, *jobWorkers)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	srv.Wait() // let interrupted jobs commit their in-flight runs
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
}
