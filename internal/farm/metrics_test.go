package farm

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"instantcheck/internal/obs"
)

// sampleValue finds one sample by name and optional label match, failing
// the test when it is absent.
func sampleValue(t *testing.T, samples []obs.Sample, name string, labels map[string]string) float64 {
	t.Helper()
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value
		}
	}
	t.Fatalf("no sample %s%v in scrape", name, labels)
	return 0
}

// TestMetricsEndpoint runs a campaign to completion and checks the scrape:
// the exposition lints clean and the job-lifecycle, store and hash-path
// series carry the values the campaign must have produced.
func TestMetricsEndpoint(t *testing.T) {
	dir := t.TempDir()
	srv, c := startTestDaemon(t, filepath.Join(dir, "farm.log"), Options{RunWorkers: 4})

	spec := smokeSpec("fft", "mix64")
	job, err := c.Submit(bg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, c, job.ID).State; st != JobDone {
		t.Fatalf("job state %s", st)
	}

	text, err := c.MetricsText(bg)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Lint(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition does not lint: %v\n%s", err, text)
	}
	samples, err := obs.ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}

	// Job lifecycle.
	if v := sampleValue(t, samples, "checkfarm_jobs_submitted_total", nil); v != 1 {
		t.Errorf("jobs_submitted = %v, want 1", v)
	}
	if v := sampleValue(t, samples, "checkfarm_jobs_finished_total", map[string]string{"state": "done"}); v != 1 {
		t.Errorf("jobs_finished{done} = %v, want 1", v)
	}
	if v := sampleValue(t, samples, "checkfarm_jobs_running", nil); v != 0 {
		t.Errorf("jobs_running = %v, want 0", v)
	}
	if v := sampleValue(t, samples, "checkfarm_queue_depth", nil); v != 0 {
		t.Errorf("queue_depth = %v, want 0", v)
	}
	if v := sampleValue(t, samples, "checkfarm_runs_executed_total", nil); v != float64(spec.Runs) {
		t.Errorf("runs_executed = %v, want %d", v, spec.Runs)
	}
	if v := sampleValue(t, samples, "checkfarm_job_duration_seconds_count", nil); v != 1 {
		t.Errorf("job_duration count = %v, want 1", v)
	}
	if v := sampleValue(t, samples, "checkfarm_run_duration_seconds_count", nil); v != float64(spec.Runs) {
		t.Errorf("run_duration count = %v, want %d", v, spec.Runs)
	}

	// Store: one job line, one jobend, 8 run batches, plus the header of a
	// fresh log — at least 10 durable appends, no errors reported.
	if v := sampleValue(t, samples, "checkfarm_store_appends_total", nil); v < 10 {
		t.Errorf("store_appends = %v, want >= 10", v)
	}
	if v := sampleValue(t, samples, "checkfarm_store_append_seconds_count", nil); v < 10 {
		t.Errorf("store_append_seconds count = %v, want >= 10", v)
	}

	// Hash path: the default scheme is HW-InstantCheck_Inc; an incremental
	// campaign hashes every data store, and stores/checkpoints are exact
	// multiples of the per-run counters, so nonzero is the portable check.
	scheme := map[string]string{"scheme": "HW-InstantCheck_Inc"}
	stores := sampleValue(t, samples, "instantcheck_stores_total", scheme)
	hashed := sampleValue(t, samples, "instantcheck_stores_hashed_total", scheme)
	if stores <= 0 || hashed <= 0 {
		t.Errorf("stores=%v hashed=%v, want both > 0", stores, hashed)
	}
	if hashed < stores {
		t.Errorf("stores_hashed (%v) < stores (%v): incremental scheme must hash every data store", hashed, stores)
	}
	cps := sampleValue(t, samples, "instantcheck_checkpoints_total", scheme)
	if cps <= 0 {
		t.Errorf("checkpoints = %v, want > 0", cps)
	}
	if v := sampleValue(t, samples, "instantcheck_checkpoint_words_total", scheme); v <= 0 {
		t.Errorf("checkpoint_words = %v, want > 0", v)
	}
	// Store-buffer batching is on by default for the incremental schemes:
	// every run drains at least once (thread exit). For fft the drained
	// words stay below the hashed stores — coalescing and elision only
	// remove work. (Not an invariant for every app: free erasure also
	// feeds the buffer, so free-heavy workloads can drain more words than
	// HashedStores counts.)
	flushes := sampleValue(t, samples, "instantcheck_storebuffer_flushes_total", scheme)
	drained := sampleValue(t, samples, "instantcheck_storebuffer_drained_words_total", scheme)
	if flushes <= 0 || drained <= 0 {
		t.Errorf("storebuffer flushes=%v drained=%v, want both > 0", flushes, drained)
	}
	if drained > hashed {
		t.Errorf("storebuffer drained words (%v) > stores hashed (%v)", drained, hashed)
	}
	// Fast-window accounting: both sides of the derived hit rate must be
	// populated. (How they compare is workload-dependent — fft's scattered
	// bit-reversal accesses miss the one-page window most of the time,
	// which is exactly what this metric exists to reveal.)
	hits := sampleValue(t, samples, "instantcheck_fastwindow_hits_total", nil)
	misses := sampleValue(t, samples, "instantcheck_fastwindow_misses_total", nil)
	if hits <= 0 || misses <= 0 {
		t.Errorf("fastwindow hits=%v misses=%v, want both > 0", hits, misses)
	}

	// Health endpoint: JSON liveness with the queue summary.
	h, err := c.Health(bg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Jobs != 1 || h.QueueDepth != 0 || h.Running != 0 {
		t.Errorf("health = %+v", h)
	}
	if h.StorePath != srv.store.Path() {
		t.Errorf("health store path = %q", h.StorePath)
	}
}

// logCapture is a threadsafe Logf sink.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCapture) logf(format string, args ...any) {
	lc.mu.Lock()
	lc.lines = append(lc.lines, fmt.Sprintf(format, args...))
	lc.mu.Unlock()
}

func (lc *logCapture) contains(sub string) bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	for _, l := range lc.lines {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}

// TestEndJobWriteFailureSurfaced is the crash-consistency regression test:
// when the store cannot record a job's terminal state, the failure must be
// logged and surfaced on the job for EVERY terminal state — the old code
// only looked at the error when the job was done, so a failed job whose
// jobend line was lost would silently resurrect on the next daemon start.
func TestEndJobWriteFailureSurfaced(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(filepath.Join(dir, "farm.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var logs logCapture
	srv := NewServer(store, Options{RunWorkers: 1, Logf: logs.logf})

	job, err := srv.Submit(smokeSpec("fft", "mix64"))
	if err != nil {
		t.Fatal(err)
	}
	// Break the store under the daemon: every append from here on fails,
	// so the job fails (run commits are lost) AND its jobend is lost too.
	store.f.Close()

	srv.mu.Lock()
	live := srv.jobs[job.ID]
	live.State = JobRunning
	srv.mu.Unlock()
	srv.execute(context.Background(), live)

	got := srv.Job(job.ID)
	if got.State != JobFailed {
		t.Fatalf("job state = %s, want failed", got.State)
	}
	if !strings.Contains(got.Error, "jobend not recorded") {
		t.Errorf("job error does not surface the lost terminal record: %q", got.Error)
	}
	if !logs.contains("recording terminal state") {
		t.Errorf("lost jobend was not logged: %v", logs.lines)
	}
	if v := srv.metrics.storeErrors.With("jobend").Value(); v != 1 {
		t.Errorf("store_errors{jobend} = %d, want 1", v)
	}
}

// TestCancelQueuedEndJobFailureSurfaced covers the same lost-jobend bug on
// the queued-cancel path, which dropped the store error entirely.
func TestCancelQueuedEndJobFailureSurfaced(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(filepath.Join(dir, "farm.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var logs logCapture
	srv := NewServer(store, Options{Logf: logs.logf}) // never started: job stays queued

	job, err := srv.Submit(smokeSpec("fft", "mix64"))
	if err != nil {
		t.Fatal(err)
	}
	store.f.Close()

	if !srv.Cancel(job.ID) {
		t.Fatal("cancel of queued job reported false")
	}
	got := srv.Job(job.ID)
	if got.State != JobCanceled {
		t.Fatalf("job state = %s, want canceled", got.State)
	}
	if !strings.Contains(got.Error, "jobend not recorded") {
		t.Errorf("cancel dropped the store error: job error = %q", got.Error)
	}
	if !logs.contains("recording cancellation failed") {
		t.Errorf("lost cancellation record was not logged: %v", logs.lines)
	}
}
