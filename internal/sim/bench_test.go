package sim

import (
	"testing"

	"instantcheck/internal/mem"
	"instantcheck/internal/replay"
)

// benchRun executes one fuzz run under the given scheme, for comparing the
// runtime (not modeled) cost of the schemes inside this simulator.
func benchRun(b *testing.B, scheme Scheme) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		m := NewMachine(Config{
			Threads:      4,
			ScheduleSeed: int64(i),
			Scheme:       scheme,
			AddrLog:      replay.NewAddrLog(),
		})
		if _, err := m.Run(newFuzz(4, 99, 200)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineNative measures the simulator with checking off.
func BenchmarkMachineNative(b *testing.B) { benchRun(b, Native) }

// BenchmarkMachineHWInc measures the HW-InstantCheck_Inc model.
func BenchmarkMachineHWInc(b *testing.B) { benchRun(b, HWInc) }

// BenchmarkMachineSWTr measures traversal hashing at every checkpoint.
func BenchmarkMachineSWTr(b *testing.B) { benchRun(b, SWTr) }

// travState is the traverse benchmark's workload: a 256-page (1 MiB) live
// state with every word nonzero, the shape a barrier-heavy SPLASH-2 kernel
// presents at its checkpoints.
type travState struct{ base uint64 }

const travStatePages = 256

func (p *travState) Name() string { return "travstate" }
func (p *travState) Threads() int { return 1 }
func (p *travState) Setup(t *Thread) {
	words := travStatePages * mem.PageWords
	p.base = t.AllocStatic("static:travstate", words, mem.KindWord)
	for w := 0; w < words; w++ {
		t.Store(p.base+uint64(w)*mem.WordSize, uint64(w)|1)
	}
}
func (p *travState) Worker(t *Thread) {}

// BenchmarkTraverseHash isolates the per-checkpoint sweep cost on the
// travState state: sequential and goroutine-sharded full sweeps
// (TraverseDeltaOff pins them to the pre-delta behavior — with the cache
// armed, repeated sweeps of an unchanged state would be near-free no-ops),
// and the delta variant, which dirties one of every 16 pages before each
// checkpoint and measures the O(dirty) resweep. The delta variant also
// asserts the delta path was actually taken, so the CI bench-smoke pass
// (one iteration of every benchmark) fails if delta mode silently
// regresses to full sweeps.
func BenchmarkTraverseHash(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		shards int
		mode   TraverseDeltaMode
	}{
		{"sequential", 1, TraverseDeltaOff},
		{"parallel", 4, TraverseDeltaOff},
		{"delta", 1, TraverseDeltaAuto},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			m := NewMachine(Config{
				Threads: 1, ScheduleSeed: 1, Scheme: SWTr,
				TraverseShards: cfg.shards, TraverseDelta: cfg.mode,
			})
			prog := &travState{}
			if _, err := m.Run(prog); err != nil {
				b.Fatal(err)
			}
			var dirtyAddrs []uint64
			if cfg.mode != TraverseDeltaOff {
				_ = m.traverseHash() // seed the page cache, clear the bitmap
				for pn := 0; pn < travStatePages; pn += 16 {
					dirtyAddrs = append(dirtyAddrs, prog.base+uint64(pn)*pageBytes)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if dirtyAddrs != nil {
					b.StopTimer()
					for _, a := range dirtyAddrs {
						m.Mem.Store(a, uint64(i)|1)
					}
					b.StartTimer()
				}
				_ = m.traverseHash()
			}
			b.StopTimer()
			if cfg.mode != TraverseDeltaOff && m.counters.TraverseDeltaSweeps == 0 {
				b.Fatal("delta variant never took the delta path")
			}
		})
	}
}
