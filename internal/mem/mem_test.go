package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAllocZeroFilled checks allocations come back zeroed (InstantCheck's
// allocator interception, §5) and report the right geometry.
func TestAllocZeroFilled(t *testing.T) {
	m := New()
	b := m.Alloc("site", 10, KindWord)
	if b.Words != 10 || !b.Live || b.Static {
		t.Fatalf("block = %+v", b)
	}
	for i := 0; i < 10; i++ {
		if got := m.Load(b.Base + uint64(i)*WordSize); got != 0 {
			t.Errorf("word %d = %d, want 0", i, got)
		}
	}
}

// TestStoreReturnsOld checks the Data_old path the MHM depends on.
func TestStoreReturnsOld(t *testing.T) {
	m := New()
	b := m.Alloc("s", 1, KindWord)
	if old := m.Store(b.Base, 5); old != 0 {
		t.Errorf("first old = %d", old)
	}
	if old := m.Store(b.Base, 9); old != 5 {
		t.Errorf("second old = %d", old)
	}
	if m.Load(b.Base) != 9 {
		t.Error("load after store")
	}
}

// TestSiteSequenceNumbers checks per-site allocation sequence numbering —
// the key under which the replay allocator logs addresses.
func TestSiteSequenceNumbers(t *testing.T) {
	m := New()
	a0 := m.Alloc("a", 1, KindWord)
	b0 := m.Alloc("b", 1, KindWord)
	a1 := m.Alloc("a", 1, KindWord)
	if a0.Seq != 0 || a1.Seq != 1 || b0.Seq != 0 {
		t.Errorf("seqs: a0=%d a1=%d b0=%d", a0.Seq, a1.Seq, b0.Seq)
	}
}

// TestAddrHookReplay checks the allocator places blocks at hook-supplied
// addresses and extends the bump pointer past them.
func TestAddrHookReplay(t *testing.T) {
	m1 := New()
	first := m1.Alloc("x", 4, KindWord)
	second := m1.Alloc("x", 4, KindWord)

	// Replay into a fresh memory with the recorded addresses, in the
	// opposite request order.
	logged := map[int]uint64{0: first.Base, 1: second.Base}
	m2 := New()
	calls := 0
	m2.AddrHook = func(site string, seq, words int) (uint64, bool) {
		calls++
		a, ok := logged[seq]
		return a, ok
	}
	r0 := m2.Alloc("x", 4, KindWord)
	r1 := m2.Alloc("x", 4, KindWord)
	if r0.Base != first.Base || r1.Base != second.Base {
		t.Errorf("replayed bases %#x/%#x, want %#x/%#x", r0.Base, r1.Base, first.Base, second.Base)
	}
	if calls != 2 {
		t.Errorf("hook calls = %d", calls)
	}
	// An unknown key falls through to a fresh bump address beyond them.
	r2 := m2.Alloc("x", 4, KindWord)
	if r2.Base <= r1.Base {
		t.Errorf("fresh address %#x not beyond replayed ones", r2.Base)
	}
}

// TestDoublePlacementPanics checks the allocator refuses to place a block
// over a live one.
func TestDoublePlacementPanics(t *testing.T) {
	m := New()
	b := m.Alloc("x", 1, KindWord)
	m.AddrHook = func(string, int, int) (uint64, bool) { return b.Base, true }
	defer func() {
		if recover() == nil {
			t.Error("no panic on overlapping placement")
		}
	}()
	m.Alloc("y", 1, KindWord)
}

// TestUseAfterFreePanics checks freed memory is inaccessible — the
// simulator's built-in use-after-free detector.
func TestUseAfterFreePanics(t *testing.T) {
	m := New()
	b := m.Alloc("x", 2, KindWord)
	m.Free(b.Base)
	defer func() {
		if recover() == nil {
			t.Error("no panic on use-after-free")
		}
	}()
	m.Load(b.Base)
}

// TestMisalignedPanics checks the word-grain contract.
func TestMisalignedPanics(t *testing.T) {
	m := New()
	b := m.Alloc("x", 1, KindWord)
	defer func() {
		if recover() == nil {
			t.Error("no panic on misaligned access")
		}
	}()
	m.Load(b.Base + 3)
}

// TestFreeErrors checks double free / freeing non-blocks / freeing statics.
func TestFreeErrors(t *testing.T) {
	m := New()
	b := m.Alloc("x", 1, KindWord)
	m.Free(b.Base)
	mustPanic(t, "double free", func() { m.Free(b.Base) })
	mustPanic(t, "free of wild address", func() { m.Free(0xdead000) })
	s := m.AllocStatic("st", 1, KindWord)
	mustPanic(t, "free of static", func() { m.Free(s) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("no panic: %s", what)
		}
	}()
	f()
}

// TestLiveWordsAccounting checks the Tr-sweep size bookkeeping.
func TestLiveWordsAccounting(t *testing.T) {
	m := New()
	m.AllocStatic("s", 5, KindWord)
	if m.LiveWords() != 5 || m.StaticWords() != 5 {
		t.Fatalf("static: live=%d static=%d", m.LiveWords(), m.StaticWords())
	}
	b := m.Alloc("h", 7, KindFloat)
	if m.LiveWords() != 12 {
		t.Fatalf("after alloc: %d", m.LiveWords())
	}
	m.Free(b.Base)
	if m.LiveWords() != 5 {
		t.Fatalf("after free: %d", m.LiveWords())
	}
}

// TestTraverseOrderAndContent checks Traverse visits exactly the live
// words, in ascending address order, with the right kinds — determinism of
// this order is what keeps traversal hashing reproducible.
func TestTraverseOrderAndContent(t *testing.T) {
	m := New()
	s := m.AllocStatic("s", 2, KindWord)
	h1 := m.Alloc("h1", 2, KindFloat)
	h2 := m.Alloc("h2", 1, KindWord)
	m.Store(s, 10)
	m.Store(h1.Base, 20)
	m.Store(h2.Base, 30)
	m.Free(h1.Base)

	var addrs []uint64
	var kinds []Kind
	m.Traverse(func(addr, v uint64, k Kind) {
		addrs = append(addrs, addr)
		kinds = append(kinds, k)
	})
	if len(addrs) != 3 { // 2 static + 1 live heap
		t.Fatalf("visited %d words", len(addrs))
	}
	for i := 1; i < len(addrs); i++ {
		if addrs[i] <= addrs[i-1] {
			t.Fatal("traversal not in ascending order")
		}
	}
	if kinds[0] != KindWord || kinds[2] != KindWord {
		t.Error("kinds wrong")
	}
}

// TestBlockAt checks containment lookup across live and freed blocks.
func TestBlockAt(t *testing.T) {
	m := New()
	a := m.Alloc("a", 4, KindWord)
	b := m.Alloc("b", 4, KindWord)
	if got := m.BlockAt(a.Base + 3*WordSize); got != a {
		t.Error("interior lookup failed")
	}
	if got := m.BlockAt(a.End()); got != b && got != nil {
		// a.End() may fall into padding before b; must never return a.
		t.Error("end address attributed to preceding block")
	}
	m.Free(a.Base)
	if m.BlockAt(a.Base) != nil {
		t.Error("freed block still live in BlockAt")
	}
	if m.BlockByBase(a.Base) == nil {
		t.Error("freed block lost from BlockByBase (state-diff needs it)")
	}
}

// TestSnapshot checks snapshots are point-in-time copies.
func TestSnapshot(t *testing.T) {
	m := New()
	b := m.Alloc("x", 2, KindWord)
	m.Store(b.Base, 11)
	snap := m.Snapshot()
	m.Store(b.Base, 99)
	if v, ok := snap.Word(b.Base); !ok || v != 11 {
		t.Error("snapshot mutated by later store")
	}
	if sb := snap.BlockAt(b.Base + WordSize); sb == nil || sb.Site != "x" {
		t.Error("snapshot block lookup")
	}
	if snap.BlockAt(0xdeadbeef0) != nil {
		t.Error("wild snapshot lookup")
	}
}

// TestNoOverlapProperty property-checks that arbitrary interleavings of
// alloc and free never produce overlapping live blocks.
func TestNoOverlapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New()
		var live []*Block
		for i := 0; i < 100; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				k := rng.Intn(len(live))
				m.Free(live[k].Base)
				live = append(live[:k], live[k+1:]...)
				continue
			}
			site := string(rune('a' + rng.Intn(5)))
			live = append(live, m.Alloc(site, rng.Intn(30)+1, KindWord))
		}
		for i, a := range live {
			for _, b := range live[i+1:] {
				if a.Base < b.End() && b.Base < a.End() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestKindString pins diagnostics.
func TestKindString(t *testing.T) {
	if KindWord.String() != "word" || KindFloat.String() != "float" {
		t.Error("kind strings")
	}
}
