package fleet

import "instantcheck/internal/obs"

// metrics holds the coordinator-side checkfleet families. They live on
// their own registry (or one the caller provides) so a daemon embedding
// both the farm and a coordinator merges the two with obs.MergedHandler —
// obs.LintMerged rejects any name collision between them at startup. The
// scrape-time gauges (workers live, leases/campaigns active, per-worker
// liveness) are registered by NewCoordinator, which owns the state they
// read.
type metrics struct {
	shardsLeased    *obs.CounterVec // by worker
	shardsCompleted *obs.Counter
	shardsExpired   *obs.Counter
	runsRequeued    *obs.Counter

	fetchHits      *obs.Counter
	fetchMisses    *obs.Counter
	blobServeBytes *obs.Counter

	appendRecords    *obs.Counter
	appendBytes      *obs.Counter
	appendDuplicates *obs.Counter

	workerLive *obs.GaugeVec
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		shardsLeased: reg.CounterVec("checkfleet_shards_leased_total",
			"Run-shard leases granted, by worker.", "worker"),
		shardsCompleted: reg.Counter("checkfleet_shards_completed_total",
			"Leases released by their worker after the final result batch."),
		shardsExpired: reg.Counter("checkfleet_shards_expired_total",
			"Leases whose deadline passed without renewal (worker death, partition)."),
		runsRequeued: reg.Counter("checkfleet_runs_requeued_total",
			"Run indices returned to the shard queue by lease expiry or an incomplete shard."),
		fetchHits: reg.Counter("checkfleet_blob_fetch_hits_total",
			"Shard executions that found their replay bundle in the worker's disk cache."),
		fetchMisses: reg.Counter("checkfleet_blob_fetch_misses_total",
			"Shard executions that had to download their replay bundle."),
		blobServeBytes: reg.Counter("checkfleet_blob_serve_bytes_total",
			"Bytes of content-addressed replay bundles served to workers."),
		appendRecords: reg.Counter("checkfleet_appendback_records_total",
			"Run records accepted from workers and appended to the hash log."),
		appendBytes: reg.Counter("checkfleet_appendback_bytes_total",
			"Bytes of result batches received from workers."),
		appendDuplicates: reg.Counter("checkfleet_appendback_duplicates_total",
			"Run records dropped as duplicates (re-dispatched shard racing its zombie)."),
		workerLive: reg.GaugeVec("checkfleet_worker_live",
			"1 while the named worker has reported in within the liveness window.", "worker"),
	}
}
