package farm

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

// startTestDaemon wires a store into a served daemon and returns a client
// for it. The daemon is torn down with the test.
var bg = context.Background()

func startTestDaemon(t *testing.T, storePath string, opts Options) (*Server, *Client) {
	t.Helper()
	store, err := OpenStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, opts)
	srv.Resume()
	ctx, cancel := context.WithCancel(context.Background())
	srv.Start(ctx)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		cancel()
		srv.Wait()
		store.Close()
	})
	return srv, NewClient(hs.URL)
}

func waitDone(t *testing.T, c *Client, id JobID) *Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	job, err := c.Wait(ctx, id, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return job
}

// TestServerEndToEnd drives the whole service through its HTTP API:
// submit, status, report, hash-log streaming, cross-host compare, cancel.
func TestServerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	_, c := startTestDaemon(t, filepath.Join(dir, "farm.log"), Options{RunWorkers: 4})

	spec := smokeSpec("fft", "mix64")
	job, err := c.Submit(bg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.State != JobQueued {
		t.Fatalf("submitted job = %+v", job)
	}
	job = waitDone(t, c, job.ID)
	if job.State != JobDone || job.Error != "" {
		t.Fatalf("job finished as %s: %s", job.State, job.Error)
	}
	if job.RunsDone != spec.Runs || job.RunsTotal != spec.Runs {
		t.Errorf("progress = %d/%d, want %d/%d", job.RunsDone, job.RunsTotal, spec.Runs, spec.Runs)
	}

	// The served report matches a direct in-process execution.
	rep, err := c.Report(bg, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := runJob(context.Background(), "j000000", spec, nil, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, want) {
		t.Errorf("served report differs from direct execution:\nhttp   %+v\ndirect %+v", rep, want)
	}
	if !rep.Deterministic || rep.Program != "fft" || rep.Runs != spec.Runs {
		t.Errorf("fft report = %+v", rep)
	}

	// The hash-log stream parses and covers every (run, checkpoint).
	logText, err := c.HashLog(bg, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	lines, err := ParseHashLog(strings.NewReader(logText))
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != spec.Runs*rep.Points {
		t.Errorf("hash log has %d lines, want %d runs x %d checkpoints", len(lines), spec.Runs, rep.Points)
	}

	// Cross-host compare: the fetched text log against the job it came
	// from (the two-host flow with both ends on one daemon).
	cmp, err := c.Compare(bg, CompareRequest{LogA: logText, JobB: job.ID})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Equal || cmp.RunsCompared != spec.Runs {
		t.Errorf("self compare = %+v", cmp)
	}

	// A different workload's log diverges.
	spec2 := smokeSpec("barnes", "mix64")
	job2, err := c.Submit(bg, spec2)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c, job2.ID)
	cmp, err = c.Compare(bg, CompareRequest{JobA: job.ID, JobB: job2.ID})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Equal || cmp.First == nil {
		t.Errorf("fft-vs-barnes compare = %+v", cmp)
	}

	// Error surface: unknown job is 404, bad spec is rejected.
	if _, err := c.Report(bg, "j999999"); err == nil {
		t.Error("report for unknown job succeeded")
	}
	if _, err := c.Submit(bg, JobSpec{App: "no-such-app"}); err == nil {
		t.Error("bad spec accepted")
	}

	// All three jobs... two jobs are listed, in submission order.
	jobs, err := c.Jobs(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].ID != job.ID || jobs[1].ID != job2.ID {
		t.Errorf("job list = %+v", jobs)
	}
}

// TestServerCancel checks cancellation of a queued job (the daemon has one
// job worker, so a second submission waits in the queue).
func TestServerCancel(t *testing.T) {
	dir := t.TempDir()
	_, c := startTestDaemon(t, filepath.Join(dir, "farm.log"), Options{RunWorkers: 2, JobWorkers: 1})

	first, err := c.Submit(bg, smokeSpec("radix", "mix64"))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := c.Submit(bg, smokeSpec("lu", "mix64"))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := c.Cancel(bg, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	job := waitDone(t, c, queued.ID)
	if ok && job.State != JobCanceled {
		t.Errorf("canceled job reached state %s", job.State)
	}
	if job := waitDone(t, c, first.ID); job.State != JobDone {
		t.Errorf("first job = %s: %s", job.State, job.Error)
	}
	// Terminal jobs cannot be canceled again.
	if ok, _ := c.Cancel(bg, first.ID); ok {
		t.Error("cancel of finished job reported true")
	}
}

// TestServerKilledAndRestarted is the acceptance scenario: a daemon dies
// mid-campaign (simulated by truncating its store to a committed prefix
// plus a torn line), a fresh daemon opens the same store, and the resumed
// campaign converges to the exact report of an uninterrupted one.
func TestServerKilledAndRestarted(t *testing.T) {
	dir := t.TempDir()
	spec := smokeSpec("radix", "crc64")

	// Uninterrupted daemon: the reference report.
	fullPath := filepath.Join(dir, "full.log")
	_, c1 := startTestDaemon(t, fullPath, Options{RunWorkers: 4})
	job, err := c1.Submit(bg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, c1, job.ID).State; st != JobDone {
		t.Fatalf("reference job state %s", st)
	}
	want, err := c1.Report(bg, job.ID)
	if err != nil {
		t.Fatal(err)
	}

	// "Kill" the daemon mid-campaign: a copy of its store truncated after
	// the 3rd run commit, ending in a torn line.
	raw, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	var prefix strings.Builder
	committed := map[string]bool{}
	for _, l := range strings.SplitAfter(string(raw), "\n") {
		if strings.HasPrefix(l, "jobend ") {
			continue // the crash happened before the job finished
		}
		prefix.WriteString(l)
		if strings.HasPrefix(l, "runend ") {
			committed[strings.Fields(l)[2]] = true
			if len(committed) == 3 {
				break
			}
		}
	}
	// The torn attempt must be of a run the prefix did not commit (runs
	// commit in nondeterministic order under the parallel worker pool).
	tornRun := ""
	for run := 0; run < spec.Runs; run++ {
		if r := strconv.Itoa(run); !committed[r] {
			tornRun = r
			break
		}
	}
	prefix.WriteString("runstart " + string(job.ID) + " " + tornRun + "\ncp " + string(job.ID) + " " + tornRun + " 0 12")
	crashPath := filepath.Join(dir, "crashed.log")
	if err := os.WriteFile(crashPath, []byte(prefix.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	// Restarted daemon on the surviving store.
	srv2, c2 := startTestDaemon(t, crashPath, Options{RunWorkers: 4})
	if jl := srv2.store.Job(job.ID); len(jl.CompletedRuns()) != 3 {
		t.Fatalf("crashed store has %v committed", jl.CompletedRuns())
	}
	resumed := waitDone(t, c2, job.ID)
	if resumed.State != JobDone || resumed.Error != "" {
		t.Fatalf("resumed job %s: %s", resumed.State, resumed.Error)
	}
	got, err := c2.Report(bg, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("resumed daemon's report differs:\nfull    %+v\nresumed %+v", want, got)
	}

	// And a third start over the now-complete log serves the same report
	// without executing anything.
	srv3, c3 := startTestDaemon(t, crashPath, Options{RunWorkers: 4})
	if n := srv3.Job(job.ID); n == nil || n.State != JobDone {
		t.Fatalf("job not done after clean restart: %+v", n)
	}
	again, err := c3.Report(bg, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, again) {
		t.Errorf("report reassembled from log differs from live report")
	}
}
