// Package apps provides the 17 workloads of the paper's evaluation (§7.1):
// sphinx3, pbzip2, and applications from the PARSEC and SPLASH-2 suites,
// re-implemented as kernels on the instantcheck simulator.
//
// The original binaries cannot be instrumented from Go, so each kernel is a
// from-scratch implementation of the application's parallel core, engineered
// to reproduce the determinism class and the specific nondeterminism sources
// the paper reports for that application (Table 1): disjoint-write phase
// parallelism for the bit-by-bit deterministic group, racy-order FP
// reductions for the FP-precision group, free lists / racy allocators /
// dangling pointers / scratch structures for the small-structure group, and
// racy tree construction, simulated annealing, and task stealing for the
// nondeterministic group. The three seeded bugs of Figure 7 (a semantic bug
// in waterNS, an atomicity violation in waterSP, an order violation in
// radix) are available through Options.Bug, and streamcluster carries the
// real order-violation bug the paper found, switchable off with
// Options.FixBug.
package apps

import (
	"fmt"
	"sort"

	"instantcheck/internal/core"
	"instantcheck/internal/mem"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

// BugKind selects a seeded bug (Figure 7). Bugs are seeded only in thread 3
// to simulate rarely occurring bugs, and never crash the program — they
// only create incorrect (and nondeterministic) results.
type BugKind int

const (
	// BugNone disables bug seeding.
	BugNone BugKind = iota
	// BugSemantic is Figure 7(a): waterNS's thread 3 consumes the shared
	// energy reduction as soon as every thread has announced its
	// contribution — but the announce flags go up a few operations before
	// the adds they advertise, so a badly-timed preemption makes the
	// consumed value incomplete.
	BugSemantic
	// BugAtomicity is Figure 7(b): waterSP's thread 3 updates the global
	// energy with an unlocked read-modify-write.
	BugAtomicity
	// BugOrder is Figure 7(c): radix's thread 0 raises, exactly once, the
	// rank-ready flag before the rank bases it orders are written, so a
	// thread preempted into the rank phase scatters keys to stale
	// positions.
	BugOrder
)

// String names the bug kind as Table 2 does.
func (b BugKind) String() string {
	switch b {
	case BugNone:
		return "none"
	case BugSemantic:
		return "semantic"
	case BugAtomicity:
		return "atomicity violation"
	case BugOrder:
		return "order violation"
	default:
		return "BugKind(?)"
	}
}

// Options configures a workload build.
type Options struct {
	// Threads is the worker count; 0 selects the paper's 8.
	Threads int
	// Small selects a reduced input for fast unit tests. Checkpoint
	// counts then differ from the paper; determinism classes do not.
	Small bool
	// Bug seeds one of the Figure 7 bugs (only meaningful for the app
	// that hosts that bug kind).
	Bug BugKind
	// RawCustomAlloc makes cholesky use its racy custom allocator instead
	// of routing through malloc (the paper's fix for allocator
	// nondeterminism, §7.2).
	RawCustomAlloc bool
	// FixBug applies the PARSEC author's fix for the real streamcluster
	// order-violation bug.
	FixBug bool
}

func (o Options) threads() int {
	if o.Threads <= 0 {
		return 8
	}
	return o.Threads
}

// App is one registry entry.
type App struct {
	// Name is the workload name as in Table 1.
	Name string
	// Source is the suite the original came from.
	Source string
	// UsesFP reports whether the workload performs FP operations
	// (Table 1 column 4).
	UsesFP bool
	// ExpectedClass is the determinism class Table 1 reports.
	ExpectedClass core.Class
	// HostsBug is the Figure 7 bug this app can seed (BugNone otherwise).
	HostsBug BugKind
	// Ignore returns the app's small-structure ignore set, or nil.
	Ignore func() *sim.IgnoreSet
	// Build constructs a fresh program instance for one run.
	Build func(Options) sim.Program
}

var registry []*App

// table1Order is the row order of the paper's Table 1.
var table1Order = []string{
	"blackscholes", "fft", "lu", "radix", "streamcluster", "swaptions", "volrend",
	"fluidanimate", "ocean", "waterNS", "waterSP",
	"cholesky", "pbzip2", "sphinx3",
	"barnes", "canneal", "radiosity",
}

func register(a *App) { registry = append(registry, a) }

// Registry returns all workloads in Table 1 order.
func Registry() []*App {
	rank := make(map[string]int, len(table1Order))
	for i, n := range table1Order {
		rank[n] = i
	}
	out := make([]*App, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return rank[out[i].Name] < rank[out[j].Name] })
	return out
}

// ByName returns the named workload, or nil.
func ByName(name string) *App {
	for _, a := range registry {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Names returns all workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for _, a := range registry {
		out = append(out, a.Name)
	}
	sort.Strings(out)
	return out
}

// Builder adapts an app + options to the checker's Builder type.
func (a *App) Builder(o Options) core.Builder {
	return func() sim.Program { return a.Build(o) }
}

// IgnoreSet returns the app's ignore set or nil.
func (a *App) IgnoreSet() *sim.IgnoreSet {
	if a.Ignore == nil {
		return nil
	}
	return a.Ignore()
}

// ---- shared kernel helpers ----

// idx returns the address of element i of the array based at base.
func idx(base uint64, i int) uint64 { return base + uint64(i)*mem.WordSize }

// span returns the half-open range [lo, hi) of a 1-D block partition of n
// items across nt threads for thread tid.
func span(n, nt, tid int) (lo, hi int) {
	per := n / nt
	rem := n % nt
	lo = tid*per + min(tid, rem)
	hi = lo + per
	if tid < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// xorshift is a tiny thread-local PRNG for workloads whose randomness is
// deliberately thread-local (swaptions' Monte-Carlo paths): given the same
// seed, each thread generates its sequence independently of scheduling, so
// the workload stays deterministic (paper §5, §7.2).
type xorshift uint64

func newXorshift(seed uint64) xorshift {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return xorshift(seed)
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// unitFloat maps a PRNG draw to (0, 1).
func (x *xorshift) unitFloat() float64 {
	return float64(x.next()>>11+1) / float64(1<<53+1)
}

// barrier wraps a checkpointing pthread-style barrier for kernel code.
type barrier struct{ b *sched.Barrier }

// newBarrier creates a full-party checkpointing barrier on t's machine.
func newBarrier(t *sim.Thread, name string) barrier {
	return barrier{t.Machine().NewBarrier(name)}
}

func (b barrier) await(t *sim.Thread) { t.BarrierWait(b.b) }

// spinWaitFlag implements a hand-coded flag wait: spin until the word at
// addr is non-zero. Hand-coded synchronization is not a checkpoint (the
// paper checks only at pthread barriers and run end).
func spinWaitFlag(t *sim.Thread, addr uint64) {
	//icvet:ignore race hand-coded flag synchronization: the spin read is ordered by the writer raising the flag
	for t.Load(addr) == 0 {
		t.Yield()
	}
}

func assertf(cond bool, format string, args ...any) {
	if !cond {
		panic(fmt.Sprintf(format, args...))
	}
}
