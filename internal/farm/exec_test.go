package farm

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"instantcheck/internal/core"
	"instantcheck/internal/sim"
)

// smokeSpec is a campaign sized so that the full invariant matrix stays
// fast: small inputs, 8 runs, 4 threads.
func smokeSpec(app, hasher string) JobSpec {
	return JobSpec{
		App:         app,
		Runs:        8,
		Threads:     4,
		Seed:        50,
		InputSeed:   7,
		Hasher:      hasher,
		Small:       true,
		Parallelism: 8,
	}
}

// normalizeCampaigns makes the two reports' campaigns comparable: the
// parallel path records the Parallelism it used, the sequential one
// records 1, and that field by design must not influence anything else.
func normalizeCampaigns(a, b *core.Report) {
	a.Campaign.Parallelism = 1
	b.Campaign.Parallelism = 1
}

// TestParallelEqualsSequentialFarm is the subsystem's central invariant:
// for a smoke subset of apps and both hashers, a campaign pushed through
// the farm's worker pool with Parallelism 8 yields a report identical to
// the legacy sequential Campaign.Check.
func TestParallelEqualsSequentialFarm(t *testing.T) {
	for _, app := range []string{"fft", "lu", "radix", "barnes"} {
		for _, hasher := range []string{"mix64", "crc64"} {
			t.Run(app+"/"+hasher, func(t *testing.T) {
				t.Parallel()
				spec := smokeSpec(app, hasher)

				seq := spec
				seq.Parallelism = 1
				camp, build, err := seq.Resolve()
				if err != nil {
					t.Fatal(err)
				}
				want, err := camp.Check(build)
				if err != nil {
					t.Fatal(err)
				}

				_, got, err := runJob(context.Background(), "j000000", spec, nil, nil, nil, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				normalizeCampaigns(want, got)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("parallel farm report differs from sequential:\nseq %+v\npar %+v", want, got)
				}
			})
		}
	}
}

// TestRunJobResume simulates a daemon crash: a campaign's store log is
// truncated to a committed prefix plus a torn trailing line, and the job
// is re-run against the surviving log. The resumed report must be
// identical to the uninterrupted one, and only the missing runs may
// re-execute.
func TestRunJobResume(t *testing.T) {
	spec := smokeSpec("radix", "mix64")
	dir := t.TempDir()

	// Uninterrupted reference execution, persisted the way the daemon
	// does it.
	s1, err := OpenStore(filepath.Join(dir, "full.log"))
	if err != nil {
		t.Fatal(err)
	}
	id := s1.NextID()
	if err := s1.BeginJob(id, spec); err != nil {
		t.Fatal(err)
	}
	sink := func(st *Store) func(int, *sim.Result) error {
		return func(run int, res *sim.Result) error { return st.AppendRun(id, run, res) }
	}
	want, _, err := runJob(context.Background(), id, spec, nil, nil, nil, sink(s1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash: keep the prefix up to and including the 4th runend commit,
	// then a torn half-line.
	raw, err := os.ReadFile(filepath.Join(dir, "full.log"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	var prefix strings.Builder
	commits := 0
	for _, l := range lines {
		prefix.WriteString(l)
		if strings.HasPrefix(l, "runend ") {
			commits++
			if commits == 4 {
				break
			}
		}
	}
	prefix.WriteString("cp " + string(id) + " 6 0 00dead") // torn write
	crashPath := filepath.Join(dir, "crashed.log")
	if err := os.WriteFile(crashPath, []byte(prefix.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(crashPath)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	jl := s2.Job(id)
	if jl == nil {
		t.Fatal("job missing from crashed log")
	}
	survivors := jl.CompletedRuns()
	if len(survivors) != 4 {
		t.Fatalf("committed runs in crashed log = %v, want 4", survivors)
	}

	var (
		mu         sync.Mutex
		reExecuted []int
	)
	onRun := func(run int, res *sim.Result) error {
		mu.Lock()
		reExecuted = append(reExecuted, run)
		mu.Unlock()
		return s2.AppendRun(id, run, res)
	}
	got, _, err := runJob(context.Background(), id, spec, jl, nil, nil, onRun, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The wire report carries only hash-level data, so a resumed campaign
	// must reproduce it bit for bit. (The core report's per-run simulator
	// counters are deliberately absent from resurrected runs.)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("resumed wire report differs:\nfull    %+v\nresumed %+v", want, got)
	}
	// Only runs missing from the log were re-executed and re-persisted
	// (run 0 always re-executes for its replay logs but is not re-stored).
	surviving := map[int]bool{}
	for _, r := range survivors {
		surviving[r] = true
	}
	for _, r := range reExecuted {
		if surviving[r] {
			t.Errorf("run %d re-executed despite committed log entry", r)
		}
	}
	if len(reExecuted) != spec.Runs-len(survivors) {
		t.Errorf("re-executed %v, want the %d missing runs", reExecuted, spec.Runs-len(survivors))
	}
	// After the resume the log is complete and can reproduce the report
	// without any execution at all.
	fromLog, err := reportFromLog(s2.Job(id))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, fromLog) {
		t.Errorf("report assembled purely from log differs:\nlive %+v\nlog  %+v", want, fromLog)
	}
}

// TestRunJobRejectsForeignLog checks the cross-check of the recording
// run: a stored hash log that disagrees with re-recorded run 1 (wrong
// binary, wrong input) must fail loudly instead of merging silently.
func TestRunJobRejectsForeignLog(t *testing.T) {
	spec := smokeSpec("fft", "mix64")
	dir := t.TempDir()
	s, err := OpenStore(filepath.Join(dir, "farm.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id := s.NextID()
	if err := s.BeginJob(id, spec); err != nil {
		t.Fatal(err)
	}
	// A committed run 0 with a bogus hash vector.
	if err := s.AppendRun(id, 0, testResult(0x1234, 3)); err != nil {
		t.Fatal(err)
	}
	_, _, err = runJob(context.Background(), id, spec, s.Job(id), nil, nil, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Errorf("foreign log accepted: err = %v", err)
	}
}

// TestJobSpecResolve covers spec validation at the service boundary.
func TestJobSpecResolve(t *testing.T) {
	if _, _, err := (JobSpec{App: "no-such-app"}).Resolve(); err == nil {
		t.Error("unknown app accepted")
	}
	if _, _, err := (JobSpec{App: "fft", Scheme: "warp"}).Resolve(); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, _, err := (JobSpec{App: "fft", Hasher: "md5"}).Resolve(); err == nil {
		t.Error("unknown hasher accepted")
	}
	if _, _, err := (JobSpec{App: "fft", Runs: -1}).Resolve(); err == nil {
		t.Error("negative runs accepted")
	}
	camp, build, err := (JobSpec{App: "fft", Scheme: "swinc", Hasher: "crc64", Small: true}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if build == nil {
		t.Fatal("nil builder")
	}
	if camp.Scheme != sim.SWInc {
		t.Errorf("scheme = %v", camp.Scheme)
	}
}
