package apps

import (
	"fmt"

	"instantcheck/internal/core"
	"instantcheck/internal/mem"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

func init() {
	register(&App{
		Name:          "sphinx3",
		Source:        "alpBench",
		UsesFP:        true,
		ExpectedClass: core.ClassStructDeterministic,
		Ignore: func() *sim.IgnoreSet {
			// The paper: sphinx3 is deterministic if ignoring ~4% of the
			// memory state, allocated at 15 of the 230 allocation sites.
			rules := make([]sim.IgnoreRule, 0, sphinx3ScratchSites+1)
			for i := 0; i < sphinx3ScratchSites; i++ {
				rules = append(rules, sim.IgnoreRule{Site: sphinx3ScratchSite(i)})
			}
			rules = append(rules, sim.IgnoreRule{Site: "static:sx.scratchCursor"})
			return sim.NewIgnoreSet(rules...)
		},
		Build: func(o Options) sim.Program {
			// At full scale the acoustic model tables carry the simmedium
			// input's weight: the read-only model is ~96% of the live
			// state and the racy scratch the paper's ~4%.
			p := &sphinx3Prog{nt: o.threads(), senones: 64, frames: 1066,
				modelWords: 64, scratchWords: 40}
			if o.Small {
				p.senones, p.frames = 32, 24
				p.modelWords, p.scratchWords = 16, 16
			}
			return p
		},
	})
}

const (
	// sphinx3ModelSites is the number of deterministic model allocation
	// sites (HMM tables, dictionaries, language-model rows...). Together
	// with the scratch sites it approximates the paper's 230 sites.
	sphinx3ModelSites   = 215
	sphinx3ScratchSites = 15
)

func sphinx3ScratchSite(i int) string { return fmt.Sprintf("sphinx3.scratch.%02d", i) }

// sphinx3Prog reproduces ALPBench's sphinx3: frame-synchronous beam-search
// scoring of an utterance. Each frame scores a disjoint partition of the
// senones (pure FP from the model and the frame's feature — bit-
// deterministic), then performs histogram pruning whose candidate overflow
// is pushed through a shared cursor into scratch buffers — the order the
// candidates land in is schedule-dependent. The scratch amounts to ~4% of
// the live state and sits in 15 of the ~230 allocation sites; deleting
// those sites from the hash makes sphinx3 externally deterministic
// (Table 1: 4265 dynamic points = 1066 frames × 4 barriers + end).
type sphinx3Prog struct {
	nt           int
	senones      int
	frames       int
	modelWords   int // words per model table (the read-only bulk)
	scratchWords int // words per racy scratch block

	model   []uint64 // one block per model site
	feature uint64   // per-frame feature basis
	scores  uint64   // per-senone score (disjoint writes)
	best    uint64   // per-thread best-score slots
	lattice uint64   // word-lattice summary (disjoint spans)

	scratch       []uint64 // the 15 nondeterministic scratch blocks
	scratchCursor uint64   // shared racy cursor
	cursorLock    *sched.Mutex

	score, prune, prop, stats barrier
}

func (p *sphinx3Prog) Name() string { return "sphinx3" }

func (p *sphinx3Prog) Threads() int { return p.nt }

func (p *sphinx3Prog) Setup(t *sim.Thread) {
	// ~230 allocation sites, as in the original: 215 model tables...
	p.model = make([]uint64, sphinx3ModelSites)
	rng := newXorshift(2020)
	for i := range p.model {
		p.model[i] = t.Malloc(fmt.Sprintf("sphinx3.model.%03d", i), p.modelWords, mem.KindFloat)
		for w := 0; w < p.modelWords; w++ {
			t.StoreF(idx(p.model[i], w), rng.unitFloat())
		}
	}
	// ...and 15 scratch blocks that the pruning phase fills racily.
	p.scratch = make([]uint64, sphinx3ScratchSites)
	for i := range p.scratch {
		p.scratch[i] = t.Malloc(sphinx3ScratchSite(i), p.scratchWords, mem.KindWord)
	}
	p.feature = t.AllocStatic("static:sx.feature", 16, mem.KindFloat)
	p.scores = t.AllocStatic("static:sx.scores", p.senones, mem.KindFloat)
	p.best = t.AllocStatic("static:sx.best", p.nt, mem.KindFloat)
	p.lattice = t.AllocStatic("static:sx.lattice", p.senones, mem.KindWord)
	p.scratchCursor = t.AllocStatic("static:sx.scratchCursor", 1, mem.KindWord)
	for w := 0; w < 16; w++ {
		t.StoreF(idx(p.feature, w), rng.unitFloat())
	}
	p.cursorLock = t.Machine().NewMutex("sx.cursor")
	p.score = newBarrier(t, "sx.score")
	p.prune = newBarrier(t, "sx.prune")
	p.prop = newBarrier(t, "sx.prop")
	p.stats = newBarrier(t, "sx.stats")
}

func (p *sphinx3Prog) Worker(t *sim.Thread) {
	tid := t.TID()
	lo, hi := span(p.senones, p.nt, tid)
	total := sphinx3ScratchSites * p.scratchWords

	for frame := 0; frame < p.frames; frame++ {
		// Phase 1: acoustic scoring — pure per-senone GMM evaluation.
		f := t.LoadF(idx(p.feature, frame%16))
		for s := lo; s < hi; s++ {
			m := t.LoadF(idx(p.model[s%sphinx3ModelSites], s%p.modelWords))
			d := f - m
			t.Compute(40) // the Gaussian mixture evaluation
			t.StoreF(idx(p.scores, s), -d*d+0.001*float64(frame%17))
		}
		p.score.await(t)

		// Phase 2: histogram pruning. Candidates that clear the beam are
		// recorded into the shared scratch ring through a racy cursor:
		// the slot each candidate lands in is schedule-dependent. The
		// scratch is a diagnostic overflow area — nothing downstream
		// reads it — but it is part of the memory state.
		for s := lo; s < hi; s++ {
			sc := t.LoadF(idx(p.scores, s))
			if sc > -0.25 {
				t.Lock(p.cursorLock)
				cur := t.Load(p.scratchCursor)
				t.Store(p.scratchCursor, cur+1)
				t.Unlock(p.cursorLock)
				slot := int(cur) % total
				blk := p.scratch[slot/p.scratchWords]
				t.Store(idx(blk, slot%p.scratchWords), uint64(s)<<32|uint64(frame&0xffffffff))
			}
		}
		p.prune.await(t)

		// Phase 3: lattice propagation — disjoint spans, derived only
		// from the (stable) scores.
		for s := lo; s < hi; s++ {
			sc := t.LoadF(idx(p.scores, s))
			v := t.Load(idx(p.lattice, s))
			if sc > -0.5 {
				v = v*31 + uint64(s) + 1
			}
			t.Compute(6)
			t.Store(idx(p.lattice, s), v)
		}
		p.prop.await(t)

		// Phase 4: per-thread frame statistics (disjoint slots).
		best := -1e30
		for s := lo; s < hi; s++ {
			if sc := t.LoadF(idx(p.scores, s)); sc > best {
				best = sc
			}
		}
		t.StoreF(idx(p.best, tid), best)
		p.stats.await(t)
	}
}
