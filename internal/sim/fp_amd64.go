//go:build amd64

package sim

// fpchain captures up to 8 raw return addresses by walking the frame-
// pointer chain from the caller's frame, exactly as the runtime's own
// execution tracer unwinds (Go keeps frame pointers on amd64 in every
// non-leaf frame). It returns the number of frames captured; the walk
// stops early at a zero link, so a short count means the chain ended
// (goroutine root) or was broken — callers must fall back to
// runtime.Callers in that case.
//
// Implemented in fp_amd64.s.
func fpchain(buf *[8]uintptr) int32
