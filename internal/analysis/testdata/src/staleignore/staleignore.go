// Package staleignore is a golden fixture for stale //icvet:ignore
// detection: live suppressions (covering a real finding or race pair)
// must stay silent, dead ones must be flagged.
package staleignore

import (
	"instantcheck/internal/mem"
	"instantcheck/internal/sim"
)

type prog struct {
	shared uint64
}

func (p *prog) Setup(t *sim.Thread) {
	p.shared = t.AllocStatic("si.shared", 1, mem.KindWord)
}

func (p *prog) Worker(t *sim.Thread) {
	// Live: the unlocked RMW below is a real atomicity finding.
	//icvet:ignore atomicity deliberate fixture RMW
	t.Store(p.shared, t.Load(p.shared)+1)

	// Live: the unsynchronized store races with itself across threads.
	//icvet:ignore race deliberate fixture race
	t.Store(p.shared, 7)

	//icvet:ignore atomicity dead after refactor — want `stale //icvet:ignore atomicity: no atomicity finding on this or the next line`
	t.Compute(1)

	//icvet:ignore nosuchanalyzer typo in the name — want `names unknown analyzer "nosuchanalyzer"`
	t.Compute(1)

	//icvet:ignore race dead after refactor — want `stale //icvet:ignore race: no race finding on this or the next line`
	t.Compute(1)
}
