// Command quickstart checks the paper's Figure 1 program: a global G,
// initially 2, updated under a lock by two threads that each add their
// local value (7 and 3). The threads race for the lock, so the
// intermediate states differ between runs — the program is internally
// nondeterministic — yet every run ends with G == 12: it is externally
// deterministic, which is exactly the property InstantCheck checks.
//
// The program runs 10 times under the randomized serializing scheduler.
// The final State Hash of every run is printed (they all match), and the
// campaign API then checks the same program the way a test harness would.
package main

import (
	"fmt"
	"log"

	"instantcheck"
)

// figure1 is the paper's example program (Figure 1a).
type figure1 struct {
	g  uint64              // address of the shared global G
	mu *instantcheck.Mutex // the LOCK around G += L
}

func newFigure1() instantcheck.Program { return &figure1{} }

func (p *figure1) Name() string { return "figure1" }

func (p *figure1) Threads() int { return 2 }

func (p *figure1) Setup(t *instantcheck.Thread) {
	p.g = t.AllocStatic("static:G", 1, instantcheck.KindWord)
	t.Store(p.g, 2) // initial G == 2
	p.mu = t.Machine().NewMutex("G")
}

func (p *figure1) Worker(t *instantcheck.Thread) {
	locals := []uint64{7, 3} // L0 == 7, L1 == 3
	l := locals[t.TID()]
	t.Lock(p.mu)
	g := t.Load(p.g)
	t.Store(p.g, g+l) // G += L
	t.Unlock(p.mu)
}

func main() {
	fmt.Println("InstantCheck quickstart: the Figure 1 program (G += L under a lock)")
	fmt.Println()

	// Low-level view: run the machine directly and look at the hashes.
	const runs = 10
	var hashes []instantcheck.Digest
	for run := 0; run < runs; run++ {
		m := instantcheck.NewMachine(instantcheck.MachineConfig{
			Threads:      2,
			ScheduleSeed: int64(run + 1),
			Scheme:       instantcheck.HWInc,
		})
		res, err := m.Run(newFigure1())
		if err != nil {
			log.Fatalf("run %d: %v", run+1, err)
		}
		fmt.Printf("run %2d: SH = %s\n", run+1, res.FinalSH())
		hashes = append(hashes, res.FinalSH())
	}
	same := true
	for _, h := range hashes[1:] {
		same = same && h == hashes[0]
	}
	fmt.Println()
	if same {
		fmt.Println("Every run hashed to the same State Hash: G always ends at 12,")
		fmt.Println("even though the lock-acquisition order differed run to run.")
	} else {
		fmt.Println("State hashes differ: externally NONDETERMINISTIC.")
	}
	fmt.Println()

	// High-level view: the campaign API, as a test harness would use it.
	rep, err := instantcheck.Check(instantcheck.Campaign{
		Runs:    30,
		Threads: 2,
	}, newFigure1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: %d runs, %d checking points, deterministic = %v\n",
		len(rep.Runs), rep.Points(), rep.Deterministic())
}
