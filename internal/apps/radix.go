package apps

import (
	"instantcheck/internal/core"
	"instantcheck/internal/mem"
	"instantcheck/internal/sim"
)

func init() {
	register(&App{
		Name:          "radix",
		Source:        "splash2",
		UsesFP:        false,
		ExpectedClass: core.ClassBitDeterministic,
		HostsBug:      BugOrder,
		Build: func(o Options) sim.Program {
			p := &radixProg{nt: o.threads(), n: 2048, bug: o.Bug == BugOrder}
			if o.Small {
				p.n = 256
			}
			return p
		},
	})
}

const (
	radixDigitBits = 6
	radixBuckets   = 1 << radixDigitBits
	radixPasses    = 3 // 18-bit keys
)

// radixProg reproduces SPLASH-2's radix: a parallel radix sort. Each pass
// builds per-thread digit histograms, thread 0 turns them into global rank
// bases, and every thread scatters its input span to destination positions
// derived from those bases. Destinations are a bijection, so the sort is
// bit-by-bit deterministic (Table 1: 12 dynamic points — an initial
// barrier, three barriers per pass, a final verification barrier, and the
// end of the run).
//
// The rank phase is ordered before the permutation by a hand-coded ready
// flag. The seeded order-violation bug of Figure 7(c) makes thread 0 raise
// that flag exactly once too early (in the last pass, before computing the
// rank bases instead of after): a thread released by the premature flag
// can read rank bases that thread 0 has not finished writing and scatter
// keys to stale positions. Thread 0 usually storms through the short rank
// phase before anyone reads, so the bug manifests only when a preemption
// lands inside it — rarely under stress testing, like the real order
// violations InstantCheck targets. The program never crashes — positions
// stay in bounds — but a manifesting run's final array is wrong in a
// schedule-dependent way.
type radixProg struct {
	nt  int
	n   int
	bug bool

	src, dst  uint64 // ping-pong key arrays
	hist      uint64 // nt × buckets per-thread histograms
	rankBase  uint64 // nt × buckets scatter bases
	rankReady uint64 // per-pass ready flags (hand-coded sync)
	checksum  uint64

	start, histDone, permDone, clearDone, final barrier
}

func (p *radixProg) Name() string { return "radix" }

func (p *radixProg) Threads() int { return p.nt }

func (p *radixProg) Setup(t *sim.Thread) {
	p.src = t.AllocStatic("static:radix.a", p.n, mem.KindWord)
	p.dst = t.AllocStatic("static:radix.b", p.n, mem.KindWord)
	p.hist = t.AllocStatic("static:radix.hist", p.nt*radixBuckets, mem.KindWord)
	p.rankBase = t.AllocStatic("static:radix.rank", p.nt*radixBuckets, mem.KindWord)
	p.rankReady = t.AllocStatic("static:radix.ready", radixPasses, mem.KindWord)
	p.checksum = t.AllocStatic("static:radix.sum", 1, mem.KindWord)
	rng := newXorshift(99)
	for i := 0; i < p.n; i++ {
		t.Store(idx(p.src, i), rng.next()&(1<<(radixDigitBits*radixPasses)-1))
	}
	p.start = newBarrier(t, "radix.start")
	p.histDone = newBarrier(t, "radix.hist")
	p.permDone = newBarrier(t, "radix.perm")
	p.clearDone = newBarrier(t, "radix.clear")
	p.final = newBarrier(t, "radix.final")
}

func (p *radixProg) Worker(t *sim.Thread) {
	tid := t.TID()
	lo, hi := span(p.n, p.nt, tid)
	src, dst := p.src, p.dst

	p.start.await(t)

	for pass := 0; pass < radixPasses; pass++ {
		shift := pass * radixDigitBits

		// Phase 1: per-thread histogram of my span.
		for i := lo; i < hi; i++ {
			d := int(t.Load(idx(src, i))>>shift) & (radixBuckets - 1)
			c := t.Load(idx(p.hist, tid*radixBuckets+d))
			t.Compute(16) // digit extraction + index arithmetic
			t.Store(idx(p.hist, tid*radixBuckets+d), c+1)
		}
		p.histDone.await(t)

		// Phase 2: thread 0 computes global rank bases — the destination
		// start for each (thread, digit) — then raises the ready flag.
		if tid == 0 {
			if p.bug && pass == radixPasses-1 {
				// Order violation (Figure 7c): the flag goes up before
				// the bases it is supposed to order are written. Any
				// thread scheduled inside the rank phase below reads
				// whatever bases are in memory at that instant.
				//icvet:ignore race deliberately seeded bug: ready raised before the rank bases are produced
				t.Store(idx(p.rankReady, pass), 1)
			}
			base := uint64(0)
			for d := 0; d < radixBuckets; d++ {
				for th := 0; th < p.nt; th++ {
					t.Store(idx(p.rankBase, th*radixBuckets+d), base)
					base += t.Load(idx(p.hist, th*radixBuckets+d))
				}
			}
			if !(p.bug && pass == radixPasses-1) {
				t.Store(idx(p.rankReady, pass), 1)
			}
		}
		spinWaitFlag(t, idx(p.rankReady, pass))

		// Phase 3: scatter my span using my rank bases.
		var next [radixBuckets]uint64
		for d := 0; d < radixBuckets; d++ {
			//icvet:ignore race ordered by the rankReady flag protocol above (the Figure 7c bug deliberately skips it)
			next[d] = t.Load(idx(p.rankBase, tid*radixBuckets+d))
		}
		for i := lo; i < hi; i++ {
			k := t.Load(idx(src, i))
			d := int(k>>shift) & (radixBuckets - 1)
			pos := next[d] % uint64(p.n) // stays in bounds even with stale bases
			next[d]++
			t.Compute(24) // digit extraction + rank bookkeeping
			//icvet:ignore race the global rank bases partition dst: each (thread, digit) scatters into its own disjoint slot range
			t.Store(idx(dst, int(pos)), k)
		}
		p.permDone.await(t)

		// Phase 4: clear my histogram row for the next pass.
		for d := 0; d < radixBuckets; d++ {
			t.Store(idx(p.hist, tid*radixBuckets+d), 0)
		}
		p.clearDone.await(t)

		src, dst = dst, src
	}

	// Final verification: thread 0 folds the sorted array into a checksum.
	if tid == 0 {
		sum := uint64(0)
		for i := 0; i < p.n; i++ {
			sum = sum*31 + t.Load(idx(src, i))
		}
		t.Store(p.checksum, sum)
	}
	p.final.await(t)
}
