// Package ignoresite is a golden fixture for the ignoresite analyzer.
package ignoresite

import (
	"instantcheck/internal/mem"
	"instantcheck/internal/sim"
)

type prog struct {
	table  uint64
	static uint64
}

func (p *prog) Setup(t *sim.Thread) {
	p.table = t.Malloc("ig.table", 64, mem.KindWord)
	p.static = t.AllocStatic("ig.static", 8, mem.KindWord)
}

func rules() *sim.IgnoreSet {
	return sim.NewIgnoreSet(
		sim.IgnoreRule{Site: "ig.table"},                     // ok: matches the Malloc above
		sim.IgnoreRule{Site: "ig.static", Offsets: []int{0}}, // ok
		sim.IgnoreRule{Site: "ig.tabel"},                     // want `IgnoreRule site "ig\.tabel" matches no Malloc/AllocStatic site literal`
	)
}
