package apps

import (
	"math"

	"instantcheck/internal/core"
	"instantcheck/internal/mem"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

func init() {
	register(&App{
		Name:          "waterNS",
		Source:        "splash2",
		UsesFP:        true,
		ExpectedClass: core.ClassFPDeterministic,
		HostsBug:      BugSemantic,
		Build: func(o Options) sim.Program {
			p := newWaterProg("waterNS", o, false)
			p.bugSemantic = o.Bug == BugSemantic
			return p
		},
	})
	register(&App{
		Name:          "waterSP",
		Source:        "splash2",
		UsesFP:        true,
		ExpectedClass: core.ClassFPDeterministic,
		HostsBug:      BugAtomicity,
		Build: func(o Options) sim.Program {
			p := newWaterProg("waterSP", o, true)
			p.bugAtomicity = o.Bug == BugAtomicity
			return p
		},
	})
}

// waterProg reproduces SPLASH-2's water codes: 3-D molecular dynamics of n
// molecules over fixed timesteps. waterNS (n-squared) evaluates all pairs;
// waterSP (spatial) first bins molecules into cells along x and evaluates
// only nearby pairs. In both, pairwise forces accumulate into shared
// per-molecule force vectors under per-molecule locks, and the potential
// energy reduces into a shared global under a lock — atomic additions in
// schedule-dependent order, so both programs are deterministic only after
// FP rounding (Table 1: 21 points each — 5 steps × 4 barriers + end).
//
// The two Figure 7 bugs live here:
//
//   - waterNS, semantic (Figure 7a): in the energy phase, every thread
//     announces its contribution on a per-thread done flag *before* the
//     locked add that actually publishes it, and thread 3 derives its
//     diagnostic from the global accumulator as soon as all flags are up
//     — consuming the reduction before the phase that finishes it. The
//     announce/add order is wrong by a handful of operations, so the
//     premature read goes unnoticed unless a thread is preempted between
//     its announce and its add while thread 3 reads; like the real bugs
//     InstantCheck targets, it manifests rarely under stress testing.
//   - waterSP, atomicity violation (Figure 7b): thread 3 updates the
//     global potential with an unlocked read-modify-write; a preemption
//     between the read and the write loses concurrent updates.
//
// Both bugs read or write wrongly only on thread 3 and never crash the
// program.
type waterProg struct {
	name    string
	nt      int
	n       int
	steps   int
	spatial bool

	bugSemantic  bool
	bugAtomicity bool

	pos, vel, force uint64 // per-molecule 3-D state (stride 3)
	cellOf          uint64 // waterSP: per-molecule cell index
	pot             uint64 // global potential accumulator
	hist            uint64 // waterSP: per-step potential history
	diag            uint64 // per-thread diagnostic slots
	done            uint64 // bugSemantic: per-thread announce flags

	molLocks []*sched.Mutex
	potLock  *sched.Mutex

	predict, forces, correct, energy barrier
}

func newWaterProg(name string, o Options, spatial bool) *waterProg {
	p := &waterProg{name: name, nt: o.threads(), n: 64, steps: 5, spatial: spatial}
	if o.Small {
		p.n, p.steps = 24, 3
	}
	return p
}

func (p *waterProg) Name() string { return p.name }

func (p *waterProg) Threads() int { return p.nt }

// coord addresses component c of molecule i's vector in array base.
func (p *waterProg) coord(base uint64, i, c int) uint64 { return idx(base, i*3+c) }

func (p *waterProg) Setup(t *sim.Thread) {
	p.pos = t.AllocStatic("static:w.pos", 3*p.n, mem.KindFloat)
	p.vel = t.AllocStatic("static:w.vel", 3*p.n, mem.KindFloat)
	p.force = t.AllocStatic("static:w.force", 3*p.n, mem.KindFloat)
	p.pot = t.AllocStatic("static:w.pot", 1, mem.KindFloat)
	p.diag = t.AllocStatic("static:w.diag", p.nt, mem.KindFloat)
	if p.spatial {
		p.cellOf = t.AllocStatic("static:w.cell", p.n, mem.KindWord)
		p.hist = t.AllocStatic("static:w.hist", p.steps, mem.KindFloat)
	}
	if p.bugSemantic {
		p.done = t.AllocStatic("static:w.done", p.nt, mem.KindWord)
	}
	rng := newXorshift(17)
	for i := 0; i < p.n; i++ {
		for c := 0; c < 3; c++ {
			t.StoreF(p.coord(p.pos, i, c), 16*rng.unitFloat())
			t.StoreF(p.coord(p.vel, i, c), 0.1*(rng.unitFloat()-0.5))
		}
	}
	p.molLocks = make([]*sched.Mutex, p.n)
	for i := range p.molLocks {
		p.molLocks[i] = t.Machine().NewMutex("w.mol")
	}
	p.potLock = t.Machine().NewMutex("w.pot")
	p.predict = newBarrier(t, "w.predict")
	p.forces = newBarrier(t, "w.forces")
	p.correct = newBarrier(t, "w.correct")
	p.energy = newBarrier(t, "w.energy")
}

// addForce atomically accumulates df into molecule i's force vector.
func (p *waterProg) addForce(t *sim.Thread, i int, df [3]float64) {
	t.Lock(p.molLocks[i])
	for c := 0; c < 3; c++ {
		f := t.LoadF(p.coord(p.force, i, c))
		t.StoreF(p.coord(p.force, i, c), f+df[c])
	}
	t.Unlock(p.molLocks[i])
}

// pairForce3D is a softened Lennard-Jones-style interaction: given the
// displacement vector, it returns the force on molecule i and the pair's
// potential energy.
func pairForce3D(d [3]float64) (df [3]float64, pe float64) {
	r2 := d[0]*d[0] + d[1]*d[1] + d[2]*d[2] + 0.5
	inv := 1 / r2
	mag := inv * inv * (inv - 0.4) // repulsive core, mild attraction
	for c := 0; c < 3; c++ {
		df[c] = mag * d[c]
	}
	pe = inv
	return df, pe
}

func (p *waterProg) Worker(t *sim.Thread) {
	tid := t.TID()
	lo, hi := span(p.n, p.nt, tid)

	for step := 0; step < p.steps; step++ {
		// Phase 1: predict — clear forces and diagnostics, drift positions.
		for i := lo; i < hi; i++ {
			var x0 float64
			for c := 0; c < 3; c++ {
				t.StoreF(p.coord(p.force, i, c), 0)
				x := t.LoadF(p.coord(p.pos, i, c)) + 0.02*t.LoadF(p.coord(p.vel, i, c))
				t.StoreF(p.coord(p.pos, i, c), x)
				if c == 0 {
					x0 = x
				}
			}
			if p.spatial {
				cell := int(math.Abs(x0)) & 15
				t.Store(idx(p.cellOf, i), uint64(cell))
			}
		}
		t.StoreF(idx(p.diag, tid), 0)
		if p.bugSemantic {
			t.Store(idx(p.done, tid), 0)
		}
		if tid == 0 {
			if p.spatial && step > 0 {
				// Record the previous step's total potential; with the
				// atomicity bug the recorded value is corrupted by lost
				// updates, so the taint persists across later phases.
				t.StoreF(idx(p.hist, step-1), t.LoadF(p.pot))
			}
			t.StoreF(p.pot, 0)
		}
		p.predict.await(t)

		// Phase 2: pairwise forces. Pairs are partitioned by owner of the
		// lower index; force accumulation is locked per molecule.
		myPot := 0.0
		for i := lo; i < hi; i++ {
			var xi [3]float64
			for c := 0; c < 3; c++ {
				xi[c] = t.LoadF(p.coord(p.pos, i, c))
			}
			ci := uint64(0)
			if p.spatial {
				ci = t.Load(idx(p.cellOf, i))
			}
			for j := i + 1; j < p.n; j++ {
				if p.spatial {
					// Spatial version: skip far-apart cells.
					cj := t.Load(idx(p.cellOf, j))
					d := int(ci) - int(cj)
					if d < -1 || d > 1 {
						continue
					}
				}
				var d [3]float64
				for c := 0; c < 3; c++ {
					d[c] = xi[c] - t.LoadF(p.coord(p.pos, j, c))
				}
				df, pe := pairForce3D(d)
				t.Compute(90) // the 3-D potential evaluation
				p.addForce(t, i, [3]float64{-df[0], -df[1], -df[2]})
				p.addForce(t, j, df)
				myPot += pe
			}
		}
		p.forces.await(t)

		// Phase 3: correct — integrate velocities with damping so FP
		// reorder noise never amplifies.
		for i := lo; i < hi; i++ {
			for c := 0; c < 3; c++ {
				v := 0.97*t.LoadF(p.coord(p.vel, i, c)) + 0.005*t.LoadF(p.coord(p.force, i, c))
				t.StoreF(p.coord(p.vel, i, c), v)
			}
			t.Compute(24)
		}
		p.correct.await(t)

		// Phase 4: energy reduction into the shared accumulator.
		if p.bugSemantic {
			// Figure 7(a), half one: each thread announces its
			// contribution before the locked add that publishes it — the
			// announce belongs after the add.
			//icvet:ignore race deliberately seeded bug: the flag advertises an addition that has not happened yet
			t.Store(idx(p.done, tid), 1)
		}
		if p.bugAtomicity && tid == 3 {
			// Figure 7(b): unlocked read-modify-write — a preemption
			// between the load and the store loses concurrent additions.
			e := t.LoadF(p.pot)
			t.Compute(2)
			//icvet:ignore atomicity deliberately seeded bug: this is the racy RMW the detector exists to find
			t.StoreF(p.pot, e+myPot)
		} else {
			t.Lock(p.potLock)
			e := t.LoadF(p.pot)
			t.StoreF(p.pot, e+myPot)
			t.Unlock(p.potLock)
		}
		if p.bugSemantic && tid == 3 {
			// Figure 7(a), half two: consume the reduction as soon as
			// every thread has announced. Because the announce precedes
			// the add, the sum can still be missing a contribution from a
			// thread caught between the two — but only when a preemption
			// lands in that window, so the premature value is usually the
			// complete one and the bug manifests rarely.
			for i := 0; i < p.nt; i++ {
				spinWaitFlag(t, idx(p.done, i))
			}
			//icvet:ignore race deliberately seeded bug: unlocked read of the accumulator mid-reduction
			premature := t.LoadF(p.pot)
			t.StoreF(idx(p.diag, tid), premature/float64(p.n))
		} else {
			t.StoreF(idx(p.diag, tid), myPot/float64(p.n))
		}
		p.energy.await(t)
	}
}
