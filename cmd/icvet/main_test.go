package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestListAnalyzers checks -list names every analyzer.
func TestListAnalyzers(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("icvet -list: exit %d, stderr %q", code, errb.String())
	}
	for _, name := range []string{"directstate", "atomicity", "storekind", "lockpair", "ignoresite"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestCleanPackage checks a clean tree exits 0 with no output, through
// the /... pattern expansion.
func TestCleanPackage(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"../../examples/..."}, &out, &errb); code != 0 {
		t.Fatalf("icvet ../../examples/...: exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", out.String())
	}
}

// TestSuppressedAndUnsuppressed checks the fixture app is clean by
// default (its deliberate finding carries an //icvet:ignore comment) and
// dirty under -nosuppress.
func TestSuppressedAndUnsuppressed(t *testing.T) {
	dir := "../../internal/analysis/fixtureapp"

	var out, errb strings.Builder
	if code := run([]string{dir}, &out, &errb); code != 0 {
		t.Fatalf("icvet %s: exit %d\nstdout: %s\nstderr: %s", dir, code, out.String(), errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-nosuppress", dir}, &out, &errb); code != 1 {
		t.Fatalf("icvet -nosuppress %s: exit %d, want 1\nstdout: %s", dir, code, out.String())
	}
	if !strings.Contains(out.String(), "[atomicity]") || !strings.Contains(out.String(), "fixtureapp.go") {
		t.Errorf("-nosuppress output does not report the deliberate atomicity finding:\n%s", out.String())
	}
}

// TestUsageErrors checks the exit-2 paths.
func TestUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no arguments: exit %d, want 2", code)
	}
	if code := run([]string{"-run", "nosuch", "."}, &out, &errb); code != 2 {
		t.Errorf("unknown analyzer: exit %d, want 2", code)
	}
	if code := run([]string{"../../does/not/exist"}, &out, &errb); code != 2 {
		t.Errorf("missing directory: exit %d, want 2", code)
	}
}

// TestRunFilter checks -run restricts the analyzer set: the fixture
// app's atomicity finding disappears when only lockpair runs.
func TestRunFilter(t *testing.T) {
	dir := "../../internal/analysis/fixtureapp"
	var out, errb strings.Builder
	if code := run([]string{"-run", "lockpair", "-nosuppress", dir}, &out, &errb); code != 0 {
		t.Fatalf("icvet -run lockpair: exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}

// TestGlobalSort checks the report is accumulated across packages and
// globally sorted: the same byte output regardless of argument order.
func TestGlobalSort(t *testing.T) {
	dirs := []string{"../../internal/analysis/fixtureapp", "../../internal/apps"}
	rev := []string{dirs[1], dirs[0]}

	var a, b, errb strings.Builder
	codeA := run(append([]string{"-nosuppress"}, dirs...), &a, &errb)
	codeB := run(append([]string{"-nosuppress"}, rev...), &b, &errb)
	if codeA != 1 || codeB != 1 {
		t.Fatalf("exit codes %d/%d, want 1/1 (fixture findings expected)\nstderr: %s", codeA, codeB, errb.String())
	}
	if a.String() != b.String() {
		t.Errorf("output depends on package argument order:\n--- %v\n%s\n--- %v\n%s", dirs, a.String(), rev, b.String())
	}
	lines := strings.Split(strings.TrimSuffix(a.String(), "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Errorf("output not sorted at line %d:\n%s\n%s", i, lines[i-1], lines[i])
		}
	}
}

// TestRaceSubcommand checks `icvet race` over the workload package:
// informational exit 0, the streamcluster order-violation pair visible,
// and byte-identical output across runs.
func TestRaceSubcommand(t *testing.T) {
	dir := "../../internal/apps"
	var first string
	for i := 0; i < 2; i++ {
		var out, errb strings.Builder
		if code := run([]string{"race", dir}, &out, &errb); code != 0 {
			t.Fatalf("icvet race: exit %d\nstderr: %s", code, errb.String())
		}
		if i == 0 {
			first = out.String()
			if !strings.Contains(first, "region=static:sc.open") {
				t.Errorf("race report lost the streamcluster order-violation pair:\n%s", first)
			}
			if !strings.Contains(first, "candidate pair(s)") {
				t.Errorf("race report missing the summary line:\n%s", first)
			}
		} else if out.String() != first {
			t.Error("race report differs between identical runs")
		}
	}
}

// TestRaceJSON checks the -json report parses and carries the site
// attribution fields the cross-check and the explorer rely on.
func TestRaceJSON(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"race", "-json", "../../internal/apps"}, &out, &errb); code != 0 {
		t.Fatalf("icvet race -json: exit %d\nstderr: %s", code, errb.String())
	}
	var doc []raceJSONPackage
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc) != 1 || len(doc[0].Pairs) == 0 {
		t.Fatalf("want one package with pairs, got %d packages", len(doc))
	}
	p := doc[0].Pairs[0]
	if p.Program == "" || p.Region == "" || p.A.ID == "" || p.A.Line == 0 || p.B.Kind == "" {
		t.Errorf("pair is missing attribution fields: %+v", p)
	}
}

// TestRaceUsage checks the subcommand's exit-2 paths.
func TestRaceUsage(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"race"}, &out, &errb); code != 2 {
		t.Errorf("race with no packages: exit %d, want 2", code)
	}
	if code := run([]string{"race", "../../does/not/exist"}, &out, &errb); code != 2 {
		t.Errorf("race on missing directory: exit %d, want 2", code)
	}
}
