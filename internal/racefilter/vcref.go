package racefilter

// VCDetector is the retained vector-clock reference implementation: the
// map-per-address happens-before detector the epoch detector replaced on
// the hot path. It keeps the baseline's cost model — the source pc is
// captured eagerly on every access through the runtime.Callers-based
// unwind (the push-PC contract the old EventListener had; see
// sim.Thread.CallersPC), every access pays the per-address map lookup,
// and every race predicate is re-evaluated on repeats (harmless: the
// predicates are monotonically false once checked, and reports dedup
// first-wins) — while implementing the same canonical observable
// semantics as the epoch detector: first-access-of-epoch pc attribution
// and readers visited in ascending slot order. The two implementations
// are observationally identical event for event; FuzzEpochEqualsVectorClock
// pins that.
//
// Select it at run time with ICHECK_RACE_DETECTOR=vc (see Selected); the
// BENCH_8 interleaved A/B and the differential fuzzer are its consumers.

import (
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

// baselinePC captures the access pc the way the baseline architecture
// did: through runtime.Callers on every access. sim.Thread exposes that
// path as CallersPC; sources without it (the fuzzer's synthetic pcs)
// fall through to the plain PC pull, so differential fuzzing feeds both
// detectors identical values.
func baselinePC(pc pcer) uintptr {
	if sp, ok := pc.(interface{ CallersPC() uintptr }); ok {
		return sp.CallersPC()
	}
	return pc.PC()
}

// vcEpoch is a (thread, clock) pair carrying the source pc of the first
// access in that epoch.
type vcEpoch struct {
	tid   int
	clock uint64
	pc    uintptr
}

// addrState is the per-address metadata of the reference detector.
type addrState struct {
	write vcEpoch
	reads map[int]vcEpoch // reader slot -> last read epoch
}

// VCDetector is the vector-clock reference detector. It implements
// sim.EventListener; attach it via sim.Config.Events.
type VCDetector struct {
	nt      int
	vc      [][]uint64
	locks   map[*sched.Mutex][]uint64
	addrs   map[uint64]*addrState
	races   raceSet
	started bool
}

// NewVCDetector returns a reference detector for nt worker threads (plus
// the init thread).
func NewVCDetector(nt int) *VCDetector {
	d := &VCDetector{
		nt:    nt,
		locks: make(map[*sched.Mutex][]uint64),
		addrs: make(map[uint64]*addrState),
		races: newRaceSet(),
	}
	d.vc = make([][]uint64, nt+1)
	for i := range d.vc {
		d.vc[i] = make([]uint64, nt+1)
		d.vc[i][i] = 1
	}
	return d
}

func (d *VCDetector) slot(tid int) int {
	if tid < 0 {
		return d.nt
	}
	return tid
}

// begin applies the program-start edge: Setup happens-before every worker.
func (d *VCDetector) begin(tid int) {
	if d.started || tid < 0 {
		return
	}
	d.started = true
	init := d.vc[d.nt]
	for t := 0; t < d.nt; t++ {
		join(d.vc[t], init)
	}
}

// OnRead implements sim.EventListener.
func (d *VCDetector) OnRead(t *sim.Thread, addr uint64) { d.read(t.TID(), addr, t) }

// OnWrite implements sim.EventListener.
func (d *VCDetector) OnWrite(t *sim.Thread, addr uint64) { d.write(t.TID(), addr, t) }

func (d *VCDetector) read(tid int, addr uint64, pc pcer) {
	d.begin(tid)
	s := d.slot(tid)
	p := baselinePC(pc) // eager: the baseline captured a pc on every access
	st := d.state(addr)
	if st.write.clock > 0 && st.write.tid != s && st.write.clock > d.vc[s][st.write.tid] {
		d.races.report(addr, WriteRead, st.write.tid, s, st.write.pc, p)
	}
	if re, ok := st.reads[s]; ok && re.clock == d.vc[s][s] {
		return // entry already current: keep the first-of-epoch pc
	}
	if st.reads == nil {
		st.reads = make(map[int]vcEpoch)
	}
	st.reads[s] = vcEpoch{tid: s, clock: d.vc[s][s], pc: p}
}

func (d *VCDetector) write(tid int, addr uint64, pc pcer) {
	d.begin(tid)
	s := d.slot(tid)
	p := baselinePC(pc) // eager: the baseline captured a pc on every access
	st := d.state(addr)
	if st.write.clock > 0 && st.write.tid != s && st.write.clock > d.vc[s][st.write.tid] {
		d.races.report(addr, WriteWrite, st.write.tid, s, st.write.pc, p)
	}
	for rt := 0; rt <= d.nt; rt++ {
		if re, ok := st.reads[rt]; ok && rt != s && re.clock > d.vc[s][rt] {
			d.races.report(addr, ReadWrite, rt, s, re.pc, p)
		}
	}
	if st.write.tid != s || st.write.clock != d.vc[s][s] {
		st.write = vcEpoch{tid: s, clock: d.vc[s][s], pc: p}
	}
	st.reads = nil
}

// OnAcquire implements sim.EventListener: acquiring a lock joins the
// lock's release clock into the thread.
func (d *VCDetector) OnAcquire(tid int, mu *sched.Mutex) {
	d.begin(tid)
	if lv := d.locks[mu]; lv != nil {
		join(d.vc[d.slot(tid)], lv)
	}
}

// OnRelease implements sim.EventListener: releasing publishes the thread's
// clock on the lock and advances the thread's epoch.
func (d *VCDetector) OnRelease(tid int, mu *sched.Mutex) {
	d.begin(tid)
	s := d.slot(tid)
	lv := d.locks[mu]
	if lv == nil {
		lv = make([]uint64, d.nt+1)
		d.locks[mu] = lv
	}
	copy(lv, d.vc[s])
	d.vc[s][s]++
}

// OnBarrier implements sim.EventListener: a barrier episode totally orders
// all threads — everyone joins everyone and advances.
func (d *VCDetector) OnBarrier(ordinal int) {
	var all []uint64
	for t := 0; t < d.nt; t++ {
		if all == nil {
			all = append([]uint64(nil), d.vc[t]...)
		} else {
			join(all, d.vc[t])
		}
	}
	for t := 0; t < d.nt; t++ {
		join(d.vc[t], all)
		d.vc[t][t]++
	}
}

func (d *VCDetector) state(addr uint64) *addrState {
	st := d.addrs[addr]
	if st == nil {
		st = &addrState{}
		d.addrs[addr] = st
	}
	return st
}

// Races returns the detected races sorted by address then kind.
func (d *VCDetector) Races() []Race { return d.races.sorted() }
