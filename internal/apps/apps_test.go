package apps

import (
	"testing"

	"instantcheck/internal/core"
	"instantcheck/internal/mem"
	"instantcheck/internal/sim"
)

// testCampaign is the reduced-scale campaign used by unit tests: fewer
// runs and threads than the paper's 30×8, plenty to expose every app's
// determinism class.
func testCampaign() core.Campaign {
	return core.Campaign{Runs: 8, Threads: 4, BaseScheduleSeed: 100, InputSeed: 7}
}

func testOptions() Options { return Options{Threads: 4, Small: true} }

// TestRegistryComplete checks all 17 evaluation applications are present.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"blackscholes", "fft", "lu", "radix", "streamcluster", "swaptions", "volrend",
		"fluidanimate", "ocean", "waterNS", "waterSP",
		"cholesky", "pbzip2", "sphinx3",
		"barnes", "canneal", "radiosity",
	}
	if got := len(Registry()); got != len(want) {
		t.Fatalf("registry has %d apps, want %d", got, len(want))
	}
	for _, name := range want {
		if ByName(name) == nil {
			t.Errorf("registry is missing %q", name)
		}
	}
}

// TestIgnoreSitesExist guards against typo'd ignore-set site names, which
// would silently match nothing and leave the "isolated" structure in the
// hash: every site an app's ignore set names must appear among the blocks
// of a real run.
func TestIgnoreSitesExist(t *testing.T) {
	for _, app := range Registry() {
		if app.Ignore == nil {
			continue
		}
		app := app
		t.Run(app.Name, func(t *testing.T) {
			m, _ := runApp(t, app.Name, testOptions(), 1)
			present := map[string]bool{}
			m.Mem.TraverseBlocks(func(b *mem.Block) { present[b.Site] = true })
			for _, site := range app.IgnoreSet().Sites() {
				if !present[site] {
					t.Errorf("ignore set names site %q, but no live block has it", site)
				}
			}
		})
	}
}

// TestSchemeVerdictsAgree cross-validates at the campaign level: for every
// workload, the HW-incremental and traversal schemes reach the same
// per-checkpoint verdicts (the paper used its SW-Tr prototype to confirm
// the HW-Inc determinism results).
func TestSchemeVerdictsAgree(t *testing.T) {
	for _, app := range Registry() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			opts := testOptions()
			if app.Name == "streamcluster" {
				opts.FixBug = true
			}
			campInc := testCampaign()
			campInc.Runs = 6
			campInc.RoundFP = app.UsesFP
			campInc.Ignore = app.IgnoreSet()
			campTr := campInc
			campTr.Scheme = sim.SWTr

			inc, err := campInc.Check(app.Builder(opts))
			if err != nil {
				t.Fatal(err)
			}
			tr, err := campTr.Check(app.Builder(opts))
			if err != nil {
				t.Fatal(err)
			}
			if inc.Points() != tr.Points() {
				t.Fatalf("point counts differ: %d vs %d", inc.Points(), tr.Points())
			}
			for i := range inc.Stats {
				if inc.Stats[i].Deterministic != tr.Stats[i].Deterministic {
					t.Errorf("checkpoint %d: Inc det=%v, Tr det=%v",
						i, inc.Stats[i].Deterministic, tr.Stats[i].Deterministic)
				}
			}
		})
	}
}

// TestDeterminismClasses reruns the Table 1 characterization at test scale
// and checks every application lands in the class the paper reports.
func TestDeterminismClasses(t *testing.T) {
	for _, app := range Registry() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			opts := testOptions()
			if app.Name == "streamcluster" {
				// Table 1 groups streamcluster as bit-by-bit via the
				// fixed build (★ footnote); the buggy build is covered by
				// TestStreamclusterBug.
				opts.FixBug = true
			}
			ch, err := testCampaign().Characterize(app.Builder(opts), app.IgnoreSet())
			if err != nil {
				t.Fatal(err)
			}
			if ch.Class != app.ExpectedClass {
				t.Errorf("class = %v, want %v\n  bit: det=%v ndet=%d/%d first=%d\n  fp:  det=%v ndet=%d/%d\n",
					ch.Class, app.ExpectedClass,
					ch.BitByBit.Deterministic(), ch.BitByBit.NDetPoints, ch.BitByBit.Points(), ch.BitByBit.FirstNDetRun,
					ch.AfterRounding.Deterministic(), ch.AfterRounding.NDetPoints, ch.AfterRounding.Points())
			}
		})
	}
}
