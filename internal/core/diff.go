package core

import (
	"fmt"

	"instantcheck/internal/mem"
	"instantcheck/internal/replay"
)

// DiffCapture holds the full memory states of two runs at the first
// checkpoint where their hashes differ — the input to the state-diff
// debugging tool (§2.3). InstantCheck itself only stores 64-bit hashes;
// when nondeterminism is found, the prototype re-executes the two differing
// runs and stores entire states at the point of divergence.
type DiffCapture struct {
	// Ordinal is the first checkpoint ordinal at which the runs differ.
	Ordinal int
	// Label is the checkpoint's label.
	Label string
	// RunA and RunB are the 1-based indices of the two differing runs.
	RunA int
	// RunB is the second differing run (the first one whose vector differs
	// from RunA's).
	RunB int
	// A and B are the captured states.
	A *mem.Snapshot
	// B is the state of RunB at the same checkpoint.
	B *mem.Snapshot
}

// captureDiff re-executes run 1 and run FirstNDetRun with the same seeds,
// inputs and replay logs, capturing snapshots at the first checkpoint where
// their hash vectors diverge. Re-execution is exact because the scheduler,
// allocator and env streams are all replayed.
func (c Campaign) captureDiff(build Builder, rep *Report) error {
	runA, runB := 0, rep.FirstNDetRun-1
	va := rep.Runs[runA].SHVector()
	vb := rep.Runs[runB].SHVector()
	n := len(va)
	if len(vb) < n {
		n = len(vb)
	}
	ord := -1
	for i := 0; i < n; i++ {
		if va[i] != vb[i] {
			ord = i
			break
		}
	}
	if ord < 0 {
		// Vectors agree on the common prefix; the divergence is the
		// checkpoint-count mismatch itself. Snapshot the last common point.
		if n == 0 {
			return fmt.Errorf("no common checkpoint between runs %d and %d", runA+1, runB+1)
		}
		ord = n - 1
	}
	snapAt := map[int]bool{ord: true}
	// Fresh logs replayed from scratch: re-record deterministically by
	// replaying run A first (run A is run 1, the recording run).
	addrLog := replay.NewAddrLog()
	env := replay.NewEnv(c.InputSeed)
	resA, _, err := c.runOnce(build, addrLog, env, runA, snapAt)
	if err != nil {
		return err
	}
	resB, _, err := c.runOnce(build, addrLog, env, runB, snapAt)
	if err != nil {
		return err
	}
	if ord >= len(resA.Checkpoints) || ord >= len(resB.Checkpoints) {
		return fmt.Errorf("re-execution produced fewer checkpoints than ordinal %d", ord)
	}
	rep.DiffSnapshots = &DiffCapture{
		Ordinal: ord,
		Label:   resA.Checkpoints[ord].Label,
		RunA:    runA + 1,
		RunB:    runB + 1,
		A:       resA.Checkpoints[ord].Snapshot,
		B:       resB.Checkpoints[ord].Snapshot,
	}
	return nil
}
