package explore

// Race-directed search: the static `icvet race` report names candidate
// racy site pairs; this file uses them as preemption hints. Uniform
// random search only exposes a rare atomicity window when the scheduler
// happens to switch threads inside it, so the expected number of runs
// to surface a bug like Figure 7(b) is large. Forcing a scheduling
// decision immediately before every access at a statically-implicated
// site concentrates the schedule randomness exactly where a race can
// change the outcome.

import (
	"fmt"
	"path/filepath"
	"strings"

	"instantcheck/internal/ihash"
	"instantcheck/internal/replay"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

// RaceHint names one candidate racy site pair from the static race
// report, at the "dir/file.go:line" granularity dynamic pc attribution
// can reproduce (analysis.RaceSite.FileLine).
type RaceHint struct {
	SiteA, SiteB string
}

// hintSites collects the distinct sites named by hints.
func hintSites(hints []RaceHint) map[string]bool {
	sites := make(map[string]bool, 2*len(hints))
	for _, h := range hints {
		sites[h.SiteA] = true
		sites[h.SiteB] = true
	}
	return sites
}

// shortSite keeps the final directory and base name of a source path,
// matching the site identity of the static report.
func shortSite(file string) string {
	parts := strings.Split(filepath.ToSlash(file), "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}

// raceDirector is an EventListener that forces a scheduling decision
// immediately before every access at a hinted site. OnRead/OnWrite fire
// before the operation commits, so the preemption lands inside the racy
// window (between a load and the store of an unlocked read-modify-write,
// for example) rather than after it has closed.
type raceDirector struct {
	m     *sim.Machine
	sites map[string]bool
	pcs   map[uintptr]bool // memoized pc -> hinted
	hits  int
}

// attach gives the director the machine whose scheduler it preempts
// through (machineAware; the machine cannot exist before the config that
// carries the listener).
func (d *raceDirector) attach(m *sim.Machine) { d.m = m }

func (d *raceDirector) hinted(pc uintptr) bool {
	v, ok := d.pcs[pc]
	if !ok {
		file, line := sim.SitePos(pc)
		v = d.sites[fmt.Sprintf("%s:%d", shortSite(file), line)]
		d.pcs[pc] = v
	}
	return v
}

func (d *raceDirector) maybePreempt(t *sim.Thread) {
	tid := t.TID()
	if tid < 0 {
		return
	}
	// Directing is inherently per-site, so the director pulls the pc on
	// every worker access; the pc -> hinted verdict is memoized so the
	// site resolution itself runs once per distinct access site.
	if !d.hinted(t.PC()) {
		return
	}
	sch := d.m.Scheduler()
	if sch == nil {
		return
	}
	d.hits++
	sch.Preempt(tid)
}

func (d *raceDirector) OnRead(t *sim.Thread, addr uint64)  { d.maybePreempt(t) }
func (d *raceDirector) OnWrite(t *sim.Thread, addr uint64) { d.maybePreempt(t) }
func (d *raceDirector) OnAcquire(int, *sched.Mutex)        {}
func (d *raceDirector) OnRelease(int, *sched.Mutex)        {}
func (d *raceDirector) OnBarrier(int)                      {}

// DirectedResult summarizes a FindNondeterminism search.
type DirectedResult struct {
	// Runs is the number of schedules executed.
	Runs int
	// Found is true when two schedules produced different final hashes.
	Found bool
	// Hits counts directed preemptions across all runs (0 for uniform
	// search).
	Hits int
}

// FindNondeterminism runs up to maxRuns randomly scheduled executions
// and stops as soon as two runs disagree on the final State Hash — the
// InstantCheck nondeterminism verdict. With hints, every access at a
// hinted site forces a scheduling decision (race-directed search); with
// none, the schedules are uniform random, the baseline it is measured
// against.
func FindNondeterminism(build func() sim.Program, o Options, hints []RaceHint, maxRuns int) (*DirectedResult, error) {
	if o.Threads <= 0 {
		return nil, fmt.Errorf("explore: Threads must be positive")
	}
	scheme := o.Scheme
	if scheme == sim.Native {
		scheme = sim.HWInc
	}
	env := replay.NewEnv(o.InputSeed)
	addrLog := replay.NewAddrLog()
	sites := hintSites(hints)

	res := &DirectedResult{}
	var first ihash.Digest
	for run := 0; run < maxRuns; run++ {
		cfg := sim.Config{
			Threads: o.Threads,
			// Offset from the caller's base seed so repeated campaigns
			// can explore fresh schedule sequences; the zero base
			// reproduces the historical seeds 1, 2, 3, ...
			ScheduleSeed:   o.ScheduleSeed + int64(run) + 1,
			SwitchInterval: o.SwitchInterval,
			Scheme:         scheme,
			Hasher:         o.Hasher,
			RoundFP:        o.RoundFP,
			Ignore:         o.Ignore,
			Env:            env,
			AddrLog:        addrLog,
		}
		var d *raceDirector
		if len(hints) > 0 {
			d = &raceDirector{sites: sites, pcs: make(map[uintptr]bool)}
			cfg.Events = d
		}
		m := sim.NewMachine(cfg)
		if d != nil {
			d.m = m
		}
		r, err := m.Run(build())
		res.Runs = run + 1
		if d != nil {
			res.Hits += d.hits
		}
		if err != nil {
			return nil, fmt.Errorf("explore: directed run %d: %w", run+1, err)
		}
		h := r.FinalSH()
		if run == 0 {
			first = h
			continue
		}
		if h != first {
			res.Found = true
			return res, nil
		}
	}
	return res, nil
}
