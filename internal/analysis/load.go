package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// Dir is the package directory on disk.
	Dir string
	// Path is the package's import path (module-relative for module
	// packages), used for display.
	Path string
	// Fset positions all files of the package.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's resolution results.
	Info *types.Info
}

// Loader parses and type-checks packages from source using only the
// standard library (go/parser, go/types). It stands in for
// golang.org/x/tools/go/packages, which this repository deliberately does
// not depend on. Imports are resolved two ways: paths under the enclosing
// module map to module subdirectories, everything else maps to GOROOT
// source. Dependency packages are checked with function bodies ignored —
// only their declarations matter to the analyzed package.
type Loader struct {
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet

	moduleDir  string
	modulePath string
	deps       map[string]*types.Package
	loading    map[string]bool
}

// NewLoader creates a loader rooted at the Go module that contains dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	return &Loader{
		Fset:       token.NewFileSet(),
		moduleDir:  modDir,
		modulePath: modPath,
		deps:       make(map[string]*types.Package),
		loading:    make(map[string]bool),
	}, nil
}

// buildContext selects the files of each package. Cgo is disabled: the
// loader type-checks pure Go source only, and with cgo on, packages like
// net would select cgo files whose _C_* definitions live in files the
// loader cannot process. With it off the stdlib resolves to its pure-Go
// variants, exactly as under CGO_ENABLED=0.
var buildContext = func() build.Context {
	c := build.Default
	c.CgoEnabled = false
	return c
}()

// findModule walks up from dir to the nearest go.mod and reads the module
// path from its module directive.
func findModule(dir string) (modDir, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Load parses and type-checks the package in dir with full syntax,
// comments, and type information, ready for analyzers.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	bp, err := buildContext.ImportDir(abs, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	path := l.displayPath(abs, bp.Name)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	return &Package{
		Dir:   abs,
		Path:  path,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// displayPath derives an import-ish path for the package at abs.
func (l *Loader) displayPath(abs, pkgName string) string {
	if rel, err := filepath.Rel(l.moduleDir, abs); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.modulePath
		}
		return l.modulePath + "/" + filepath.ToSlash(rel)
	}
	return abs + " (" + pkgName + ")"
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: dependency packages are
// type-checked from source with function bodies ignored.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.deps[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, err := l.resolveDir(path)
	if err != nil {
		return nil, err
	}
	bp, err := buildContext.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: import %q: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: l, FakeImportC: true, IgnoreFuncBodies: true}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("analysis: import %q: %w", path, err)
	}
	l.deps[path] = pkg
	return pkg, nil
}

// resolveDir maps an import path to a source directory: module-local paths
// to the module tree, everything else to GOROOT (with the std vendor
// directory as fallback).
func (l *Loader) resolveDir(path string) (string, error) {
	if path == l.modulePath {
		return l.moduleDir, nil
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleDir, filepath.FromSlash(rest)), nil
	}
	root := filepath.Join(runtime.GOROOT(), "src")
	dir := filepath.Join(root, filepath.FromSlash(path))
	if _, err := os.Stat(dir); err == nil {
		return dir, nil
	}
	vendored := filepath.Join(root, "vendor", filepath.FromSlash(path))
	if _, err := os.Stat(vendored); err == nil {
		return vendored, nil
	}
	return "", fmt.Errorf("analysis: cannot resolve import %q (not in module %s or GOROOT)", path, l.modulePath)
}

// ExpandPatterns resolves command-line package patterns into package
// directories. A pattern is either a directory or a directory followed by
// "/..." selecting every package beneath it. Like the go tool, the walk
// skips testdata directories and directories whose name starts with "." or
// "_"; directories without buildable Go files are dropped.
func ExpandPatterns(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := pat, false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			root = strings.TrimSuffix(pat, "...")
			root = strings.TrimSuffix(root, "/")
			if root == "" {
				root = "."
			}
		}
		st, err := os.Stat(root)
		if err != nil {
			return nil, fmt.Errorf("analysis: pattern %q: %w", pat, err)
		}
		if !st.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q is not a directory", pat)
		}
		if !recursive {
			if hasGoFiles(root) {
				add(root)
			} else {
				return nil, fmt.Errorf("analysis: no Go files in %s", root)
			}
			continue
		}
		err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir contains at least one non-test Go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
