// Package mhm models the Memory-State Hashing Module of HW-InstantCheck_Inc
// (paper §3): the per-core unit in the L1 cache controller that keeps a
// 64-bit Thread Hash (TH) register and, for every write that updates the L1,
// computes
//
//	TH = TH ⊖ hash(V_addr, Data_old) ⊕ hash(V_addr, Data_new)
//
// All MHM operations are core-local; the global State Hash is obtained in
// software by modulo-adding the TH registers of all cores.
//
// The model implements the full software interface of Figure 4
// (start/stop_hashing, save/restore_hash, minus_hash, plus_hash,
// start/stop_FP_rounding), the FP round-off unit placed in front of the hash
// unit (§3.1), and both datapath variants of Figure 3: the basic
// single-register design and the highly-parallel multi-cluster design in
// which hash terms are dispatched to independent clusters in arbitrary order
// and merged into TH later. Because ⊕ is commutative and associative, every
// dispatch order yields the same TH — the property §3.2 exploits for
// flexible implementations, and which this package's tests verify.
package mhm

import (
	"instantcheck/internal/fpround"
	"instantcheck/internal/ihash"
)

// Stats counts the MHM activity of one thread, feeding the paper's
// instruction-count overhead model (§7.3).
type Stats struct {
	// HashedStores is the number of stores whose hash terms entered TH.
	HashedStores uint64
	// SkippedStores is the number of stores seen while hashing was stopped.
	SkippedStores uint64
	// RoundedStores is the number of hashed stores that went through the
	// FP round-off unit.
	RoundedStores uint64
	// MinusOps and PlusOps count explicit minus_hash/plus_hash instructions.
	MinusOps uint64
	// PlusOps counts explicit plus_hash instructions.
	PlusOps uint64
	// Saves and Restores count save_hash/restore_hash instructions.
	Saves uint64
	// Restores counts restore_hash instructions.
	Restores uint64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.HashedStores += o.HashedStores
	s.SkippedStores += o.SkippedStores
	s.RoundedStores += o.RoundedStores
	s.MinusOps += o.MinusOps
	s.PlusOps += o.PlusOps
	s.Saves += o.Saves
	s.Restores += o.Restores
}

// Dispatcher selects, for the i-th hash term of a store, which cluster of a
// multi-cluster MHM receives it. Any pure or stateful policy is legal: §3.2
// guarantees the final TH is independent of the choice.
type Dispatcher func(term int) int

// Unit is one core's MHM. It is owned by a single simulated thread, exactly
// as a TH register is core-local. The zero value is not usable; call New.
type Unit struct {
	hasher   ihash.Hasher
	th       ihash.Digest
	clusters []ihash.Digest
	dispatch Dispatcher
	nextTerm int

	hashing  bool
	rounding bool
	policy   fpround.Policy

	stats Stats
}

// New returns a basic (Figure 3a) MHM using the given location hash, with
// hashing initially enabled and FP rounding off. policy configures what the
// round-off unit does once start_FP_rounding executes. A nil hasher selects
// ihash.Mix64.
func New(h ihash.Hasher, policy fpround.Policy) *Unit {
	if h == nil {
		h = ihash.Mix64{}
	}
	return &Unit{hasher: h, hashing: true, policy: policy}
}

// NewClustered returns a Figure 3(b) MHM with n independent clusters and the
// given dispatch policy (nil means round-robin). Partial sums accumulate in
// the clusters and are merged whenever TH is read.
func NewClustered(h ihash.Hasher, policy fpround.Policy, n int, d Dispatcher) *Unit {
	u := New(h, policy)
	if n < 1 {
		n = 1
	}
	u.clusters = make([]ihash.Digest, n)
	u.dispatch = d
	return u
}

// OnStore is invoked by the write-buffer drain path for every store the
// thread performs: addr is the virtual address, old/new the raw 64-bit word
// values, isFP whether the store instruction was an FP store (the CNTR input
// of Figure 3a, produced by the compiler marking FP writes, §5).
func (u *Unit) OnStore(addr, old, new uint64, isFP bool) {
	if !u.hashing {
		u.stats.SkippedStores++
		return
	}
	u.stats.HashedStores++
	if isFP && u.rounding {
		u.stats.RoundedStores++
		old = u.policy.RoundBits(old)
		new = u.policy.RoundBits(new)
	}
	u.accumulate(u.hasher.HashWord(addr, old).Negate())
	u.accumulate(ihash.Digest(u.hasher.HashWord(addr, new)))
}

// MinusHash implements the minus_hash instruction: subtract the hash of the
// current value at addr from TH. cur is the value software read from addr;
// isFP routes it through the round-off unit under the same conditions a
// store would take.
func (u *Unit) MinusHash(addr, cur uint64, isFP bool) {
	u.stats.MinusOps++
	if isFP && u.rounding {
		cur = u.policy.RoundBits(cur)
	}
	u.accumulate(u.hasher.HashWord(addr, cur).Negate())
}

// PlusHash implements the plus_hash instruction: add to TH the hash of val
// as if val were the current value at addr.
func (u *Unit) PlusHash(addr, val uint64, isFP bool) {
	u.stats.PlusOps++
	if isFP && u.rounding {
		val = u.policy.RoundBits(val)
	}
	u.accumulate(ihash.Digest(u.hasher.HashWord(addr, val)))
}

// StartHashing implements start_hashing.
func (u *Unit) StartHashing() { u.hashing = true }

// StopHashing implements stop_hashing; stores seen while stopped do not
// affect TH (used to run analysis code in the checked address space, §3.3).
func (u *Unit) StopHashing() { u.hashing = false }

// Hashing reports whether the unit is currently hashing stores.
func (u *Unit) Hashing() bool { return u.hashing }

// StartFPRounding implements start_FP_rounding.
func (u *Unit) StartFPRounding() { u.rounding = true }

// StopFPRounding implements stop_FP_rounding.
func (u *Unit) StopFPRounding() { u.rounding = false }

// Rounding reports whether FP values are being rounded before hashing.
func (u *Unit) Rounding() bool { return u.rounding }

// Policy returns the configured round-off policy.
func (u *Unit) Policy() fpround.Policy { return u.policy }

// SaveHash implements save_hash: it returns the TH register value (merging
// cluster partial sums first, as a real implementation would drain clusters
// before a context switch).
func (u *Unit) SaveHash() ihash.Digest {
	u.stats.Saves++
	return u.TH()
}

// RestoreHash implements restore_hash: it loads TH from a previously saved
// value. Cluster partial sums are cleared — they were folded into the saved
// value by SaveHash.
func (u *Unit) RestoreHash(d ihash.Digest) {
	u.stats.Restores++
	u.th = d
	for i := range u.clusters {
		u.clusters[i] = ihash.Zero
	}
}

// TH returns the current Thread Hash, merging any cluster partial sums into
// the register (the deferred merge of Figure 3b).
func (u *Unit) TH() ihash.Digest {
	th := u.th
	for _, c := range u.clusters {
		th = th.Combine(c)
	}
	return th
}

// Stats returns a copy of the unit's activity counters.
func (u *Unit) Stats() Stats { return u.stats }

// Hasher returns the location hash in use.
func (u *Unit) Hasher() ihash.Hasher { return u.hasher }

func (u *Unit) accumulate(term ihash.Digest) {
	if len(u.clusters) == 0 {
		u.th = u.th.Combine(term)
		return
	}
	i := u.nextTerm
	u.nextTerm++
	var c int
	if u.dispatch != nil {
		c = u.dispatch(i) % len(u.clusters)
		if c < 0 {
			c += len(u.clusters)
		}
	} else {
		c = i % len(u.clusters)
	}
	u.clusters[c] = u.clusters[c].Combine(term)
}

// CombineTH folds per-core Thread Hashes into the State Hash, the rare
// software-side global operation of §2.2: SH = TH_0 ⊕ TH_1 ⊕ … .
func CombineTH(units ...*Unit) ihash.Digest {
	ths := make([]ihash.Digest, len(units))
	for i, u := range units {
		ths[i] = u.TH()
	}
	return ihash.CombineAll(ths...)
}
