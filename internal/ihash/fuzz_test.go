package ihash

import "testing"

// FuzzHashProperties fuzzes the location hash and group laws: h never
// returns the identity, updates cancel exactly, and permuting two inserts
// never changes the digest.
func FuzzHashProperties(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(1))
	f.Add(uint64(1<<63), ^uint64(0), uint64(42))
	f.Fuzz(func(t *testing.T, addr, v0, v1 uint64) {
		for _, h := range hashers {
			if h.HashWord(addr, v0) == Zero {
				t.Fatalf("%s: identity hash", h.Name())
			}
			a := NewAccumulator(h)
			a.Insert(addr, v0)
			before := a.Value()
			a.Write(addr, v0, v1)
			a.Write(addr, v1, v0)
			if a.Value() != before {
				t.Fatalf("%s: write round-trip broke the digest", h.Name())
			}
			x := NewAccumulator(h)
			x.Insert(addr, v0)
			x.Insert(addr+8, v1)
			y := NewAccumulator(h)
			y.Insert(addr+8, v1)
			y.Insert(addr, v0)
			if x.Value() != y.Value() {
				t.Fatalf("%s: insertion order changed the digest", h.Name())
			}
		}
	})
}
