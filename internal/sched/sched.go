// Package sched provides the serializing thread scheduler InstantCheck is
// evaluated under (paper §7.1): one logical thread runs at a time, and the
// scheduler switches between threads at synchronization operations and at
// chosen preemption points. With the default random decider this is the
// testing model used by PCT and CHESS, which the paper adopts because it
// exposes interleaving complexity much better and faster than truly
// parallel stress runs; with a scripted decider (see Decider) schedules can
// be enumerated systematically (paper §6.2).
//
// Threads are goroutines, but a single token is handed from thread to
// thread so that exactly one executes at any moment. Given the same
// decisions the scheduler replays a run exactly; different seeds explore
// different interleavings. The scheduler is not part of InstantCheck
// itself — in real usage it is whatever testing tool the programmer already
// uses — but the checker needs one to drive test runs.
package sched

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrAborted is returned (wrapped) by Run when the run was cancelled via
// Abort — e.g. by the systematic-testing explorer pruning a schedule whose
// state was already visited.
var ErrAborted = errors.New("sched: run aborted")

// runAbort is the panic sentinel used to unwind thread goroutines cleanly
// during shutdown.
type runAbort struct{}

// Scheduler serializes n logical threads. Create one per run with New (or
// NewControlled), call Run with the body of each thread. A Scheduler
// cannot be reused across runs.
type Scheduler struct {
	n           int
	decider     Decider
	resume      []chan struct{}
	runnable    []int    // ids of runnable threads
	runnablePos []int    // thread id -> index in runnable, or -1
	blocked     []string // thread id -> block reason, "" if not blocked
	finished    []bool
	nFinished   int
	untilSwitch int
	aborted     bool
	done        chan struct{}
	failure     chan error
	opCount     uint64
}

// New returns a scheduler for n threads using the default seeded random
// decider. interval is the mean number of operations between forced
// preemptions; values <= 0 select the default of 8, which for the workload
// kernels in this repository gives rich interleaving variety at modest
// cost.
func New(n int, seed int64, interval int) *Scheduler {
	if interval <= 0 {
		interval = 8
	}
	return NewControlled(n, newRandomDecider(seed, interval))
}

// NewControlled returns a scheduler driven by an explicit decision policy.
func NewControlled(n int, d Decider) *Scheduler {
	if n <= 0 {
		panic("sched: thread count must be positive")
	}
	if d == nil {
		panic("sched: nil decider")
	}
	s := &Scheduler{
		n:           n,
		decider:     d,
		resume:      make([]chan struct{}, n),
		runnable:    make([]int, 0, n),
		runnablePos: make([]int, n),
		blocked:     make([]string, n),
		finished:    make([]bool, n),
		done:        make(chan struct{}),
		failure:     make(chan error, 1),
	}
	for i := 0; i < n; i++ {
		s.resume[i] = make(chan struct{}, 1)
		s.runnablePos[i] = -1
	}
	s.untilSwitch = d.SwitchBudget()
	return s
}

// N returns the number of threads.
func (s *Scheduler) N() int { return s.n }

// Ops returns the number of Yield points observed so far (a progress clock).
func (s *Scheduler) Ops() uint64 { return s.opCount }

// Run executes body(tid) for every thread id in [0, n) under the
// serialized schedule and returns when all threads have finished. It
// returns an error if the run deadlocks, a thread panics, or the run is
// aborted.
func (s *Scheduler) Run(body func(tid int)) error {
	for i := 0; i < s.n; i++ {
		s.addRunnable(i)
	}
	for i := 0; i < s.n; i++ {
		tid := i
		go func() {
			<-s.resume[tid] // wait to be scheduled for the first time
			if s.aborted {
				return
			}
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(runAbort); ok {
						return // clean shutdown unwind
					}
					s.fail(fmt.Errorf("sched: thread %d panicked: %v", tid, r))
					return
				}
				s.finish(tid)
			}()
			body(tid)
		}()
	}
	// Hand the token to the first chosen thread.
	first := s.pick()
	s.resume[first] <- struct{}{}
	select {
	case <-s.done:
		return nil
	case err := <-s.failure:
		return err
	}
}

// Yield is a potential preemption point. The running thread calls it at
// every simulated operation; most calls return immediately, and the
// decider's switch budget determines when a real context-switch decision
// happens.
func (s *Scheduler) Yield(tid int) {
	s.opCount++
	s.untilSwitch--
	if s.untilSwitch > 0 {
		return
	}
	s.untilSwitch = s.decider.SwitchBudget()
	s.Preempt(tid)
}

// Preempt forces a context-switch decision now: the decider picks a
// runnable thread to run next. The caller remains runnable.
func (s *Scheduler) Preempt(tid int) {
	next := s.pick()
	if next == tid {
		return
	}
	s.resume[next] <- struct{}{}
	s.waitResume(tid)
}

// Block removes the calling thread from the runnable set, recording reason
// for deadlock diagnostics, and switches to another thread. It returns
// when some other thread calls Unpark for the caller and the scheduler
// later selects it.
func (s *Scheduler) Block(tid int, reason string) {
	s.removeRunnable(tid)
	s.blocked[tid] = reason
	if len(s.runnable) == 0 {
		s.fail(s.deadlockError())
		panic(runAbort{})
	}
	next := s.pick()
	s.resume[next] <- struct{}{}
	s.waitResume(tid)
}

// Unpark makes thread tid runnable again. It must be called by the running
// thread (or a barrier/mutex implementation executing on its behalf); it
// does not switch.
func (s *Scheduler) Unpark(tid int) {
	if s.finished[tid] {
		panic(fmt.Sprintf("sched: unpark of finished thread %d", tid))
	}
	if s.runnablePos[tid] >= 0 {
		return // already runnable
	}
	s.blocked[tid] = ""
	s.addRunnable(tid)
}

// Abort cancels the run from the currently running thread: every other
// thread is unwound, and Run returns an error wrapping both ErrAborted and
// reason. It does not return.
func (s *Scheduler) Abort(reason error) {
	s.fail(fmt.Errorf("%w: %w", ErrAborted, reason))
	panic(runAbort{})
}

// waitResume parks the calling thread until it is handed the token, then
// unwinds it if the run was aborted in the meantime.
func (s *Scheduler) waitResume(tid int) {
	<-s.resume[tid]
	if s.aborted {
		panic(runAbort{})
	}
}

// finish retires the calling thread and hands the token onward, or signals
// run completion if it was the last.
func (s *Scheduler) finish(tid int) {
	s.finished[tid] = true
	s.nFinished++
	s.removeRunnable(tid)
	if s.nFinished == s.n {
		close(s.done)
		return
	}
	if len(s.runnable) == 0 {
		s.fail(s.deadlockError())
		return
	}
	next := s.pick()
	s.resume[next] <- struct{}{}
}

// fail records the first failure, marks the run aborted, and wakes every
// parked thread so its goroutine can unwind. Must be called by the thread
// currently holding the token (or by the last finishing one).
func (s *Scheduler) fail(err error) {
	select {
	case s.failure <- err:
	default:
	}
	if s.aborted {
		return
	}
	s.aborted = true
	for tid := 0; tid < s.n; tid++ {
		if !s.finished[tid] {
			// Every non-finished, non-running thread is parked on its
			// resume channel (capacity 1, currently empty); the running
			// thread's own send is harmlessly absorbed by the buffer.
			select {
			case s.resume[tid] <- struct{}{}:
			default:
			}
		}
	}
}

func (s *Scheduler) pick() int {
	if len(s.runnable) == 1 {
		return s.runnable[0]
	}
	return s.runnable[s.decider.Pick(len(s.runnable))]
}

func (s *Scheduler) addRunnable(tid int) {
	if s.runnablePos[tid] >= 0 {
		return
	}
	s.runnablePos[tid] = len(s.runnable)
	s.runnable = append(s.runnable, tid)
}

func (s *Scheduler) removeRunnable(tid int) {
	pos := s.runnablePos[tid]
	if pos < 0 {
		return
	}
	last := len(s.runnable) - 1
	moved := s.runnable[last]
	s.runnable[pos] = moved
	s.runnablePos[moved] = pos
	s.runnable = s.runnable[:last]
	s.runnablePos[tid] = -1
}

func (s *Scheduler) deadlockError() error {
	var waiting []string
	for tid, reason := range s.blocked {
		if reason != "" && !s.finished[tid] {
			waiting = append(waiting, fmt.Sprintf("thread %d: %s", tid, reason))
		}
	}
	sort.Strings(waiting)
	return fmt.Errorf("sched: deadlock, no runnable threads; blocked: [%s]", strings.Join(waiting, "; "))
}
