package apps

import (
	"math"
	"math/cmplx"
	"testing"

	"instantcheck/internal/mem"
	"instantcheck/internal/replay"
	"instantcheck/internal/sim"
)

// The workloads are not stubs: each implements its original's algorithm.
// These tests check functional correctness of the kernels themselves by
// reading the simulated memory after a run.

// runApp executes one run of an app and returns the machine for
// post-mortem memory inspection.
func runApp(t *testing.T, name string, o Options, seed int64) (*sim.Machine, sim.Program) {
	t.Helper()
	app := ByName(name)
	if app == nil {
		t.Fatalf("no app %q", name)
	}
	prog := app.Build(o)
	m := sim.NewMachine(sim.Config{
		Threads:      o.threads(),
		ScheduleSeed: seed,
		Scheme:       sim.HWInc,
		Env:          replay.NewEnv(1),
		AddrLog:      replay.NewAddrLog(),
	})
	if _, err := m.Run(prog); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return m, prog
}

// TestRadixActuallySorts reads the final key array and checks it is a
// sorted permutation of the input.
func TestRadixActuallySorts(t *testing.T) {
	o := Options{Threads: 4, Small: true}
	m, prog := runApp(t, "radix", o, 3)
	p := prog.(*radixProg)

	// After an odd number of passes the result is in the second array.
	result := p.dst
	if radixPasses%2 == 0 {
		result = p.src
	}
	var keys []uint64
	for i := 0; i < p.n; i++ {
		keys = append(keys, m.Mem.Peek(idx(result, i)))
	}
	counts := map[uint64]int{}
	for i, k := range keys {
		if i > 0 && keys[i-1] > k {
			t.Fatalf("not sorted at %d: %d > %d", i, keys[i-1], k)
		}
		counts[k]++
	}
	// Same multiset as the deterministic input.
	rng := newXorshift(99)
	for i := 0; i < p.n; i++ {
		k := rng.next() & (1<<(radixDigitBits*radixPasses) - 1)
		counts[k]--
		if counts[k] == 0 {
			delete(counts, k)
		}
	}
	if len(counts) != 0 {
		t.Fatalf("output is not a permutation of the input: %d mismatched keys", len(counts))
	}
}

// TestLUFactorizationCorrect reconstructs L·U and compares it against the
// (regenerated) original matrix.
func TestLUFactorizationCorrect(t *testing.T) {
	o := Options{Threads: 4, Small: true}
	m, prog := runApp(t, "lu", o, 5)
	p := prog.(*luProg)
	n := p.n()

	// Regenerate the original matrix exactly as Setup did.
	orig := make([][]float64, n)
	rng := newXorshift(11)
	for i := 0; i < n; i++ {
		orig[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			v := rng.unitFloat() - 0.5
			if i == j {
				v += float64(n)
			}
			orig[i][j] = v
		}
	}
	// Read the packed LU factors.
	lu := make([][]float64, n)
	for i := 0; i < n; i++ {
		lu[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			lu[i][j] = math.Float64frombits(m.Mem.Peek(p.gat(i, j)))
		}
	}
	// Check A = L*U (L unit-lower, U upper) to a tight tolerance.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k <= i && k <= j; k++ {
				l := lu[i][k]
				if k == i {
					l = 1
				}
				sum += l * lu[k][j]
			}
			if math.Abs(sum-orig[i][j]) > 1e-8*float64(n) {
				t.Fatalf("LU mismatch at (%d,%d): %g vs %g", i, j, sum, orig[i][j])
			}
		}
	}
}

// TestFFTMatchesNaiveDFT compares the kernel's output against a direct
// O(n²) DFT of the same input.
func TestFFTMatchesNaiveDFT(t *testing.T) {
	o := Options{Threads: 4, Small: true}
	m, prog := runApp(t, "fft", o, 7)
	p := prog.(*fftProg)
	n := p.n

	// Regenerate the (un-permuted) input signal: Setup stores the value
	// derived from the bit-reversed index j at position i, which means
	// signal[j] sits at slot i — i.e. the kernel computes the DFT of
	// signal[] in natural order.
	signal := make([]complex128, n)
	for j := 0; j < n; j++ {
		signal[j] = complex(math.Sin(float64(j)*0.37)+0.5*math.Cos(float64(j)*0.011), 0)
	}
	for k := 0; k < n; k += n / 16 { // spot-check 16 bins
		var want complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			want += signal[j] * cmplx.Exp(complex(0, ang))
		}
		got := complex(
			math.Float64frombits(m.Mem.Peek(idx(p.re, k))),
			math.Float64frombits(m.Mem.Peek(idx(p.im, k))),
		)
		if cmplx.Abs(got-want) > 1e-6*float64(n) {
			t.Fatalf("bin %d: got %v, want %v", k, got, want)
		}
	}
}

// TestBlackScholesPrices checks the closed form against known bounds and a
// reference value.
func TestBlackScholesPrices(t *testing.T) {
	// Reference: S=100, K=100, r=5%, v=20%, T=1 → C ≈ 10.4506.
	c := blackScholesCall(100, 100, 0.05, 0.2, 1)
	if math.Abs(c-10.4506) > 1e-3 {
		t.Errorf("reference price = %v", c)
	}
	// No-arbitrage bounds: max(S - K e^{-rT}, 0) <= C <= S.
	for _, tc := range [][5]float64{
		{50, 80, 0.03, 0.4, 2}, {120, 100, 0.01, 0.1, 0.5}, {30, 90, 0.08, 0.6, 1.5},
	} {
		c := blackScholesCall(tc[0], tc[1], tc[2], tc[3], tc[4])
		lower := math.Max(tc[0]-tc[1]*math.Exp(-tc[2]*tc[4]), 0)
		if c < lower-1e-9 || c > tc[0]+1e-9 {
			t.Errorf("price %v violates no-arbitrage bounds [%v, %v]", c, lower, tc[0])
		}
	}
}

// TestPBZip2RoundTrip captures the program's actual compressed output
// stream, decompresses every block (inverse RLE → inverse MTF → inverse
// BWT), and compares the result with the original input — the compressor
// is a real, invertible bzip2 core, not a stub.
func TestPBZip2RoundTrip(t *testing.T) {
	o := Options{Threads: 4, Small: true}
	app := ByName("pbzip2")
	prog := app.Build(o).(*pbzip2Prog)
	m := sim.NewMachine(sim.Config{
		Threads:       o.threads(),
		ScheduleSeed:  9,
		Scheme:        sim.HWInc,
		Env:           replay.NewEnv(1),
		CaptureOutput: true,
	})
	res, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	stream := res.OutputData[sim.Stdout]
	if len(stream) == 0 {
		t.Fatal("no output captured")
	}
	pos := 0
	for b := 0; b < prog.blocks; b++ {
		if pos+4 > len(stream) {
			t.Fatalf("stream truncated at block %d", b)
		}
		idxByte, primary := stream[pos], int(stream[pos+1])
		length := int(stream[pos+2]) | int(stream[pos+3])<<8
		pos += 4
		if int(idxByte) != b {
			t.Fatalf("block %d framed as %d", b, idxByte)
		}
		if pos+length > len(stream) {
			t.Fatalf("block %d payload truncated", b)
		}
		got := blockDecompress(stream[pos:pos+length], primary)
		pos += length
		if len(got) != prog.blockWords {
			t.Fatalf("block %d decoded to %d bytes, want %d", b, len(got), prog.blockWords)
		}
		for i, c := range got {
			want := byte(m.Mem.Peek(idx(prog.input, b*prog.blockWords+i)))
			if c != want {
				t.Fatalf("block %d byte %d: %d != %d", b, i, c, want)
			}
		}
	}
	if pos != len(stream) {
		t.Errorf("%d trailing bytes in stream", len(stream)-pos)
	}
}

// TestCholeskyFactorDominance checks the factorization terminated with
// every column finalized and diagonals above the numerical floor.
func TestCholeskyFactorDominance(t *testing.T) {
	o := Options{Threads: 4, Small: true}
	m, prog := runApp(t, "cholesky", o, 11)
	p := prog.(*choleskyProg)
	for c := 0; c < p.n; c++ {
		if m.Mem.Peek(idx(p.done, c)) != 1 {
			t.Fatalf("column %d not finalized", c)
		}
		if d := math.Float64frombits(m.Mem.Peek(p.at(c, c))); d < 1 {
			t.Errorf("diagonal %d = %v below floor", c, d)
		}
	}
}

// TestOceanConverges checks the multigrid relaxation genuinely relaxes
// the stream-function equation: after the final level-0 sweeps, every
// black interior cell exactly satisfies its relaxation equation (the
// black half-sweep wrote it last from neighbors and a right-hand side
// that have not changed since), the red cells are close, and the field
// stays bounded.
func TestOceanConverges(t *testing.T) {
	o := Options{Threads: 4, Small: true}
	m, prog := runApp(t, "ocean", o, 13)
	p := prog.(*oceanProg)
	peek := func(a uint64) float64 { return math.Float64frombits(m.Mem.Peek(a)) }

	maxRed := 0.0
	for i := 1; i < p.g-1; i++ {
		for j := 1; j < p.g-1; j++ {
			up := peek(p.at(0, i-1, j))
			down := peek(p.at(0, i+1, j))
			left := peek(p.at(0, i, j-1))
			right := peek(p.at(0, i, j+1))
			rh := peek(p.rat(0, i, j))
			want := 0.25 * (up + down + left + right - rh)
			got := peek(p.at(0, i, j))
			if math.Abs(got) > 2 {
				t.Fatalf("ψ(%d,%d) = %v escaped all physical bounds", i, j, got)
			}
			if (i+j)%2 == 1 {
				if got != want {
					t.Fatalf("black cell (%d,%d) = %v does not satisfy its relaxation equation (want %v)", i, j, got, want)
				}
			} else if d := math.Abs(got - want); d > maxRed {
				maxRed = d
			}
		}
	}
	if maxRed > 0.5 {
		t.Errorf("red-cell defect %v; relaxation is not converging", maxRed)
	}
	resid := math.Float64frombits(m.Mem.Peek(p.resid))
	if math.IsNaN(resid) || resid < 0 || resid > 10 {
		t.Errorf("final residual %v out of range", resid)
	}
}

// TestRadiosityConservesEnergy checks the task transfers conserve total
// fixed-point energy.
func TestRadiosityConservesEnergy(t *testing.T) {
	o := Options{Threads: 4, Small: true}
	m, prog := runApp(t, "radiosity", o, 17)
	p := prog.(*radiosityProg)
	total := uint64(0)
	for i := 0; i < p.patches; i++ {
		total += m.Mem.Peek(idx(p.energy, i))
	}
	rng := newXorshift(61)
	want := uint64(0)
	for i := 0; i < p.patches; i++ {
		want += 1000 + rng.next()%1000
	}
	if total != want {
		t.Errorf("energy not conserved: %d vs %d", total, want)
	}
}

// TestBarnesBodiesStayInDomain checks the reflection walls hold under the
// racy tree forces.
func TestBarnesBodiesStayInDomain(t *testing.T) {
	o := Options{Threads: 4, Small: true}
	m, prog := runApp(t, "barnes", o, 19)
	p := prog.(*barnesProg)
	for i := 0; i < p.bodies; i++ {
		x := math.Float64frombits(m.Mem.Peek(idx(p.posX, i)))
		y := math.Float64frombits(m.Mem.Peek(idx(p.posY, i)))
		if x < 0 || x >= 1 || y < 0 || y >= 1 {
			t.Fatalf("body %d at (%v,%v) escaped [0,1)²", i, x, y)
		}
	}
}

// TestBarnesQuadtreeShape checks the final tree is a well-formed quadtree
// containing every body exactly once.
func TestBarnesQuadtreeShape(t *testing.T) {
	o := Options{Threads: 4, Small: true}
	m, prog := runApp(t, "barnes", o, 23)
	p := prog.(*barnesProg)
	root := m.Mem.Peek(p.root)
	if root == 0 {
		t.Fatal("no tree at end of run")
	}
	seen := map[uint64]bool{}
	var walk func(cell uint64, lox, loy, size uint64)
	walk = func(cell, lox, loy, size uint64) {
		if cell == 0 {
			return
		}
		if got := m.Mem.Peek(idx(cell, cellLoX)); got != lox {
			t.Fatalf("cell corner x %d, want %d", got, lox)
		}
		if got := m.Mem.Peek(idx(cell, cellSizeW)); got != size {
			t.Fatalf("cell size %d, want %d", got, size)
		}
		if m.Mem.Peek(idx(cell, cellLeaf)) == 1 {
			occ := m.Mem.Peek(idx(cell, cellOcc))
			if occ != ^uint64(0) {
				if seen[occ] {
					t.Fatalf("body %d appears twice", occ)
				}
				seen[occ] = true
			}
			return
		}
		for q := 0; q < 4; q++ {
			cx, cy := childCorner(q, lox, loy, size)
			walk(m.Mem.Peek(idx(cell, cellChild+q)), cx, cy, size/2)
		}
	}
	walk(root, 0, 0, fxScale)
	if len(seen) != p.bodies {
		t.Fatalf("tree holds %d bodies, want %d", len(seen), p.bodies)
	}
}

// TestCannealPlacementIsPermutation checks swaps preserve the placement
// permutation.
func TestCannealPlacementIsPermutation(t *testing.T) {
	o := Options{Threads: 4, Small: true}
	m, prog := runApp(t, "canneal", o, 23)
	p := prog.(*cannealProg)
	seen := make([]bool, p.elements)
	for i := 0; i < p.elements; i++ {
		l := m.Mem.Peek(idx(p.loc, i))
		if l >= uint64(p.elements) || seen[l] {
			t.Fatalf("placement corrupt at %d: loc %d", i, l)
		}
		seen[l] = true
	}
}

// TestSphinx3ScoresBounded checks the acoustic scores stay in the GMM's
// range and the lattice only ever accumulates.
func TestSphinx3ScoresBounded(t *testing.T) {
	o := Options{Threads: 4, Small: true}
	m, prog := runApp(t, "sphinx3", o, 29)
	p := prog.(*sphinx3Prog)
	for s := 0; s < p.senones; s++ {
		sc := math.Float64frombits(m.Mem.Peek(idx(p.scores, s)))
		if sc < -1.1 || sc > 0.1 {
			t.Fatalf("senone %d score %v out of range", s, sc)
		}
	}
}

// TestWaterEnergyFinite checks the MD integration stayed numerically sane.
func TestWaterEnergyFinite(t *testing.T) {
	for _, name := range []string{"waterNS", "waterSP"} {
		o := Options{Threads: 4, Small: true}
		m, prog := runApp(t, name, o, 31)
		p := prog.(*waterProg)
		pot := math.Float64frombits(m.Mem.Peek(p.pot))
		if math.IsNaN(pot) || math.IsInf(pot, 0) || pot <= 0 {
			t.Errorf("%s: potential = %v", name, pot)
		}
		for i := 0; i < 3*p.n; i++ {
			v := math.Float64frombits(m.Mem.Peek(idx(p.vel, i)))
			if math.Abs(v) > 10 {
				t.Errorf("%s: velocity component %d = %v blew up", name, i, v)
			}
		}
	}
}

// TestVolrendImageNonTrivial checks the ray caster produced a non-constant
// image with a consistent histogram.
func TestVolrendImageNonTrivial(t *testing.T) {
	o := Options{Threads: 4, Small: true}
	m, prog := runApp(t, "volrend", o, 37)
	p := prog.(*volrendProg)
	distinct := map[uint64]bool{}
	for i := 0; i < p.img*p.img; i++ {
		distinct[m.Mem.Peek(idx(p.image, i))] = true
	}
	if len(distinct) < 4 {
		t.Errorf("image has only %d distinct pixel values", len(distinct))
	}
	histSum := uint64(0)
	for b := 0; b < 16; b++ {
		histSum += m.Mem.Peek(idx(p.hist, b))
	}
	if histSum != uint64(p.img*p.img) {
		t.Errorf("histogram sums to %d, want %d", histSum, p.img*p.img)
	}
}

// TestFluidanimateMassConserved checks the density scatter deposits one
// weighted contribution per particle.
func TestFluidanimateMassConserved(t *testing.T) {
	o := Options{Threads: 4, Small: true}
	m, prog := runApp(t, "fluidanimate", o, 41)
	p := prog.(*fluidanimateProg)
	total := 0.0
	for c := 0; c < p.cells; c++ {
		total += math.Float64frombits(m.Mem.Peek(idx(p.density, c)))
	}
	// Each particle contributes 1 + 0.1*vel with |vel| small: the total
	// must be within a few percent of the particle count.
	if math.Abs(total-float64(p.particles)) > 0.1*float64(p.particles) {
		t.Errorf("total density %v for %d particles", total, p.particles)
	}
}

// TestSwaptionsAccumulatorsPositive checks Monte-Carlo sums accumulate.
func TestSwaptionsAccumulatorsPositive(t *testing.T) {
	o := Options{Threads: 4, Small: true}
	m, prog := runApp(t, "swaptions", o, 43)
	p := prog.(*swaptionsProg)
	for i := 0; i < p.count(); i++ {
		s := math.Float64frombits(m.Mem.Peek(idx(p.sum, i)))
		q := math.Float64frombits(m.Mem.Peek(idx(p.sumSq, i)))
		if s < 0 || q < 0 {
			t.Errorf("swaption %d: sum %v sumSq %v", i, s, q)
		}
		if q == 0 && s != 0 {
			t.Errorf("swaption %d: inconsistent moments", i)
		}
	}
	_ = mem.KindFloat
}
