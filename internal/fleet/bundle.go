package fleet

// A bundle is the unit of the content-addressed replay-log store: the
// recorded substrate one campaign's replay runs depend on — program name,
// allocation-address log, env-call streams — in one deterministic byte
// string. Determinism end to end (the component serializations sort their
// entries, the container is a fixed field sequence) means identical
// recordings always produce identical bundles and therefore identical
// digests, so the fleet ships each recording at most once per worker and a
// worker can verify a fetched or cached bundle against its key alone.

import (
	"encoding/binary"
	"fmt"

	"instantcheck/internal/core"
	"instantcheck/internal/replay"
)

// bundleMagic heads a serialized bundle; a version bump is a format break.
const bundleMagic = "icbundle1"

// MarshalBundle serializes a recorded replay state and returns the bytes
// with their content digest — the blob and the key the coordinator
// registers it under.
func MarshalBundle(st core.ReplayState) ([]byte, replay.Digest, error) {
	if st.Addr == nil || st.Env == nil {
		return nil, replay.Digest{}, fmt.Errorf("fleet: bundle needs recorded logs")
	}
	addr, err := st.Addr.MarshalBinary()
	if err != nil {
		return nil, replay.Digest{}, fmt.Errorf("fleet: marshal addr log: %w", err)
	}
	env, err := st.Env.MarshalBinary()
	if err != nil {
		return nil, replay.Digest{}, fmt.Errorf("fleet: marshal env: %w", err)
	}
	b := []byte(bundleMagic)
	b = binary.AppendUvarint(b, uint64(len(st.Program)))
	b = append(b, st.Program...)
	b = binary.AppendUvarint(b, uint64(len(addr)))
	b = append(b, addr...)
	b = binary.AppendUvarint(b, uint64(len(env)))
	b = append(b, env...)
	return b, replay.DigestBytes(b), nil
}

// UnmarshalBundle reads a bundle back into the replay state a worker hands
// to core.Campaign.NewReplayRunner.
func UnmarshalBundle(raw []byte) (core.ReplayState, error) {
	var st core.ReplayState
	if len(raw) < len(bundleMagic) || string(raw[:len(bundleMagic)]) != bundleMagic {
		return st, fmt.Errorf("fleet: bad bundle magic")
	}
	rest := raw[len(bundleMagic):]
	next := func() ([]byte, error) {
		n, used := binary.Uvarint(rest)
		if used <= 0 || uint64(len(rest)-used) < n {
			return nil, fmt.Errorf("fleet: truncated bundle")
		}
		field := rest[used : used+int(n)]
		rest = rest[used+int(n):]
		return field, nil
	}
	program, err := next()
	if err != nil {
		return st, err
	}
	addrBytes, err := next()
	if err != nil {
		return st, err
	}
	envBytes, err := next()
	if err != nil {
		return st, err
	}
	addr, err := replay.UnmarshalAddrLog(addrBytes)
	if err != nil {
		return st, fmt.Errorf("fleet: bundle addr log: %w", err)
	}
	env, err := replay.UnmarshalEnv(envBytes)
	if err != nil {
		return st, fmt.Errorf("fleet: bundle env: %w", err)
	}
	return core.ReplayState{Program: string(program), Addr: addr, Env: env}, nil
}
