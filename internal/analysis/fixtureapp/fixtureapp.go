// Package fixtureapp provides two miniature simulated programs for the
// analysis package's static/dynamic cross-check: Racy performs the
// paper's §4.1 non-atomic read-modify-write on a shared accumulator;
// Clean performs the same accumulation under a lock. The static atomicity
// analyzer must flag Racy's store and stay silent on Clean, and the
// dynamic happens-before detector plus the SWIncNonAtomic scheme must
// agree on both counts (see crosscheck_test.go).
package fixtureapp

import (
	"instantcheck/internal/mem"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

const (
	threads = 4
	rounds  = 6
)

// Racy increments a shared accumulator with an unlocked
// load/compute/store sequence — the lost-update shape of Figure 7(b).
type Racy struct {
	acc uint64
}

// Name implements sim.Program.
func (p *Racy) Name() string { return "fixture-racy" }

// Threads implements sim.Program.
func (p *Racy) Threads() int { return threads }

// Setup allocates the shared accumulator.
func (p *Racy) Setup(t *sim.Thread) {
	p.acc = t.AllocStatic("fx.acc", 1, mem.KindWord)
}

// Worker performs the deliberately non-atomic accumulation.
func (p *Racy) Worker(t *sim.Thread) {
	for i := 0; i < rounds; i++ {
		v := t.Load(p.acc)
		t.Compute(3)
		//icvet:ignore atomicity deliberately racy: the cross-check test asserts this line is flagged
		t.Store(p.acc, v+1)
	}
}

// Clean performs the identical accumulation under a lock.
type Clean struct {
	acc  uint64
	lock *sched.Mutex
}

// Name implements sim.Program.
func (p *Clean) Name() string { return "fixture-clean" }

// Threads implements sim.Program.
func (p *Clean) Threads() int { return threads }

// Setup allocates the accumulator and its lock.
func (p *Clean) Setup(t *sim.Thread) {
	p.acc = t.AllocStatic("fx.acc", 1, mem.KindWord)
	p.lock = t.Machine().NewMutex("fx.lock")
}

// Worker performs the locked accumulation.
func (p *Clean) Worker(t *sim.Thread) {
	for i := 0; i < rounds; i++ {
		t.Lock(p.lock)
		t.Store(p.acc, t.Load(p.acc)+1)
		t.Unlock(p.lock)
	}
}
