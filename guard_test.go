package instantcheck

import (
	"fmt"
	"strings"
	"testing"
)

// fakeTB captures the guard's failure output.
type fakeTB struct {
	failed  bool
	message string
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Fatalf(format string, args ...any) {
	f.failed = true
	f.message = strings.TrimSpace(sprintf(format, args...))
}

func sprintf(format string, args ...any) string {
	return strings.TrimSpace(fmt.Sprintf(format, args...))
}

// TestAssertDeterministicPasses checks the guard is silent on a clean app.
func TestAssertDeterministicPasses(t *testing.T) {
	app := WorkloadByName("fft")
	tb := &fakeTB{}
	rep := AssertDeterministic(tb,
		Campaign{Runs: 6, Threads: 4},
		app.Builder(WorkloadOptions{Threads: 4, Small: true}))
	if tb.failed {
		t.Fatalf("guard fired on deterministic fft: %s", tb.message)
	}
	if rep == nil || !rep.Deterministic() {
		t.Fatal("report missing")
	}
}

// TestAssertDeterministicFails checks the guard fails with a localized
// state-diff report on a nondeterministic app.
func TestAssertDeterministicFails(t *testing.T) {
	app := WorkloadByName("radiosity")
	tb := &fakeTB{}
	AssertDeterministic(tb,
		Campaign{Runs: 8, Threads: 4},
		app.Builder(WorkloadOptions{Threads: 4, Small: true}))
	if !tb.failed {
		t.Fatal("guard did not fire on radiosity")
	}
	for _, want := range []string{"NONDETERMINISTIC", "localized", "differing words", "site"} {
		if !strings.Contains(tb.message, want) {
			t.Errorf("guard report missing %q:\n%s", want, tb.message)
		}
	}
}
