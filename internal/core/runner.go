package core

import (
	"fmt"

	"instantcheck/internal/replay"
	"instantcheck/internal/sim"
)

// Runner exposes a campaign at run granularity, for callers that schedule
// runs themselves (Campaign.Check's parallel path, the farm's worker
// pool). The protocol is:
//
//  1. Record executes run 1 — the recording run — which populates the
//     campaign's allocation-address log and env-call streams (§5).
//  2. Replay executes any of runs 2..Runs, in any order and from any
//     number of goroutines: each replay run works on a private clone of
//     the recorded logs, so runs share no mutable state and the outcome
//     is independent of scheduling.
//  3. Campaign.Assemble merges the per-run results into a Report. The
//     comparison is commutative over runs, so a report assembled from
//     out-of-order parallel results is identical to a sequential one.
type Runner struct {
	c        Campaign
	build    Builder
	addrLog  *replay.AddrLog
	env      *replay.Env
	name     string
	recorded bool
}

// NewRunner validates the campaign and prepares its replay state. The
// returned runner has not executed anything yet; call Record first.
func (c Campaign) NewRunner(build Builder) (*Runner, error) {
	c, err := c.withDefaults()
	if err != nil {
		return nil, err
	}
	if !c.Scheme.Hashing() {
		return nil, fmt.Errorf("core: campaign scheme %v computes no hashes", c.Scheme)
	}
	return &Runner{
		c:       c,
		build:   build,
		addrLog: replay.NewAddrLog(),
		env:     replay.NewEnv(c.InputSeed),
	}, nil
}

// Campaign returns the runner's configuration with defaults applied.
func (r *Runner) Campaign() Campaign { return r.c }

// WithDefaults returns the campaign with the paper's defaults filled in
// and the explicit fields validated — the same normalization Check
// performs before running.
func (c Campaign) WithDefaults() (Campaign, error) { return c.withDefaults() }

// Name returns the program name; it is known once Record has run.
func (r *Runner) Name() string { return r.name }

// Record executes the recording run (run index 0). It must complete before
// any Replay call, and may run only once.
func (r *Runner) Record() (*sim.Result, error) {
	if r.recorded {
		return nil, fmt.Errorf("core: Record called twice")
	}
	res, name, err := r.c.runOnce(r.build, r.addrLog, r.env, 0, nil)
	if err != nil {
		return nil, fmt.Errorf("core: run 1: %w", err)
	}
	r.name = name
	r.recorded = true
	return res, nil
}

// Replay executes the run with 0-based index run (1 <= run < Runs) against
// private clones of the recorded logs. It is safe to call concurrently
// from multiple goroutines once Record has returned.
func (r *Runner) Replay(run int) (*sim.Result, error) {
	if !r.recorded {
		return nil, fmt.Errorf("core: Replay before Record")
	}
	if run < 1 || run >= r.c.Runs {
		return nil, fmt.Errorf("core: replay run index %d out of range [1, %d)", run, r.c.Runs)
	}
	res, _, err := r.c.runOnce(r.build, r.addrLog.Clone(), r.env.Fork(forkSeed(r.c.InputSeed, run)), run, nil)
	if err != nil {
		return nil, fmt.Errorf("core: run %d: %w", run+1, err)
	}
	return res, nil
}

// ReplayState is the recorded substrate every replay run of a campaign
// depends on: the program name plus the allocation-address log and env-call
// streams run 1 produced (§5). It is what a distributed campaign ships to
// worker nodes — a worker holding the state replays any run of the campaign
// without executing the recording run itself.
type ReplayState struct {
	// Program is the checked program's name (known after recording).
	Program string
	// Addr is the recorded allocation-address log.
	Addr *replay.AddrLog
	// Env holds the recorded env-call streams.
	Env *replay.Env
}

// ReplayState exposes the recorded logs after Record has run. The returned
// state shares the runner's live structures; callers that ship it across a
// process boundary serialize it (see replay.AddrLog.MarshalBinary), which
// makes the sharing moot, and in-process callers must treat it as
// read-only — exactly the discipline Replay itself follows (clone-on-run).
func (r *Runner) ReplayState() (ReplayState, error) {
	if !r.recorded {
		return ReplayState{}, fmt.Errorf("core: ReplayState before Record")
	}
	return ReplayState{Program: r.name, Addr: r.addrLog, Env: r.env}, nil
}

// NewReplayRunner builds a runner around an already-recorded replay state:
// the worker-node constructor. The returned runner accepts Replay calls
// immediately (Record is both unnecessary and forbidden — the state already
// embodies run 1), and because every replay run derives only from the state
// and the campaign seeds, a run replayed here is bit-identical to the same
// run replayed wherever the recording happened.
func (c Campaign) NewReplayRunner(build Builder, st ReplayState) (*Runner, error) {
	c, err := c.withDefaults()
	if err != nil {
		return nil, err
	}
	if !c.Scheme.Hashing() {
		return nil, fmt.Errorf("core: campaign scheme %v computes no hashes", c.Scheme)
	}
	if st.Addr == nil || st.Env == nil {
		return nil, fmt.Errorf("core: replay state missing recorded logs")
	}
	return &Runner{
		c:        c,
		build:    build,
		addrLog:  st.Addr,
		env:      st.Env,
		name:     st.Program,
		recorded: true,
	}, nil
}

// forkSeed derives the seed for a replay run's private env fork. The fork
// only draws from this seed if the run grows the recorded streams, and the
// derivation depends on nothing but the campaign input and the run index,
// keeping replay runs independent of each other.
func forkSeed(inputSeed int64, run int) int64 {
	return inputSeed*0x9E3779B9 + int64(run)*0x85EBCA6B + 1
}

// Assemble merges per-run results (indexed in run order, all non-nil) into
// a campaign report — the merge stage of a parallel campaign. Program
// names the checked program. Assemble performs the same summary as Check;
// it exists so that callers which executed the runs themselves (possibly
// resuming some from a persistent hash log) can fold them into the
// standard report shape.
func (c Campaign) Assemble(program string, runs []*sim.Result) (*Report, error) {
	c, err := c.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(runs) != c.Runs {
		return nil, fmt.Errorf("core: assemble got %d results for a %d-run campaign", len(runs), c.Runs)
	}
	for i, res := range runs {
		if res == nil {
			return nil, fmt.Errorf("core: assemble: run %d result missing", i+1)
		}
	}
	rep := &Report{Program: program, Campaign: c, Runs: runs}
	c.summarize(rep)
	return rep, nil
}
