// Command checkd is the checkfarm daemon: a determinism-checking service
// that accepts campaign submissions over HTTP, executes their runs on a
// parallel worker pool, and persists every State Hash to an append-only
// log so that a killed daemon resumes half-finished campaigns exactly
// where they stopped.
//
// Two job kinds share the queue (JobSpec.Kind): plain "check" campaigns
// compare every run's hash vector for a determinism verdict, and
// "explore" jobs drive a schedule-exploration strategy (uniform, pct,
// race-directed or coverage — see internal/explore) that hunts for a
// State-Hash divergence and stops at the first one found. Explore jobs
// always execute in-process on the daemon, even under -fleet: the search
// is sequential, each run's schedule depending on the previous results,
// so there is nothing to fan out.
//
// Usage:
//
//	checkd -addr :8347 -store farm.log [-run-workers N] [-job-workers N]
//	       [-read-timeout D] [-write-timeout D] [-idle-timeout D] [-pprof]
//	       [-fleet] [-shard-size N] [-lease-ttl D]
//
// The API (see internal/farm):
//
//	POST   /api/v1/jobs              submit a campaign (JSON JobSpec)
//	GET    /api/v1/jobs              list jobs
//	GET    /api/v1/jobs/{id}         one job's status
//	DELETE /api/v1/jobs/{id}         cancel
//	GET    /api/v1/jobs/{id}/report  finished campaign's report
//	GET    /api/v1/jobs/{id}/hashlog per-checkpoint hash stream (text)
//	POST   /api/v1/compare           diff two hash logs
//	GET    /healthz                  liveness + queue summary (JSON)
//	GET    /metrics                  Prometheus text exposition
//	GET    /debug/pprof/...          Go profiling (only with -pprof)
//
// With -fleet the daemon stops executing replay runs itself and instead
// coordinates a worker fleet (see internal/fleet and cmd/checkworker):
//
//	POST /api/v1/fleet/lease          worker requests a run-shard lease
//	POST /api/v1/fleet/heartbeat      worker renews its lease
//	POST /api/v1/fleet/results        worker streams result batches back
//	GET  /api/v1/fleet/blob/{digest}  content-addressed replay bundle
//
// In fleet mode /metrics merges the checkfarm and checkfleet families into
// one exposition payload; the merge is linted at startup so a metric-name
// collision between the two registries is a crash, not a corrupt scrape.
//
// The HTTP server enforces read, write and idle timeouts (flags above) so
// a slow or stuck client cannot pin daemon connections indefinitely.
//
// On SIGINT/SIGTERM the daemon stops accepting connections, interrupts
// running campaigns after their in-flight runs commit, and exits; the
// store keeps every committed run, so the next start re-queues the
// interrupted campaigns and re-executes only what is missing.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"instantcheck/internal/farm"
	"instantcheck/internal/fleet"
	"instantcheck/internal/obs"
)

// newHTTPServer assembles checkd's HTTP server: the farm API (with metrics
// and health), optionally the fleet coordinator endpoints and a merged
// /metrics, optionally the pprof handlers, and the connection timeouts
// that keep one slow or stuck client from pinning daemon connections.
// WriteTimeout is left generous on purpose: CPU profiles stream for their
// requested duration (default 30s) and must fit inside it.
func newHTTPServer(addr string, api http.Handler, coord *fleet.Coordinator, metrics http.Handler,
	read, write, idle time.Duration, withPprof bool) *http.Server {
	mux := http.NewServeMux()
	mux.Handle("/", api)
	if coord != nil {
		// More specific patterns win, so these shadow the farm's subtree:
		// the fleet API, and the merged farm+fleet exposition.
		mux.Handle("POST /api/v1/fleet/", coord.Handler())
		mux.Handle("GET /api/v1/fleet/", coord.Handler())
		mux.Handle("GET /metrics", metrics)
	}
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return &http.Server{
		Addr:         addr,
		Handler:      mux,
		ReadTimeout:  read,
		WriteTimeout: write,
		IdleTimeout:  idle,
	}
}

// registerProcessMetrics adds checkd's process-level gauges to the farm's
// registry, scraped lazily at /metrics time.
func registerProcessMetrics(reg *obs.Registry) {
	reg.GaugeFunc("checkd_goroutines",
		"Live goroutines in the daemon process.", func() float64 {
			return float64(runtime.NumGoroutine())
		})
	reg.GaugeFunc("checkd_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).", func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
}

func main() {
	addr := flag.String("addr", ":8347", "HTTP listen address")
	storePath := flag.String("store", "checkfarm.log", "path of the persistent hash-log store")
	runWorkers := flag.Int("run-workers", runtime.GOMAXPROCS(0), "default run-level parallelism for jobs that set none")
	jobWorkers := flag.Int("job-workers", 1, "campaigns executed concurrently")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "max duration for reading one request")
	writeTimeout := flag.Duration("write-timeout", 120*time.Second, "max duration for writing one response (covers pprof profiles)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time per connection")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	fleetOn := flag.Bool("fleet", false, "coordinate a checkworker fleet instead of replaying locally")
	shardSize := flag.Int("shard-size", 8, "runs per fleet lease (with -fleet)")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "fleet lease lifetime without a heartbeat (with -fleet)")
	flag.Parse()
	log.SetPrefix("checkd: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	store, err := farm.OpenStore(*storePath)
	if err != nil {
		log.Fatal(err)
	}
	var coord *fleet.Coordinator
	var metricsHandler http.Handler
	opts := farm.Options{
		RunWorkers: *runWorkers,
		JobWorkers: *jobWorkers,
		Logf:       log.Printf,
	}
	if *fleetOn {
		coord = fleet.NewCoordinator(fleet.CoordinatorOptions{
			ShardSize: *shardSize,
			LeaseTTL:  *leaseTTL,
			Logf:      log.Printf,
		})
		opts.Dispatcher = coord
	}
	srv := farm.NewServer(store, opts)
	if n := srv.Resume(); n > 0 {
		log.Printf("re-queued %d unfinished job(s) from %s", n, *storePath)
	}
	registerProcessMetrics(srv.Registry())
	if coord != nil {
		if err := obs.LintMerged(srv.Registry(), coord.Registry()); err != nil {
			log.Fatalf("farm and fleet registries cannot merge: %v", err)
		}
		metricsHandler = obs.MergedHandler(srv.Registry(), coord.Registry())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv.Start(ctx)

	hs := newHTTPServer(*addr, srv.Handler(), coord, metricsHandler,
		*readTimeout, *writeTimeout, *idleTimeout, *pprofOn)
	if *pprofOn {
		log.Print("pprof enabled at /debug/pprof/")
	}
	if coord != nil {
		log.Printf("fleet mode: shard size %d, lease TTL %s — waiting for checkworker nodes", *shardSize, *leaseTTL)
	}
	go func() {
		<-ctx.Done()
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx)
	}()

	log.Printf("listening on %s (store %s, %d run workers, %d job workers)",
		*addr, *storePath, *runWorkers, *jobWorkers)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	srv.Wait() // let interrupted jobs commit their in-flight runs
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
}
