package farm

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"instantcheck/internal/obs"
	"instantcheck/internal/sim"
)

// JobState is a job's position in its lifecycle.
type JobState string

// Job lifecycle states.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Job is the server's in-memory record of one campaign.
type Job struct {
	ID        JobID     `json:"id"`
	Spec      JobSpec   `json:"spec"`
	State     JobState  `json:"state"`
	Error     string    `json:"error,omitempty"`
	RunsDone  int       `json:"runs_done"`
	RunsTotal int       `json:"runs_total"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`

	report   *Report
	cancel   context.CancelFunc
	canceled bool
}

// Options configures a server.
type Options struct {
	// RunWorkers is the run-level parallelism applied to jobs that do not
	// set their own (<= 0 selects GOMAXPROCS).
	RunWorkers int
	// JobWorkers is the number of campaigns executed concurrently
	// (<= 0 selects 1: strict FIFO, one campaign at a time).
	JobWorkers int
	// Dispatcher, when non-nil, replaces the in-process replay worker pool
	// — the fleet coordinator plugs in here to fan runs out to remote
	// workers. Nil keeps the local pool.
	Dispatcher Dispatcher
	// Logf, when non-nil, receives one line per job state change.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.RunWorkers <= 0 {
		o.RunWorkers = runtime.GOMAXPROCS(0)
	}
	if o.JobWorkers <= 0 {
		o.JobWorkers = 1
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Server is the checkfarm service: queue, worker pool and store glued to
// an HTTP API. Create with NewServer, then Resume (optional) and Start.
type Server struct {
	store   *Store
	opts    Options
	reg     *obs.Registry
	metrics *Metrics
	started time.Time

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[JobID]*Job
	order   []JobID
	pending []JobID // FIFO queue of job IDs awaiting a worker
	closed  bool

	wg sync.WaitGroup
}

// NewServer wraps a store in a service.
func NewServer(store *Store, opts Options) *Server {
	s := &Server{
		store:   store,
		opts:    opts.withDefaults(),
		jobs:    make(map[JobID]*Job),
		reg:     obs.NewRegistry(),
		started: time.Now(),
	}
	s.metrics = newMetrics(s.reg)
	store.setMetrics(s.metrics)
	// The gauge counts jobs by STATE, not the length of the pending slice:
	// the slice briefly disagrees with reality in both directions (a job
	// canceled while queued stays in the slice until a worker pops it; a
	// job re-queued by a shutdown interruption never re-enters it), and a
	// daemon that Resume()d unfinished jobs must report each exactly once.
	s.reg.GaugeFunc("checkfarm_queue_depth",
		"Jobs queued and awaiting a worker.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.queuedLocked())
		})
	s.reg.GaugeFunc("checkfarm_uptime_seconds",
		"Seconds since this server was created.", func() float64 {
			return time.Since(s.started).Seconds()
		})
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Registry returns the server's metric registry, the one Handler serves at
// /metrics. The daemon adds its process-level gauges here.
func (s *Server) Registry() *obs.Registry { return s.reg }

// queuedLocked counts jobs awaiting a worker. Caller holds s.mu.
func (s *Server) queuedLocked() int {
	n := 0
	for _, job := range s.jobs {
		if job.State == JobQueued {
			n++
		}
	}
	return n
}

// Resume reloads jobs from the store: finished jobs reappear with their
// reports assembled from the hash log, and jobs the previous daemon never
// finished are re-queued — their committed runs will not be re-executed.
// It returns the number of re-queued jobs and must be called before Start.
func (s *Server) Resume() int {
	requeued := 0
	for _, jl := range s.store.Jobs() {
		job := &Job{ID: jl.ID, Spec: jl.Spec, Submitted: time.Now()}
		switch jl.Final {
		case "done":
			job.State = JobDone
			var rep *Report
			var err error
			if jl.Spec.Kind == "explore" {
				rep, err = exploreReportFromLog(jl)
			} else {
				rep, err = reportFromLog(jl)
			}
			if err != nil {
				// The log says done but cannot be reassembled: surface it.
				job.State = JobFailed
				job.Error = err.Error()
			} else {
				job.report = rep
				job.RunsDone = rep.Runs
				job.RunsTotal = rep.Runs
			}
		case "failed":
			job.State = JobFailed
			job.Error = jl.Err
		case "canceled":
			job.State = JobCanceled
		default:
			job.State = JobQueued
			job.RunsDone = len(jl.CompletedRuns())
			requeued++
		}
		s.mu.Lock()
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		if job.State == JobQueued {
			s.pending = append(s.pending, job.ID)
		}
		s.mu.Unlock()
		if job.State == JobQueued {
			s.metrics.jobsResumed.Inc()
			s.opts.Logf("farm: resuming job %s (%s, %d runs committed)", job.ID, job.Spec.App, job.RunsDone)
		}
	}
	return requeued
}

// Start launches the job workers. They drain the queue FIFO until ctx is
// canceled; Wait blocks until they exit. Jobs interrupted by ctx keep
// their partial hash logs and resume on the next daemon start.
func (s *Server) Start(ctx context.Context) {
	go func() {
		<-ctx.Done()
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.cond.Broadcast()
	}()
	for i := 0; i < s.opts.JobWorkers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				job := s.nextJob()
				if job == nil {
					return
				}
				s.execute(ctx, job)
			}
		}()
	}
}

// Wait blocks until all job workers have exited (after ctx cancellation).
func (s *Server) Wait() { s.wg.Wait() }

// nextJob blocks for the next queued job, nil at shutdown.
func (s *Server) nextJob() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil
		}
		if len(s.pending) > 0 {
			id := s.pending[0]
			s.pending = s.pending[1:]
			job := s.jobs[id]
			if job.State != JobQueued { // canceled while queued
				continue
			}
			job.State = JobRunning
			job.Started = time.Now()
			return job
		}
		s.cond.Wait()
	}
}

// execute runs one job to a terminal state (or to daemon shutdown).
func (s *Server) execute(ctx context.Context, job *Job) {
	jobCtx, cancel := context.WithCancel(ctx)
	s.mu.Lock()
	job.cancel = cancel
	spec := job.Spec
	s.mu.Unlock()
	defer cancel()
	s.opts.Logf("farm: job %s running (%s)", job.ID, spec.App)
	s.metrics.jobsRunning.Inc()
	defer s.metrics.jobsRunning.Dec()
	begun := time.Now()

	progress := func(done, total int) {
		s.mu.Lock()
		job.RunsDone, job.RunsTotal = done, total
		s.mu.Unlock()
	}
	var rep *Report
	var err error
	if spec.Kind == "explore" {
		// Explore jobs run in-process on this daemon even in fleet mode:
		// the search is sequential (each run's schedule depends on the
		// previous results), so there is nothing to fan out.
		rep, err = runExploreJob(jobCtx, job.ID, spec, s.store, s.metrics, progress)
	} else {
		prior := s.store.Job(job.ID)
		rep, _, err = runJob(jobCtx, job.ID, spec, prior, s.metrics, s.opts.Dispatcher,
			func(run int, res *sim.Result) error { return s.store.AppendRun(job.ID, run, res) },
			progress)
	}

	s.mu.Lock()
	canceled := job.canceled
	s.mu.Unlock()

	state, msg := JobDone, ""
	switch {
	case err == nil:
	case canceled:
		state = JobCanceled
	case ctx.Err() != nil:
		// Daemon shutdown: no terminal record, so the job stays
		// unfinished in the store and the next daemon resumes it from
		// its committed runs.
		s.mu.Lock()
		job.State = JobQueued
		committed := job.RunsDone
		s.mu.Unlock()
		s.opts.Logf("farm: job %s interrupted by shutdown (%d runs committed)", job.ID, committed)
		return
	default:
		state, msg = JobFailed, err.Error()
	}
	if endErr := s.store.EndJob(job.ID, string(state), msg); endErr != nil {
		// A terminal state the store did not record is never dropped: the
		// in-memory job would say "canceled" or "failed" while the log says
		// "unfinished", and the next daemon would silently resurrect the
		// job. Log it and surface it on the job for every terminal state.
		s.metrics.storeErrors.With("jobend").Inc()
		s.opts.Logf("farm: job %s: recording terminal state %q failed: %v", job.ID, state, endErr)
		if state == JobDone {
			state = JobFailed
		}
		if msg != "" {
			msg += "; "
		}
		msg += "store: jobend not recorded: " + endErr.Error()
	}
	s.metrics.jobsFinished.With(string(state)).Inc()
	s.metrics.jobDuration.Observe(time.Since(begun).Seconds())
	s.mu.Lock()
	job.State = state
	job.Error = msg
	if state == JobDone {
		job.report = rep
	}
	job.Finished = time.Now()
	s.mu.Unlock()
	s.opts.Logf("farm: job %s %s", job.ID, state)
}

// Submit validates and enqueues a campaign.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if _, _, err := spec.Resolve(); err != nil {
		return nil, err
	}
	if spec.Parallelism == 0 {
		spec.Parallelism = s.opts.RunWorkers
	}
	id := s.store.NextID()
	if err := s.store.BeginJob(id, spec); err != nil {
		return nil, err
	}
	job := &Job{ID: id, Spec: spec, State: JobQueued, Submitted: time.Now()}
	s.mu.Lock()
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.pending = append(s.pending, id)
	snapshot := *job
	s.mu.Unlock()
	s.cond.Signal()
	s.metrics.jobsSubmitted.Inc()
	s.opts.Logf("farm: job %s queued (%s)", id, spec.App)
	return &snapshot, nil
}

// Job returns a snapshot of the job, or nil.
func (s *Server) Job(id JobID) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	job := s.jobs[id]
	if job == nil {
		return nil
	}
	snapshot := *job
	return &snapshot
}

// Jobs returns snapshots of all jobs in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		snapshot := *s.jobs[id]
		out = append(out, &snapshot)
	}
	return out
}

// Report returns a finished job's report.
func (s *Server) Report(id JobID) (*Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job := s.jobs[id]
	if job == nil {
		return nil, fmt.Errorf("farm: no job %s", id)
	}
	if job.State != JobDone || job.report == nil {
		return nil, fmt.Errorf("farm: job %s is %s, report not available", id, job.State)
	}
	return job.report, nil
}

// Cancel cancels a queued or running job. It reports whether the job was
// actually canceled (false when already terminal or unknown).
func (s *Server) Cancel(id JobID) bool {
	s.mu.Lock()
	job := s.jobs[id]
	if job == nil || job.State.Terminal() {
		s.mu.Unlock()
		return false
	}
	job.canceled = true
	if job.State == JobQueued {
		job.State = JobCanceled
		job.Finished = time.Now()
		s.mu.Unlock()
		if err := s.store.EndJob(id, "canceled", ""); err != nil {
			// Same crash-consistency rule as in execute: an unrecorded
			// cancellation silently resurrects after a restart.
			s.metrics.storeErrors.With("jobend").Inc()
			s.opts.Logf("farm: job %s: recording cancellation failed: %v", id, err)
			s.mu.Lock()
			job.Error = "store: jobend not recorded: " + err.Error()
			s.mu.Unlock()
		}
		s.metrics.jobsFinished.With(string(JobCanceled)).Inc()
		s.opts.Logf("farm: job %s canceled while queued", id)
		return true
	}
	cancel := job.cancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.opts.Logf("farm: job %s cancel requested", id)
	return true
}

// Health is the /healthz payload: enough to tell at a glance whether the
// daemon is alive and keeping up with its queue.
type Health struct {
	Status        string  `json:"status"` // always "ok" when served
	UptimeSeconds float64 `json:"uptime_seconds"`
	Jobs          int     `json:"jobs"`
	Running       int     `json:"running"`
	QueueDepth    int     `json:"queue_depth"`
	StorePath     string  `json:"store_path"`
}

// Health reports the server's liveness summary.
func (s *Server) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	running := 0
	for _, job := range s.jobs {
		if job.State == JobRunning {
			running++
		}
	}
	return Health{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
		Jobs:          len(s.jobs),
		Running:       running,
		QueueDepth:    s.queuedLocked(),
		StorePath:     s.store.Path(),
	}
}

// ---- HTTP API ----

// CompareRequest selects the two hash logs to diff: each side is either a
// job on this daemon or an inline log in the canonical text form (the
// hashlog endpoint's output, possibly from another host).
type CompareRequest struct {
	JobA JobID  `json:"job_a,omitempty"`
	LogA string `json:"log_a,omitempty"`
	JobB JobID  `json:"job_b,omitempty"`
	LogB string `json:"log_b,omitempty"`
}

// Handler returns the HTTP API:
//
//	POST   /api/v1/jobs           submit a JobSpec, returns the Job
//	GET    /api/v1/jobs           list jobs
//	GET    /api/v1/jobs/{id}      job status
//	DELETE /api/v1/jobs/{id}      cancel
//	GET    /api/v1/jobs/{id}/report    finished job's report
//	GET    /api/v1/jobs/{id}/hashlog   per-checkpoint hash stream (text)
//	POST   /api/v1/compare        diff two hash logs (CompareRequest)
//	GET    /healthz               liveness + queue summary (JSON)
//	GET    /metrics               Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Health())
	})
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
			return
		}
		job, err := s.Submit(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job)
	})
	mux.HandleFunc("GET /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Jobs []*Job `json:"jobs"`
		}{s.Jobs()})
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job := s.Job(JobID(r.PathValue("id")))
		if job == nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("no job %s", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := JobID(r.PathValue("id"))
		if s.Job(id) == nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("no job %s", id))
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Canceled bool `json:"canceled"`
		}{s.Cancel(id)})
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		id := JobID(r.PathValue("id"))
		rep, err := s.Report(id)
		if err != nil {
			code := http.StatusNotFound
			if s.Job(id) != nil {
				code = http.StatusConflict // exists but not finished
			}
			httpError(w, code, err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}/hashlog", func(w http.ResponseWriter, r *http.Request) {
		id := JobID(r.PathValue("id"))
		jl := s.store.Job(id)
		if jl == nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("no job %s", id))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteHashLog(w, jl.HashLog())
	})
	mux.HandleFunc("POST /api/v1/compare", func(w http.ResponseWriter, r *http.Request) {
		var req CompareRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad compare request: %w", err))
			return
		}
		a, err := s.compareSide(req.JobA, req.LogA, "a")
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		b, err := s.compareSide(req.JobB, req.LogB, "b")
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, CompareHashLogs(a, b))
	})
	return mux
}

// compareSide materializes one side of a compare request.
func (s *Server) compareSide(job JobID, log, side string) ([]HashLogLine, error) {
	switch {
	case job != "" && log != "":
		return nil, fmt.Errorf("compare side %s: give job_%s or log_%s, not both", side, side, side)
	case job != "":
		jl := s.store.Job(job)
		if jl == nil {
			return nil, fmt.Errorf("compare side %s: no job %s", side, job)
		}
		return jl.HashLog(), nil
	case log != "":
		lines, err := ParseHashLog(strings.NewReader(log))
		if err != nil {
			return nil, fmt.Errorf("compare side %s: %w", side, err)
		}
		return lines, nil
	default:
		return nil, fmt.Errorf("compare side %s: empty", side)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{err.Error()})
}
