package mem

import "testing"

// FuzzCacheInvalidation drives randomized Alloc/Free/Store/Load sequences —
// including reallocation at a previously freed base via AddrHook, the way
// deterministic malloc replay places blocks — and checks every access
// against a flat map model. It exists to catch stale reads through the two
// access caches (the last-block cache and the fast load/store window), whose
// invalidation on Free and re-establishment on Alloc is the subtle part of
// the memory engine's hot path.
func FuzzCacheInvalidation(f *testing.F) {
	f.Add([]byte{0, 3, 1, 4, 2, 5})
	f.Add([]byte{0, 0, 3, 3, 2, 1, 4, 4, 5, 2, 0, 3, 4})
	f.Add([]byte{0, 2, 1, 2, 1, 2, 1, 4})
	f.Fuzz(func(t *testing.T, ops []byte) {
		m := New()
		model := map[uint64]uint64{}
		type slot struct {
			base uint64
			cap  int // footprint in words: reuse must not outgrow it
		}
		var live []*Block
		var freed []slot
		// pendingBase, when set, makes the next Alloc land on a reused
		// (previously freed) base — the replay-placement path.
		pendingBase := uint64(0)
		havePending := false
		m.AddrHook = func(site string, seq, words int) (uint64, bool) {
			if havePending {
				havePending = false
				return pendingBase, true
			}
			return 0, false
		}

		arg := func(i int) byte {
			if i+1 < len(ops) {
				return ops[i+1]
			}
			return 7
		}
		pickLive := func(b byte) *Block {
			if len(live) == 0 {
				return nil
			}
			return live[int(b)%len(live)]
		}
		wordAddr := func(blk *Block, b byte) uint64 {
			return blk.Base + uint64(int(b)%blk.Words)*WordSize
		}

		for i := 0; i < len(ops); i++ {
			op := ops[i] % 6
			sel := arg(i)
			switch op {
			case 0: // alloc fresh
				words := 1 + int(sel)%96
				blk := m.Alloc("fuzz.site", words, KindWord)
				live = append(live, blk)
				for w := 0; w < words; w++ {
					model[blk.Base+uint64(w)*WordSize] = 0
				}
			case 1: // alloc at a freed base, if one exists
				if len(freed) == 0 {
					continue
				}
				j := int(sel) % len(freed)
				s := freed[j]
				freed = append(freed[:j], freed[j+1:]...)
				pendingBase = s.base
				havePending = true
				words := 1 + int(sel)%s.cap
				blk := m.Alloc("fuzz.reuse", words, KindWord)
				havePending = false
				live = append(live, blk)
				for w := 0; w < words; w++ {
					model[blk.Base+uint64(w)*WordSize] = 0
				}
			case 2: // free a random live block
				blk := pickLive(sel)
				if blk == nil {
					continue
				}
				m.Free(blk.Base)
				// The freed footprint is rounded to the allocator's 16-word
				// chunk; reuse may occupy up to that without overlapping the
				// next block.
				freed = append(freed, slot{blk.Base, (blk.Words + 15) / 16 * 16})
				for w := 0; w < blk.Words; w++ {
					delete(model, blk.Base+uint64(w)*WordSize)
				}
				for j, b := range live {
					if b == blk {
						live = append(live[:j], live[j+1:]...)
						break
					}
				}
			case 3: // store through the fast path
				blk := pickLive(sel)
				if blk == nil {
					continue
				}
				addr := wordAddr(blk, arg(i+1))
				val := uint64(sel)<<8 | uint64(i)
				wantOld := model[addr]
				old, ok := m.StoreFast(addr, val)
				if !ok {
					old = m.Store(addr, val)
				}
				if old != wantOld {
					t.Fatalf("op %d: Store old at %#x = %d, model %d", i, addr, old, wantOld)
				}
				model[addr] = val
			case 4: // load through the fast path
				blk := pickLive(sel)
				if blk == nil {
					continue
				}
				addr := wordAddr(blk, arg(i+1))
				v, ok := m.LoadFast(addr)
				if !ok {
					v = m.Load(addr)
				}
				if want := model[addr]; v != want {
					t.Fatalf("op %d: Load %#x = %d, model %d", i, addr, v, want)
				}
			case 5: // verify BlockAt and a sweep of one block
				blk := pickLive(sel)
				if blk == nil {
					continue
				}
				got := m.BlockAt(wordAddr(blk, arg(i+1)))
				if got != blk {
					t.Fatalf("op %d: BlockAt resolved %v, want block at %#x", i, got, blk.Base)
				}
				for w := 0; w < blk.Words; w++ {
					addr := blk.Base + uint64(w)*WordSize
					if v := m.Load(addr); v != model[addr] {
						t.Fatalf("op %d: sweep %#x = %d, model %d", i, addr, v, model[addr])
					}
				}
			}
		}

		// Final cross-check: TraverseRuns must agree with the model on
		// every live word (zero runs are skipped by construction, so only
		// compare the words it reports).
		seen := 0
		m.TraverseRuns(func(base uint64, words []uint64, kind Kind) {
			for w, v := range words {
				addr := base + uint64(w)*WordSize
				want, liveWord := model[addr]
				if !liveWord {
					t.Fatalf("TraverseRuns visited dead word %#x", addr)
				}
				if v != want {
					t.Fatalf("TraverseRuns %#x = %d, model %d", addr, v, want)
				}
				seen++
			}
		})
		if seen != len(model) {
			t.Fatalf("TraverseRuns visited %d words, model has %d", seen, len(model))
		}
	})
}
