package ihash

// This file holds the traversal-hashing fast-path helpers. The traversal
// scheme (SW-InstantCheck_Tr) computes, for every live word,
//
//	SH ⊕= h(a, v) ⊖ h(a, 0)
//
// subtracting the hash of the zero value so that allocation itself (which
// zero-fills) does not perturb the state hash. The h(a, 0) terms depend only
// on the address range, never on program data, so a traversal can subtract
// one precomputed Σ h(a, 0) per run instead of hashing zero per word — and a
// run that is still all-zero contributes exactly nothing and can be skipped
// outright, since its Σ h(a, v) equals its Σ h(a, 0).

// ZeroSum returns Σ h(base+i*8, 0) for i in [0, words): the aggregate
// zero-state digest of a contiguous word run.
func ZeroSum(h Hasher, base uint64, words int) Digest {
	var d Digest
	if _, ok := h.(Mix64); ok {
		// Devirtualized loop: with the default hasher the word hash inlines
		// to a handful of multiplies, instead of an interface call per word.
		var mh Mix64
		for i := 0; i < words; i++ {
			d = d.Combine(mh.HashWord(base+uint64(i)*8, 0))
		}
		return d
	}
	for i := 0; i < words; i++ {
		d = d.Combine(h.HashWord(base+uint64(i)*8, 0))
	}
	return d
}

// BatchInsert returns Σ h(base+i*8, news[i]): the digest contribution of a
// contiguous run of words entering the tracked state. It is the
// allocation-free form of accumulating a run into a fresh Accumulator, and
// like WriteBatch it devirtualizes the per-word hash for the default hasher.
func BatchInsert(h Hasher, base uint64, news []uint64) Digest {
	var d Digest
	if _, ok := h.(Mix64); ok {
		var mh Mix64
		for i, v := range news {
			d = d.Combine(mh.HashWord(base+uint64(i)*8, v))
		}
		return d
	}
	for i, v := range news {
		d = d.Combine(h.HashWord(base+uint64(i)*8, v))
	}
	return d
}

type zeroKey struct {
	base  uint64
	words int
}

// ZeroSumCache memoizes ZeroSum per (base, words) run. Allocation sites are
// reused across a program's lifetime (and across the runs of a checking
// campaign via deterministic malloc replay), so the same runs recur at every
// checkpoint; caching turns the per-checkpoint Σ h(a,0) recomputation into
// one map probe per run. Not safe for concurrent use.
type ZeroSumCache struct {
	h Hasher
	m map[zeroKey]Digest
}

// NewZeroSumCache returns an empty cache over h. A nil h selects Mix64.
func NewZeroSumCache(h Hasher) *ZeroSumCache {
	if h == nil {
		h = Mix64{}
	}
	return &ZeroSumCache{h: h, m: make(map[zeroKey]Digest)}
}

// Sum returns the memoized Σ h(base+i*8, 0) over words words.
func (c *ZeroSumCache) Sum(base uint64, words int) Digest {
	k := zeroKey{base, words}
	if d, ok := c.m[k]; ok {
		return d
	}
	d := ZeroSum(c.h, base, words)
	c.m[k] = d
	return d
}

// Warm precomputes the cache entry for a run, for callers that want the
// ZeroSum cost paid at allocation time rather than at the first checkpoint.
func (c *ZeroSumCache) Warm(base uint64, words int) { c.Sum(base, words) }

// Len returns the number of cached runs.
func (c *ZeroSumCache) Len() int { return len(c.m) }

// Hasher returns the location hash the cache computes over.
func (c *ZeroSumCache) Hasher() Hasher { return c.h }

// WriteScattered returns Σᵢ ⊖ h(addrs[i], olds[i]) ⊕ h(addrs[i], news[i])
// over parallel slices of unrelated addresses: the scattered sibling of
// WriteBatch, for callers — the MHM store-buffer drain — whose batched
// updates target arbitrary words rather than one contiguous run. Because ⊕
// is an abelian group operation the returned delta is bit-identical to
// applying the i updates one at a time, in any order. Like the other batch
// kernels it devirtualizes the per-word hash for the default hasher.
func WriteScattered(h Hasher, addrs, olds, news []uint64) Digest {
	if len(olds) != len(addrs) || len(news) != len(addrs) {
		panic("ihash: WriteScattered length mismatch")
	}
	var d Digest
	if _, ok := h.(Mix64); ok {
		var mh Mix64
		for i, a := range addrs {
			d = d.Subtract(mh.HashWord(a, olds[i])).Combine(mh.HashWord(a, news[i]))
		}
		return d
	}
	for i, a := range addrs {
		d = d.Subtract(h.HashWord(a, olds[i])).Combine(h.HashWord(a, news[i]))
	}
	return d
}

// WriteScattered applies a batch of scattered word updates to the
// accumulator: for each i, d = d ⊖ h(addrs[i], olds[i]) ⊕ h(addrs[i], news[i]).
func (a *Accumulator) WriteScattered(addrs, olds, news []uint64) {
	a.d = a.d.Combine(WriteScattered(a.h, addrs, olds, news))
}

// WriteBatch applies one contiguous run of word updates to the accumulator:
// for each i, d = d ⊖ h(base+i*8, olds[i]) ⊕ h(base+i*8, news[i]). A nil
// olds means the words are entering the tracked state (pure insertion, the
// run-granular form of Insert). Lengths must match when olds is non-nil.
func (a *Accumulator) WriteBatch(base uint64, olds, news []uint64) {
	if olds == nil {
		a.d = a.d.Combine(BatchInsert(a.h, base, news))
		return
	}
	if len(olds) != len(news) {
		panic("ihash: WriteBatch length mismatch")
	}
	d := a.d
	if _, ok := a.h.(Mix64); ok {
		var mh Mix64
		for i, v := range news {
			addr := base + uint64(i)*8
			d = d.Subtract(mh.HashWord(addr, olds[i])).Combine(mh.HashWord(addr, v))
		}
		a.d = d
		return
	}
	h := a.h
	for i, v := range news {
		addr := base + uint64(i)*8
		d = d.Subtract(h.HashWord(addr, olds[i])).Combine(h.HashWord(addr, v))
	}
	a.d = d
}
