package racefilter

// Differential fuzzing of the epoch detector against the vector-clock
// reference: random traces of reads, writes, lock operations, and barrier
// episodes over a small thread/address/lock space must produce identical
// race sets — same (addr, kind) keys, same first-reporting thread pair,
// same raw access pcs behind the SiteA/SiteB attribution. CI runs the
// accumulated corpus under -race.

import (
	"reflect"
	"testing"

	"instantcheck/internal/sched"
)

// fakePC feeds a synthetic access pc through the pcer seam, standing in
// for the lazy sim.Thread.PC unwind.
type fakePC uintptr

func (f fakePC) PC() uintptr { return uintptr(f) }

// fuzzThreads is the worker count fuzz traces run with; slots 0..3 are
// workers, tid -1 is the init thread.
const fuzzThreads = 4

// applyFuzzTrace decodes data as a trace of detector events and feeds it
// to both implementations through their internal entry points (the same
// ones OnRead/OnWrite dispatch to), with a unique synthetic pc per event
// so attribution divergence is visible.
func applyFuzzTrace(data []byte, eps *Detector, ref *VCDetector) {
	mus := [2]*sched.Mutex{new(sched.Mutex), new(sched.Mutex)}
	// Address bases span static and heap pages; the +4032 base makes word
	// offsets cross a page boundary so directory walks are exercised.
	bases := [3]uint64{0x10000, 0x10000 + 4032, 0x1000_0000}
	barriers := 0
	for i := 0; i+2 < len(data); i += 3 {
		op, ab, wb := data[i], data[i+1], data[i+2]
		tid := int(op/5)%(fuzzThreads+1) - 1
		addr := bases[ab%3] + 8*uint64(wb)
		pc := fakePC(0x1000 + i)
		mu := mus[ab%2]
		switch op % 5 {
		case 0:
			eps.read(tid, addr, pc)
			ref.read(tid, addr, pc)
		case 1:
			eps.write(tid, addr, pc)
			ref.write(tid, addr, pc)
		case 2:
			eps.OnAcquire(tid, mu)
			ref.OnAcquire(tid, mu)
		case 3:
			eps.OnRelease(tid, mu)
			ref.OnRelease(tid, mu)
		case 4:
			eps.OnBarrier(barriers)
			ref.OnBarrier(barriers)
			barriers++
		}
	}
}

func FuzzEpochEqualsVectorClock(f *testing.F) {
	// Three readers then a write (forces the inline read set to spill),
	// a lock-ordered handoff, and a barrier-separated phase pair.
	f.Add([]byte{0, 0, 10, 5, 0, 10, 10, 0, 10, 1, 0, 10})
	f.Add([]byte{1, 0, 4, 3, 0, 0, 2, 1, 0, 6, 0, 4})
	f.Add([]byte{1, 0, 9, 4, 0, 0, 0, 1, 9, 1, 2, 9})
	f.Add([]byte{6, 2, 200, 5, 2, 200, 11, 2, 200, 4, 0, 0, 16, 2, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		eps := NewDetector(fuzzThreads)
		ref := NewVCDetector(fuzzThreads)
		applyFuzzTrace(data, eps, ref)
		er, vr := eps.Races(), ref.Races()
		if !reflect.DeepEqual(er, vr) {
			t.Fatalf("race sets diverge:\nepoch: %+v\nvcref: %+v", er, vr)
		}
	})
}

// TestSelectedHonorsEnv pins the ICHECK_RACE_DETECTOR seam.
func TestSelectedHonorsEnv(t *testing.T) {
	if _, ok := Selected(2).(*Detector); !ok {
		t.Errorf("default Selected() = %T, want *Detector", Selected(2))
	}
	t.Setenv(EnvDetector, "vc")
	if _, ok := Selected(2).(*VCDetector); !ok {
		t.Errorf("Selected() with %s=vc = %T, want *VCDetector", EnvDetector, Selected(2))
	}
}

// TestReadSetSpill drives a word through inline read entries into the
// spill map and back (a write clears it), checking the read-write races
// and the stats accounting.
func TestReadSetSpill(t *testing.T) {
	d := NewDetector(4)
	const addr = 0x10000
	for tid := 0; tid < 3; tid++ {
		d.read(tid, addr, fakePC(0x100+tid))
	}
	if got := d.Stats().ReadSpills; got != 1 {
		t.Fatalf("ReadSpills = %d, want 1 after a third concurrent reader", got)
	}
	d.write(3, addr, fakePC(0x200))
	races := d.Races()
	if len(races) != 1 || races[0].Kind != ReadWrite {
		t.Fatalf("races = %+v, want one read-write", races)
	}
	if races[0].TidA != 0 || races[0].TidB != 3 {
		t.Errorf("first report = tids (%d,%d), want canonical lowest reader (0,3)",
			races[0].TidA, races[0].TidB)
	}
	// The write cleared the read set: a same-epoch repeat write is now a
	// fast-path no-op.
	before := d.Stats().WriteFast
	d.write(3, addr, fakePC(0x201))
	if d.Stats().WriteFast != before+1 {
		t.Error("repeat same-epoch write after clear did not take the fast path")
	}
}

// TestSameEpochFastPaths checks repeat accesses short-circuit and that a
// release (epoch advance) reopens the slow path.
func TestSameEpochFastPaths(t *testing.T) {
	d := NewDetector(2)
	mu := new(sched.Mutex)
	const addr = 0x1000_0000
	d.read(0, addr, fakePC(1))
	d.read(0, addr, fakePC(2))
	d.read(0, addr, fakePC(3))
	if st := d.Stats(); st.ReadFast != 2 || st.ReadSlow != 1 {
		t.Errorf("read stats = %+v, want 2 fast / 1 slow", st)
	}
	d.write(0, addr, fakePC(4))
	d.write(0, addr, fakePC(5))
	if st := d.Stats(); st.WriteFast != 1 || st.WriteSlow != 1 {
		t.Errorf("write stats = %+v, want 1 fast / 1 slow", st)
	}
	// Epoch advance: the next write must re-run the HB checks.
	d.OnRelease(0, mu)
	d.write(0, addr, fakePC(6))
	if st := d.Stats(); st.WriteSlow != 2 {
		t.Errorf("post-release write stats = %+v, want a second slow write", st)
	}
	if races := d.Races(); len(races) != 0 {
		t.Errorf("single-thread trace reported races: %+v", races)
	}
}
