package apps

import (
	"fmt"

	"instantcheck/internal/core"
	"instantcheck/internal/mem"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

// gridSite names the static allocation site of a per-level pyramid grid.
func gridSite(base string, l int) string { return fmt.Sprintf("static:%s%d", base, l) }

func init() {
	register(&App{
		Name:          "ocean",
		Source:        "splash2",
		UsesFP:        true,
		ExpectedClass: core.ClassFPDeterministic,
		Build: func(o Options) sim.Program {
			p := &oceanProg{nt: o.threads(), g: 64, iters: 290}
			if o.Small {
				p.g, p.iters = 12, 12
			}
			return p
		},
	})
}

// oceanProg reproduces SPLASH-2's ocean: an eddy-current ocean basin
// simulation whose core is a red-black Gauss-Seidel multigrid solver for
// the stream-function equation. The program's live state mirrors the
// original's field inventory — a pyramid of solution and right-hand-side
// grids (one pair per multigrid level), the previous timestep's solution
// kept for the leapfrog integration, and a set of constant input fields
// (wind stress, Coriolis parameter, bathymetry, friction coefficients)
// read when the right-hand side is formed. Each of the 290 iterations
// relaxes one level of a V-cycle and runs exactly three barriers —
// transfer (inter-grid restriction/prolongation and, at timestep
// boundaries, RHS formation and history rotation), red half-sweep, black
// half-sweep — so the checkpoint structure is 290 × 3 + end = Table 1's
// 871 points.
//
// All grid writes are disjoint (row-partitioned, and the red/black
// half-sweeps read only the opposite color, stable since the previous
// barrier), so the fields are bit-by-bit deterministic. The per-iteration
// residual, however, is reduced into a single shared accumulator under a
// lock — the addition order is schedule-dependent, so the residual word
// differs in its low mantissa bits across runs and ocean is deterministic
// only with FP rounding.
type oceanProg struct {
	nt    int
	g     int // finest grid dimension
	iters int

	sizes []int // grid dimension per multigrid level
	cycle []int // V-cycle level schedule, repeated over the iterations

	q   []uint64 // per-level solution grids (q[0] is the stream function ψ)
	rhs []uint64 // per-level right-hand sides

	psim uint64 // previous-timestep ψ (leapfrog history)
	tauz uint64 // wind-stress forcing (constant input)
	f    uint64 // Coriolis parameter field (constant input)
	h    uint64 // bathymetry / depth field (constant input)
	gam  uint64 // friction coefficient field (constant input)
	omg  uint64 // 1-γ precomputed coefficient field (constant input)

	resid     uint64 // shared residual accumulator
	residLock *sched.Mutex

	transfer, red, black barrier
}

// oceanCyclesPerStep is how many V-cycles the solver runs per timestep:
// the right-hand side is formed (and the leapfrog history rotated) once,
// then the multigrid iterates on it.
const oceanCyclesPerStep = 2

func (p *oceanProg) Name() string { return "ocean" }

func (p *oceanProg) Threads() int { return p.nt }

// at indexes level l's solution grid; rat its right-hand side.
func (p *oceanProg) at(l, i, j int) uint64  { return idx(p.q[l], i*p.sizes[l]+j) }
func (p *oceanProg) rat(l, i, j int) uint64 { return idx(p.rhs[l], i*p.sizes[l]+j) }

// fat indexes a finest-resolution field (history or constant input).
func (p *oceanProg) fat(base uint64, i, j int) uint64 { return idx(base, i*p.g+j) }

func (p *oceanProg) Setup(t *sim.Thread) {
	// Multigrid pyramid: halve until the grid is too coarse to relax.
	for s := p.g; s >= 6; s /= 2 {
		p.sizes = append(p.sizes, s)
	}
	// V-cycle: down the pyramid and back up; level 0 is revisited at the
	// start of the next cycle.
	for l := 0; l < len(p.sizes); l++ {
		p.cycle = append(p.cycle, l)
	}
	for l := len(p.sizes) - 2; l >= 1; l-- {
		p.cycle = append(p.cycle, l)
	}

	p.q = make([]uint64, len(p.sizes))
	p.rhs = make([]uint64, len(p.sizes))
	for l, s := range p.sizes {
		p.q[l] = t.AllocStatic(gridSite("oc.q", l), s*s, mem.KindFloat)
		p.rhs[l] = t.AllocStatic(gridSite("oc.rhs", l), s*s, mem.KindFloat)
	}
	n := p.g * p.g
	p.psim = t.AllocStatic("static:oc.psim", n, mem.KindFloat)
	p.tauz = t.AllocStatic("static:oc.tauz", n, mem.KindFloat)
	p.f = t.AllocStatic("static:oc.f", n, mem.KindFloat)
	p.h = t.AllocStatic("static:oc.h", n, mem.KindFloat)
	p.gam = t.AllocStatic("static:oc.gamma", n, mem.KindFloat)
	p.omg = t.AllocStatic("static:oc.oneminusgamma", n, mem.KindFloat)
	p.resid = t.AllocStatic("static:oc.resid", 1, mem.KindFloat)
	p.residLock = t.Machine().NewMutex("oc.resid")

	rng := newXorshift(21)
	for i := 0; i < p.g; i++ {
		for j := 0; j < p.g; j++ {
			v := rng.unitFloat()
			if i == 0 || j == 0 || i == p.g-1 || j == p.g-1 {
				v = 1.0 // fixed boundary
			}
			t.StoreF(p.at(0, i, j), v)
			t.StoreF(p.fat(p.psim, i, j), v)
			t.StoreF(p.fat(p.tauz, i, j), 0.1*rng.unitFloat())
			t.StoreF(p.fat(p.f, i, j), 1e-4*(1+float64(i)/float64(p.g)))
			t.StoreF(p.fat(p.h, i, j), 1000+4000*rng.unitFloat())
			g := 0.05 * rng.unitFloat()
			t.StoreF(p.fat(p.gam, i, j), g)
			t.StoreF(p.fat(p.omg, i, j), 1-g)
		}
	}
	p.transfer = newBarrier(t, "oc.transfer")
	p.red = newBarrier(t, "oc.red")
	p.black = newBarrier(t, "oc.black")
}

// rows returns this thread's interior row span [lo, hi) at level l.
func (p *oceanProg) rows(l, tid int) (int, int) {
	lo, hi := span(p.sizes[l]-2, p.nt, tid)
	return lo + 1, hi + 1
}

// formRHS starts a new timestep on this thread's rows: the right-hand
// side is assembled pointwise from the current and previous solution and
// the constant input fields (the ga/gb computation of the original), and
// the leapfrog history rotates.
func (p *oceanProg) formRHS(t *sim.Thread, rlo, rhi int) {
	for i := rlo; i < rhi; i++ {
		for j := 1; j < p.g-1; j++ {
			cur := t.LoadF(p.at(0, i, j))
			old := t.LoadF(p.fat(p.psim, i, j))
			wind := t.LoadF(p.fat(p.tauz, i, j))
			cor := t.LoadF(p.fat(p.f, i, j))
			depth := t.LoadF(p.fat(p.h, i, j))
			fric := t.LoadF(p.fat(p.gam, i, j)) * t.LoadF(p.fat(p.omg, i, j))
			t.Compute(18) // curl of the wind stress, vorticity terms
			t.StoreF(p.rat(0, i, j), wind/depth+cor*(cur-old)-fric*cur)
			t.StoreF(p.fat(p.psim, i, j), cur)
		}
	}
}

// restrict moves the problem one level down on this thread's coarse rows:
// the fine level's residual is injected as the coarse right-hand side and
// the coarse correction starts from zero.
func (p *oceanProg) restrict(t *sim.Thread, l int, rlo, rhi int) {
	for i := rlo; i < rhi; i++ {
		for j := 1; j < p.sizes[l]-1; j++ {
			r := t.LoadF(p.rat(l-1, 2*i, 2*j)) - t.LoadF(p.at(l-1, 2*i, 2*j))
			t.Compute(4)
			t.StoreF(p.rat(l, i, j), 0.25*r)
			t.StoreF(p.at(l, i, j), 0)
		}
	}
}

// prolong moves the correction one level up by injection: every fine
// cell with a coarse partner adds it in. The loop runs over this
// thread's FINE rows (the level being written), so all writes stay in
// the thread's own partition; the coarse reads are stable since the
// previous barrier.
func (p *oceanProg) prolong(t *sim.Thread, l int, rlo, rhi int) {
	cs := p.sizes[l+1]
	for i := rlo; i < rhi; i++ {
		if i%2 != 0 {
			continue
		}
		ci := i / 2
		if ci < 1 || ci >= cs-1 {
			continue
		}
		for cj := 1; cj < cs-1; cj++ {
			c := t.LoadF(p.at(l+1, ci, cj))
			v := t.LoadF(p.at(l, i, 2*cj))
			t.Compute(2)
			t.StoreF(p.at(l, i, 2*cj), v+c)
		}
	}
}

// relaxColor updates the interior cells of one color on this thread's
// rows of level l and returns the sum of squared updates (the thread's
// residual partial).
func (p *oceanProg) relaxColor(t *sim.Thread, l, color, rlo, rhi int) float64 {
	partial := 0.0
	s := p.sizes[l]
	for i := rlo; i < rhi; i++ {
		for j := 1; j < s-1; j++ {
			if (i+j)%2 != color {
				continue
			}
			up := t.LoadF(p.at(l, i-1, j))
			down := t.LoadF(p.at(l, i+1, j))
			left := t.LoadF(p.at(l, i, j-1))
			right := t.LoadF(p.at(l, i, j+1))
			old := t.LoadF(p.at(l, i, j))
			rh := t.LoadF(p.rat(l, i, j))
			v := 0.25 * (up + down + left + right - rh)
			diff := v - old
			partial += diff * diff
			t.Compute(24) // stencil arithmetic + convergence bookkeeping
			t.StoreF(p.at(l, i, j), v)
		}
	}
	return partial
}

func (p *oceanProg) Worker(t *sim.Thread) {
	tid := t.TID()
	clen := len(p.cycle)

	for it := 0; it < p.iters; it++ {
		lvl := p.cycle[it%clen]
		prev := p.cycle[(it+clen-1)%clen]

		// Phase 1: inter-grid transfer. Every write is to this thread's
		// own rows; reads of the other level are stable since the
		// previous barrier.
		if tid == 0 {
			t.StoreF(p.resid, 0)
		}
		switch {
		case it%clen == 0:
			// Back at the finest level: fold in the coarse correction
			// accumulated by the cycle just finished, and at timestep
			// boundaries form a fresh right-hand side.
			rlo, rhi := p.rows(0, tid)
			if it > 0 {
				p.prolong(t, 0, rlo, rhi)
			}
			if it%(oceanCyclesPerStep*clen) == 0 {
				p.formRHS(t, rlo, rhi)
			}
		case lvl > prev:
			rlo, rhi := p.rows(lvl, tid)
			p.restrict(t, lvl, rlo, rhi)
		default:
			rlo, rhi := p.rows(lvl, tid)
			p.prolong(t, lvl, rlo, rhi)
		}
		p.transfer.await(t)

		// Phases 2+3: red and black half-sweeps on this level, with the
		// residual reduced into the shared accumulator after the black
		// sweep — atomic per addition, racy in order.
		rlo, rhi := p.rows(lvl, tid)
		red := p.relaxColor(t, lvl, 0, rlo, rhi)
		p.red.await(t)
		black := p.relaxColor(t, lvl, 1, rlo, rhi)
		t.Lock(p.residLock)
		r := t.LoadF(p.resid)
		t.StoreF(p.resid, r+red+black)
		t.Unlock(p.residLock)
		p.black.await(t)
	}
}
