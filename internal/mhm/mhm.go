// Package mhm models the Memory-State Hashing Module of HW-InstantCheck_Inc
// (paper §3): the per-core unit in the L1 cache controller that keeps a
// 64-bit Thread Hash (TH) register and, for every write that updates the L1,
// computes
//
//	TH = TH ⊖ hash(V_addr, Data_old) ⊕ hash(V_addr, Data_new)
//
// All MHM operations are core-local; the global State Hash is obtained in
// software by modulo-adding the TH registers of all cores.
//
// The model implements the full software interface of Figure 4
// (start/stop_hashing, save/restore_hash, minus_hash, plus_hash,
// start/stop_FP_rounding), the FP round-off unit placed in front of the hash
// unit (§3.1), and both datapath variants of Figure 3: the basic
// single-register design and the highly-parallel multi-cluster design in
// which hash terms are dispatched to independent clusters in arbitrary order
// and merged into TH later. Because ⊕ is commutative and associative, every
// dispatch order yields the same TH — the property §3.2 exploits for
// flexible implementations, and which this package's tests verify.
package mhm

import (
	"instantcheck/internal/fpround"
	"instantcheck/internal/ihash"
)

// Stats counts the MHM activity of one thread, feeding the paper's
// instruction-count overhead model (§7.3).
type Stats struct {
	// HashedStores is the number of stores whose hash terms entered TH.
	HashedStores uint64
	// SkippedStores is the number of stores seen while hashing was stopped.
	SkippedStores uint64
	// RoundedStores is the number of hashed stores that went through the
	// FP round-off unit.
	RoundedStores uint64
	// MinusOps and PlusOps count explicit minus_hash/plus_hash instructions.
	MinusOps uint64
	// PlusOps counts explicit plus_hash instructions.
	PlusOps uint64
	// Saves and Restores count save_hash/restore_hash instructions.
	Saves uint64
	// Restores counts restore_hash instructions.
	Restores uint64

	// The remaining fields measure the store buffer (zero when the unit
	// hashes inline). HashedStores still counts every store observed while
	// hashing — buffering changes when and how often terms are hashed, not
	// how many stores were covered.

	// BufferFlushes counts drains of the store buffer.
	BufferFlushes uint64
	// DrainedWords counts coalesced entries hashed at drains; the gap
	// HashedStores − DrainedWords is the hot-path hashing the buffer
	// amortized away.
	DrainedWords uint64
	// CoalescedStores counts stores that merged into an already-pending
	// entry for their address instead of adding hash terms.
	CoalescedStores uint64
	// ConflictEvictions counts pending entries emitted early because the
	// incoming store's old value no longer matched the entry's new value
	// (another thread wrote the word in between).
	ConflictEvictions uint64
	// ElidedWords counts entries dropped at drain because their old and
	// new values were equal — windows whose stores net to no change.
	ElidedWords uint64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.HashedStores += o.HashedStores
	s.SkippedStores += o.SkippedStores
	s.RoundedStores += o.RoundedStores
	s.MinusOps += o.MinusOps
	s.PlusOps += o.PlusOps
	s.Saves += o.Saves
	s.Restores += o.Restores
	s.BufferFlushes += o.BufferFlushes
	s.DrainedWords += o.DrainedWords
	s.CoalescedStores += o.CoalescedStores
	s.ConflictEvictions += o.ConflictEvictions
	s.ElidedWords += o.ElidedWords
}

// Dispatcher selects, for the i-th hash term of a store, which cluster of a
// multi-cluster MHM receives it. Any pure or stateful policy is legal: §3.2
// guarantees the final TH is independent of the choice.
type Dispatcher func(term int) int

// Unit is one core's MHM. It is owned by a single simulated thread, exactly
// as a TH register is core-local. The zero value is not usable; call New.
type Unit struct {
	hasher   ihash.Hasher
	th       ihash.Digest
	clusters []ihash.Digest
	dispatch Dispatcher
	nextTerm int

	hashing  bool
	rounding bool
	policy   fpround.Policy

	// buf, when non-nil, batches and coalesces store updates between
	// observation points instead of hashing inside every store (buffer.go).
	buf *storeBuffer

	stats Stats
}

// New returns a basic (Figure 3a) MHM using the given location hash, with
// hashing initially enabled and FP rounding off. policy configures what the
// round-off unit does once start_FP_rounding executes. A nil hasher selects
// ihash.Mix64.
func New(h ihash.Hasher, policy fpround.Policy) *Unit {
	if h == nil {
		h = ihash.Mix64{}
	}
	return &Unit{hasher: h, hashing: true, policy: policy}
}

// NewClustered returns a Figure 3(b) MHM with n independent clusters and the
// given dispatch policy (nil means round-robin). Partial sums accumulate in
// the clusters and are merged whenever TH is read.
func NewClustered(h ihash.Hasher, policy fpround.Policy, n int, d Dispatcher) *Unit {
	u := New(h, policy)
	if n < 1 {
		n = 1
	}
	u.clusters = make([]ihash.Digest, n)
	u.dispatch = d
	return u
}

// OnStore is invoked by the write-buffer drain path for every store the
// thread performs: addr is the virtual address, old/new the raw 64-bit word
// values, isFP whether the store instruction was an FP store (the CNTR input
// of Figure 3a, produced by the compiler marking FP writes, §5).
func (u *Unit) OnStore(addr, old, new uint64, isFP bool) {
	if !u.hashing {
		u.stats.SkippedStores++
		return
	}
	u.stats.HashedStores++
	if b := u.buf; b != nil {
		// Buffered: park the raw triple and hash at the next drain. The
		// rounding count stays per-store (every FP store in a rounding
		// window went "through" the round-off unit, whether or not its
		// entry coalesces); the rounding itself happens at drain, under
		// the same mode, since mode flips drain first.
		if isFP && u.rounding {
			u.stats.RoundedStores++
		}
		u.bufferStore(b, addr, old, new, isFP)
		return
	}
	if isFP && u.rounding {
		u.stats.RoundedStores++
		old = u.policy.RoundBits(old)
		new = u.policy.RoundBits(new)
	}
	u.accumulate(u.hasher.HashWord(addr, old).Negate())
	u.accumulate(ihash.Digest(u.hasher.HashWord(addr, new)))
}

// OnFree erases one freed word from TH — the ⊖h(a,v)⊕h(a,0) deletion pair
// of §2.2/§7.2, equivalent to minus_hash(addr, old) followed by
// plus_hash(addr, 0). With a store buffer attached the pair is routed
// through the batch path, where it coalesces with the word's pending entry:
// a word whose whole store history sits in the window drains as old==new
// and is elided, its h(a,0) terms cancelling without ever being hashed.
// Like the explicit minus_hash/plus_hash instructions (and unlike OnStore)
// the erase executes regardless of the hashing flag.
func (u *Unit) OnFree(addr, old uint64, isFP bool) {
	u.stats.MinusOps++
	u.stats.PlusOps++
	if b := u.buf; b != nil {
		u.bufferStore(b, addr, old, 0, isFP)
		return
	}
	zero := uint64(0)
	if isFP && u.rounding {
		old = u.policy.RoundBits(old)
		zero = u.policy.RoundBits(zero)
	}
	u.accumulate(u.hasher.HashWord(addr, old).Negate())
	u.accumulate(ihash.Digest(u.hasher.HashWord(addr, zero)))
}

// MinusHash implements the minus_hash instruction: subtract the hash of the
// current value at addr from TH. cur is the value software read from addr;
// isFP routes it through the round-off unit under the same conditions a
// store would take.
func (u *Unit) MinusHash(addr, cur uint64, isFP bool) {
	u.stats.MinusOps++
	if isFP && u.rounding {
		cur = u.policy.RoundBits(cur)
	}
	u.accumulate(u.hasher.HashWord(addr, cur).Negate())
}

// PlusHash implements the plus_hash instruction: add to TH the hash of val
// as if val were the current value at addr.
func (u *Unit) PlusHash(addr, val uint64, isFP bool) {
	u.stats.PlusOps++
	if isFP && u.rounding {
		val = u.policy.RoundBits(val)
	}
	u.accumulate(ihash.Digest(u.hasher.HashWord(addr, val)))
}

// StartHashing implements start_hashing.
func (u *Unit) StartHashing() { u.hashing = true }

// StopHashing implements stop_hashing; stores seen while stopped do not
// affect TH (used to run analysis code in the checked address space, §3.3).
// Pending buffered updates were observed while hashing was on, so they
// drain first.
func (u *Unit) StopHashing() {
	u.drain()
	u.hashing = false
}

// Hashing reports whether the unit is currently hashing stores.
func (u *Unit) Hashing() bool { return u.hashing }

// StartFPRounding implements start_FP_rounding. A rounding-mode flip is a
// drain point: buffered entries hold raw bit patterns and must be hashed
// under the mode their stores executed in.
func (u *Unit) StartFPRounding() {
	u.drain()
	u.rounding = true
}

// StopFPRounding implements stop_FP_rounding (drains like StartFPRounding).
func (u *Unit) StopFPRounding() {
	u.drain()
	u.rounding = false
}

// Rounding reports whether FP values are being rounded before hashing.
func (u *Unit) Rounding() bool { return u.rounding }

// Policy returns the configured round-off policy.
func (u *Unit) Policy() fpround.Policy { return u.policy }

// SaveHash implements save_hash: it returns the TH register value (merging
// cluster partial sums first, as a real implementation would drain clusters
// before a context switch).
func (u *Unit) SaveHash() ihash.Digest {
	u.stats.Saves++
	return u.TH()
}

// RestoreHash implements restore_hash: it loads TH from a previously saved
// value. Cluster partial sums are cleared — they were folded into the saved
// value by SaveHash. Pending buffered updates happened before the restore
// in program order and would otherwise leak into the restored value later,
// so they drain into the old TH first.
func (u *Unit) RestoreHash(d ihash.Digest) {
	u.drain()
	u.stats.Restores++
	u.th = d
	for i := range u.clusters {
		u.clusters[i] = ihash.Zero
	}
}

// TH returns the current Thread Hash, merging any cluster partial sums into
// the register (the deferred merge of Figure 3b). Reading TH is the
// observation the store buffer exists to defer work until: any pending
// buffered updates drain first, so every TH read — checkpoints, save_hash,
// CombineTH — sees the fully applied hash.
func (u *Unit) TH() ihash.Digest {
	u.drain()
	th := u.th
	for _, c := range u.clusters {
		th = th.Combine(c)
	}
	return th
}

// Stats returns a copy of the unit's activity counters.
func (u *Unit) Stats() Stats { return u.stats }

// Hasher returns the location hash in use.
func (u *Unit) Hasher() ihash.Hasher { return u.hasher }

func (u *Unit) accumulate(term ihash.Digest) {
	if len(u.clusters) == 0 {
		u.th = u.th.Combine(term)
		return
	}
	i := u.nextTerm
	u.nextTerm++
	var c int
	if u.dispatch != nil {
		c = u.dispatch(i) % len(u.clusters)
		if c < 0 {
			c += len(u.clusters)
		}
	} else {
		c = i % len(u.clusters)
	}
	u.clusters[c] = u.clusters[c].Combine(term)
}

// CombineTH folds per-core Thread Hashes into the State Hash, the rare
// software-side global operation of §2.2: SH = TH_0 ⊕ TH_1 ⊕ … .
func CombineTH(units ...*Unit) ihash.Digest {
	ths := make([]ihash.Digest, len(units))
	for i, u := range units {
		ths[i] = u.TH()
	}
	return ihash.CombineAll(ths...)
}
