package instantcheck

import (
	"testing"

	"instantcheck/internal/racefilter"
	"instantcheck/internal/replay"
	"instantcheck/internal/sim"
)

// TestDetectionRunFastPaths pins the epoch detector's O(1) same-epoch
// short-circuits on a real workload: a barnes detection run must resolve
// repeat accesses through both the read and the write fast path (not just
// the slow path) and touch the shadow-page directory. make bench-smoke
// runs this as its epoch-path gate; the benchmark itself only asserts the
// detector saw accesses, because barrier-phased apps can legitimately
// touch every word exactly once per epoch and never hit a fast path.
func TestDetectionRunFastPaths(t *testing.T) {
	app := WorkloadByName("barnes")
	if app == nil {
		t.Fatal("barnes workload missing")
	}
	build := app.Builder(WorkloadOptions{Threads: 4, Small: true})
	det := racefilter.NewDetector(4)
	m := sim.NewMachine(sim.Config{
		Threads: 4, ScheduleSeed: 1, Scheme: sim.HWInc,
		Env: replay.NewEnv(1), AddrLog: replay.NewAddrLog(),
		Events: det,
	})
	if _, err := m.Run(build()); err != nil {
		t.Fatal(err)
	}
	st := det.Stats()
	if st.ReadFast == 0 || st.WriteFast == 0 {
		t.Fatalf("fast paths not exercised: %+v", st)
	}
	if st.ReadSlow == 0 || st.WriteSlow == 0 {
		t.Fatalf("slow paths not exercised: %+v", st)
	}
	if st.ShadowPages == 0 {
		t.Fatalf("no shadow pages allocated: %+v", st)
	}
}
