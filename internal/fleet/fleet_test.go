package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"instantcheck/internal/core"
	"instantcheck/internal/farm"
	"instantcheck/internal/obs"
	"instantcheck/internal/sim"
)

var bg = context.Background()

// fleetSpec is a campaign sized for fast distributed smoke tests: small
// input, modest run count, fully specified seeds so every node resolves the
// identical campaign.
func fleetSpec(app string, runs int) farm.JobSpec {
	return farm.JobSpec{
		App:         app,
		Runs:        runs,
		Threads:     4,
		Seed:        50,
		InputSeed:   7,
		Small:       true,
		Parallelism: 4,
	}
}

// recordedRunner resolves a spec and executes its recording run, yielding a
// runner in the state runJob hands to a dispatcher.
func recordedRunner(t *testing.T, spec farm.JobSpec) (core.Campaign, *core.Runner, []int) {
	t.Helper()
	camp, build, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	runner, err := camp.NewRunner(build)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Record(); err != nil {
		t.Fatal(err)
	}
	camp = runner.Campaign()
	need := make([]int, 0, camp.Runs-1)
	for run := 1; run < camp.Runs; run++ {
		need = append(need, run)
	}
	return camp, runner, need
}

// TestBundleRoundTrip checks the content-addressed unit of the fleet: a
// recorded replay state marshals deterministically, round-trips, and the
// reconstructed state replays to the same hash vectors as the original.
func TestBundleRoundTrip(t *testing.T) {
	spec := fleetSpec("fft", 4)
	camp, runner, _ := recordedRunner(t, spec)
	st, err := runner.ReplayState()
	if err != nil {
		t.Fatal(err)
	}
	raw, digest, err := MarshalBundle(st)
	if err != nil {
		t.Fatal(err)
	}
	raw2, digest2, err := MarshalBundle(st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) || digest != digest2 {
		t.Fatalf("bundle marshaling is not deterministic")
	}

	back, err := UnmarshalBundle(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Program != st.Program {
		t.Fatalf("program = %q, want %q", back.Program, st.Program)
	}
	_, build, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	remote, err := camp.NewReplayRunner(build, back)
	if err != nil {
		t.Fatal(err)
	}
	for run := 1; run < camp.Runs; run++ {
		want, err := runner.Replay(run)
		if err != nil {
			t.Fatal(err)
		}
		got, err := remote.Replay(run)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Checkpoints, got.Checkpoints) {
			t.Fatalf("run %d: replay from round-tripped bundle diverges", run)
		}
	}

	// Truncations fail loudly, never as empty logs.
	for cut := 1; cut < len(raw); cut += len(raw)/7 + 1 {
		if _, err := UnmarshalBundle(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes unmarshaled cleanly", cut)
		}
	}
	if _, err := UnmarshalBundle([]byte("not a bundle at all")); err == nil {
		t.Fatal("garbage unmarshaled cleanly")
	}
}

// TestCoordinatorProtocol drives the lease/results state machine directly
// (no HTTP, no Worker): claiming, idempotent append-back of a duplicated
// batch, and immediate requeue of a shard released incomplete.
func TestCoordinatorProtocol(t *testing.T) {
	spec := fleetSpec("radix", 9)
	camp, runner, need := recordedRunner(t, spec)

	c := NewCoordinator(CoordinatorOptions{ShardSize: 4, LeaseTTL: time.Minute})
	var mu sync.Mutex
	delivered := map[int]int{}
	deliver := func(run int, res *sim.Result) error {
		mu.Lock()
		defer mu.Unlock()
		delivered[run]++
		return nil
	}
	dispatchErr := make(chan error, 1)
	go func() {
		dispatchErr <- c.Dispatch(bg, "j000001", spec, runner, need, deliver)
	}()

	// The dispatch registers asynchronously; wait for its shards.
	var li *LeaseInfo
	for deadline := time.Now().Add(10 * time.Second); li == nil; {
		li = c.nextLease("wA")
		if li == nil {
			if time.Now().After(deadline) {
				t.Fatal("no lease granted")
			}
			time.Sleep(time.Millisecond)
		}
	}
	if len(li.Runs) != 4 || li.Job != "j000001" {
		t.Fatalf("first lease = %+v", li)
	}

	records := make([]RunRecord, 0, len(li.Runs))
	for _, run := range li.Runs {
		res, err := runner.Replay(run)
		if err != nil {
			t.Fatal(err)
		}
		records = append(records, recordFromResult(run, res))
	}
	req := &resultsRequest{LeaseID: li.LeaseID, Worker: "wA", Job: li.Job, Fetch: "miss", Records: records}
	accepted, ok := c.acceptResults(req, 100)
	if accepted != 4 || !ok {
		t.Fatalf("first batch: accepted=%d leaseOK=%v, want 4 true", accepted, ok)
	}
	// The identical batch again: a zombie re-post. Nothing double-delivers.
	accepted, _ = c.acceptResults(req, 100)
	if accepted != 0 {
		t.Fatalf("duplicate batch accepted %d records", accepted)
	}
	if got := c.m.appendDuplicates.Value(); got != 4 {
		t.Fatalf("appendback duplicates = %d, want 4", got)
	}
	for run, n := range delivered {
		if n != 1 {
			t.Fatalf("run %d delivered %d times", run, n)
		}
	}

	// Second lease, released Done with only half its runs delivered — the
	// rest must requeue immediately, not wait for TTL expiry.
	li2 := c.nextLease("wA")
	if li2 == nil || len(li2.Runs) != 4 {
		t.Fatalf("second lease = %+v", li2)
	}
	partial := records[:0]
	for _, run := range li2.Runs[:2] {
		res, err := runner.Replay(run)
		if err != nil {
			t.Fatal(err)
		}
		partial = append(partial, recordFromResult(run, res))
	}
	accepted, ok = c.acceptResults(&resultsRequest{
		LeaseID: li2.LeaseID, Worker: "wA", Job: li2.Job, Records: partial, Done: true,
	}, 50)
	if accepted != 2 || ok {
		t.Fatalf("partial done batch: accepted=%d leaseOK=%v, want 2 false", accepted, ok)
	}
	if got := c.m.runsRequeued.Value(); got != 2 {
		t.Fatalf("runs requeued = %d, want 2", got)
	}

	// Drain everything that remains and the Dispatch must wake cleanly.
	for {
		li := c.nextLease("wB")
		if li == nil {
			break
		}
		var recs []RunRecord
		for _, run := range li.Runs {
			res, err := runner.Replay(run)
			if err != nil {
				t.Fatal(err)
			}
			recs = append(recs, recordFromResult(run, res))
		}
		c.acceptResults(&resultsRequest{
			LeaseID: li.LeaseID, Worker: "wB", Job: li.Job, Records: recs, Done: true,
		}, 10)
	}
	select {
	case err := <-dispatchErr:
		if err != nil {
			t.Fatalf("dispatch: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("dispatch never completed")
	}
	if len(delivered) != camp.Runs-1 {
		t.Fatalf("delivered %d distinct runs, want %d", len(delivered), camp.Runs-1)
	}
}

// fleetDaemon is an in-process fleet: a farm daemon whose replay stage is a
// coordinator, plus the HTTP endpoint its workers pull from.
type fleetDaemon struct {
	srv   *farm.Server
	coord *Coordinator
	url   string

	cancel  context.CancelFunc
	workers sync.WaitGroup
}

func startFleetDaemon(t *testing.T, storePath string, copts CoordinatorOptions) *fleetDaemon {
	t.Helper()
	store, err := farm.OpenStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(copts)
	srv := farm.NewServer(store, farm.Options{Dispatcher: coord, Logf: t.Logf})
	ctx, cancel := context.WithCancel(context.Background())
	srv.Start(ctx)
	hs := httptest.NewServer(coord.Handler())
	d := &fleetDaemon{srv: srv, coord: coord, url: hs.URL, cancel: cancel}
	t.Cleanup(func() {
		d.cancel()
		d.workers.Wait()
		hs.Close()
		srv.Wait()
		store.Close()
	})
	return d
}

// addWorker starts a worker loop against the daemon, returning its private
// cancel so tests can kill one worker without touching the rest.
func (d *fleetDaemon) addWorker(t *testing.T, ctx context.Context, o WorkerOptions) context.CancelFunc {
	t.Helper()
	o.Coordinator = d.url
	if o.PollInterval == 0 {
		o.PollInterval = 5 * time.Millisecond
	}
	if o.CacheDir == "" {
		o.CacheDir = t.TempDir()
	}
	w, err := NewWorker(o)
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithCancel(ctx)
	d.workers.Add(1)
	go func() {
		defer d.workers.Done()
		w.Run(wctx)
	}()
	// Tie the worker to daemon teardown as well.
	go func() {
		<-ctx.Done()
		cancel()
	}()
	return cancel
}

func (d *fleetDaemon) waitJob(t *testing.T, id farm.JobID) *farm.Job {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		job := d.srv.Job(id)
		if job == nil {
			t.Fatalf("job %s vanished", id)
		}
		if job.State.Terminal() {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (%d/%d runs)", id, job.State, job.RunsDone, job.RunsTotal)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// singleNodeReport runs the same spec through a plain (local-dispatcher)
// daemon — the reference a fleet campaign must reproduce byte for byte.
func singleNodeReport(t *testing.T, spec farm.JobSpec) []byte {
	t.Helper()
	store, err := farm.OpenStore(filepath.Join(t.TempDir(), "single.log"))
	if err != nil {
		t.Fatal(err)
	}
	srv := farm.NewServer(store, farm.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	srv.Start(ctx)
	defer func() {
		cancel()
		srv.Wait()
		store.Close()
	}()
	job, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for !srv.Job(job.ID).State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("single-node job stuck")
		}
		time.Sleep(10 * time.Millisecond)
	}
	rep, err := srv.Report(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestFleetMatchesSingleNode is the subsystem's north star: a campaign
// sharded across four worker processes produces a report byte-identical to
// the single-node daemon's.
func TestFleetMatchesSingleNode(t *testing.T) {
	d := startFleetDaemon(t, filepath.Join(t.TempDir(), "fleet.log"),
		CoordinatorOptions{ShardSize: 3, LeaseTTL: 5 * time.Second, Logf: t.Logf})
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	for _, name := range []string{"w0", "w1", "w2", "w3"} {
		d.addWorker(t, ctx, WorkerOptions{Name: name, BatchSize: 2})
	}

	for _, app := range []string{"fft", "lu"} {
		spec := fleetSpec(app, 8)
		job, err := d.srv.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		job = d.waitJob(t, job.ID)
		if job.State != farm.JobDone || job.Error != "" {
			t.Fatalf("%s: fleet job finished as %s: %s", app, job.State, job.Error)
		}
		rep, err := d.srv.Report(job.ID)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if want := singleNodeReport(t, spec); !bytes.Equal(got, want) {
			t.Errorf("%s: fleet report differs from single-node:\nfleet  %s\nsingle %s", app, got, want)
		}
	}
	if got := d.coord.m.shardsCompleted.Value(); got == 0 {
		t.Error("no shards recorded as completed")
	}
}

// TestFleetExploreJobPassthrough checks the job-kind passthrough: an
// explore job submitted to a fleet-mode daemon runs to completion on the
// coordinator itself (the search is sequential, so nothing fans out to
// the workers), alongside a fleet-dispatched check job on the same queue.
func TestFleetExploreJobPassthrough(t *testing.T) {
	d := startFleetDaemon(t, filepath.Join(t.TempDir(), "fleet.log"),
		CoordinatorOptions{ShardSize: 3, LeaseTTL: 5 * time.Second, Logf: t.Logf})
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	d.addWorker(t, ctx, WorkerOptions{Name: "w0", BatchSize: 2})

	spec := farm.JobSpec{
		App:            "waterSP",
		Kind:           "explore",
		Strategy:       "race-directed",
		Bug:            "atomicity",
		Runs:           40,
		Threads:        4,
		InputSeed:      1,
		SwitchInterval: 4000,
		RoundFP:        true,
		Small:          true,
	}
	job, err := d.srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	job = d.waitJob(t, job.ID)
	if job.State != farm.JobDone || job.Error != "" {
		t.Fatalf("explore job on fleet daemon finished as %s: %s", job.State, job.Error)
	}
	rep, err := d.srv.Report(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Explore == nil || !rep.Explore.Found {
		t.Fatalf("explore outcome = %+v", rep.Explore)
	}

	// The fleet still dispatches check jobs as before.
	check, err := d.srv.Submit(fleetSpec("fft", 6))
	if err != nil {
		t.Fatal(err)
	}
	check = d.waitJob(t, check.ID)
	if check.State != farm.JobDone || check.Error != "" {
		t.Fatalf("check job finished as %s: %s", check.State, check.Error)
	}
}

// TestFleetWorkerKillConvergence kills one worker mid-shard (its process
// context dies without any farewell to the coordinator — the in-process
// equivalent of SIGKILL) and checks that lease expiry re-dispatches the
// orphaned runs and the final report is still byte-identical to the
// single-node reference.
func TestFleetWorkerKillConvergence(t *testing.T) {
	d := startFleetDaemon(t, filepath.Join(t.TempDir(), "fleet.log"),
		CoordinatorOptions{ShardSize: 4, LeaseTTL: 300 * time.Millisecond, Logf: t.Logf})
	ctx, cancel := context.WithCancel(bg)
	defer cancel()

	// The victim replays slowly, so it is guaranteed to still be mid-shard
	// when the kill lands.
	kill := d.addWorker(t, ctx, WorkerOptions{Name: "victim", RunLatency: 50 * time.Millisecond})

	spec := fleetSpec("radix", 17)
	job, err := d.srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the victim to hold a lease, then kill it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		d.coord.mu.Lock()
		n := len(d.coord.leases)
		d.coord.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never leased a shard")
		}
		time.Sleep(2 * time.Millisecond)
	}
	kill()

	for _, name := range []string{"w1", "w2", "w3"} {
		d.addWorker(t, ctx, WorkerOptions{Name: name})
	}
	job = d.waitJob(t, job.ID)
	if job.State != farm.JobDone || job.Error != "" {
		t.Fatalf("fleet job finished as %s: %s", job.State, job.Error)
	}
	if got := d.coord.m.shardsExpired.Value(); got == 0 {
		t.Error("no lease expired despite the worker kill")
	}
	if got := d.coord.m.runsRequeued.Value(); got == 0 {
		t.Error("no runs were re-queued despite the worker kill")
	}

	rep, err := d.srv.Report(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if want := singleNodeReport(t, spec); !bytes.Equal(got, want) {
		t.Errorf("post-kill fleet report differs from single-node:\nfleet  %s\nsingle %s", got, want)
	}
}

// TestBundleCacheHitMiss checks the content-addressed store economics: one
// worker fetches a campaign's bundle exactly once, later shards and later
// campaigns with the identical recording hit its disk cache.
func TestBundleCacheHitMiss(t *testing.T) {
	d := startFleetDaemon(t, filepath.Join(t.TempDir(), "fleet.log"),
		CoordinatorOptions{ShardSize: 3, LeaseTTL: 5 * time.Second})
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	cache := t.TempDir()
	d.addWorker(t, ctx, WorkerOptions{Name: "solo", CacheDir: cache})

	spec := fleetSpec("fft", 8) // 7 replay runs -> 3 shards of <=3
	for i := 0; i < 2; i++ {
		job, err := d.srv.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if job = d.waitJob(t, job.ID); job.State != farm.JobDone {
			t.Fatalf("job %d finished as %s: %s", i, job.State, job.Error)
		}
	}

	misses, hits := d.coord.m.fetchMisses.Value(), d.coord.m.fetchHits.Value()
	if misses != 1 {
		t.Errorf("bundle fetch misses = %d, want exactly 1 (both campaigns share one digest)", misses)
	}
	if hits < 4 {
		t.Errorf("bundle fetch hits = %d, want >= 4", hits)
	}
	// The cache holds exactly the one bundle, named by its digest.
	entries, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("cache holds %d entries, want 1", len(entries))
	}
	raw, err := os.ReadFile(filepath.Join(cache, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalBundle(raw); err != nil {
		t.Fatalf("cached bundle corrupt: %v", err)
	}

	// A corrupted cache entry is detected by digest verification and
	// re-fetched, not trusted.
	if err := os.WriteFile(filepath.Join(cache, entries[0].Name()), []byte("rotten"), 0o644); err != nil {
		t.Fatal(err)
	}
	job, err := d.srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if job = d.waitJob(t, job.ID); job.State != farm.JobDone {
		t.Fatalf("post-corruption job finished as %s: %s", job.State, job.Error)
	}
	if got := d.coord.m.fetchMisses.Value(); got != misses+1 {
		t.Errorf("misses after cache corruption = %d, want %d", got, misses+1)
	}
}

// TestFleetMetricsGolden pins the checkfleet metric families — names and
// types are an interface consumed by dashboards and the stats command, so a
// rename must be a conscious golden update. It also checks the merged
// farm+fleet exposition lints cleanly, the same gate checkd applies at
// startup.
func TestFleetMetricsGolden(t *testing.T) {
	d := startFleetDaemon(t, filepath.Join(t.TempDir(), "fleet.log"),
		CoordinatorOptions{ShardSize: 3, LeaseTTL: 5 * time.Second})
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	d.addWorker(t, ctx, WorkerOptions{Name: "w0"})
	job, err := d.srv.Submit(fleetSpec("fft", 6))
	if err != nil {
		t.Fatal(err)
	}
	if job = d.waitJob(t, job.ID); job.State != farm.JobDone {
		t.Fatalf("job finished as %s: %s", job.State, job.Error)
	}

	if err := obs.LintMerged(d.srv.Registry(), d.coord.Registry()); err != nil {
		t.Fatalf("merged farm+fleet registries do not lint: %v", err)
	}

	var buf bytes.Buffer
	if err := d.coord.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var families []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, line)
		}
	}
	got := strings.Join(families, "\n") + "\n"

	goldenPath := filepath.Join("testdata", "fleet_metrics.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate by writing the following)\n%s", err, got)
	}
	if got != string(want) {
		t.Errorf("checkfleet metric families drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
