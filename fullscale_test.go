package instantcheck

import (
	"testing"
)

// TestPaperCheckpointCounts pins the headline Table 1 reproduction: at
// full input scale, every workload produces the paper's number of dynamic
// checking points (barrier episodes + end of run). A single run per app
// suffices — checkpoint counts do not depend on the schedule for these
// programs (streamcluster included: the bug changes values, not structure).
//
// Skipped in -short mode; it costs a few seconds.
func TestPaperCheckpointCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale inputs; skipped in -short mode")
	}
	// Paper Table 1, columns 10+11 summed.
	want := map[string]int{
		"blackscholes":  101,
		"fft":           13,
		"lu":            68,
		"radix":         12,
		"streamcluster": 13002,
		"swaptions":     2501,
		"volrend":       6,
		"fluidanimate":  41,
		"ocean":         871,
		"waterNS":       21,
		"waterSP":       21,
		"cholesky":      4,
		"pbzip2":        1,
		"sphinx3":       4265,
		"barnes":        18,
		"canneal":       64,
		"radiosity":     19,
	}
	for _, app := range Workloads() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := Check(Campaign{Runs: 1, Threads: 8, RoundFP: app.UsesFP},
				app.Builder(WorkloadOptions{}))
			if err != nil {
				t.Fatal(err)
			}
			if got := rep.Points(); got != want[app.Name] {
				t.Errorf("%d dynamic checking points, paper reports %d", got, want[app.Name])
			}
		})
	}
}

// TestFullScaleSchemesAgree cross-validates the incremental and traversal
// hashes at full input scale on a mixed selection of workloads (heap-heavy
// barnes, scratch-heavy sphinx3's small variant excluded for time, FP
// ocean, int radix).
func TestFullScaleSchemesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale inputs; skipped in -short mode")
	}
	for _, name := range []string{"radix", "ocean", "barnes", "cholesky"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			app := WorkloadByName(name)
			inc, err := Check(Campaign{Runs: 1, Threads: 8, RoundFP: app.UsesFP, Scheme: HWInc},
				app.Builder(WorkloadOptions{}))
			if err != nil {
				t.Fatal(err)
			}
			tr, err := Check(Campaign{Runs: 1, Threads: 8, RoundFP: app.UsesFP, Scheme: SWTr},
				app.Builder(WorkloadOptions{}))
			if err != nil {
				t.Fatal(err)
			}
			a, b := inc.Runs[0].SHVector(), tr.Runs[0].SHVector()
			if len(a) != len(b) {
				t.Fatalf("checkpoint counts differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("checkpoint %d: incremental %s != traversal %s", i, a[i], b[i])
				}
			}
		})
	}
}
