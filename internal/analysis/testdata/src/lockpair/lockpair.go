// Package lockpair is a golden fixture for the lockpair analyzer.
package lockpair

import (
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

func leak(t *sim.Thread, mu *sched.Mutex) {
	t.Lock(mu) // want `Lock\(mu\) is not released before leak returns`
	t.Store(0, 1)
}

func balanced(t *sim.Thread, mu *sched.Mutex) {
	t.Lock(mu)
	t.Store(0, 1)
	t.Unlock(mu)
}

func deferredUnlock(t *sim.Thread, mu *sched.Mutex) {
	t.Lock(mu)
	defer t.Unlock(mu)
	t.Store(0, 1)
}

func doubleUnlock(t *sim.Thread, mu *sched.Mutex) {
	t.Lock(mu)
	t.Unlock(mu)
	t.Unlock(mu) // want `Unlock\(mu\) has no matching Lock in this function`
}

func earlyReturn(t *sim.Thread, mu *sched.Mutex, stop bool) {
	t.Lock(mu)
	if stop {
		t.Unlock(mu)
		return
	}
	t.Store(0, 1)
	t.Unlock(mu)
}

// waitLoop is the pbzip2 consumer shape: a condition-less loop whose only
// exits (break, return) both release the lock.
func waitLoop(t *sim.Thread, mu *sched.Mutex, c *sched.Cond, addr uint64) {
	for {
		t.Lock(mu)
		for {
			if t.Load(addr) == 1 {
				t.Unlock(mu)
				break
			}
			if t.Load(addr) == 2 {
				t.Unlock(mu)
				return
			}
			t.CondWait(c)
		}
	}
}

func hashingLeak(t *sim.Thread) {
	t.StopHashing() // want `StopHashing is not re-enabled by StartHashing before hashingLeak returns`
	t.Store(0, 1)
}

func hashingBalanced(t *sim.Thread) {
	t.StopHashing()
	t.Store(0, 1)
	t.StartHashing()
}

func startAlone(t *sim.Thread) {
	t.StartHashing() // want `StartHashing without a preceding StopHashing`
}
