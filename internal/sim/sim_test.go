package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"instantcheck/internal/ihash"
	"instantcheck/internal/mem"
	"instantcheck/internal/replay"
	"instantcheck/internal/sched"
)

// fuzzProg is a randomized workload: every thread performs a deterministic
// (per progSeed) sequence of stores, FP stores, mallocs, frees, locked
// read-modify-writes and barrier waits. It exercises every event the
// hashing schemes observe.
type fuzzProg struct {
	nt       int
	progSeed uint64
	steps    int

	global uint64
	shared uint64
	mu     *sched.Mutex
	bar    *sched.Barrier
}

func newFuzz(nt int, seed uint64, steps int) *fuzzProg {
	return &fuzzProg{nt: nt, progSeed: seed, steps: steps}
}

func (p *fuzzProg) Name() string { return "fuzz" }

func (p *fuzzProg) Threads() int { return p.nt }

func (p *fuzzProg) Setup(t *Thread) {
	p.global = t.AllocStatic("static:fuzz.global", 64, mem.KindWord)
	p.shared = t.AllocStatic("static:fuzz.shared", 8, mem.KindFloat)
	p.mu = t.Machine().NewMutex("fuzz")
	p.bar = t.Machine().NewBarrier("fuzz.bar")
	for i := 0; i < 64; i++ {
		t.Store(p.global+uint64(i)*8, p.progSeed*uint64(i+1))
	}
}

func (p *fuzzProg) Worker(t *Thread) {
	rng := rand.New(rand.NewSource(int64(p.progSeed) + int64(t.TID())*7919))
	var blocks []uint64
	for s := 0; s < p.steps; s++ {
		if s%13 == 7 {
			// Fixed-position barriers: every thread arrives the same
			// number of times regardless of its random op mix.
			t.BarrierWait(p.bar)
			continue
		}
		switch rng.Intn(5) {
		case 0: // store to a thread-owned slice of the global array
			i := t.TID()*8 + rng.Intn(8)
			t.Store(p.global+uint64(i)*8, rng.Uint64())
		case 1: // locked FP read-modify-write on shared state
			j := rng.Intn(8)
			t.Lock(p.mu)
			v := t.LoadF(p.shared + uint64(j)*8)
			t.StoreF(p.shared+uint64(j)*8, v+float64(rng.Intn(100))*0.25)
			t.Unlock(p.mu)
		case 2: // malloc + fill
			b := t.Malloc("fuzz.heap", rng.Intn(6)+1, mem.KindWord)
			t.Store(b, rng.Uint64())
			blocks = append(blocks, b)
		case 3: // free something
			if len(blocks) > 0 {
				k := rng.Intn(len(blocks))
				t.Free(blocks[k])
				blocks = append(blocks[:k], blocks[k+1:]...)
			}
		case 4: // pure compute + loads
			_ = t.Load(p.global + uint64(rng.Intn(64))*8)
			t.Compute(rng.Intn(20))
		}
	}
	// Closing barriers exercise checkpoints with the heap in varied states.
	for i := 0; i < 3; i++ {
		t.BarrierWait(p.bar)
	}
}

// runFuzz executes one fuzz run under the given scheme.
func runFuzz(t *testing.T, scheme Scheme, progSeed uint64, schedSeed int64, addrLog *replay.AddrLog) *Result {
	t.Helper()
	m := NewMachine(Config{
		Threads:      3,
		ScheduleSeed: schedSeed,
		Scheme:       scheme,
		AddrLog:      addrLog,
	})
	res, err := m.Run(newFuzz(3, progSeed, 40))
	if err != nil {
		t.Fatalf("fuzz run: %v", err)
	}
	return res
}

// TestIncrementalEqualsTraversal is the central cross-validation the paper
// performs between its Inc and Tr prototypes: for any program and any
// schedule, the incrementally maintained State Hash equals the hash
// obtained by traversing the whole live state — at EVERY checkpoint.
func TestIncrementalEqualsTraversal(t *testing.T) {
	f := func(progSeed uint64, schedSeed int64) bool {
		log := replay.NewAddrLog()
		inc := runFuzz(t, HWInc, progSeed, schedSeed, log)
		tr := runFuzz(t, SWTr, progSeed, schedSeed, log)
		if len(inc.Checkpoints) != len(tr.Checkpoints) {
			return false
		}
		for i := range inc.Checkpoints {
			if inc.Checkpoints[i].SH != tr.Checkpoints[i].SH {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSWIncEqualsHWInc checks the software incremental scheme computes the
// exact same hashes as the hardware model (they differ only in cost).
func TestSWIncEqualsHWInc(t *testing.T) {
	log := replay.NewAddrLog()
	hw := runFuzz(t, HWInc, 11, 5, log)
	sw := runFuzz(t, SWInc, 11, 5, log)
	for i := range hw.Checkpoints {
		if hw.Checkpoints[i].SH != sw.Checkpoints[i].SH {
			t.Fatalf("checkpoint %d: HW %s != SW %s", i, hw.Checkpoints[i].SH, sw.Checkpoints[i].SH)
		}
	}
}

// TestSameSeedSameResult checks exact re-execution: the same configuration
// reproduces identical hashes and counters (what the state-diff tool's
// re-execution relies on).
func TestSameSeedSameResult(t *testing.T) {
	f := func(schedSeed int64) bool {
		a := runFuzz(t, HWInc, 3, schedSeed, replay.NewAddrLog())
		b := runFuzz(t, HWInc, 3, schedSeed, replay.NewAddrLog())
		if a.Counters.Instr != b.Counters.Instr || a.Counters.Stores != b.Counters.Stores {
			return false
		}
		va, vb := a.SHVector(), b.SHVector()
		if len(va) != len(vb) {
			return false
		}
		for i := range va {
			if va[i] != vb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// figure1Prog is the paper's example: G += L under a lock, 2 threads.
type figure1Prog struct {
	g  uint64
	mu *sched.Mutex
}

func (p *figure1Prog) Name() string { return "figure1" }
func (p *figure1Prog) Threads() int { return 2 }
func (p *figure1Prog) Setup(t *Thread) {
	p.g = t.AllocStatic("static:G", 1, mem.KindWord)
	t.Store(p.g, 2)
	p.mu = t.Machine().NewMutex("G")
}
func (p *figure1Prog) Worker(t *Thread) {
	l := []uint64{7, 3}[t.TID()]
	t.Lock(p.mu)
	t.Store(p.g, t.Load(p.g)+l)
	t.Unlock(p.mu)
}

// TestFigure1ExternallyDeterministic checks the paper's worked example
// end to end: many schedules, one final hash.
func TestFigure1ExternallyDeterministic(t *testing.T) {
	var first ihash.Digest
	for seed := int64(0); seed < 25; seed++ {
		m := NewMachine(Config{Threads: 2, ScheduleSeed: seed, Scheme: HWInc})
		res, err := m.Run(&figure1Prog{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Mem.Peek(mem.StaticBase) != 12 {
			t.Fatalf("G = %d, want 12", m.Mem.Peek(mem.StaticBase))
		}
		if seed == 0 {
			first = res.FinalSH()
		} else if res.FinalSH() != first {
			t.Fatalf("seed %d: SH %s != %s", seed, res.FinalSH(), first)
		}
	}
}

// allocFreeProg allocates, writes, and frees everything: its net hash
// contribution must vanish.
type allocFreeProg struct {
	nt  int
	bar *sched.Barrier
}

func (p *allocFreeProg) Name() string { return "allocfree" }
func (p *allocFreeProg) Threads() int { return p.nt }
func (p *allocFreeProg) Setup(t *Thread) {
	p.bar = t.Machine().NewBarrier("af.live")
}
func (p *allocFreeProg) Worker(t *Thread) {
	b := t.Malloc("af.block", 6, mem.KindWord)
	for i := 0; i < 6; i++ {
		t.Store(b+uint64(i)*8, uint64(t.TID()+1)*1000+uint64(i))
	}
	// Checkpoint with every block still live: the "before" state the free
	// erasure must fully undo.
	t.BarrierWait(p.bar)
	t.Free(b)
}

// TestFreeErasesState checks freed memory leaves the hashed state entirely
// (§7.2: freed buffers are "no longer part of the program state"): before
// the frees the checkpointed State Hash is nonzero, after them it is
// exactly Zero — whether the erase pairs were hashed inline or routed
// through the store buffer's batch path.
func TestFreeErasesState(t *testing.T) {
	for _, tc := range []struct {
		name  string
		words int
	}{
		{"buffered", 0}, // 0 = auto: the batch drain path
		{"inline", -1},  // negative disables the buffer
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMachine(Config{Threads: 2, ScheduleSeed: 9, Scheme: HWInc, StoreBufferWords: tc.words})
			res, err := m.Run(&allocFreeProg{nt: 2})
			if err != nil {
				t.Fatal(err)
			}
			live := res.Checkpoints[0]
			if live.Label != "af.live" || live.SH == ihash.Zero || live.LiveWords != 12 {
				t.Errorf("pre-free checkpoint = %q SH %s live %d, want af.live/nonzero/12",
					live.Label, live.SH, live.LiveWords)
			}
			if sh := res.FinalSH(); sh != ihash.Zero {
				t.Errorf("SH = %s, want zero after everything was freed", sh)
			}
			if res.FinalLiveWords != 0 {
				t.Errorf("live words = %d", res.FinalLiveWords)
			}
			if res.Counters.FreeEraseWords != 12 {
				t.Errorf("FreeEraseWords = %d", res.Counters.FreeEraseWords)
			}
			if buffered := tc.words == 0; (res.MHMStats.BufferFlushes > 0) != buffered {
				t.Errorf("BufferFlushes = %d with buffering %v", res.MHMStats.BufferFlushes, buffered)
			}
		})
	}
}

// ignoreProg writes a deterministic word and a nondeterministic word (the
// winner of a race) at a dedicated site.
type ignoreProg struct {
	det    uint64
	nondet *mem.Block
	bar    *sched.Barrier
}

func (p *ignoreProg) Name() string { return "ignore" }
func (p *ignoreProg) Threads() int { return 2 }
func (p *ignoreProg) Setup(t *Thread) {
	p.det = t.AllocStatic("static:ig.det", 1, mem.KindWord)
}
func (p *ignoreProg) Worker(t *Thread) {
	if t.TID() == 0 {
		t.Store(p.det, 42)
	}
	b := t.Malloc("ig.scratch", 2, mem.KindWord) // both threads allocate
	t.Store(b, uint64(t.TID())+100)              // content depends on who got which seq
}

// TestIgnoreSetMakesDeterministic checks §2.2 deletion: a structure whose
// contents are schedule-dependent stops affecting the hash once ignored.
func TestIgnoreSetMakesDeterministic(t *testing.T) {
	run := func(seed int64, ig *IgnoreSet) ihash.Digest {
		m := NewMachine(Config{
			Threads: 2, ScheduleSeed: seed, Scheme: HWInc,
			AddrLog: nil, Ignore: ig,
		})
		res, err := m.Run(&ignoreProg{})
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalSH()
	}
	// Without ignoring, some pair of seeds must disagree (the two threads'
	// allocations swap order).
	raw := map[ihash.Digest]bool{}
	for seed := int64(0); seed < 12; seed++ {
		raw[run(seed, nil)] = true
	}
	if len(raw) < 2 {
		t.Fatal("race did not manifest; test needs different seeds")
	}
	ig := NewIgnoreSet(IgnoreRule{Site: "ig.scratch"})
	ignored := map[ihash.Digest]bool{}
	for seed := int64(0); seed < 12; seed++ {
		ignored[run(seed, ig)] = true
	}
	if len(ignored) != 1 {
		t.Fatalf("ignore set left %d distinct hashes", len(ignored))
	}
}

// TestIgnoreAdjustEqualsNeverWritten checks the deletion math: the
// adjusted hash equals the hash of an execution that never wrote the
// ignored words at all.
func TestIgnoreAdjustEqualsNeverWritten(t *testing.T) {
	type prog struct {
		writeScratch bool
		base         *uint64
	}
	build := func(writeScratch bool) Program {
		return &funcProg{
			nt: 1,
			setup: func(t *Thread) {
				t.AllocStatic("static:x", 1, mem.KindWord)
			},
			worker: func(t *Thread) {
				t.Store(mem.StaticBase, 7)
				b := t.Malloc("scratch", 2, mem.KindWord)
				if writeScratch {
					t.Store(b, 12345)
					t.Store(b+8, 999)
				}
			},
		}
	}
	_ = prog{}
	ig := NewIgnoreSet(IgnoreRule{Site: "scratch"})
	m1 := NewMachine(Config{Threads: 1, ScheduleSeed: 1, Scheme: HWInc, Ignore: ig})
	r1, err := m1.Run(build(true))
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewMachine(Config{Threads: 1, ScheduleSeed: 1, Scheme: HWInc})
	r2, err := m2.Run(build(false))
	if err != nil {
		t.Fatal(err)
	}
	if r1.FinalSH() != r2.FinalSH() {
		t.Errorf("adjusted %s != never-written %s", r1.FinalSH(), r2.FinalSH())
	}
}

// funcProg adapts closures to the Program interface for small tests.
type funcProg struct {
	nt     int
	name   string
	setup  func(*Thread)
	worker func(*Thread)
}

func (p *funcProg) Name() string {
	if p.name == "" {
		return "test"
	}
	return p.name
}
func (p *funcProg) Threads() int { return p.nt }
func (p *funcProg) Setup(t *Thread) {
	if p.setup != nil {
		p.setup(t)
	}
}
func (p *funcProg) Worker(t *Thread) {
	if p.worker != nil {
		p.worker(t)
	}
}

// TestFPRoundingCollapsesHashes checks rounding makes sub-granularity FP
// differences hash-equal in both incremental and traversal schemes.
func TestFPRoundingCollapsesHashes(t *testing.T) {
	build := func(v float64) Program {
		return &funcProg{nt: 1, setup: func(t *Thread) {
			t.AllocStatic("static:f", 1, mem.KindFloat)
		}, worker: func(t *Thread) {
			t.StoreF(mem.StaticBase, v)
		}}
	}
	for _, scheme := range []Scheme{HWInc, SWTr} {
		run := func(v float64, round bool) ihash.Digest {
			m := NewMachine(Config{Threads: 1, ScheduleSeed: 1, Scheme: scheme, RoundFP: round})
			res, err := m.Run(build(v))
			if err != nil {
				t.Fatal(err)
			}
			return res.FinalSH()
		}
		if run(1.2345000001, true) != run(1.2345000009, true) {
			t.Errorf("%v: rounding did not collapse", scheme)
		}
		if run(1.2345000001, false) == run(1.2345000009, false) {
			t.Errorf("%v: bit-by-bit mode collapsed distinct values", scheme)
		}
		if run(1.234, true) == run(1.236, true) {
			t.Errorf("%v: rounding collapsed distinct buckets", scheme)
		}
	}
}

// TestKindMismatchPanics checks the FP/integer store discipline the §5
// compiler marking provides.
func TestKindMismatchPanics(t *testing.T) {
	m := NewMachine(Config{Threads: 1, ScheduleSeed: 1, Scheme: HWInc})
	_, err := m.Run(&funcProg{nt: 1,
		setup:  func(t *Thread) { t.AllocStatic("static:w", 1, mem.KindWord) },
		worker: func(t *Thread) { t.StoreF(mem.StaticBase, 1.5) },
	})
	if err == nil || !strings.Contains(err.Error(), "kind mismatch") {
		t.Errorf("err = %v", err)
	}
}

// racyDetProg has a write-write race in which both threads store the SAME
// value, so it is externally deterministic — but instrumentation that
// reads the old value non-atomically can observe a stale old value and
// corrupt the hash (§4.1).
type racyDetProg struct{ x uint64 }

func (p *racyDetProg) Name() string { return "racydet" }
func (p *racyDetProg) Threads() int { return 2 }
func (p *racyDetProg) Setup(t *Thread) {
	p.x = t.AllocStatic("static:x", 1, mem.KindWord)
}
func (p *racyDetProg) Worker(t *Thread) {
	for i := 0; i < 30; i++ {
		t.Store(p.x, uint64(i)*3+7) // both threads write identical sequences
	}
}

// TestNonAtomicInstrumentationFalseAlarm demonstrates the §4.1 caveat: the
// atomic schemes agree with traversal on every run, while the non-atomic
// software scheme eventually diverges from the true state hash under a
// write-write race — a false nondeterminism alarm.
func TestNonAtomicInstrumentationFalseAlarm(t *testing.T) {
	truth := func(seed int64) ihash.Digest {
		m := NewMachine(Config{Threads: 2, ScheduleSeed: seed, Scheme: SWTr, SwitchInterval: 1})
		res, err := m.Run(&racyDetProg{})
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalSH()
	}
	atomicOK := true
	sawCorruption := false
	for seed := int64(0); seed < 30; seed++ {
		want := truth(seed)
		mA := NewMachine(Config{Threads: 2, ScheduleSeed: seed, Scheme: HWInc, SwitchInterval: 1})
		ra, err := mA.Run(&racyDetProg{})
		if err != nil {
			t.Fatal(err)
		}
		if ra.FinalSH() != want {
			atomicOK = false
		}
		mN := NewMachine(Config{Threads: 2, ScheduleSeed: seed, Scheme: SWIncNonAtomic, SwitchInterval: 1})
		rn, err := mN.Run(&racyDetProg{})
		if err != nil {
			t.Fatal(err)
		}
		if rn.FinalSH() != want {
			sawCorruption = true
		}
	}
	if !atomicOK {
		t.Error("atomic incremental hashing diverged from traversal truth")
	}
	if !sawCorruption {
		t.Error("non-atomic instrumentation never corrupted the hash; the §4.1 caveat did not manifest")
	}
}

// TestOutputHashing checks §4.3: the output-stream hash sees content and
// write order.
func TestOutputHashing(t *testing.T) {
	run := func(order bool) uint64 {
		m := NewMachine(Config{Threads: 1, ScheduleSeed: 1, Scheme: HWInc})
		res, err := m.Run(&funcProg{nt: 1, worker: func(t *Thread) {
			if order {
				t.Write([]byte("hello "))
				t.Write([]byte("world"))
			} else {
				t.Write([]byte("world"))
				t.Write([]byte("hello "))
			}
		}})
		if err != nil {
			t.Fatal(err)
		}
		if res.OutputBytes != 11 {
			t.Fatalf("output bytes = %d", res.OutputBytes)
		}
		return res.OutputHash
	}
	if run(true) != run(true) {
		t.Error("same stream hashed differently")
	}
	if run(true) == run(false) {
		t.Error("reordered stream hashed identically")
	}
}

// TestMultiStreamOutput checks per-descriptor stream hashing: streams are
// independent, and the same bytes routed to different descriptors are a
// different output signature.
func TestMultiStreamOutput(t *testing.T) {
	run := func(fd int) *Result {
		m := NewMachine(Config{Threads: 1, ScheduleSeed: 1, Scheme: HWInc})
		res, err := m.Run(&funcProg{nt: 1, worker: func(th *Thread) {
			th.Write([]byte("log line\n"))
			th.WriteFd(fd, []byte("payload"))
		}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(2)
	b := run(3)
	if len(a.Outputs) != 2 {
		t.Fatalf("%d streams", len(a.Outputs))
	}
	if a.Outputs[Stdout] != b.Outputs[Stdout] {
		t.Error("stdout stream differs")
	}
	if a.Outputs[2].Hash != b.Outputs[3].Hash {
		t.Error("identical payloads on different descriptors hash differently")
	}
	if a.OutputHash != a.Outputs[Stdout].Hash {
		t.Error("OutputHash is not the stdout hash")
	}
	if a.OutputBytes != 16 {
		t.Errorf("OutputBytes = %d", a.OutputBytes)
	}
}

// TestCountersSanity checks the cost-model counters on a fixed program.
func TestCountersSanity(t *testing.T) {
	m := NewMachine(Config{Threads: 1, ScheduleSeed: 1, Scheme: HWInc})
	res, err := m.Run(&funcProg{nt: 1,
		setup: func(t *Thread) { t.AllocStatic("static:a", 4, mem.KindWord) },
		worker: func(t *Thread) {
			t.Store(mem.StaticBase, 1)
			t.Store(mem.StaticBase+8, 2)
			_ = t.Load(mem.StaticBase)
			b := t.Malloc("h", 3, mem.KindWord)
			t.Free(b)
			t.Compute(100)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	// Setup stores nothing here; worker: 2 stores, 1 load, 1 malloc(3), 1 free.
	if c.Stores != 2 || c.Loads != 1 {
		t.Errorf("stores=%d loads=%d", c.Stores, c.Loads)
	}
	if c.AllocZeroWords != 3 || c.FreeEraseWords != 3 {
		t.Errorf("zero=%d erase=%d", c.AllocZeroWords, c.FreeEraseWords)
	}
	if c.Checkpoints != 1 || c.CheckpointWords != 4 {
		t.Errorf("checkpoints=%d words=%d", c.Checkpoints, c.CheckpointWords)
	}
	if c.Instr < 100 {
		t.Errorf("Instr = %d", c.Instr)
	}
	if res.MHMStats.HashedStores == 0 {
		t.Error("MHM saw no stores")
	}
}

// TestMachineReusePanics checks the one-run contract.
func TestMachineReusePanics(t *testing.T) {
	m := NewMachine(Config{Threads: 1, ScheduleSeed: 1, Scheme: HWInc})
	if _, err := m.Run(&funcProg{nt: 1}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on reuse")
		}
	}()
	_, _ = m.Run(&funcProg{nt: 1})
}

// TestThreadCountMismatch checks the configuration guard.
func TestThreadCountMismatch(t *testing.T) {
	m := NewMachine(Config{Threads: 2, ScheduleSeed: 1, Scheme: HWInc})
	if _, err := m.Run(&funcProg{nt: 3}); err == nil {
		t.Error("no error on thread-count mismatch")
	}
}

// TestStopHashingThread checks the per-thread start/stop_hashing interface:
// stores made while stopped do not enter the hash, making the final SH
// equal to a run that never performed them.
func TestStopHashingThread(t *testing.T) {
	run := func(doHidden bool) ihash.Digest {
		m := NewMachine(Config{Threads: 1, ScheduleSeed: 1, Scheme: HWInc})
		res, err := m.Run(&funcProg{nt: 1,
			setup: func(t *Thread) { t.AllocStatic("static:a", 2, mem.KindWord) },
			worker: func(t *Thread) {
				t.Store(mem.StaticBase, 5)
				if doHidden {
					t.StopHashing()
					t.Store(mem.StaticBase+8, 77) // analysis-tool write
					t.Store(mem.StaticBase+8, 0)  // restored before re-enable
					t.StartHashing()
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalSH()
	}
	if run(true) != run(false) {
		t.Error("stop_hashing write leaked into the hash")
	}
}

// TestBarrierCheckpointLabels checks checkpoint bookkeeping.
func TestBarrierCheckpointLabels(t *testing.T) {
	p := &funcProg{nt: 2}
	var bar *sched.Barrier
	p.setup = func(t *Thread) {
		bar = t.Machine().NewBarrier("phase")
	}
	p.worker = func(t *Thread) {
		t.BarrierWait(bar)
		t.BarrierWait(bar)
	}
	m := NewMachine(Config{Threads: 2, ScheduleSeed: 1, Scheme: HWInc})
	res, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) != 3 {
		t.Fatalf("%d checkpoints", len(res.Checkpoints))
	}
	if res.Checkpoints[0].Label != "phase" || res.Checkpoints[2].Label != "end" {
		t.Error("labels wrong")
	}
	for i, cp := range res.Checkpoints {
		if cp.Ordinal != i {
			t.Error("ordinals wrong")
		}
	}
}

// TestProgrammerCheckpoint checks §2.3's programmer-specified checking
// points: a single-threaded loop checkpointing each iteration yields one
// checkpoint per iteration plus the end, all deterministic across seeds.
func TestProgrammerCheckpoint(t *testing.T) {
	build := func() Program {
		return &funcProg{nt: 1,
			setup: func(th *Thread) { th.AllocStatic("static:acc", 1, mem.KindWord) },
			worker: func(th *Thread) {
				for i := 0; i < 4; i++ {
					th.Store(mem.StaticBase, uint64(i)*3)
					th.Checkpoint("iter")
				}
			},
		}
	}
	var first []ihash.Digest
	for seed := int64(0); seed < 5; seed++ {
		m := NewMachine(Config{Threads: 1, ScheduleSeed: seed, Scheme: HWInc})
		res, err := m.Run(build())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Checkpoints) != 5 { // 4 iterations + end
			t.Fatalf("%d checkpoints", len(res.Checkpoints))
		}
		if res.Checkpoints[0].Label != "iter" {
			t.Fatal("label")
		}
		v := res.SHVector()
		if seed == 0 {
			first = v
		} else {
			for i := range v {
				if v[i] != first[i] {
					t.Fatalf("seed %d checkpoint %d differs", seed, i)
				}
			}
		}
	}
}

// TestSnapshotAt checks snapshot capture at requested ordinals only.
func TestSnapshotAt(t *testing.T) {
	p := &funcProg{nt: 1,
		setup:  func(t *Thread) { t.AllocStatic("static:a", 1, mem.KindWord) },
		worker: func(t *Thread) { t.Store(mem.StaticBase, 3) },
	}
	m := NewMachine(Config{Threads: 1, ScheduleSeed: 1, Scheme: HWInc, SnapshotAt: map[int]bool{0: true}})
	res, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints[0].Snapshot == nil {
		t.Error("requested snapshot missing")
	}
	if v, ok := res.Checkpoints[0].Snapshot.Word(mem.StaticBase); !ok || v != 3 {
		t.Error("snapshot content wrong")
	}
}

// TestEnvCallsRequireEnv checks the guard against unreplayed randomness.
func TestEnvCallsRequireEnv(t *testing.T) {
	m := NewMachine(Config{Threads: 1, ScheduleSeed: 1, Scheme: HWInc})
	_, err := m.Run(&funcProg{nt: 1, worker: func(t *Thread) { t.Rand() }})
	if err == nil || !strings.Contains(err.Error(), "Config.Env") {
		t.Errorf("err = %v", err)
	}
}

// TestSchemeStrings pins diagnostics.
func TestSchemeStrings(t *testing.T) {
	for s, want := range map[Scheme]string{
		Native: "Native", HWInc: "HW-InstantCheck_Inc", SWInc: "SW-InstantCheck_Inc",
		SWIncNonAtomic: "SW-InstantCheck_Inc(non-atomic)", SWTr: "SW-InstantCheck_Tr",
	} {
		if s.String() != want {
			t.Errorf("%d: %q", s, s.String())
		}
	}
	if Native.Hashing() || !SWTr.Hashing() || !HWInc.Incremental() || SWTr.Incremental() {
		t.Error("scheme predicates")
	}
}
