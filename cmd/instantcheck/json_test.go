package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"instantcheck"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestTable1JSONGolden pins the -json output shape: a fixed-seed small
// campaign must serialize byte-identically to the checked-in golden file.
// The golden regenerates with: go test ./cmd/instantcheck -run Golden -update
func TestTable1JSONGolden(t *testing.T) {
	cfg := instantcheck.ExperimentConfig{
		Runs: 10, Threads: 4, Small: true, BaseSeed: 50, InputSeed: 7,
	}
	var rows []instantcheck.Table1Row
	for _, app := range []string{"fft", "barnes"} { // one det, one ndet workload
		row, err := instantcheck.Table1For(app, cfg)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		rows = append(rows, row)
	}
	got, err := json.MarshalIndent(table1ToJSON(rows), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "table1_small.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("JSON output drifted from golden file %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}

	// The same rows decode back to the wire shape — the -json contract.
	var decoded []table1JSON
	if err := json.Unmarshal(got, &decoded); err != nil {
		t.Fatalf("golden does not round-trip: %v", err)
	}
	if len(decoded) != 2 || decoded[0].App != "fft" || decoded[1].App != "barnes" {
		t.Errorf("decoded rows = %+v", decoded)
	}
	if !decoded[0].DetAsIs || decoded[1].DetAsIs {
		t.Errorf("fft should be det as-is and barnes not: %+v", decoded)
	}
}
