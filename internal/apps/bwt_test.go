package apps

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestBWTRoundTrip property-checks the Burrows-Wheeler transform inverts.
func TestBWTRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, int(n)%100+1)
		for i := range data {
			data[i] = byte(rng.Intn(8)) // small alphabet: many ties
		}
		enc, primary := bwtEncode(data)
		return bytes.Equal(bwtDecode(enc, primary), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestBWTKnownVector pins a classic example.
func TestBWTKnownVector(t *testing.T) {
	enc, primary := bwtEncode([]byte("banana"))
	if got := bwtDecode(enc, primary); string(got) != "banana" {
		t.Errorf("round trip gave %q", got)
	}
	// BWT groups equal characters: "banana" has a run of n's and a's.
	runs := 0
	for i := 1; i < len(enc); i++ {
		if enc[i] == enc[i-1] {
			runs++
		}
	}
	if runs < 2 {
		t.Errorf("BWT(banana) = %q has too few adjacent repeats", enc)
	}
}

// TestMTFRoundTrip property-checks move-to-front inverts.
func TestMTFRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 300 {
			data = data[:300]
		}
		return bytes.Equal(mtfDecode(mtfEncode(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRLERoundTrip property-checks run-length coding inverts, including
// runs longer than the 255 cap.
func TestRLERoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var data []byte
		for len(data) < 400 {
			run := rng.Intn(300) + 1
			v := byte(rng.Intn(4))
			for k := 0; k < run; k++ {
				data = append(data, v)
			}
		}
		return bytes.Equal(rleDecode(rleEncode(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPipelineRoundTrip property-checks the full compressor.
func TestPipelineRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, int(n)%64+1)
		for i := range data {
			data[i] = byte(rng.Intn(6))
		}
		payload, primary := blockCompress(data)
		return bytes.Equal(blockDecompress(payload, primary), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPipelineCompresses checks redundant input actually shrinks.
func TestPipelineCompresses(t *testing.T) {
	data := bytes.Repeat([]byte{1, 1, 1, 1, 2, 2, 2, 2}, 16)
	payload, _ := blockCompress(data)
	if len(payload) >= len(data) {
		t.Errorf("redundant input grew: %d -> %d bytes", len(data), len(payload))
	}
}
