package apps

import "sort"

// The compression pipeline pbzip2 runs per block: a Burrows-Wheeler
// transform, move-to-front coding, and run-length encoding — the core of
// bzip2 (the original finishes with Huffman entropy coding, modeled here
// as a per-word Compute charge). The transform operates on thread-private
// working memory, as bzip2's work areas are, and is exactly invertible:
// the kernel tests decode the program's actual output stream and compare
// it with the input.

// bwtEncode returns the Burrows-Wheeler transform of data and the index of
// the original rotation.
func bwtEncode(data []byte) (out []byte, primary int) {
	n := len(data)
	rot := make([]int, n)
	for i := range rot {
		rot[i] = i
	}
	sort.Slice(rot, func(a, b int) bool {
		ra, rb := rot[a], rot[b]
		for k := 0; k < n; k++ {
			ca := data[(ra+k)%n]
			cb := data[(rb+k)%n]
			if ca != cb {
				return ca < cb
			}
		}
		return ra < rb // total order for identical rotations
	})
	out = make([]byte, n)
	for i, r := range rot {
		out[i] = data[(r+n-1)%n]
		if r == 0 {
			primary = i
		}
	}
	return out, primary
}

// bwtDecode inverts the transform.
func bwtDecode(last []byte, primary int) []byte {
	n := len(last)
	if n == 0 {
		return nil
	}
	// Counting sort of the last column gives, for each position in the
	// last column, its row in the (sorted) first column.
	var counts [256]int
	for _, c := range last {
		counts[c]++
	}
	var starts [256]int
	sum := 0
	for c := 0; c < 256; c++ {
		starts[c] = sum
		sum += counts[c]
	}
	next := make([]int, n)
	var seen [256]int
	for i, c := range last {
		next[starts[c]+seen[c]] = i
		seen[c]++
	}
	out := make([]byte, n)
	p := next[primary]
	for i := 0; i < n; i++ {
		out[i] = last[p]
		p = next[p]
	}
	return out
}

// mtfEncode move-to-front codes data in place against a fresh alphabet.
func mtfEncode(data []byte) []byte {
	var alphabet [256]byte
	for i := range alphabet {
		alphabet[i] = byte(i)
	}
	out := make([]byte, len(data))
	for i, c := range data {
		var j int
		for alphabet[j] != c {
			j++
		}
		out[i] = byte(j)
		copy(alphabet[1:j+1], alphabet[:j])
		alphabet[0] = c
	}
	return out
}

// mtfDecode inverts move-to-front coding.
func mtfDecode(codes []byte) []byte {
	var alphabet [256]byte
	for i := range alphabet {
		alphabet[i] = byte(i)
	}
	out := make([]byte, len(codes))
	for i, j := range codes {
		c := alphabet[j]
		out[i] = c
		copy(alphabet[1:int(j)+1], alphabet[:int(j)])
		alphabet[0] = c
	}
	return out
}

// rleEncode run-length encodes as (count, value) pairs with count <= 255.
func rleEncode(data []byte) []byte {
	var out []byte
	i := 0
	for i < len(data) {
		v := data[i]
		run := 1
		for i+run < len(data) && run < 255 && data[i+run] == v {
			run++
		}
		out = append(out, byte(run), v)
		i += run
	}
	return out
}

// rleDecode inverts rleEncode.
func rleDecode(pairs []byte) []byte {
	var out []byte
	for i := 0; i+1 < len(pairs); i += 2 {
		run := int(pairs[i])
		for k := 0; k < run; k++ {
			out = append(out, pairs[i+1])
		}
	}
	return out
}

// blockCompress runs the full pipeline on one block.
func blockCompress(data []byte) (payload []byte, primary int) {
	bwt, primary := bwtEncode(data)
	return rleEncode(mtfEncode(bwt)), primary
}

// blockDecompress inverts blockCompress.
func blockDecompress(payload []byte, primary int) []byte {
	return bwtDecode(mtfDecode(rleDecode(payload)), primary)
}
