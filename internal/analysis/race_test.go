package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the race golden file from current analyzer output")

// renderRaceReport renders a report in the pinned golden format: one
// line per pair (suppressed ones marked), in the engine's sort order.
func renderRaceReport(rep *RaceReport) string {
	var b strings.Builder
	for _, p := range rep.Pairs {
		b.WriteString(p.String())
		if p.Suppressed {
			b.WriteString(" (suppressed)")
		}
		b.WriteString("\n")
	}
	return b.String()
}

func loadApps(t *testing.T) *Package {
	t.Helper()
	dir := filepath.Join("..", "apps")
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	return pkg
}

// TestRaceAppsGolden pins the full pair inventory (suppressed pairs
// included) of the apps package. Any engine or annotation change shows
// up as a diff against testdata/race_apps.golden; regenerate with
// go test -run TestRaceAppsGolden -update after reviewing the diff.
func TestRaceAppsGolden(t *testing.T) {
	rep := RaceCheck(loadApps(t))
	got := renderRaceReport(rep)

	golden := filepath.Join("testdata", "race_apps.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("race report differs from %s (run with -update after review)\n%s",
			golden, diffLines(string(want), got))
	}
}

// diffLines renders a crude line diff, enough to localize a mismatch.
func diffLines(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	var b strings.Builder
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			if w != "" {
				b.WriteString("-" + w + "\n")
			}
			if g != "" {
				b.WriteString("+" + g + "\n")
			}
		}
	}
	return b.String()
}

// TestRaceAppsClassPolicy checks the report against the paper's Table 1
// determinism classes: fully deterministic (class 1) apps must come out
// clean after their benign-race annotations, while the apps the paper
// flags as racy or nondeterministic (classes 3/4) must keep at least
// one unsuppressed pair. streamcluster is the deliberate exception: the
// open-flag order violation the paper's tool found stays visible.
func TestRaceAppsClassPolicy(t *testing.T) {
	rep := RaceCheck(loadApps(t))
	active := make(map[string][]RacePair)
	for _, p := range rep.Active() {
		active[p.Program] = append(active[p.Program], p)
	}

	for _, prog := range []string{
		"blackscholesProg", "fftProg", "luProg", "radixProg",
		"swaptionsProg", "volrendProg", "fluidanimateProg",
	} {
		if pairs := active[prog]; len(pairs) != 0 {
			t.Errorf("class-1 program %s has %d unsuppressed pairs, want 0:\n%s",
				prog, len(pairs), renderPairs(pairs))
		}
	}

	sc := active["streamclusterProg"]
	if len(sc) != 1 || sc[0].Region != "static:sc.open" {
		t.Errorf("streamclusterProg: want exactly the sc.open order-violation pair, got:\n%s", renderPairs(sc))
	}

	for _, prog := range []string{
		"barnesProg", "cannealProg", "choleskyProg",
		"pbzip2Prog", "radiosityProg", "sphinx3Prog",
	} {
		if len(active[prog]) == 0 {
			t.Errorf("racy/nondeterministic program %s has no unsuppressed pairs", prog)
		}
	}
}

func renderPairs(pairs []RacePair) string {
	var b strings.Builder
	for _, p := range pairs {
		b.WriteString("  " + p.String() + "\n")
	}
	return b.String()
}

// TestRaceDeterministic checks the report bytes are identical across
// repeated runs over fresh loads — the byte-determinism contract of the
// icvet race CLI.
func TestRaceDeterministic(t *testing.T) {
	first := renderRaceReport(RaceCheck(loadApps(t)))
	for i := 0; i < 2; i++ {
		again := renderRaceReport(RaceCheck(loadApps(t)))
		if again != first {
			t.Fatalf("run %d differs from first run:\n%s", i+2, diffLines(first, again))
		}
	}
}
