package replay

// Serialization for the recorded replay substrate. A fleet campaign records
// once on the coordinator and replays everywhere else, so the recorded
// allocation-address log and env-call streams must travel: this file gives
// both a deterministic binary form (identical content always serializes to
// identical bytes, so a content-addressed store can key blobs by digest and
// ship each recording exactly once per worker) and AddrLog a SHA-256 digest
// computed over that form.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
)

// addrLogMagic heads a serialized AddrLog; a version bump is a format break.
const addrLogMagic = "icaddrlog1"

// envMagic heads a serialized Env stream set.
const envMagic = "icenv1"

// Digest is the SHA-256 of a deterministic serialization, the key of the
// fleet's content-addressed replay-log store.
type Digest [sha256.Size]byte

// String renders the digest as lowercase hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// ParseDigest reads the hex form back.
func ParseDigest(s string) (Digest, error) {
	var d Digest
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != sha256.Size {
		return d, fmt.Errorf("replay: bad digest %q", s)
	}
	copy(d[:], b)
	return d, nil
}

// DigestBytes hashes an arbitrary serialized blob — the helper the blob
// store uses to verify fetched content against its key.
func DigestBytes(b []byte) Digest { return sha256.Sum256(b) }

// appendUvarint appends v in unsigned varint form.
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// appendString appends a length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// reader walks a serialized buffer with error latching, so decode paths
// check once at the end instead of after every field.
type reader struct {
	b   []byte
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = fmt.Errorf("replay: truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)) < n {
		r.err = fmt.Errorf("replay: truncated string (want %d bytes, have %d)", n, len(r.b))
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *reader) magic(want string) {
	if r.err != nil {
		return
	}
	if len(r.b) < len(want) || string(r.b[:len(want)]) != want {
		r.err = fmt.Errorf("replay: bad magic (want %q)", want)
		return
	}
	r.b = r.b[len(want):]
}

// MarshalBinary serializes the log deterministically: entries sorted by
// (site, seq), so two logs with equal content produce equal bytes and
// therefore equal digests no matter what order recording inserted them.
func (l *AddrLog) MarshalBinary() ([]byte, error) {
	keys := make([]addrKey, 0, len(l.addrs))
	for k := range l.addrs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].site != keys[j].site {
			return keys[i].site < keys[j].site
		}
		return keys[i].seq < keys[j].seq
	})
	b := []byte(addrLogMagic)
	b = appendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = appendString(b, k.site)
		b = appendUvarint(b, uint64(k.seq))
		b = appendUvarint(b, l.addrs[k])
	}
	return b, nil
}

// UnmarshalAddrLog reads the binary form back into a fresh log.
func UnmarshalAddrLog(b []byte) (*AddrLog, error) {
	r := &reader{b: b}
	r.magic(addrLogMagic)
	n := r.uvarint()
	l := &AddrLog{addrs: make(map[addrKey]uint64, n)}
	for i := uint64(0); i < n && r.err == nil; i++ {
		site := r.string()
		seq := r.uvarint()
		addr := r.uvarint()
		if r.err == nil {
			l.addrs[addrKey{site, int(seq)}] = addr
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("replay: unmarshal addr log: %w", r.err)
	}
	if uint64(len(l.addrs)) != n {
		return nil, fmt.Errorf("replay: addr log declares %d entries, decoded %d (duplicate keys)", n, len(l.addrs))
	}
	return l, nil
}

// Digest returns the SHA-256 of the log's deterministic serialization —
// computed once at record time, then used as the content address under
// which the fleet ships the log to workers.
func (l *AddrLog) Digest() (Digest, error) {
	b, err := l.MarshalBinary()
	if err != nil {
		return Digest{}, err
	}
	return DigestBytes(b), nil
}

// MarshalBinary serializes the env's recorded call streams
// deterministically: streams sorted by (tid, name), values in call order.
// Cursor state and the generator are not part of the form — a deserialized
// env exists to be Forked by replay runs, which reset both.
func (e *Env) MarshalBinary() ([]byte, error) {
	keys := make([]envKey, 0, len(e.streams))
	for k := range e.streams {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].tid != keys[j].tid {
			return keys[i].tid < keys[j].tid
		}
		return keys[i].name < keys[j].name
	})
	b := []byte(envMagic)
	b = appendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = appendUvarint(b, uint64(k.tid))
		b = appendString(b, k.name)
		s := e.streams[k]
		b = appendUvarint(b, uint64(len(s)))
		for _, v := range s {
			b = appendUvarint(b, v)
		}
	}
	return b, nil
}

// UnmarshalEnv reads the binary form back. The returned env carries only
// the recorded streams: it must be Forked (which installs a fresh
// generator and zero cursors) before replay runs draw from it, exactly how
// core.Runner.Replay consumes a recorded env.
func UnmarshalEnv(b []byte) (*Env, error) {
	r := &reader{b: b}
	r.magic(envMagic)
	n := r.uvarint()
	e := &Env{
		streams: make(map[envKey][]uint64, n),
		cursor:  make(map[envKey]int, n),
	}
	for i := uint64(0); i < n && r.err == nil; i++ {
		tid := r.uvarint()
		name := r.string()
		vals := r.uvarint()
		s := make([]uint64, 0, vals)
		for j := uint64(0); j < vals && r.err == nil; j++ {
			s = append(s, r.uvarint())
		}
		if r.err == nil {
			k := envKey{int(tid), name}
			e.streams[k] = s
			e.cursor[k] = 0
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("replay: unmarshal env: %w", r.err)
	}
	return e, nil
}
