// Command icvet runs the instrumentation-discipline analyzers over
// instantcheck program packages and prints file:line findings.
//
// Usage:
//
//	icvet [-run names] [-nosuppress] [-list] packages...
//
// Each package argument is a directory or a directory followed by /...
// (recursively, skipping testdata). Exit status is 0 when no findings are
// reported, 1 when at least one finding is reported, and 2 on usage or
// load errors.
//
// The five analyzers — directstate, atomicity, storekind, lockpair,
// ignoresite — statically check the contract the paper's SW-InstantCheck
// schemes assume of instrumented programs (§4.1, §5): every shared store
// is visible to the hashing unit, read-modify-writes are atomic, FP and
// integer stores match their blocks' declared kinds, lock and hashing
// regions pair up, and ignore rules name real allocation sites. Findings
// can be suppressed with //icvet:ignore comments; see the analysis
// package's documentation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"instantcheck/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "race" {
		return runRace(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("icvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runList := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	noSuppress := fs.Bool("nosuppress", false, "report findings even where //icvet:ignore comments suppress them")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: icvet [-run names] [-nosuppress] [-list] packages...")
		fmt.Fprintln(stderr, "       icvet race [-json] [-nosuppress] packages...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	analyzers := analysis.All()
	if *runList != "" {
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "icvet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	dirs, err := analysis.ExpandPatterns(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "icvet: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(dirs[0])
	if err != nil {
		fmt.Fprintf(stderr, "icvet: %v\n", err)
		return 2
	}

	// Accumulate across every package before printing: a global sort by
	// file, line, column then analyzer makes the report byte-identical
	// regardless of package argument order or load interleaving.
	opt := analysis.RunOptions{
		NoSuppress:  *noSuppress,
		ReportStale: *runList == "",
	}
	var diags []analysis.Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(stderr, "icvet: %v\n", err)
			return 2
		}
		diags = append(diags, analysis.RunAnalyzers(pkg, analyzers, opt)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	cwd, _ := os.Getwd()
	for _, d := range diags {
		fmt.Fprintf(stdout, "%s: [%s] %s\n", relPos(cwd, d), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relPos renders a diagnostic position with the file path relative to the
// working directory when that is shorter.
func relPos(cwd string, d analysis.Diagnostic) string {
	file := d.Pos.Filename
	if cwd != "" {
		if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return fmt.Sprintf("%s:%d:%d", file, d.Pos.Line, d.Pos.Column)
}
