package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestLoaderTypeChecks checks the stdlib-only loader fully type-checks
// representative packages of the module: the apps corpus (imports sim,
// mem, sched), an example main package, and the module root.
func TestLoaderTypeChecks(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		dir  string
		path string
	}{
		{"../apps", "instantcheck/internal/apps"},
		{"../../examples/quickstart", "instantcheck/examples/quickstart"},
		{"../../", "instantcheck"},
	} {
		pkg, err := loader.Load(tc.dir)
		if err != nil {
			t.Fatalf("Load(%s): %v", tc.dir, err)
		}
		if pkg.Path != tc.path {
			t.Errorf("Load(%s): path %q, want %q", tc.dir, pkg.Path, tc.path)
		}
		if len(pkg.Files) == 0 {
			t.Errorf("Load(%s): no files", tc.dir)
		}
		if pkg.Types == nil || pkg.Info == nil || len(pkg.Info.Uses) == 0 {
			t.Errorf("Load(%s): missing type information", tc.dir)
		}
	}
}

// TestExpandPatterns checks /... expansion recurses but skips testdata
// directories (golden fixtures must never be linted as part of the tree).
func TestExpandPatterns(t *testing.T) {
	dirs, err := ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var sawSelf, sawFixtureapp bool
	for _, d := range dirs {
		if strings.Contains(filepath.ToSlash(d), "testdata") {
			t.Errorf("ExpandPatterns descended into testdata: %s", d)
		}
		switch filepath.Base(d) {
		case ".", "analysis":
			sawSelf = true
		case "fixtureapp":
			sawFixtureapp = true
		}
	}
	if !sawSelf || !sawFixtureapp {
		t.Errorf("ExpandPatterns missed expected packages (analysis=%v fixtureapp=%v): %v", sawSelf, sawFixtureapp, dirs)
	}
}

// TestCorpusClean checks the real program corpus — the apps package and
// every example — passes all five analyzers with suppressions honored:
// the acceptance bar the tree is held to by make lint.
func TestCorpusClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ExpandPatterns([]string{"../apps", "../../examples/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			t.Fatalf("Load(%s): %v", dir, err)
		}
		for _, d := range RunAnalyzers(pkg, All(), RunOptions{}) {
			t.Errorf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
}
