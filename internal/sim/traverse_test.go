package sim

import (
	"testing"

	"instantcheck/internal/replay"
)

// runFuzzShards is runFuzz with the traversal shard count pinned, so the
// checkpoint sweep's sequential and parallel paths can be compared on the
// same program and schedule.
func runFuzzShards(t *testing.T, scheme Scheme, progSeed uint64, schedSeed int64, addrLog *replay.AddrLog, shards int, roundFP bool) *Result {
	t.Helper()
	m := NewMachine(Config{
		Threads:        3,
		ScheduleSeed:   schedSeed,
		Scheme:         scheme,
		AddrLog:        addrLog,
		TraverseShards: shards,
		RoundFP:        roundFP,
	})
	res, err := m.Run(newFuzz(3, progSeed, 40))
	if err != nil {
		t.Fatalf("fuzz run (shards=%d): %v", shards, err)
	}
	return res
}

// TestParallelTraversalMatchesSequential is the correctness property behind
// the parallel checkpoint sweep: because ⊕ is commutative and associative,
// sharding the live runs across goroutines and combining per-shard partial
// digests must produce a hash bit-identical to the sequential sweep — and
// both must equal the incrementally maintained State Hash. The test runs a
// randomized allocate/store/free/lock workload over many program and
// schedule seeds and compares all three at every checkpoint. Run it under
// -race to also validate that shard workers share no mutable state.
func TestParallelTraversalMatchesSequential(t *testing.T) {
	for _, roundFP := range []bool{false, true} {
		for progSeed := uint64(1); progSeed <= 6; progSeed++ {
			for schedSeed := int64(-2); schedSeed <= 2; schedSeed++ {
				log := replay.NewAddrLog()
				inc := runFuzzShards(t, HWInc, progSeed, schedSeed, log, 0, roundFP)
				seq := runFuzzShards(t, SWTr, progSeed, schedSeed, log, 1, roundFP)
				// Forcing more shards than this machine has CPUs is fine:
				// the point is exercising the concurrent path even on a
				// single-core host.
				par := runFuzzShards(t, SWTr, progSeed, schedSeed, log, 4, roundFP)

				if len(seq.Checkpoints) != len(par.Checkpoints) || len(seq.Checkpoints) != len(inc.Checkpoints) {
					t.Fatalf("roundFP=%v seeds=(%d,%d): checkpoint counts differ: inc=%d seq=%d par=%d",
						roundFP, progSeed, schedSeed, len(inc.Checkpoints), len(seq.Checkpoints), len(par.Checkpoints))
				}
				for i := range seq.Checkpoints {
					s, p, h := seq.Checkpoints[i].SH, par.Checkpoints[i].SH, inc.Checkpoints[i].SH
					if s != p {
						t.Fatalf("roundFP=%v seeds=(%d,%d) checkpoint %d: sequential %s != parallel %s",
							roundFP, progSeed, schedSeed, i, s, p)
					}
					if s != h {
						t.Fatalf("roundFP=%v seeds=(%d,%d) checkpoint %d: traversal %s != incremental %s",
							roundFP, progSeed, schedSeed, i, s, h)
					}
				}
			}
		}
	}
}
