// Package replay controls the sources of input nondeterminism that
// InstantCheck must hold fixed so that any hash difference between runs can
// only come from thread interleaving (paper §5):
//
//   - dynamic memory allocation: addresses returned by malloc are logged on
//     the first run and replayed on subsequent runs, keyed by (allocation
//     site, per-site sequence number);
//   - nondeterministic library calls (rand, gettimeofday): results are
//     treated as program input — recorded once, then returned identically on
//     every subsequent run. As with any input, tests may vary them between
//     *campaigns* to increase coverage, but within one determinism-checking
//     campaign they are fixed.
package replay

import (
	"fmt"
	"math/rand"
)

// AddrLog records and replays heap allocation addresses across runs. The
// first run populates the log; later runs look addresses up, so that the
// j-th allocation at a given site lands at the same address regardless of
// which thread performs it or when. This is the paper's interception of the
// dynamic allocator, "treating addresses returned by malloc as program
// input and capturing it as done for deterministic replay".
type AddrLog struct {
	addrs map[addrKey]uint64
}

type addrKey struct {
	site string
	seq  int
}

// NewAddrLog returns an empty log.
func NewAddrLog() *AddrLog {
	return &AddrLog{addrs: make(map[addrKey]uint64)}
}

// Lookup returns the logged address for the seq-th allocation at site.
func (l *AddrLog) Lookup(site string, seq int) (uint64, bool) {
	a, ok := l.addrs[addrKey{site, seq}]
	return a, ok
}

// Record stores the address chosen for the seq-th allocation at site. It is
// an error to re-record a key with a different address — that would mean the
// replay hook was bypassed.
func (l *AddrLog) Record(site string, seq int, addr uint64) {
	k := addrKey{site, seq}
	if prev, ok := l.addrs[k]; ok && prev != addr {
		panic(fmt.Sprintf("replay: allocation %s#%d re-recorded at %#x (was %#x)", site, seq, addr, prev))
	}
	l.addrs[k] = addr
}

// Len returns the number of logged allocations.
func (l *AddrLog) Len() int { return len(l.addrs) }

// Clone returns an independent copy of the log. A campaign's replay runs
// can execute concurrently when each holds its own clone: the clones start
// from the same recorded addresses, and any growth (a run that reaches an
// allocation the recording run never performed) stays private to that run,
// so no run can observe another's scheduling.
func (l *AddrLog) Clone() *AddrLog {
	c := &AddrLog{addrs: make(map[addrKey]uint64, len(l.addrs))}
	for k, v := range l.addrs {
		c.addrs[k] = v
	}
	return c
}

// Env records and replays the results of nondeterministic library calls.
// Each call stream is keyed by (thread id, call name); within a stream,
// the i-th call returns the i-th recorded value. On the recording run the
// values come from a seeded generator (the fixed "input"); on replay runs
// the same values are returned regardless of interleaving.
type Env struct {
	src     *rand.Rand
	streams map[envKey][]uint64
	cursor  map[envKey]int
	record  bool
}

type envKey struct {
	tid  int
	name string
}

// NewEnv returns an environment whose first (recording) run draws values
// from a generator seeded with inputSeed. inputSeed is part of the test
// input: changing it changes the program input, not the interleaving.
func NewEnv(inputSeed int64) *Env {
	return &Env{
		src:     rand.New(rand.NewSource(inputSeed)),
		streams: make(map[envKey][]uint64),
		cursor:  make(map[envKey]int),
		record:  true,
	}
}

// BeginRun resets the per-run cursors. The first BeginRun starts the
// recording run; every later one replays.
func (e *Env) BeginRun() {
	for k := range e.cursor {
		e.cursor[k] = 0
	}
	// After any values have been recorded, switch to replay mode for
	// streams that already exist; unseen streams continue recording, which
	// handles threads that take different paths (their extra calls are
	// appended, mirroring the paper's log-growing behaviour).
}

// Next returns the next value of the named call stream for thread tid.
func (e *Env) Next(tid int, name string) uint64 {
	k := envKey{tid, name}
	i := e.cursor[k]
	e.cursor[k] = i + 1
	s := e.streams[k]
	if i < len(s) {
		return s[i]
	}
	v := e.src.Uint64()
	e.streams[k] = append(s, v)
	return v
}

// Fork returns an independent replay view of the environment: the streams
// recorded so far are copied, the cursors start at zero, and any draw past
// the end of a recorded stream (a thread that takes a path the recording
// run never took) comes from a fresh generator seeded with seed. Forks let
// a campaign's replay runs execute concurrently — every fork replays the
// same recorded input, and fresh draws are a function of the fork's own
// seed rather than of how the sibling runs interleave.
func (e *Env) Fork(seed int64) *Env {
	f := &Env{
		src:     rand.New(rand.NewSource(seed)),
		streams: make(map[envKey][]uint64, len(e.streams)),
		cursor:  make(map[envKey]int, len(e.streams)),
	}
	for k, s := range e.streams {
		f.streams[k] = append([]uint64(nil), s...)
		f.cursor[k] = 0
	}
	return f
}

// Rand returns the next replayed rand() result for thread tid.
func (e *Env) Rand(tid int) uint64 { return e.Next(tid, "rand") }

// Gettimeofday returns the next replayed gettimeofday() result for thread
// tid, shaped as a plausible monotone microsecond timestamp.
func (e *Env) Gettimeofday(tid int) int64 {
	base := int64(1_288_000_000_000_000) // fixed epoch: the input
	jitter := int64(e.Next(tid, "gettimeofday") % 1_000_000)
	return base + jitter
}
