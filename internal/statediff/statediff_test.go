package statediff

import (
	"math"
	"strings"
	"testing"

	"instantcheck/internal/mem"
)

// snap builds a snapshot from (block, values) specs.
func snap(blocks []*mem.Block, words map[uint64]uint64) *mem.Snapshot {
	return mem.NewSnapshot(blocks, words)
}

func blk(base uint64, words int, site string, seq int, kind mem.Kind) *mem.Block {
	return &mem.Block{Base: base, Words: words, Site: site, Seq: seq, Kind: kind, Live: true}
}

func TestDiffIdentical(t *testing.T) {
	b := []*mem.Block{blk(0x1000, 2, "s", 0, mem.KindWord)}
	w := map[uint64]uint64{0x1000: 1, 0x1008: 2}
	if d := Diff(snap(b, w), snap(b, w)); len(d) != 0 {
		t.Errorf("diffs on identical states: %v", d)
	}
}

func TestDiffAttribution(t *testing.T) {
	blocks := []*mem.Block{
		blk(0x1000, 4, "alloc.go:10", 0, mem.KindWord),
		blk(0x2000, 2, "alloc.go:20", 3, mem.KindFloat),
	}
	a := snap(blocks, map[uint64]uint64{
		0x1000: 1, 0x1008: 2, 0x1010: 3, 0x1018: 4,
		0x2000: math.Float64bits(1.5), 0x2008: math.Float64bits(2.5),
	})
	b := snap(blocks, map[uint64]uint64{
		0x1000: 1, 0x1008: 99, 0x1010: 3, 0x1018: 4,
		0x2000: math.Float64bits(1.5), 0x2008: math.Float64bits(7.5),
	})
	diffs := Diff(a, b)
	if len(diffs) != 2 {
		t.Fatalf("%d diffs", len(diffs))
	}
	d0 := diffs[0]
	if d0.Addr != 0x1008 || d0.Site != "alloc.go:10" || d0.Offset != 1 || d0.A != 2 || d0.B != 99 {
		t.Errorf("d0 = %+v", d0)
	}
	d1 := diffs[1]
	if d1.Site != "alloc.go:20" || d1.Seq != 3 || d1.Offset != 1 || d1.Kind != mem.KindFloat {
		t.Errorf("d1 = %+v", d1)
	}
	// Float rendering shows float values; word rendering shows hex.
	if !strings.Contains(d1.Format(), "2.5 != 7.5") {
		t.Errorf("float format: %s", d1.Format())
	}
	if !strings.Contains(d0.Format(), "0x2 != 0x63") {
		t.Errorf("word format: %s", d0.Format())
	}
}

func TestDiffFootprintDivergence(t *testing.T) {
	shared := blk(0x1000, 1, "s", 0, mem.KindWord)
	onlyA := blk(0x3000, 1, "extra", 1, mem.KindWord)
	a := snap([]*mem.Block{shared, onlyA}, map[uint64]uint64{0x1000: 5, 0x3000: 9})
	b := snap([]*mem.Block{shared}, map[uint64]uint64{0x1000: 5})
	diffs := Diff(a, b)
	if len(diffs) != 1 {
		t.Fatalf("%d diffs", len(diffs))
	}
	if diffs[0].OnlyIn != "A" || diffs[0].Site != "extra" {
		t.Errorf("%+v", diffs[0])
	}
	if !strings.Contains(diffs[0].Format(), "only in state A") {
		t.Errorf("format: %s", diffs[0].Format())
	}
}

func TestDiffUnattributed(t *testing.T) {
	a := snap(nil, map[uint64]uint64{0x5000: 1})
	b := snap(nil, map[uint64]uint64{0x5000: 2})
	diffs := Diff(a, b)
	if len(diffs) != 1 || diffs[0].Site != "?" {
		t.Errorf("%+v", diffs)
	}
}

func TestSummarize(t *testing.T) {
	blocks := []*mem.Block{
		blk(0x1000, 8, "big", 0, mem.KindWord),
		blk(0x2000, 2, "small", 0, mem.KindWord),
	}
	wa := map[uint64]uint64{}
	wb := map[uint64]uint64{}
	for i := 0; i < 8; i++ {
		wa[0x1000+uint64(i)*8] = 1
		wb[0x1000+uint64(i)*8] = 1
	}
	// 3 diffs in big (offsets 1,3,5), 1 in small (offset 0).
	for _, off := range []uint64{1, 3, 5} {
		wb[0x1000+off*8] = 42
	}
	wa[0x2000], wb[0x2000] = 7, 8
	wa[0x2008], wb[0x2008] = 9, 9

	sum := Summarize(Diff(snap(blocks, wa), snap(blocks, wb)))
	if len(sum) != 2 {
		t.Fatalf("%d groups", len(sum))
	}
	if sum[0].Site != "big#0" || sum[0].Words != 3 {
		t.Errorf("first group %+v", sum[0])
	}
	if got := sum[0].Offsets; len(got) != 3 || got[0] != 1 || got[2] != 5 {
		t.Errorf("offsets %v", got)
	}
	if sum[1].Site != "small#0" || sum[1].Words != 1 {
		t.Errorf("second group %+v", sum[1])
	}
}

func TestRender(t *testing.T) {
	blocks := []*mem.Block{blk(0x1000, 2, "site", 0, mem.KindWord)}
	a := snap(blocks, map[uint64]uint64{0x1000: 1, 0x1008: 2})
	b := snap(blocks, map[uint64]uint64{0x1000: 9, 0x1008: 8})
	out := Render(Diff(a, b), 1)
	if !strings.Contains(out, "2 differing words") {
		t.Error("missing count:", out)
	}
	if !strings.Contains(out, "site site#0") {
		t.Error("missing summary:", out)
	}
	if !strings.Contains(out, "… 1 more") {
		t.Error("missing truncation marker:", out)
	}
	if Render(nil, 5) != "0 differing words\n" {
		t.Error("empty render")
	}
}
