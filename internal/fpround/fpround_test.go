package fpround

import (
	"math"
	"testing"
	"testing/quick"
)

// TestOffPassThrough checks the disabled policy is bit-exact.
func TestOffPassThrough(t *testing.T) {
	f := func(bits uint64) bool { return None.RoundBits(bits) == bits }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestIdempotent property-checks that rounding twice equals rounding once —
// required for hash-erasure to cancel exactly.
func TestIdempotent(t *testing.T) {
	policies := []Policy{
		Default,
		NewFloorDecimal(0), NewFloorDecimal(1), NewFloorDecimal(6),
		NewZeroMantissa(8), NewZeroMantissa(20), NewZeroMantissa(52),
	}
	f := func(bits uint64) bool {
		v := math.Float64frombits(bits)
		for _, p := range policies {
			once := p.Round(v)
			twice := p.Round(once)
			if math.Float64bits(once) != math.Float64bits(twice) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestFloorDecimalCollapsesSmallDiffs checks the paper's default (floor to
// 0.001) discards the small absolute differences FP reductions produce.
func TestFloorDecimalCollapsesSmallDiffs(t *testing.T) {
	p := Default
	cases := []struct{ a, b float64 }{
		{1.23456789, 1.23456790},
		{1.2340000001, 1.2340000002},
		{-5.4321000001, -5.4321000009},
		{100.5009999999, 100.5009999991},
	}
	for _, c := range cases {
		if p.Round(c.a) != p.Round(c.b) {
			t.Errorf("Round(%v)=%v != Round(%v)=%v", c.a, p.Round(c.a), c.b, p.Round(c.b))
		}
	}
	// And it must preserve differences at or above the bucket size.
	if p.Round(1.234) == p.Round(1.236) {
		t.Error("distinct milli-buckets collapsed")
	}
}

// TestFloorDecimalValues pins concrete flooring behavior.
func TestFloorDecimalValues(t *testing.T) {
	p := NewFloorDecimal(3)
	cases := []struct{ in, want float64 }{
		{1.23456, 1.234},
		{-1.23456, -1.235}, // floor, not truncate
		{0.0004, 0},
		{-0.0004, -0.001},
		{2, 2},
	}
	for _, c := range cases {
		if got := p.Round(c.in); got != c.want {
			t.Errorf("Round(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestZeroMantissa checks the mask semantics: only mantissa bits change,
// and values whose difference lies in the cleared bits collapse.
func TestZeroMantissa(t *testing.T) {
	p := NewZeroMantissa(20)
	a := 1.0 + math.Ldexp(1, -40) // differs from 1.0 below bit 20 of the mantissa
	if p.Round(a) != p.Round(1.0) {
		t.Error("sub-mask difference not discarded")
	}
	b := 1.5 // high mantissa bit: must be preserved
	if p.Round(b) == p.Round(1.0) {
		t.Error("high mantissa bits were destroyed")
	}
	// Sign and exponent untouched.
	f := func(bits uint64) bool {
		v := math.Float64frombits(bits)
		if math.IsNaN(v) {
			return true
		}
		r := math.Float64bits(p.Round(v))
		return r>>52 == bits>>52 // sign+exponent preserved
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestNaNCanonicalized checks distinct NaN payloads collapse under any
// enabled policy.
func TestNaNCanonicalized(t *testing.T) {
	nan1 := math.Float64frombits(0x7ff8000000000001)
	nan2 := math.Float64frombits(0x7ff8000000abcdef)
	for _, p := range []Policy{Default, NewZeroMantissa(4)} {
		r1 := math.Float64bits(p.Round(nan1))
		r2 := math.Float64bits(p.Round(nan2))
		if r1 != r2 {
			t.Errorf("%v: NaN payloads not canonicalized: %x vs %x", p.Mode(), r1, r2)
		}
	}
}

// TestInfinityPreserved checks infinities survive rounding.
func TestInfinityPreserved(t *testing.T) {
	for _, p := range []Policy{Default, NewZeroMantissa(10)} {
		if !math.IsInf(p.Round(math.Inf(1)), 1) {
			t.Errorf("%v: +Inf lost", p.Mode())
		}
		if !math.IsInf(p.Round(math.Inf(-1)), -1) {
			t.Errorf("%v: -Inf lost", p.Mode())
		}
	}
}

// TestNegativeZeroNormalized checks floor-rounding never leaves a -0.0 bit
// pattern (which would hash differently from +0.0).
func TestNegativeZeroNormalized(t *testing.T) {
	p := Default
	got := p.Round(math.Copysign(0.0004, -1))
	if math.Float64bits(got) == math.Float64bits(math.Copysign(0, -1)) {
		t.Error("floor produced -0.0")
	}
}

// TestParamClamping checks constructor clamps.
func TestParamClamping(t *testing.T) {
	if NewZeroMantissa(-3).Param() != 0 || NewZeroMantissa(99).Param() != 52 {
		t.Error("ZeroMantissa clamp")
	}
	if NewFloorDecimal(-1).Param() != 0 || NewFloorDecimal(30).Param() != 15 {
		t.Error("FloorDecimal clamp")
	}
}

// TestModeStrings pins the mode names.
func TestModeStrings(t *testing.T) {
	if Off.String() != "off" || ZeroMantissa.String() != "zero-mantissa" || FloorDecimal.String() != "floor-decimal" {
		t.Error("mode strings")
	}
	if None.Enabled() || !Default.Enabled() {
		t.Error("Enabled()")
	}
}

// TestRoundBitsMatchesRound checks the raw-bit entry point agrees with the
// float entry point, the property the MHM datapath relies on.
func TestRoundBitsMatchesRound(t *testing.T) {
	p := Default
	f := func(bits uint64) bool {
		return p.RoundBits(bits) == math.Float64bits(p.Round(math.Float64frombits(bits)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
