package instantcheck

import (
	"fmt"
	"sort"
	"strings"

	"instantcheck/internal/apps"
	"instantcheck/internal/explore"
)

// Workload is a registry entry for one of the paper's 17 evaluation
// applications.
type Workload = apps.App

// WorkloadOptions configures a workload build.
type WorkloadOptions = apps.Options

// BugKind selects one of the Figure 7 seeded bugs.
type BugKind = apps.BugKind

// Seeded bug kinds (Figure 7).
const (
	// BugNone disables seeding.
	BugNone = apps.BugNone
	// BugSemantic is waterNS's Figure 7(a) bug.
	BugSemantic = apps.BugSemantic
	// BugAtomicity is waterSP's Figure 7(b) bug.
	BugAtomicity = apps.BugAtomicity
	// BugOrder is radix's Figure 7(c) bug.
	BugOrder = apps.BugOrder
)

// Workloads returns the 17 applications in Table 1 order.
func Workloads() []*Workload { return apps.Registry() }

// WorkloadByName returns the named application, or nil.
func WorkloadByName(name string) *Workload { return apps.ByName(name) }

// ExperimentConfig scales the experiment drivers. The zero value selects
// the paper's setup: 30 runs, 8 threads, full-size inputs.
type ExperimentConfig struct {
	// Runs per campaign (default 30, as in the paper).
	Runs int
	// Threads per run (default 8, as in the paper).
	Threads int
	// Small selects reduced inputs (unit-test scale). Checkpoint counts
	// then differ from the paper; classes and shapes do not.
	Small bool
	// BaseSeed derives the schedule seeds.
	BaseSeed int64
	// InputSeed fixes the replayed input streams.
	InputSeed int64
}

func (c ExperimentConfig) campaign() Campaign {
	return Campaign{
		Runs:             c.Runs,
		Threads:          c.Threads,
		BaseScheduleSeed: c.BaseSeed,
		InputSeed:        c.InputSeed,
	}
}

func (c ExperimentConfig) options() WorkloadOptions {
	return WorkloadOptions{Threads: c.Threads, Small: c.Small}
}

// Table1Row reproduces one row of the paper's Table 1.
type Table1Row struct {
	// App and Source identify the workload.
	App string
	// Source is the originating suite.
	Source string
	// FP reports whether the app performs FP operations (column 4).
	FP bool
	// Class is the measured determinism class (the row group).
	Class Class
	// DetAsIs is column 5: bit-by-bit deterministic with no help.
	DetAsIs bool
	// FirstNDetRun is column 6 (0 = never detected).
	FirstNDetRun int
	// FPImpact is column 7, e.g. "NDet → Det".
	FPImpact string
	// FirstNDetAfterFP is column 8 (0 = never detected after rounding).
	FirstNDetAfterFP int
	// IsolationImpact is column 9 ("-" when no ignore set applies).
	IsolationImpact string
	// DetPoints and NDetPoints are columns 10–11: dynamic checking points
	// under the app's final configuration.
	DetPoints int
	// NDetPoints is column 11.
	NDetPoints int
	// DetAtEnd is column 12.
	DetAtEnd bool
	// Note carries the streamcluster ★ annotation.
	Note string
	// Char retains the underlying campaigns for drill-down.
	Char *Characterization
}

// Table1 reruns the paper's determinism characterization (§7.2.1) for all
// 17 workloads and returns one row per application, in Table 1 order.
func Table1(cfg ExperimentConfig) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(apps.Registry()))
	for _, app := range apps.Registry() {
		row, err := table1Row(app, cfg)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", app.Name, err)
		}
		rows = append(rows, row)
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Class < rows[j].Class })
	return rows, nil
}

// Table1For reruns the characterization for a single workload.
func Table1For(name string, cfg ExperimentConfig) (Table1Row, error) {
	app := apps.ByName(name)
	if app == nil {
		return Table1Row{}, fmt.Errorf("unknown workload %q", name)
	}
	return table1Row(app, cfg)
}

func table1Row(app *Workload, cfg ExperimentConfig) (Table1Row, error) {
	camp := cfg.campaign()
	opts := cfg.options()

	ch, err := camp.Characterize(app.Builder(opts), app.IgnoreSet())
	if err != nil {
		return Table1Row{}, err
	}
	row := Table1Row{
		App:    app.Name,
		Source: app.Source,
		FP:     app.UsesFP,
		Class:  ch.Class,
		Char:   ch,
	}
	row.DetAsIs = ch.BitByBit.Deterministic()
	row.FirstNDetRun = ch.BitByBit.FirstNDetRun
	row.FPImpact = impact(ch.BitByBit, ch.AfterRounding)
	row.FirstNDetAfterFP = ch.AfterRounding.FirstNDetRun
	if ch.AfterIsolation != nil {
		row.IsolationImpact = impact(ch.AfterRounding, ch.AfterIsolation)
	} else {
		row.IsolationImpact = "-"
	}
	best := ch.Best()
	row.DetPoints = best.DetPoints
	row.NDetPoints = best.NDetPoints
	row.DetAtEnd = best.DetAtEnd

	if app.Name == "streamcluster" {
		// The paper groups streamcluster with the bit-by-bit apps: its
		// interior nondeterminism is a real bug (fixed upstream after the
		// authors' report), masked at program end. Verify the fixed build
		// and annotate the row, exactly as Table 1's ★ footnote does.
		fixedOpts := opts
		fixedOpts.FixBug = true
		fixed, err := camp.Characterize(app.Builder(fixedOpts), nil)
		if err != nil {
			return Table1Row{}, err
		}
		if fixed.Class == ClassBitDeterministic {
			row.Class = ClassBitDeterministic
			row.DetAsIs = true
			row.Note = fmt.Sprintf("★ %d nondeterministic barriers caused by the real order-violation bug; deterministic when fixed", best.NDetPoints)
		}
	}
	return row, nil
}

func impact(before, after *Report) string {
	return fmt.Sprintf("%s → %s", detWord(before), detWord(after))
}

func detWord(r *Report) string {
	if r.Deterministic() {
		return "Det"
	}
	return "NDet"
}

// Table2Row reproduces one row of the paper's Table 2 (seeded-bug
// detection, §7.4).
type Table2Row struct {
	// App is the (formerly deterministic) host application.
	App string
	// Bug is the seeded bug type.
	Bug BugKind
	// DetPoints and NDetPoints count checking points with the bug seeded.
	DetPoints int
	// NDetPoints counts nondeterministic points created by the bug.
	NDetPoints int
	// FirstNDetRun is when the bug's nondeterminism was first detected.
	FirstNDetRun int
	// Report retains the campaign for drill-down (Figure 8 distributions).
	Report *Report
}

// table2Hosts maps the Figure 7 bugs to their host apps and the checking
// configuration under which the hosts are deterministic (Table 1).
var table2Hosts = []struct {
	app string
	bug BugKind
}{
	{"waterNS", BugSemantic},
	{"waterSP", BugAtomicity},
	{"radix", BugOrder},
}

// Table2 seeds the three Figure 7 bugs into their host applications and
// reruns determinism checking. The hosts are deterministic without the bug
// (under their Table 1 configuration); every row should therefore show
// nondeterministic points caused by the bug alone.
func Table2(cfg ExperimentConfig) ([]Table2Row, error) {
	rows := make([]Table2Row, 0, len(table2Hosts))
	for _, h := range table2Hosts {
		app := apps.ByName(h.app)
		opts := cfg.options()
		opts.Bug = h.bug
		camp := cfg.campaign()
		// Check under the host's Table 1 configuration: FP rounding for
		// the water codes, plain bit-by-bit for radix.
		camp.RoundFP = app.UsesFP
		rep, err := camp.Check(app.Builder(opts))
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", h.app, err)
		}
		rows = append(rows, Table2Row{
			App:          h.app,
			Bug:          h.bug,
			DetPoints:    rep.DetPoints,
			NDetPoints:   rep.NDetPoints,
			FirstNDetRun: rep.FirstNDetRun,
			Report:       rep,
		})
	}
	return rows, nil
}

// Distribution reproduces the data behind Figures 5 and 8: the number of
// distinct states observed per checkpoint group for one workload/config.
type Distribution struct {
	// App identifies the workload (plus bug/rounding annotations).
	App string
	// Groups lists distribution shapes with the number of checkpoints
	// exhibiting each, most common first.
	Groups []DistGroup
}

// Figure5 reruns the nondeterminism-distribution study of Figure 5:
// ocean without FP rounding (highly nondeterministic bit-by-bit), sphinx3
// with rounding but without isolation (its scratch structures visible),
// and canneal (truly nondeterministic).
func Figure5(cfg ExperimentConfig) ([]Distribution, error) {
	specs := []struct {
		app     string
		roundFP bool
		label   string
	}{
		{"ocean", false, "ocean (no FP rounding)"},
		{"sphinx3", true, "sphinx3 (no isolation)"},
		{"canneal", false, "canneal"},
	}
	out := make([]Distribution, 0, len(specs))
	for _, s := range specs {
		app := apps.ByName(s.app)
		camp := cfg.campaign()
		camp.RoundFP = s.roundFP
		rep, err := camp.Check(app.Builder(cfg.options()))
		if err != nil {
			return nil, fmt.Errorf("figure5 %s: %w", s.app, err)
		}
		out = append(out, Distribution{App: s.label, Groups: rep.DistGroups()})
	}
	return out, nil
}

// Figure8 reruns the seeded-bug distribution study of Figure 8.
func Figure8(cfg ExperimentConfig) ([]Distribution, error) {
	rows, err := Table2(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]Distribution, 0, len(rows))
	for _, r := range rows {
		out = append(out, Distribution{
			App:    fmt.Sprintf("%s (%s)", r.App, r.Bug),
			Groups: r.Report.DistGroups(),
		})
	}
	return out, nil
}

// Figure6 reruns the instruction-count overhead study (§7.3): for every
// workload, the Native-normalized cost of HW-InstantCheck_Inc,
// SW-InstantCheck_Inc-Ideal and SW-InstantCheck_Tr-Ideal, plus the
// geometric mean. As in the paper's Figure 6, no structures are deleted
// from the hash here; the cost of the sphinx3 deletion is a separate
// experiment (Figure6Deletion).
func Figure6(cfg ExperimentConfig) ([]Overhead, error) {
	rows := make([]Overhead, 0, len(apps.Registry())+1)
	for _, app := range apps.Registry() {
		camp := cfg.campaign()
		camp.RoundFP = app.UsesFP
		ov, err := camp.MeasureOverhead(app.Builder(cfg.options()))
		if err != nil {
			return nil, fmt.Errorf("figure6 %s: %w", app.Name, err)
		}
		rows = append(rows, ov)
	}
	rows = append(rows, GeoMean(rows))
	return rows, nil
}

// Figure6Deletion reruns the paper's sphinx3 deletion study (§7.3): the
// extra cost of deleting sphinx3's nondeterministic memory from the hash
// at every checkpoint. The paper reports 4.5× for HW-InstantCheck_Inc and
// 55× for SW-InstantCheck_Inc-Ideal — still far below the 438× of
// traversal hashing; the ordering HW ≪ SW-Inc ≪ SW-Tr is the result.
func Figure6Deletion(cfg ExperimentConfig) (Overhead, error) {
	app := apps.ByName("sphinx3")
	camp := cfg.campaign()
	camp.RoundFP = true
	camp.Ignore = app.IgnoreSet()
	ov, err := camp.MeasureOverhead(app.Builder(cfg.options()))
	if err != nil {
		return Overhead{}, err
	}
	ov.Program = "sphinx3+deletion"
	return ov, nil
}

// FormatTable1 renders Table 1 rows as an aligned text table.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-14s %-9s %-3s %-7s %-6s %-12s %-8s %-12s %8s %8s %-4s\n",
		"Class", "Application", "Source", "FP?", "Det-as-is", "1stNDet", "FP-rounding", "1stNDetFP", "Isolation", "Det", "NDet", "End")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-14s %-9s %-3s %-7s %-6s %-12s %-8s %-12s %8d %8d %-4s",
			short(r.Class.String(), 6), r.App, r.Source, yn(r.FP), ynDet(r.DetAsIs),
			dash(r.FirstNDetRun), r.FPImpact, dash(r.FirstNDetAfterFP), r.IsolationImpact,
			r.DetPoints, r.NDetPoints, ynDet(r.DetAtEnd))
		if r.Note != "" {
			fmt.Fprintf(&b, "  %s", r.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTable2 renders Table 2 rows as an aligned text table.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-20s %8s %8s %10s\n", "Application", "Bug Type", "Det", "NDet", "1stNDetRun")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-20s %8d %8d %10d\n", r.App, r.Bug, r.DetPoints, r.NDetPoints, r.FirstNDetRun)
	}
	return b.String()
}

// FormatDistributions renders Figure 5/8 data as text.
func FormatDistributions(ds []Distribution) string {
	var b strings.Builder
	for _, d := range ds {
		fmt.Fprintf(&b, "%s:\n", d.App)
		for _, g := range d.Groups {
			parts := make([]string, len(g.Distribution))
			for i, n := range g.Distribution {
				parts[i] = fmt.Sprint(n)
			}
			fmt.Fprintf(&b, "  %6d checkpoints with distribution %s\n", g.Checkpoints, strings.Join(parts, "/"))
		}
	}
	return b.String()
}

// FormatFigure6 renders the overhead rows as text.
func FormatFigure6(rows []Overhead) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %14s %12s %14s %14s %14s\n", "Application", "Native instr", "HW-Inc", "SW-Inc-Ideal", "SW-Inc-Buf", "SW-Tr-Ideal")
	for _, r := range rows {
		native := "-"
		if r.NativeInstr > 0 {
			native = fmt.Sprint(r.NativeInstr)
		}
		fmt.Fprintf(&b, "%-14s %14s %12s %14s %14s %14s\n", r.Program, native,
			formatX(r.HWInc), formatX(r.SWIncIdeal), formatX(r.SWIncBuffered), formatX(r.SWTrIdeal))
	}
	return b.String()
}

func formatX(x float64) string {
	switch {
	case x < 1.1:
		return fmt.Sprintf("+%.2f%%", (x-1)*100)
	case x < 10:
		return fmt.Sprintf("%.2fx", x)
	default:
		return fmt.Sprintf("%.0fx", x)
	}
}

func yn(b bool) string {
	if b {
		return "Y"
	}
	return "N"
}

func ynDet(b bool) string { return yn(b) }

func dash(n int) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprint(n)
}

func short(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// Check runs a campaign against a builder (convenience wrapper).
func Check(c Campaign, build Builder) (*Report, error) { return c.Check(build) }

// Characterize classifies a program into the Table 1 taxonomy.
func Characterize(c Campaign, build Builder, ignore *IgnoreSet) (*Characterization, error) {
	return c.Characterize(build, ignore)
}

// ---- Exploration efficiency ----

// ExploreEffRow is one (seeded bug, strategy) cell of the exploration-
// efficiency experiment: how many runs the strategy needs, at the median
// over independent trials, to surface the bug's State-Hash divergence.
type ExploreEffRow struct {
	// App and Bug identify the seeded Figure 7 bug.
	App string
	Bug BugKind
	// Strategy is the schedule-generation strategy measured.
	Strategy string
	// Trials is the number of independent campaigns (distinct base seeds).
	Trials int
	// Detected counts trials that found the divergence within the budget.
	Detected int
	// MedianRuns is the median runs-to-detect; trials that miss count as
	// budget+1, so a censored median reads as "more than the budget".
	MedianRuns int
	// Censored is true when the median trial missed — MedianRuns is then a
	// lower bound, not a measurement.
	Censored bool
	// Speedup is the uniform baseline's median divided by this row's
	// (1 for the baseline itself; a lower bound when uniform is censored).
	Speedup float64
}

// exploreEffIntervals sets the preemption interval per host app: rare
// forced switches model realistic stress testing, where the seeded bugs'
// racy windows are almost never hit by chance. This is the regime directed
// strategies are for; at tiny intervals every strategy (including uniform)
// finds the bugs in a run or two and there is nothing to measure. radix
// gets a longer interval because its racy window (thread 0's whole rank
// phase) is wider than the few-operation windows in the water codes.
var exploreEffIntervals = map[string]int{
	"waterNS": 4000,
	"waterSP": 4000,
	"radix":   20000,
}

// ExploreEfficiency measures runs-to-detect for every exploration
// strategy on the three seeded Table 2 bugs at equal budget. cfg.Runs is
// the per-trial budget (default 40); trials use base seeds derived from
// cfg.BaseSeed so the comparison pairs strategies on identical seed sets.
func ExploreEfficiency(cfg ExperimentConfig) ([]ExploreEffRow, error) {
	budget := orDefaultInt(cfg.Runs, 40)
	const trials = 5
	var rows []ExploreEffRow
	for _, h := range table2Hosts {
		app := apps.ByName(h.app)
		uniformMedian := 0
		for _, name := range explore.StrategyNames() {
			row := ExploreEffRow{App: h.app, Bug: h.bug, Strategy: name, Trials: trials}
			var needed []int
			for trial := 0; trial < trials; trial++ {
				opts := explore.Options{
					Threads:        orDefaultInt(cfg.Threads, 4),
					RoundFP:        app.UsesFP,
					InputSeed:      cfg.InputSeed,
					SwitchInterval: exploreEffIntervals[h.app],
					ScheduleSeed:   cfg.BaseSeed + int64(trial)*1000,
				}
				strat, err := explore.NewStrategy(name, opts, 0)
				if err != nil {
					return nil, err
				}
				build := app.Builder(WorkloadOptions{Threads: opts.Threads, Small: cfg.Small, Bug: h.bug})
				out, err := explore.Explore(build, opts, strat, budget, nil)
				if err != nil {
					return nil, fmt.Errorf("exploreeff %s/%s: %w", h.app, name, err)
				}
				if out.Found {
					row.Detected++
					needed = append(needed, out.DivergedRun)
				} else {
					needed = append(needed, budget+1)
				}
			}
			sort.Ints(needed)
			row.MedianRuns = needed[trials/2]
			row.Censored = row.MedianRuns > budget
			if name == "uniform" {
				uniformMedian = row.MedianRuns
			}
			if uniformMedian > 0 {
				row.Speedup = float64(uniformMedian) / float64(row.MedianRuns)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatExploreEfficiency renders the exploration-efficiency rows as an
// aligned text table. Censored medians (no detection at the median trial)
// print as ">budget", and speedups against a censored uniform baseline as
// lower bounds.
func FormatExploreEfficiency(rows []ExploreEffRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-20s %-14s %9s %11s %9s\n",
		"Application", "Bug Type", "Strategy", "Detected", "MedianRuns", "Speedup")
	uniformCensored := map[string]bool{}
	for _, r := range rows {
		if r.Strategy == "uniform" {
			uniformCensored[r.App] = r.Censored
		}
	}
	for _, r := range rows {
		med := fmt.Sprint(r.MedianRuns)
		if r.Censored {
			med = fmt.Sprintf(">%d", r.MedianRuns-1)
		}
		speed := fmt.Sprintf("%.1fx", r.Speedup)
		switch {
		case r.Strategy == "uniform":
			speed = "1.0x"
		case r.Censored:
			speed = "-" // did not detect; no speedup to claim
		case uniformCensored[r.App]:
			speed = fmt.Sprintf(">%.1fx", r.Speedup)
		}
		fmt.Fprintf(&b, "%-12s %-20s %-14s %5d/%-3d %11s %9s\n",
			r.App, r.Bug, r.Strategy, r.Detected, r.Trials, med, speed)
	}
	return b.String()
}

func orDefaultInt(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}
