package fpround

import (
	"math"
	"testing"
)

// FuzzRoundIdempotent fuzzes the round-off policies over raw bit patterns:
// rounding must be idempotent (hash-erasure relies on it) and must never
// produce -0.0 or grow a value's magnitude under FloorDecimal.
func FuzzRoundIdempotent(f *testing.F) {
	f.Add(uint64(0x3ff0000000000000), 3, true)
	f.Add(uint64(0xc00071d66a9675d0), 6, false) // past regression input
	f.Add(uint64(0x41208a181a107e47), 6, false) // past regression input
	f.Fuzz(func(t *testing.T, bits uint64, param int, zeroMantissa bool) {
		var p Policy
		if zeroMantissa {
			p = NewZeroMantissa(param % 53)
		} else {
			p = NewFloorDecimal(param % 16)
		}
		once := p.RoundBits(bits)
		twice := p.RoundBits(once)
		if once != twice {
			t.Fatalf("not idempotent: %#x -> %#x -> %#x", bits, once, twice)
		}
		v := math.Float64frombits(bits)
		r := math.Float64frombits(once)
		if math.Float64bits(r) == math.Float64bits(math.Copysign(0, -1)) {
			t.Fatal("produced -0.0")
		}
		if !zeroMantissa && !math.IsNaN(v) && !math.IsInf(v, 0) {
			if r > v+1e-9*math.Abs(v)+1e-12 {
				t.Fatalf("floor went up: %v -> %v", v, r)
			}
		}
	})
}
