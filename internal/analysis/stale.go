package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// This file implements stale //icvet:ignore detection: a suppression
// comment that no longer covers any diagnostic (for example after a
// refactor moves the racy line out from under it) is silently dead —
// worse than no comment, because it documents a hazard that is not
// there and will silently swallow a future finding on whatever line
// drifts beneath it.

// staleName is the analyzer name stale-ignore diagnostics report under.
const staleName = "staleignore"

// ignoreComment is one parsed //icvet:ignore comment.
type ignoreComment struct {
	pos   token.Position
	names []string
}

// StaleIgnores reports every //icvet:ignore comment of the package that
// suppresses nothing. diags must be the full pre-suppression diagnostic
// set of the package (RunAnalyzers with NoSuppress), and pairs the full
// RaceCheck pair set: a comment is live when it covers a diagnostic of a
// named analyzer, or — for the "race" name — a site of a candidate race
// pair. Names that match no analyzer are reported as unknown.
func StaleIgnores(pkg *Package, diags []Diagnostic, pairs []RacePair) []Diagnostic {
	diagLines := make(map[string]map[int]map[string]bool)
	for _, d := range diags {
		lines := diagLines[d.Pos.Filename]
		if lines == nil {
			lines = make(map[int]map[string]bool)
			diagLines[d.Pos.Filename] = lines
		}
		if lines[d.Pos.Line] == nil {
			lines[d.Pos.Line] = make(map[string]bool)
		}
		lines[d.Pos.Line][d.Analyzer] = true
	}
	raceLines := raceSuppressionUsed(pairs)

	var out []Diagnostic
	for _, c := range ignoreComments(pkg) {
		for _, name := range c.names {
			if name != "all" && name != "race" && name != staleName && ByName(name) == nil {
				out = append(out, Diagnostic{
					Pos:      c.pos,
					Analyzer: staleName,
					Message:  fmt.Sprintf("//icvet:ignore names unknown analyzer %q", name),
				})
				continue
			}
			used := false
			for _, line := range []int{c.pos.Line, c.pos.Line + 1} {
				switch name {
				case "all":
					if len(diagLines[c.pos.Filename][line]) > 0 || raceLines[c.pos.Filename][line] {
						used = true
					}
				case "race":
					if raceLines[c.pos.Filename][line] {
						used = true
					}
				default:
					if diagLines[c.pos.Filename][line][name] {
						used = true
					}
				}
			}
			if !used {
				out = append(out, Diagnostic{
					Pos:      c.pos,
					Analyzer: staleName,
					Message:  fmt.Sprintf("stale //icvet:ignore %s: no %s finding on this or the next line", name, name),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if c := comparePos(out[i].Pos, out[j].Pos); c != 0 {
			return c < 0
		}
		return out[i].Message < out[j].Message
	})
	return out
}
