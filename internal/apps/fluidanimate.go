package apps

import (
	"instantcheck/internal/core"
	"instantcheck/internal/mem"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

func init() {
	register(&App{
		Name:          "fluidanimate",
		Source:        "parsec",
		UsesFP:        true,
		ExpectedClass: core.ClassFPDeterministic,
		Build: func(o Options) sim.Program {
			p := &fluidanimateProg{nt: o.threads(), particles: 256, cells: 64, steps: 8}
			if o.Small {
				p.particles, p.steps = 64, 3
			}
			return p
		},
	})
}

// fluidanimateProg reproduces PARSEC's fluidanimate: SPH-style fluid
// simulation on a cell grid. Particles on cell borders contribute density
// to shared per-cell accumulators under per-cell locks, so the additions
// are atomic but their order is schedule-dependent — the classic
// non-associative FP reduction of the paper's Figure 1. Bit-by-bit the
// state differs across runs in the low mantissa bits; with the FP round-off
// unit enabled the program is deterministic (Table 1's FP-precision group,
// 41 dynamic points: 8 timesteps × 5 barriers + end).
type fluidanimateProg struct {
	nt        int
	particles int
	cells     int
	steps     int

	pos, vel   uint64 // per-particle position/velocity (1-D for simplicity)
	density    uint64 // per-cell shared FP accumulators
	energy     uint64 // global kinetic-energy reduction
	cellLocks  []*sched.Mutex
	energyLock *sched.Mutex

	clear, dens, force, advance, stats barrier
}

func (p *fluidanimateProg) Name() string { return "fluidanimate" }

func (p *fluidanimateProg) Threads() int { return p.nt }

func (p *fluidanimateProg) Setup(t *sim.Thread) {
	p.pos = t.AllocStatic("static:fa.pos", p.particles, mem.KindFloat)
	p.vel = t.AllocStatic("static:fa.vel", p.particles, mem.KindFloat)
	p.density = t.AllocStatic("static:fa.density", p.cells, mem.KindFloat)
	p.energy = t.AllocStatic("static:fa.energy", 1, mem.KindFloat)
	rng := newXorshift(3)
	for i := 0; i < p.particles; i++ {
		t.StoreF(idx(p.pos, i), float64(p.cells)*rng.unitFloat())
		t.StoreF(idx(p.vel, i), 0.2*(rng.unitFloat()-0.5))
	}
	p.cellLocks = make([]*sched.Mutex, p.cells)
	for c := range p.cellLocks {
		p.cellLocks[c] = t.Machine().NewMutex("fa.cell")
	}
	p.energyLock = t.Machine().NewMutex("fa.energy")
	p.clear = newBarrier(t, "fa.clear")
	p.dens = newBarrier(t, "fa.dens")
	p.force = newBarrier(t, "fa.force")
	p.advance = newBarrier(t, "fa.advance")
	p.stats = newBarrier(t, "fa.stats")
}

func (p *fluidanimateProg) cellOf(t *sim.Thread, i int) int {
	x := t.LoadF(idx(p.pos, i))
	c := int(x)
	if c < 0 {
		c = 0
	}
	if c >= p.cells {
		c = p.cells - 1
	}
	return c
}

func (p *fluidanimateProg) Worker(t *sim.Thread) {
	tid := t.TID()
	lo, hi := span(p.particles, p.nt, tid)
	clo, chi := span(p.cells, p.nt, tid)

	for step := 0; step < p.steps; step++ {
		// Phase 1: clear the cell accumulators (disjoint cell spans).
		for c := clo; c < chi; c++ {
			t.StoreF(idx(p.density, c), 0)
		}
		if tid == 0 {
			t.StoreF(p.energy, 0)
		}
		p.clear.await(t)

		// Phase 2: scatter density. The per-cell lock makes each addition
		// atomic, but the order in which threads add to a border cell is
		// schedule-dependent — the source of the FP nondeterminism.
		for i := lo; i < hi; i++ {
			c := p.cellOf(t, i)
			contrib := 1.0 + 0.1*t.LoadF(idx(p.vel, i))
			t.Compute(36) // kernel-weight evaluation
			t.Lock(p.cellLocks[c])
			d := t.LoadF(idx(p.density, c))
			t.StoreF(idx(p.density, c), d+contrib)
			t.Unlock(p.cellLocks[c])
		}
		p.dens.await(t)

		// Phase 3: forces from the (now stable) densities; damped
		// dynamics keep reorder error from amplifying.
		for i := lo; i < hi; i++ {
			c := p.cellOf(t, i)
			d := t.LoadF(idx(p.density, c))
			v := t.LoadF(idx(p.vel, i))
			f := -0.01 * (d - 4.0)
			t.Compute(40) // pressure + viscosity terms
			t.StoreF(idx(p.vel, i), 0.98*v+0.01*f)
		}
		p.force.await(t)

		// Phase 4: advance positions (disjoint), reflecting at the walls.
		for i := lo; i < hi; i++ {
			x := t.LoadF(idx(p.pos, i)) + 0.05*t.LoadF(idx(p.vel, i))
			if x < 0 {
				x = -x
			}
			if max := float64(p.cells) - 1e-9; x > max {
				x = 2*max - x
			}
			t.Compute(12)
			t.StoreF(idx(p.pos, i), x)
		}
		p.advance.await(t)

		// Phase 5: global kinetic-energy reduction — another racy-order
		// FP sum, this time under a single lock.
		partial := 0.0
		for i := lo; i < hi; i++ {
			v := t.LoadF(idx(p.vel, i))
			partial += v * v
			t.Compute(8)
		}
		t.Lock(p.energyLock)
		e := t.LoadF(p.energy)
		t.StoreF(p.energy, e+partial)
		t.Unlock(p.energyLock)
		p.stats.await(t)
	}
}
