package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunOnDeterministicApp(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"fft", "-small", "-threads", "4", "-runs", "6"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "deterministic") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunLocalizesSeededBug(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"radix", "-small", "-threads", "4", "-runs", "10", "-bug", "order"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "first divergence") || !strings.Contains(s, "differing words") {
		t.Errorf("output: %s", s)
	}
}

func TestRunArgumentErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing app accepted")
	}
	if err := run([]string{"nosuchapp"}, &out); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run([]string{"radix", "-bug", "weird"}, &out); err == nil {
		t.Error("unknown bug kind accepted")
	}
}
