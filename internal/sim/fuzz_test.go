package sim

import (
	"testing"

	"instantcheck/internal/replay"
)

// FuzzDeltaEqualsFullSweep fuzzes the dirty-page delta hasher's defining
// invariant over program shapes and schedules: with stores, mallocs, frees
// (including address reuse via the shared AddrLog), an ignore set, and a
// checkpoint barrier all interleaving, the delta-mode digests — raw and
// ignore-adjusted — are bit-identical to full sweeps at every checkpoint,
// both sequentially and under a forced shard count.
func FuzzDeltaEqualsFullSweep(f *testing.F) {
	f.Add(uint64(1), int64(1))
	f.Add(uint64(0xdeadbeef), int64(-7))
	f.Add(uint64(99), int64(3))
	f.Fuzz(func(t *testing.T, progSeed uint64, schedSeed int64) {
		ignore := NewIgnoreSet(
			IgnoreRule{Site: "fuzz.heap"},
			IgnoreRule{Site: "static:fuzz.shared", Offsets: []int{0, 3}},
		)
		// One shared AddrLog: the first run records malloc placement, the
		// delta runs replay it, re-allocating at previously freed bases.
		log := replay.NewAddrLog()
		runTr := func(mode TraverseDeltaMode, shards int) *Result {
			t.Helper()
			m := NewMachine(Config{
				Threads:        3,
				ScheduleSeed:   schedSeed,
				Scheme:         SWTr,
				AddrLog:        log,
				Ignore:         ignore,
				TraverseDelta:  mode,
				TraverseShards: shards,
			})
			res, err := m.Run(newFuzz(3, progSeed, 40))
			if err != nil {
				t.Fatalf("fuzz run: %v", err)
			}
			return res
		}
		full := runTr(TraverseDeltaOff, 0)
		for _, shards := range []int{0, 3} {
			delta := runTr(TraverseDeltaAuto, shards)
			if len(delta.Checkpoints) != len(full.Checkpoints) {
				t.Fatalf("shards %d: checkpoint counts differ: %d vs %d",
					shards, len(delta.Checkpoints), len(full.Checkpoints))
			}
			for i := range full.Checkpoints {
				d, fl := delta.Checkpoints[i], full.Checkpoints[i]
				if d.RawSH != fl.RawSH || d.SH != fl.SH {
					t.Fatalf("shards %d, checkpoint %d: delta raw %s adj %s, full raw %s adj %s",
						shards, i, d.RawSH, d.SH, fl.RawSH, fl.SH)
				}
			}
			if delta.Counters.TraverseDeltaSweeps == 0 {
				t.Fatalf("shards %d: delta mode never took the delta path", shards)
			}
		}
	})
}

// FuzzIncrementalEqualsTraversal fuzzes the central invariant over program
// shapes and schedules: the incrementally maintained State Hash equals the
// traversal hash at every checkpoint.
func FuzzIncrementalEqualsTraversal(f *testing.F) {
	f.Add(uint64(1), int64(1))
	f.Add(uint64(0xdeadbeef), int64(-7))
	f.Fuzz(func(t *testing.T, progSeed uint64, schedSeed int64) {
		log := replay.NewAddrLog()
		inc := runFuzz(t, HWInc, progSeed, schedSeed, log)
		tr := runFuzz(t, SWTr, progSeed, schedSeed, log)
		if len(inc.Checkpoints) != len(tr.Checkpoints) {
			t.Fatalf("checkpoint counts differ: %d vs %d", len(inc.Checkpoints), len(tr.Checkpoints))
		}
		for i := range inc.Checkpoints {
			if inc.Checkpoints[i].SH != tr.Checkpoints[i].SH {
				t.Fatalf("checkpoint %d: %s vs %s", i, inc.Checkpoints[i].SH, tr.Checkpoints[i].SH)
			}
		}
	})
}
