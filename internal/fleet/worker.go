package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"instantcheck/internal/core"
	"instantcheck/internal/replay"
)

// WorkerOptions configures one worker-node loop.
type WorkerOptions struct {
	// Name identifies the worker on leases and the coordinator's per-worker
	// gauges. Required.
	Name string
	// Coordinator is the daemon's base URL (the same server that serves the
	// farm API).
	Coordinator string
	// CacheDir holds fetched replay bundles, one file per digest. Required;
	// a populated cache survives worker restarts and is shared safely by
	// content addressing (a corrupt or foreign file fails digest
	// verification and is re-fetched).
	CacheDir string
	// PollInterval is the idle sleep between lease requests that found no
	// work (<= 0 selects 100ms).
	PollInterval time.Duration
	// BatchSize is the number of run records per results POST (<= 0
	// selects 4).
	BatchSize int
	// MaxInFlight bounds the run records buffered between the replay
	// executor and the sender (in units of batches, <= 0 selects 2): when a
	// slow coordinator leaves that many batches unacknowledged, replay
	// execution blocks — backpressure instead of unbounded buffering.
	MaxInFlight int
	// RunLatency, when positive, sleeps this long before each replay run.
	// It exists for benchmarks and tests only: on a single machine it
	// emulates the per-run latency of a remote execution backend, which is
	// what lets a scaling benchmark exercise the coordinator's concurrency
	// without more physical CPUs.
	RunLatency time.Duration
	// Logf, when non-nil, receives one line per worker event.
	Logf func(format string, args ...any)
}

func (o WorkerOptions) withDefaults() (WorkerOptions, error) {
	if o.Name == "" {
		return o, fmt.Errorf("fleet: worker needs a name")
	}
	if o.Coordinator == "" {
		return o, fmt.Errorf("fleet: worker needs a coordinator URL")
	}
	if o.CacheDir == "" {
		return o, fmt.Errorf("fleet: worker needs a bundle cache directory")
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 100 * time.Millisecond
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 4
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 2
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o, nil
}

// Worker is one fleet worker node: a pull loop leasing run-shards from a
// coordinator, replaying them from content-addressed bundles, and streaming
// the hash records back.
type Worker struct {
	o  WorkerOptions
	hc *http.Client
}

// NewWorker validates the options and builds a worker.
func NewWorker(o WorkerOptions) (*Worker, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Worker{o: o, hc: &http.Client{}}, nil
}

// Run is the worker loop: lease, execute, repeat, until ctx is canceled.
// Transient coordinator errors back off and retry — a worker outlives
// daemon restarts the same way farm.Client.Wait does.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		li, err := w.requestLease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.o.Logf("fleet worker %s: lease request: %v", w.o.Name, err)
			if !sleepCtx(ctx, w.o.PollInterval) {
				return ctx.Err()
			}
			continue
		}
		if li == nil {
			if !sleepCtx(ctx, w.o.PollInterval) {
				return ctx.Err()
			}
			continue
		}
		w.executeShard(ctx, li)
	}
}

// executeShard runs one lease to completion: ensure the bundle, replay each
// run, stream batches, heartbeat throughout.
func (w *Worker) executeShard(ctx context.Context, li *LeaseInfo) {
	st, hit, err := w.ensureBundle(ctx, li.Digest)
	if err != nil {
		// Leave the lease to expire; the shard re-dispatches elsewhere.
		w.o.Logf("fleet worker %s: lease %s: bundle %s: %v", w.o.Name, li.LeaseID, li.Digest, err)
		return
	}
	fetch := "miss"
	if hit {
		fetch = "hit"
	}
	camp, build, err := li.Spec.Resolve()
	if err != nil {
		w.o.Logf("fleet worker %s: lease %s: bad spec: %v", w.o.Name, li.LeaseID, err)
		return
	}
	runner, err := camp.NewReplayRunner(build, st)
	if err != nil {
		w.o.Logf("fleet worker %s: lease %s: %v", w.o.Name, li.LeaseID, err)
		return
	}

	// shardCtx dies with the lease: the heartbeat loop cancels it when the
	// coordinator reports the lease gone, which stops replay work whose
	// results nobody is waiting for (they would be dropped as duplicates).
	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeats(shardCtx, li, cancel)
	}()

	// The record channel is the backpressure bound: the replay executor
	// blocks once MaxInFlight batches' worth of records await the sender.
	records := make(chan RunRecord, w.o.BatchSize*w.o.MaxInFlight)
	senderDone := make(chan error, 1)
	go func() {
		senderDone <- w.sendResults(shardCtx, li, fetch, records)
	}()

	executed := 0
	for _, run := range li.Runs {
		if shardCtx.Err() != nil {
			break
		}
		if w.o.RunLatency > 0 && !sleepCtx(shardCtx, w.o.RunLatency) {
			break
		}
		res, err := runner.Replay(run)
		if err != nil {
			w.o.Logf("fleet worker %s: lease %s run %d: %v", w.o.Name, li.LeaseID, run, err)
			break
		}
		select {
		case records <- recordFromResult(run, res):
			executed++
		case <-shardCtx.Done():
		}
		if shardCtx.Err() != nil {
			break
		}
	}
	close(records)
	err = <-senderDone
	cancel()
	<-hbDone
	if err != nil && ctx.Err() == nil {
		w.o.Logf("fleet worker %s: lease %s: results: %v", w.o.Name, li.LeaseID, err)
	}
	w.o.Logf("fleet worker %s: lease %s done (%d/%d runs, bundle %s)",
		w.o.Name, li.LeaseID, executed, len(li.Runs), fetch)
}

// sendResults drains the record channel into batched POSTs, the final batch
// flagged Done so the coordinator releases the lease promptly. A batch the
// coordinator answers with lease_ok=false aborts the shard.
func (w *Worker) sendResults(ctx context.Context, li *LeaseInfo, fetch string, records <-chan RunRecord) error {
	first := true
	var batch []RunRecord
	flush := func(done bool) error {
		if len(batch) == 0 && !done {
			return nil
		}
		req := resultsRequest{
			LeaseID: li.LeaseID,
			Worker:  w.o.Name,
			Job:     li.Job,
			Records: batch,
			Done:    done,
		}
		if first {
			req.Fetch = fetch
			first = false
		}
		batch = batch[:0]
		var resp resultsResponse
		if err := w.post(ctx, "/api/v1/fleet/results", req, &resp); err != nil {
			return err
		}
		if !resp.LeaseOK && !done {
			return fmt.Errorf("lease %s lost (coordinator moved on)", li.LeaseID)
		}
		return nil
	}
	for rec := range records {
		batch = append(batch, rec)
		if len(batch) >= w.o.BatchSize {
			if err := flush(false); err != nil {
				// Drain so the executor never blocks on a dead sender.
				for range records {
				}
				return err
			}
		}
	}
	return flush(true)
}

// heartbeats renews the lease at a third of its TTL until the shard ends;
// a rejected heartbeat cancels the shard.
func (w *Worker) heartbeats(ctx context.Context, li *LeaseInfo, cancel context.CancelFunc) {
	interval := time.Duration(li.TTLMillis) * time.Millisecond / 3
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		var resp heartbeatResponse
		err := w.post(ctx, "/api/v1/fleet/heartbeat", heartbeatRequest{LeaseID: li.LeaseID, Worker: w.o.Name}, &resp)
		if err != nil {
			continue // transient: the lease survives missed beats up to TTL
		}
		if !resp.OK {
			w.o.Logf("fleet worker %s: lease %s expired under us, abandoning shard", w.o.Name, li.LeaseID)
			cancel()
			return
		}
	}
}

// requestLease asks for a shard; nil without error means no work.
func (w *Worker) requestLease(ctx context.Context) (*LeaseInfo, error) {
	var resp leaseResponse
	if err := w.post(ctx, "/api/v1/fleet/lease", leaseRequest{Worker: w.o.Name}, &resp); err != nil {
		return nil, err
	}
	return resp.Lease, nil
}

// ensureBundle returns the replay state for a digest, from the disk cache
// when possible (reporting hit=true), else fetched from the coordinator,
// verified, and cached. Cache contents are never trusted blindly: a file
// whose bytes do not hash to its name is discarded and re-fetched.
func (w *Worker) ensureBundle(ctx context.Context, digest string) (core.ReplayState, bool, error) {
	d, err := replay.ParseDigest(digest)
	if err != nil {
		return core.ReplayState{}, false, err
	}
	path := filepath.Join(w.o.CacheDir, digest)
	if raw, err := os.ReadFile(path); err == nil && replay.DigestBytes(raw) == d {
		if st, err := UnmarshalBundle(raw); err == nil {
			return st, true, nil
		}
	}
	raw, err := w.fetchBlob(ctx, digest)
	if err != nil {
		return core.ReplayState{}, false, err
	}
	if replay.DigestBytes(raw) != d {
		return core.ReplayState{}, false, fmt.Errorf("fleet: fetched bundle does not match digest %s", digest)
	}
	st, err := UnmarshalBundle(raw)
	if err != nil {
		return core.ReplayState{}, false, err
	}
	// Cache best-effort via temp-and-rename, so a crashed worker never
	// leaves a torn file under a valid digest name.
	if err := os.MkdirAll(w.o.CacheDir, 0o755); err == nil {
		tmp, err := os.CreateTemp(w.o.CacheDir, "fetch-*")
		if err == nil {
			_, werr := tmp.Write(raw)
			cerr := tmp.Close()
			if werr == nil && cerr == nil {
				os.Rename(tmp.Name(), path)
			} else {
				os.Remove(tmp.Name())
			}
		}
	}
	return st, false, nil
}

// fetchBlob downloads a bundle.
func (w *Worker) fetchBlob(ctx context.Context, digest string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.o.Coordinator+"/api/v1/fleet/blob/"+digest, nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: blob %s: HTTP %d", digest, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// post sends one JSON request and decodes the JSON response.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.o.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fleet: %s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleepCtx sleeps d unless ctx ends first; false means the context died.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
