package instantcheck

import (
	"instantcheck/internal/core"
	"instantcheck/internal/fpround"
	"instantcheck/internal/ihash"
	"instantcheck/internal/mem"
	"instantcheck/internal/replay"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
	"instantcheck/internal/statediff"
)

// Re-exported checking API. These aliases are the library's public surface;
// the implementation lives in the internal packages.
type (
	// Campaign configures one determinism-checking campaign (N runs of the
	// same program and input under different schedules).
	Campaign = core.Campaign
	// Report is a campaign's outcome: per-checkpoint distributions,
	// det/ndet point counts, first nondeterministic run.
	Report = core.Report
	// CheckpointStat summarizes one checkpoint across runs.
	CheckpointStat = core.CheckpointStat
	// DistGroup is one bar group of the paper's Figures 5/8.
	DistGroup = core.DistGroup
	// Characterization is a Table 1 row's worth of campaigns.
	Characterization = core.Characterization
	// Class is the determinism taxonomy of Table 1.
	Class = core.Class
	// Builder constructs a fresh Program for each run.
	Builder = core.Builder
	// Overhead holds Figure 6's normalized instruction counts.
	Overhead = core.Overhead
	// CostModel holds the §7.3 overhead-model constants.
	CostModel = core.CostModel
	// DiffCapture holds two runs' full states at the first divergence.
	DiffCapture = core.DiffCapture
)

// Determinism classes (Table 1 row groups).
const (
	ClassBitDeterministic    = core.ClassBitDeterministic
	ClassFPDeterministic     = core.ClassFPDeterministic
	ClassStructDeterministic = core.ClassStructDeterministic
	ClassNondeterministic    = core.ClassNondeterministic
)

// Re-exported program-authoring API.
type (
	// Program is a simulated parallel program (Setup + per-thread Worker).
	Program = sim.Program
	// Thread is the execution context handed to program code.
	Thread = sim.Thread
	// Machine executes one run of a Program.
	Machine = sim.Machine
	// MachineConfig configures a single run.
	MachineConfig = sim.Config
	// RunResult is the outcome of one run.
	RunResult = sim.Result
	// Checkpoint is one determinism-checking point of a run.
	Checkpoint = sim.Checkpoint
	// Counters are the cost-model activity counters of a run.
	Counters = sim.Counters
	// Scheme selects a hashing scheme.
	Scheme = sim.Scheme
	// IgnoreSet deletes chosen structures from every state hash.
	IgnoreSet = sim.IgnoreSet
	// IgnoreRule selects the words of one allocation site.
	IgnoreRule = sim.IgnoreRule
	// TraverseDeltaMode selects the traversal scheme's checkpoint
	// strategy (dirty-page delta hashing vs full sweeps).
	TraverseDeltaMode = sim.TraverseDeltaMode
	// Kind is a word's element kind (integer word or float64).
	Kind = mem.Kind
	// Snapshot is a full copy of the hashed state.
	Snapshot = mem.Snapshot
	// Digest is a 64-bit incremental state hash (TH or SH).
	Digest = ihash.Digest
	// Hasher is the location hash h(addr, value).
	Hasher = ihash.Hasher
	// RoundPolicy configures the FP round-off unit.
	RoundPolicy = fpround.Policy
	// Mutex is a scheduler-aware lock for simulated programs.
	Mutex = sched.Mutex
	// Barrier is a pthread-style (checkpointing) barrier.
	Barrier = sched.Barrier
	// Cond is a scheduler-aware condition variable.
	Cond = sched.Cond
	// Env records and replays nondeterministic library calls (§5).
	Env = replay.Env
	// AddrLog records and replays malloc addresses (§5).
	AddrLog = replay.AddrLog
)

// NewEnv returns a record/replay environment whose recording run draws
// from inputSeed — the fixed program input.
func NewEnv(inputSeed int64) *Env { return replay.NewEnv(inputSeed) }

// NewAddrLog returns an empty malloc address log.
func NewAddrLog() *AddrLog { return replay.NewAddrLog() }

// Hashing schemes (paper §3, §4).
const (
	// Native runs without any determinism checking.
	Native = sim.Native
	// HWInc is HW-InstantCheck_Inc: MHM hardware hashes stores on the fly.
	HWInc = sim.HWInc
	// SWInc is SW-InstantCheck_Inc: the same updates in software.
	SWInc = sim.SWInc
	// SWIncNonAtomic exhibits the §4.1 atomicity caveat.
	SWIncNonAtomic = sim.SWIncNonAtomic
	// SWTr is SW-InstantCheck_Tr: traversal hashing at checkpoints.
	SWTr = sim.SWTr
)

// Traversal checkpoint strategies (SWTr only).
const (
	// TraverseDeltaAuto (the default) rehashes only dirty pages after the
	// first full sweep.
	TraverseDeltaAuto = sim.TraverseDeltaAuto
	// TraverseDeltaOff forces a full sweep at every checkpoint.
	TraverseDeltaOff = sim.TraverseDeltaOff
)

// Word kinds.
const (
	// KindWord is an integer/pointer 64-bit word.
	KindWord = mem.KindWord
	// KindFloat is an IEEE-754 float64.
	KindFloat = mem.KindFloat
)

// NewIgnoreSet builds an ignore set from rules (paper §2.2: deleting
// explicitly-specified nondeterministic structures from the hash).
func NewIgnoreSet(rules ...IgnoreRule) *IgnoreSet { return sim.NewIgnoreSet(rules...) }

// NewMix64Hasher returns the default location hash h(addr, value): a
// SplitMix64-style finalizer pair (the role the paper assigns to the MHM
// hash unit).
func NewMix64Hasher() Hasher { return ihash.Mix64{} }

// NewCRC64Hasher returns the CRC-based location hash — the paper's running
// example of a conventional h — for cross-validation.
func NewCRC64Hasher() Hasher { return ihash.CRC64{} }

// NewMachine prepares a machine for a single run.
func NewMachine(cfg MachineConfig) *Machine { return sim.NewMachine(cfg) }

// RoundZeroMantissa returns the policy that zeroes the M least-significant
// mantissa bits (discards small relative FP differences, §3.1).
func RoundZeroMantissa(m int) RoundPolicy { return fpround.NewZeroMantissa(m) }

// RoundFloorDecimal returns the policy that floors to N decimal digits
// (discards small absolute FP differences; N=3 is the paper's default).
func RoundFloorDecimal(n int) RoundPolicy { return fpround.NewFloorDecimal(n) }

// DefaultCostModel mirrors the paper's §7.3 constants (5 instructions per
// hashed byte, hardware hashing free, zero-fill charged to checking).
var DefaultCostModel = core.DefaultCostModel

// GeoMean aggregates per-app overheads like Figure 6's GEOM bar.
func GeoMean(rows []Overhead) Overhead { return core.GeoMean(rows) }

// Re-exported state-diff tool (§2.3).
type (
	// Difference is one differing word, attributed to its allocation site.
	Difference = statediff.Difference
	// SiteSummary aggregates differences per allocation site.
	SiteSummary = statediff.SiteSummary
)

// DiffStates compares two snapshots and returns the differing words in
// address order, each mapped back to its allocation site and offset.
func DiffStates(a, b *Snapshot) []Difference { return statediff.Diff(a, b) }

// SummarizeDiff groups differences by allocation site, largest first.
func SummarizeDiff(diffs []Difference) []SiteSummary { return statediff.Summarize(diffs) }

// RenderDiff renders the state-diff tool's report (per-site summary plus up
// to maxLines individual differences).
func RenderDiff(diffs []Difference, maxLines int) string {
	return statediff.Render(diffs, maxLines)
}
