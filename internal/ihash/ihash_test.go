package ihash

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var hashers = []Hasher{Mix64{}, CRC64{}}

// TestGroupLaws property-checks that Digest forms an abelian group under
// Combine — the algebraic foundation of incremental hashing (§2.2).
func TestGroupLaws(t *testing.T) {
	commutative := func(a, b uint64) bool {
		x, y := Digest(a), Digest(b)
		return x.Combine(y) == y.Combine(x)
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Error("commutativity:", err)
	}
	associative := func(a, b, c uint64) bool {
		x, y, z := Digest(a), Digest(b), Digest(c)
		return x.Combine(y).Combine(z) == x.Combine(y.Combine(z))
	}
	if err := quick.Check(associative, nil); err != nil {
		t.Error("associativity:", err)
	}
	identity := func(a uint64) bool {
		return Digest(a).Combine(Zero) == Digest(a)
	}
	if err := quick.Check(identity, nil); err != nil {
		t.Error("identity:", err)
	}
	inverse := func(a uint64) bool {
		x := Digest(a)
		return x.Combine(x.Negate()) == Zero
	}
	if err := quick.Check(inverse, nil); err != nil {
		t.Error("inverse:", err)
	}
	subtractCancels := func(a, b uint64) bool {
		x, y := Digest(a), Digest(b)
		return x.Combine(y).Subtract(y) == x
	}
	if err := quick.Check(subtractCancels, nil); err != nil {
		t.Error("subtraction:", err)
	}
}

// TestWriteCancellation property-checks the incremental update: writing a
// value and then writing back the original restores the digest exactly.
func TestWriteCancellation(t *testing.T) {
	for _, h := range hashers {
		h := h
		f := func(addr, v0, v1 uint64) bool {
			a := NewAccumulator(h)
			a.Insert(addr, v0)
			before := a.Value()
			a.Write(addr, v0, v1)
			a.Write(addr, v1, v0)
			return a.Value() == before
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", h.Name(), err)
		}
	}
}

// TestInsertEraseCancellation property-checks that Erase undoes Insert.
func TestInsertEraseCancellation(t *testing.T) {
	f := func(addr, v uint64) bool {
		a := NewAccumulator(nil)
		a.Insert(addr, v)
		a.Erase(addr, v)
		return a.Value() == Zero
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestOrderIndependence property-checks the heart of the scheme: any
// permutation of the same (addr, value) multiset yields the same digest,
// and splitting the multiset across several "thread" accumulators and
// combining them yields the same digest as one accumulator.
func TestOrderIndependence(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n)%24 + 2
		type pair struct{ a, v uint64 }
		pairs := make([]pair, k)
		for i := range pairs {
			pairs[i] = pair{rng.Uint64(), rng.Uint64()}
		}

		single := NewAccumulator(nil)
		for _, p := range pairs {
			single.Insert(p.a, p.v)
		}

		// Shuffled insertion into 3 per-thread accumulators.
		perm := rng.Perm(k)
		threads := []*Accumulator{NewAccumulator(nil), NewAccumulator(nil), NewAccumulator(nil)}
		for i, pi := range perm {
			threads[i%3].Insert(pairs[pi].a, pairs[pi].v)
		}
		combined := CombineAll(threads[0].Value(), threads[1].Value(), threads[2].Value())
		return combined == single.Value()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPermutationOfValuesDetected checks that swapping the values of two
// addresses changes the hash: the address is part of h(a, v) precisely so
// that a permutation of the same values does not collide (§2.2).
func TestPermutationOfValuesDetected(t *testing.T) {
	for _, h := range hashers {
		a := NewAccumulator(h)
		a.Insert(0x1000, 7)
		a.Insert(0x2000, 3)
		b := NewAccumulator(h)
		b.Insert(0x1000, 3)
		b.Insert(0x2000, 7)
		if a.Value() == b.Value() {
			t.Errorf("%s: permuted values collided", h.Name())
		}
	}
}

// TestFigure2Example replays the paper's Figure 2 worked example: two
// different interleavings of G += L end with identical State Hashes while
// the per-thread hashes differ.
func TestFigure2Example(t *testing.T) {
	const g = 0x4000
	// Run (a): thread 0 writes 9 (2+7), thread 1 writes 12 (9+3).
	th0a, th1a := NewAccumulator(nil), NewAccumulator(nil)
	th0a.Write(g, 2, 9)
	th1a.Write(g, 9, 12)
	// Run (b): thread 1 writes 5 (2+3), thread 0 writes 12 (5+7).
	th0b, th1b := NewAccumulator(nil), NewAccumulator(nil)
	th1b.Write(g, 2, 5)
	th0b.Write(g, 5, 12)

	shA := CombineAll(th0a.Value(), th1a.Value())
	shB := CombineAll(th0b.Value(), th1b.Value())
	if shA != shB {
		t.Errorf("SH differs across equivalent runs: %s vs %s", shA, shB)
	}
	if th0a.Value() == th0b.Value() {
		t.Error("thread hashes should differ across runs (internal nondeterminism)")
	}
	// SH must equal the direct delta ⊖h(G,2) ⊕ h(G,12).
	h := Mix64{}
	want := Zero.Subtract(h.HashWord(g, 2)).Combine(h.HashWord(g, 12))
	if shA != want {
		t.Errorf("SH = %s, want the ⊖h(G,2)⊕h(G,12) delta %s", shA, want)
	}
}

// TestDifferentStatesDiffer checks basic collision resistance: random
// single-word differences always produce different digests (for 64-bit
// hashes a collision here would be astronomically unlikely).
func TestDifferentStatesDiffer(t *testing.T) {
	for _, h := range hashers {
		h := h
		f := func(addr, v0, v1 uint64) bool {
			if v0 == v1 {
				return true
			}
			a := NewAccumulator(h)
			a.Insert(addr, v0)
			b := NewAccumulator(h)
			b.Insert(addr, v1)
			return a.Value() != b.Value()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: %v", h.Name(), err)
		}
	}
}

// TestHashWordNonZero checks h(a, v) never returns the group identity,
// which would make a word invisible to the state hash.
func TestHashWordNonZero(t *testing.T) {
	for _, h := range hashers {
		h := h
		f := func(addr, v uint64) bool { return h.HashWord(addr, v) != Zero }
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", h.Name(), err)
		}
	}
}

// TestAvalanche samples the bit-flip behavior of the hashers: flipping one
// input bit should flip roughly half the output bits on average.
func TestAvalanche(t *testing.T) {
	for _, h := range hashers {
		rng := rand.New(rand.NewSource(42))
		const samples = 2000
		totalFlips := 0
		for i := 0; i < samples; i++ {
			addr, v := rng.Uint64(), rng.Uint64()
			base := uint64(h.HashWord(addr, v))
			bit := uint(rng.Intn(64))
			flipped := uint64(h.HashWord(addr, v^(1<<bit)))
			totalFlips += popcount(base ^ flipped)
		}
		avg := float64(totalFlips) / samples
		if avg < 24 || avg > 40 {
			t.Errorf("%s: average avalanche %f bits, want ≈32", h.Name(), avg)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// TestSetValueRestore checks save/restore round-trips (the basis of the
// save_hash/restore_hash virtualization support).
func TestSetValueRestore(t *testing.T) {
	a := NewAccumulator(nil)
	a.Insert(1, 2)
	a.Insert(3, 4)
	saved := a.Value()
	a.Reset()
	if a.Value() != Zero {
		t.Fatal("reset did not clear")
	}
	a.SetValue(saved)
	if a.Value() != saved {
		t.Fatal("restore mismatch")
	}
}

// TestHasherNames pins the diagnostic names.
func TestHasherNames(t *testing.T) {
	if (Mix64{}).Name() != "mix64" {
		t.Error("mix64 name")
	}
	if (CRC64{}).Name() != "crc64-ecma" {
		t.Error("crc64 name")
	}
	if NewAccumulator(nil).Hasher().Name() != "mix64" {
		t.Error("default hasher should be mix64")
	}
}

// TestDigestString pins the hash rendering format.
func TestDigestString(t *testing.T) {
	if got := Digest(0xabc).String(); got != "0000000000000abc" {
		t.Errorf("String() = %q", got)
	}
}
