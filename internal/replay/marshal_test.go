package replay

import (
	"bytes"
	"testing"
)

// TestAddrLogMarshalRoundTrip: marshal → unmarshal reproduces every entry.
func TestAddrLogMarshalRoundTrip(t *testing.T) {
	l := NewAddrLog()
	l.Record("alloc@main.go:10", 0, 0x1000)
	l.Record("alloc@main.go:10", 1, 0x2000)
	l.Record("alloc@worker.go:44", 0, 0x8000_0000_0000)
	l.Record("z", 7, 1)

	b, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalAddrLog(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != l.Len() {
		t.Fatalf("round trip lost entries: %d != %d", got.Len(), l.Len())
	}
	for k, v := range l.addrs {
		g, ok := got.Lookup(k.site, k.seq)
		if !ok || g != v {
			t.Errorf("entry %s#%d: got %#x ok=%v, want %#x", k.site, k.seq, g, ok, v)
		}
	}
}

// TestAddrLogDigestDeterministic: insertion order must not matter — the
// digest is a content address, so two recordings of the same execution must
// key the same blob.
func TestAddrLogDigestDeterministic(t *testing.T) {
	a, b := NewAddrLog(), NewAddrLog()
	entries := []struct {
		site string
		seq  int
		addr uint64
	}{
		{"s1", 0, 10}, {"s1", 1, 20}, {"s2", 0, 30}, {"s0", 5, 40},
	}
	for _, e := range entries {
		a.Record(e.site, e.seq, e.addr)
	}
	for i := len(entries) - 1; i >= 0; i-- {
		b.Record(entries[i].site, entries[i].seq, entries[i].addr)
	}
	da, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Fatalf("digest depends on insertion order: %s != %s", da, db)
	}

	b.Record("s9", 0, 99)
	db2, _ := b.Digest()
	if db2 == db {
		t.Fatal("digest did not change with content")
	}
}

// TestDigestHexRoundTrip: the wire form of a digest parses back.
func TestDigestHexRoundTrip(t *testing.T) {
	l := NewAddrLog()
	l.Record("s", 0, 42)
	d, err := l.Digest()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseDigest(d.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatalf("hex round trip: %s != %s", got, d)
	}
	if _, err := ParseDigest("zz"); err == nil {
		t.Fatal("ParseDigest accepted garbage")
	}
}

// TestEnvRoundTrip: a recorded env's streams survive serialization, and a
// fork of the deserialized env replays the identical values — the property
// worker-side replay depends on.
func TestEnvRoundTrip(t *testing.T) {
	e := NewEnv(42)
	var want []uint64
	for i := 0; i < 5; i++ {
		want = append(want, e.Rand(0))
	}
	want = append(want, e.Next(3, "gettimeofday"))

	b, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalEnv(b)
	if err != nil {
		t.Fatal(err)
	}

	// Both the original and the deserialized env fork to identical replays.
	f1, f2 := e.Fork(7), back.Fork(7)
	for i := 0; i < 5; i++ {
		v1, v2 := f1.Rand(0), f2.Rand(0)
		if v1 != want[i] || v2 != want[i] {
			t.Fatalf("draw %d: fork-of-original %d, fork-of-decoded %d, want %d", i, v1, v2, want[i])
		}
	}
	if v1, v2 := f1.Next(3, "gettimeofday"), f2.Next(3, "gettimeofday"); v1 != want[5] || v2 != want[5] {
		t.Fatalf("tid-3 stream: %d / %d, want %d", v1, v2, want[5])
	}
	// Past the recorded streams both forks draw from the fork seed, so they
	// still agree with each other (the determinism-across-workers property).
	for i := 0; i < 3; i++ {
		if v1, v2 := f1.Rand(0), f2.Rand(0); v1 != v2 {
			t.Fatalf("overflow draw %d disagrees: %d != %d", i, v1, v2)
		}
	}
}

// TestEnvMarshalDeterministic: stream map order must not leak into bytes.
func TestEnvMarshalDeterministic(t *testing.T) {
	mk := func() []byte {
		e := NewEnv(1)
		e.Rand(2)
		e.Rand(0)
		e.Next(1, "gettimeofday")
		e.Rand(1)
		b, err := e.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first := mk()
	for i := 0; i < 20; i++ {
		if !bytes.Equal(first, mk()) {
			t.Fatal("env serialization not deterministic")
		}
	}
}

// TestUnmarshalRejectsCorruption: truncated or mislabeled blobs error out
// instead of yielding a silently wrong replay substrate.
func TestUnmarshalRejectsCorruption(t *testing.T) {
	l := NewAddrLog()
	l.Record("site", 0, 0xdead)
	b, _ := l.MarshalBinary()
	if _, err := UnmarshalAddrLog(b[:len(b)-1]); err == nil {
		t.Error("truncated addr log accepted")
	}
	if _, err := UnmarshalAddrLog([]byte("icenv1")); err == nil {
		t.Error("wrong magic accepted")
	}

	e := NewEnv(1)
	e.Rand(0)
	eb, _ := e.MarshalBinary()
	if _, err := UnmarshalEnv(eb[:len(eb)-1]); err == nil {
		t.Error("truncated env accepted")
	}
	if _, err := UnmarshalEnv(b); err == nil {
		t.Error("addr log bytes accepted as env")
	}
}
