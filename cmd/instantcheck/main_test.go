package main

import (
	"testing"

	"instantcheck"
)

// smallCfg keeps CLI end-to-end tests fast.
var smallCfg = instantcheck.ExperimentConfig{Runs: 6, Threads: 4, Small: true}

func TestListCommand(t *testing.T) {
	if err := list(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCommand(t *testing.T) {
	if err := check("volrend", smallCfg); err != nil {
		t.Fatal(err)
	}
	if err := check("nosuchapp", smallCfg); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRacesCommand(t *testing.T) {
	if err := races("volrend", smallCfg); err != nil {
		t.Fatal(err)
	}
	if err := races("nosuchapp", smallCfg); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestTableAndFigureCommands(t *testing.T) {
	for name, f := range map[string]func(instantcheck.ExperimentConfig, bool) error{
		"table2": table2,
		"fig5":   fig5,
		"fig6":   fig6,
		"fig8":   fig8,
	} {
		for _, asJSON := range []bool{false, true} {
			if err := f(smallCfg, asJSON); err != nil {
				t.Fatalf("%s (json=%v): %v", name, asJSON, err)
			}
		}
	}
}

// TestTable1Command runs the full driver at test scale.
func TestTable1Command(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := table1(smallCfg, true); err != nil {
		t.Fatal(err)
	}
}
