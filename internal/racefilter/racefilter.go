// Package racefilter implements the benign-data-race application of the
// InstantCheck primitive (paper §6.1). Data-race detectors report every
// race, but Narayanasamy et al. found ~90% of reported races to be benign —
// they never change the program's outcome — and proposed classifying races
// by comparing the memory states produced when the race resolves both
// ways. InstantCheck makes that comparison cheap: states are compared by
// their 64-bit hashes, and a race is flagged harmful only when the states
// actually diverge.
//
// The package provides two pieces:
//
//   - Detector: a FastTrack-style vector-clock happens-before race
//     detector, fed by the simulator's event stream (the baseline race
//     detector InstantCheck would piggyback on);
//   - Classify: runs the program under many schedules and marks each
//     detected racy address benign or harmful by whether any reachable
//     final state disagrees at it — the paper's observation that "using
//     InstantCheck to detect races already filters out benign races
//     because of the state comparison that InstantCheck performs".
package racefilter

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"instantcheck/internal/mem"
	"instantcheck/internal/replay"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

// AccessKind distinguishes the racing access pair.
type AccessKind int

const (
	// WriteWrite is a write racing a previous write.
	WriteWrite AccessKind = iota
	// ReadWrite is a write racing a previous read.
	ReadWrite
	// WriteRead is a read racing a previous write.
	WriteRead
)

// String names the pair like race reports do.
func (k AccessKind) String() string {
	switch k {
	case WriteWrite:
		return "write-write"
	case ReadWrite:
		return "read-write"
	case WriteRead:
		return "write-read"
	default:
		return "AccessKind(?)"
	}
}

// Race is one detected happens-before race, deduplicated by address and
// kind.
type Race struct {
	// Addr is the racy word.
	Addr uint64
	// Kind is the access pair.
	Kind AccessKind
	// TidA and TidB are the two unordered threads (first occurrence).
	TidA, TidB int
	// Site attributes the address to its allocation site (when known).
	Site string
	// Offset is the word offset within the site's block.
	Offset int
	// SiteA and SiteB are the source sites ("file.go:line") of the two
	// racing accesses, in the order named by Kind (A first). They carry
	// the same file:line identity the static `icvet race` analysis
	// reports, so a dynamic race can be checked against the static
	// candidate-pair report (the soundness cross-check).
	SiteA, SiteB string
}

// epoch is a (thread, clock) pair, FastTrack-style, carrying the source
// pc of the access for site attribution.
type epoch struct {
	tid   int
	clock uint64
	pc    uintptr
}

// addrState is the per-address detector metadata.
type addrState struct {
	write epoch
	reads map[int]epoch // tid -> last read epoch
}

// Detector is a vector-clock happens-before race detector implementing
// sim.EventListener. It is the baseline detector the paper's §6.1
// discussion assumes; attach it via sim.Config.Events.
type Detector struct {
	nt      int
	vc      [][]uint64
	locks   map[*sched.Mutex][]uint64
	addrs   map[uint64]*addrState
	races   map[raceKey]*Race
	started bool // workers have begun (setup happens-before all workers)
}

type raceKey struct {
	addr uint64
	kind AccessKind
}

// NewDetector returns a detector for nt worker threads (plus the init
// thread).
func NewDetector(nt int) *Detector {
	d := &Detector{
		nt:    nt,
		locks: make(map[*sched.Mutex][]uint64),
		addrs: make(map[uint64]*addrState),
		races: make(map[raceKey]*Race),
	}
	d.vc = make([][]uint64, nt+1)
	for i := range d.vc {
		d.vc[i] = make([]uint64, nt+1)
		d.vc[i][i] = 1
	}
	return d
}

// slot maps a thread id (init = -1) to its vector-clock index.
func (d *Detector) slot(tid int) int {
	if tid < 0 {
		return d.nt
	}
	return tid
}

// begin applies the program-start edge: Setup happens-before every worker.
func (d *Detector) begin(tid int) {
	if d.started || tid < 0 {
		return
	}
	d.started = true
	init := d.vc[d.nt]
	for t := 0; t < d.nt; t++ {
		join(d.vc[t], init)
	}
}

func join(dst, src []uint64) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// OnRead implements sim.EventListener.
func (d *Detector) OnRead(tid int, addr uint64, pc uintptr) {
	d.begin(tid)
	s := d.slot(tid)
	st := d.state(addr)
	if st.write.clock > 0 && st.write.tid != s && st.write.clock > d.vc[s][st.write.tid] {
		d.report(addr, WriteRead, st.write.tid, s, st.write.pc, pc)
	}
	if st.reads == nil {
		st.reads = make(map[int]epoch)
	}
	st.reads[s] = epoch{tid: s, clock: d.vc[s][s], pc: pc}
}

// OnWrite implements sim.EventListener.
func (d *Detector) OnWrite(tid int, addr uint64, pc uintptr) {
	d.begin(tid)
	s := d.slot(tid)
	st := d.state(addr)
	if st.write.clock > 0 && st.write.tid != s && st.write.clock > d.vc[s][st.write.tid] {
		d.report(addr, WriteWrite, st.write.tid, s, st.write.pc, pc)
	}
	for rt, re := range st.reads {
		if rt != s && re.clock > d.vc[s][rt] {
			d.report(addr, ReadWrite, rt, s, re.pc, pc)
		}
	}
	st.write = epoch{tid: s, clock: d.vc[s][s], pc: pc}
	st.reads = nil
}

// OnAcquire implements sim.EventListener: acquiring a lock joins the
// lock's release clock into the thread.
func (d *Detector) OnAcquire(tid int, mu *sched.Mutex) {
	d.begin(tid)
	if lv := d.locks[mu]; lv != nil {
		join(d.vc[d.slot(tid)], lv)
	}
}

// OnRelease implements sim.EventListener: releasing publishes the thread's
// clock on the lock and advances the thread's epoch.
func (d *Detector) OnRelease(tid int, mu *sched.Mutex) {
	d.begin(tid)
	s := d.slot(tid)
	lv := d.locks[mu]
	if lv == nil {
		lv = make([]uint64, d.nt+1)
		d.locks[mu] = lv
	}
	copy(lv, d.vc[s])
	d.vc[s][s]++
}

// OnBarrier implements sim.EventListener: a barrier episode totally orders
// all threads — everyone joins everyone and advances.
func (d *Detector) OnBarrier(ordinal int) {
	var all []uint64
	for t := 0; t < d.nt; t++ {
		if all == nil {
			all = append([]uint64(nil), d.vc[t]...)
		} else {
			join(all, d.vc[t])
		}
	}
	for t := 0; t < d.nt; t++ {
		join(d.vc[t], all)
		d.vc[t][t]++
	}
}

func (d *Detector) state(addr uint64) *addrState {
	st := d.addrs[addr]
	if st == nil {
		st = &addrState{}
		d.addrs[addr] = st
	}
	return st
}

func (d *Detector) report(addr uint64, kind AccessKind, a, b int, pcA, pcB uintptr) {
	k := raceKey{addr, kind}
	if _, dup := d.races[k]; dup {
		return
	}
	d.races[k] = &Race{
		Addr: addr, Kind: kind, TidA: a, TidB: b,
		SiteA: siteString(pcA), SiteB: siteString(pcB),
	}
}

// siteString renders an access pc as "file.go:line" with the path
// shortened to its last two components — stable across checkouts, and the
// form the static race report's site IDs reduce to for matching.
func siteString(pc uintptr) string {
	file, line := sim.SitePos(pc)
	if file == "" {
		return "?"
	}
	return fmt.Sprintf("%s:%d", shortPath(file), line)
}

// shortPath keeps the final directory and base name of a source path.
func shortPath(file string) string {
	short := filepath.ToSlash(file)
	parts := strings.Split(short, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}

// Races returns the detected races sorted by address then kind.
func (d *Detector) Races() []Race {
	out := make([]Race, 0, len(d.races))
	for _, r := range d.races {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Config drives detection and classification runs.
type Config struct {
	// Threads is the worker thread count.
	Threads int
	// Runs is the number of schedules for detection/classification
	// (default 10).
	Runs int
	// BaseSeed derives schedule seeds.
	BaseSeed int64
	// InputSeed fixes the program input.
	InputSeed int64
	// RoundFP enables FP rounding in state comparison.
	RoundFP bool
}

func (c Config) runs() int {
	if c.Runs == 0 {
		return 10
	}
	return c.Runs
}

// Detect runs the program under several schedules with the detector
// attached and returns the union of races found, attributed to allocation
// sites.
func Detect(build func() sim.Program, cfg Config) ([]Race, error) {
	env := replay.NewEnv(cfg.InputSeed)
	addrLog := replay.NewAddrLog()
	union := make(map[raceKey]Race)
	for run := 0; run < cfg.runs(); run++ {
		det := NewDetector(cfg.Threads)
		m := sim.NewMachine(sim.Config{
			Threads:      cfg.Threads,
			ScheduleSeed: cfg.BaseSeed + int64(run),
			Scheme:       sim.HWInc,
			RoundFP:      cfg.RoundFP,
			Env:          env,
			AddrLog:      addrLog,
			Events:       det,
		})
		if _, err := m.Run(build()); err != nil {
			return nil, fmt.Errorf("racefilter: detection run %d: %w", run+1, err)
		}
		for _, r := range det.Races() {
			k := raceKey{r.Addr, r.Kind}
			if _, ok := union[k]; !ok {
				if b := m.Mem.BlockAt(r.Addr); b != nil {
					r.Site = b.Site
					r.Offset = int((r.Addr - b.Base) / mem.WordSize)
				} else if b := m.Mem.BlockByBase(r.Addr); b != nil {
					r.Site = b.Site
				} else {
					r.Site = "?"
				}
				union[k] = r
			}
		}
	}
	out := make([]Race, 0, len(union))
	for _, r := range union {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Kind < out[j].Kind
	})
	return out, nil
}

// Verdict classifies one race.
type Verdict struct {
	Race Race
	// Benign is true when no explored schedule produced a final state
	// that disagrees at the racy address (Narayanasamy-style state
	// comparison, done with InstantCheck snapshots).
	Benign bool
	// DistinctValues is the number of distinct final values observed at
	// the address across schedules (1 for benign races on live words).
	DistinctValues int
}

// Classification is the overall §6.1 result.
type Classification struct {
	// Verdicts holds one entry per detected race, ordered as Detect.
	Verdicts []Verdict
	// Deterministic is the program-level InstantCheck verdict across the
	// same schedules: when true, every race is necessarily benign.
	Deterministic bool
}

// BenignCount returns how many races were classified benign.
func (c *Classification) BenignCount() int {
	n := 0
	for _, v := range c.Verdicts {
		if v.Benign {
			n++
		}
	}
	return n
}

// Classify detects races and then classifies each one by comparing the
// final memory states of many schedules at the racy address. A race whose
// address ends with the same value under every explored schedule is
// benign; one whose address diverges is harmful.
//
// Note the approximation (shared with state-comparison classifiers): a
// race whose own address converges but which steers *other* state is
// caught through the program-level Deterministic verdict, not the
// per-address one.
func Classify(build func() sim.Program, cfg Config) (*Classification, error) {
	races, err := Detect(build, cfg)
	if err != nil {
		return nil, err
	}
	env := replay.NewEnv(cfg.InputSeed)
	addrLog := replay.NewAddrLog()
	var snaps []*mem.Snapshot
	deterministic := true
	var firstSH uint64
	for run := 0; run < cfg.runs(); run++ {
		m := sim.NewMachine(sim.Config{
			Threads:      cfg.Threads,
			ScheduleSeed: cfg.BaseSeed + int64(run),
			Scheme:       sim.HWInc,
			RoundFP:      cfg.RoundFP,
			Env:          env,
			AddrLog:      addrLog,
		})
		res, err := m.Run(build())
		if err != nil {
			return nil, fmt.Errorf("racefilter: classify run %d: %w", run+1, err)
		}
		snaps = append(snaps, m.Mem.Snapshot())
		sh := uint64(res.FinalSH())
		if run == 0 {
			firstSH = sh
		} else if sh != firstSH {
			deterministic = false
		}
	}
	cl := &Classification{Deterministic: deterministic}
	for _, r := range races {
		values := make(map[uint64]bool)
		for _, s := range snaps {
			v, live := s.Word(r.Addr)
			if !live {
				continue // freed by run end: not part of the final state
			}
			values[v] = true
		}
		cl.Verdicts = append(cl.Verdicts, Verdict{
			Race:           r,
			Benign:         len(values) <= 1,
			DistinctValues: len(values),
		})
	}
	return cl, nil
}
