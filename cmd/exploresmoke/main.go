// Command exploresmoke is the exploration smoke gate: it launches a real
// checkd process, submits one explore job per strategy — each hunting a
// seeded Figure 7 bug in a regime where that strategy is known to find it
// — and requires every search to report a divergence within its budget.
// It then scrapes /metrics from the live daemon, failing on malformed
// Prometheus exposition or on missing per-strategy explore series. CI runs
// it next to the fleet smoke step (`make explore-smoke`).
//
// Usage:
//
//	exploresmoke [-checkd path/to/checkd] [-keep]
//
// Without -checkd the daemon binary is built into a temp directory with
// the local go toolchain.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"instantcheck/internal/farm"
	"instantcheck/internal/obs"
)

// smokeJobs pairs every strategy with a seeded bug it must find. The
// uniform and coverage searches run at the scheduler's default preemption
// cadence, where any schedule perturbation surfaces the atomicity bug in a
// few runs; pct and race-directed run in the rare-preemption stress regime
// their schedule shaping is for (the regimes measured by `instantcheck
// exploreeff`).
var smokeJobs = []farm.JobSpec{
	{App: "waterSP", Kind: "explore", Strategy: "uniform", Bug: "atomicity",
		Runs: 10, Threads: 4, InputSeed: 1, RoundFP: true, Small: true},
	{App: "waterSP", Kind: "explore", Strategy: "coverage", Bug: "atomicity",
		Runs: 10, Threads: 4, InputSeed: 1, RoundFP: true, Small: true},
	{App: "waterSP", Kind: "explore", Strategy: "race-directed", Bug: "atomicity",
		Runs: 40, Threads: 4, InputSeed: 1, RoundFP: true, Small: true, SwitchInterval: 4000},
	{App: "radix", Kind: "explore", Strategy: "pct", Bug: "order",
		Runs: 40, Threads: 4, InputSeed: 1, Small: true, SwitchInterval: 20000},
}

func main() {
	checkdPath := flag.String("checkd", "", "checkd binary (empty: go build ./cmd/checkd into a temp dir)")
	keep := flag.Bool("keep", false, "keep the temp store/binary directory for inspection")
	flag.Parse()
	log.SetPrefix("exploresmoke: ")
	log.SetFlags(0)
	if err := run(*checkdPath, *keep); err != nil {
		log.Fatal(err)
	}
	log.Print("PASS")
}

func run(checkdPath string, keep bool) error {
	dir, err := os.MkdirTemp("", "exploresmoke")
	if err != nil {
		return err
	}
	if keep {
		log.Printf("workdir %s", dir)
	} else {
		defer os.RemoveAll(dir)
	}

	if checkdPath == "" {
		checkdPath = filepath.Join(dir, "checkd")
		build := exec.Command("go", "build", "-o", checkdPath, "./cmd/checkd")
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("build checkd: %w", err)
		}
	}

	// A free port for the daemon: bind :0, remember, release.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	ln.Close()

	daemon := exec.Command(checkdPath,
		"-addr", addr,
		"-store", filepath.Join(dir, "farm.log"))
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("start checkd: %w", err)
	}
	defer func() {
		daemon.Process.Signal(syscall.SIGTERM)
		daemon.Wait()
	}()

	c := farm.NewClient("http://" + addr)
	if err := waitHealthy(c, 15*time.Second); err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	for _, spec := range smokeJobs {
		job, err := c.Submit(ctx, spec)
		if err != nil {
			return fmt.Errorf("submit %s: %w", spec.Strategy, err)
		}
		done, err := c.Wait(ctx, job.ID, 100*time.Millisecond)
		if err != nil {
			return fmt.Errorf("wait %s: %w", spec.Strategy, err)
		}
		if done.State != farm.JobDone {
			return fmt.Errorf("%s job finished as %s: %s", spec.Strategy, done.State, done.Error)
		}
		rep, err := c.Report(ctx, job.ID)
		if err != nil {
			return fmt.Errorf("report %s: %w", spec.Strategy, err)
		}
		out := rep.Explore
		if out == nil || out.Strategy != spec.Strategy {
			return fmt.Errorf("%s job report carries outcome %+v", spec.Strategy, out)
		}
		if !out.Found {
			return fmt.Errorf("explore[%s] missed the seeded %s bug in %s within its %d-run budget",
				spec.Strategy, spec.Bug, spec.App, out.Budget)
		}
		log.Printf("explore[%s]: %s %s bug found at run %d of budget %d",
			spec.Strategy, spec.App, spec.Bug, out.DivergedRun, out.Budget)
	}

	// The live scrape lints clean and carries every strategy's explore
	// series, with at least one divergence counted per strategy.
	samples, err := scrapeAndLint(c)
	if err != nil {
		return fmt.Errorf("post-search scrape: %w", err)
	}
	runsBy := map[string]float64{}
	divBy := map[string]float64{}
	for _, s := range samples {
		switch s.Name {
		case "checkfarm_explore_runs_total":
			runsBy[s.Labels["strategy"]] = s.Value
		case "checkfarm_explore_divergences_total":
			divBy[s.Labels["strategy"]] = s.Value
		}
	}
	for _, spec := range smokeJobs {
		if runsBy[spec.Strategy] == 0 {
			return fmt.Errorf("scrape has no checkfarm_explore_runs_total{strategy=%q}", spec.Strategy)
		}
		if divBy[spec.Strategy] == 0 {
			return fmt.Errorf("scrape counts no divergence for strategy %q", spec.Strategy)
		}
	}
	log.Printf("scraped %d samples from live daemon, explore series present for all %d strategies",
		len(samples), len(smokeJobs))
	return nil
}

// waitHealthy polls /healthz until the daemon answers.
func waitHealthy(c *farm.Client, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		h, err := c.Health(context.Background())
		if err == nil && h.Status == "ok" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon not healthy after %v: %v", timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// scrapeAndLint fetches /metrics and validates the exposition format.
func scrapeAndLint(c *farm.Client) ([]obs.Sample, error) {
	text, err := c.MetricsText(context.Background())
	if err != nil {
		return nil, err
	}
	if err := obs.Lint(strings.NewReader(text)); err != nil {
		return nil, fmt.Errorf("malformed exposition: %w", err)
	}
	return obs.ParseExposition(strings.NewReader(text))
}
