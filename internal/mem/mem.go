// Package mem implements the simulated shared memory InstantCheck observes:
// a 64-bit word-grained address space with an allocation table that records,
// for every live block, its allocation site, extent, and element kind. The
// table serves three of the paper's mechanisms:
//
//   - traversal hashing (SW-InstantCheck_Tr, §4.2) walks the static segment
//     plus the table of live allocations;
//   - the state-diff debugging tool (§2.3) maps a differing address back to
//     the source line that allocated it and the offset within the block;
//   - FP round-off during traversal needs to know which words hold doubles,
//     information the paper encodes as per-site type annotations.
//
// Memory is byte-addressed with 8-byte-aligned 8-byte words, matching the
// paper's model of hashing (virtual address, value) pairs at store
// granularity. Allocations are zero-filled, as InstantCheck's allocator
// interception does (§5), so that uninitialized garbage can never corrupt
// the state hash.
package mem

import (
	"fmt"
	"sort"
)

// WordSize is the grain of the simulated memory in bytes.
const WordSize = 8

// Kind describes what a word holds, so the hashing layers know whether the
// FP round-off unit applies. The paper obtains this from the compiler (LLVM
// marks FP stores) for the incremental schemes and from allocation-site type
// annotations for the traversal scheme.
type Kind uint8

const (
	// KindWord is an integer/pointer/opaque 64-bit word.
	KindWord Kind = iota
	// KindFloat is an IEEE-754 float64 stored as its bit pattern.
	KindFloat
)

// String returns "word" or "float".
func (k Kind) String() string {
	if k == KindFloat {
		return "float"
	}
	return "word"
}

// Block describes one allocation (or one static segment entry).
type Block struct {
	// Base is the address of the first word. Always WordSize-aligned.
	Base uint64
	// Words is the block length in 8-byte words.
	Words int
	// Site is the allocation-site label ("file:line" morally; any stable
	// string). The state-diff tool reports it to the programmer.
	Site string
	// Kind is the element kind of every word in the block. Mixed-kind
	// records are modeled as adjacent blocks of uniform kind, which is how
	// the paper's recursive type annotations flatten out.
	Kind Kind
	// Static marks blocks in the static data segment: allocated at setup,
	// never freed, always part of the hashed state.
	Static bool
	// Seq is the per-site allocation sequence number (0-based). Together
	// with Site it identifies "the j-th allocation at this site", the key
	// under which the deterministic-replay allocator logs addresses.
	Seq int
	// Live is false once the block has been freed.
	Live bool
}

// End returns the address one past the last word of the block.
func (b *Block) End() uint64 { return b.Base + uint64(b.Words)*WordSize }

// Contains reports whether addr falls inside the block.
func (b *Block) Contains(addr uint64) bool { return addr >= b.Base && addr < b.End() }

const (
	// StaticBase is where the static data segment begins.
	StaticBase uint64 = 0x0000_0000_0001_0000
	// HeapBase is where dynamic allocation begins.
	HeapBase  uint64 = 0x0000_0000_1000_0000
	pageWords        = 512
	pageBytes        = pageWords * WordSize
)

type page [pageWords]uint64

// Memory is one simulated address space. It is not safe for concurrent use;
// the serializing scheduler guarantees only one thread touches it at a time.
type Memory struct {
	pages map[uint64]*page

	// blocks maps base address -> block, for both live and freed heap
	// blocks (freed ones kept so the state-diff tool can still attribute
	// dangling pointers). order holds live block bases sorted ascending.
	blocks map[uint64]*Block
	order  []uint64 // sorted bases of live blocks (heap and static)

	staticNext uint64
	heapNext   uint64

	// AddrHook, when non-nil, intercepts heap allocation placement: given
	// (site, seq, words) it may return a previously logged address. This is
	// the attachment point for the paper's malloc record/replay (§5).
	AddrHook func(site string, seq int, words int) (addr uint64, ok bool)

	siteSeq map[string]int

	liveWords   int
	staticWords int
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{
		pages:      make(map[uint64]*page),
		blocks:     make(map[uint64]*Block),
		staticNext: StaticBase,
		heapNext:   HeapBase,
		siteSeq:    make(map[string]int),
	}
}

// AllocStatic reserves words in the static segment under the given site
// label. Static memory is always part of the hashed program state.
func (m *Memory) AllocStatic(site string, words int, kind Kind) uint64 {
	if words <= 0 {
		panic("mem: static allocation of non-positive size")
	}
	base := m.staticNext
	m.staticNext += roundUpWords(words)
	b := &Block{Base: base, Words: words, Site: site, Kind: kind, Static: true, Live: true}
	m.insertBlock(b)
	m.staticWords += words
	m.liveWords += words
	return base
}

// Alloc allocates a zero-filled block of words under the given site label
// and returns its base address. If AddrHook supplies a logged address for
// (site, seq) the block is placed there, implementing deterministic replay
// of malloc; otherwise a fresh bump address is used.
func (m *Memory) Alloc(site string, words int, kind Kind) *Block {
	if words <= 0 {
		panic("mem: allocation of non-positive size")
	}
	seq := m.siteSeq[site]
	m.siteSeq[site] = seq + 1
	var base uint64
	placed := false
	if m.AddrHook != nil {
		if a, ok := m.AddrHook(site, seq, words); ok {
			base = a
			placed = true
		}
	}
	if !placed {
		base = m.heapNext
		m.heapNext += roundUpWords(words)
	} else if base >= m.heapNext {
		m.heapNext = base + roundUpWords(words)
	}
	if old, exists := m.blocks[base]; exists && old.Live {
		panic(fmt.Sprintf("mem: allocator placed block at %#x which is still live (site %s)", base, old.Site))
	}
	b := &Block{Base: base, Words: words, Site: site, Kind: kind, Seq: seq, Live: true}
	m.insertBlock(b)
	m.liveWords += words
	// Zero-fill, as InstantCheck's allocator interception does.
	for i := 0; i < words; i++ {
		m.storeRaw(base+uint64(i)*WordSize, 0)
	}
	return b
}

// Free retires the block based at base and returns it. The block's current
// word values remain readable through ReadFreed for hash-erasure purposes,
// but the block no longer belongs to the traversed state. Freeing a static
// block or an address that is not a live block base panics.
func (m *Memory) Free(base uint64) *Block {
	b := m.blocks[base]
	if b == nil || !b.Live {
		panic(fmt.Sprintf("mem: free of %#x which is not a live block", base))
	}
	if b.Static {
		panic(fmt.Sprintf("mem: free of static block %q at %#x", b.Site, base))
	}
	b.Live = false
	m.removeOrder(base)
	m.liveWords -= b.Words
	return b
}

// Load returns the word at addr. Loading outside any live block panics:
// it is either a use-after-free or a wild read in the workload kernel.
func (m *Memory) Load(addr uint64) uint64 {
	m.checkLive(addr, "load")
	return m.loadRaw(addr)
}

// Store writes value at addr and returns the previous value — the Data_old
// the MHM reads from the L1 line before the update (§3.1). Storing outside
// any live block panics.
func (m *Memory) Store(addr, value uint64) (old uint64) {
	m.checkLive(addr, "store")
	old = m.loadRaw(addr)
	m.storeRaw(addr, value)
	return old
}

// Peek reads a word without liveness checking (for snapshots and the
// hash-erasure path on free).
func (m *Memory) Peek(addr uint64) uint64 { return m.loadRaw(addr) }

// BlockAt returns the live block containing addr, or nil.
func (m *Memory) BlockAt(addr uint64) *Block {
	i := sort.Search(len(m.order), func(i int) bool { return m.order[i] > addr })
	if i == 0 {
		return nil
	}
	b := m.blocks[m.order[i-1]]
	if b != nil && b.Live && b.Contains(addr) {
		return b
	}
	return nil
}

// BlockByBase returns the block (live or freed) whose base is exactly base,
// or nil. Freed blocks are retained for state-diff attribution.
func (m *Memory) BlockByBase(base uint64) *Block { return m.blocks[base] }

// LiveWords returns the number of words in the hashed state (static + live
// heap) — the quantity SW-InstantCheck_Tr sweeps at each checkpoint.
func (m *Memory) LiveWords() int { return m.liveWords }

// StaticWords returns the size of the static segment in words.
func (m *Memory) StaticWords() int { return m.staticWords }

// Traverse visits every word of the hashed state (static segment plus live
// heap blocks) in ascending address order, calling fn(addr, value, kind).
// This is the sweep SW-InstantCheck_Tr performs at each checkpoint.
func (m *Memory) Traverse(fn func(addr, value uint64, kind Kind)) {
	for _, base := range m.order {
		b := m.blocks[base]
		for i := 0; i < b.Words; i++ {
			addr := b.Base + uint64(i)*WordSize
			fn(addr, m.loadRaw(addr), b.Kind)
		}
	}
}

// TraverseBlocks visits every live block in ascending address order.
func (m *Memory) TraverseBlocks(fn func(b *Block)) {
	for _, base := range m.order {
		fn(m.blocks[base])
	}
}

// Snapshot captures the full hashed state for the state-diff tool: a copy
// of every live word plus the block table. The paper's prototype does the
// same when re-executing the two differing runs (§2.3).
func (m *Memory) Snapshot() *Snapshot {
	s := &Snapshot{Words: make(map[uint64]uint64, m.liveWords)}
	for _, base := range m.order {
		b := m.blocks[base]
		copied := *b
		s.Blocks = append(s.Blocks, &copied)
		for i := 0; i < b.Words; i++ {
			addr := b.Base + uint64(i)*WordSize
			s.Words[addr] = m.loadRaw(addr)
		}
	}
	return s
}

// Snapshot is a point-in-time copy of the hashed state.
type Snapshot struct {
	// Blocks lists the live blocks in ascending base order.
	Blocks []*Block
	// Words maps address -> value for every live word.
	Words map[uint64]uint64
}

// BlockAt returns the snapshot block containing addr, or nil.
func (s *Snapshot) BlockAt(addr uint64) *Block {
	i := sort.Search(len(s.Blocks), func(i int) bool { return s.Blocks[i].Base > addr })
	if i == 0 {
		return nil
	}
	b := s.Blocks[i-1]
	if b.Contains(addr) {
		return b
	}
	return nil
}

func (m *Memory) insertBlock(b *Block) {
	m.blocks[b.Base] = b
	i := sort.Search(len(m.order), func(i int) bool { return m.order[i] >= b.Base })
	m.order = append(m.order, 0)
	copy(m.order[i+1:], m.order[i:])
	m.order[i] = b.Base
}

func (m *Memory) removeOrder(base uint64) {
	i := sort.Search(len(m.order), func(i int) bool { return m.order[i] >= base })
	if i < len(m.order) && m.order[i] == base {
		m.order = append(m.order[:i], m.order[i+1:]...)
	}
}

func (m *Memory) checkLive(addr uint64, op string) {
	if addr%WordSize != 0 {
		panic(fmt.Sprintf("mem: misaligned %s at %#x", op, addr))
	}
	if m.BlockAt(addr) == nil {
		panic(fmt.Sprintf("mem: %s at %#x outside any live block (use-after-free or wild access)", op, addr))
	}
}

func (m *Memory) loadRaw(addr uint64) uint64 {
	p := m.pages[addr/pageBytes]
	if p == nil {
		return 0
	}
	return p[(addr%pageBytes)/WordSize]
}

func (m *Memory) storeRaw(addr, value uint64) {
	pn := addr / pageBytes
	p := m.pages[pn]
	if p == nil {
		p = new(page)
		m.pages[pn] = p
	}
	p[(addr%pageBytes)/WordSize] = value
}

func roundUpWords(words int) uint64 {
	// Round block footprints to 16 words so distinct sites never collide
	// and replayed addresses stay stable when sizes wobble slightly.
	const chunk = 16
	w := (words + chunk - 1) / chunk * chunk
	return uint64(w) * WordSize
}
