package sched

import (
	"fmt"
	"strings"
	"testing"
)

// TestRandomDeciderBudgetMean pins the documented switch-budget
// distribution: uniform on [1, 2*interval] with mean interval + 0.5 (the
// doc comment on New states the same; this test keeps the two honest).
func TestRandomDeciderBudgetMean(t *testing.T) {
	const interval = 8
	const samples = 200000
	d := newRandomDecider(12345, interval)
	sum := 0
	for i := 0; i < samples; i++ {
		b := d.SwitchBudget()
		if b < 1 || b > 2*interval {
			t.Fatalf("budget %d outside [1, %d]", b, 2*interval)
		}
		sum += b
	}
	mean := float64(sum) / samples
	want := float64(interval) + 0.5
	if mean < want-0.1 || mean > want+0.1 {
		t.Errorf("mean budget %.3f, want %.1f +- 0.1", mean, want)
	}
}

// pctTrace runs n threads of opsPer yields each under a PCT decider and
// returns the completion order.
func pctTrace(seed int64, n, d int, opsPer int) []string {
	p := NewPCT(n, d, uint64(n*opsPer), seed)
	s := NewControlled(n, p)
	var order []string
	_ = s.Run(func(tid int) {
		for i := 0; i < opsPer; i++ {
			s.Yield()
		}
		order = append(order, fmt.Sprintf("t%d", tid))
	})
	return order
}

// TestPCTStrictPriorityOrder checks that with no change points threads
// complete in strict priority order: the highest-priority thread is never
// preempted in favor of a lower one, so completion order equals priority
// order.
func TestPCTStrictPriorityOrder(t *testing.T) {
	const n, opsPer = 4, 50 // short enough that the spin guard never trips
	p := NewPCT(n, 0, uint64(n*opsPer), 7)
	prio := append([]int(nil), p.prio...)
	s := NewControlled(n, p)
	var order []int
	if err := s.Run(func(tid int) {
		for i := 0; i < opsPer; i++ {
			s.Yield()
		}
		order = append(order, tid)
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if prio[order[i-1]] < prio[order[i]] {
			t.Fatalf("completion order %v violates priority order (prio %v)", order, prio)
		}
	}
}

// TestPCTDeterministicAndSeedSensitive checks a PCT schedule is a pure
// function of its seed, and that different seeds explore different
// priority assignments.
func TestPCTDeterministicAndSeedSensitive(t *testing.T) {
	a := strings.Join(pctTrace(1, 4, 3, 40), ",")
	if b := strings.Join(pctTrace(1, 4, 3, 40), ","); a != b {
		t.Fatalf("same seed, different schedules: %s vs %s", a, b)
	}
	for seed := int64(2); seed < 10; seed++ {
		if strings.Join(pctTrace(seed, 4, 3, 40), ",") != a {
			return
		}
	}
	t.Error("8 different seeds produced identical completion orders")
}

// TestPCTChangePointDemotes checks a priority-change point actually fires:
// with d change points packed into a tiny operation budget the initially
// highest-priority thread is demoted early, so some seed must produce a
// completion order differing from the strict-priority (d=0) order.
func TestPCTChangePointDemotes(t *testing.T) {
	for seed := int64(1); seed < 20; seed++ {
		base := strings.Join(pctTrace(seed, 3, 0, 60), ",")
		// d=4 points in a 20-op budget: the leader is demoted almost
		// immediately, handing the run to the second-priority thread.
		p := NewPCT(3, 4, 20, seed)
		s := NewControlled(3, p)
		var order []string
		_ = s.Run(func(tid int) {
			for i := 0; i < 60; i++ {
				s.Yield()
			}
			order = append(order, fmt.Sprintf("t%d", tid))
		})
		if strings.Join(order, ",") != base {
			return
		}
	}
	t.Error("change points never altered the completion order across 19 seeds")
}

// TestPCTSpinGuardLiveness checks the spin guard: one thread spins on a
// flag only the other can set. Whatever the random priorities, the run
// must terminate — under strict priority without the guard, a
// high-priority spinner would livelock.
func TestPCTSpinGuardLiveness(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		p := NewPCT(2, 0, 1<<20, seed)
		s := NewControlled(2, p)
		flag := false
		if err := s.Run(func(tid int) {
			if tid == 0 {
				for !flag {
					s.Yield()
				}
			} else {
				for i := 0; i < 100; i++ {
					s.Yield()
				}
				flag = true
			}
		}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !flag {
			t.Fatalf("seed %d: run finished without the flag set", seed)
		}
	}
}
