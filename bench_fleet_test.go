package instantcheck

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"instantcheck/internal/farm"
	"instantcheck/internal/fleet"
	"instantcheck/internal/sim"
)

// BenchmarkFarmThroughputFleet extends BenchmarkFarmThroughput past process
// boundaries: the same campaign's replay stage dispatched through a fleet
// coordinator to N pull-based workers over HTTP (see internal/fleet). Two
// variants:
//
//   - fleet-workers=N: workers replay at natural speed. On a multi-core host
//     this scales like the in-process pool; on a single-CPU host it mostly
//     measures that the lease/stream protocol adds little overhead.
//   - fleet-remote-workers=N: each worker sleeps 10ms before every run,
//     emulating the per-run latency of a remote execution backend (a real
//     fleet's workers run on other machines; the simulator's replay here
//     stands in for that remote compute). This variant isolates the
//     coordinator's scaling behavior — wall-clock must shrink toward 1/N —
//     and is the one the EXPERIMENTS.md worker-count table records.
//
// The recording run happens once, outside the timer: the benchmark measures
// the distributed replay stage, which is where a fleet spends its time.
func BenchmarkFarmThroughputFleet(b *testing.B) {
	spec := farm.JobSpec{App: "radix", Runs: 33, Threads: 4, Seed: 50, InputSeed: 7, Small: true}
	camp, build, err := spec.Resolve()
	if err != nil {
		b.Fatal(err)
	}
	runner, err := camp.NewRunner(build)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := runner.Record(); err != nil {
		b.Fatal(err)
	}
	need := make([]int, 0, spec.Runs-1)
	for run := 1; run < spec.Runs; run++ {
		need = append(need, run)
	}

	variants := []struct {
		name    string
		latency time.Duration
	}{
		{"fleet-workers", 0},
		{"fleet-remote-workers", 10 * time.Millisecond},
	}
	for _, v := range variants {
		for _, n := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s=%d", v.name, n), func(b *testing.B) {
				coord := fleet.NewCoordinator(fleet.CoordinatorOptions{
					ShardSize: 4,
					LeaseTTL:  10 * time.Second,
				})
				ts := httptest.NewServer(coord.Handler())
				ctx, cancel := context.WithCancel(context.Background())
				var wg sync.WaitGroup
				defer func() {
					cancel()
					wg.Wait()
					ts.Close()
				}()
				for i := 0; i < n; i++ {
					w, err := fleet.NewWorker(fleet.WorkerOptions{
						Name:         fmt.Sprintf("bw%d", i),
						Coordinator:  ts.URL,
						CacheDir:     b.TempDir(),
						PollInterval: 2 * time.Millisecond,
						RunLatency:   v.latency,
					})
					if err != nil {
						b.Fatal(err)
					}
					wg.Add(1)
					go func() {
						defer wg.Done()
						w.Run(ctx)
					}()
				}
				deliver := func(run int, res *sim.Result) error { return nil }
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					id := farm.JobID(fmt.Sprintf("bench%06d", i))
					if err := coord.Dispatch(ctx, id, spec, runner, need, deliver); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
