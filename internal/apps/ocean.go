package apps

import (
	"instantcheck/internal/core"
	"instantcheck/internal/mem"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

func init() {
	register(&App{
		Name:          "ocean",
		Source:        "splash2",
		UsesFP:        true,
		ExpectedClass: core.ClassFPDeterministic,
		Build: func(o Options) sim.Program {
			p := &oceanProg{nt: o.threads(), g: 26, iters: 290}
			if o.Small {
				p.g, p.iters = 12, 12
			}
			return p
		},
	})
}

// oceanProg reproduces SPLASH-2's ocean: red-black Gauss-Seidel relaxation
// of a g×g grid. The red and black half-sweeps write disjoint cells and
// read only the opposite color (stable since the previous barrier), so the
// grid itself is bit-by-bit deterministic. The per-iteration residual,
// however, is reduced into a single shared accumulator under a lock — the
// addition order is schedule-dependent, so the residual word differs in its
// low mantissa bits across runs. With FP rounding the program is
// deterministic (Table 1: 871 points — 290 iterations × 3 barriers + end).
type oceanProg struct {
	nt    int
	g     int
	iters int

	grid      uint64 // g×g field
	resid     uint64 // shared residual accumulator
	residLock *sched.Mutex

	red, black, residBar barrier
}

func (p *oceanProg) Name() string { return "ocean" }

func (p *oceanProg) Threads() int { return p.nt }

func (p *oceanProg) at(i, j int) uint64 { return idx(p.grid, i*p.g+j) }

func (p *oceanProg) Setup(t *sim.Thread) {
	p.grid = t.AllocStatic("static:oc.grid", p.g*p.g, mem.KindFloat)
	p.resid = t.AllocStatic("static:oc.resid", 1, mem.KindFloat)
	p.residLock = t.Machine().NewMutex("oc.resid")
	rng := newXorshift(21)
	for i := 0; i < p.g; i++ {
		for j := 0; j < p.g; j++ {
			v := rng.unitFloat()
			if i == 0 || j == 0 || i == p.g-1 || j == p.g-1 {
				v = 1.0 // fixed boundary
			}
			t.StoreF(p.at(i, j), v)
		}
	}
	p.red = newBarrier(t, "oc.red")
	p.black = newBarrier(t, "oc.black")
	p.residBar = newBarrier(t, "oc.resid")
}

// relaxColor updates the interior cells of one color on this thread's rows
// and returns the sum of squared updates (the thread's residual partial).
func (p *oceanProg) relaxColor(t *sim.Thread, color, rlo, rhi int) float64 {
	partial := 0.0
	for i := rlo; i < rhi; i++ {
		for j := 1; j < p.g-1; j++ {
			if (i+j)%2 != color {
				continue
			}
			up := t.LoadF(p.at(i-1, j))
			down := t.LoadF(p.at(i+1, j))
			left := t.LoadF(p.at(i, j-1))
			right := t.LoadF(p.at(i, j+1))
			old := t.LoadF(p.at(i, j))
			v := 0.25 * (up + down + left + right)
			diff := v - old
			partial += diff * diff
			t.Compute(24) // stencil arithmetic + convergence bookkeeping
			t.StoreF(p.at(i, j), v)
		}
	}
	return partial
}

func (p *oceanProg) Worker(t *sim.Thread) {
	// Interior rows 1..g-2 partitioned across threads.
	rlo, rhi := span(p.g-2, p.nt, t.TID())
	rlo, rhi = rlo+1, rhi+1

	for it := 0; it < p.iters; it++ {
		if t.TID() == 0 {
			t.StoreF(p.resid, 0)
		}
		red := p.relaxColor(t, 0, rlo, rhi)
		p.red.await(t)
		black := p.relaxColor(t, 1, rlo, rhi)
		p.black.await(t)
		// Residual reduction: atomic per addition, racy in order.
		t.Lock(p.residLock)
		r := t.LoadF(p.resid)
		t.StoreF(p.resid, r+red+black)
		t.Unlock(p.residLock)
		p.residBar.await(t)
	}
}
