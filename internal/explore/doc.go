// Package explore implements the systematic-testing application of the
// InstantCheck primitive (paper §6.2). Systematic testing (CHESS-style)
// enumerates thread interleavings of a program while checking properties;
// its search space grows exponentially with the number of scheduling
// decisions. One way to fight the explosion is to recognize *equivalent
// states* and prune the search. Comparing entire states in software is too
// expensive, so CHESS prunes only by happens-before equivalence — which
// misses schedules that commute to the same state (the paper's Figure 1:
// two lock acquisition orders, same final state, different happens-before).
//
// With InstantCheck's cheap state hashes, pruning can be done by *state
// equality*: at every quiescent checkpoint (a barrier episode, where every
// thread is at a known program point) the explorer looks up the pair
// (checkpoint ordinal, State Hash); if it was already visited, the
// continuation subtree is identical to one explored before, and the run is
// aborted on the spot. This is both faster (more schedules pruned) and
// more precise (detects equal states even when the synchronization order
// differs) than happens-before pruning.
//
// The explorer comes in two shapes. Systematic is the exhaustive DFS over
// scheduling decisions, driven through the simulator's controlled
// scheduler: a scripted decider replays a prefix of choices and takes the
// first option afterwards, recording every decision point it passes; the
// explorer then branches on the recorded free decisions.
//
// # Exploration strategies
//
// Explore is the sampling counterpart for programs whose decision trees
// are too deep to enumerate: it runs a budgeted sequence of schedules
// chosen by a pluggable Strategy and stops at the first State-Hash
// divergence. Four strategies are built in (NewStrategy, StrategyNames):
//
//   - uniform: a fresh seeded random schedule per run — the baseline every
//     other strategy is measured against, and the right default when
//     nothing is known about the bug. Equivalent to a conventional stress
//     campaign.
//   - pct: PCT-style priority scheduling (sched.PCT). Each run assigns
//     random strict priorities and demotes the running thread at d
//     priority-change points placed uniformly over the operation budget,
//     so a run hits any d-point bug window with a probability that is
//     polynomial, not exponential, in the window count. Use it when the
//     bug needs a preemption at an unlucky depth but no race report is
//     available to aim at.
//   - race-directed: spends the first runs under the happens-before race
//     detector (racefilter), then preempts threads exactly at the racy
//     sites it found (FindNondeterminism's directed mode behind the
//     Strategy interface). The strongest searcher for atomicity and
//     order-violation windows — the Figure 7 bugs are all found within a
//     handful of runs — at the cost of the detection-run overhead and of
//     finding nothing extra when the program has no races.
//   - coverage: coverage-guided schedule fuzzing. Every run's decision
//     stream is recorded; a run that produces a never-seen (checkpoint
//     ordinal, State Hash) outcome keeps its decision prefix in a
//     frontier, and later runs mutate those prefixes — the State Hash
//     serving as the coverage signal the paper's §6.2 makes affordable.
//     Use it for long-horizon searches where novelty compounds; on a
//     fixed rare window it has no aiming advantage over uniform.
//
// The exploration-efficiency experiment (`instantcheck exploreeff`,
// EXPERIMENTS.md "Exploration efficiency") measures all four on the three
// seeded Figure 7 bugs at equal budget. Explore searches are also a farm
// job kind (JobSpec.Kind "explore", `instantcheck remote submit
// -explore`), with per-strategy run and divergence counters on /metrics.
package explore
