package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file implements `icvet race`: a whole-program static race analysis
// over instrumented simulated programs. It over-approximates every
// schedule at once — the complement of the dynamic vector-clock detector
// in internal/racefilter, which only sees the schedules it happens to
// execute — and reports every pair of sim access sites that may touch the
// same abstract memory region from different threads with disjoint
// locksets and no barrier episode ordering them.
//
// The engine is deliberately source-level (go/ast + go/types, like the
// other icvet analyzers) and built from four abstractions:
//
//   - a context-sensitive interprocedural walk: each program's Worker
//     body is walked with package-local callees inlined (parameters bound
//     to caller argument expressions), so accesses inside helpers like
//     addForce or spinWaitFlag are attributed with the caller's lockset,
//     barrier phase, and substituted address expression;
//   - a region abstraction: every address expression is reduced to the
//     set of allocation roots it can refer to — program struct fields and
//     package-level words (keyed to their AllocStatic site labels),
//     Malloc site labels, or the unknown region for pointer-chased
//     addresses. Two accesses may alias when their root sets intersect
//     (unknown aliases unknown and any Malloc region);
//   - a lockset lattice: the walk tracks the multiset of held sched.Mutex
//     acquisition expressions (same break-state logic as the lockpair
//     analyzer). A pair sharing a lock key is ordered; a pair whose
//     identical access pattern is consistently locked through the same
//     index variable (canonically equal address and lock, lock variables
//     a subset of address variables) is treated as instance-consistent
//     locking, the per-molecule-lock idiom;
//   - barrier-phase ordering: sched.Barrier waits partition each Worker
//     into segments. Loops are walked once, and every barrier-carrying
//     loop contributes its per-iteration barrier count as a period, so a
//     site's reachable set of barrier-episode indices is {base + Σ kᵢ·pᵢ}.
//     Two sites can only be concurrent when those sets intersect.
//
// Precision heuristics (documented in DESIGN.md, audited by the dynamic
// cross-check in racecross_test.go): accesses whose canonical address
// patterns are identical and mention a thread-identity-derived variable
// (t.TID(), or span() bounds computed from it) are assumed disjoint
// across threads (the owner-computes partition idiom), and sites guarded
// by the same `tid == K` condition are assumed to be the same thread.

// RaceSite is one static sim access site of a candidate pair.
type RaceSite struct {
	// Pos locates the t.Load/LoadF/Store/StoreF call.
	Pos token.Position
	// Kind is "load" or "store".
	Kind string
	// Lockset holds the substituted lock expressions held at the access.
	Lockset []string
	// Guard is the thread-identity guard ("tid==0") or "".
	Guard string
}

// ID renders the site as "dir/file.go:line:col" with the path shortened
// to its last two components — the stable site identity of the report.
func (s RaceSite) ID() string {
	return fmt.Sprintf("%s:%d:%d", shortSitePath(s.Pos.Filename), s.Pos.Line, s.Pos.Column)
}

// FileLine renders the site as "dir/file.go:line", the granularity the
// dynamic detector's runtime attribution can reproduce.
func (s RaceSite) FileLine() string {
	return fmt.Sprintf("%s:%d", shortSitePath(s.Pos.Filename), s.Pos.Line)
}

// shortSitePath keeps the final directory and base name of a source path.
func shortSitePath(file string) string {
	short := filepath.ToSlash(file)
	parts := strings.Split(short, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}

// RacePair is one candidate racy site pair.
type RacePair struct {
	// Program names the sim.Program type the pair belongs to.
	Program string
	// A and B are the two sites, A ≤ B by position.
	A, B RaceSite
	// Region is the shared abstract region, rendered as its allocation
	// site label when known ("static:radix.rank", "cholesky.taskNode"),
	// or "?" for the unknown (pointer-chased) region.
	Region string
	// Kind is the access-pair kind: "write-write", "read-write" (A
	// loads), or "write-read" (A stores).
	Kind string
	// Suppressed is true when an //icvet:ignore race comment covers
	// either site's line. Suppressed pairs are dropped from reports but
	// kept by the engine: the soundness cross-check runs against the
	// full set.
	Suppressed bool
}

// String renders the pair as one deterministic report line.
func (p RacePair) String() string {
	return fmt.Sprintf("%s %s ~ %s %s region=%s program=%s",
		p.A.ID(), p.A.Kind, p.B.ID(), p.B.Kind, p.Region, p.Program)
}

// RaceReport is the result of RaceCheck over one package.
type RaceReport struct {
	// Package is the analyzed package's display path.
	Package string
	// Pairs holds every candidate pair (suppressed ones included),
	// sorted by program, then site A, then site B.
	Pairs []RacePair
}

// Active returns the unsuppressed pairs, the report's user-facing view.
func (r *RaceReport) Active() []RacePair {
	var out []RacePair
	for _, p := range r.Pairs {
		if !p.Suppressed {
			out = append(out, p)
		}
	}
	return out
}

// RaceCheck runs the static race analysis over every sim.Program of the
// package: each type with both Setup and Worker methods (or paired
// package-level Setup/Worker functions) is analyzed independently, since
// accesses of different programs never share a run.
func RaceCheck(pkg *Package) *RaceReport {
	e := newRaceEngine(pkg)
	rep := &RaceReport{Package: pkg.Path}
	for _, prog := range e.programs() {
		rep.Pairs = append(rep.Pairs, e.analyze(prog)...)
	}
	markSuppressedPairs(pkg, rep.Pairs)
	sort.Slice(rep.Pairs, func(i, j int) bool {
		a, b := rep.Pairs[i], rep.Pairs[j]
		if a.Program != b.Program {
			return a.Program < b.Program
		}
		if c := comparePos(a.A.Pos, b.A.Pos); c != 0 {
			return c < 0
		}
		return comparePos(a.B.Pos, b.B.Pos) < 0
	})
	return rep
}

func comparePos(a, b token.Position) int {
	if a.Filename != b.Filename {
		return strings.Compare(a.Filename, b.Filename)
	}
	if a.Line != b.Line {
		return a.Line - b.Line
	}
	return a.Column - b.Column
}

// markSuppressedPairs applies //icvet:ignore race comments: a pair is
// suppressed when either site's line carries one.
func markSuppressedPairs(pkg *Package, pairs []RacePair) {
	sup := suppressions(pkg)
	covered := func(s RaceSite) bool {
		for _, n := range sup[s.Pos.Filename][s.Pos.Line] {
			if n == "race" || n == "all" {
				return true
			}
		}
		return false
	}
	for i := range pairs {
		if covered(pairs[i].A) || covered(pairs[i].B) {
			pairs[i].Suppressed = true
		}
	}
}

// raceSuppressionUsed reports, for stale-ignore detection, every
// (file, line) whose //icvet:ignore race comment actually covers a pair
// site.
func raceSuppressionUsed(pairs []RacePair) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	mark := func(s RaceSite) {
		lines := out[s.Pos.Filename]
		if lines == nil {
			lines = make(map[int]bool)
			out[s.Pos.Filename] = lines
		}
		lines[s.Pos.Line] = true
	}
	for _, p := range pairs {
		mark(p.A)
		mark(p.B)
	}
	return out
}

// ---- engine ----

const (
	rootUnknown = "?"  // pointer-chased address: no static root
	ownedMark   = "τ"  // τ: canonical placeholder for owner-derived locals
	localMark   = "•"  // •: canonical placeholder for other locals
	inlineDepth = 24   // interprocedural inlining bound
	maxEpisode  = 4096 // horizon for episode-set enumeration
)

type raceEngine struct {
	pkg *Package
	// funcs maps each package-local function or method object to its
	// declaration, the inlining table.
	funcs map[*types.Func]*ast.FuncDecl
	// allocLabels maps a region root ("field:T.f" or "pkg:v") to the
	// AllocStatic/Malloc site label it was allocated with.
	allocLabels map[string]string
}

func newRaceEngine(pkg *Package) *raceEngine {
	e := &raceEngine{
		pkg:         pkg,
		funcs:       make(map[*types.Func]*ast.FuncDecl),
		allocLabels: make(map[string]string),
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				e.funcs[obj] = fd
			}
		}
	}
	e.collectAllocLabels()
	return e
}

// program is one sim.Program of the package: a receiver type (or the
// package itself) with Setup and Worker entry points.
type program struct {
	name   string       // receiver type name, or the package name
	recv   *types.Named // nil for free-function programs
	setup  *ast.FuncDecl
	worker *ast.FuncDecl
}

// programs groups the package's Setup/Worker functions by receiver type.
func (e *raceEngine) programs() []*program {
	byName := make(map[string]*program)
	var order []string
	for _, pf := range progFuncs(e.pkg) {
		fd := pf.decl
		name := e.pkg.Types.Name()
		var recv *types.Named
		if fd.Recv != nil && len(fd.Recv.List) == 1 {
			t := e.pkg.Info.Types[fd.Recv.List[0].Type].Type
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if n, ok := t.(*types.Named); ok {
				recv = n
				name = n.Obj().Name()
			}
		}
		p := byName[name]
		if p == nil {
			p = &program{name: name, recv: recv}
			byName[name] = p
			order = append(order, name)
		}
		if pf.kind == "Setup" {
			p.setup = fd
		} else {
			p.worker = fd
		}
	}
	sort.Strings(order)
	var out []*program
	for _, n := range order {
		if p := byName[n]; p.worker != nil {
			out = append(out, p)
		}
	}
	return out
}

// collectAllocLabels scans every assignment of a Malloc/AllocStatic call
// to a field or package-level variable and records root -> site label.
func (e *raceEngine) collectAllocLabels() {
	inspectFiles(e.pkg, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			name, ok := threadMethod(e.pkg, call)
			if !ok || (name != "Malloc" && name != "AllocStatic") || len(call.Args) != 3 {
				continue
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				continue
			}
			label, err := strconv.Unquote(lit.Value)
			if err != nil {
				continue
			}
			if root := e.lhsRoot(as.Lhs[i]); root != "" {
				e.allocLabels[root] = label
			}
		}
		return true
	})
}

// lhsRoot derives the region root named by an assignment target: a
// struct field selector or a package-level variable.
func (e *raceEngine) lhsRoot(lhs ast.Expr) string {
	switch lhs := lhs.(type) {
	case *ast.SelectorExpr:
		if sel := e.pkg.Info.Selections[lhs]; sel != nil && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return fieldRoot(v)
			}
		}
	case *ast.Ident:
		if v, ok := e.pkg.Info.Defs[lhs].(*types.Var); ok && isPackageLevel(e.pkg, v) {
			return "pkg:" + v.Name()
		}
		if v, ok := e.pkg.Info.Uses[lhs].(*types.Var); ok && isPackageLevel(e.pkg, v) {
			return "pkg:" + v.Name()
		}
	}
	return ""
}

// isAddrWord reports whether a type can hold a simulated memory address:
// the simulator addresses memory with uint64 words, so only uint64
// fields and variables denote region bases — int-typed sizes and indices
// never do.
func isAddrWord(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint64 || b.Kind() == types.Uintptr)
}

// fieldRoot keys a struct field as a region root, qualified by its
// owning struct so same-named fields of different programs stay apart.
func fieldRoot(v *types.Var) string {
	owner := ""
	if v.Pkg() != nil {
		owner = v.Pkg().Name() + "."
	}
	return "field:" + owner + v.Name()
}

// absVal is the abstract value of an expression in a walk context.
type absVal struct {
	// display is the substituted source rendering ("idx(p.hist, tid*64+d)"
	// becomes "p.hist+(tid*64+d)"-shaped text), used in messages.
	display string
	// canon is the rendering with every function-local variable replaced
	// by a placeholder, the pattern identity for the consistent-locking
	// and owner-partition rules.
	canon string
	// roots is the set of region roots the value may refer to.
	roots []string
	// owned is true when the value mentions the thread identity (t.TID()
	// or a variable derived from it through the span partition idiom).
	owned bool
}

// access is one sim memory access in Worker context.
type access struct {
	pos     token.Position
	kind    string // "load" | "store"
	addr    absVal
	lockset []lockHeld
	segBase int
	periods []int
	guard   string // "tid==K" or ""
}

type lockHeld struct {
	display string
	canon   string
}

// walkState is the mutable state of one statement walk.
type walkState struct {
	locks   []lockHeld
	seg     int
	periods []int // accumulated: enclosing loops and exited barrier loops
	guard   string
}

func (st *walkState) clone() *walkState {
	return &walkState{
		locks:   append([]lockHeld(nil), st.locks...),
		seg:     st.seg,
		periods: append([]int(nil), st.periods...),
		guard:   st.guard,
	}
}

// walkCtx is one function instantiation: variable bindings produced by
// parameter substitution and local assignments.
type walkCtx struct {
	// bind maps locals and parameters to their abstract values.
	bind map[*types.Var]*absVal
	// tidVars holds locals that carry t.TID() directly.
	tidVars map[*types.Var]bool
	// active guards the inlining recursion.
	active map[*types.Func]bool
	depth  int
	// wantResults, namedResults, and results implement return-value
	// capture: when wantResults > 0, every return statement's values are
	// evaluated and merged into results (named-result bare returns read
	// the result variables' bindings).
	wantResults  int
	namedResults []*types.Var
	results      []*absVal
}

func newWalkCtx() *walkCtx {
	return &walkCtx{
		bind:    make(map[*types.Var]*absVal),
		tidVars: make(map[*types.Var]bool),
		active:  make(map[*types.Func]bool),
	}
}

func (c *walkCtx) child() *walkCtx {
	return &walkCtx{
		bind:    make(map[*types.Var]*absVal),
		tidVars: make(map[*types.Var]bool),
		active:  c.active,
		depth:   c.depth + 1,
	}
}

// mergeResults joins one return statement's values into the accumulated
// per-position results: roots union, ownership disjunction, and the
// pattern survives only when every path agrees on it.
func (c *walkCtx) mergeResults(vals []*absVal) {
	if c.results == nil {
		c.results = vals
		return
	}
	for i, v := range vals {
		old := c.results[i]
		merged := &absVal{roots: unionRoots(old.roots, v.roots), owned: old.owned || v.owned}
		if old.canon == v.canon {
			merged.canon, merged.display = old.canon, old.display
		} else {
			merged.canon = markFor(merged.owned)
			merged.display = localMark
		}
		c.results[i] = merged
	}
}

// walker drives one program's interprocedural walk.
type walker struct {
	e        *raceEngine
	accesses []access
	// mute suppresses access recording during pure value-evaluation
	// walks of callee bodies (the statements were already walked for
	// effects by the inlining pass).
	mute int
	// uniform is cleared when the barrier structure stops being
	// provably thread-uniform (a barrier under a tid guard or in a
	// branch with unbalanced counts): episode ordering is then
	// abandoned and every segment may overlap every other.
	uniform bool
}

// analyze walks one program's Worker and pairs up its accesses.
func (e *raceEngine) analyze(p *program) []RacePair {
	w := &walker{e: e, uniform: true}
	ctx := newWalkCtx()
	st := &walkState{}
	w.bindParams(p.worker, ctx)
	w.walkStmts(p.worker.Body.List, ctx, st)
	return e.pairs(p, w)
}

// bindParams binds a declaration's receiver and parameters to themselves
// (the root instantiation: Worker's receiver and *sim.Thread argument).
func (w *walker) bindParams(fd *ast.FuncDecl, ctx *walkCtx) {
	bindList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				if v, ok := w.e.pkg.Info.Defs[n].(*types.Var); ok {
					ctx.bind[v] = &absVal{display: n.Name, canon: n.Name}
				}
			}
		}
	}
	bindList(fd.Recv)
	bindList(fd.Type.Params)
}

// ---- statement walk ----

// walkStmts walks a list, returning true when control definitely leaves.
func (w *walker) walkStmts(list []ast.Stmt, ctx *walkCtx, st *walkState) bool {
	for _, stmt := range list {
		if w.walkStmt(stmt, ctx, st) {
			return true
		}
	}
	return false
}

func (w *walker) walkStmt(stmt ast.Stmt, ctx *walkCtx, st *walkState) bool {
	switch stmt := stmt.(type) {
	case *ast.ExprStmt:
		w.scanExpr(stmt.X, ctx, st)
		return stmtTerminates(stmt)
	case *ast.AssignStmt:
		w.assign(stmt, ctx, st)
	case *ast.DeclStmt:
		if gd, ok := stmt.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var val *absVal
					if i < len(vs.Values) {
						w.scanExpr(vs.Values[i], ctx, st)
						val = w.eval(vs.Values[i], ctx)
					} else {
						val = &absVal{display: localMark, canon: localMark}
					}
					if v, ok := w.e.pkg.Info.Defs[name].(*types.Var); ok {
						ctx.bind[v] = val
					}
				}
			}
		}
	case *ast.IfStmt:
		if stmt.Init != nil {
			w.walkStmt(stmt.Init, ctx, st)
		}
		w.scanExpr(stmt.Cond, ctx, st)
		bodySt := st.clone()
		if g := w.tidGuard(stmt.Cond, ctx); g != "" {
			bodySt.guard = g
		}
		segBefore := st.seg
		bodyTerm := w.walkStmts(stmt.Body.List, ctx, bodySt)
		bodyBarriers := bodySt.seg - segBefore
		if stmt.Else == nil {
			if bodyBarriers != 0 {
				w.uniform = false
			}
			if !bodyTerm {
				st.locks = bodySt.locks
			}
			return false
		}
		elseSt := st.clone()
		elseTerm := w.walkStmt(stmt.Else, ctx, elseSt)
		elseBarriers := elseSt.seg - segBefore
		if bodyBarriers != elseBarriers || bodySt.guard != st.guard {
			if bodyBarriers != 0 || elseBarriers != 0 {
				w.uniform = false
			}
		}
		switch {
		case bodyTerm && !elseTerm:
			st.locks = elseSt.locks
			st.seg = elseSt.seg
		case !bodyTerm:
			st.locks = bodySt.locks
			st.seg = bodySt.seg
		}
		return bodyTerm && elseTerm
	case *ast.ForStmt:
		if stmt.Init != nil {
			w.walkStmt(stmt.Init, ctx, st)
			// The classic owner-partition loop: for i := lo; i < hi —
			// the loop variable inherits ownership from its init.
			if as, ok := stmt.Init.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
				if id, ok := as.Lhs[0].(*ast.Ident); ok {
					if v, ok := w.e.pkg.Info.Defs[id].(*types.Var); ok {
						init := w.eval(as.Rhs[0], ctx)
						ctx.bind[v] = &absVal{
							display: id.Name,
							canon:   markFor(init.owned),
							owned:   init.owned,
						}
					}
				}
			}
		}
		if stmt.Cond != nil {
			w.scanExpr(stmt.Cond, ctx, st)
		}
		w.walkLoopBody(stmt.Body, nil, ctx, st)
	case *ast.RangeStmt:
		w.scanExpr(stmt.X, ctx, st)
		for _, ke := range []ast.Expr{stmt.Key, stmt.Value} {
			if id, ok := ke.(*ast.Ident); ok {
				if v, ok := w.e.pkg.Info.Defs[id].(*types.Var); ok {
					ctx.bind[v] = &absVal{display: id.Name, canon: localMark}
				}
			}
		}
		w.walkLoopBody(stmt.Body, nil, ctx, st)
	case *ast.BlockStmt:
		return w.walkStmts(stmt.List, ctx, st)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		segBefore := st.seg
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CaseClause:
				cs := st.clone()
				w.walkStmts(n.Body, ctx, cs)
				if cs.seg != segBefore {
					w.uniform = false
				}
				return false
			case *ast.CommClause:
				cs := st.clone()
				w.walkStmts(n.Body, ctx, cs)
				if cs.seg != segBefore {
					w.uniform = false
				}
				return false
			}
			return true
		})
	case *ast.LabeledStmt:
		return w.walkStmt(stmt.Stmt, ctx, st)
	case *ast.ReturnStmt:
		for _, r := range stmt.Results {
			w.scanExpr(r, ctx, st)
		}
		if ctx.wantResults > 0 {
			var vals []*absVal
			switch {
			case len(stmt.Results) == ctx.wantResults:
				for _, r := range stmt.Results {
					vals = append(vals, w.eval(r, ctx))
				}
			case len(stmt.Results) == 0 && len(ctx.namedResults) == ctx.wantResults:
				for _, v := range ctx.namedResults {
					if b := ctx.bind[v]; b != nil {
						vals = append(vals, b)
					} else {
						vals = append(vals, &absVal{display: localMark, canon: localMark})
					}
				}
			}
			if vals != nil {
				ctx.mergeResults(vals)
			}
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to function end (its
		// accesses stay protected); other deferred effects are scanned
		// in place, a harmless over-approximation of "runs at exit".
		if name, ok := threadMethod(w.e.pkg, stmt.Call); ok && (name == "Unlock" || name == "StartHashing") {
			return false
		}
		w.scanExpr(stmt.Call, ctx, st)
	case *ast.GoStmt:
		w.scanExpr(stmt.Call, ctx, st)
	case *ast.IncDecStmt:
		w.scanExpr(stmt.X, ctx, st)
	case *ast.SendStmt:
		w.scanExpr(stmt.Chan, ctx, st)
		w.scanExpr(stmt.Value, ctx, st)
	}
	return false
}

// walkLoopBody walks a loop body once, then accounts for the unknown
// iteration count: if the body crossed P > 0 barriers, P becomes a
// period for everything inside and after the loop.
func (w *walker) walkLoopBody(body *ast.BlockStmt, post ast.Stmt, ctx *walkCtx, st *walkState) {
	segBefore := st.seg
	periodsBefore := len(st.periods)
	start := len(w.accesses)

	inner := st.clone()
	w.walkStmts(body.List, ctx, inner)
	if post != nil {
		w.walkStmt(post, ctx, inner)
	}
	period := inner.seg - segBefore
	if period > 0 {
		// Accesses inside the loop repeat with this period.
		for i := start; i < len(w.accesses); i++ {
			w.accesses[i].periods = append(w.accesses[i].periods, period)
		}
		st.seg = inner.seg
		st.periods = append(st.periods[:periodsBefore:periodsBefore], inner.periods[periodsBefore:]...)
		st.periods = append(st.periods, period)
	}
}

// assign records accesses on both sides and updates local bindings.
func (w *walker) assign(stmt *ast.AssignStmt, ctx *walkCtx, st *walkState) {
	vals := make([]*absVal, 0, len(stmt.Rhs))
	for _, r := range stmt.Rhs {
		w.scanExpr(r, ctx, st)
		vals = append(vals, w.eval(r, ctx))
	}
	for _, l := range stmt.Lhs {
		w.scanExpr(l, ctx, st)
	}
	if len(stmt.Rhs) != len(stmt.Lhs) {
		vals = nil // multi-value call: bind per return position
		if len(stmt.Rhs) == 1 {
			if call, ok := stmt.Rhs[0].(*ast.CallExpr); ok {
				vals = w.evalCallResults(call, ctx, len(stmt.Lhs))
			}
		}
	}
	for i, l := range stmt.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		v, ok := w.e.pkg.Info.Defs[id].(*types.Var)
		if !ok {
			if u, ok2 := w.e.pkg.Info.Uses[id].(*types.Var); ok2 && !isPackageLevel(w.e.pkg, u) && !u.IsField() {
				v = u // plain = assignment to an existing local
			}
		}
		if v == nil {
			continue
		}
		var val *absVal
		if vals != nil {
			val = vals[i]
		} else {
			val = &absVal{display: localMark, canon: localMark}
		}
		if stmt.Tok == token.DEFINE {
			// t.TID() bound directly makes a thread-identity variable.
			if call, ok := stmt.Rhs[min(i, len(stmt.Rhs)-1)].(*ast.CallExpr); ok && len(stmt.Rhs) == len(stmt.Lhs) {
				if name, ok := threadMethod(w.e.pkg, call); ok && name == "TID" {
					ctx.tidVars[v] = true
				}
			}
		}
		if old := ctx.bind[v]; old != nil && stmt.Tok != token.DEFINE {
			// Re-assignment: accumulate may-roots (the src/dst swap
			// idiom) and drop pattern identity if it changed.
			merged := &absVal{
				display: old.display,
				canon:   old.canon,
				roots:   unionRoots(old.roots, val.roots),
				owned:   old.owned || val.owned,
			}
			if old.canon != val.canon {
				merged.canon = markFor(merged.owned)
				merged.display = id.Name
			}
			ctx.bind[v] = merged
			continue
		}
		ctx.bind[v] = val
	}
}

func markFor(owned bool) string {
	if owned {
		return ownedMark
	}
	return localMark
}

func unionRoots(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, s := range [][]string{a, b} {
		for _, r := range s {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	return out
}

// tidGuard recognizes `tid == K` (possibly as a && conjunct) and returns
// its canonical form, or "".
func (w *walker) tidGuard(cond ast.Expr, ctx *walkCtx) string {
	switch cond := cond.(type) {
	case *ast.ParenExpr:
		return w.tidGuard(cond.X, ctx)
	case *ast.BinaryExpr:
		switch cond.Op {
		case token.LAND:
			if g := w.tidGuard(cond.X, ctx); g != "" {
				return g
			}
			return w.tidGuard(cond.Y, ctx)
		case token.EQL:
			for _, pair := range [][2]ast.Expr{{cond.X, cond.Y}, {cond.Y, cond.X}} {
				if w.isTIDExpr(pair[0], ctx) {
					if lit, ok := pair[1].(*ast.BasicLit); ok && lit.Kind == token.INT {
						return "tid==" + lit.Value
					}
				}
			}
		}
	}
	return ""
}

// isTIDExpr reports whether e denotes the calling thread's id.
func (w *walker) isTIDExpr(e ast.Expr, ctx *walkCtx) bool {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := w.e.pkg.Info.Uses[e].(*types.Var); ok {
			return ctx.tidVars[v]
		}
	case *ast.CallExpr:
		if name, ok := threadMethod(w.e.pkg, e); ok {
			return name == "TID"
		}
	}
	return false
}

// ---- expression scan: finding sim effects ----

// scanExpr walks an expression recording accesses, lock transitions,
// barrier waits, and inlining package-local calls.
func (w *walker) scanExpr(e ast.Expr, ctx *walkCtx, st *walkState) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		w.scanCall(e, ctx, st)
	case *ast.FuncLit:
		// A function literal's body executes wherever it is called; the
		// programs under analysis invoke them in place or not at all.
		// Walk the body in the current state as an over-approximation.
		w.walkStmts(e.Body.List, ctx, st.clone())
	case *ast.ParenExpr:
		w.scanExpr(e.X, ctx, st)
	case *ast.BinaryExpr:
		w.scanExpr(e.X, ctx, st)
		w.scanExpr(e.Y, ctx, st)
	case *ast.UnaryExpr:
		w.scanExpr(e.X, ctx, st)
	case *ast.StarExpr:
		w.scanExpr(e.X, ctx, st)
	case *ast.SelectorExpr:
		w.scanExpr(e.X, ctx, st)
	case *ast.IndexExpr:
		w.scanExpr(e.X, ctx, st)
		w.scanExpr(e.Index, ctx, st)
	case *ast.SliceExpr:
		w.scanExpr(e.X, ctx, st)
		w.scanExpr(e.Low, ctx, st)
		w.scanExpr(e.High, ctx, st)
		w.scanExpr(e.Max, ctx, st)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			w.scanExpr(elt, ctx, st)
		}
	case *ast.KeyValueExpr:
		w.scanExpr(e.Value, ctx, st)
	case *ast.TypeAssertExpr:
		w.scanExpr(e.X, ctx, st)
	}
}

// scanCall handles one call: Thread accessors become effects, local
// functions are inlined, everything else has its arguments scanned.
func (w *walker) scanCall(call *ast.CallExpr, ctx *walkCtx, st *walkState) {
	if name, ok := threadMethod(w.e.pkg, call); ok {
		switch name {
		case "Load", "LoadF":
			if len(call.Args) == 1 {
				w.scanExpr(call.Args[0], ctx, st)
				w.record("load", call, call.Args[0], ctx, st)
				return
			}
		case "Store", "StoreF":
			if len(call.Args) == 2 {
				w.scanExpr(call.Args[0], ctx, st)
				w.scanExpr(call.Args[1], ctx, st)
				w.record("store", call, call.Args[0], ctx, st)
				return
			}
		case "Lock":
			if len(call.Args) == 1 {
				w.scanExpr(call.Args[0], ctx, st)
				lv := w.eval(call.Args[0], ctx)
				st.locks = append(st.locks, lockHeld{display: lv.display, canon: lv.canon})
				return
			}
		case "Unlock":
			if len(call.Args) == 1 {
				w.scanExpr(call.Args[0], ctx, st)
				lv := w.eval(call.Args[0], ctx)
				for i := len(st.locks) - 1; i >= 0; i-- {
					if st.locks[i].display == lv.display {
						st.locks = append(st.locks[:i], st.locks[i+1:]...)
						break
					}
				}
				return
			}
		case "BarrierWait":
			for _, a := range call.Args {
				w.scanExpr(a, ctx, st)
			}
			st.seg++
			if st.guard != "" {
				// A barrier only some threads reach breaks the uniform
				// episode structure (in reality it deadlocks; the
				// conservative reading is "no ordering").
				w.uniform = false
			}
			return
		case "Free", "Malloc", "AllocStatic":
			for _, a := range call.Args {
				w.scanExpr(a, ctx, st)
			}
			return
		}
		// Other Thread methods (Yield, Compute, TID, Rand, ...): scan args.
		for _, a := range call.Args {
			w.scanExpr(a, ctx, st)
		}
		return
	}
	// Package-local function or method: inline.
	if fd, obj := w.callee(call); fd != nil {
		w.inline(call, fd, obj, ctx, st)
		return
	}
	// Unknown callee (stdlib, conversions): scan arguments.
	for _, a := range call.Args {
		w.scanExpr(a, ctx, st)
	}
	if len(call.Args) == 1 {
		return
	}
}

// callee resolves a call to a package-local function declaration.
func (w *walker) callee(call *ast.CallExpr) (*ast.FuncDecl, *types.Func) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = w.e.pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		if sel := w.e.pkg.Info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
			obj = sel.Obj()
		} else {
			obj = w.e.pkg.Info.Uses[fun.Sel]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil, nil
	}
	fd := w.e.funcs[fn]
	return fd, fn
}

// inline walks a callee body with parameters bound to the abstract
// values of the caller's arguments.
func (w *walker) inline(call *ast.CallExpr, fd *ast.FuncDecl, obj *types.Func, ctx *walkCtx, st *walkState) {
	for _, a := range call.Args {
		w.scanExpr(a, ctx, st)
	}
	if ctx.depth >= inlineDepth || ctx.active[obj] {
		return
	}
	ctx.active[obj] = true
	defer delete(ctx.active, obj)
	w.walkStmts(fd.Body.List, w.bindCallee(call, fd, ctx), st)
}

// bindCallee builds a callee instantiation: the receiver and parameters
// bound to the caller's argument values (variadic tails and blank
// parameters stay unbound and evaluate opaquely).
func (w *walker) bindCallee(call *ast.CallExpr, fd *ast.FuncDecl, ctx *walkCtx) *walkCtx {
	callee := ctx.child()
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if v, ok := w.e.pkg.Info.Defs[fd.Recv.List[0].Names[0]].(*types.Var); ok {
				callee.bind[v] = w.eval(sel.X, ctx)
			}
		}
	}
	params := fd.Type.Params
	argIdx := 0
	if params != nil {
		for _, f := range params.List {
			for _, n := range f.Names {
				var val *absVal
				if argIdx < len(call.Args) {
					val = w.eval(call.Args[argIdx], ctx)
				} else {
					val = &absVal{display: localMark, canon: localMark}
				}
				if v, ok := w.e.pkg.Info.Defs[n].(*types.Var); ok {
					callee.bind[v] = val
					if argIdx < len(call.Args) && w.isTIDExpr(call.Args[argIdx], ctx) {
						callee.tidVars[v] = true
					}
				}
				argIdx++
			}
			if len(f.Names) == 0 {
				argIdx++
			}
		}
	}
	return callee
}

// evalCallResults evaluates a package-local call for its return values:
// the callee body is walked with effect recording muted (the inlining
// pass already walked it for effects) and every return path's values are
// merged per position. Returns nil when the callee cannot be resolved.
func (w *walker) evalCallResults(call *ast.CallExpr, ctx *walkCtx, n int) []*absVal {
	fd, obj := w.callee(call)
	if fd == nil || ctx.active[obj] || ctx.depth >= inlineDepth {
		return nil
	}
	ctx.active[obj] = true
	defer delete(ctx.active, obj)
	callee := w.bindCallee(call, fd, ctx)
	callee.wantResults = n
	if res := fd.Type.Results; res != nil {
		for _, f := range res.List {
			for _, name := range f.Names {
				if v, ok := w.e.pkg.Info.Defs[name].(*types.Var); ok {
					callee.namedResults = append(callee.namedResults, v)
				}
			}
		}
	}
	w.mute++
	w.walkStmts(fd.Body.List, callee, &walkState{})
	w.mute--
	if len(callee.results) != n {
		return nil
	}
	return callee.results
}

// record captures one access.
func (w *walker) record(kind string, call *ast.CallExpr, addrExpr ast.Expr, ctx *walkCtx, st *walkState) {
	if w.mute > 0 {
		return
	}
	addr := w.eval(addrExpr, ctx)
	if len(addr.roots) == 0 {
		addr.roots = []string{rootUnknown}
	}
	w.accesses = append(w.accesses, access{
		pos:     w.e.pkg.Fset.Position(call.Pos()),
		kind:    kind,
		addr:    *addr,
		lockset: append([]lockHeld(nil), st.locks...),
		segBase: st.seg,
		periods: append([]int(nil), st.periods...),
		guard:   st.guard,
	})
}

// ---- abstract evaluation ----

// eval computes the abstract value of an expression: substituted display
// and canonical renderings, region roots, and ownership.
func (w *walker) eval(e ast.Expr, ctx *walkCtx) *absVal {
	return w.evalDepth(e, ctx, 0)
}

func (w *walker) evalDepth(e ast.Expr, ctx *walkCtx, depth int) *absVal {
	if depth > inlineDepth {
		return &absVal{display: localMark, canon: localMark}
	}
	switch e := e.(type) {
	case *ast.BasicLit:
		return &absVal{display: e.Value, canon: e.Value}
	case *ast.Ident:
		return w.evalIdent(e, ctx)
	case *ast.ParenExpr:
		inner := w.evalDepth(e.X, ctx, depth)
		return &absVal{
			display: "(" + inner.display + ")",
			canon:   "(" + inner.canon + ")",
			roots:   inner.roots,
			owned:   inner.owned,
		}
	case *ast.SelectorExpr:
		return w.evalSelector(e, ctx, depth)
	case *ast.BinaryExpr:
		x := w.evalDepth(e.X, ctx, depth)
		y := w.evalDepth(e.Y, ctx, depth)
		return &absVal{
			display: x.display + e.Op.String() + y.display,
			canon:   x.canon + e.Op.String() + y.canon,
			roots:   unionRoots(x.roots, y.roots),
			owned:   x.owned || y.owned,
		}
	case *ast.UnaryExpr:
		x := w.evalDepth(e.X, ctx, depth)
		return &absVal{
			display: e.Op.String() + x.display,
			canon:   e.Op.String() + x.canon,
			roots:   x.roots,
			owned:   x.owned,
		}
	case *ast.IndexExpr:
		x := w.evalDepth(e.X, ctx, depth)
		idx := w.evalDepth(e.Index, ctx, depth)
		return &absVal{
			display: x.display + "[" + idx.display + "]",
			canon:   x.canon + "[" + idx.canon + "]",
			roots:   x.roots,
			owned:   x.owned || idx.owned,
		}
	case *ast.StarExpr:
		x := w.evalDepth(e.X, ctx, depth)
		return &absVal{display: "*" + x.display, canon: "*" + x.canon, roots: x.roots, owned: x.owned}
	case *ast.CallExpr:
		return w.evalCall(e, ctx, depth)
	}
	return &absVal{display: localMark, canon: localMark}
}

func (w *walker) evalIdent(e *ast.Ident, ctx *walkCtx) *absVal {
	obj := w.e.pkg.Info.Uses[e]
	if obj == nil {
		obj = w.e.pkg.Info.Defs[e]
	}
	switch obj := obj.(type) {
	case *types.Var:
		if ctx.tidVars[obj] {
			return &absVal{display: e.Name, canon: ownedMark, owned: true}
		}
		if b := ctx.bind[obj]; b != nil {
			return b
		}
		if isPackageLevel(w.e.pkg, obj) {
			v := &absVal{display: e.Name, canon: e.Name}
			if isAddrWord(obj.Type()) {
				v.roots = []string{"pkg:" + obj.Name()}
			}
			return v
		}
		// Unbound local (declared in an unwalked scope): opaque.
		return &absVal{display: e.Name, canon: localMark}
	case *types.Const:
		return &absVal{display: e.Name, canon: e.Name}
	case *types.Func, *types.TypeName, *types.Builtin:
		return &absVal{display: e.Name, canon: e.Name}
	}
	return &absVal{display: e.Name, canon: localMark}
}

func (w *walker) evalSelector(e *ast.SelectorExpr, ctx *walkCtx, depth int) *absVal {
	x := w.evalDepth(e.X, ctx, depth)
	out := &absVal{
		display: x.display + "." + e.Sel.Name,
		canon:   x.canon + "." + e.Sel.Name,
		owned:   x.owned,
	}
	if sel := w.e.pkg.Info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
		if v, ok := sel.Obj().(*types.Var); ok && isAddrWord(v.Type()) {
			out.roots = []string{fieldRoot(v)}
		}
	}
	return out
}

func (w *walker) evalCall(call *ast.CallExpr, ctx *walkCtx, depth int) *absVal {
	// Thread methods with meaningful values.
	if name, ok := threadMethod(w.e.pkg, call); ok {
		switch name {
		case "TID":
			return &absVal{display: "tid", canon: ownedMark, owned: true}
		case "Malloc", "AllocStatic":
			if len(call.Args) == 3 {
				if lit, ok := call.Args[0].(*ast.BasicLit); ok {
					if label, err := strconv.Unquote(lit.Value); err == nil {
						return &absVal{display: name + "(" + lit.Value + ")", canon: localMark, roots: []string{"malloc:" + label}}
					}
				}
			}
			return &absVal{display: localMark, canon: localMark, roots: []string{rootUnknown}}
		case "Load", "LoadF":
			// A pointer chased out of simulated memory: unknown region.
			return &absVal{display: localMark, canon: localMark, roots: []string{rootUnknown}}
		}
		return &absVal{display: localMark, canon: localMark}
	}
	// Type conversion: transparent.
	if tv, ok := w.e.pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return w.evalDepth(call.Args[0], ctx, depth)
	}
	// Package-local function: walk its body for the returned value.
	if res := w.evalCallResults(call, ctx, 1); res != nil {
		return res[0]
	}
	return &absVal{display: localMark, canon: localMark}
}

// ---- pairing ----

// pairs compares every two accesses of one program and reports the
// candidate racy pairs.
func (e *raceEngine) pairs(p *program, w *walker) []RacePair {
	acc := w.accesses
	type pairKey struct{ a, b string }
	seen := make(map[pairKey]bool)
	var out []RacePair
	for i := 0; i < len(acc); i++ {
		for j := i; j < len(acc); j++ {
			a, b := &acc[i], &acc[j]
			if a.kind != "store" && b.kind != "store" {
				continue
			}
			if !rootsOverlap(a.addr.roots, b.addr.roots) {
				continue
			}
			if !threadsFeasible(a, b, i == j) {
				continue
			}
			if w.uniform && !episodesOverlap(a, b) {
				continue
			}
			if ownerDisjoint(a, b) {
				continue
			}
			if locksetsOrdered(a, b) {
				continue
			}
			pa, pb := siteOf(a), siteOf(b)
			if comparePos(pb.Pos, pa.Pos) < 0 {
				pa, pb = pb, pa
			}
			k := pairKey{pa.ID() + "/" + pa.Kind, pb.ID() + "/" + pb.Kind}
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, RacePair{
				Program: p.name,
				A:       pa,
				B:       pb,
				Region:  e.regionLabel(a.addr.roots, b.addr.roots),
				Kind:    pairKind(pa.Kind, pb.Kind),
			})
		}
	}
	return out
}

func siteOf(a *access) RaceSite {
	locks := make([]string, 0, len(a.lockset))
	for _, l := range a.lockset {
		locks = append(locks, l.display)
	}
	return RaceSite{Pos: a.pos, Kind: a.kind, Lockset: locks, Guard: a.guard}
}

func pairKind(a, b string) string {
	switch {
	case a == "store" && b == "store":
		return "write-write"
	case a == "store":
		return "write-read"
	default:
		return "read-write"
	}
}

// rootsOverlap reports whether two root sets may alias: a shared root,
// or the unknown region against unknown or any Malloc region (pointer
// chases land in heap blocks).
func rootsOverlap(a, b []string) bool {
	for _, ra := range a {
		for _, rb := range b {
			if ra == rb {
				return true
			}
			if ra == rootUnknown && (rb == rootUnknown || strings.HasPrefix(rb, "malloc:")) {
				return true
			}
			if rb == rootUnknown && strings.HasPrefix(ra, "malloc:") {
				return true
			}
		}
	}
	return false
}

// threadsFeasible reports whether the two sites can execute on different
// threads: sites pinned to the same `tid == K` are one thread, and a
// single site pinned to any tid never races itself.
func threadsFeasible(a, b *access, self bool) bool {
	if self {
		return a.guard == ""
	}
	if a.guard != "" && a.guard == b.guard {
		return false
	}
	return true
}

// episodesOverlap reports whether the two sites' reachable barrier
// episode sets intersect: {base + Σ kᵢ·pᵢ} each, enumerated to a bounded
// horizon. The horizon is generous relative to real barrier counts; a
// miss beyond it errs toward "ordered", which the dynamic cross-check
// audits.
func episodesOverlap(a, b *access) bool {
	horizon := a.segBase + b.segBase + 2
	for _, p := range a.periods {
		horizon += p
	}
	for _, p := range b.periods {
		horizon += p
	}
	horizon *= 4
	if horizon > maxEpisode {
		horizon = maxEpisode
	}
	ea := reachableEpisodes(a.segBase, a.periods, horizon)
	for ep := range reachableEpisodes(b.segBase, b.periods, horizon) {
		if ea[ep] {
			return true
		}
	}
	return false
}

// reachableEpisodes enumerates base + nonnegative combinations of the
// periods up to the horizon.
func reachableEpisodes(base int, periods []int, horizon int) map[int]bool {
	set := map[int]bool{base: true}
	frontier := []int{base}
	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, v := range frontier {
			for _, p := range periods {
				if p <= 0 {
					continue
				}
				nv := v + p
				if nv <= horizon && !set[nv] {
					set[nv] = true
					next = append(next, nv)
				}
			}
		}
		frontier = next
	}
	return set
}

// ownerDisjoint implements the owner-computes partition heuristic: two
// accesses whose canonical address patterns are identical and mention
// the thread identity are per-thread partitions of the region — the
// idx(a, tid*k+d) and for-i-in-span idioms — and never collide across
// threads.
func ownerDisjoint(a, b *access) bool {
	return a.addr.owned && b.addr.owned && a.addr.canon == b.addr.canon
}

// locksetsOrdered reports whether a common lock orders the pair: an
// identical held lock expression, or the instance-consistent pattern
// (identical canonical address and lock patterns with the lock's
// variables drawn from the address expression, the per-element-lock
// idiom where colliding addresses imply colliding locks).
func locksetsOrdered(a, b *access) bool {
	for _, la := range a.lockset {
		for _, lb := range b.lockset {
			// A textual match only names one mutex when the expression
			// has no local variables: p.locks[first] in two threads is
			// two different locks even though the text agrees.
			if la.display == lb.display && !hasLocalToken(la.canon) {
				return true
			}
		}
	}
	if a.addr.canon != b.addr.canon {
		return false
	}
	for _, la := range a.lockset {
		for _, lb := range b.lockset {
			if la.canon == lb.canon && lockVarsFromAddr(la, a) && lockVarsFromAddr(lb, b) {
				return true
			}
		}
	}
	return false
}

// lockVarsFromAddr checks the consistency condition of the
// instance-locking rule: every local variable mentioned by the lock
// expression also appears in the address expression, so equal addresses
// pick equal locks.
func lockVarsFromAddr(l lockHeld, a *access) bool {
	for _, v := range localTokens(l.display, l.canon) {
		if !containsToken(a.addr.display, v) {
			return false
		}
	}
	return true
}

// containsToken reports whether s mentions name as a whole identifier
// (not as a substring of a longer one, so "i" does not match "uint64").
func containsToken(s, name string) bool {
	for start := 0; ; {
		i := strings.Index(s[start:], name)
		if i < 0 {
			return false
		}
		i += start
		before := i == 0 || !isIdentRune(rune(s[i-1]))
		afterIdx := i + len(name)
		after := afterIdx >= len(s) || !isIdentRune(rune(s[afterIdx]))
		if before && after {
			return true
		}
		start = i + 1
	}
}

// localTokens extracts the display names that the canonical form
// collapsed to placeholders — the lock's local variables.
func localTokens(display, canon string) []string {
	// Align display and canon: wherever canon holds a placeholder rune,
	// the corresponding display token is a local variable name.
	var out []string
	d, c := []rune(display), []rune(canon)
	di := 0
	for ci := 0; ci < len(c); ci++ {
		if string(c[ci]) != ownedMark && string(c[ci]) != localMark {
			// Advance display to the matching literal rune.
			for di < len(d) && d[di] != c[ci] {
				di++
			}
			di++
			continue
		}
		// Placeholder: consume an identifier from display.
		start := di
		for di < len(d) && (isIdentRune(d[di])) {
			di++
		}
		if di > start {
			out = append(out, string(d[start:di]))
		}
	}
	return out
}

// hasLocalToken reports whether a canonical rendering mentions any
// function-local variable (a τ or • placeholder).
func hasLocalToken(canon string) bool {
	return strings.Contains(canon, ownedMark) || strings.Contains(canon, localMark)
}

func isIdentRune(r rune) bool {
	return r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9'
}

// regionLabel renders the shared region of a pair: the allocation site
// label of a common root when known, otherwise the root itself.
func (e *raceEngine) regionLabel(a, b []string) string {
	var common []string
	for _, ra := range a {
		for _, rb := range b {
			if ra == rb {
				common = append(common, ra)
			}
		}
	}
	if len(common) == 0 {
		return "?"
	}
	sort.Strings(common)
	labels := make([]string, 0, len(common))
	for _, r := range common {
		switch {
		case r == rootUnknown:
			labels = append(labels, "?")
		case strings.HasPrefix(r, "malloc:"):
			labels = append(labels, strings.TrimPrefix(r, "malloc:"))
		default:
			if l, ok := e.allocLabels[r]; ok {
				labels = append(labels, l)
			} else {
				labels = append(labels, strings.TrimPrefix(strings.TrimPrefix(r, "field:"), "pkg:"))
			}
		}
	}
	sort.Strings(labels)
	return strings.Join(uniqueStrings(labels), "|")
}

func uniqueStrings(in []string) []string {
	var out []string
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}
