// Package directstate is a golden fixture for the directstate analyzer.
//
// Lines carrying a "want" comment must produce exactly one diagnostic
// whose message matches the backquoted regexp; every other line must be
// silent.
package directstate

import (
	"instantcheck/internal/mem"
	"instantcheck/internal/sim"
)

// counter is assigned below, so it is mutable package state.
var counter int

// tuning is never assigned: reading it is fine.
var tuning = 4

type prog struct {
	data  uint64
	sum   int
	ready bool
}

func (p *prog) Setup(t *sim.Thread) {
	p.data = t.Malloc("ds.data", 8, mem.KindWord) // ok: frozen input for workers
	counter++                                     // want `Setup writes package-level variable counter`
	_ = tuning                                    // ok: immutable package variable
}

func (p *prog) Worker(t *sim.Thread) {
	p.sum++    // want `Worker writes field sum directly, bypassing Thread\.Store`
	v := p.sum // want `Worker reads field sum, which Worker code elsewhere writes directly`
	_ = v
	p.ready = true // want `Worker writes field ready directly`
	n := counter   // want `Worker reads mutable package-level variable counter`
	_ = n
	local := 0
	local++ // ok: declared inside Worker
	_ = local
	_ = t.Load(p.data) // ok: instrumented access to simulated memory
}
