package instantcheck

import (
	"strings"
	"testing"
)

// smallCfg runs the experiment drivers at unit-test scale.
var smallCfg = ExperimentConfig{Runs: 8, Threads: 4, Small: true, BaseSeed: 300, InputSeed: 9}

// TestTable1SmallScale regenerates Table 1 at test scale and checks the
// class structure the paper reports: 7 bit-by-bit apps (streamcluster via
// its ★ footnote), 4 FP-precision, 3 small-structure, 3 nondeterministic.
func TestTable1SmallScale(t *testing.T) {
	rows, err := Table1(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 17 {
		t.Fatalf("%d rows", len(rows))
	}
	counts := map[Class]int{}
	for _, r := range rows {
		counts[r.Class]++
	}
	want := map[Class]int{
		ClassBitDeterministic:    7,
		ClassFPDeterministic:     4,
		ClassStructDeterministic: 3,
		ClassNondeterministic:    3,
	}
	for c, n := range want {
		if counts[c] != n {
			t.Errorf("class %v: %d apps, want %d", c, counts[c], n)
		}
	}
	for _, r := range rows {
		switch r.Class {
		case ClassNondeterministic:
			if r.DetAtEnd {
				t.Errorf("%s: NDet app deterministic at end", r.App)
			}
			if r.FirstNDetRun == 0 {
				t.Errorf("%s: NDet app has no first-ndet run", r.App)
			}
		default:
			if !r.DetAtEnd {
				t.Errorf("%s: class %v but not deterministic at end", r.App, r.Class)
			}
		}
		if r.App == "streamcluster" && !strings.Contains(r.Note, "order-violation") {
			t.Errorf("streamcluster ★ note missing: %q", r.Note)
		}
	}
	out := FormatTable1(rows)
	for _, app := range []string{"blackscholes", "sphinx3", "radiosity"} {
		if !strings.Contains(out, app) {
			t.Errorf("formatted table missing %s", app)
		}
	}
}

// TestTable1ForUnknown checks the error path.
func TestTable1ForUnknown(t *testing.T) {
	if _, err := Table1For("nosuchapp", smallCfg); err == nil {
		t.Error("no error for unknown workload")
	}
}

// TestTable2SmallScale regenerates Table 2: every seeded bug must create
// nondeterminism in its (otherwise deterministic) host, and be found fast.
func TestTable2SmallScale(t *testing.T) {
	cfg := smallCfg
	cfg.Runs = 12
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	wantBugs := map[string]BugKind{
		"waterNS": BugSemantic,
		"waterSP": BugAtomicity,
		"radix":   BugOrder,
	}
	for _, r := range rows {
		if wantBugs[r.App] != r.Bug {
			t.Errorf("%s hosts %v", r.App, r.Bug)
		}
		if r.NDetPoints == 0 {
			t.Errorf("%s: bug not detected", r.App)
		}
		if r.FirstNDetRun == 0 {
			t.Errorf("%s: no first-ndet run", r.App)
		}
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "atomicity violation") {
		t.Error("formatting lost the bug type")
	}
}

// TestFigure5SmallScale checks the distribution study shape.
func TestFigure5SmallScale(t *testing.T) {
	ds, err := Figure5(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("%d distributions", len(ds))
	}
	// ocean without rounding and canneal must show scattered groups.
	for _, d := range ds {
		if strings.HasPrefix(d.App, "ocean") || strings.HasPrefix(d.App, "canneal") {
			multi := false
			for _, g := range d.Groups {
				if len(g.Distribution) > 1 {
					multi = true
				}
			}
			if !multi {
				t.Errorf("%s: no nondeterministic distribution group", d.App)
			}
		}
	}
	if out := FormatDistributions(ds); !strings.Contains(out, "checkpoints with distribution") {
		t.Error("distribution formatting")
	}
}

// TestFigure6SmallScale checks the overhead study invariants the paper
// reports: HW is essentially free, and the incremental-vs-traversal winner
// flips with the write-density/state-size ratio.
func TestFigure6SmallScale(t *testing.T) {
	rows, err := Figure6(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 { // 17 apps + GEOM
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]Overhead{}
	for _, r := range rows {
		byName[r.Program] = r
		if r.Program == "GEOM" {
			continue
		}
		if r.HWInc > 1.10 {
			t.Errorf("%s: HW overhead %.3f (paper: negligible)", r.Program, r.HWInc)
		}
		if r.SWIncIdeal <= 1 || r.SWTrIdeal <= 1 {
			t.Errorf("%s: software overheads must exceed native: %+v", r.Program, r)
		}
		// The store buffer can only remove hash pairs, never add them,
		// and software hashing stays costlier than the hardware datapath.
		if !(r.HWInc < r.SWIncBuffered && r.SWIncBuffered <= r.SWIncIdeal) {
			t.Errorf("%s: want HW < SW-Inc-Buf <= SW-Inc-Ideal: %+v", r.Program, r)
		}
	}
	geo := byName["GEOM"]
	if geo.HWInc > 1.02 {
		t.Errorf("HW geomean %.4f, want ≈ paper's 1.003", geo.HWInc)
	}
	// Paper §7.3: Inc wins for ocean/sphinx3/streamcluster, Tr for
	// barnes/fft/lu. The small inputs preserve the streamcluster and
	// sphinx3 orderings strongly; check those.
	if !(byName["sphinx3"].SWIncIdeal < byName["sphinx3"].SWTrIdeal) {
		t.Error("sphinx3: SW-Inc should beat SW-Tr")
	}
	if !(byName["streamcluster"].SWIncIdeal < byName["streamcluster"].SWTrIdeal) {
		t.Error("streamcluster: SW-Inc should beat SW-Tr")
	}
	if out := FormatFigure6(rows); !strings.Contains(out, "GEOM") {
		t.Error("figure 6 formatting")
	}
}

// TestFigure6Deletion checks the sphinx3 deletion ordering HW ≪ SW-Inc ≪
// SW-Tr (§7.3).
func TestFigure6Deletion(t *testing.T) {
	ov, err := Figure6Deletion(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(ov.HWInc < ov.SWIncIdeal && ov.SWIncIdeal < ov.SWTrIdeal) {
		t.Errorf("ordering violated: %+v", ov)
	}
	if ov.HWInc <= 1 {
		t.Error("deletion must cost something in HW")
	}
}

// TestFigure8SmallScale checks the seeded-bug distributions exist.
func TestFigure8SmallScale(t *testing.T) {
	cfg := smallCfg
	cfg.Runs = 12
	ds, err := Figure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("%d distributions", len(ds))
	}
	for _, d := range ds {
		scattered := false
		for _, g := range d.Groups {
			if len(g.Distribution) > 1 {
				scattered = true
			}
		}
		if !scattered {
			t.Errorf("%s: bug created no scattered distribution", d.App)
		}
	}
}

// TestFacadeHelpers smoke-tests the re-exported API surface.
func TestFacadeHelpers(t *testing.T) {
	if len(Workloads()) != 17 {
		t.Error("workloads")
	}
	if WorkloadByName("fft") == nil || WorkloadByName("nope") != nil {
		t.Error("lookup")
	}
	ig := NewIgnoreSet(IgnoreRule{Site: "x"})
	if ig.Empty() {
		t.Error("ignore set")
	}
	if NewMix64Hasher().Name() != "mix64" || NewCRC64Hasher().Name() != "crc64-ecma" {
		t.Error("hasher constructors")
	}
	if RoundFloorDecimal(3).Param() != 3 || RoundZeroMantissa(9).Param() != 9 {
		t.Error("rounding constructors")
	}
	if NewEnv(1) == nil || NewAddrLog() == nil {
		t.Error("replay constructors")
	}
	if GeoMean(nil).Program != "GEOM" {
		t.Error("GeoMean")
	}
	for _, b := range []BugKind{BugNone, BugSemantic, BugAtomicity, BugOrder} {
		if b.String() == "" {
			t.Error("bug strings")
		}
	}
}

// TestCRC64HasherVerdictsAgree cross-validates the location hashes: the
// determinism verdicts must be identical whichever conventional hash h is
// plugged into the incremental scheme (the paper's h is "e.g., CRC").
func TestCRC64HasherVerdictsAgree(t *testing.T) {
	for _, name := range []string{"volrend", "canneal"} {
		app := WorkloadByName(name)
		opts := WorkloadOptions{Threads: 4, Small: true}
		mix, err := Check(Campaign{Runs: 6, Threads: 4, Hasher: NewMix64Hasher()}, app.Builder(opts))
		if err != nil {
			t.Fatal(err)
		}
		crc, err := Check(Campaign{Runs: 6, Threads: 4, Hasher: NewCRC64Hasher()}, app.Builder(opts))
		if err != nil {
			t.Fatal(err)
		}
		if mix.Deterministic() != crc.Deterministic() {
			t.Errorf("%s: verdicts differ across hashers", name)
		}
	}
}
