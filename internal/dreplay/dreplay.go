// Package dreplay implements the deterministic-replay application of the
// InstantCheck primitive (paper §6.3). Recent replay systems record only a
// *partial* log of an execution and then search many candidate executions
// that obey it, hoping one recreates the bug. Two problems remain: (1) a
// candidate may recreate the bug but not the entire state, so the
// programmer cannot inspect all variables as they were; (2) a candidate
// that diverges is only discovered late.
//
// The paper proposes adding InstantCheck state hashes to the partial log:
// the original run records its per-checkpoint State Hash vector (64 bits
// per checkpoint — tiny), and replay candidates are validated against it.
// A candidate that matches every checkpoint hash has provably (modulo
// 2⁻⁶⁴ per comparison) reproduced the *entire memory state* at every
// checkpoint, not just the symptom; a candidate that diverges is killed at
// the first mismatching checkpoint rather than running to completion.
//
// This package records such hash logs and searches schedule seeds for an
// exact replay, using the simulator's checkpoint hook for the early
// mismatch cutoff.
package dreplay

import (
	"errors"
	"fmt"

	"instantcheck/internal/ihash"
	"instantcheck/internal/replay"
	"instantcheck/internal/sim"
)

// Log is the state-hash portion of a partial execution log.
type Log struct {
	// Hashes is the per-checkpoint State Hash vector of the original run.
	Hashes []ihash.Digest
	// OutputHash is the original run's output-stream hash.
	OutputHash uint64
	// Seed is the original run's schedule seed (kept for tests; a real
	// system records timing hints instead).
	Seed int64
	// env and addrLog pin the recorded input.
	env     *replay.Env
	addrLog *replay.AddrLog
	cfg     Config
}

// Config describes the program configuration being recorded/replayed.
type Config struct {
	// Threads is the worker thread count.
	Threads int
	// RoundFP enables FP rounding in the hashes.
	RoundFP bool
	// InputSeed fixes the program input.
	InputSeed int64
	// SwitchInterval is the scheduler preemption interval.
	SwitchInterval int
}

// Record executes the program once under the given schedule seed and
// returns the hash log of that original execution.
func Record(build func() sim.Program, cfg Config, seed int64) (*Log, error) {
	env := replay.NewEnv(cfg.InputSeed)
	addrLog := replay.NewAddrLog()
	m := sim.NewMachine(sim.Config{
		Threads:        cfg.Threads,
		ScheduleSeed:   seed,
		SwitchInterval: cfg.SwitchInterval,
		Scheme:         sim.HWInc,
		RoundFP:        cfg.RoundFP,
		Env:            env,
		AddrLog:        addrLog,
	})
	res, err := m.Run(build())
	if err != nil {
		return nil, fmt.Errorf("dreplay: recording run: %w", err)
	}
	return &Log{
		Hashes:     res.SHVector(),
		OutputHash: res.OutputHash,
		Seed:       seed,
		env:        env,
		addrLog:    addrLog,
		cfg:        cfg,
	}, nil
}

// errMismatch cancels a candidate at its first diverging checkpoint.
var errMismatch = errors.New("dreplay: checkpoint hash mismatch")

// Attempt is the outcome of one replay candidate.
type Attempt struct {
	// Seed is the candidate schedule seed.
	Seed int64
	// Match reports whether every checkpoint hash matched the log.
	Match bool
	// DivergedAt is the ordinal of the first mismatching checkpoint
	// (-1 when Match).
	DivergedAt int
	// Checkpoints is how many checkpoints this candidate executed before
	// matching or being cut off.
	Checkpoints int
}

// Result summarizes a replay search.
type Result struct {
	// Found reports whether a full-state replay was found.
	Found bool
	// Seed is the matching schedule seed (meaningful when Found).
	Seed int64
	// Attempts lists every candidate tried, in order.
	Attempts []Attempt
	// CheckpointsExecuted sums the checkpoints executed across all
	// candidates: with early cutoff, diverging candidates stop at their
	// first bad checkpoint, so this is far below candidates × log length.
	CheckpointsExecuted int
}

// TrySeed executes one replay candidate under the log, stopping at the
// first checkpoint whose hash disagrees.
func (l *Log) TrySeed(build func() sim.Program, seed int64) (Attempt, error) {
	at := Attempt{Seed: seed, DivergedAt: -1}
	executed := 0
	hook := func(cp sim.Checkpoint) error {
		executed++
		if cp.Ordinal >= len(l.Hashes) || cp.SH != l.Hashes[cp.Ordinal] {
			at.DivergedAt = cp.Ordinal
			return errMismatch
		}
		return nil
	}
	m := sim.NewMachine(sim.Config{
		Threads:        l.cfg.Threads,
		ScheduleSeed:   seed,
		SwitchInterval: l.cfg.SwitchInterval,
		Scheme:         sim.HWInc,
		RoundFP:        l.cfg.RoundFP,
		Env:            l.env,
		AddrLog:        l.addrLog,
		CheckpointHook: hook,
	})
	res, err := m.Run(build())
	at.Checkpoints = executed
	switch {
	case err == nil:
		at.Match = len(res.Checkpoints) == len(l.Hashes) && res.OutputHash == l.OutputHash
		if !at.Match && at.DivergedAt < 0 {
			at.DivergedAt = len(res.Checkpoints)
		}
		return at, nil
	case errors.Is(err, errMismatch):
		return at, nil
	default:
		return at, err
	}
}

// Search tries candidate schedule seeds until one reproduces the entire
// hash log (a full-state replay) or maxAttempts is exhausted.
func (l *Log) Search(build func() sim.Program, firstSeed int64, maxAttempts int) (*Result, error) {
	res := &Result{}
	for i := 0; i < maxAttempts; i++ {
		seed := firstSeed + int64(i)
		at, err := l.TrySeed(build, seed)
		if err != nil {
			return nil, fmt.Errorf("dreplay: candidate seed %d: %w", seed, err)
		}
		res.Attempts = append(res.Attempts, at)
		res.CheckpointsExecuted += at.Checkpoints
		if at.Match {
			res.Found = true
			res.Seed = seed
			return res, nil
		}
	}
	return res, nil
}
