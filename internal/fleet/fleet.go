// Package fleet distributes a determinism-checking campaign across worker
// processes: checkfleet. The farm (internal/farm) already splits a campaign
// into a recording run plus independent replay runs and exposes the replay
// stage behind the Dispatcher seam; this package implements that seam with
// a coordinator that shards the outstanding runs across worker nodes
// pulling work over HTTP.
//
// The protocol, built entirely on the paper's reproducibility guarantees:
//
//   - the coordinator records run 1 locally (inside farm's runJob), then
//     serializes the recorded replay substrate — program name, allocation-
//     address log, env-call streams — into a content-addressed bundle keyed
//     by its SHA-256 digest. Identical campaigns produce identical bundles,
//     so each worker fetches a given recording at most once and caches it
//     on disk by digest;
//   - workers pull: each lease hands out one shard of run indices with a
//     deadline the worker renews by heartbeat. A worker that stops
//     heartbeating (crash, SIGKILL, partition) loses its lease, and the
//     undelivered runs return to the shard queue for re-dispatch;
//   - workers replay their runs from the fetched bundle alone (§5: every
//     run is reproducible from the recorded logs plus the run index) and
//     stream the resulting hash records back in batches. Append-back is
//     idempotent by (job, run): the store commits one canonical record set
//     even when a re-dispatched shard races its not-quite-dead predecessor,
//     so stragglers are harmless, never double-counted;
//   - because the per-run hash vectors are the only thing that travels and
//     report assembly is commutative over runs, a fleet campaign's report
//     is byte-identical to a single-node campaign's — regardless of worker
//     count, shard boundaries, or how many leases expired along the way.
package fleet

import (
	"sort"

	"instantcheck/internal/farm"
	"instantcheck/internal/ihash"
	"instantcheck/internal/sim"
)

// LeaseInfo is one granted shard: the runs a worker must replay, the job
// they belong to, and everything needed to execute them — the spec (which
// any host resolves to the same campaign) and the digest of the recorded
// replay bundle.
type LeaseInfo struct {
	LeaseID string       `json:"lease_id"`
	Job     farm.JobID   `json:"job"`
	Spec    farm.JobSpec `json:"spec"`
	Runs    []int        `json:"runs"`
	Digest  string       `json:"digest"`
	// TTLMillis is the lease deadline interval; the worker heartbeats well
	// inside it.
	TTLMillis int64 `json:"ttl_ms"`
}

// leaseRequest asks for work.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// leaseResponse carries a lease, or null when no work is pending.
type leaseResponse struct {
	Lease *LeaseInfo `json:"lease"`
}

// heartbeatRequest renews a lease's deadline.
type heartbeatRequest struct {
	LeaseID string `json:"lease_id"`
	Worker  string `json:"worker"`
}

// heartbeatResponse tells the worker whether its lease still stands; a
// worker whose lease is gone stops executing the shard (whatever it already
// streamed back was accepted idempotently).
type heartbeatResponse struct {
	OK bool `json:"ok"`
}

// CheckpointRecord is one checkpoint's State Hash on the wire.
type CheckpointRecord struct {
	Ordinal int    `json:"ordinal"`
	Label   string `json:"label"`
	SH      uint64 `json:"sh"`
}

// OutputRecord is one output stream's hash on the wire.
type OutputRecord struct {
	FD    int    `json:"fd"`
	Hash  uint64 `json:"hash"`
	Bytes uint64 `json:"bytes"`
}

// RunRecord is one replayed run's complete hash-level result — exactly the
// fields the store persists and report assembly compares, nothing else
// travels.
type RunRecord struct {
	Run         int                `json:"run"`
	Checkpoints []CheckpointRecord `json:"checkpoints"`
	Outputs     []OutputRecord     `json:"outputs,omitempty"`
}

// resultsRequest streams a batch of finished runs back to the coordinator.
type resultsRequest struct {
	LeaseID string     `json:"lease_id"`
	Worker  string     `json:"worker"`
	Job     farm.JobID `json:"job"`
	// Fetch reports the bundle cache outcome ("hit" or "miss"), set only on
	// the shard's first batch.
	Fetch   string      `json:"fetch,omitempty"`
	Records []RunRecord `json:"records"`
	// Done marks the shard's final batch: the lease is released.
	Done bool `json:"done"`
}

// resultsResponse acknowledges a batch. LeaseOK false tells the worker the
// campaign has moved on (lease expired and re-dispatched, job canceled):
// stop executing the shard.
type resultsResponse struct {
	Accepted int  `json:"accepted"`
	LeaseOK  bool `json:"lease_ok"`
}

// recordFromResult projects a run result to its wire form.
func recordFromResult(run int, res *sim.Result) RunRecord {
	rec := RunRecord{Run: run}
	for _, cp := range res.Checkpoints {
		rec.Checkpoints = append(rec.Checkpoints, CheckpointRecord{
			Ordinal: cp.Ordinal, Label: cp.Label, SH: uint64(cp.SH),
		})
	}
	fds := make([]int, 0, len(res.Outputs))
	for fd := range res.Outputs {
		fds = append(fds, fd)
	}
	sort.Ints(fds)
	for _, fd := range fds {
		o := res.Outputs[fd]
		rec.Outputs = append(rec.Outputs, OutputRecord{FD: fd, Hash: o.Hash, Bytes: o.Bytes})
	}
	return rec
}

// resultFromRecord reconstructs the checker-run result a record describes.
// It mirrors farm.RunLog.Result — the proven-sufficient reconstruction the
// daemon's resume path already trusts for byte-identical reports.
func resultFromRecord(rec RunRecord) *sim.Result {
	res := &sim.Result{}
	for _, cp := range rec.Checkpoints {
		res.Checkpoints = append(res.Checkpoints, sim.Checkpoint{
			Ordinal: cp.Ordinal, Label: cp.Label, SH: ihash.Digest(cp.SH),
		})
	}
	if len(rec.Outputs) > 0 {
		res.Outputs = make(map[int]sim.OutputStream, len(rec.Outputs))
		for _, o := range rec.Outputs {
			res.Outputs[o.FD] = sim.OutputStream{Hash: o.Hash, Bytes: o.Bytes}
			res.OutputBytes += o.Bytes
		}
	}
	res.OutputHash = res.Outputs[sim.Stdout].Hash
	return res
}
