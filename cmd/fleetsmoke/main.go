// Command fleetsmoke is the distributed-campaign smoke gate: it boots a
// real fleet — one checkd in -fleet mode plus four checkworker processes —
// drives the full 17-app evaluation campaign through it, SIGKILLs one
// worker mid-shard, and then proves the north-star property end to end:
// every report is byte-identical to the one a plain single-node checkd
// produces for the same spec, worker death notwithstanding. It also
// scrapes the merged /metrics exposition from the live coordinator,
// failing on lint errors, on missing checkfleet series, or if the kill
// left no trace (no expired lease, no re-queued runs).
//
// Usage:
//
//	fleetsmoke [-keep]
//
// CI runs it as `make fleet-smoke`.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"instantcheck/internal/apps"
	"instantcheck/internal/farm"
	"instantcheck/internal/obs"
)

// requiredSeries are the checkfleet families a post-campaign scrape of the
// merged exposition must carry, alongside a sentinel from the farm side
// proving the merge really concatenates both registries.
var requiredSeries = []string{
	"checkfleet_workers_live",
	"checkfleet_worker_live",
	"checkfleet_leases_active",
	"checkfleet_campaigns_active",
	"checkfleet_shards_leased_total",
	"checkfleet_shards_completed_total",
	"checkfleet_shards_expired_total",
	"checkfleet_runs_requeued_total",
	"checkfleet_blob_fetch_misses_total",
	"checkfleet_blob_serve_bytes_total",
	"checkfleet_appendback_records_total",
	"checkfleet_appendback_bytes_total",
	"checkfarm_jobs_submitted_total",
}

func main() {
	keep := flag.Bool("keep", false, "keep the temp store/binary directory for inspection")
	flag.Parse()
	log.SetPrefix("fleetsmoke: ")
	log.SetFlags(0)
	if err := run(*keep); err != nil {
		log.Fatal(err)
	}
	log.Print("PASS")
}

func run(keep bool) error {
	dir, err := os.MkdirTemp("", "fleetsmoke")
	if err != nil {
		return err
	}
	if keep {
		log.Printf("workdir %s", dir)
	} else {
		defer os.RemoveAll(dir)
	}

	checkdPath := filepath.Join(dir, "checkd")
	workerPath := filepath.Join(dir, "checkworker")
	for bin, pkg := range map[string]string{checkdPath: "./cmd/checkd", workerPath: "./cmd/checkworker"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("build %s: %w", pkg, err)
		}
	}

	// The fleet daemon: coordinator mode, small shards and a short lease TTL
	// so the injected kill re-dispatches quickly.
	fleetC, stopFleet, err := startDaemon(checkdPath, filepath.Join(dir, "fleet.log"),
		"-fleet", "-shard-size", "4", "-lease-ttl", "1s")
	if err != nil {
		return err
	}
	defer stopFleet()

	// Four workers. The victim replays slowly (per-run latency), so it is
	// guaranteed to be mid-shard when the SIGKILL lands.
	var workers []*exec.Cmd
	defer func() {
		for _, w := range workers {
			if w.Process != nil {
				w.Process.Kill()
				w.Wait()
			}
		}
	}()
	startWorker := func(name string, extra ...string) (*exec.Cmd, error) {
		args := append([]string{
			"-coordinator", fleetC.BaseURL,
			"-name", name,
			"-cache", filepath.Join(dir, "cache-"+name),
			"-poll", "20ms",
		}, extra...)
		w := exec.Command(workerPath, args...)
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			return nil, fmt.Errorf("start worker %s: %w", name, err)
		}
		workers = append(workers, w)
		return w, nil
	}
	victim, err := startWorker("victim", "-run-latency", "80ms")
	if err != nil {
		return err
	}
	for _, name := range []string{"w1", "w2", "w3"} {
		if _, err := startWorker(name); err != nil {
			return err
		}
	}

	// The full 17-app evaluation campaign, fully seeded so the plain daemon
	// below resolves byte-identical campaigns.
	var ids []farm.JobID
	specs := make(map[farm.JobID]farm.JobSpec)
	for _, app := range apps.Names() {
		spec := farm.JobSpec{App: app, Runs: 6, Threads: 4, Seed: 50, InputSeed: 7, Small: true}
		job, err := fleetC.Submit(context.Background(), spec)
		if err != nil {
			return fmt.Errorf("submit %s: %w", app, err)
		}
		ids = append(ids, job.ID)
		specs[job.ID] = spec
	}
	log.Printf("submitted %d campaigns to the fleet daemon", len(ids))

	// Kill the victim as soon as it holds a lease (SIGKILL: no farewell, no
	// flush — the lease must expire on its own).
	if err := awaitSample(fleetC, 30*time.Second, func(s obs.Sample) bool {
		return s.Name == "checkfleet_shards_leased_total" && s.Label("worker") == "victim" && s.Value >= 1
	}); err != nil {
		return fmt.Errorf("victim never leased a shard: %w", err)
	}
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		return fmt.Errorf("kill victim: %w", err)
	}
	victim.Wait()
	log.Print("SIGKILLed worker \"victim\" mid-shard")

	// Every campaign must still converge.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	for _, id := range ids {
		job, err := fleetC.Wait(ctx, id, 50*time.Millisecond)
		if err != nil {
			return fmt.Errorf("wait %s: %w", id, err)
		}
		if job.State != farm.JobDone {
			return fmt.Errorf("fleet job %s (%s) finished as %s: %s", id, job.Spec.App, job.State, job.Error)
		}
	}

	// The reference: a plain single-node checkd over the same specs.
	plainC, stopPlain, err := startDaemon(checkdPath, filepath.Join(dir, "plain.log"))
	if err != nil {
		return err
	}
	defer stopPlain()
	for _, id := range ids {
		spec := specs[id]
		ref, err := plainC.Submit(context.Background(), spec)
		if err != nil {
			return fmt.Errorf("submit reference %s: %w", spec.App, err)
		}
		job, err := plainC.Wait(ctx, ref.ID, 50*time.Millisecond)
		if err != nil {
			return fmt.Errorf("wait reference %s: %w", spec.App, err)
		}
		if job.State != farm.JobDone {
			return fmt.Errorf("reference job %s finished as %s: %s", spec.App, job.State, job.Error)
		}
		fleetRep, err := fleetC.Report(context.Background(), id)
		if err != nil {
			return err
		}
		plainRep, err := plainC.Report(context.Background(), ref.ID)
		if err != nil {
			return err
		}
		a, _ := json.Marshal(fleetRep)
		b, _ := json.Marshal(plainRep)
		if !bytes.Equal(a, b) {
			return fmt.Errorf("%s: fleet report differs from single-node:\nfleet  %s\nsingle %s", spec.App, a, b)
		}
	}
	log.Printf("all %d fleet reports byte-identical to single-node", len(ids))

	// The merged exposition lints, carries every fleet series, and shows the
	// kill: at least one expired lease and one re-queued run.
	samples, err := scrapeAndLint(fleetC)
	if err != nil {
		return fmt.Errorf("post-campaign scrape: %w", err)
	}
	have := map[string]float64{}
	for _, s := range samples {
		have[s.Name] += s.Value
	}
	var missing []string
	for _, name := range requiredSeries {
		if _, ok := have[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("scrape is missing required series: %s", strings.Join(missing, ", "))
	}
	if have["checkfleet_shards_expired_total"] < 1 {
		return fmt.Errorf("no lease expired despite the SIGKILL")
	}
	if have["checkfleet_runs_requeued_total"] < 1 {
		return fmt.Errorf("no runs re-queued despite the SIGKILL")
	}
	log.Printf("scraped %d samples: %v shard(s) expired, %v run(s) re-queued, all %d required series present",
		len(samples), have["checkfleet_shards_expired_total"], have["checkfleet_runs_requeued_total"], len(requiredSeries))
	return nil
}

// startDaemon launches one checkd on a free port and waits for /healthz.
func startDaemon(bin, store string, extra ...string) (*farm.Client, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	addr := ln.Addr().String()
	ln.Close()
	args := append([]string{"-addr", addr, "-store", store}, extra...)
	daemon := exec.Command(bin, args...)
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return nil, nil, fmt.Errorf("start checkd: %w", err)
	}
	stop := func() {
		daemon.Process.Signal(syscall.SIGTERM)
		daemon.Wait()
	}
	c := farm.NewClient("http://" + addr)
	deadline := time.Now().Add(15 * time.Second)
	for {
		h, err := c.Health(context.Background())
		if err == nil && h.Status == "ok" {
			return c, stop, nil
		}
		if time.Now().After(deadline) {
			stop()
			return nil, nil, fmt.Errorf("daemon not healthy after 15s: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// awaitSample polls /metrics until some sample satisfies ok.
func awaitSample(c *farm.Client, timeout time.Duration, ok func(obs.Sample) bool) error {
	deadline := time.Now().Add(timeout)
	for {
		samples, err := scrapeAndLint(c)
		if err == nil {
			for _, s := range samples {
				if ok(s) {
					return nil
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("condition not reached after %v", timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// scrapeAndLint fetches /metrics and validates the exposition format.
func scrapeAndLint(c *farm.Client) ([]obs.Sample, error) {
	text, err := c.MetricsText(context.Background())
	if err != nil {
		return nil, err
	}
	if err := obs.Lint(strings.NewReader(text)); err != nil {
		return nil, fmt.Errorf("malformed exposition: %w", err)
	}
	return obs.ParseExposition(strings.NewReader(text))
}
