package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"instantcheck/internal/core"
	"instantcheck/internal/farm"
	"instantcheck/internal/obs"
	"instantcheck/internal/replay"
	"instantcheck/internal/sim"
)

// CoordinatorOptions configures a fleet coordinator.
type CoordinatorOptions struct {
	// ShardSize is the number of runs per lease (<= 0 selects 8). Smaller
	// shards rebalance faster after a worker dies; larger shards amortize
	// the per-lease HTTP round trips.
	ShardSize int
	// LeaseTTL is how long a lease survives without a heartbeat (<= 0
	// selects 10s). Expired leases return their undelivered runs to the
	// shard queue.
	LeaseTTL time.Duration
	// LivenessWindow bounds how long a silent worker still counts as live
	// on the worker gauges (<= 0 selects 3×LeaseTTL).
	LivenessWindow time.Duration
	// Registry receives the checkfleet metric families; nil creates a
	// private registry (exposed via Registry()).
	Registry *obs.Registry
	// Logf, when non-nil, receives one line per fleet event.
	Logf func(format string, args ...any)
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.ShardSize <= 0 {
		o.ShardSize = 8
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.LivenessWindow <= 0 {
		o.LivenessWindow = 3 * o.LeaseTTL
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// campaign is one job's distributed replay stage, alive for the duration of
// a Dispatch call.
type campaign struct {
	id     farm.JobID
	spec   farm.JobSpec
	digest replay.Digest
	// shards queues run-index groups awaiting a lease; expiry appends the
	// undelivered remainder of a dead lease back here.
	shards [][]int
	// outstanding holds run indices not yet claimed by an accepted result.
	outstanding map[int]bool
	// inflight counts claimed runs whose delivery to the farm has not
	// returned yet; the campaign completes only when both outstanding and
	// inflight reach zero, so Dispatch never wakes before every accepted
	// result has actually hit the store.
	inflight int
	deliver  func(run int, res *sim.Result) error
	failed   error
	closed   bool
	done     chan struct{}
}

// lease is one shard granted to one worker, kept alive by heartbeats.
type lease struct {
	id       string
	worker   string
	job      farm.JobID
	runs     []int
	deadline time.Time
}

// blob is one content-addressed bundle, refcounted across the campaigns
// that share it (identical recordings have identical digests).
type blob struct {
	data []byte
	refs int
}

// Coordinator implements farm.Dispatcher by leasing run-shards to pull-based
// worker processes over HTTP. Plug it into farm.Options.Dispatcher and mount
// Handler() next to the farm's API.
type Coordinator struct {
	opts CoordinatorOptions
	m    *metrics

	mu        sync.Mutex
	campaigns map[farm.JobID]*campaign
	order     []farm.JobID
	leases    map[string]*lease
	blobs     map[replay.Digest]*blob
	// workers maps worker name to last contact time, feeding the liveness
	// gauges.
	workers  map[string]time.Time
	leaseSeq int
}

// NewCoordinator builds a coordinator and registers its metric families.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	c := &Coordinator{
		opts:      opts.withDefaults(),
		campaigns: make(map[farm.JobID]*campaign),
		leases:    make(map[string]*lease),
		blobs:     make(map[replay.Digest]*blob),
		workers:   make(map[string]time.Time),
	}
	c.m = newMetrics(c.opts.Registry)
	c.opts.Registry.GaugeFunc("checkfleet_workers_live",
		"Workers that have reported in within the liveness window.", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.liveWorkersLocked(time.Now()))
		})
	c.opts.Registry.GaugeFunc("checkfleet_leases_active",
		"Shard leases currently granted and unexpired.", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.leases))
		})
	c.opts.Registry.GaugeFunc("checkfleet_campaigns_active",
		"Campaigns with a replay stage in flight.", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.campaigns))
		})
	return c
}

// Registry returns the registry holding the checkfleet families — merge it
// with the farm's via obs.MergedHandler (gated by obs.LintMerged).
func (c *Coordinator) Registry() *obs.Registry { return c.opts.Registry }

// liveWorkersLocked counts workers inside the liveness window.
func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	n := 0
	for _, last := range c.workers {
		if now.Sub(last) <= c.opts.LivenessWindow {
			n++
		}
	}
	return n
}

// touchWorkerLocked records contact from a worker, registering its liveness
// series on first sight.
func (c *Coordinator) touchWorkerLocked(worker string, now time.Time) {
	if worker == "" {
		return
	}
	if _, known := c.workers[worker]; !known {
		w := worker
		c.m.workerLive.Func(w, func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			if time.Since(c.workers[w]) <= c.opts.LivenessWindow {
				return 1
			}
			return 0
		})
	}
	c.workers[worker] = now
}

// Dispatch implements farm.Dispatcher: it publishes the recorded replay
// bundle, shards the outstanding runs, and blocks until workers have
// delivered every run (or the context dies / a delivery fails). The farm's
// runJob calls this after the recording run, holding the deliver closure
// that persists and folds each result.
func (c *Coordinator) Dispatch(ctx context.Context, id farm.JobID, spec farm.JobSpec, runner *core.Runner, need []int,
	deliver func(run int, res *sim.Result) error) error {

	st, err := runner.ReplayState()
	if err != nil {
		return err
	}
	raw, digest, err := MarshalBundle(st)
	if err != nil {
		return err
	}
	camp := &campaign{
		id:          id,
		spec:        spec,
		digest:      digest,
		shards:      farm.PlanShards(need, c.opts.ShardSize),
		outstanding: make(map[int]bool, len(need)),
		deliver:     deliver,
		done:        make(chan struct{}),
	}
	for _, run := range need {
		camp.outstanding[run] = true
	}
	nshards := len(camp.shards) // read before publication; workers pop shards immediately

	c.mu.Lock()
	if _, dup := c.campaigns[id]; dup {
		c.mu.Unlock()
		return fmt.Errorf("fleet: job %s already dispatched", id)
	}
	if b := c.blobs[digest]; b != nil {
		b.refs++
	} else {
		c.blobs[digest] = &blob{data: raw, refs: 1}
	}
	c.campaigns[id] = camp
	c.order = append(c.order, id)
	c.mu.Unlock()
	c.opts.Logf("fleet: job %s: %d runs in %d shards, bundle %s (%d bytes)",
		id, len(need), nshards, digest, len(raw))
	defer c.finish(camp)

	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-camp.done:
		c.mu.Lock()
		defer c.mu.Unlock()
		return camp.failed
	}
}

// finish retires a campaign: its entry, its leases and (when the refcount
// drops to zero) its bundle all go away. Results still in flight from
// zombie workers will be counted as duplicates and dropped.
func (c *Coordinator) finish(camp *campaign) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.campaigns, camp.id)
	for i, id := range c.order {
		if id == camp.id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	for lid, l := range c.leases {
		if l.job == camp.id {
			delete(c.leases, lid)
		}
	}
	if b := c.blobs[camp.digest]; b != nil {
		if b.refs--; b.refs <= 0 {
			delete(c.blobs, camp.digest)
		}
	}
}

// failLocked marks a campaign failed and wakes its Dispatch. Caller holds
// c.mu.
func (camp *campaign) failLocked(err error) {
	if camp.failed == nil {
		camp.failed = err
	}
	if !camp.closed {
		camp.closed = true
		close(camp.done)
	}
}

// expireLocked reaps leases past their deadline, returning their
// undelivered runs to the shard queue. Caller holds c.mu.
func (c *Coordinator) expireLocked(now time.Time) {
	for lid, l := range c.leases {
		if now.Before(l.deadline) {
			continue
		}
		delete(c.leases, lid)
		c.m.shardsExpired.Inc()
		camp := c.campaigns[l.job]
		if camp == nil {
			continue
		}
		c.requeueLocked(camp, l)
	}
}

// requeueLocked puts a dead lease's undelivered runs back on the shard
// queue. Caller holds c.mu.
func (c *Coordinator) requeueLocked(camp *campaign, l *lease) {
	var left []int
	for _, run := range l.runs {
		if camp.outstanding[run] {
			left = append(left, run)
		}
	}
	if len(left) == 0 {
		return
	}
	camp.shards = append(camp.shards, left)
	c.m.runsRequeued.Add(uint64(len(left)))
	c.opts.Logf("fleet: lease %s (worker %s) lost %d run(s) of job %s, re-queued",
		l.id, l.worker, len(left), camp.id)
}

// nextLease grants the next pending shard, nil when no work is waiting.
func (c *Coordinator) nextLease(worker string) *LeaseInfo {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(worker, now)
	c.expireLocked(now)
	for _, id := range c.order {
		camp := c.campaigns[id]
		if camp.failed != nil {
			continue
		}
		for len(camp.shards) > 0 {
			shard := camp.shards[0]
			camp.shards = camp.shards[1:]
			// Drop runs a straggler delivered while the shard waited.
			var runs []int
			for _, run := range shard {
				if camp.outstanding[run] {
					runs = append(runs, run)
				}
			}
			if len(runs) == 0 {
				continue
			}
			c.leaseSeq++
			l := &lease{
				id:       fmt.Sprintf("L%06d", c.leaseSeq),
				worker:   worker,
				job:      id,
				runs:     runs,
				deadline: now.Add(c.opts.LeaseTTL),
			}
			c.leases[l.id] = l
			c.m.shardsLeased.With(worker).Inc()
			c.opts.Logf("fleet: lease %s: job %s runs %v -> worker %s", l.id, id, runs, worker)
			return &LeaseInfo{
				LeaseID:   l.id,
				Job:       id,
				Spec:      camp.spec,
				Runs:      append([]int(nil), runs...),
				Digest:    camp.digest.String(),
				TTLMillis: c.opts.LeaseTTL.Milliseconds(),
			}
		}
	}
	return nil
}

// heartbeat renews a lease; false means the lease is gone and the worker
// should abandon the shard.
func (c *Coordinator) heartbeat(leaseID, worker string) bool {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(worker, now)
	c.expireLocked(now)
	l := c.leases[leaseID]
	if l == nil {
		return false
	}
	l.deadline = now.Add(c.opts.LeaseTTL)
	return true
}

// acceptResults folds one batch of worker results into the campaign. Every
// record is judged by (job, run) alone — lease validity does not gate
// acceptance, so a zombie worker's late results still count (idempotent
// append-back; the store below dedups identically). Returns the number of
// newly delivered runs and whether the worker should keep executing.
func (c *Coordinator) acceptResults(req *resultsRequest, bodyBytes int) (int, bool) {
	now := time.Now()
	c.mu.Lock()
	c.touchWorkerLocked(req.Worker, now)
	c.m.appendBytes.Add(uint64(bodyBytes))
	switch req.Fetch {
	case "hit":
		c.m.fetchHits.Inc()
	case "miss":
		c.m.fetchMisses.Inc()
	}
	if l := c.leases[req.LeaseID]; l != nil {
		l.deadline = now.Add(c.opts.LeaseTTL) // a result batch renews like a heartbeat
	}
	camp := c.campaigns[req.Job]
	// Claim the fresh runs under the lock; deliver them outside it (the
	// store append fsyncs — too slow to serialize every worker behind).
	var fresh []RunRecord
	for _, rec := range req.Records {
		if camp != nil && camp.failed == nil && camp.outstanding[rec.Run] {
			delete(camp.outstanding, rec.Run)
			fresh = append(fresh, rec)
		} else {
			c.m.appendDuplicates.Inc()
		}
	}
	if camp != nil {
		camp.inflight += len(fresh)
	}
	c.mu.Unlock()

	accepted := 0
	var deliverErr error
	for _, rec := range fresh {
		if err := camp.deliver(rec.Run, resultFromRecord(rec)); err != nil {
			deliverErr = fmt.Errorf("fleet: job %s run %d: %w", req.Job, rec.Run, err)
			break
		}
		accepted++
		c.m.appendRecords.Inc()
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if camp != nil {
		camp.inflight -= len(fresh)
	}
	if deliverErr != nil {
		camp.failLocked(deliverErr)
		c.opts.Logf("fleet: %v", deliverErr)
	}
	if camp != nil && !camp.closed && len(camp.outstanding) == 0 && camp.inflight == 0 {
		camp.closed = true
		close(camp.done)
	}
	if req.Done {
		if l := c.leases[req.LeaseID]; l != nil {
			delete(c.leases, req.LeaseID)
			c.m.shardsCompleted.Inc()
			if camp != nil && camp.failed == nil {
				// A shard released with undelivered runs (worker-side replay
				// failure) goes straight back, no expiry wait.
				c.requeueLocked(camp, l)
			}
		}
		return accepted, false
	}
	leaseOK := c.leases[req.LeaseID] != nil && camp != nil && camp.failed == nil
	return accepted, leaseOK
}

// blobData looks up a bundle by digest.
func (c *Coordinator) blobData(digest string) []byte {
	d, err := replay.ParseDigest(digest)
	if err != nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if b := c.blobs[d]; b != nil {
		return b.data
	}
	return nil
}

// Handler returns the fleet's worker-facing HTTP API, with full paths so it
// mounts under /api/v1/fleet/ on the daemon's mux:
//
//	POST /api/v1/fleet/lease          request a shard ({worker})
//	POST /api/v1/fleet/heartbeat      renew a lease ({lease_id, worker})
//	POST /api/v1/fleet/results        stream result batches (resultsRequest)
//	GET  /api/v1/fleet/blob/{digest}  fetch a replay bundle
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/fleet/lease", func(w http.ResponseWriter, r *http.Request) {
		var req leaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad lease request: %w", err))
			return
		}
		writeJSON(w, http.StatusOK, leaseResponse{Lease: c.nextLease(req.Worker)})
	})
	mux.HandleFunc("POST /api/v1/fleet/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req heartbeatRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad heartbeat: %w", err))
			return
		}
		writeJSON(w, http.StatusOK, heartbeatResponse{OK: c.heartbeat(req.LeaseID, req.Worker)})
	})
	mux.HandleFunc("POST /api/v1/fleet/results", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("read results: %w", err))
			return
		}
		var req resultsRequest
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad results request: %w", err))
			return
		}
		accepted, ok := c.acceptResults(&req, len(body))
		writeJSON(w, http.StatusOK, resultsResponse{Accepted: accepted, LeaseOK: ok})
	})
	mux.HandleFunc("GET /api/v1/fleet/blob/{digest}", func(w http.ResponseWriter, r *http.Request) {
		data := c.blobData(r.PathValue("digest"))
		if data == nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("no bundle %s", r.PathValue("digest")))
			return
		}
		c.m.blobServeBytes.Add(uint64(len(data)))
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{err.Error()})
}
