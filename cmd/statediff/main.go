// Command statediff runs the paper's §2.3 bug-localization tool on one
// workload: it checks determinism, and when two runs diverge it re-executes
// them with full state capture at the first differing checkpoint, diffs
// the states, and maps every differing word back to the allocation site
// and offset that produced it.
//
// Usage:
//
//	statediff <app> [-runs N] [-threads N] [-small] [-bug kind] [-round] [-max N]
//
// -bug seeds a Figure 7 bug ("semantic", "atomicity", "order") into the
// app that hosts it; -round enables FP rounding; -max limits the printed
// per-word differences.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"instantcheck"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "statediff:", err)
		os.Exit(1)
	}
}

// run executes the tool against args, writing the report to w.
func run(args []string, w io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: statediff <app> [flags]")
	}
	name := args[0]
	fs := flag.NewFlagSet("statediff", flag.ContinueOnError)
	runs := fs.Int("runs", 30, "test runs")
	threads := fs.Int("threads", 8, "worker threads")
	small := fs.Bool("small", false, "reduced input")
	bug := fs.String("bug", "", "seed a Figure 7 bug: semantic|atomicity|order")
	round := fs.Bool("round", false, "enable FP rounding")
	maxLines := fs.Int("max", 16, "max individual differences to print")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	app := instantcheck.WorkloadByName(name)
	if app == nil {
		return fmt.Errorf("unknown workload %q (see `instantcheck list`)", name)
	}
	opts := instantcheck.WorkloadOptions{Threads: *threads, Small: *small}
	switch *bug {
	case "":
	case "semantic":
		opts.Bug = instantcheck.BugSemantic
	case "atomicity":
		opts.Bug = instantcheck.BugAtomicity
	case "order":
		opts.Bug = instantcheck.BugOrder
	default:
		return fmt.Errorf("unknown bug kind %q", *bug)
	}

	camp := instantcheck.Campaign{
		Runs:                  *runs,
		Threads:               *threads,
		RoundFP:               *round,
		SnapshotDifferingRuns: true,
	}
	rep, err := instantcheck.Check(camp, app.Builder(opts))
	if err != nil {
		return err
	}
	if rep.Deterministic() {
		fmt.Fprintf(w, "%s is deterministic across %d runs (%d checking points); nothing to diff\n",
			name, *runs, rep.Points())
		return nil
	}
	fmt.Fprintf(w, "%s: %d det / %d ndet checking points, first nondeterministic run %d\n",
		name, rep.DetPoints, rep.NDetPoints, rep.FirstNDetRun)
	d := rep.DiffSnapshots
	if d == nil {
		return fmt.Errorf("no divergence captured")
	}
	fmt.Fprintf(w, "first divergence: checkpoint %d (%s), runs %d vs %d\n\n",
		d.Ordinal, d.Label, d.RunA, d.RunB)
	diffs := instantcheck.DiffStates(d.A, d.B)
	fmt.Fprint(w, instantcheck.RenderDiff(diffs, *maxLines))
	return nil
}
