package ihash

import "testing"

// BenchmarkHashWord measures the location hash — the operation the MHM
// hardware performs per store (twice: old and new value).
func BenchmarkHashWord(b *testing.B) {
	for _, h := range hashers {
		h := h
		b.Run(h.Name(), func(b *testing.B) {
			var sink Digest
			for i := 0; i < b.N; i++ {
				sink = sink.Combine(h.HashWord(uint64(i)*8, uint64(i)*0x9e37))
			}
			benchSink = sink
		})
	}
}

// BenchmarkAccumulatorWrite measures the full incremental store update
// (⊖old ⊕new) — the per-store cost of SW-InstantCheck_Inc in this runtime.
func BenchmarkAccumulatorWrite(b *testing.B) {
	a := NewAccumulator(nil)
	for i := 0; i < b.N; i++ {
		a.Write(uint64(i&1023)*8, uint64(i), uint64(i+1))
	}
	benchSink = a.Value()
}

// BenchmarkZeroSumCache compares computing Σ h(a,0) for a run from scratch
// against the memoized probe the traversal scheme performs per checkpoint.
// The cache turns a per-word hash loop into one map lookup, which is what
// makes subtracting the zero-state digest per run (instead of hashing zero
// per word) profitable.
func BenchmarkZeroSumCache(b *testing.B) {
	const words = 512 // one page-bounded run
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		var sink Digest
		for i := 0; i < b.N; i++ {
			sink = sink.Combine(ZeroSum(Mix64{}, 0x10000, words))
		}
		benchSink = sink
	})
	b.Run("cached", func(b *testing.B) {
		c := NewZeroSumCache(nil)
		c.Warm(0x10000, words)
		b.ReportAllocs()
		b.ResetTimer()
		var sink Digest
		for i := 0; i < b.N; i++ {
			sink = sink.Combine(c.Sum(0x10000, words))
		}
		benchSink = sink
	})
}

// BenchmarkWriteBatch measures the run-granular accumulator update against
// the word-at-a-time loop it replaces.
func BenchmarkWriteBatch(b *testing.B) {
	const words = 512
	olds := make([]uint64, words)
	news := make([]uint64, words)
	for i := range news {
		olds[i] = uint64(i) * 3
		news[i] = uint64(i) * 7
	}
	b.Run("batch", func(b *testing.B) {
		a := NewAccumulator(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.WriteBatch(0x10000, olds, news)
		}
		benchSink = a.Value()
	})
	b.Run("perword", func(b *testing.B) {
		a := NewAccumulator(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range news {
				a.Write(0x10000+uint64(j)*8, olds[j], news[j])
			}
		}
		benchSink = a.Value()
	})
}

// BenchmarkWriteScattered measures the store-buffer drain kernel — the
// scattered-address sibling of WriteBatch — against the per-word loop it
// batches.
func BenchmarkWriteScattered(b *testing.B) {
	const words = 512
	addrs := make([]uint64, words)
	olds := make([]uint64, words)
	news := make([]uint64, words)
	for i := range news {
		addrs[i] = 0x10000 + uint64(i*i%4096)*8 // non-contiguous
		olds[i] = uint64(i) * 3
		news[i] = uint64(i) * 7
	}
	b.Run("scattered", func(b *testing.B) {
		a := NewAccumulator(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a.WriteScattered(addrs, olds, news)
		}
		benchSink = a.Value()
	})
	b.Run("perword", func(b *testing.B) {
		a := NewAccumulator(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range news {
				a.Write(addrs[j], olds[j], news[j])
			}
		}
		benchSink = a.Value()
	})
}

var benchSink Digest
