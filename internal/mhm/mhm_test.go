package mhm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"instantcheck/internal/fpround"
	"instantcheck/internal/ihash"
)

// op is one randomized MHM operation for the equivalence properties.
type op struct {
	kind int // 0 store, 1 minus, 2 plus
	addr uint64
	old  uint64
	new  uint64
	isFP bool
}

func randomOps(rng *rand.Rand, n int) []op {
	ops := make([]op, n)
	for i := range ops {
		ops[i] = op{
			kind: rng.Intn(3),
			addr: rng.Uint64() &^ 7,
			old:  rng.Uint64(),
			new:  rng.Uint64(),
			isFP: rng.Intn(2) == 0,
		}
	}
	return ops
}

func apply(u *Unit, ops []op) {
	for _, o := range ops {
		switch o.kind {
		case 0:
			u.OnStore(o.addr, o.old, o.new, o.isFP)
		case 1:
			u.MinusHash(o.addr, o.old, o.isFP)
		case 2:
			u.PlusHash(o.addr, o.new, o.isFP)
		}
	}
}

// TestClusteredEqualsBasic property-checks §3.2: for any cluster count and
// any dispatch policy, the multi-cluster MHM produces the same TH as the
// basic single-register design, because modulo addition is commutative and
// associative.
func TestClusteredEqualsBasic(t *testing.T) {
	f := func(seed int64, nOps uint8, clusters uint8, rounding bool) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := randomOps(rng, int(nOps)%64+1)
		nc := int(clusters)%7 + 1

		basic := New(nil, fpround.Default)
		randomDispatch := func(int) int { return rng.Intn(nc) }
		clustered := NewClustered(nil, fpround.Default, nc, randomDispatch)
		roundRobin := NewClustered(nil, fpround.Default, nc, nil)
		if rounding {
			basic.StartFPRounding()
			clustered.StartFPRounding()
			roundRobin.StartFPRounding()
		}
		apply(basic, ops)
		apply(clustered, ops)
		apply(roundRobin, ops)
		return basic.TH() == clustered.TH() && basic.TH() == roundRobin.TH()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestStoreIsMinusPlusComposition checks OnStore ≡ MinusHash(old) then
// PlusHash(new): the decomposition §3.2 exploits when scheduling Data_old
// and Data_new terms independently, in any order.
func TestStoreIsMinusPlusComposition(t *testing.T) {
	f := func(addr, old, new uint64, isFP bool) bool {
		a := New(nil, fpround.Default)
		a.OnStore(addr, old, new, isFP)
		b := New(nil, fpround.Default)
		// Reverse order: plus before minus — must not matter.
		b.PlusHash(addr, new, isFP)
		b.MinusHash(addr, old, isFP)
		return a.TH() == b.TH()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStartStopHashing checks stores seen while stopped leave TH unchanged
// and are counted as skipped (§3.3: running analysis tools in the checked
// address space).
func TestStartStopHashing(t *testing.T) {
	u := New(nil, fpround.None)
	u.OnStore(8, 0, 1, false)
	th := u.TH()
	u.StopHashing()
	if u.Hashing() {
		t.Fatal("Hashing() after stop")
	}
	u.OnStore(16, 0, 99, false)
	u.OnStore(24, 0, 42, false)
	if u.TH() != th {
		t.Error("stopped unit changed TH")
	}
	u.StartHashing()
	u.OnStore(16, 0, 99, false)
	if u.TH() == th {
		t.Error("restarted unit ignored a store")
	}
	s := u.Stats()
	if s.HashedStores != 2 || s.SkippedStores != 2 {
		t.Errorf("stats = %+v", s)
	}
}

// TestSaveRestoreMigration models a context switch/migration (§3.3): a
// thread's TH is saved from one core's MHM and restored into another's;
// the combined State Hash is unaffected.
func TestSaveRestoreMigration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := randomOps(rng, 40)

		// Uninterrupted execution on one core.
		solo := New(nil, fpround.Default)
		apply(solo, ops)

		// Same work split across a migration at an arbitrary point.
		cut := rng.Intn(len(ops))
		core0 := NewClustered(nil, fpround.Default, 4, nil)
		apply(core0, ops[:cut])
		saved := core0.SaveHash()
		core1 := New(nil, fpround.Default)
		core1.RestoreHash(saved)
		apply(core1, ops[cut:])
		return core1.TH() == solo.TH()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRestoreClearsClusters checks restore_hash resets cluster partials.
func TestRestoreClearsClusters(t *testing.T) {
	u := NewClustered(nil, fpround.None, 3, nil)
	u.OnStore(8, 1, 2, false)
	u.RestoreHash(ihash.Zero)
	if u.TH() != ihash.Zero {
		t.Error("cluster partial survived restore")
	}
}

// TestFPRoundingPath checks the round-off unit sits in front of the hash
// unit: FP stores that differ only below the rounding granularity hash
// identically once rounding is on, and non-FP stores never round.
func TestFPRoundingPath(t *testing.T) {
	mk := func() *Unit {
		u := New(nil, fpround.Default)
		u.StartFPRounding()
		return u
	}
	a, b := mk(), mk()
	a.OnStore(8, 0, math.Float64bits(1.2345000001), true)
	b.OnStore(8, 0, math.Float64bits(1.2345000009), true)
	if a.TH() != b.TH() {
		t.Error("FP rounding did not collapse sub-granularity difference")
	}

	// The same two values as *integer* stores must stay distinct.
	c, d := mk(), mk()
	c.OnStore(8, 0, math.Float64bits(1.2345000001), false)
	d.OnStore(8, 0, math.Float64bits(1.2345000009), false)
	if c.TH() == d.TH() {
		t.Error("integer stores were rounded")
	}

	// With rounding stopped, FP stores are bit-exact again.
	e, f := mk(), mk()
	e.StopFPRounding()
	f.StopFPRounding()
	e.OnStore(8, 0, math.Float64bits(1.2345000001), true)
	f.OnStore(8, 0, math.Float64bits(1.2345000009), true)
	if e.TH() == f.TH() {
		t.Error("stop_FP_rounding did not take effect")
	}
	if e.Rounding() || !a.Rounding() {
		t.Error("Rounding() state tracking")
	}
}

// TestMinusPlusDeletion checks the §2.2 deletion idiom: minus_hash of the
// current value plus plus_hash of the initial value removes an address's
// effect, leaving the TH as if the address had never been written.
func TestMinusPlusDeletion(t *testing.T) {
	f := func(addr, v uint64) bool {
		u := New(nil, fpround.None)
		u.OnStore(addr, 0, v, false) // write v over initial 0
		u.MinusHash(addr, v, false)  // delete current value
		u.PlusHash(addr, 0, false)   // restore initial value
		return u.TH() == ihash.Zero
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCombineTH checks the software State Hash combination over units.
func TestCombineTH(t *testing.T) {
	u0 := New(nil, fpround.None)
	u1 := New(nil, fpround.None)
	u0.OnStore(8, 0, 7, false)
	u1.OnStore(16, 0, 3, false)
	want := u0.TH().Combine(u1.TH())
	if got := CombineTH(u0, u1); got != want {
		t.Errorf("CombineTH = %s, want %s", got, want)
	}
}

// TestStatsCounting pins the activity counters the cost model reads.
func TestStatsCounting(t *testing.T) {
	u := New(nil, fpround.Default)
	u.StartFPRounding()
	u.OnStore(8, 0, 1, false)
	u.OnStore(16, 0, math.Float64bits(1.5), true)
	u.MinusHash(8, 1, false)
	u.PlusHash(8, 0, false)
	_ = u.SaveHash()
	u.RestoreHash(ihash.Zero)
	s := u.Stats()
	want := Stats{HashedStores: 2, RoundedStores: 1, MinusOps: 1, PlusOps: 1, Saves: 1, Restores: 1}
	if s != want {
		t.Errorf("stats = %+v, want %+v", s, want)
	}
	var agg Stats
	agg.Add(s)
	agg.Add(s)
	if agg.HashedStores != 4 || agg.Restores != 2 {
		t.Errorf("Add: %+v", agg)
	}
}

// TestNegativeDispatchClamped checks hostile dispatch values cannot index
// out of range.
func TestNegativeDispatchClamped(t *testing.T) {
	u := NewClustered(nil, fpround.None, 3, func(i int) int { return -i - 1 })
	u.OnStore(8, 0, 1, false) // must not panic
	basic := New(nil, fpround.None)
	basic.OnStore(8, 0, 1, false)
	if u.TH() != basic.TH() {
		t.Error("dispatch clamping changed TH")
	}
}
