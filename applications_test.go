package instantcheck

import (
	"testing"
)

// TestRaceFilterVolrend runs the §6.1 pipeline end to end on the real
// volrend kernel: its hand-coded sense-reversing barrier contains a true
// data race (waiters spin on the sense word without the lock), yet every
// schedule converges — the paper's example of a benign race that
// InstantCheck's state comparison filters out.
func TestRaceFilterVolrend(t *testing.T) {
	app := WorkloadByName("volrend")
	build := app.Builder(WorkloadOptions{Threads: 4, Small: true})
	cl, err := ClassifyRaces(build, RaceConfig{Threads: 4, Runs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Verdicts) == 0 {
		t.Fatal("volrend's hand-coded barrier race was not detected")
	}
	if !cl.Deterministic {
		t.Fatal("volrend should be externally deterministic")
	}
	sawSense := false
	for _, v := range cl.Verdicts {
		if !v.Benign {
			t.Errorf("volrend race misclassified harmful: %+v", v.Race)
		}
		if v.Race.Site == "static:vr.hc.sense" {
			sawSense = true
		}
	}
	if !sawSense {
		t.Error("the racy sense word was not among the detected races")
	}
}

// TestRaceFilterCanneal checks the other direction on a real kernel:
// canneal's racy cost reads steer persistent placement state, so its races
// are harmful and the program nondeterministic.
func TestRaceFilterCanneal(t *testing.T) {
	app := WorkloadByName("canneal")
	build := app.Builder(WorkloadOptions{Threads: 4, Small: true})
	cl, err := ClassifyRaces(build, RaceConfig{Threads: 4, Runs: 8, InputSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Deterministic {
		t.Fatal("canneal classified deterministic")
	}
	harmful := 0
	for _, v := range cl.Verdicts {
		if !v.Benign {
			harmful++
		}
	}
	if harmful == 0 {
		t.Error("no harmful race found in canneal")
	}
}

// TestRaceDetectorCleanApps checks the happens-before detector reports no
// races for properly synchronized kernels (fft's barrier phases, ocean's
// locked reduction).
func TestRaceDetectorCleanApps(t *testing.T) {
	for _, name := range []string{"fft", "ocean"} {
		app := WorkloadByName(name)
		build := app.Builder(WorkloadOptions{Threads: 4, Small: true})
		races, err := DetectRaces(build, RaceConfig{Threads: 4, Runs: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(races) != 0 {
			t.Errorf("%s: false positives: %+v", name, races[:min(3, len(races))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestSystematicFigure1 runs the §6.2 exploration on the paper's Figure 1
// program shape via the quickstart pattern: pruning must shrink the tree
// without changing the verdict.
func TestSystematicFigure1(t *testing.T) {
	app := WorkloadByName("radix") // real kernel, deterministic, has barriers
	build := app.Builder(WorkloadOptions{Threads: 2, Small: true})
	opts := SystematicOptions{Threads: 2, MaxRuns: 40, MaxDecisions: 10}
	full, err := Systematic(build, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Prune = true
	pruned, err := Systematic(build, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !pruned.Deterministic() {
		t.Error("pruned exploration verdict changed")
	}
	if pruned.Runs > full.Runs {
		t.Errorf("pruning increased work: %d > %d", pruned.Runs, full.Runs)
	}
}

// TestReplayAssistOnWorkload runs the §6.3 flow on the waterSP kernel with
// the atomicity bug seeded (a genuinely nondeterministic execution): the
// recorded hash log validates its own seed and rejects diverging ones
// early.
func TestReplayAssistOnWorkload(t *testing.T) {
	app := WorkloadByName("waterSP")
	build := app.Builder(WorkloadOptions{Threads: 4, Small: true, Bug: BugAtomicity})
	log, err := RecordReplayLog(build, ReplayConfig{Threads: 4, RoundFP: true}, 77)
	if err != nil {
		t.Fatal(err)
	}
	at, err := log.TrySeed(build, 77)
	if err != nil {
		t.Fatal(err)
	}
	if !at.Match {
		t.Fatal("original seed did not replay its own log")
	}
	res, err := log.Search(build, 2000, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Whether a match exists in 40 candidates is schedule luck; what must
	// hold is early cutoff on the diverging ones.
	for _, a := range res.Attempts {
		if !a.Match && a.Checkpoints >= len(log.Hashes) {
			t.Errorf("diverging candidate %d ran the full log", a.Seed)
		}
	}
}
