package core

import (
	"reflect"
	"strings"
	"testing"

	"instantcheck/internal/replay"
	"instantcheck/internal/sim"
)

// TestCampaignValidation checks withDefaults' input validation: negative
// run and thread counts are rejected (zero still selects the paper
// defaults), and Parallelism is clamped to at least 1.
func TestCampaignValidation(t *testing.T) {
	if _, err := (Campaign{Runs: -1}).Check(detBuilder()); err == nil || !strings.Contains(err.Error(), "Runs") {
		t.Errorf("negative Runs not rejected: %v", err)
	}
	if _, err := (Campaign{Threads: -2}).withDefaults(); err == nil || !strings.Contains(err.Error(), "Threads") {
		t.Errorf("negative Threads not rejected: %v", err)
	}
	c, err := Campaign{Parallelism: -5}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if c.Parallelism != 1 {
		t.Errorf("Parallelism = %d; want clamped to 1", c.Parallelism)
	}
	if c.Runs != 30 || c.Threads != 8 {
		t.Errorf("paper defaults not applied: %d runs, %d threads", c.Runs, c.Threads)
	}
	if _, err := (Campaign{Runs: -1}).NewRunner(detBuilder()); err == nil {
		t.Error("NewRunner accepted negative Runs")
	}
}

// normalizeCampaign erases the fields that legitimately differ between the
// sequential and parallel configurations of the same campaign.
func normalizeCampaign(r *Report) {
	r.Campaign.Parallelism = 1
}

// TestParallelEqualsSequential is the order-independence invariant at run
// granularity: a campaign executed with a pool of concurrent replay
// workers produces a byte-identical report to the sequential loop, for
// both a deterministic and a nondeterministic program.
func TestParallelEqualsSequential(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() Builder
	}{{"det", detBuilder}, {"racy", racyBuilder}} {
		t.Run(tc.name, func(t *testing.T) {
			camp := testCampaign()
			seq, err := camp.Check(tc.build())
			if err != nil {
				t.Fatal(err)
			}
			camp.Parallelism = 8
			par, err := camp.Check(tc.build())
			if err != nil {
				t.Fatal(err)
			}
			normalizeCampaign(seq)
			normalizeCampaign(par)
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("parallel report differs from sequential:\nseq: %+v\npar: %+v", seq, par)
			}
		})
	}
}

// TestRunnerProtocol checks the Record-before-Replay discipline and the
// index bounds.
func TestRunnerProtocol(t *testing.T) {
	r, err := testCampaign().NewRunner(detBuilder())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Replay(1); err == nil {
		t.Error("Replay before Record accepted")
	}
	if _, err := r.Record(); err != nil {
		t.Fatal(err)
	}
	if r.Name() != "toy" {
		t.Errorf("name = %q", r.Name())
	}
	if _, err := r.Record(); err == nil {
		t.Error("second Record accepted")
	}
	for _, run := range []int{0, -1, r.Campaign().Runs} {
		if _, err := r.Replay(run); err == nil {
			t.Errorf("out-of-range replay index %d accepted", run)
		}
	}
}

// TestReplayRunnerFromShippedState is the worker-node invariant: a runner
// reconstructed from the recording run's serialized replay state — the
// bytes a fleet coordinator ships — replays every run bit-identically to
// the runner that recorded, for both a deterministic and a racy program.
func TestReplayRunnerFromShippedState(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func() Builder
	}{{"det", detBuilder}, {"racy", racyBuilder}} {
		t.Run(tc.name, func(t *testing.T) {
			camp := testCampaign()
			rec, err := camp.NewRunner(tc.build())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rec.ReplayState(); err == nil {
				t.Error("ReplayState before Record accepted")
			}
			if _, err := rec.Record(); err != nil {
				t.Fatal(err)
			}
			st, err := rec.ReplayState()
			if err != nil {
				t.Fatal(err)
			}

			// Serialize and reconstruct, as a worker on another host would.
			ab, err := st.Addr.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			eb, err := st.Env.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			addr, err := replay.UnmarshalAddrLog(ab)
			if err != nil {
				t.Fatal(err)
			}
			env, err := replay.UnmarshalEnv(eb)
			if err != nil {
				t.Fatal(err)
			}
			worker, err := camp.NewReplayRunner(tc.build(), ReplayState{Program: st.Program, Addr: addr, Env: env})
			if err != nil {
				t.Fatal(err)
			}
			if worker.Name() != rec.Name() {
				t.Errorf("worker program %q, recorder %q", worker.Name(), rec.Name())
			}
			if _, err := worker.Record(); err == nil {
				t.Error("Record on a replay runner accepted")
			}
			for run := 1; run < camp.Runs; run++ {
				want, err := rec.Replay(run)
				if err != nil {
					t.Fatal(err)
				}
				got, err := worker.Replay(run)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want.SHVector(), got.SHVector()) {
					t.Fatalf("run %d: shipped-state replay diverged:\nrecorder %v\nworker   %v",
						run+1, want.SHVector(), got.SHVector())
				}
				if want.OutputHash != got.OutputHash {
					t.Fatalf("run %d: output hash diverged", run+1)
				}
			}
		})
	}
}

// TestNewReplayRunnerValidation rejects states that cannot replay.
func TestNewReplayRunnerValidation(t *testing.T) {
	camp := testCampaign()
	if _, err := camp.NewReplayRunner(detBuilder(), ReplayState{}); err == nil {
		t.Error("empty replay state accepted")
	}
	if _, err := (Campaign{Runs: -1}).NewReplayRunner(detBuilder(), ReplayState{
		Addr: replay.NewAddrLog(), Env: replay.NewEnv(0),
	}); err == nil {
		t.Error("invalid campaign accepted")
	}
}

// TestAssemble checks the merge stage: results gathered through the runner
// fold into the same report Check produces, and malformed inputs are
// rejected.
func TestAssemble(t *testing.T) {
	camp := testCampaign()
	want, err := camp.Check(detBuilder())
	if err != nil {
		t.Fatal(err)
	}
	r, err := camp.NewRunner(detBuilder())
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*sim.Result, camp.Runs)
	if results[0], err = r.Record(); err != nil {
		t.Fatal(err)
	}
	// Fold replay results in reverse order: assembly must not care.
	for run := camp.Runs - 1; run >= 1; run-- {
		if results[run], err = r.Replay(run); err != nil {
			t.Fatal(err)
		}
	}
	got, err := camp.Assemble(r.Name(), results)
	if err != nil {
		t.Fatal(err)
	}
	normalizeCampaign(want)
	normalizeCampaign(got)
	if !reflect.DeepEqual(want, got) {
		t.Error("assembled report differs from Check's")
	}
	if _, err := camp.Assemble("toy", results[:1]); err == nil {
		t.Error("short result slice accepted")
	}
	results[3] = nil
	if _, err := camp.Assemble("toy", results); err == nil {
		t.Error("nil result accepted")
	}
}
