package dreplay

import (
	"testing"

	"instantcheck/internal/mem"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

// racyRounds is internally nondeterministic: each round both threads race
// to a shared word (last writer wins), then meet at a barrier. Different
// schedule seeds reach different states, so replay genuinely has to search.
type racyRounds struct {
	nt, rounds int
	g          uint64
	bar        *sched.Barrier
}

func (p *racyRounds) Name() string { return "racyRounds" }
func (p *racyRounds) Threads() int { return p.nt }
func (p *racyRounds) Setup(t *sim.Thread) {
	p.g = t.AllocStatic("static:G", p.rounds, mem.KindWord)
	p.bar = t.Machine().NewBarrier("round")
}
func (p *racyRounds) Worker(t *sim.Thread) {
	for r := 0; r < p.rounds; r++ {
		t.Store(p.g+uint64(r)*8, uint64(t.TID())+1)
		t.BarrierWait(p.bar)
	}
}

func build() sim.Program { return &racyRounds{nt: 2, rounds: 6} }

func cfg() Config { return Config{Threads: 2, SwitchInterval: 1} }

// TestRecordedSeedReplays checks the trivial ground truth: re-running the
// original seed matches the whole log.
func TestRecordedSeedReplays(t *testing.T) {
	log, err := Record(build, cfg(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Hashes) != 7 { // 6 barriers + end
		t.Fatalf("log has %d checkpoints", len(log.Hashes))
	}
	at, err := log.TrySeed(build, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !at.Match || at.DivergedAt != -1 {
		t.Fatalf("original seed did not replay: %+v", at)
	}
}

// TestSearchFindsFullStateReplay checks the §6.3 flow: search candidate
// schedules against the hash log until one reproduces every checkpoint
// state, and verify the claim by comparing the found run's full final
// state with the original's.
func TestSearchFindsFullStateReplay(t *testing.T) {
	const origSeed = 7
	log, err := Record(build, cfg(), origSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Search a seed range that does NOT include the original seed: the
	// match must come from an equivalent schedule, not the recorded one.
	res, err := log.Search(build, 1000, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("no full-state replay in %d candidates", len(res.Attempts))
	}
	if res.Seed == origSeed {
		t.Fatal("search range should exclude the original seed")
	}
	// Validate with full snapshots: the found schedule must reproduce the
	// exact final memory state, which is the whole point of hash-guided
	// replay (inspect ALL variables as they were).
	orig := finalSnapshot(t, origSeed, log)
	found := finalSnapshot(t, res.Seed, log)
	for i, addr := range orig.Addrs {
		if got, _ := found.Word(addr); got != orig.Vals[i] {
			t.Fatalf("replayed state differs at %#x: %d vs %d", addr, orig.Vals[i], got)
		}
	}
}

func finalSnapshot(t *testing.T, seed int64, log *Log) *mem.Snapshot {
	t.Helper()
	m := sim.NewMachine(sim.Config{
		Threads:        log.cfg.Threads,
		ScheduleSeed:   seed,
		SwitchInterval: log.cfg.SwitchInterval,
		Scheme:         sim.HWInc,
		Env:            log.env,
		AddrLog:        log.addrLog,
		SnapshotAt:     map[int]bool{len(log.Hashes) - 1: true},
	})
	res, err := m.Run(build())
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Checkpoints[len(res.Checkpoints)-1].Snapshot
	if snap == nil {
		t.Fatal("no snapshot")
	}
	return snap
}

// TestEarlyCutoffSavesWork checks the paper's second claim: diverging
// candidates are detected at their first bad checkpoint, so the search
// executes far fewer checkpoints than candidates × log length.
func TestEarlyCutoffSavesWork(t *testing.T) {
	log, err := Record(build, cfg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := log.Search(build, 500, 200)
	if err != nil {
		t.Fatal(err)
	}
	diverged := 0
	earlyCut := 0
	for _, at := range res.Attempts {
		if at.Match {
			continue
		}
		diverged++
		if at.Checkpoints < len(log.Hashes) {
			earlyCut++
		}
		if at.DivergedAt < 0 {
			t.Errorf("non-matching attempt without divergence point: %+v", at)
		}
	}
	if diverged == 0 {
		t.Skip("every candidate matched; race did not vary in this range")
	}
	if earlyCut == 0 {
		t.Error("no diverging candidate was cut early")
	}
	worstCase := len(res.Attempts) * len(log.Hashes)
	if res.CheckpointsExecuted >= worstCase {
		t.Errorf("early cutoff saved nothing: %d vs worst case %d", res.CheckpointsExecuted, worstCase)
	}
	t.Logf("%d candidates, %d/%d checkpoints executed (worst case)",
		len(res.Attempts), res.CheckpointsExecuted, worstCase)
}

// TestSearchBudget checks exhaustion reporting.
func TestSearchBudget(t *testing.T) {
	// A 4-thread, highly racy program: a tiny budget will fail to match.
	b := func() sim.Program { return &racyRounds{nt: 4, rounds: 8} }
	log, err := Record(b, Config{Threads: 4, SwitchInterval: 1}, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := log.Search(b, 100000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attempts) != 3 {
		t.Errorf("%d attempts", len(res.Attempts))
	}
	if res.Found {
		t.Skip("improbable instant match; not an error")
	}
}
