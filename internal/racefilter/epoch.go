package racefilter

// The epoch detector: FastTrack-style happens-before race detection with
// O(1) same-epoch fast paths over the shadow-page directory.
//
// A thread's epoch is its own vector-clock component paired with its slot,
// packed into one uint64. Per address, the shadow word keeps the packed
// epoch (and source pc) of the last write plus a small read set of packed
// epochs — one entry per reader slot, exactly the information the
// vector-clock reference keeps in its per-address maps, but flat. The
// expensive representation (full vector clocks) survives only where HB
// joins actually happen: thread clocks, lock release clocks, and barrier
// episodes.
//
// Fast paths (no stack unwind, no map access, no allocation):
//
//   - a read whose slot already has a read entry at the current epoch is a
//     repeat of an access already processed — every race predicate it
//     could trigger is monotonically false once checked (vector clocks
//     only grow), and report dedup is first-wins, so skipping is
//     behavior-preserving;
//   - a write whose shadow write epoch equals the current epoch *and*
//     whose read set is empty is likewise a no-op repeat. The reads-empty
//     condition is essential: an interleaved cross-thread read must be
//     checked (and cleared) by the next write, or a read-write race would
//     be missed.
//
// Everything else — the first access of an epoch, and any access that can
// actually race — takes the slow path, which pulls the source pc from the
// reporting thread (sim.Thread.PC) for attribution. The pc recorded for
// an epoch is the first access of that (thread, epoch); repeat accesses
// in the same epoch are skipped before any unwind. Keeping attribution at
// epoch granularity matters: an entry that survived a synchronization
// boundary with a stale pc could attribute a race to a lock-protected
// access from before the sync, which the static cross-check would
// correctly reject.

import (
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

const (
	epochSlotShift = 56
	epochClockMask = (uint64(1) << epochSlotShift) - 1
	// maxThreads bounds the worker count so a slot always fits the packed
	// epoch's high byte (slots are 0..nt, with nt the init slot).
	maxThreads = 254
)

func packEpoch(slot int, clock uint64) uint64 {
	return uint64(slot)<<epochSlotShift | clock
}

func epochSlot(e uint64) int { return int(e >> epochSlotShift) }

func epochClock(e uint64) uint64 { return e & epochClockMask }

// pcer supplies the source pc of the access being processed. sim.Thread
// implements it with a lazy stack unwind; the differential fuzzer feeds
// synthetic pcs through it.
type pcer interface{ PC() uintptr }

// Detector is the epoch-based happens-before race detector implementing
// sim.EventListener — the detection-run engine §6.1's benign-race
// filtering piggybacks on. Attach it via sim.Config.Events.
type Detector struct {
	nt int
	// vc[s] is slot s's vector clock; epochs[s] caches packEpoch(s,
	// vc[s][s]) so the access fast paths compare one uint64.
	vc      [][]uint64
	epochs  []uint64
	locks   map[*sched.Mutex][]uint64
	shadow  shadowDir
	races   raceSet
	started bool
	stats   DetectorStats
}

// DetectorStats counts the epoch detector's fast/slow path traffic; the
// detector benchmarks assert the fast paths dominate.
type DetectorStats struct {
	// ReadFast / WriteFast count same-epoch accesses short-circuited
	// without unwinding; ReadSlow / WriteSlow count first-of-epoch or
	// potentially racing accesses that ran the full HB checks.
	ReadFast, ReadSlow   uint64
	WriteFast, WriteSlow uint64
	// ReadSpills counts shadow words whose read set outgrew the inline
	// entries and inflated to a map.
	ReadSpills uint64
	// ShadowPages is the number of shadow pages allocated.
	ShadowPages uint64
}

// NewDetector returns an epoch detector for nt worker threads (plus the
// init thread).
func NewDetector(nt int) *Detector {
	if nt > maxThreads {
		panic("racefilter: epoch detector supports at most 254 worker threads")
	}
	d := &Detector{
		nt:    nt,
		locks: make(map[*sched.Mutex][]uint64),
		races: newRaceSet(),
	}
	d.vc = make([][]uint64, nt+1)
	d.epochs = make([]uint64, nt+1)
	for i := range d.vc {
		d.vc[i] = make([]uint64, nt+1)
		d.vc[i][i] = 1
		d.epochs[i] = packEpoch(i, 1)
	}
	return d
}

// slot maps a thread id (init = -1) to its vector-clock index.
func (d *Detector) slot(tid int) int {
	if tid < 0 {
		return d.nt
	}
	return tid
}

// begin applies the program-start edge: Setup happens-before every worker.
func (d *Detector) begin(tid int) {
	if d.started || tid < 0 {
		return
	}
	d.started = true
	init := d.vc[d.nt]
	for t := 0; t < d.nt; t++ {
		join(d.vc[t], init)
		d.epochs[t] = packEpoch(t, d.vc[t][t])
	}
}

// OnRead implements sim.EventListener.
func (d *Detector) OnRead(t *sim.Thread, addr uint64) { d.read(t.TID(), addr, t) }

// OnWrite implements sim.EventListener.
func (d *Detector) OnWrite(t *sim.Thread, addr uint64) { d.write(t.TID(), addr, t) }

func (d *Detector) read(tid int, addr uint64, pc pcer) {
	d.begin(tid)
	s := d.slot(tid)
	e := d.epochs[s]
	w := d.shadow.word(addr)
	if w.reads[0].epoch == e || w.reads[1].epoch == e {
		d.stats.ReadFast++
		return
	}
	if w.spill != nil {
		if re, ok := w.spill[s]; ok && re.epoch == e {
			d.stats.ReadFast++
			return
		}
	}
	d.readSlow(s, addr, w, e, pc)
}

func (d *Detector) readSlow(s int, addr uint64, w *shadowWord, e uint64, pc pcer) {
	d.stats.ReadSlow++
	p := pc.PC()
	if w.write != 0 {
		if ws := epochSlot(w.write); ws != s && epochClock(w.write) > d.vc[s][ws] {
			d.races.report(addr, WriteRead, ws, s, w.writePC, p)
		}
	}
	ne := readEntry{epoch: e, pc: p}
	if w.spill != nil {
		w.spill[s] = ne
		return
	}
	for i := range w.reads {
		if w.reads[i].epoch != 0 && epochSlot(w.reads[i].epoch) == s {
			w.reads[i] = ne
			return
		}
	}
	for i := range w.reads {
		if w.reads[i].epoch == 0 {
			w.reads[i] = ne
			return
		}
	}
	// A third concurrent reader: inflate this word's read set to a map.
	d.stats.ReadSpills++
	w.spill = make(map[int]readEntry, 4)
	w.spill[epochSlot(w.reads[0].epoch)] = w.reads[0]
	w.spill[epochSlot(w.reads[1].epoch)] = w.reads[1]
	w.spill[s] = ne
	w.reads[0], w.reads[1] = readEntry{}, readEntry{}
}

func (d *Detector) write(tid int, addr uint64, pc pcer) {
	d.begin(tid)
	s := d.slot(tid)
	e := d.epochs[s]
	w := d.shadow.word(addr)
	if w.write == e && w.reads[0].epoch == 0 && w.reads[1].epoch == 0 && w.spill == nil {
		d.stats.WriteFast++
		return
	}
	d.writeSlow(s, addr, w, e, pc)
}

func (d *Detector) writeSlow(s int, addr uint64, w *shadowWord, e uint64, pc pcer) {
	d.stats.WriteSlow++
	p := pc.PC()
	if w.write != 0 {
		if ws := epochSlot(w.write); ws != s && epochClock(w.write) > d.vc[s][ws] {
			d.races.report(addr, WriteWrite, ws, s, w.writePC, p)
		}
	}
	// Read-write races, readers visited in ascending slot order (the
	// canonical report order both detector implementations share).
	if w.spill != nil {
		for rt := 0; rt <= d.nt; rt++ {
			if re, ok := w.spill[rt]; ok && rt != s && epochClock(re.epoch) > d.vc[s][rt] {
				d.races.report(addr, ReadWrite, rt, s, re.pc, p)
			}
		}
	} else {
		e0, e1 := w.reads[0], w.reads[1]
		if e0.epoch != 0 && e1.epoch != 0 && epochSlot(e0.epoch) > epochSlot(e1.epoch) {
			e0, e1 = e1, e0
		}
		for _, re := range [2]readEntry{e0, e1} {
			if re.epoch == 0 {
				continue
			}
			if rt := epochSlot(re.epoch); rt != s && epochClock(re.epoch) > d.vc[s][rt] {
				d.races.report(addr, ReadWrite, rt, s, re.pc, p)
			}
		}
	}
	if w.write != e {
		w.write = e
		w.writePC = p
	}
	w.reads[0], w.reads[1] = readEntry{}, readEntry{}
	w.spill = nil
}

// OnAcquire implements sim.EventListener: acquiring a lock joins the
// lock's release clock into the thread.
func (d *Detector) OnAcquire(tid int, mu *sched.Mutex) {
	d.begin(tid)
	s := d.slot(tid)
	if lv := d.locks[mu]; lv != nil {
		join(d.vc[s], lv)
		d.epochs[s] = packEpoch(s, d.vc[s][s])
	}
}

// OnRelease implements sim.EventListener: releasing publishes the thread's
// clock on the lock and advances the thread's epoch.
func (d *Detector) OnRelease(tid int, mu *sched.Mutex) {
	d.begin(tid)
	s := d.slot(tid)
	lv := d.locks[mu]
	if lv == nil {
		lv = make([]uint64, d.nt+1)
		d.locks[mu] = lv
	}
	copy(lv, d.vc[s])
	d.vc[s][s]++
	d.epochs[s] = packEpoch(s, d.vc[s][s])
}

// OnBarrier implements sim.EventListener: a barrier episode totally orders
// all threads — everyone joins everyone and advances.
func (d *Detector) OnBarrier(ordinal int) {
	var all []uint64
	for t := 0; t < d.nt; t++ {
		if all == nil {
			all = append([]uint64(nil), d.vc[t]...)
		} else {
			join(all, d.vc[t])
		}
	}
	for t := 0; t < d.nt; t++ {
		join(d.vc[t], all)
		d.vc[t][t]++
		d.epochs[t] = packEpoch(t, d.vc[t][t])
	}
}

// Races returns the detected races sorted by address then kind.
func (d *Detector) Races() []Race { return d.races.sorted() }

// Stats returns the fast/slow path counters accumulated so far.
func (d *Detector) Stats() DetectorStats {
	st := d.stats
	st.ShadowPages = d.shadow.pages
	return st
}
