package apps

import (
	"testing"

	"instantcheck/internal/core"
	"instantcheck/internal/statediff"
)

// TestStreamclusterBug reproduces the paper's §7.2.1 finding: the shipped
// streamcluster carries a non-benign order violation that InstantCheck
// detects at interior barriers but that is masked away by the end of the
// run — so checking only at program end would miss it.
func TestStreamclusterBug(t *testing.T) {
	app := ByName("streamcluster")
	rep, err := testCampaign().Check(app.Builder(testOptions()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.NDetPoints == 0 {
		t.Fatal("buggy streamcluster reported fully deterministic; the order violation did not manifest")
	}
	if !rep.DetAtEnd {
		t.Error("the bug should be masked at program end for this input (as the paper reports for simmedium)")
	}
	// Only speedy barriers (and the first pgain barrier after them, which
	// still sees the tainted scratch) may be nondeterministic.
	for _, s := range rep.Stats {
		if !s.Deterministic && s.Label != "sc.speedy" && s.Label != "sc.pgain" {
			t.Errorf("unexpected nondeterministic checkpoint %d (%s)", s.Ordinal, s.Label)
		}
	}
	if rep.FirstNDetRun == 0 || rep.FirstNDetRun > 5 {
		t.Errorf("FirstNDetRun = %d, want small (the paper detects in run 2-3)", rep.FirstNDetRun)
	}
}

// TestStreamclusterFixed checks the author's fix removes all
// nondeterminism.
func TestStreamclusterFixed(t *testing.T) {
	app := ByName("streamcluster")
	opts := testOptions()
	opts.FixBug = true
	rep, err := testCampaign().Check(app.Builder(opts))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deterministic() {
		t.Errorf("fixed streamcluster still nondeterministic at %d points", rep.NDetPoints)
	}
}

// TestSeededBugsDetected reruns Table 2 at test scale: each Figure 7 bug,
// seeded only in thread 3, turns its formerly deterministic host
// nondeterministic, and InstantCheck detects it within a few runs.
func TestSeededBugsDetected(t *testing.T) {
	cases := []struct {
		app string
		bug BugKind
	}{
		{"waterNS", BugSemantic},
		{"waterSP", BugAtomicity},
		{"radix", BugOrder},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.app, func(t *testing.T) {
			t.Parallel()
			app := ByName(tc.app)
			if app.HostsBug != tc.bug {
				t.Fatalf("%s hosts %v, not %v", tc.app, app.HostsBug, tc.bug)
			}
			camp := testCampaign()
			camp.RoundFP = app.UsesFP
			camp.Runs = 12 // bug manifestation may need a few more seeds

			clean, err := camp.Check(app.Builder(testOptions()))
			if err != nil {
				t.Fatal(err)
			}
			if !clean.Deterministic() {
				t.Fatalf("host %s is not deterministic without the bug (%d ndet points)", tc.app, clean.NDetPoints)
			}

			opts := testOptions()
			opts.Bug = tc.bug
			buggy, err := camp.Check(app.Builder(opts))
			if err != nil {
				t.Fatal(err)
			}
			if buggy.NDetPoints == 0 {
				t.Errorf("seeded %v in %s was not detected", tc.bug, tc.app)
			}
			if buggy.DetPoints == 0 {
				t.Errorf("seeded %v in %s made every point nondeterministic; expected localization between checkpoints", tc.bug, tc.app)
			}
		})
	}
}

// TestBugLocalization exercises the §2.3 debugging flow end to end on the
// radix order violation: detect nondeterminism, re-execute the two
// differing runs with snapshots, and map the differing words back to
// allocation sites.
func TestBugLocalization(t *testing.T) {
	app := ByName("radix")
	opts := testOptions()
	opts.Bug = BugOrder
	camp := testCampaign()
	camp.Runs = 12
	camp.SnapshotDifferingRuns = true
	rep, err := camp.Check(app.Builder(opts))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FirstNDetRun == 0 {
		t.Fatal("bug not detected")
	}
	d := rep.DiffSnapshots
	if d == nil {
		t.Fatal("no diff capture despite nondeterminism")
	}
	diffs := statediff.Diff(d.A, d.B)
	if len(diffs) == 0 {
		t.Fatal("snapshots at the first differing checkpoint are identical")
	}
	// Every differing word must be attributed to a real allocation site of
	// the radix kernel.
	for _, diff := range diffs {
		if diff.Site == "?" {
			t.Errorf("unattributed differing word at %#x", diff.Addr)
		}
	}
	sum := statediff.Summarize(diffs)
	if len(sum) == 0 {
		t.Fatal("no per-site summary")
	}
	// The corrupted state lives in the key arrays / checksum, all static
	// radix sites.
	for _, s := range sum {
		if s.Words <= 0 {
			t.Errorf("empty summary group %q", s.Site)
		}
	}
}

// TestCholeskyCustomAllocator checks the paper's allocator observation:
// with the raw custom allocator, cholesky stays nondeterministic even
// after rounding and structure isolation; routing the allocator through
// malloc (the paper's assumption) plus the ignore set makes it
// deterministic.
func TestCholeskyCustomAllocator(t *testing.T) {
	app := ByName("cholesky")
	opts := testOptions()
	opts.RawCustomAlloc = true
	camp := testCampaign()
	camp.RoundFP = true
	camp.Ignore = app.IgnoreSet()
	rep, err := camp.Check(app.Builder(opts))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deterministic() {
		t.Error("raw custom allocator should keep cholesky nondeterministic (ignore set does not cover the pool)")
	}
}

// TestPBZip2Output checks §4.3: the compressed output stream, hashed at
// the write() boundary, is deterministic even though consumers race for
// jobs — and the state is deterministic once dangling result pointers are
// ignored.
func TestPBZip2Output(t *testing.T) {
	app := ByName("pbzip2")
	camp := testCampaign()
	camp.Ignore = app.IgnoreSet()
	rep, err := camp.Check(app.Builder(testOptions()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OutputDistinct != 1 {
		t.Errorf("output stream hashes: %d distinct, want 1 (deterministic output)", rep.OutputDistinct)
	}
	if !rep.Deterministic() {
		t.Errorf("pbzip2 with dangling pointers ignored should be deterministic (%d ndet points)", rep.NDetPoints)
	}
}

// TestPBZip2DanglingPointers checks that WITHOUT the ignore set the
// dangling buffer pointers make pbzip2 nondeterministic — while the rest
// of the state stays clean (the diff localizes to the results table).
func TestPBZip2DanglingPointers(t *testing.T) {
	app := ByName("pbzip2")
	camp := testCampaign()
	camp.SnapshotDifferingRuns = true
	rep, err := camp.Check(app.Builder(testOptions()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deterministic() {
		t.Skip("schedules did not vary allocation order in this configuration")
	}
	d := rep.DiffSnapshots
	if d == nil {
		t.Fatal("no diff capture")
	}
	for _, diff := range statediff.Diff(d.A, d.B) {
		if diff.Site != "static:pb.results" {
			t.Errorf("nondeterminism outside the results table: %s", diff.Format())
		}
		if diff.Offset%pbzip2ResultWords != 1 {
			t.Errorf("nondeterminism in a non-pointer word: %s", diff.Format())
		}
	}
}

// TestVolrendBenignRace checks the paper's volrend observation: the racy
// hand-coded barrier is benign — InstantCheck correctly reports volrend
// bit-by-bit deterministic.
func TestVolrendBenignRace(t *testing.T) {
	app := ByName("volrend")
	rep, err := testCampaign().Check(app.Builder(testOptions()))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deterministic() {
		t.Errorf("volrend should be deterministic despite the benign race (%d ndet points)", rep.NDetPoints)
	}
}

// TestSwaptionsThreadLocalRNG checks the paper's Monte-Carlo observation:
// thread-local generators keep swaptions deterministic.
func TestSwaptionsThreadLocalRNG(t *testing.T) {
	rep, err := testCampaign().Check(ByName("swaptions").Builder(testOptions()))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Deterministic() {
		t.Errorf("swaptions should be bit-by-bit deterministic (%d ndet points)", rep.NDetPoints)
	}
}

// TestFirstNDetRunFast checks §7.2.2: for nondeterministic apps the first
// differing run comes fast (the paper sees run 2 or 3).
func TestFirstNDetRunFast(t *testing.T) {
	for _, name := range []string{"barnes", "canneal", "radiosity"} {
		app := ByName(name)
		rep, err := testCampaign().Check(app.Builder(testOptions()))
		if err != nil {
			t.Fatal(err)
		}
		if rep.FirstNDetRun == 0 {
			t.Errorf("%s: nondeterminism not detected at all", name)
		} else if rep.FirstNDetRun > 4 {
			t.Errorf("%s: FirstNDetRun = %d, want <= 4", name, rep.FirstNDetRun)
		}
	}
}

// TestCharacterizationReports sanity-checks the per-campaign reports of a
// Characterization.
func TestCharacterizationReports(t *testing.T) {
	app := ByName("ocean")
	ch, err := testCampaign().Characterize(app.Builder(testOptions()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Class != core.ClassFPDeterministic {
		t.Fatalf("ocean class = %v", ch.Class)
	}
	if ch.BitByBit.Deterministic() {
		t.Error("ocean bit-by-bit campaign should see the racy-order residual")
	}
	if ch.BitByBit.FirstNDetRun == 0 {
		t.Error("bit-by-bit campaign should record a first nondeterministic run")
	}
	if !ch.AfterRounding.Deterministic() {
		t.Error("rounding should make ocean deterministic")
	}
	if best := ch.Best(); best != ch.AfterRounding {
		t.Error("Best() should pick the rounding campaign for an FP-class app")
	}
}
