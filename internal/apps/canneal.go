package apps

import (
	"instantcheck/internal/core"
	"instantcheck/internal/mem"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

func init() {
	register(&App{
		Name:          "canneal",
		Source:        "parsec",
		UsesFP:        false,
		ExpectedClass: core.ClassNondeterministic,
		Build: func(o Options) sim.Program {
			p := &cannealProg{nt: o.threads(), elements: 128, steps: 63, movesPerStep: 12}
			if o.Small {
				p.elements, p.steps = 48, 6
			}
			return p
		},
	})
}

// cannealProg reproduces PARSEC's canneal: simulated annealing of a chip
// netlist placement. Each temperature step, every thread repeatedly picks
// two elements (using its replayed rand() stream — the random choices are
// program input, identical across runs, §5) and swaps their locations if
// that lowers routing cost. The cost evaluation reads the locations of
// OTHER elements with no synchronization while concurrent threads are
// swapping them, so accept/reject decisions — and the final placement —
// depend on the schedule. This is a truly nondeterministic algorithm; the
// paper classifies canneal NDet with every checking point
// nondeterministic (Table 1: 64 points, 0 det).
type cannealProg struct {
	nt           int
	elements     int
	steps        int
	movesPerStep int

	loc   uint64 // element -> location permutation
	netTo uint64 // each element's wired partner (fixed input)
	locks []*sched.Mutex

	temp barrier
}

func (p *cannealProg) Name() string { return "canneal" }

func (p *cannealProg) Threads() int { return p.nt }

func (p *cannealProg) Setup(t *sim.Thread) {
	n := p.elements
	p.loc = t.AllocStatic("static:ca.loc", n, mem.KindWord)
	p.netTo = t.AllocStatic("static:ca.net", n, mem.KindWord)
	rng := newXorshift(55)
	for i := 0; i < n; i++ {
		t.Store(idx(p.loc, i), uint64(i))
		t.Store(idx(p.netTo, i), rng.next()%uint64(n))
	}
	p.locks = make([]*sched.Mutex, n)
	for i := range p.locks {
		p.locks[i] = t.Machine().NewMutex("ca.el")
	}
	p.temp = newBarrier(t, "ca.temp")
}

// cost is the (toy) wirelength of element e placed at location l, to its
// partner's current location — read WITHOUT synchronization.
func (p *cannealProg) cost(t *sim.Thread, e int, l uint64) int64 {
	partner := int(t.Load(idx(p.netTo, e)))
	pl := t.Load(idx(p.loc, partner)) // racy read: partner may be mid-swap
	d := int64(l) - int64(pl)
	if d < 0 {
		d = -d
	}
	return d
}

func (p *cannealProg) Worker(t *sim.Thread) {
	tid := t.TID()
	n := p.elements
	for step := 0; step < p.steps; step++ {
		for move := 0; move < p.movesPerStep; move++ {
			// Draw all of the move's randomness up front so every thread
			// makes a fixed number of rand() calls per run and the
			// record/replay streams stay aligned across runs.
			a := int(t.Rand() % uint64(n))
			b := int(t.Rand() % uint64(n))
			uphill := int(t.Rand() % uint64(p.steps+3))
			if a == b {
				continue
			}
			// Lock in index order (deadlock-free); the decision below
			// still uses racy reads of third-party elements.
			first, second := a, b
			if first > second {
				first, second = second, first
			}
			t.Lock(p.locks[first])
			t.Lock(p.locks[second])
			la := t.Load(idx(p.loc, a))
			lb := t.Load(idx(p.loc, b))
			before := p.cost(t, a, la) + p.cost(t, b, lb)
			after := p.cost(t, a, lb) + p.cost(t, b, la)
			t.Compute(20)
			// Annealing acceptance: always downhill, uphill with a
			// temperature-shrinking chance drawn from the replayed stream.
			accept := after < before
			if !accept && uphill > step+2 {
				accept = true
			}
			if accept {
				t.Store(idx(p.loc, a), lb)
				t.Store(idx(p.loc, b), la)
			}
			t.Unlock(p.locks[second])
			t.Unlock(p.locks[first])
		}
		p.temp.await(t)
	}
	_ = tid
}
