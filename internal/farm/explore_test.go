package farm

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// exploreSpec is the seeded Figure 7(b) hunt as a farm job: waterSP with
// the atomicity bug, race-directed search, a switch interval long enough
// that uniform schedules essentially never catch the racy window.
func exploreSpec(strategy string) JobSpec {
	return JobSpec{
		App:            "waterSP",
		Kind:           "explore",
		Strategy:       strategy,
		Bug:            "atomicity",
		Runs:           40,
		Threads:        4,
		InputSeed:      1,
		SwitchInterval: 4000,
		RoundFP:        true,
		Small:          true,
	}
}

// TestExploreJobEndToEnd drives an explore job through the HTTP API:
// submit, progress, report with the search outcome, hash log, metrics.
func TestExploreJobEndToEnd(t *testing.T) {
	dir := t.TempDir()
	srv, c := startTestDaemon(t, filepath.Join(dir, "farm.log"), Options{})

	job, err := c.Submit(bg, exploreSpec("race-directed"))
	if err != nil {
		t.Fatal(err)
	}
	job = waitDone(t, c, job.ID)
	if job.State != JobDone || job.Error != "" {
		t.Fatalf("explore job finished as %s: %s", job.State, job.Error)
	}

	rep, err := c.Report(bg, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Explore
	if out == nil {
		t.Fatal("explore job report has no explore outcome")
	}
	if out.Strategy != "race-directed" || out.Budget != 40 {
		t.Errorf("outcome = %+v", out)
	}
	if !out.Found || out.DivergedRun == 0 {
		t.Errorf("race-directed search missed the seeded bug: %+v", out)
	}
	if out.Hits == 0 {
		t.Error("no directed preemptions recorded")
	}
	if rep.Deterministic {
		t.Error("report claims deterministic despite a found divergence")
	}
	if job.RunsDone != out.Runs {
		t.Errorf("progress shows %d runs, outcome says %d", job.RunsDone, out.Runs)
	}

	// Every executed run's hash vector is in the store.
	logText, err := c.HashLog(bg, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	lines, err := ParseHashLog(strings.NewReader(logText))
	if err != nil {
		t.Fatal(err)
	}
	runs := map[int]bool{}
	for _, l := range lines {
		runs[l.Run] = true
	}
	if len(runs) != out.Runs {
		t.Errorf("hash log covers %d runs, outcome executed %d", len(runs), out.Runs)
	}

	// The strategy metric families exported by the daemon moved.
	var sb strings.Builder
	if err := srv.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	exp := sb.String()
	for _, want := range []string{
		`checkfarm_explore_runs_total{strategy="race-directed"}`,
		`checkfarm_explore_divergences_total{strategy="race-directed"}`,
		`checkfarm_explore_distinct_outcomes_total{strategy="race-directed"}`,
		`checkfarm_explore_hint_preemptions_total{strategy="race-directed"}`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
}

// TestExploreJobResume checks the restart path: a finished explore job's
// report is reassembled from the explored record, byte for byte.
func TestExploreJobResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "farm.log")

	spec := exploreSpec("uniform")
	spec.Runs = 4 // uniform won't find the bug; we only need a done job
	var id JobID
	var before *Report
	{
		_, c := startTestDaemon(t, path, Options{})
		job, err := c.Submit(bg, spec)
		if err != nil {
			t.Fatal(err)
		}
		job = waitDone(t, c, job.ID)
		if job.State != JobDone {
			t.Fatalf("job finished as %s: %s", job.State, job.Error)
		}
		id = job.ID
		if before, err = c.Report(bg, job.ID); err != nil {
			t.Fatal(err)
		}
	}

	_, c := startTestDaemon(t, path, Options{})
	after, err := c.Report(bg, id)
	if err != nil {
		t.Fatalf("report after restart: %v", err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Errorf("resumed report differs:\nbefore %+v\nafter  %+v", before, after)
	}
	if after.Explore == nil || after.Explore.Runs != spec.Runs {
		t.Errorf("resumed outcome = %+v", after.Explore)
	}
}

// TestExploreSpecValidation checks the submit-time guards on the new
// fields.
func TestExploreSpecValidation(t *testing.T) {
	bad := []JobSpec{
		{App: "fft", Kind: "explode"},                        // unknown kind
		{App: "fft", Kind: "explore", Strategy: "annealing"}, // unknown strategy
		{App: "fft", Strategy: "pct"},                        // strategy on a check job
		{App: "fft", PCTDepth: 2},                            // pct depth on a check job
		{App: "fft", Bug: "atomicity"},                       // fft hosts no bug
		{App: "waterSP", Kind: "explore", Bug: "order"},      // wrong bug kind
		{App: "waterSP", Kind: "explore", Bug: "heisenbug"},  // unknown bug
	}
	for _, spec := range bad {
		if _, _, err := spec.Resolve(); err == nil {
			t.Errorf("spec %+v resolved", spec)
		}
	}
	good := []JobSpec{
		{App: "fft", Kind: "check"},
		{App: "waterSP", Kind: "explore"},
		{App: "waterSP", Kind: "explore", Strategy: "pct", PCTDepth: 2},
		{App: "waterSP", Bug: "atomicity"}, // seeded bug on a check job
	}
	for _, spec := range good {
		if _, _, err := spec.Resolve(); err != nil {
			t.Errorf("spec %+v rejected: %v", spec, err)
		}
	}
}

// TestCheckSpecWireUnchanged pins the check-job wire format: the new
// fields are omitempty, so specs and reports that do not use them encode
// byte-identically to earlier daemons.
func TestCheckSpecWireUnchanged(t *testing.T) {
	specJSON, err := json.Marshal(JobSpec{App: "fft"})
	if err != nil {
		t.Fatal(err)
	}
	if string(specJSON) != `{"app":"fft"}` {
		t.Errorf("minimal spec encodes as %s", specJSON)
	}
	repJSON, err := json.Marshal(&Report{Program: "fft"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(repJSON), "explore") {
		t.Errorf("check report leaks explore field: %s", repJSON)
	}
}
