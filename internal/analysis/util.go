package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// exprKey renders an expression to its canonical source form, the
// syntactic-identity key the analyzers use to compare address and lock
// expressions ("p.pot" == "p.pot", "idx(p.hist, i)" != "idx(p.hist, j)").
func exprKey(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return ""
	}
	return buf.String()
}

// isThreadType reports whether t (possibly behind a pointer) is the
// simulator's Thread type — sim.Thread, or the root package's alias of it.
func isThreadType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Thread" || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == "sim" || strings.HasSuffix(p, "internal/sim")
}

// simNamed reports whether t is the named sim type with the given name.
func simNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == "sim" || strings.HasSuffix(p, "internal/sim")
}

// threadMethod returns the method name when call is a method call on a
// *sim.Thread value (t.Store, t.Lock, ...).
func threadMethod(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s := pkg.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return "", false
	}
	if !isThreadType(s.Recv()) {
		return "", false
	}
	return sel.Sel.Name, true
}

// isPackageLevel reports whether obj is declared at package scope.
func isPackageLevel(pkg *Package, obj types.Object) bool {
	return obj != nil && obj.Parent() == pkg.Types.Scope()
}

// sharedAddr reports whether an address expression denotes the same
// simulated location on every worker thread. An address is shared when it
// contains no thread-varying parts: no local variable of basic type (loop
// indices, tids, offsets — the way kernels form per-thread/per-element
// addresses) and no call to a Thread method (t.TID() and friends are
// per-thread). "p.pot" is shared; "idx(p.hist, step)" and
// "idx(p.freeHeads, t.TID())" are not.
func sharedAddr(pkg *Package, e ast.Expr) bool {
	shared := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			v, ok := pkg.Info.Uses[n].(*types.Var)
			if !ok || v.IsField() || isPackageLevel(pkg, v) {
				return true
			}
			// A local or parameter: varying if it carries a basic value
			// (index arithmetic); pointers to the program struct and the
			// thread handle itself do not vary the address.
			if _, basic := v.Type().Underlying().(*types.Basic); basic {
				shared = false
				return false
			}
		case *ast.CallExpr:
			if _, ok := threadMethod(pkg, n); ok {
				shared = false
				return false
			}
		}
		return true
	})
	return shared
}

// progFunc is a Setup or Worker entry point of a simulated program.
type progFunc struct {
	decl *ast.FuncDecl
	kind string // "Setup" or "Worker"
}

// progFuncs finds every Setup/Worker method or function in the package: a
// function named Setup or Worker whose only parameter is a *sim.Thread.
func progFuncs(pkg *Package) []progFunc {
	var out []progFunc
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "Setup" && fd.Name.Name != "Worker" {
				continue
			}
			params := fd.Type.Params
			if params == nil || len(params.List) != 1 || len(params.List[0].Names) != 1 {
				continue
			}
			pt := pkg.Info.Types[params.List[0].Type].Type
			if pt == nil || !isThreadType(pt) {
				continue
			}
			out = append(out, progFunc{decl: fd, kind: fd.Name.Name})
		}
	}
	return out
}

// funcBodies yields every function body in the package — declarations and
// function literals — for the flow-sensitive analyzers.
func funcBodies(pkg *Package, visit func(name string, body *ast.BlockStmt)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			visit(fd.Name.Name, fd.Body)
		}
	}
}

// stmtTerminates reports whether s definitely transfers control out of the
// enclosing statement list: return, break/continue/goto, panic, or an
// explicit process exit. It is deliberately syntactic and shallow — the
// analyzers use it to avoid leaking a branch's lock state into code that
// only runs when the branch was not taken.
func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			return fun.Name == "panic"
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			return name == "Exit" || name == "Fatal" || name == "Fatalf" ||
				name == "Fatalln" || name == "Panic" || name == "Panicf"
		}
	case *ast.BlockStmt:
		return len(s.List) > 0 && stmtTerminates(s.List[len(s.List)-1])
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		return stmtTerminates(s.Body) && stmtTerminates(s.Else)
	}
	return false
}
