package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per family
// followed by its sample lines, families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		f.mu.Lock()
		series := append([]*series(nil), f.series...)
		f.mu.Unlock()
		sort.Slice(series, func(i, j int) bool { return series[i].labels < series[j].labels })
		for _, s := range series {
			if s.hist != nil {
				writeHistogram(bw, f.name, s.hist)
				continue
			}
			fmt.Fprintf(bw, "%s%s %s\n", f.name, s.labels, formatValue(s.read()))
		}
	}
	return bw.Flush()
}

// writeHistogram emits the cumulative _bucket series plus _sum and _count.
func writeHistogram(w io.Writer, name string, h *Histogram) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatValue(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatValue(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}

// formatValue renders a sample value: integers without an exponent (the
// common case for counters and gauges, and the readable one), everything
// else in Go's shortest float form, which Prometheus parses.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the registry as a scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// MergedHandler serves several registries as one scrape endpoint, their
// families concatenated in argument order — how a daemon that embeds two
// subsystems (the farm and a fleet coordinator, each with its own registry)
// exposes a single /metrics. Callers should gate startup on LintMerged so a
// family registered on both sides fails loudly instead of producing a
// payload with duplicate TYPE lines.
func MergedHandler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			r.WritePrometheus(w)
		}
	})
}

// LintMerged checks that the registries can merge into one well-formed
// exposition payload: no family name may be registered in more than one of
// them (the per-registry duplicate panic cannot catch cross-registry
// collisions), and the concatenated rendering must pass Lint. It is the
// startup gate for daemons serving MergedHandler.
func LintMerged(regs ...*Registry) error {
	owner := map[string]int{}
	for i, r := range regs {
		r.mu.Lock()
		names := make([]string, 0, len(r.families))
		for name := range r.families {
			names = append(names, name)
		}
		r.mu.Unlock()
		sort.Strings(names)
		for _, name := range names {
			if j, dup := owner[name]; dup {
				return fmt.Errorf("obs: metric %s registered in merged registries %d and %d", name, j, i)
			}
			owner[name] = i
		}
	}
	var sb strings.Builder
	for _, r := range regs {
		if err := r.WritePrometheus(&sb); err != nil {
			return err
		}
	}
	return Lint(strings.NewReader(sb.String()))
}

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the sample name (for histograms, including the _bucket/_sum/
	// _count suffix).
	Name string
	// Labels holds the label pairs, nil when unlabeled.
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// Label returns the value of the named label ("" when absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// ParseExposition reads Prometheus text exposition format into samples,
// skipping comments. It is the reader used by `instantcheck remote stats`
// and by the obs-smoke gate; malformed lines are errors, not skips.
func ParseExposition(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for n := 1; sc.Scan(); n++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: exposition line %d: %w", n, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSample parses `name{k="v",...} value`.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:i]
	if !metricName.MatchString(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return s, fmt.Errorf("malformed value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses the inside of a {...} label set.
func parseLabels(s string) (map[string]string, error) {
	out := make(map[string]string)
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		eq := strings.Index(s, "=")
		if eq <= 0 {
			return nil, fmt.Errorf("malformed label pair in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !labelName.MatchString(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		s = strings.TrimSpace(s[eq+1:])
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s: unquoted value", name)
		}
		value, tail, err := unquoteLabel(s)
		if err != nil {
			return nil, fmt.Errorf("label %s: %v", name, err)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate label %s", name)
		}
		out[name] = value
		s = strings.TrimSpace(tail)
		if s != "" {
			if s[0] != ',' {
				return nil, fmt.Errorf("expected ',' after label %s", name)
			}
			s = s[1:]
		}
	}
	return out, nil
}

// unquoteLabel consumes a quoted label value (exposition escaping: \\, \",
// \n) and returns the value plus the unconsumed tail.
func unquoteLabel(s string) (value, tail string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				// Tolerate Go-style escapes the writer may emit for
				// non-printables; keep them verbatim.
				b.WriteByte('\\')
				b.WriteByte(s[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}

// Lint validates a full exposition payload the way the CI obs-smoke gate
// needs: every sample parses, every sample's family carries a # TYPE line
// that precedes it, no (name, labels) pair repeats, and histogram bucket
// series are cumulative. A non-nil error means the payload is malformed.
func Lint(r io.Reader) error {
	typed := map[string]string{} // family -> TYPE
	seen := map[string]bool{}    // rendered sample identity
	lastBucket := map[string]uint64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for n := 1; sc.Scan(); n++ {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return fmt.Errorf("line %d: malformed TYPE comment %q", n, line)
			}
			name, typ := fields[2], fields[3]
			if !metricName.MatchString(name) {
				return fmt.Errorf("line %d: TYPE for invalid name %q", n, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", n, typ)
			}
			if _, dup := typed[name]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %s", n, name)
			}
			typed[name] = typ
			continue
		case strings.HasPrefix(line, "#"):
			continue // HELP and free comments
		}
		s, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", n, err)
		}
		fam, isBucket := familyOf(s.Name, typed)
		if _, ok := typed[fam]; !ok {
			return fmt.Errorf("line %d: sample %s has no preceding # TYPE", n, s.Name)
		}
		id := sampleID(s)
		if seen[id] {
			return fmt.Errorf("line %d: duplicate sample %s", n, id)
		}
		seen[id] = true
		if isBucket {
			// Buckets of one histogram must be cumulative in file order.
			key := fam + "\x00" + labelsExceptLe(s)
			cum := uint64(s.Value)
			if cum < lastBucket[key] {
				return fmt.Errorf("line %d: non-cumulative histogram bucket %s", n, id)
			}
			lastBucket[key] = cum
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(seen) == 0 {
		return fmt.Errorf("obs: empty exposition payload")
	}
	return nil
}

// familyOf strips histogram suffixes when the base name is a registered
// histogram family; isBucket reports a _bucket series.
func familyOf(name string, typed map[string]string) (string, bool) {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if ok && typed[base] == "histogram" {
			return base, suffix == "_bucket"
		}
	}
	return name, false
}

func sampleID(s Sample) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, s.Labels[k])
	}
	return b.String()
}

func labelsExceptLe(s Sample) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s,", k, s.Labels[k])
	}
	return b.String()
}
