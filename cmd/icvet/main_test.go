package main

import (
	"strings"
	"testing"
)

// TestListAnalyzers checks -list names every analyzer.
func TestListAnalyzers(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("icvet -list: exit %d, stderr %q", code, errb.String())
	}
	for _, name := range []string{"directstate", "atomicity", "storekind", "lockpair", "ignoresite"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestCleanPackage checks a clean tree exits 0 with no output, through
// the /... pattern expansion.
func TestCleanPackage(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"../../examples/..."}, &out, &errb); code != 0 {
		t.Fatalf("icvet ../../examples/...: exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", out.String())
	}
}

// TestSuppressedAndUnsuppressed checks the fixture app is clean by
// default (its deliberate finding carries an //icvet:ignore comment) and
// dirty under -nosuppress.
func TestSuppressedAndUnsuppressed(t *testing.T) {
	dir := "../../internal/analysis/fixtureapp"

	var out, errb strings.Builder
	if code := run([]string{dir}, &out, &errb); code != 0 {
		t.Fatalf("icvet %s: exit %d\nstdout: %s\nstderr: %s", dir, code, out.String(), errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-nosuppress", dir}, &out, &errb); code != 1 {
		t.Fatalf("icvet -nosuppress %s: exit %d, want 1\nstdout: %s", dir, code, out.String())
	}
	if !strings.Contains(out.String(), "[atomicity]") || !strings.Contains(out.String(), "fixtureapp.go") {
		t.Errorf("-nosuppress output does not report the deliberate atomicity finding:\n%s", out.String())
	}
}

// TestUsageErrors checks the exit-2 paths.
func TestUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no arguments: exit %d, want 2", code)
	}
	if code := run([]string{"-run", "nosuch", "."}, &out, &errb); code != 2 {
		t.Errorf("unknown analyzer: exit %d, want 2", code)
	}
	if code := run([]string{"../../does/not/exist"}, &out, &errb); code != 2 {
		t.Errorf("missing directory: exit %d, want 2", code)
	}
}

// TestRunFilter checks -run restricts the analyzer set: the fixture
// app's atomicity finding disappears when only lockpair runs.
func TestRunFilter(t *testing.T) {
	dir := "../../internal/analysis/fixtureapp"
	var out, errb strings.Builder
	if code := run([]string{"-run", "lockpair", "-nosuppress", dir}, &out, &errb); code != 0 {
		t.Fatalf("icvet -run lockpair: exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}
