package sched

import "fmt"

// Mutex is a scheduler-aware lock. Lock blocks the calling thread in the
// scheduler (never spins) when the mutex is held; Unlock wakes the first
// waiter in arrival order. Waking is FIFO so that fairness itself never
// introduces extra nondeterminism beyond the schedule.
type Mutex struct {
	held    bool
	owner   int
	waiters []int
	name    string
	reason  string // "lock <name>", precomputed off the blocking path
}

// NewMutex returns an unlocked mutex. name appears in deadlock diagnostics.
func NewMutex(name string) *Mutex {
	return &Mutex{name: name, owner: -1, reason: "lock " + name}
}

// Lock acquires the mutex on behalf of thread tid, blocking in s if held.
func (m *Mutex) Lock(s *Scheduler, tid int) {
	for m.held {
		m.waiters = append(m.waiters, tid)
		s.Block(tid, m.reason)
		// Re-check on wake: another thread may have slipped in between the
		// unpark and this thread actually being scheduled (barging), which
		// is exactly how pthread mutexes behave.
	}
	m.held = true
	m.owner = tid
}

// Unlock releases the mutex and wakes the oldest waiter, if any.
func (m *Mutex) Unlock(s *Scheduler, tid int) {
	if !m.held || m.owner != tid {
		panic(fmt.Sprintf("sched: thread %d unlocking mutex %q held=%v owner=%d", tid, m.name, m.held, m.owner))
	}
	m.held = false
	m.owner = -1
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		s.Unpark(w)
	}
}

// Barrier is a pthread-style barrier for a fixed party count. The thread
// that completes each episode runs the OnFull callback while every other
// participant is still blocked — i.e. with the shared state quiescent —
// which is exactly where InstantCheck captures a State Hash (paper §2.3).
type Barrier struct {
	parties int
	waiting []int
	episode int
	name    string
	reason  string // "barrier <name>"; the episode is appended lazily
	// OnFull, if non-nil, runs once per episode, just before the waiters
	// are released, on the last-arriving thread. episode numbers from 0.
	OnFull func(episode int, lastTID int)
}

// NewBarrier returns a barrier for the given number of parties.
func NewBarrier(name string, parties int) *Barrier {
	if parties <= 0 {
		panic("sched: barrier party count must be positive")
	}
	return &Barrier{parties: parties, name: name, reason: "barrier " + name}
}

// Episode returns the number of completed barrier episodes.
func (b *Barrier) Episode() int { return b.episode }

// Await blocks tid until all parties have arrived. The last arriver runs
// OnFull, releases the others, and continues.
func (b *Barrier) Await(s *Scheduler, tid int) {
	if len(b.waiting) == b.parties-1 {
		ep := b.episode
		b.episode++
		if b.OnFull != nil {
			b.OnFull(ep, tid)
		}
		for _, w := range b.waiting {
			s.Unpark(w)
		}
		b.waiting = b.waiting[:0]
		// Give the released threads a chance to be chosen immediately.
		s.Preempt(tid)
		return
	}
	b.waiting = append(b.waiting, tid)
	s.BlockEp(tid, b.reason, b.episode)
}

// Cond is a scheduler-aware condition variable associated with a Mutex.
type Cond struct {
	m       *Mutex
	waiters []int
	name    string
	reason  string // "cond <name>", precomputed off the blocking path
}

// NewCond returns a condition variable tied to m.
func NewCond(name string, m *Mutex) *Cond {
	return &Cond{m: m, name: name, reason: "cond " + name}
}

// Mutex returns the mutex the condition variable is tied to.
func (c *Cond) Mutex() *Mutex { return c.m }

// Wait atomically releases the mutex, blocks tid until signalled, then
// reacquires the mutex before returning. As with pthreads, spurious
// interleavings mean callers must re-check their predicate in a loop.
func (c *Cond) Wait(s *Scheduler, tid int) {
	c.waiters = append(c.waiters, tid)
	c.m.Unlock(s, tid)
	s.Block(tid, c.reason)
	c.m.Lock(s, tid)
}

// Signal wakes the oldest waiter, if any. The caller must hold the mutex.
func (c *Cond) Signal(s *Scheduler, tid int) {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	s.Unpark(w)
}

// Broadcast wakes all waiters. The caller must hold the mutex.
func (c *Cond) Broadcast(s *Scheduler, tid int) {
	for _, w := range c.waiters {
		s.Unpark(w)
	}
	c.waiters = c.waiters[:0]
}
