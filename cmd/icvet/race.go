package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"

	"instantcheck/internal/analysis"
)

// runRace implements the "icvet race" subcommand: the interprocedural
// lockset/barrier race analysis over sim.Program packages. Unlike the
// discipline analyzers, its findings are informational — candidate pairs
// for the dynamic cross-check and the explorer, not build breakers — so
// the exit status is 0 even when pairs are reported (2 on load errors).
func runRace(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("icvet race", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the pair list as JSON")
	noSuppress := fs.Bool("nosuppress", false, "include pairs covered by //icvet:ignore race comments")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: icvet race [-json] [-nosuppress] packages...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	dirs, err := analysis.ExpandPatterns(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "icvet race: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(dirs[0])
	if err != nil {
		fmt.Fprintf(stderr, "icvet race: %v\n", err)
		return 2
	}

	var reports []*analysis.RaceReport
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(stderr, "icvet race: %v\n", err)
			return 2
		}
		rep := analysis.RaceCheck(pkg)
		if !*noSuppress {
			rep.Pairs = rep.Active()
		}
		reports = append(reports, rep)
	}

	if *jsonOut {
		return writeRaceJSON(stdout, stderr, reports)
	}
	total := 0
	for _, rep := range reports {
		for _, p := range rep.Pairs {
			total++
			line := p.String()
			if p.Suppressed {
				line += " (suppressed)"
			}
			fmt.Fprintln(stdout, line)
		}
	}
	fmt.Fprintf(stdout, "icvet race: %d candidate pair(s)\n", total)
	return 0
}

// raceJSONSite is the JSON shape of one site of a pair.
type raceJSONSite struct {
	ID      string   `json:"id"`
	File    string   `json:"file"`
	Line    int      `json:"line"`
	Col     int      `json:"col"`
	Kind    string   `json:"kind"`
	Lockset []string `json:"lockset,omitempty"`
	Guard   string   `json:"guard,omitempty"`
}

// raceJSONPair is the JSON shape of one candidate pair.
type raceJSONPair struct {
	Program    string       `json:"program"`
	Kind       string       `json:"kind"`
	Region     string       `json:"region"`
	A          raceJSONSite `json:"a"`
	B          raceJSONSite `json:"b"`
	Suppressed bool         `json:"suppressed,omitempty"`
}

// raceJSONPackage is the JSON shape of one package's report.
type raceJSONPackage struct {
	Package string         `json:"package"`
	Pairs   []raceJSONPair `json:"pairs"`
}

func jsonSite(s analysis.RaceSite) raceJSONSite {
	return raceJSONSite{
		ID:      s.ID(),
		File:    s.Pos.Filename,
		Line:    s.Pos.Line,
		Col:     s.Pos.Column,
		Kind:    s.Kind,
		Lockset: s.Lockset,
		Guard:   s.Guard,
	}
}

// writeRaceJSON renders the reports as one JSON document. Pair order
// within a package is the engine's deterministic sort, and packages keep
// their command-line order, so the bytes are stable across runs.
func writeRaceJSON(stdout, stderr io.Writer, reports []*analysis.RaceReport) int {
	var doc []raceJSONPackage
	for _, rep := range reports {
		jp := raceJSONPackage{Package: rep.Package, Pairs: []raceJSONPair{}}
		for _, p := range rep.Pairs {
			jp.Pairs = append(jp.Pairs, raceJSONPair{
				Program:    p.Program,
				Kind:       p.Kind,
				Region:     p.Region,
				A:          jsonSite(p.A),
				B:          jsonSite(p.B),
				Suppressed: p.Suppressed,
			})
		}
		doc = append(doc, jp)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(stderr, "icvet race: %v\n", err)
		return 2
	}
	return 0
}
