package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionRoundTrip registers one of everything, scrapes it, parses
// the payload back and checks values and lint-cleanliness.
func TestExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_events_total", "events seen")
	c.Add(41)
	c.Inc()
	g := reg.Gauge("test_depth", "queue depth")
	g.Set(7)
	g.Dec()
	reg.GaugeFunc("test_uptime_seconds", "uptime", func() float64 { return 1.5 })
	v := reg.CounterVec("test_jobs_total", "jobs by state", "state")
	v.With("done").Add(3)
	v.With("failed").Inc()
	v.With(`we"ird\state`).Inc()
	sc := reg.Sharded("test_stores_total", "sharded stores", 8)
	sc.Add(0, 10)
	sc.Add(3, 5)
	sc.Add(11, 1) // wraps into range via mask
	h := reg.Histogram("test_latency_seconds", "latencies", []float64{0.01, 0.1, 1})
	for _, x := range []float64{0.001, 0.05, 0.05, 0.5, 5} {
		h.Observe(x)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if err := Lint(strings.NewReader(text)); err != nil {
		t.Fatalf("self-emitted exposition fails lint: %v\n%s", err, text)
	}
	samples, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	byID := map[string]float64{}
	for _, s := range samples {
		byID[sampleID(s)] = s.Value
	}
	want := map[string]float64{
		"test_events_total":                    42,
		"test_depth":                           6,
		"test_uptime_seconds":                  1.5,
		"test_jobs_total|state=done":           3,
		"test_jobs_total|state=failed":         1,
		"test_jobs_total|state=we\"ird\\state": 1,
		"test_stores_total":                    16,
		"test_latency_seconds_bucket|le=0.01":  1,
		"test_latency_seconds_bucket|le=0.1":   3,
		"test_latency_seconds_bucket|le=1":     4,
		"test_latency_seconds_bucket|le=+Inf":  5,
		"test_latency_seconds_count":           5,
	}
	for id, val := range want {
		got, ok := byID[id]
		if !ok {
			t.Errorf("sample %s missing from exposition:\n%s", id, text)
		} else if got != val {
			t.Errorf("sample %s = %v, want %v", id, got, val)
		}
	}
	if sum := byID["test_latency_seconds_sum"]; math.Abs(sum-5.601) > 1e-9 {
		t.Errorf("histogram sum = %v, want 5.601", sum)
	}
}

// TestHandler scrapes over HTTP like the daemon's /metrics endpoint.
func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_total", "help").Inc()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if err := Lint(resp.Body); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentWriters hammers every metric type from many goroutines;
// run under -race this pins the lock-free paths, and the totals must come
// out exact.
func TestConcurrentWriters(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	g := reg.Gauge("g", "")
	sc := reg.Sharded("s_total", "", 16)
	h := reg.Histogram("h_seconds", "", []float64{1})
	v := reg.CounterVec("v_total", "", "k")

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				sc.Add(w, 2)
				h.Observe(0.5)
				v.With("x").Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // concurrent scrapes while writers run
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			reg.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*per {
		t.Errorf("counter = %d", c.Value())
	}
	if sc.Value() != workers*per*2 {
		t.Errorf("sharded = %d", sc.Value())
	}
	if h.Count() != workers*per || h.Sum() != workers*per*0.5 {
		t.Errorf("histogram = %d / %v", h.Count(), h.Sum())
	}
	if v.With("x").Value() != workers*per {
		t.Errorf("vec = %d", v.With("x").Value())
	}
}

// TestLintRejectsMalformed feeds the gate the payloads it exists to catch.
func TestLintRejectsMalformed(t *testing.T) {
	bad := map[string]string{
		"no type":        "orphan_total 1\n",
		"bad value":      "# TYPE x counter\nx one\n",
		"bad name":       "# TYPE 9x counter\n9x 1\n",
		"dup sample":     "# TYPE x counter\nx 1\nx 2\n",
		"dup type":       "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"unquoted label": "# TYPE x counter\nx{k=v} 1\n",
		"torn labels":    "# TYPE x counter\nx{k=\"v\" 1\n",
		"empty payload":  "# TYPE x counter\n",
		"non-cumulative histogram": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
	}
	for name, payload := range bad {
		if err := Lint(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: lint accepted malformed payload:\n%s", name, payload)
		}
	}
	good := "# HELP ok_total fine\n# TYPE ok_total counter\nok_total{a=\"b\",c=\"d\"} 12 1700000000\n"
	if err := Lint(strings.NewReader(good)); err != nil {
		t.Errorf("lint rejected valid payload: %v", err)
	}
}
