package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionRoundTrip registers one of everything, scrapes it, parses
// the payload back and checks values and lint-cleanliness.
func TestExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_events_total", "events seen")
	c.Add(41)
	c.Inc()
	g := reg.Gauge("test_depth", "queue depth")
	g.Set(7)
	g.Dec()
	reg.GaugeFunc("test_uptime_seconds", "uptime", func() float64 { return 1.5 })
	v := reg.CounterVec("test_jobs_total", "jobs by state", "state")
	v.With("done").Add(3)
	v.With("failed").Inc()
	v.With(`we"ird\state`).Inc()
	sc := reg.Sharded("test_stores_total", "sharded stores", 8)
	sc.Add(0, 10)
	sc.Add(3, 5)
	sc.Add(11, 1) // wraps into range via mask
	h := reg.Histogram("test_latency_seconds", "latencies", []float64{0.01, 0.1, 1})
	for _, x := range []float64{0.001, 0.05, 0.05, 0.5, 5} {
		h.Observe(x)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if err := Lint(strings.NewReader(text)); err != nil {
		t.Fatalf("self-emitted exposition fails lint: %v\n%s", err, text)
	}
	samples, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	byID := map[string]float64{}
	for _, s := range samples {
		byID[sampleID(s)] = s.Value
	}
	want := map[string]float64{
		"test_events_total":                    42,
		"test_depth":                           6,
		"test_uptime_seconds":                  1.5,
		"test_jobs_total|state=done":           3,
		"test_jobs_total|state=failed":         1,
		"test_jobs_total|state=we\"ird\\state": 1,
		"test_stores_total":                    16,
		"test_latency_seconds_bucket|le=0.01":  1,
		"test_latency_seconds_bucket|le=0.1":   3,
		"test_latency_seconds_bucket|le=1":     4,
		"test_latency_seconds_bucket|le=+Inf":  5,
		"test_latency_seconds_count":           5,
	}
	for id, val := range want {
		got, ok := byID[id]
		if !ok {
			t.Errorf("sample %s missing from exposition:\n%s", id, text)
		} else if got != val {
			t.Errorf("sample %s = %v, want %v", id, got, val)
		}
	}
	if sum := byID["test_latency_seconds_sum"]; math.Abs(sum-5.601) > 1e-9 {
		t.Errorf("histogram sum = %v, want 5.601", sum)
	}
}

// TestHandler scrapes over HTTP like the daemon's /metrics endpoint.
func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_total", "help").Inc()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if err := Lint(resp.Body); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentWriters hammers every metric type from many goroutines;
// run under -race this pins the lock-free paths, and the totals must come
// out exact.
func TestConcurrentWriters(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	g := reg.Gauge("g", "")
	sc := reg.Sharded("s_total", "", 16)
	h := reg.Histogram("h_seconds", "", []float64{1})
	v := reg.CounterVec("v_total", "", "k")

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				sc.Add(w, 2)
				h.Observe(0.5)
				v.With("x").Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // concurrent scrapes while writers run
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			reg.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*per {
		t.Errorf("counter = %d", c.Value())
	}
	if sc.Value() != workers*per*2 {
		t.Errorf("sharded = %d", sc.Value())
	}
	if h.Count() != workers*per || h.Sum() != workers*per*0.5 {
		t.Errorf("histogram = %d / %v", h.Count(), h.Sum())
	}
	if v.With("x").Value() != workers*per {
		t.Errorf("vec = %d", v.With("x").Value())
	}
}

// TestLintRejectsMalformed feeds the gate the payloads it exists to catch.
func TestLintRejectsMalformed(t *testing.T) {
	bad := map[string]string{
		"no type":        "orphan_total 1\n",
		"bad value":      "# TYPE x counter\nx one\n",
		"bad name":       "# TYPE 9x counter\n9x 1\n",
		"dup sample":     "# TYPE x counter\nx 1\nx 2\n",
		"dup type":       "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"unquoted label": "# TYPE x counter\nx{k=v} 1\n",
		"torn labels":    "# TYPE x counter\nx{k=\"v\" 1\n",
		"empty payload":  "# TYPE x counter\n",
		"non-cumulative histogram": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
	}
	for name, payload := range bad {
		if err := Lint(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: lint accepted malformed payload:\n%s", name, payload)
		}
	}
	good := "# HELP ok_total fine\n# TYPE ok_total counter\nok_total{a=\"b\",c=\"d\"} 12 1700000000\n"
	if err := Lint(strings.NewReader(good)); err != nil {
		t.Errorf("lint rejected valid payload: %v", err)
	}
}

// TestGaugeVec pins the labeled-gauge family: settable series via With,
// scrape-time series via Func, first registration winning on re-announce.
func TestGaugeVec(t *testing.T) {
	reg := NewRegistry()
	v := reg.GaugeVec("test_worker_live", "liveness per worker", "worker")
	v.With("w1").Set(1)
	v.With("w1").Set(0) // same series, not a duplicate
	live := 1.0
	v.Func("w2", func() float64 { return live })
	v.Func("w2", func() float64 { return 99 }) // re-announce: first wins
	v.Func("w1", func() float64 { return 99 }) // value already has a gauge: no-op

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if err := Lint(strings.NewReader(text)); err != nil {
		t.Fatalf("gauge vec exposition fails lint: %v\n%s", err, text)
	}
	samples, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, s := range samples {
		if s.Name == "test_worker_live" {
			got[s.Label("worker")] = s.Value
		}
	}
	if got["w1"] != 0 || got["w2"] != 1 {
		t.Errorf("worker series = %v, want w1=0 w2=1", got)
	}
	live = 0
	sb.Reset()
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `test_worker_live{worker="w2"} 0`) {
		t.Errorf("Func series did not recompute at scrape time:\n%s", sb.String())
	}
}

// TestLintMerged pins the cross-registry gate: disjoint registries merge
// into one lint-clean payload, a family name registered on both sides is
// rejected even though each registry is individually valid.
func TestLintMerged(t *testing.T) {
	farm := NewRegistry()
	farm.Counter("checkfarm_jobs_total", "jobs").Inc()
	farm.Histogram("checkfarm_append_seconds", "append latency", []float64{1})
	fleet := NewRegistry()
	fleet.Counter("checkfleet_shards_total", "shards").Inc()
	fleet.GaugeVec("checkfleet_worker_live", "liveness", "worker").With("w1").Set(1)

	if err := LintMerged(farm, fleet); err != nil {
		t.Fatalf("disjoint registries rejected: %v", err)
	}

	// The merged payload is exactly the concatenation MergedHandler serves.
	srv := httptest.NewServer(MergedHandler(farm, fleet))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	samples, err := ParseExposition(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, s := range samples {
		have[s.Name] = true
	}
	for _, name := range []string{"checkfarm_jobs_total", "checkfleet_shards_total", "checkfleet_worker_live"} {
		if !have[name] {
			t.Errorf("merged scrape missing %s", name)
		}
	}

	// A collision: both registries own the same family name.
	clash := NewRegistry()
	clash.Counter("checkfarm_jobs_total", "colliding family").Inc()
	err = LintMerged(farm, clash)
	if err == nil || !strings.Contains(err.Error(), "checkfarm_jobs_total") {
		t.Errorf("collision not rejected: %v", err)
	}
}
