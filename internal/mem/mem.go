// Package mem implements the simulated shared memory InstantCheck observes:
// a 64-bit word-grained address space with an allocation table that records,
// for every live block, its allocation site, extent, and element kind. The
// table serves three of the paper's mechanisms:
//
//   - traversal hashing (SW-InstantCheck_Tr, §4.2) walks the static segment
//     plus the table of live allocations;
//   - the state-diff debugging tool (§2.3) maps a differing address back to
//     the source line that allocated it and the offset within the block;
//   - FP round-off during traversal needs to know which words hold doubles,
//     information the paper encodes as per-site type annotations.
//
// Memory is byte-addressed with 8-byte-aligned 8-byte words, matching the
// paper's model of hashing (virtual address, value) pairs at store
// granularity. Allocations are zero-filled, as InstantCheck's allocator
// interception does (§5), so that uninitialized garbage can never corrupt
// the state hash.
//
// Because every simulated load and store funnels through this package, it is
// the hottest layer of the whole system. The backing store is a two-level
// dense page directory (pure slice indexing, no map hash per access) with a
// one-entry page cache, and block lookup combines a one-entry last-block
// cache with page-granular owner metadata so the common sequential access
// resolves in O(1); only cold misses fall back to binary search over the
// sorted block table.
package mem

import (
	"fmt"
	"math/bits"
	"sort"
	"unsafe"
)

// WordSize is the grain of the simulated memory in bytes.
const WordSize = 8

// Kind describes what a word holds, so the hashing layers know whether the
// FP round-off unit applies. The paper obtains this from the compiler (LLVM
// marks FP stores) for the incremental schemes and from allocation-site type
// annotations for the traversal scheme.
type Kind uint8

const (
	// KindWord is an integer/pointer/opaque 64-bit word.
	KindWord Kind = iota
	// KindFloat is an IEEE-754 float64 stored as its bit pattern.
	KindFloat
)

// String returns "word" or "float".
func (k Kind) String() string {
	if k == KindFloat {
		return "float"
	}
	return "word"
}

// Block describes one allocation (or one static segment entry).
type Block struct {
	// Base is the address of the first word. Always WordSize-aligned.
	Base uint64
	// Words is the block length in 8-byte words.
	Words int
	// Site is the allocation-site label ("file:line" morally; any stable
	// string). The state-diff tool reports it to the programmer.
	Site string
	// Kind is the element kind of every word in the block. Mixed-kind
	// records are modeled as adjacent blocks of uniform kind, which is how
	// the paper's recursive type annotations flatten out.
	Kind Kind
	// Static marks blocks in the static data segment: allocated at setup,
	// never freed, always part of the hashed state.
	Static bool
	// Seq is the per-site allocation sequence number (0-based). Together
	// with Site it identifies "the j-th allocation at this site", the key
	// under which the deterministic-replay allocator logs addresses.
	Seq int
	// Live is false once the block has been freed.
	Live bool
}

// End returns the address one past the last word of the block.
func (b *Block) End() uint64 { return b.Base + uint64(b.Words)*WordSize }

// Contains reports whether addr falls inside the block.
func (b *Block) Contains(addr uint64) bool { return addr >= b.Base && addr < b.End() }

const (
	// StaticBase is where the static data segment begins.
	StaticBase uint64 = 0x0000_0000_0001_0000
	// HeapBase is where dynamic allocation begins.
	HeapBase uint64 = 0x0000_0000_1000_0000
	// PageWords is the granularity of the backing store and of TraverseRuns
	// visits: runs never cross a PageWords-aligned boundary, so hashing
	// layers can key per-run caches on (base, len) with bounded cardinality.
	PageWords = 512
	pageWords = PageWords
	pageBytes = pageWords * WordSize

	// The page directory is two levels deep: a root slice indexed by
	// pageNumber>>leafBits holding leaves of 1<<leafBits page slots each.
	// One leaf spans 512 KiB of address space. Leaves are kept small because
	// a Memory is created per simulated run and a leaf is the directory's
	// unit of allocation: small programs touch one or two leaves, and the
	// per-run setup cost must not dwarf the run itself.
	leafBits = 7
	leafSize = 1 << leafBits
	leafMask = leafSize - 1
)

type page [pageWords]uint64

// leaf is one second-level node of the page directory: the backing pages for
// a 512 KiB address window plus, per page, the live block that fully covers
// the page (nil when the page straddles block boundaries or holes). The
// owner metadata is what makes liveness checking O(1) for interior pages of
// large allocations. dirty is the per-page dirty bitmap consumed by the
// delta checkpoint sweep: a set bit means the page's contribution to the
// state hash may have changed since the last ClearDirty.
type leaf struct {
	pages [leafSize]*page
	owner [leafSize]*Block
	dirty [leafSize / 64]uint64
}

// zeroRun backs the word slices TraverseRuns hands out for words whose
// backing page was never materialized (allocated but never stored to, hence
// still zero). It must never be written.
var zeroRun [pageWords]uint64

// IsZeroRun reports whether a slice passed to a TraverseRuns visitor is the
// shared all-zero run: the words exist in the hashed state but have no
// backing page because they were never stored to. Hashing layers use this to
// take the cancellation shortcut h(a,0) ⊖ h(a,0) = 0 without touching the
// words at all.
func IsZeroRun(words []uint64) bool {
	return len(words) > 0 && &words[0] == &zeroRun[0]
}

// Memory is one simulated address space. It is not safe for concurrent use;
// the serializing scheduler guarantees only one thread touches it at a time.
type Memory struct {
	// dir is the root of the two-level page directory, indexed by
	// pageNumber >> leafBits.
	dir []*leaf

	// blocks maps base address -> block, for both live and freed heap
	// blocks (freed ones kept so the state-diff tool can still attribute
	// dangling pointers). order holds blocks sorted by base ascending; a
	// freed block stays in place as a tombstone (Live == false) until a
	// batched compaction sweep reclaims the slots, so Free never pays an
	// O(n) slice shift.
	blocks map[uint64]*Block
	order  []*Block
	dead   int // tombstones currently in order

	// cacheBlock is the last live block a lookup resolved to; sequential
	// access patterns hit it without any search. It is never nil: when no
	// block is cached it points at noBlock, whose Base makes every
	// containment test fail, so BlockAt's probe needs no nil check.
	// Invalidated (reset to &noBlock) on Free.
	cacheBlock *Block
	// cachePage/cachePageBase memoize the last materialized page touched.
	// Pages are never unmapped, so this cache needs no invalidation.
	cachePage     *page
	cachePageBase uint64
	// The fast window is the intersection of the last-resolved live block
	// and its materialized page: [fastBase, fastBase+fastLen) in bytes,
	// with fastWin pointing at the first backing word. Within it a
	// Load/Store is one range check plus an unchecked word access — cheap
	// enough that the compiler inlines the whole access into the
	// simulator's instrumentation (the range check subsumes the bounds
	// check a slice would repeat). fastWin always points into a page kept
	// alive by the directory. Cleared when the owning block is freed.
	fastBase uint64
	fastLen  uint64
	fastWin  unsafe.Pointer
	// fastDirty/fastDirtyMask address the dirty bit of the fast window's
	// page: a window-hit store marks its page with a single masked OR, the
	// only dirty-tracking cost on the inlined hit path. Valid whenever
	// fastLen > 0 (the window always maps a materialized page, whose leaf
	// therefore exists).
	fastDirty     *uint64
	fastDirtyMask uint64

	// fastLoadMiss and fastStoreMiss count slow-path resolutions: accesses
	// that fell through the fast window into loadSlow/storeSlow (including
	// checker-internal stores such as the zeroing on free). They exist for
	// the observability layer's fast-window hit-rate metric and are plain
	// fields deliberately: the window-hit path itself carries no counting,
	// so enabling metrics costs the fast path nothing — hits are derived at
	// flush time as total accesses minus misses.
	fastLoadMiss  uint64
	fastStoreMiss uint64

	staticNext uint64
	heapNext   uint64

	// AddrHook, when non-nil, intercepts heap allocation placement: given
	// (site, seq, words) it may return a previously logged address. This is
	// the attachment point for the paper's malloc record/replay (§5).
	AddrHook func(site string, seq int, words int) (addr uint64, ok bool)

	siteSeq map[string]int

	liveWords   int
	staticWords int
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{
		blocks:     make(map[uint64]*Block),
		cacheBlock: &noBlock,
		staticNext: StaticBase,
		heapNext:   HeapBase,
		siteSeq:    make(map[string]int),
	}
}

// noBlock is the block cache's empty sentinel: its Base is chosen so that
// addr - Base never falls inside any possible block extent, making the
// cache probe in BlockAt fail without a nil check.
var noBlock = Block{Base: ^uint64(0)}

// AllocStatic reserves words in the static segment under the given site
// label. Static memory is always part of the hashed program state.
func (m *Memory) AllocStatic(site string, words int, kind Kind) uint64 {
	if words <= 0 {
		panic("mem: static allocation of non-positive size")
	}
	base := m.staticNext
	m.staticNext += roundUpWords(words)
	b := &Block{Base: base, Words: words, Site: site, Kind: kind, Static: true, Live: true}
	m.insertBlock(b)
	m.staticWords += words
	m.liveWords += words
	m.zeroLive(base, words)
	m.markDirtyRange(base, words)
	return base
}

// Alloc allocates a zero-filled block of words under the given site label
// and returns its base address. If AddrHook supplies a logged address for
// (site, seq) the block is placed there, implementing deterministic replay
// of malloc; otherwise a fresh bump address is used.
func (m *Memory) Alloc(site string, words int, kind Kind) *Block {
	if words <= 0 {
		panic("mem: allocation of non-positive size")
	}
	seq := m.siteSeq[site]
	m.siteSeq[site] = seq + 1
	var base uint64
	placed := false
	if m.AddrHook != nil {
		if a, ok := m.AddrHook(site, seq, words); ok {
			base = a
			placed = true
		}
	}
	if !placed {
		base = m.heapNext
		m.heapNext += roundUpWords(words)
	} else if base >= m.heapNext {
		m.heapNext = base + roundUpWords(words)
	}
	if old, exists := m.blocks[base]; exists && old.Live {
		panic(fmt.Sprintf("mem: allocator placed block at %#x which is still live (site %s)", base, old.Site))
	}
	b := &Block{Base: base, Words: words, Site: site, Kind: kind, Seq: seq, Live: true}
	m.insertBlock(b)
	m.liveWords += words
	// Zero-fill, as InstantCheck's allocator interception does. Only words
	// with a materialized backing page need explicit clearing: fresh pages
	// read as zero already. Dirty marking elides the same pages the
	// zero-fill does: an unmaterialized page contributes zero to the state
	// hash before and after the allocation.
	m.zeroLive(base, words)
	m.markDirtyRange(base, words)
	return b
}

// Free retires the block based at base and returns it. The block's current
// word values remain readable through Peek for hash-erasure purposes,
// but the block no longer belongs to the traversed state. Freeing a static
// block or an address that is not a live block base panics.
func (m *Memory) Free(base uint64) *Block {
	b := m.blocks[base]
	if b == nil || !b.Live {
		panic(fmt.Sprintf("mem: free of %#x which is not a live block", base))
	}
	if b.Static {
		panic(fmt.Sprintf("mem: free of static block %q at %#x", b.Site, base))
	}
	b.Live = false
	m.retireOrder(b)
	if m.cacheBlock == b {
		m.cacheBlock = &noBlock
	}
	if m.fastLen > 0 && b.Contains(m.fastBase) {
		// The fast window aliased the freed block: drop it so later
		// accesses re-validate liveness through the slow path.
		m.fastLen = 0
		m.fastWin = nil
	}
	m.clearOwners(b)
	// The freed words leave the hashed state: their pages' contributions
	// change (to zero, for pages the block covered fully), so the delta
	// sweep must revisit them.
	m.markDirtyRange(b.Base, b.Words)
	m.liveWords -= b.Words
	return b
}

// Load returns the word at addr. Loading outside any live block panics:
// it is either a use-after-free or a wild read in the workload kernel.
// The fast-window hit path inlines into the caller.
func (m *Memory) Load(addr uint64) uint64 {
	off := addr - m.fastBase
	if off < m.fastLen && addr&7 == 0 {
		return *(*uint64)(unsafe.Add(m.fastWin, off))
	}
	return m.loadSlow(addr)
}

// LoadFast is the window-hit-only form of Load: it returns the word and
// true on a fast-window hit, and (0, false) otherwise without touching the
// slow path. Unlike Load it fits the compiler's inline budget, so hot
// instrumentation wrappers use it as a first probe and fall back to Load.
func (m *Memory) LoadFast(addr uint64) (uint64, bool) {
	off := addr - m.fastBase
	if off < m.fastLen && addr&7 == 0 {
		return *(*uint64)(unsafe.Add(m.fastWin, off)), true
	}
	return 0, false
}

func (m *Memory) loadSlow(addr uint64) uint64 {
	m.fastLoadMiss++
	m.checkLive(addr, "load")
	v := m.loadRaw(addr)
	if m.cachePage != nil && addr-m.cachePageBase < pageBytes {
		m.setFastWindow(m.cacheBlock, addr/pageBytes, m.cachePage)
	}
	return v
}

// Store writes value at addr and returns the previous value — the Data_old
// the MHM reads from the L1 line before the update (§3.1). Storing outside
// any live block panics. Like Load, the fast-window hit path inlines.
func (m *Memory) Store(addr, value uint64) (old uint64) {
	off := addr - m.fastBase
	if off < m.fastLen && addr&7 == 0 {
		p := (*uint64)(unsafe.Add(m.fastWin, off))
		old = *p
		*p = value
		*m.fastDirty |= m.fastDirtyMask
		return old
	}
	return m.storeSlow(addr, value)
}

// StoreFast is the window-hit-only form of Store: on a fast-window hit it
// performs the store and returns (old, true); otherwise it does nothing and
// returns (0, false). Like LoadFast it exists to inline into per-access
// instrumentation.
func (m *Memory) StoreFast(addr, value uint64) (old uint64, ok bool) {
	off := addr - m.fastBase
	if off < m.fastLen && addr&7 == 0 {
		p := (*uint64)(unsafe.Add(m.fastWin, off))
		old = *p
		*p = value
		*m.fastDirty |= m.fastDirtyMask
		return old, true
	}
	return 0, false
}

func (m *Memory) storeSlow(addr, value uint64) (old uint64) {
	m.fastStoreMiss++
	m.checkLive(addr, "store")
	p := m.pageForStore(addr)
	i := (addr % pageBytes) / WordSize
	old = p[i]
	p[i] = value
	pn := addr / pageBytes
	m.markDirty(pn)
	m.setFastWindow(m.cacheBlock, pn, p)
	return old
}

// setFastWindow points the fast window at the intersection of block b
// (which checkLive just resolved into the block cache) and the materialized
// page pn backed by p.
func (m *Memory) setFastWindow(b *Block, pn uint64, p *page) {
	if b == nil || b == &noBlock {
		return
	}
	start := pn * pageBytes
	end := start + pageBytes
	if b.Base > start {
		start = b.Base
	}
	if be := b.End(); be < end {
		end = be
	}
	m.fastBase = start
	m.fastLen = end - start
	m.fastWin = unsafe.Pointer(&p[(start%pageBytes)/WordSize])
	lf := m.leafAt(pn) // non-nil: p is materialized, so its leaf exists
	m.fastDirty = &lf.dirty[(pn&leafMask)>>6]
	m.fastDirtyMask = 1 << (pn & 63)
}

// Peek reads a word without liveness checking (for snapshots and the
// hash-erasure path on free).
func (m *Memory) Peek(addr uint64) uint64 { return m.loadRaw(addr) }

// BlockAt returns the live block containing addr, or nil.
func (m *Memory) BlockAt(addr uint64) *Block {
	if b := m.cacheBlock; addr-b.Base < uint64(b.Words)*WordSize {
		return b
	}
	return m.blockAtSlow(addr)
}

// blockAtSlow resolves addr when the last-block cache misses: first through
// the page-owner metadata (O(1) for interior pages of large blocks), then by
// binary search over the sorted block table.
func (m *Memory) blockAtSlow(addr uint64) *Block {
	pn := addr / pageBytes
	if lf := m.leafAt(pn); lf != nil {
		if b := lf.owner[pn&leafMask]; b != nil {
			m.cacheBlock = b
			return b
		}
	}
	i := sort.Search(len(m.order), func(i int) bool { return m.order[i].Base > addr })
	// Walk left past tombstones: live blocks never overlap any retained
	// block, so the nearest live predecessor is the only candidate.
	for i > 0 {
		b := m.order[i-1]
		if b.Live {
			if b.Contains(addr) {
				m.cacheBlock = b
				return b
			}
			return nil
		}
		if b.Contains(addr) {
			return nil // inside a freed block: dead for sure
		}
		i--
	}
	return nil
}

// BlockByBase returns the block (live or freed) whose base is exactly base,
// or nil. Freed blocks are retained for state-diff attribution.
func (m *Memory) BlockByBase(base uint64) *Block { return m.blocks[base] }

// LiveWords returns the number of words in the hashed state (static + live
// heap) — the quantity SW-InstantCheck_Tr sweeps at each checkpoint.
func (m *Memory) LiveWords() int { return m.liveWords }

// StaticWords returns the size of the static segment in words.
func (m *Memory) StaticWords() int { return m.staticWords }

// FastPathStats returns the slow-path resolution counts: loads and stores
// that missed the fast window. Together with the caller's total access
// counts these yield the fast-window hit rate; the fast path itself does
// no counting (see the field comments).
func (m *Memory) FastPathStats() (loadMisses, storeMisses uint64) {
	return m.fastLoadMiss, m.fastStoreMiss
}

// Traverse visits every word of the hashed state (static segment plus live
// heap blocks) in ascending address order, calling fn(addr, value, kind).
// This is the sweep SW-InstantCheck_Tr performs at each checkpoint. Hot
// callers should prefer TraverseRuns, which amortizes the per-word closure
// call over whole page runs.
func (m *Memory) Traverse(fn func(addr, value uint64, kind Kind)) {
	m.TraverseRuns(func(base uint64, words []uint64, kind Kind) {
		for i, v := range words {
			fn(base+uint64(i)*WordSize, v, kind)
		}
	})
}

// TraverseRuns visits every word of the hashed state in ascending address
// order as maximal per-page runs: fn is called with the address of the first
// word of the run and a slice aliasing the backing page (or the shared
// all-zero run for words whose page was never materialized — see IsZeroRun).
// The callback must treat words as read-only and must not retain it past the
// call when it may later mutate memory; runs never cross a page boundary or
// a block boundary.
func (m *Memory) TraverseRuns(fn func(base uint64, words []uint64, kind Kind)) {
	for _, b := range m.order {
		if !b.Live {
			continue
		}
		addr := b.Base
		end := b.End()
		for addr < end {
			pn := addr / pageBytes
			chunkEnd := (pn + 1) * pageBytes
			if chunkEnd > end {
				chunkEnd = end
			}
			n := (chunkEnd - addr) / WordSize
			var p *page
			if lf := m.leafAt(pn); lf != nil {
				p = lf.pages[pn&leafMask]
			}
			if p == nil {
				fn(addr, zeroRun[:n], b.Kind)
			} else {
				lo := (addr % pageBytes) / WordSize
				fn(addr, p[lo:lo+n], b.Kind)
			}
			addr = chunkEnd
		}
	}
}

// TraverseBlocks visits every live block in ascending address order.
func (m *Memory) TraverseBlocks(fn func(b *Block)) {
	for _, b := range m.order {
		if b.Live {
			fn(b)
		}
	}
}

// Snapshot captures the full hashed state for the state-diff tool: a copy
// of every live word plus the block table. The paper's prototype does the
// same when re-executing the two differing runs (§2.3).
func (m *Memory) Snapshot() *Snapshot {
	s := &Snapshot{
		Addrs: make([]uint64, 0, m.liveWords),
		Vals:  make([]uint64, 0, m.liveWords),
	}
	m.TraverseBlocks(func(b *Block) {
		copied := *b
		s.Blocks = append(s.Blocks, &copied)
	})
	m.TraverseRuns(func(base uint64, words []uint64, _ Kind) {
		for i, v := range words {
			s.Addrs = append(s.Addrs, base+uint64(i)*WordSize)
			s.Vals = append(s.Vals, v)
		}
	})
	return s
}

// Snapshot is a point-in-time copy of the hashed state. Words are stored as
// sorted parallel slices (ascending Addrs, matching Vals) rather than a map,
// so capture is a linear copy and comparison is a linear merge.
type Snapshot struct {
	// Blocks lists the live blocks in ascending base order.
	Blocks []*Block
	// Addrs holds the addresses of every live word, ascending.
	Addrs []uint64
	// Vals holds the word values, parallel to Addrs.
	Vals []uint64
}

// NewSnapshot builds a snapshot from a block list and an address->value map,
// the pre-slice representation. It exists for tests and tools that assemble
// snapshots by hand.
func NewSnapshot(blocks []*Block, words map[uint64]uint64) *Snapshot {
	s := &Snapshot{Blocks: blocks, Addrs: make([]uint64, 0, len(words))}
	for addr := range words {
		s.Addrs = append(s.Addrs, addr)
	}
	sort.Slice(s.Addrs, func(i, j int) bool { return s.Addrs[i] < s.Addrs[j] })
	s.Vals = make([]uint64, len(s.Addrs))
	for i, addr := range s.Addrs {
		s.Vals[i] = words[addr]
	}
	return s
}

// Len returns the number of words in the snapshot.
func (s *Snapshot) Len() int { return len(s.Addrs) }

// Word returns the value at addr and whether addr is part of the snapshot —
// the compatibility accessor for the former map representation.
func (s *Snapshot) Word(addr uint64) (uint64, bool) {
	lo, hi := 0, len(s.Addrs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.Addrs[mid] < addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.Addrs) && s.Addrs[lo] == addr {
		return s.Vals[lo], true
	}
	return 0, false
}

// BlockAt returns the snapshot block containing addr, or nil.
func (s *Snapshot) BlockAt(addr uint64) *Block {
	i := sort.Search(len(s.Blocks), func(i int) bool { return s.Blocks[i].Base > addr })
	if i == 0 {
		return nil
	}
	b := s.Blocks[i-1]
	if b.Contains(addr) {
		return b
	}
	return nil
}

// insertBlock links b into the block map and the sorted order slice. The
// bump allocator almost always appends at the end; replayed placements over
// a freed base revive the tombstone in place; only genuinely out-of-order
// placements (rare) pay the O(n) insert shift.
func (m *Memory) insertBlock(b *Block) {
	m.blocks[b.Base] = b
	n := len(m.order)
	if n == 0 || m.order[n-1].Base < b.Base {
		m.order = append(m.order, b)
		m.setOwners(b)
		return
	}
	i := sort.Search(n, func(i int) bool { return m.order[i].Base >= b.Base })
	if i < n && m.order[i].Base == b.Base {
		// The slot holds the tombstone of a freed block at the same base
		// (the caller already rejected double placement over a live one).
		if m.dead > 0 {
			m.dead--
		}
		m.order[i] = b
		m.setOwners(b)
		return
	}
	m.order = append(m.order, nil)
	copy(m.order[i+1:], m.order[i:])
	m.order[i] = b
	m.setOwners(b)
}

// retireOrder tombstones a freed block in the order slice and compacts the
// slice once tombstones dominate, batching what used to be a per-free O(n)
// shift into an amortized O(1) mark.
func (m *Memory) retireOrder(b *Block) {
	m.dead++
	if m.dead < 32 || m.dead*2 < len(m.order) {
		return
	}
	live := m.order[:0]
	for _, blk := range m.order {
		if blk.Live {
			live = append(live, blk)
		}
	}
	// Drop the trailing pointers so freed blocks become collectable once
	// the blocks map no longer needs them.
	for i := len(live); i < len(m.order); i++ {
		m.order[i] = nil
	}
	m.order = live
	m.dead = 0
}

// setOwners records b as the owner of every page it fully covers, making
// liveness lookups on those pages O(1).
func (m *Memory) setOwners(b *Block) {
	first := (b.Base + pageBytes - 1) / pageBytes
	last := b.End() / pageBytes // one past the last fully covered page
	for pn := first; pn < last; pn++ {
		m.leafFor(pn).owner[pn&leafMask] = b
	}
}

// clearOwners removes b's page-owner entries on free.
func (m *Memory) clearOwners(b *Block) {
	first := (b.Base + pageBytes - 1) / pageBytes
	last := b.End() / pageBytes
	for pn := first; pn < last; pn++ {
		if lf := m.leafAt(pn); lf != nil {
			lf.owner[pn&leafMask] = nil
		}
	}
}

// markDirty sets the dirty bit of page pn. The page's leaf must exist
// (callers mark pages they have just materialized or resolved).
func (m *Memory) markDirty(pn uint64) {
	lf := m.dir[pn>>leafBits]
	lf.dirty[(pn&leafMask)>>6] |= 1 << (pn & 63)
}

// markDirtyRange marks every page overlapping [base, base+words*WordSize)
// whose directory leaf exists. Pages under a missing leaf were never stored
// to: every word there reads zero, so the page's state-hash contribution is
// zero both before and after the block-table change being recorded, and the
// delta sweep can skip it — the bitmap analogue of zero-fill elision.
func (m *Memory) markDirtyRange(base uint64, words int) {
	first := base / pageBytes
	last := (base + uint64(words)*WordSize - 1) / pageBytes
	for pn := first; pn <= last; pn++ {
		if lf := m.leafAt(pn); lf != nil {
			lf.dirty[(pn&leafMask)>>6] |= 1 << (pn & 63)
		}
	}
}

// DirtyPageCount returns the number of pages currently marked dirty.
func (m *Memory) DirtyPageCount() int {
	n := 0
	for _, lf := range m.dir {
		if lf == nil {
			continue
		}
		for _, w := range lf.dirty {
			n += bits.OnesCount64(w)
		}
	}
	return n
}

// ClearDirty resets the dirty bitmap. A delta-hashing checkpoint calls it
// after folding the dirty pages' new contributions into its cache.
func (m *Memory) ClearDirty() {
	for _, lf := range m.dir {
		if lf != nil {
			lf.dirty = [leafSize / 64]uint64{}
		}
	}
}

// TraverseDirtyRuns visits every dirty page in ascending page-number order.
// For each dirty page it calls page(pn) once, then run(base, words, kind)
// for every maximal live run on that page — zero calls when the page no
// longer holds live words (its whole extent was freed), which tells delta
// hashers the page's contribution is now zero. Run slices follow the
// TraverseRuns contract: read-only, never crossing a page or block boundary,
// and the shared all-zero run (IsZeroRun) for unmaterialized backing.
func (m *Memory) TraverseDirtyRuns(page func(pn uint64), run func(base uint64, words []uint64, kind Kind)) {
	for di, lf := range m.dir {
		if lf == nil {
			continue
		}
		for wi, w := range lf.dirty {
			for w != 0 {
				bit := uint64(bits.TrailingZeros64(w))
				w &= w - 1
				pn := uint64(di)<<leafBits | uint64(wi)<<6 | bit
				page(pn)
				m.dirtyPageRuns(lf, pn, run)
			}
		}
	}
}

// dirtyPageRuns emits the live runs of one page. The common case — a single
// live block covering the whole page — resolves through the page-owner
// metadata; partial pages fall back to a bounded scan of the block table
// around the page extent.
func (m *Memory) dirtyPageRuns(lf *leaf, pn uint64, run func(base uint64, words []uint64, kind Kind)) {
	pageStart := pn * pageBytes
	pageEnd := pageStart + pageBytes
	p := lf.pages[pn&leafMask]
	if b := lf.owner[pn&leafMask]; b != nil && b.Live {
		if p == nil {
			run(pageStart, zeroRun[:pageWords], b.Kind)
		} else {
			run(pageStart, p[:pageWords:pageWords], b.Kind)
		}
		return
	}
	// No full-page owner: find the blocks overlapping the page. Live blocks
	// never overlap retained tombstones, so walking left stops at the first
	// block (live or dead) that ends at or before the page start.
	i := sort.Search(len(m.order), func(i int) bool { return m.order[i].Base >= pageEnd })
	start := i
	for start > 0 && m.order[start-1].End() > pageStart {
		start--
	}
	for ; start < i; start++ {
		b := m.order[start]
		if !b.Live || b.End() <= pageStart || b.Base >= pageEnd {
			continue
		}
		lo, hi := b.Base, b.End()
		if lo < pageStart {
			lo = pageStart
		}
		if hi > pageEnd {
			hi = pageEnd
		}
		n := (hi - lo) / WordSize
		if p == nil {
			run(lo, zeroRun[:n], b.Kind)
		} else {
			w := (lo % pageBytes) / WordSize
			run(lo, p[w:w+n:w+n], b.Kind)
		}
	}
}

func (m *Memory) checkLive(addr uint64, op string) {
	if addr%WordSize != 0 {
		panic(fmt.Sprintf("mem: misaligned %s at %#x", op, addr))
	}
	if m.BlockAt(addr) == nil {
		panic(fmt.Sprintf("mem: %s at %#x outside any live block (use-after-free or wild access)", op, addr))
	}
}

// leafAt returns the directory leaf covering page pn, or nil.
func (m *Memory) leafAt(pn uint64) *leaf {
	di := pn >> leafBits
	if di >= uint64(len(m.dir)) {
		return nil
	}
	return m.dir[di]
}

// leafFor returns the directory leaf covering page pn, growing the root and
// materializing the leaf as needed.
func (m *Memory) leafFor(pn uint64) *leaf {
	di := pn >> leafBits
	for di >= uint64(len(m.dir)) {
		m.dir = append(m.dir, nil)
	}
	lf := m.dir[di]
	if lf == nil {
		lf = new(leaf)
		m.dir[di] = lf
	}
	return lf
}

func (m *Memory) loadRaw(addr uint64) uint64 {
	if off := addr - m.cachePageBase; off < pageBytes && m.cachePage != nil {
		return m.cachePage[off/WordSize]
	}
	pn := addr / pageBytes
	lf := m.leafAt(pn)
	if lf == nil {
		return 0
	}
	p := lf.pages[pn&leafMask]
	if p == nil {
		return 0
	}
	m.cachePage = p
	m.cachePageBase = pn * pageBytes
	return p[(addr%pageBytes)/WordSize]
}

// pageForStore returns the materialized page backing addr, creating it (and
// its leaf) on first touch.
func (m *Memory) pageForStore(addr uint64) *page {
	if off := addr - m.cachePageBase; off < pageBytes && m.cachePage != nil {
		return m.cachePage
	}
	pn := addr / pageBytes
	lf := m.leafFor(pn)
	p := lf.pages[pn&leafMask]
	if p == nil {
		p = new(page)
		lf.pages[pn&leafMask] = p
	}
	m.cachePage = p
	m.cachePageBase = pn * pageBytes
	return p
}

// zeroLive clears [base, base+words*WordSize) on materialized pages only:
// pages never stored to already read as zero, so a fresh bump allocation
// skips the fill entirely and only re-placements over dirtied memory pay for
// the words they actually reuse.
func (m *Memory) zeroLive(base uint64, words int) {
	addr := base
	end := base + uint64(words)*WordSize
	for addr < end {
		pn := addr / pageBytes
		chunkEnd := (pn + 1) * pageBytes
		if chunkEnd > end {
			chunkEnd = end
		}
		var p *page
		if lf := m.leafAt(pn); lf != nil {
			p = lf.pages[pn&leafMask]
		}
		if p != nil {
			lo := (addr % pageBytes) / WordSize
			hi := lo + (chunkEnd-addr)/WordSize
			clear(p[lo:hi])
		}
		addr = chunkEnd
	}
}

func roundUpWords(words int) uint64 {
	// Round block footprints to 16 words so distinct sites never collide
	// and replayed addresses stay stable when sizes wobble slightly.
	const chunk = 16
	w := (words + chunk - 1) / chunk * chunk
	return uint64(w) * WordSize
}
