package apps

import (
	"math"

	"instantcheck/internal/core"
	"instantcheck/internal/mem"
	"instantcheck/internal/sim"
)

func init() {
	register(&App{
		Name:          "fft",
		Source:        "splash2",
		UsesFP:        true,
		ExpectedClass: core.ClassBitDeterministic,
		Build: func(o Options) sim.Program {
			p := &fftProg{nt: o.threads(), n: 4096}
			if o.Small {
				p.n = 64
			}
			return p
		},
	})
}

// fftProg reproduces SPLASH-2's fft: an iterative radix-2 Cooley-Tukey FFT
// over n complex points. Every stage partitions the n/2 butterflies across
// threads; each butterfly reads and writes only its own pair, so stages are
// disjoint-write and the transform is bit-by-bit deterministic. A barrier
// separates stages (Table 1: 13 dynamic points at the default input —
// 12 stage barriers plus the end of the run).
type fftProg struct {
	nt int
	n  int // power of two

	re, im uint64
	stage  barrier
}

func (p *fftProg) Name() string { return "fft" }

func (p *fftProg) Threads() int { return p.nt }

func (p *fftProg) Setup(t *sim.Thread) {
	p.re = t.AllocStatic("static:fft.re", p.n, mem.KindFloat)
	p.im = t.AllocStatic("static:fft.im", p.n, mem.KindFloat)
	// Load the input already bit-reverse permuted (the permutation of a
	// fixed input is itself fixed input, so doing it at setup keeps the
	// worker phase structure identical to SPLASH-2's transpose-free loop).
	bits := log2(p.n)
	for i := 0; i < p.n; i++ {
		j := bitReverse(i, bits)
		t.StoreF(idx(p.re, i), math.Sin(float64(j)*0.37)+0.5*math.Cos(float64(j)*0.011))
		t.StoreF(idx(p.im, i), 0)
	}
	p.stage = newBarrier(t, "fft.stage")
}

func (p *fftProg) Worker(t *sim.Thread) {
	n := p.n
	stages := log2(n)
	for s := 0; s < stages; s++ {
		half := 1 << s
		lo, hi := span(n/2, p.nt, t.TID())
		for b := lo; b < hi; b++ {
			// Butterfly b of stage s touches indices i and i+half; the
			// mapping is a bijection, so threads never collide.
			group := b / half
			off := b % half
			i := group*half*2 + off
			j := i + half
			ang := -2 * math.Pi * float64(off) / float64(half*2)
			wr, wi := math.Cos(ang), math.Sin(ang)
			ar, ai := t.LoadF(idx(p.re, i)), t.LoadF(idx(p.im, i))
			//icvet:ignore race the stage-s butterfly index map is a bijection: no two threads share an (i, i+half) pair
			br, bi := t.LoadF(idx(p.re, j)), t.LoadF(idx(p.im, j))
			tr := wr*br - wi*bi
			ti := wr*bi + wi*br
			t.Compute(90) // sin/cos twiddle generation + complex multiply-add
			t.StoreF(idx(p.re, i), ar+tr)
			t.StoreF(idx(p.im, i), ai+ti)
			//icvet:ignore race butterfly bijection, as above: index j belongs to this thread's butterflies only
			t.StoreF(idx(p.re, j), ar-tr)
			t.StoreF(idx(p.im, j), ai-ti) //icvet:ignore race butterfly bijection, as above
		}
		p.stage.await(t)
	}
}

func log2(n int) int {
	s := 0
	for 1<<s < n {
		s++
	}
	return s
}

func bitReverse(i, bits int) int {
	r := 0
	for b := 0; b < bits; b++ {
		r = r<<1 | (i>>b)&1
	}
	return r
}
