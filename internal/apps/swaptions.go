package apps

import (
	"math"

	"instantcheck/internal/core"
	"instantcheck/internal/mem"
	"instantcheck/internal/sim"
)

func init() {
	register(&App{
		Name:          "swaptions",
		Source:        "parsec",
		UsesFP:        true,
		ExpectedClass: core.ClassBitDeterministic,
		Build: func(o Options) sim.Program {
			p := &swaptionsProg{nt: o.threads(), perThread: 2, trials: 2500}
			if o.Small {
				p.trials = 40
			}
			return p
		},
	})
}

// swaptionsProg reproduces PARSEC's swaptions: Monte-Carlo pricing of
// swaptions under an HJM-style short-rate simulation. One might expect a
// Monte-Carlo code to be nondeterministic, but — exactly as the paper
// observes (§7.2) — each thread owns a private random number generator
// with no shared state, so given the same seeds every thread produces its
// own deterministic path sequence independent of scheduling, and each
// thread accumulates into its own swaptions' price slots. The program is
// therefore bit-by-bit deterministic. A barrier per trial yields the
// 2501 dynamic points of Table 1.
type swaptionsProg struct {
	nt        int
	perThread int
	trials    int

	strike, tenor uint64 // per-swaption parameters
	sum, sumSq    uint64 // per-swaption accumulators (owner-thread only)
	trial         barrier
}

func (p *swaptionsProg) Name() string { return "swaptions" }

func (p *swaptionsProg) Threads() int { return p.nt }

func (p *swaptionsProg) count() int { return p.nt * p.perThread }

func (p *swaptionsProg) Setup(t *sim.Thread) {
	n := p.count()
	p.strike = t.AllocStatic("static:swp.strike", n, mem.KindFloat)
	p.tenor = t.AllocStatic("static:swp.tenor", n, mem.KindFloat)
	p.sum = t.AllocStatic("static:swp.sum", n, mem.KindFloat)
	p.sumSq = t.AllocStatic("static:swp.sumsq", n, mem.KindFloat)
	rng := newXorshift(1234)
	for i := 0; i < n; i++ {
		t.StoreF(idx(p.strike, i), 0.02+0.06*rng.unitFloat())
		t.StoreF(idx(p.tenor, i), 1+9*rng.unitFloat())
	}
	p.trial = newBarrier(t, "swp.trial")
}

func (p *swaptionsProg) Worker(t *sim.Thread) {
	tid := t.TID()
	// Thread-local RNG: seeded per thread, never shared — the structural
	// reason this Monte-Carlo simulation is externally deterministic.
	rng := newXorshift(uint64(tid+1) * 0x9e3779b97f4a7c15)
	first := tid * p.perThread
	for trial := 0; trial < p.trials; trial++ {
		for s := 0; s < p.perThread; s++ {
			i := first + s
			strike := t.LoadF(idx(p.strike, i))
			tenor := t.LoadF(idx(p.tenor, i))
			payoff := simulatePath(&rng, strike, tenor)
			t.Compute(120) // the HJM path evolution per trial
			t.StoreF(idx(p.sum, i), t.LoadF(idx(p.sum, i))+payoff)
			t.StoreF(idx(p.sumSq, i), t.LoadF(idx(p.sumSq, i))+payoff*payoff)
		}
		p.trial.await(t)
	}
}

// simulatePath evolves a toy short-rate path and returns the discounted
// payoff of a payer swaption.
func simulatePath(rng *xorshift, strike, tenor float64) float64 {
	const steps = 8
	rate := 0.04
	dt := tenor / steps
	df := 1.0
	for s := 0; s < steps; s++ {
		// Box-Muller-free gaussian-ish shock from two uniforms.
		u1, u2 := rng.unitFloat(), rng.unitFloat()
		shock := (u1 + u2 - 1) * 0.02
		rate += 0.3*(0.045-rate)*dt + shock*math.Sqrt(dt)
		if rate < 0.0001 {
			rate = 0.0001
		}
		df *= math.Exp(-rate * dt)
	}
	payoff := rate - strike
	if payoff < 0 {
		payoff = 0
	}
	return payoff * df * 100
}
