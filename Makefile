# InstantCheck reproduction — convenience targets.

GO ?= go

.PHONY: all test race bench table1 table2 figures everything cover fmt vet lint

all: test lint

test:
	$(GO) test ./...

lint:
	$(GO) run ./cmd/icvet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

table1:
	$(GO) run ./cmd/instantcheck table1

table2:
	$(GO) run ./cmd/instantcheck table2

figures:
	$(GO) run ./cmd/instantcheck fig5
	$(GO) run ./cmd/instantcheck fig6
	$(GO) run ./cmd/instantcheck fig8

everything:
	$(GO) run ./cmd/instantcheck all

cover:
	$(GO) test -cover ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
