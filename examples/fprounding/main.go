// Command fprounding demonstrates the FP round-off unit (paper §3.1, §5):
// ocean's relaxation grid is bit-by-bit deterministic, but its residual
// reduces into one shared accumulator under a lock — additions land in
// schedule order, and FP addition is not associative, so the residual's
// low mantissa bits differ from run to run. Bit-by-bit comparison flags
// ocean as highly nondeterministic; with values rounded before hashing it
// is deterministic.
//
// The example compares the two rounding policies the paper offers expert
// numerical programmers: flooring to N decimal digits (discarding small
// absolute differences; N=3 is the paper default) and zeroing M mantissa
// bits (discarding small relative differences).
package main

import (
	"fmt"
	"log"

	"instantcheck"
)

func main() {
	app := instantcheck.WorkloadByName("ocean")
	opts := instantcheck.WorkloadOptions{}

	check := func(label string, camp instantcheck.Campaign) {
		rep, err := instantcheck.Check(camp, app.Builder(opts))
		if err != nil {
			log.Fatal(err)
		}
		verdict := "NONDETERMINISTIC"
		if rep.Deterministic() {
			verdict = "deterministic"
		}
		fmt.Printf("%-42s -> %-16s (%d/%d points ndet)\n", label, verdict, rep.NDetPoints, rep.Points())
		if !rep.Deterministic() {
			groups := rep.NDetDistGroups()
			if len(groups) > 0 {
				fmt.Printf("%45s first nondet distribution: %v over %d checkpoints\n",
					"", groups[0].Distribution, groups[0].Checkpoints)
			}
		}
	}

	fmt.Println("ocean, 30 runs x 8 threads:")
	check("bit-by-bit comparison", instantcheck.Campaign{})
	check("floor to 0.001 (paper default)", instantcheck.Campaign{RoundFP: true})
	check("floor to 6 decimal digits", instantcheck.Campaign{
		RoundFP:  true,
		Rounding: instantcheck.RoundFloorDecimal(6),
	})
	check("zero 24 mantissa bits (relative)", instantcheck.Campaign{
		RoundFP:  true,
		Rounding: instantcheck.RoundZeroMantissa(24),
	})
	fmt.Println()
	fmt.Println("Only the comparison policy changes — the program always runs at")
	fmt.Println("full precision; rounding happens in front of the hash unit.")
}
