// Package statediff implements the bug-localization tool of paper §2.3.
// When InstantCheck reports nondeterminism at a checkpoint, the tool
// compares the full memory states of the two differing runs, finds the
// addresses whose values differ, and maps each back to the allocation site
// that produced it and the offset within the allocation block (array index
// or struct field). The programmer then knows both the code region (between
// the last deterministic and the first nondeterministic checkpoint) and the
// part of memory that behaved nondeterministically.
package statediff

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"instantcheck/internal/mem"
)

// Difference is one word whose value differs between the two states.
type Difference struct {
	// Addr is the differing word's address.
	Addr uint64
	// Site is the allocation site of the block containing Addr ("?" when
	// the word belongs to no block in either snapshot).
	Site string
	// Seq is the per-site allocation sequence number of the block.
	Seq int
	// Offset is the word offset of Addr within its block.
	Offset int
	// Kind is the block's element kind.
	Kind mem.Kind
	// A and B are the two observed raw values.
	A uint64
	// B is the word value in the second state.
	B uint64
	// OnlyIn is "" when the word is live in both states, "A" or "B" when
	// it is live in just one (footprint divergence).
	OnlyIn string
}

// Format renders the difference the way the paper's tool reports it:
// allocation site plus offset, then the values.
func (d Difference) Format() string {
	loc := fmt.Sprintf("%s#%d+%d", d.Site, d.Seq, d.Offset)
	switch {
	case d.OnlyIn != "":
		return fmt.Sprintf("%#012x  %-28s only in state %s", d.Addr, loc, d.OnlyIn)
	case d.Kind == mem.KindFloat:
		return fmt.Sprintf("%#012x  %-28s %v != %v", d.Addr, loc,
			math.Float64frombits(d.A), math.Float64frombits(d.B))
	default:
		return fmt.Sprintf("%#012x  %-28s %#x != %#x", d.Addr, loc, d.A, d.B)
	}
}

// SiteSummary aggregates differences per allocation site — the first thing
// a programmer scans to see which structure went nondeterministic.
type SiteSummary struct {
	// Site is the allocation-site label.
	Site string
	// Words is the number of differing words attributed to the site.
	Words int
	// Offsets lists the distinct differing word offsets (sorted), so field
	// patterns ("always offset 3") are visible at a glance.
	Offsets []int
}

// Diff compares two snapshots and returns the differing words in address
// order. Snapshots store their words as sorted parallel slices, so the
// comparison is a single linear merge walk — no set construction or sort.
func Diff(a, b *mem.Snapshot) []Difference {
	var out []Difference
	emit := func(addr, va, vb uint64, onlyIn string) {
		d := Difference{Addr: addr, A: va, B: vb, OnlyIn: onlyIn, Site: "?"}
		blk := a.BlockAt(addr)
		if blk == nil {
			blk = b.BlockAt(addr)
		}
		if blk != nil {
			d.Site = blk.Site
			d.Seq = blk.Seq
			d.Offset = int((addr - blk.Base) / mem.WordSize)
			d.Kind = blk.Kind
		}
		out = append(out, d)
	}
	i, j := 0, 0
	for i < len(a.Addrs) && j < len(b.Addrs) {
		switch {
		case a.Addrs[i] < b.Addrs[j]:
			emit(a.Addrs[i], a.Vals[i], 0, "A")
			i++
		case a.Addrs[i] > b.Addrs[j]:
			emit(b.Addrs[j], 0, b.Vals[j], "B")
			j++
		default:
			if a.Vals[i] != b.Vals[j] {
				emit(a.Addrs[i], a.Vals[i], b.Vals[j], "")
			}
			i, j = i+1, j+1
		}
	}
	for ; i < len(a.Addrs); i++ {
		emit(a.Addrs[i], a.Vals[i], 0, "A")
	}
	for ; j < len(b.Addrs); j++ {
		emit(b.Addrs[j], 0, b.Vals[j], "B")
	}
	return out
}

// Summarize groups differences by allocation site, largest first.
func Summarize(diffs []Difference) []SiteSummary {
	type agg struct {
		words   int
		offsets map[int]bool
	}
	bySite := make(map[string]*agg)
	var order []string
	for _, d := range diffs {
		key := fmt.Sprintf("%s#%d", d.Site, d.Seq)
		a := bySite[key]
		if a == nil {
			a = &agg{offsets: make(map[int]bool)}
			bySite[key] = a
			order = append(order, key)
		}
		a.words++
		a.offsets[d.Offset] = true
	}
	out := make([]SiteSummary, 0, len(order))
	for _, key := range order {
		a := bySite[key]
		offs := make([]int, 0, len(a.offsets))
		for o := range a.offsets {
			offs = append(offs, o)
		}
		sort.Ints(offs)
		out = append(out, SiteSummary{Site: key, Words: a.words, Offsets: offs})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Words > out[j].Words })
	return out
}

// Render produces the tool's human-readable report: per-site summary first,
// then up to maxLines individual differences.
func Render(diffs []Difference, maxLines int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d differing words\n", len(diffs))
	for _, s := range Summarize(diffs) {
		offs := make([]string, 0, len(s.Offsets))
		for _, o := range s.Offsets {
			offs = append(offs, fmt.Sprint(o))
		}
		const maxOffs = 12
		shown := offs
		suffix := ""
		if len(shown) > maxOffs {
			shown = shown[:maxOffs]
			suffix = ",…"
		}
		fmt.Fprintf(&sb, "  site %-28s %6d words at offsets [%s%s]\n",
			s.Site, s.Words, strings.Join(shown, ","), suffix)
	}
	if maxLines > 0 {
		n := len(diffs)
		if n > maxLines {
			n = maxLines
		}
		for _, d := range diffs[:n] {
			sb.WriteString("  " + d.Format() + "\n")
		}
		if len(diffs) > n {
			fmt.Fprintf(&sb, "  … %d more\n", len(diffs)-n)
		}
	}
	return sb.String()
}
