package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"instantcheck/internal/farm"
)

// statsDaemon fakes the two endpoints remote stats consumes.
func statsDaemon(t *testing.T, metrics string) *farm.Client {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"status":"ok","uptime_seconds":75.4,"jobs":2,"running":1,"queue_depth":1,"store_path":"/var/farm.log"}`)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, metrics)
	})
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	return farm.NewClient(hs.URL)
}

const statsExposition = `# HELP checkfarm_jobs_submitted_total Campaigns accepted.
# TYPE checkfarm_jobs_submitted_total counter
checkfarm_jobs_submitted_total 2
# TYPE instantcheck_stores_total counter
instantcheck_stores_total{scheme="HW-InstantCheck_Inc"} 4228
# TYPE instantcheck_traverse_dirty_pages_total counter
instantcheck_traverse_dirty_pages_total 150
# TYPE instantcheck_traverse_live_pages_total counter
instantcheck_traverse_live_pages_total 4000
# TYPE instantcheck_storebuffer_flushes_total counter
instantcheck_storebuffer_flushes_total{scheme="HW-InstantCheck_Inc"} 40
instantcheck_storebuffer_flushes_total{scheme="SW-InstantCheck_Inc"} 10
# TYPE instantcheck_storebuffer_drained_words_total counter
instantcheck_storebuffer_drained_words_total{scheme="HW-InstantCheck_Inc"} 800
instantcheck_storebuffer_drained_words_total{scheme="SW-InstantCheck_Inc"} 200
# TYPE instantcheck_storebuffer_coalesced_total counter
instantcheck_storebuffer_coalesced_total{scheme="HW-InstantCheck_Inc"} 2400
instantcheck_storebuffer_coalesced_total{scheme="SW-InstantCheck_Inc"} 600
# TYPE checkfarm_detection_runs_total counter
checkfarm_detection_runs_total 2
# TYPE instantcheck_detection_events_total counter
instantcheck_detection_events_total{kind="read"} 5200
instantcheck_detection_events_total{kind="write"} 1800
# TYPE checkfarm_run_duration_seconds histogram
checkfarm_run_duration_seconds_bucket{le="0.01"} 3
checkfarm_run_duration_seconds_bucket{le="+Inf"} 4
checkfarm_run_duration_seconds_sum 1
checkfarm_run_duration_seconds_count 4
`

// TestRemoteStatsRendering drives the stats verb against a fake daemon and
// checks the health header, counter lines, label rendering and histogram
// folding.
func TestRemoteStatsRendering(t *testing.T) {
	c := statsDaemon(t, statsExposition)
	var out bytes.Buffer
	if err := remoteStats(context.Background(), c, nil, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"ok  up 1m15s  2 job(s), 1 running, 1 queued",
		"store /var/farm.log",
		"checkfarm_jobs_submitted_total",
		"instantcheck_stores_total{scheme=HW-InstantCheck_Inc}",
		"4228",
		"checkfarm_run_duration_seconds", "count 4, mean 0.25",
		"traverse delta: 150 of 4000 live pages rehashed (3.8% dirty)",
		"store buffer: 3000 stores coalesced into 1000 drained words over 50 flushes (75.0% absorbed)",
		"detection: 2 run(s), 5200 read / 1800 write events observed",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("stats output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "_bucket") {
		t.Errorf("rendered output leaks histogram buckets:\n%s", text)
	}

	// -raw dumps the exposition untouched.
	out.Reset()
	if err := remoteStats(context.Background(), c, []string{"-raw"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != statsExposition {
		t.Errorf("-raw output differs from served exposition:\n%s", out.String())
	}
}

// TestRemoteStatsFleetLine: a fleet-mode daemon's exposition adds the fleet
// summary line (per-worker lease counters folded to a total); a non-fleet
// daemon's never shows it.
func TestRemoteStatsFleetLine(t *testing.T) {
	fleetExposition := statsExposition + `# TYPE checkfleet_workers_live gauge
checkfleet_workers_live 3
# TYPE checkfleet_shards_leased_total counter
checkfleet_shards_leased_total{worker="w0"} 4
checkfleet_shards_leased_total{worker="w1"} 3
# TYPE checkfleet_shards_completed_total counter
checkfleet_shards_completed_total 6
# TYPE checkfleet_shards_expired_total counter
checkfleet_shards_expired_total 1
# TYPE checkfleet_runs_requeued_total counter
checkfleet_runs_requeued_total 5
`
	c := statsDaemon(t, fleetExposition)
	var out bytes.Buffer
	if err := remoteStats(context.Background(), c, nil, &out); err != nil {
		t.Fatal(err)
	}
	want := "fleet: 3 worker(s) live, shards 7 leased / 6 completed / 1 expired, 5 run(s) re-queued"
	if !strings.Contains(out.String(), want) {
		t.Errorf("stats output missing %q:\n%s", want, out.String())
	}

	out.Reset()
	c = statsDaemon(t, statsExposition)
	if err := remoteStats(context.Background(), c, nil, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "fleet:") {
		t.Errorf("non-fleet daemon rendered a fleet line:\n%s", out.String())
	}
}

// TestRemoteStatsRejectsMalformed: a daemon serving a broken exposition is
// reported as such instead of rendered half-parsed.
func TestRemoteStatsRejectsMalformed(t *testing.T) {
	c := statsDaemon(t, "what even is this{")
	if err := remoteStats(context.Background(), c, nil, io.Discard); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Errorf("malformed exposition accepted: %v", err)
	}
}
