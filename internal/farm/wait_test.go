package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakyJobServer serves /api/v1/jobs/{id} from a scripted sequence of
// responses: "fail" returns 503, "running"/"done" return a job in that
// state. The last entry repeats.
func flakyJobServer(t *testing.T, script []string) *Client {
	t.Helper()
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(calls.Add(1)) - 1
		if i >= len(script) {
			i = len(script) - 1
		}
		switch script[i] {
		case "fail":
			http.Error(w, `{"error":"daemon restarting"}`, http.StatusServiceUnavailable)
		case "running":
			writeJSON(w, http.StatusOK, &Job{ID: "j000001", State: JobRunning})
		case "done":
			writeJSON(w, http.StatusOK, &Job{ID: "j000001", State: JobDone})
		default:
			t.Errorf("bad script entry %q", script[i])
		}
	}))
	t.Cleanup(hs.Close)
	return NewClient(hs.URL)
}

// TestWaitRetriesTransientErrors is the client-restart regression test:
// polls that fail while a daemon restarts must not abort the wait. The old
// Wait returned the first poll error to the caller, so `instantcheck remote
// wait` died the moment the daemon bounced.
func TestWaitRetriesTransientErrors(t *testing.T) {
	// A burst of failures below the limit, recovery, another burst (the
	// success in between must reset the budget), then terminal.
	script := []string{
		"fail", "fail", "fail", "fail", "fail", "fail", "fail", // 7 < limit 8
		"running",
		"fail", "fail", "fail", "fail", "fail", "fail", "fail",
		"done",
	}
	c := flakyJobServer(t, script)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	job, err := c.Wait(ctx, "j000001", time.Millisecond)
	if err != nil {
		t.Fatalf("wait through transient failures: %v", err)
	}
	if job.State != JobDone {
		t.Fatalf("job state = %s", job.State)
	}
}

// TestWaitGivesUpAfterConsecutiveErrors: a daemon that stays down exhausts
// the error budget and Wait fails with the last error, not a hang.
func TestWaitGivesUpAfterConsecutiveErrors(t *testing.T) {
	c := flakyJobServer(t, []string{"fail"})
	c.WaitErrorLimit = 3
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := c.Wait(ctx, "j000001", time.Millisecond)
	if err == nil {
		t.Fatal("wait against a dead daemon succeeded")
	}
	if !strings.Contains(err.Error(), "consecutive poll failures") || !strings.Contains(err.Error(), "daemon restarting") {
		t.Errorf("error does not explain the give-up: %v", err)
	}
}

// TestWaitRespectsContext: cancellation cuts through the backoff sleep.
func TestWaitRespectsContext(t *testing.T) {
	c := flakyJobServer(t, []string{"running"})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Wait(ctx, "j000001", 10*time.Second)
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("wait ignored the context for %v", elapsed)
	}
}

// TestWaitCancelCutsHangingPoll is the SIGINT regression test: the poll
// request itself carries the context, so canceling mid-request aborts a
// poll that would otherwise hang forever on an unresponsive daemon. The
// old client built requests without a context — Wait could only notice
// cancellation between polls, never during one.
func TestWaitCancelCutsHangingPoll(t *testing.T) {
	block := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block // hang every request until the test ends
	}))
	t.Cleanup(func() {
		close(block)
		hs.Close()
	})
	c := NewClient(hs.URL)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Wait(ctx, "j000001", time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("err = %v, want context cancellation", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v: the in-flight poll was not aborted", elapsed)
	}
}

// TestClientWaitSurvivesDaemonRestart is the end-to-end acceptance
// scenario: checkd is killed mid-campaign and restarted on the same
// address and store while a Client.Wait is in flight. The waiter must ride
// out the restart, the resumed campaign must finish, and the final report
// must be byte-identical to an uninterrupted campaign's.
func TestClientWaitSurvivesDaemonRestart(t *testing.T) {
	dir := t.TempDir()
	spec := smokeSpec("radix", "crc64")

	// Reference: an uninterrupted daemon's report.
	_, cref := startTestDaemon(t, filepath.Join(dir, "ref.log"), Options{RunWorkers: 4})
	refJob, err := cref.Submit(bg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, cref, refJob.ID).State; st != JobDone {
		t.Fatalf("reference job state %s", st)
	}
	wantRep, err := cref.Report(bg, refJob.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(wantRep)
	if err != nil {
		t.Fatal(err)
	}

	// Daemon 1 on a real TCP listener (httptest can't rebind its address).
	storePath := filepath.Join(dir, "farm.log")
	store1, err := OpenStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := NewServer(store1, Options{RunWorkers: 1, JobWorkers: 1})
	ctx1, cancel1 := context.WithCancel(context.Background())
	srv1.Start(ctx1)
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln1.Addr().String()
	hs1 := &http.Server{Handler: srv1.Handler()}
	go hs1.Serve(ln1)

	c := NewClient("http://" + addr)
	job, err := c.Submit(bg, spec)
	if err != nil {
		t.Fatal(err)
	}

	// The waiter under test, in flight across the restart.
	type waitResult struct {
		job *Job
		err error
	}
	waited := make(chan waitResult, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		j, err := c.Wait(ctx, job.ID, 20*time.Millisecond)
		waited <- waitResult{j, err}
	}()

	// Kill daemon 1 once at least one run is durably committed, so the
	// restart genuinely resumes mid-campaign.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if jl := store1.Job(job.ID); jl != nil && len(jl.CompletedRuns()) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no run committed before kill deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
	hs1.Close() // drops the listener and every open connection
	cancel1()
	srv1.Wait()
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}
	committed := len(func() []int {
		s, _ := OpenStore(storePath)
		defer s.Close()
		return s.Job(job.ID).CompletedRuns()
	}())

	// Let the waiter experience the dead daemon at least once.
	time.Sleep(100 * time.Millisecond)

	// Daemon 2: same store, same address.
	store2, err := OpenStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(store2, Options{RunWorkers: 4})
	srv2.Resume()
	ctx2, cancel2 := context.WithCancel(context.Background())
	srv2.Start(ctx2)
	var ln2 net.Listener
	for i := 0; ; i++ {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i >= 500 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	hs2 := &http.Server{Handler: srv2.Handler()}
	go hs2.Serve(ln2)
	t.Cleanup(func() {
		hs2.Close()
		cancel2()
		srv2.Wait()
		store2.Close()
	})

	res := <-waited
	if res.err != nil {
		t.Fatalf("waiter did not survive the restart: %v", res.err)
	}
	if res.job.State != JobDone || res.job.Error != "" {
		t.Fatalf("resumed job %s: %s", res.job.State, res.job.Error)
	}
	gotRep, err := c.Report(bg, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(gotRep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("report after restart differs from uninterrupted run (killed with %d runs committed):\nwant %s\ngot  %s",
			committed, want, got)
	}
}
