package farm

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"instantcheck/internal/core"
	"instantcheck/internal/sim"
)

// TestAppendRunIdempotent pins the store contract a fleet's straggler
// re-dispatch relies on: re-committing a run with identical content is a
// durable no-op (no duplicate lines), while conflicting content — which
// deterministic replay makes impossible short of a harness bug — errors.
func TestAppendRunIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "farm.log")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	id := s.NextID()
	if err := s.BeginJob(id, JobSpec{App: "radix"}); err != nil {
		t.Fatal(err)
	}
	res := testResult(500, 3)
	if err := s.AppendRun(id, 2, res); err != nil {
		t.Fatal(err)
	}
	size := func() int64 {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	before := size()

	// Identical re-append: accepted, and nothing reaches the log.
	if err := s.AppendRun(id, 2, res); err != nil {
		t.Fatalf("idempotent re-append rejected: %v", err)
	}
	if after := size(); after != before {
		t.Errorf("duplicate append grew the log by %d bytes", after-before)
	}

	// Conflicting content: loud error, log still untouched.
	if err := s.AppendRun(id, 2, testResult(501, 3)); err == nil || !strings.Contains(err.Error(), "disagrees") {
		t.Errorf("conflicting append: err = %v, want disagreement", err)
	}
	if err := s.AppendRun(id, 2, testResult(500, 2)); err == nil {
		t.Error("append with different checkpoint count accepted")
	}
	if after := size(); after != before {
		t.Errorf("conflicting append wrote %d bytes", after-before)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The reloaded store holds exactly one committed copy of the run.
	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	jl := s2.Job(id)
	if got := jl.CompletedRuns(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("completed runs = %v", got)
	}
	if rl := jl.Run(2); len(rl.Checkpoints) != 3 || rl.Checkpoints[0].SH != 500 {
		t.Errorf("run 2 reloaded as %+v", rl)
	}
}

// duplicatingDispatcher delivers every run twice from concurrent
// goroutines — the worst-case shape of a re-dispatched shard racing its
// zombie lease. runJob must dedup by run index and still assemble the
// canonical report.
type duplicatingDispatcher struct {
	delivered map[int]int
	mu        sync.Mutex
}

func (d *duplicatingDispatcher) Dispatch(ctx context.Context, id JobID, spec JobSpec, runner *core.Runner, need []int,
	deliver func(run int, res *sim.Result) error) error {

	var wg sync.WaitGroup
	errs := make(chan error, 2*len(need))
	for _, run := range need {
		for attempt := 0; attempt < 2; attempt++ {
			wg.Add(1)
			go func(run int) {
				defer wg.Done()
				res, err := runner.Replay(run)
				if err == nil {
					err = deliver(run, res)
				}
				if err != nil {
					errs <- err
					return
				}
				d.mu.Lock()
				d.delivered[run]++
				d.mu.Unlock()
			}(run)
		}
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// TestDispatcherSeamWithDuplicates runs a campaign through a custom
// dispatcher wired in via Options.Dispatcher, with every run delivered
// twice, and checks the report matches the local pool's byte for byte and
// the store holds exactly one record set.
func TestDispatcherSeamWithDuplicates(t *testing.T) {
	spec := smokeSpec("radix", "mix64")

	// Reference: the default local pool.
	want, _, err := runJob(context.Background(), "j000000", spec, nil, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	disp := &duplicatingDispatcher{delivered: make(map[int]int)}
	_, c := startTestDaemon(t, filepath.Join(dir, "farm.log"), Options{RunWorkers: 4, Dispatcher: disp})
	job, err := c.Submit(bg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if done := waitDone(t, c, job.ID); done.State != JobDone {
		t.Fatalf("job through duplicating dispatcher: %s: %s", done.State, done.Error)
	}
	got, err := c.Report(bg, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("report through dispatcher differs:\nlocal %+v\ndisp  %+v", want, got)
	}
	for run, n := range disp.delivered {
		if n != 2 {
			t.Errorf("run %d delivered %d times, want both copies accepted", run, n)
		}
	}
	if len(disp.delivered) != spec.Runs-1 {
		t.Errorf("dispatcher saw %d runs, want %d", len(disp.delivered), spec.Runs-1)
	}
}
