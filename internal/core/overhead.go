package core

import (
	"math"

	"instantcheck/internal/sim"
)

// CostModel holds the constants of the paper's §7.3 instruction-count
// overhead model. The paper takes software hashing to cost 5 instructions
// per byte (citing Jenkins' hash survey), charges the checking schemes for
// zeroing allocated memory ("HW-InstantCheck_Inc's overhead is due to
// zeroing-out memory locations to prevent hash corruption"), and otherwise
// computes *ideal lower bounds* for the software schemes: per-store hashing
// work for SW-Inc, state-sweep hashing work for SW-Tr, ignoring allocation-
// table maintenance and cache effects.
type CostModel struct {
	// SWHashInstrPerByte is the software hashing cost (paper: 5).
	SWHashInstrPerByte float64
	// BytesPerTerm is the input size of one h(addr, value) application:
	// an 8-byte address plus an 8-byte value.
	BytesPerTerm float64
	// HWIgnoreInstrPerWord is the per-word cost of deleting an ignored
	// word from the hash with hardware support: one load plus the
	// minus_hash and plus_hash instructions.
	HWIgnoreInstrPerWord float64
	// ZeroInstrPerWord is the cost of zero-filling one word at allocation
	// or erasing it at free (one store).
	ZeroInstrPerWord float64
	// BufferAppendInstr is the per-store cost of parking an update in the
	// per-thread store buffer instead of hashing it inline: one multiply-
	// shift probe, a key compare and a three-word slot write.
	BufferAppendInstr float64
}

// DefaultCostModel mirrors the paper's constants.
var DefaultCostModel = CostModel{
	SWHashInstrPerByte:   5,
	BytesPerTerm:         16,
	HWIgnoreInstrPerWord: 3,
	ZeroInstrPerWord:     1,
	BufferAppendInstr:    8,
}

// TrTableCosts models the overheads §4.2 attributes to a realistic (non-
// ideal) SW-InstantCheck_Tr: maintaining the table of allocated blocks with
// their type annotations (an insert per malloc, a delete per free) and the
// per-word table lookups while sweeping the state. Figure 6 deliberately
// ignores these ("ideal lower bound"); NonIdealSWTr adds them back so the
// gap can be quantified.
type TrTableCosts struct {
	// InsertInstr is the cost of registering one allocation (hashing the
	// site, storing extent and type annotation).
	InsertInstr float64
	// DeleteInstr is the cost of removing one allocation.
	DeleteInstr float64
	// LookupInstrPerWord is the per-swept-word cost of locating the word's
	// block and type annotation during traversal.
	LookupInstrPerWord float64
}

// DefaultTrTableCosts is a conventional accounting: a hash-table insert or
// delete runs tens of instructions, and the per-word lookup amortizes to a
// few instructions with block-sorted sweeping.
var DefaultTrTableCosts = TrTableCosts{
	InsertInstr:        60,
	DeleteInstr:        40,
	LookupInstrPerWord: 4,
}

// NonIdealSWTr returns the SW-InstantCheck_Tr overhead including the
// allocation-table maintenance of §4.2, normalized to Native.
func (cm CostModel) NonIdealSWTr(tc TrTableCosts, c sim.Counters) float64 {
	native := float64(c.Instr)
	if native == 0 {
		native = 1
	}
	zero := float64(c.AllocZeroWords+c.FreeEraseWords) * cm.ZeroInstrPerWord
	sweepWords := float64(c.CheckpointWords) - float64(c.IgnoredWordChecks)
	if sweepWords < 0 {
		sweepWords = 0
	}
	perTerm := cm.SWHashInstrPerByte * cm.BytesPerTerm
	table := float64(c.Allocs)*tc.InsertInstr +
		float64(c.Frees)*tc.DeleteInstr +
		sweepWords*tc.LookupInstrPerWord
	return (native + zero + sweepWords*perTerm + table) / native
}

// Overhead reports instruction counts for the four configurations of
// Figure 6, normalized to Native.
type Overhead struct {
	// Program names the workload.
	Program string
	// NativeInstr is the native instruction count (the denominator).
	NativeInstr uint64
	// HWInc, SWIncIdeal and SWTrIdeal are execution costs normalized to
	// Native (1.0 = no overhead). The paper reports HW ≈ 1.003 average,
	// SW-Inc-Ideal ≈ 3×, SW-Tr-Ideal ≈ 5× geometric mean.
	HWInc float64
	// SWIncIdeal is the ideal lower bound for SW-InstantCheck_Inc.
	SWIncIdeal float64
	// SWIncBuffered is SW-InstantCheck_Inc with the per-thread store
	// buffer: every store pays the cheap buffer append, but the two hash
	// applications are only charged for the pairs that survived
	// coalescing and elision to reach the drain kernel (measured by the
	// run's store-buffer counters). Equal to SWIncIdeal when the run was
	// not buffered.
	SWIncBuffered float64
	// SWTrIdeal is the ideal lower bound for SW-InstantCheck_Tr.
	SWTrIdeal float64
}

// Overheads evaluates the cost model on one run's counters. Any run's
// counters work — the checking schemes do not change what the program
// itself executes — so a single instrumented run yields all four bars,
// exactly as the paper's Pin model does.
func (cm CostModel) Overheads(program string, c sim.Counters) Overhead {
	native := float64(c.Instr)
	if native == 0 {
		native = 1
	}
	zero := float64(c.AllocZeroWords+c.FreeEraseWords) * cm.ZeroInstrPerWord

	// HW: hashing is free; the checking cost is zero-fill/erase plus the
	// explicit per-checkpoint deletion of ignored words.
	hw := native + zero + float64(c.IgnoredWordChecks)*cm.HWIgnoreInstrPerWord

	// SW-Inc ideal: for every store, hash the (addr, old) and (addr, new)
	// terms in software, plus one load for the old value. Free-erasure and
	// ignore-deletion pay the same two hash applications per word.
	perTerm := cm.SWHashInstrPerByte * cm.BytesPerTerm
	perStore := 2*perTerm + 1
	swInc := native + zero +
		float64(c.Stores)*perStore +
		float64(c.FreeEraseWords)*perStore +
		float64(c.IgnoredWordChecks)*perStore

	// SW-Inc buffered: stores and free erasures pay the buffer append;
	// only the pairs that reached the hash kernel — drained words plus
	// conflict evictions, measured by the run itself — pay the two hash
	// applications. Ignore deletion bypasses the buffer (minus_hash/
	// plus_hash with an explicit load) and costs what the ideal scheme
	// charges. An unbuffered run has no drain counters; the buffered
	// bound then degenerates to the ideal one.
	swIncBuf := swInc
	if c.StoreBufferFlushes > 0 {
		pairs := float64(c.StoreBufferDrainedWords + c.StoreBufferEvictions)
		swIncBuf = native + zero +
			float64(c.Stores+c.FreeEraseWords)*cm.BufferAppendInstr +
			pairs*2*perTerm +
			float64(c.IgnoredWordChecks)*perStore
	}

	// SW-Tr ideal: sweep the whole hashed state at every checkpoint,
	// hashing every live word; table maintenance and cache misses are
	// ignored (ideal). Ignored words simply aren't swept.
	sweepWords := float64(c.CheckpointWords) - float64(c.IgnoredWordChecks)
	if sweepWords < 0 {
		sweepWords = 0
	}
	swTr := native + zero + sweepWords*perTerm

	return Overhead{
		Program:       program,
		NativeInstr:   c.Instr,
		HWInc:         hw / native,
		SWIncIdeal:    swInc / native,
		SWIncBuffered: swIncBuf / native,
		SWTrIdeal:     swTr / native,
	}
}

// GeoMean aggregates per-app overheads the way Figure 6's GEOM bar does.
func GeoMean(rows []Overhead) Overhead {
	if len(rows) == 0 {
		return Overhead{Program: "GEOM"}
	}
	var lhw, lsi, lsb, lst float64
	for _, r := range rows {
		lhw += math.Log(r.HWInc)
		lsi += math.Log(r.SWIncIdeal)
		b := r.SWIncBuffered
		if b == 0 { // row built without the buffered column
			b = r.SWIncIdeal
		}
		lsb += math.Log(b)
		lst += math.Log(r.SWTrIdeal)
	}
	n := float64(len(rows))
	return Overhead{
		Program:       "GEOM",
		HWInc:         math.Exp(lhw / n),
		SWIncIdeal:    math.Exp(lsi / n),
		SWIncBuffered: math.Exp(lsb / n),
		SWTrIdeal:     math.Exp(lst / n),
	}
}

// MeasureOverhead runs the program once under HW-InstantCheck_Inc (to
// exercise every counter, including ignore-deletion work) and evaluates the
// cost model.
func (c Campaign) MeasureOverhead(build Builder) (Overhead, error) {
	c, err := c.withDefaults()
	if err != nil {
		return Overhead{}, err
	}
	rep, err := Campaign{
		Runs:             1,
		Threads:          c.Threads,
		BaseScheduleSeed: c.BaseScheduleSeed,
		InputSeed:        c.InputSeed,
		SwitchInterval:   c.SwitchInterval,
		Scheme:           sim.HWInc,
		Hasher:           c.Hasher,
		RoundFP:          c.RoundFP,
		Rounding:         c.Rounding,
		Ignore:           c.Ignore,
	}.Check(build)
	if err != nil {
		return Overhead{}, err
	}
	return DefaultCostModel.Overheads(rep.Program, rep.Runs[0].Counters), nil
}
