package farm

// Explore jobs: the farm's second job kind. A check job replays a fixed
// set of schedules and compares full hash vectors; an explore job *hunts*
// — a search strategy (internal/explore) generates schedules one at a
// time, learns from each run's checkpoint hashes, and the campaign stops
// at the first State-Hash divergence. The store records every executed
// run exactly like a check job's (the hash log is the same interchange
// unit), plus one "explored" record carrying the search outcome, so a
// restarted daemon reassembles the report without re-searching.

import (
	"context"
	"fmt"
	"time"

	"instantcheck/internal/explore"
	"instantcheck/internal/sim"
)

// runExploreJob executes one explore campaign. Every executed run is
// committed to the store through AppendRun (idempotent: a re-run after a
// crash re-generates identical schedules from the same seeds), and the
// search outcome is made durable before the caller writes the jobend
// marker. The search itself is sequential — strategies learn run to run —
// so spec.Parallelism is ignored.
func runExploreJob(ctx context.Context, id JobID, spec JobSpec, store *Store, m *Metrics,
	progress func(done, total int)) (*Report, error) {

	camp, build, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	opts := explore.Options{
		Threads:        camp.Threads,
		Scheme:         camp.Scheme,
		RoundFP:        camp.RoundFP,
		InputSeed:      camp.InputSeed,
		SwitchInterval: camp.SwitchInterval,
		ScheduleSeed:   camp.BaseScheduleSeed,
		Hasher:         camp.Hasher,
		Ignore:         camp.Ignore,
	}
	strat, err := explore.NewStrategy(spec.Strategy, opts, spec.PCTDepth)
	if err != nil {
		return nil, err
	}
	budget := camp.Runs
	label := strat.Name()

	runStart := time.Now()
	out, err := explore.Explore(build, opts, strat, budget,
		func(run int, res *sim.Result) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			now := time.Now()
			m.observeRun(camp.Scheme, run, res, now.Sub(runStart))
			runStart = now
			m.observeExploreRun(label)
			if store != nil {
				if err := store.AppendRun(id, run, res); err != nil {
					return err
				}
			}
			if progress != nil {
				progress(run+1, budget)
			}
			return nil
		})
	if err != nil {
		return nil, err
	}

	wire := &ExploreOutcome{
		Strategy:         out.Strategy,
		Budget:           out.Budget,
		Runs:             out.Runs,
		Found:            out.Found,
		DivergedRun:      out.DivergedRun,
		DistinctOutcomes: out.DistinctOutcomes,
		DistinctFinals:   out.DistinctFinals,
		Hits:             out.Hits,
	}
	m.observeExplore(wire)
	if store != nil {
		if err := store.SetExploreOutcome(id, wire); err != nil {
			return nil, err
		}
	}
	return exploreReport(spec, wire), nil
}

// exploreReport projects a search outcome into the wire report. The
// hash-distribution fields stay zero — an explore campaign stops at the
// first divergence, so there is no full cross-run distribution to report;
// the Explore block is the payload.
func exploreReport(spec JobSpec, out *ExploreOutcome) *Report {
	return &Report{
		Program:       spec.App,
		Runs:          out.Runs,
		Deterministic: !out.Found,
		DetAtEnd:      !out.Found,
		FirstNDetRun:  out.DivergedRun,
		Explore:       out,
	}
}

// exploreReportFromLog rebuilds a finished explore job's report from the
// store — the resume path. The "explored" record is authoritative; the
// run records back the hash-log endpoint but cannot say why the search
// stopped.
func exploreReportFromLog(jl *JobLog) (*Report, error) {
	if jl.Explore == nil {
		return nil, fmt.Errorf("farm: job %s: done explore job has no explored record", jl.ID)
	}
	return exploreReport(jl.Spec, jl.Explore), nil
}
