package apps

import (
	"math"

	"instantcheck/internal/core"
	"instantcheck/internal/mem"
	"instantcheck/internal/sim"
)

func init() {
	register(&App{
		Name:          "blackscholes",
		Source:        "parsec",
		UsesFP:        true,
		ExpectedClass: core.ClassBitDeterministic,
		Build: func(o Options) sim.Program {
			p := &blackscholesProg{nt: o.threads(), options: 256, passes: 100}
			if o.Small {
				p.options, p.passes = 64, 8
			}
			return p
		},
	})
}

// blackscholesProg reproduces PARSEC's blackscholes: each simulation pass
// prices a portfolio of European options with the Black-Scholes closed
// form. Threads own disjoint option slices and every price is a pure
// function of the option's parameters, so despite heavy FP work the program
// is bit-by-bit deterministic. Determinism is checked at the end of each
// pass, matching the paper's per-iteration checks (Table 1: 101 points).
type blackscholesProg struct {
	nt      int
	options int
	passes  int

	spot, strike, rate, vol, tte, price uint64
	pass                                barrier
}

func (p *blackscholesProg) Name() string { return "blackscholes" }

func (p *blackscholesProg) Threads() int { return p.nt }

func (p *blackscholesProg) Setup(t *sim.Thread) {
	n := p.options
	p.spot = t.AllocStatic("static:bs.spot", n, mem.KindFloat)
	p.strike = t.AllocStatic("static:bs.strike", n, mem.KindFloat)
	p.rate = t.AllocStatic("static:bs.rate", n, mem.KindFloat)
	p.vol = t.AllocStatic("static:bs.vol", n, mem.KindFloat)
	p.tte = t.AllocStatic("static:bs.tte", n, mem.KindFloat)
	p.price = t.AllocStatic("static:bs.price", n, mem.KindFloat)
	rng := newXorshift(42)
	for i := 0; i < n; i++ {
		t.StoreF(idx(p.spot, i), 20+80*rng.unitFloat())
		t.StoreF(idx(p.strike, i), 20+80*rng.unitFloat())
		t.StoreF(idx(p.rate, i), 0.01+0.09*rng.unitFloat())
		t.StoreF(idx(p.vol, i), 0.05+0.55*rng.unitFloat())
		t.StoreF(idx(p.tte, i), 0.1+1.9*rng.unitFloat())
	}
	p.pass = newBarrier(t, "bs.pass")
}

func (p *blackscholesProg) Worker(t *sim.Thread) {
	lo, hi := span(p.options, p.nt, t.TID())
	for pass := 0; pass < p.passes; pass++ {
		// Each pass perturbs the rate the way PARSEC's NUM_RUNS loop
		// reprices the same portfolio; the perturbation is a pure function
		// of the pass index so every run computes identical prices.
		bump := 1 + 0.001*float64(pass)
		for i := lo; i < hi; i++ {
			s := t.LoadF(idx(p.spot, i))
			k := t.LoadF(idx(p.strike, i))
			r := t.LoadF(idx(p.rate, i)) * bump
			v := t.LoadF(idx(p.vol, i))
			tt := t.LoadF(idx(p.tte, i))
			// Charge the CNDF evaluations and exp/log work the closed
			// form performs per option.
			t.Compute(180)
			t.StoreF(idx(p.price, i), blackScholesCall(s, k, r, v, tt))
		}
		p.pass.await(t)
	}
}

// blackScholesCall is the closed-form call price.
func blackScholesCall(s, k, r, v, tt float64) float64 {
	sqrtT := math.Sqrt(tt)
	d1 := (math.Log(s/k) + (r+v*v/2)*tt) / (v * sqrtT)
	d2 := d1 - v*sqrtT
	return s*cndf(d1) - k*math.Exp(-r*tt)*cndf(d2)
}

// cndf is the cumulative normal distribution function.
func cndf(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
