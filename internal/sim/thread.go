package sim

import (
	"math"
	"runtime"
	"strings"
	"sync"

	"instantcheck/internal/mem"
	"instantcheck/internal/mhm"
	"instantcheck/internal/sched"
)

// Thread is the execution context handed to a Program's Setup and Worker
// functions. All simulated work — memory access, synchronization,
// allocation, I/O, library calls — goes through Thread methods so the
// machine can observe it, exactly as Pin-instrumented binaries expose these
// events to the paper's prototypes.
//
// The init thread (Setup phase) has TID() == -1 and never yields; worker
// threads yield at every operation, giving the random scheduler its
// preemption points.
type Thread struct {
	m   *Machine
	tid int
	// sch caches m.sch for worker threads; the init thread carries an
	// inert scheduler instead, so the per-operation yield is an
	// unconditional counter decrement that inlines into every instrumented
	// accessor.
	sch *sched.Scheduler
	// mm, ctr, and ev cache m.Mem, &m.counters, and m.cfg.Events: the
	// per-operation accessors touch all three, and loading them once at
	// thread construction saves a chase through t.m on every simulated
	// instruction.
	mm    *mem.Memory
	ctr   *Counters
	ev    EventListener
	unit  *mhm.Unit // nil when the scheme is not incremental
	instr uint64
}

// TID returns the worker thread id, or -1 for the init thread.
func (t *Thread) TID() int { return t.tid }

// Machine returns the machine this thread runs on.
func (t *Thread) Machine() *Machine { return t.m }

// Instr returns the native instructions this thread has executed so far.
func (t *Thread) Instr() uint64 { return t.instr }

func (t *Thread) charge(n uint64) { t.instr += n }

func (t *Thread) yield() { t.sch.Yield() }

// Compute charges n units of pure computation (arithmetic that touches no
// shared memory) and offers a preemption point.
func (t *Thread) Compute(n int) {
	if n > 0 {
		t.charge(uint64(n) * CostCompute)
	}
	t.yield()
}

// Load reads the integer word at addr.
//
// The four data accessors (Load, LoadF, Store, StoreF) are noinline so the
// program/accessor boundary is always a physical stack frame: the frame-
// pointer walk behind Thread.PC and the runtime.Callers unwind behind
// Thread.CallersPC then resolve identical access pcs. An inlined accessor
// would exist only as an inline-table entry, which Callers expands into a
// synthetic logical frame the raw walk cannot see.
//
//go:noinline
func (t *Thread) Load(addr uint64) uint64 {
	t.charge(CostLoad)
	t.ctr.Loads++
	t.yield()
	if ev := t.ev; ev != nil {
		t.ctr.EventReads++
		ev.OnRead(t, addr)
	}
	if v, ok := t.mm.LoadFast(addr); ok {
		return v
	}
	return t.mm.Load(addr)
}

// LoadF reads the float64 at addr.
//
//go:noinline
func (t *Thread) LoadF(addr uint64) float64 {
	t.charge(CostLoad)
	t.ctr.Loads++
	t.yield()
	if ev := t.ev; ev != nil {
		t.ctr.EventReads++
		ev.OnRead(t, addr)
	}
	if v, ok := t.mm.LoadFast(addr); ok {
		return math.Float64frombits(v)
	}
	return math.Float64frombits(t.mm.Load(addr))
}

// accessorFrames memoizes, per return-address pc, whether the frame belongs
// to a Thread accessor (the "instantcheck/internal/sim.(*Thread)." methods).
// PC consults it on every unwind; symbolization runs once per distinct pc.
var accessorFrames sync.Map // uintptr -> bool

func isAccessorFrame(pc uintptr) bool {
	if v, ok := accessorFrames.Load(pc); ok {
		return v.(bool)
	}
	// pc is a return address: the call instruction lives at pc-1 (and the
	// subtraction also keeps a tail call attributed to the caller's frame).
	const prefix = "instantcheck/internal/sim.(*Thread)."
	fn := runtime.FuncForPC(pc - 1)
	name := ""
	if fn != nil {
		name = fn.Name()
	}
	// The unwinders themselves are Thread methods but not accessors: PC
	// shows up as a frame when it falls back to CallersPC, and counting it
	// as part of the accessor run would truncate the scan.
	in := strings.HasPrefix(name, prefix) && name != prefix+"PC" && name != prefix+"CallersPC"
	accessorFrames.Store(pc, in)
	return in
}

// PC returns the program counter of the source line that invoked the
// Thread accessor currently reporting an event: the instrumented access
// site. Listeners pull it lazily — only on their slow path (first access
// of an epoch, or assembling a race report) — so the common same-epoch
// access pays no stack unwinding at all. Resolve the result to file:line
// with SitePos.
//
// On amd64 the capture walks the frame-pointer chain directly (a handful
// of loads, the execution tracer's unwinding technique) instead of
// calling runtime.Callers, which decodes pcvalue and inline tables for
// every frame it visits and dominates the cost of a detection run.
// Frame-pointer capture returns raw return addresses; the scan below
// never relies on inline expansion, and the resulting pc is the same
// return address runtime.Callers reports, so attribution is identical.
// If the chain is broken or too deep, or on other architectures, PC
// falls back to CallersPC.
func (t *Thread) PC() uintptr {
	var pcs [8]uintptr
	n := int(fpchain(&pcs))
	if p := scanAccessors(pcs[:n]); p != 0 {
		return p
	}
	return t.CallersPC()
}

// CallersPC is the runtime.Callers-based unwind behind PC: the capture
// cost every instrumented access paid before the epoch detector (one
// traceback with inline expansion per access). The vector-clock
// reference detector pulls through it directly so the BENCH_8 A/B
// baseline keeps the original architecture's per-access cost; it also
// backstops PC when frame pointers cannot be walked. Both captures
// return the same pc for the same access.
func (t *Thread) CallersPC() uintptr {
	var pcs [8]uintptr
	n := runtime.Callers(2, pcs[:])
	return scanAccessors(pcs[:n])
}

// scanAccessors finds the outermost contiguous run of Thread-accessor
// frames (Load, Store, store, ...; none of them are inlinable) and
// returns the frame just above it — the instrumented access site — so
// the unwind works at any call depth inside the listener. Eight frames
// always cover the listener's own depth (at most a handful of detector
// frames below the accessor run) plus the access site.
func scanAccessors(pcs []uintptr) uintptr {
	last := -1
	for i, pc := range pcs {
		if isAccessorFrame(pc) {
			last = i
		} else if last >= 0 {
			break
		}
	}
	if last >= 0 && last+1 < len(pcs) {
		return pcs[last+1]
	}
	return 0
}

// sitePosCache memoizes SitePos's pc→(file, line) resolution: report
// assembly and the static/dynamic cross-check resolve the same handful of
// access sites over and over, and runtime.CallersFrames both allocates and
// walks the inlining tables on every call.
var sitePosCache sync.Map // uintptr -> sitePosEntry

type sitePosEntry struct {
	file string
	line int
}

// SitePos resolves an access pc reported to an EventListener into the
// source file and line of the instrumented call, following inlining.
func SitePos(pc uintptr) (file string, line int) {
	if pc == 0 {
		return "", 0
	}
	if v, ok := sitePosCache.Load(pc); ok {
		e := v.(sitePosEntry)
		return e.file, e.line
	}
	frame, _ := runtime.CallersFrames([]uintptr{pc}).Next()
	sitePosCache.Store(pc, sitePosEntry{frame.File, frame.Line})
	return frame.File, frame.Line
}

// Store writes an integer word at addr. The address must belong to a
// KindWord block: the compiler knows which stores are FP stores (§5), and
// the simulator enforces that the instruction kind matches the allocation's
// type annotation so the incremental and traversal schemes always round the
// same words.
//
//go:noinline
func (t *Thread) Store(addr, value uint64) {
	t.store(addr, value, false)
}

// StoreF writes a float64 at addr; the address must belong to a KindFloat
// block. FP stores are the ones routed through the MHM round-off unit.
//
//go:noinline
func (t *Thread) StoreF(addr uint64, value float64) {
	t.store(addr, math.Float64bits(value), true)
}

func (t *Thread) store(addr, value uint64, isFP bool) {
	t.charge(CostStore)
	t.ctr.Stores++
	if isFP {
		t.ctr.FPStores++
	}
	t.checkKind(addr, isFP)
	if ev := t.ev; ev != nil {
		t.ctr.EventWrites++
		ev.OnWrite(t, addr)
	}
	switch t.m.cfg.Scheme {
	case SWIncNonAtomic:
		// §4.1 caveat: the instrumentation reads the old value first,
		// then the store happens after a preemption window. Under a
		// write-write race another thread's store can land in between,
		// making `stale` differ from the value the store replaces and
		// corrupting the hash.
		stale := t.mm.Peek(addr)
		t.yield()
		t.mm.Store(addr, value)
		if t.unit != nil {
			t.unit.OnStore(addr, stale, value, isFP)
		}
	default:
		t.yield()
		old, ok := t.mm.StoreFast(addr, value)
		if !ok {
			old = t.mm.Store(addr, value)
		}
		if t.unit != nil {
			t.unit.OnStore(addr, old, value, isFP)
		}
	}
}

func (t *Thread) checkKind(addr uint64, isFP bool) {
	b := t.mm.BlockAt(addr)
	if b == nil {
		return // Store will panic with a better message
	}
	if isFP != (b.Kind == mem.KindFloat) {
		panic("sim: store kind mismatch at " + b.Site +
			": FP stores must target KindFloat blocks and integer stores KindWord blocks")
	}
}

// Malloc allocates words zero-filled 8-byte words at the given allocation
// site and returns the base address. Addresses are recorded to / replayed
// from the campaign's address log so that dynamic allocation behaves as
// fixed input (§5).
func (t *Thread) Malloc(site string, words int, kind mem.Kind) uint64 {
	t.charge(CostMalloc)
	t.ctr.Allocs++
	t.yield()
	b := t.mm.Alloc(site, words, kind)
	if t.m.cfg.AddrLog != nil {
		t.m.cfg.AddrLog.Record(site, b.Seq, b.Base)
	}
	t.m.warmZeroSums(b.Base, words)
	// Zero-filling the allocation is checking-induced work (§7.3: the HW
	// scheme's only overhead); it needs no hash updates because a zero
	// word's delta from the zero initial state is itself zero.
	t.ctr.AllocZeroWords += uint64(words)
	return b.Base
}

// AllocStatic reserves static (never-freed) global state. Only the init
// thread may call it: static data is part of the program image.
func (t *Thread) AllocStatic(site string, words int, kind mem.Kind) uint64 {
	if t.tid >= 0 {
		panic("sim: AllocStatic outside the Setup phase")
	}
	base := t.mm.AllocStatic(site, words, kind)
	t.m.warmZeroSums(base, words)
	return base
}

// Free releases the block based at base. InstantCheck erases the freed
// contents from the hash — each word's current value is deleted and the
// word restored to the fixed all-zero initial state — so freed memory is
// "no longer part of the program state" (§7.2, pbzip2 discussion).
func (t *Thread) Free(base uint64) {
	t.charge(CostFree)
	t.ctr.Frees++
	t.yield()
	blk := t.mm.BlockAt(base)
	if blk == nil || blk.Base != base {
		panic("sim: Free of a non-block address")
	}
	isFP := blk.Kind == mem.KindFloat
	for i := 0; i < blk.Words; i++ {
		addr := base + uint64(i)*mem.WordSize
		old := t.mm.Store(addr, 0)
		// A still-zero word needs no erase: ⊖h(a,0)⊕h(a,0) cancels. Nonzero
		// words route through OnFree — the minus_hash/plus_hash pair, sent
		// down the store-buffer batch path when one is attached, where a
		// word freed in the window it was written in coalesces to old==new
		// and is elided without hashing h(a,0) at all.
		if t.unit != nil && old != 0 {
			t.unit.OnFree(addr, old, isFP)
		}
	}
	t.ctr.FreeEraseWords += uint64(blk.Words)
	t.mm.Free(base)
}

// Lock acquires mu, blocking in the scheduler if necessary.
func (t *Thread) Lock(mu *sched.Mutex) {
	t.charge(CostLock)
	t.yield()
	mu.Lock(t.m.sch, t.tid)
	if ev := t.ev; ev != nil {
		ev.OnAcquire(t.tid, mu)
	}
}

// Unlock releases mu.
func (t *Thread) Unlock(mu *sched.Mutex) {
	t.charge(CostUnlock)
	if ev := t.ev; ev != nil {
		ev.OnRelease(t.tid, mu)
	}
	mu.Unlock(t.m.sch, t.tid)
	t.yield()
}

// BarrierWait arrives at b and blocks until all parties have arrived. The
// episode is a determinism-checking point.
func (t *Thread) BarrierWait(b *sched.Barrier) {
	t.charge(CostBarrier)
	b.Await(t.m.sch, t.tid)
}

// CondWait waits on c (its mutex must be held). The internal mutex
// release/reacquire is surfaced to the event listener: without those
// edges a happens-before detector would see the waiter's critical
// section as unordered against every other one.
func (t *Thread) CondWait(c *sched.Cond) {
	t.charge(CostLock)
	if ev := t.ev; ev != nil {
		ev.OnRelease(t.tid, c.Mutex())
	}
	c.Wait(t.m.sch, t.tid)
	if ev := t.ev; ev != nil {
		ev.OnAcquire(t.tid, c.Mutex())
	}
}

// CondSignal wakes one waiter of c.
func (t *Thread) CondSignal(c *sched.Cond) {
	t.charge(CostUnlock)
	c.Signal(t.m.sch, t.tid)
	t.yield()
}

// CondBroadcast wakes all waiters of c.
func (t *Thread) CondBroadcast(c *sched.Cond) {
	t.charge(CostUnlock)
	c.Broadcast(t.m.sch, t.tid)
	t.yield()
}

// Checkpoint records a programmer-specified determinism-checking point
// (§2.3: "the programmer may also specify additional program points where
// she expects her program to be in a deterministic state", e.g. the end of
// a loop iteration or a hand-coded barrier). The state hash is captured
// immediately; ensuring the point is actually quiescent — other threads
// are not mid-update — is the programmer's responsibility, exactly as in
// the paper. With hardware support these checks are cheap enough to place
// "at as many points as desired".
func (t *Thread) Checkpoint(label string) {
	t.charge(2)
	if err := t.m.capture(label); err != nil {
		t.m.sch.Abort(err)
	}
}

// Yield offers an explicit preemption point (spin loops in hand-coded
// synchronization must call it so other threads can make progress).
func (t *Thread) Yield() {
	t.charge(1)
	if t.tid >= 0 {
		t.m.sch.Preempt(t.tid)
	}
}

// Write appends p to the program's standard output stream, which
// InstantCheck hashes at the libc write() boundary (§4.3).
func (t *Thread) Write(p []byte) { t.WriteFd(Stdout, p) }

// WriteFd appends p to the stream of descriptor fd; each descriptor's
// stream is hashed independently, as a full per-file implementation of
// §4.3 would do.
func (t *Thread) WriteFd(fd int, p []byte) {
	t.charge(uint64(len(p)/8+1) * CostOutput)
	t.yield()
	t.m.writeOutput(fd, p)
}

// Rand returns the next value of the thread's rand() stream. The results
// are recorded on the first run of a campaign and replayed on later runs:
// nondeterministic library calls are treated as input (§5).
func (t *Thread) Rand() uint64 {
	t.charge(CostEnvCall)
	t.yield()
	if t.m.cfg.Env == nil {
		panic("sim: Rand requires Config.Env (nondeterministic library calls must be record/replayed)")
	}
	return t.m.cfg.Env.Rand(t.envTID())
}

// Gettimeofday returns the thread's replayed gettimeofday() result in
// microseconds.
func (t *Thread) Gettimeofday() int64 {
	t.charge(CostEnvCall)
	t.yield()
	if t.m.cfg.Env == nil {
		panic("sim: Gettimeofday requires Config.Env")
	}
	return t.m.cfg.Env.Gettimeofday(t.envTID())
}

func (t *Thread) envTID() int {
	if t.tid < 0 {
		return -1
	}
	return t.tid
}

// StartHashing / StopHashing expose the MHM's start_hashing/stop_hashing
// instructions (§3.3) to analysis code running in the checked thread.
func (t *Thread) StartHashing() {
	if t.unit != nil {
		t.unit.StartHashing()
	}
}

// StopHashing disables store hashing for this thread.
func (t *Thread) StopHashing() {
	if t.unit != nil {
		t.unit.StopHashing()
	}
}
