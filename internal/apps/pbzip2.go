package apps

import (
	"instantcheck/internal/core"
	"instantcheck/internal/mem"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

func init() {
	register(&App{
		Name:          "pbzip2",
		Source:        "openSrc",
		UsesFP:        false,
		ExpectedClass: core.ClassStructDeterministic,
		Ignore: func() *sim.IgnoreSet {
			// The pointer field of each result-task record: it points to
			// memory the consumers allocated nondeterministically; the
			// buffers themselves are freed (and so leave the state), but
			// the dangling pointers remain (§7.2).
			n := pbzip2DefaultBlocks
			offsets := make([]int, n)
			for i := range offsets {
				offsets[i] = i*pbzip2ResultWords + 1 // the ptr word
			}
			return sim.NewIgnoreSet(sim.IgnoreRule{Site: "static:pb.results", Offsets: offsets})
		},
		Build: func(o Options) sim.Program {
			p := &pbzip2Prog{nt: o.threads(), blocks: pbzip2DefaultBlocks, blockWords: 32}
			if o.Small {
				p.blocks, p.blockWords = 8, 16
			}
			return p
		},
	})
}

const (
	pbzip2DefaultBlocks = 24
	pbzip2ResultWords   = 2 // {compressedLen, bufPtr}
)

// pbzip2Prog reproduces the pbzip2 block compressor: thread 0 produces
// fixed-size blocks of the input file into a bounded job queue; the
// remaining threads are consumers that race for jobs, compress them, and
// record {length, buffer pointer} in a results table indexed by block
// number. Thread 0 then writes the compressed blocks to the output stream
// in block order and frees the buffers.
//
// The program has very high internal nondeterminism — which consumer
// compresses which block is a race — but the compressed output and the
// final state are deterministic, EXCEPT for the pointer fields in the
// result records: consumers allocate their buffers in schedule order, so
// the recorded addresses differ across runs, and after the buffers are
// freed the pointers dangle. Ignoring those pointer words makes pbzip2
// externally deterministic (Table 1: 1 dynamic point — the end of the run;
// pbzip2 has no barriers). The output stream is additionally hashed at the
// write() boundary (§4.3) and is deterministic.
type pbzip2Prog struct {
	nt         int
	blocks     int
	blockWords int

	input   uint64 // blocks × blockWords input data
	results uint64 // blocks × {len, ptr}
	queue   uint64 // {head, tail, done} job-queue indices
	jobs    uint64 // ring of block numbers

	qLock  *sched.Mutex
	qAvail *sched.Cond // consumers wait for jobs
	qDone  uint64      // per-block completion flags
}

func (p *pbzip2Prog) Name() string { return "pbzip2" }

func (p *pbzip2Prog) Threads() int { return p.nt }

func (p *pbzip2Prog) Setup(t *sim.Thread) {
	n := p.blocks * p.blockWords
	p.input = t.AllocStatic("static:pb.input", n, mem.KindWord)
	p.results = t.AllocStatic("static:pb.results", p.blocks*pbzip2ResultWords, mem.KindWord)
	p.queue = t.AllocStatic("static:pb.queue", 3, mem.KindWord)
	p.jobs = t.AllocStatic("static:pb.jobs", p.blocks, mem.KindWord)
	p.qDone = t.AllocStatic("static:pb.done", p.blocks, mem.KindWord)
	rng := newXorshift(31)
	for i := 0; i < n; i++ {
		// Compressible input: long runs with occasional noise.
		v := uint64(i/7) % 5
		if rng.next()%11 == 0 {
			v = rng.next() % 256
		}
		t.Store(idx(p.input, i), v)
	}
	p.qLock = t.Machine().NewMutex("pb.queue")
	p.qAvail = t.Machine().NewCond("pb.avail", p.qLock)
}

const (
	qHead = 0
	qTail = 1
	qStop = 2
)

func (p *pbzip2Prog) Worker(t *sim.Thread) {
	if t.TID() == 0 {
		p.producer(t)
	} else {
		p.consumer(t)
	}
}

// producer enqueues every block, signals consumers, then writes the
// compressed stream in block order and frees the buffers.
func (p *pbzip2Prog) producer(t *sim.Thread) {
	for b := 0; b < p.blocks; b++ {
		t.Lock(p.qLock)
		tail := t.Load(idx(p.queue, qTail))
		t.Store(idx(p.jobs, int(tail)%p.blocks), uint64(b))
		t.Store(idx(p.queue, qTail), tail+1)
		t.CondSignal(p.qAvail)
		t.Unlock(p.qLock)
	}
	t.Lock(p.qLock)
	t.Store(idx(p.queue, qStop), 1)
	t.CondBroadcast(p.qAvail)
	t.Unlock(p.qLock)

	// Write blocks to the output stream in order, as pbzip2's file writer
	// does — per-block framing [index, primary, len16] + payload — then
	// release the compressed buffers.
	for b := 0; b < p.blocks; b++ {
		for t.Load(idx(p.qDone, b)) == 0 {
			t.Yield()
		}
		buf := t.Load(idx(p.results, b*pbzip2ResultWords+1))
		primary := t.Load(idx(buf, 0))
		length := int(t.Load(idx(buf, 1)))
		out := make([]byte, 0, length+4)
		out = append(out, byte(b), byte(primary), byte(length), byte(length>>8))
		for i := 0; i < length; i++ {
			out = append(out, byte(t.Load(idx(buf, 2+i))))
		}
		t.Write(out)
		t.Free(buf)
		// NOTE: the buffer pointer in the result record now dangles —
		// deliberately, mirroring the bug-prone-but-benign original.
	}
}

// consumer loops taking jobs and compressing blocks.
func (p *pbzip2Prog) consumer(t *sim.Thread) {
	for {
		t.Lock(p.qLock)
		for {
			head := t.Load(idx(p.queue, qHead))
			tail := t.Load(idx(p.queue, qTail))
			if head != tail {
				t.Store(idx(p.queue, qHead), head+1)
				b := int(t.Load(idx(p.jobs, int(head)%p.blocks)))
				t.Unlock(p.qLock)
				p.compress(t, b)
				break
			}
			if t.Load(idx(p.queue, qStop)) == 1 {
				t.Unlock(p.qLock)
				return
			}
			t.CondWait(p.qAvail)
		}
	}
}

// compressedWords is the fixed footprint of a compressed-block buffer:
// {primary, payloadLen} plus a worst-case RLE payload (2 bytes per input
// byte), one byte per word. A fixed footprint keeps address replay stable
// even though which consumer compresses which block is a race.
func (p *pbzip2Prog) compressedWords() int { return 2 + 2*p.blockWords }

// compress runs the real bzip2 core — Burrows-Wheeler transform,
// move-to-front, run-length coding (see bwt.go) — on one block, into a
// freshly allocated buffer. The buffer is allocated at a shared site, so
// the address a block's output lands at depends on the schedule; the
// record {len, ptr} is published in the results table with the done flag.
// The final Huffman stage's work is modeled as a per-word charge.
func (p *pbzip2Prog) compress(t *sim.Thread, b int) {
	base := b * p.blockWords
	data := make([]byte, p.blockWords) // thread-private work area
	for i := range data {
		data[i] = byte(t.Load(idx(p.input, base+i)))
		t.Compute(900) // sort, MTF and entropy-coding work per byte
	}
	payload, primary := blockCompress(data)
	assertf(len(payload) <= 2*p.blockWords, "pbzip2: payload overflow")

	buf := t.Malloc("pbzip2.compressed", p.compressedWords(), mem.KindWord)
	t.Store(idx(buf, 0), uint64(primary))
	t.Store(idx(buf, 1), uint64(len(payload)))
	for i, c := range payload {
		t.Store(idx(buf, 2+i), uint64(c))
	}
	t.Store(idx(p.results, b*pbzip2ResultWords), uint64(len(payload)))
	t.Store(idx(p.results, b*pbzip2ResultWords+1), buf)
	t.Store(idx(p.qDone, b), 1)
}
