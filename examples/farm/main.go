// The checkfarm as a library: this example embeds a complete checkd
// daemon — persistent hash-log store, job queue, parallel run workers,
// HTTP API — in one process, drives it with the same client the
// `instantcheck remote` CLI uses, and then "restarts" the daemon over its
// own store to show that reports survive purely in the hash log.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"instantcheck/internal/farm"
)

func main() {
	dir, err := os.MkdirTemp("", "checkfarm")
	check(err)
	defer os.RemoveAll(dir)
	storePath := filepath.Join(dir, "farm.log")

	// ---- first daemon lifetime ----
	store, err := farm.OpenStore(storePath)
	check(err)
	srv := farm.NewServer(store, farm.Options{RunWorkers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	srv.Start(ctx)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	c := farm.NewClient("http://" + ln.Addr().String())
	fmt.Printf("checkd serving on %s, store %s\n\n", ln.Addr(), storePath)

	// Submit two campaigns; runs execute 4-wide on the worker pool.
	radix := submit(c, farm.JobSpec{App: "radix", Runs: 10, Threads: 4, Small: true, Parallelism: 4})
	barnes := submit(c, farm.JobSpec{App: "barnes", Runs: 10, Threads: 4, Small: true, Parallelism: 4})
	for _, id := range []farm.JobID{radix, barnes} {
		job, err := c.Wait(context.Background(), id, 50*time.Millisecond)
		check(err)
		rep, err := c.Report(context.Background(), id)
		check(err)
		verdict := "NONDETERMINISTIC"
		if rep.Deterministic {
			verdict = "deterministic"
		}
		fmt.Printf("%s %-8s %s: %s (%d checkpoints, %d ndet)\n",
			job.ID, job.Spec.App, job.State, verdict, rep.Points, rep.NDetPoints)
	}

	// The per-checkpoint hash stream is the unit of cross-host comparison:
	// fetch it as text (as another host would) and diff it against the job
	// it came from, then against the other workload.
	logText, err := c.HashLog(context.Background(), radix)
	check(err)
	fmt.Printf("\nhash log of %s: %d lines, first: %s\n",
		radix, strings.Count(logText, "\n"), strings.SplitN(logText, "\n", 2)[0])
	same, err := c.Compare(context.Background(), farm.CompareRequest{LogA: logText, JobB: radix})
	check(err)
	fmt.Printf("compare fetched-log vs %s: equal=%v over %d runs\n", radix, same.Equal, same.RunsCompared)
	diff, err := c.Compare(context.Background(), farm.CompareRequest{JobA: radix, JobB: barnes})
	check(err)
	fmt.Printf("compare %s vs %s: equal=%v, first divergence at run %d checkpoint %d\n",
		radix, barnes, diff.Equal, diff.First.Run+1, diff.First.Ordinal)

	// ---- daemon "restart" ----
	hs.Shutdown(context.Background())
	cancel()
	srv.Wait()
	check(store.Close())

	store2, err := farm.OpenStore(storePath)
	check(err)
	defer store2.Close()
	srv2 := farm.NewServer(store2, farm.Options{})
	srv2.Resume() // finished jobs reassemble their reports from the log
	rep, err := srv2.Report(radix)
	check(err)
	fmt.Printf("\nafter restart, %s report served from the hash log alone: %s, %d runs, deterministic=%v\n",
		radix, rep.Program, rep.Runs, rep.Deterministic)
}

func submit(c *farm.Client, spec farm.JobSpec) farm.JobID {
	job, err := c.Submit(context.Background(), spec)
	check(err)
	return job.ID
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
