package replay

import (
	"testing"
	"testing/quick"
)

// TestAddrLogRoundTrip checks record + lookup.
func TestAddrLogRoundTrip(t *testing.T) {
	l := NewAddrLog()
	if _, ok := l.Lookup("s", 0); ok {
		t.Fatal("empty log hit")
	}
	l.Record("s", 0, 0x1000)
	l.Record("s", 1, 0x2000)
	l.Record("other", 0, 0x3000)
	if a, ok := l.Lookup("s", 1); !ok || a != 0x2000 {
		t.Errorf("lookup = %#x, %v", a, ok)
	}
	if l.Len() != 3 {
		t.Errorf("len = %d", l.Len())
	}
	// Re-recording the same address is idempotent.
	l.Record("s", 0, 0x1000)
	if l.Len() != 3 {
		t.Error("idempotent re-record changed the log")
	}
}

// TestAddrLogConflictPanics checks a bypassed replay hook is caught.
func TestAddrLogConflictPanics(t *testing.T) {
	l := NewAddrLog()
	l.Record("s", 0, 0x1000)
	defer func() {
		if recover() == nil {
			t.Error("no panic on conflicting re-record")
		}
	}()
	l.Record("s", 0, 0x9999)
}

// TestEnvReplayIdentical checks the core §5 property: on replay runs,
// every (thread, call) stream returns exactly the recorded values, even if
// threads interleave differently — the calls are keyed per thread, not by
// global order.
func TestEnvReplayIdentical(t *testing.T) {
	e := NewEnv(42)
	e.BeginRun()
	// Recording run: thread 0 then thread 1.
	r0 := []uint64{e.Rand(0), e.Rand(0), e.Rand(0)}
	r1 := []uint64{e.Rand(1), e.Rand(1)}
	g0 := e.Gettimeofday(0)

	// Replay run with the opposite thread order.
	e.BeginRun()
	p1 := []uint64{e.Rand(1), e.Rand(1)}
	p0 := []uint64{e.Rand(0), e.Rand(0), e.Rand(0)}
	if g0 != e.Gettimeofday(0) {
		t.Error("gettimeofday not replayed")
	}
	for i := range r0 {
		if r0[i] != p0[i] {
			t.Errorf("thread 0 call %d: %d != %d", i, r0[i], p0[i])
		}
	}
	for i := range r1 {
		if r1[i] != p1[i] {
			t.Errorf("thread 1 call %d: %d != %d", i, r1[i], p1[i])
		}
	}
}

// TestEnvExtendsStreams checks a replay run that makes MORE calls than
// were recorded gets fresh values appended (log growth), and those extra
// values then replay on later runs.
func TestEnvExtendsStreams(t *testing.T) {
	e := NewEnv(7)
	e.BeginRun()
	first := e.Rand(0)

	e.BeginRun()
	if e.Rand(0) != first {
		t.Fatal("replay mismatch")
	}
	extra := e.Rand(0) // beyond the recorded stream

	e.BeginRun()
	_ = e.Rand(0)
	if e.Rand(0) != extra {
		t.Error("extended stream value not replayed")
	}
}

// TestAddrLogClone checks clones replay the recorded addresses but keep
// growth private — the isolation property parallel replay runs rely on.
func TestAddrLogClone(t *testing.T) {
	l := NewAddrLog()
	l.Record("s", 0, 0x1000)
	c := l.Clone()
	if a, ok := c.Lookup("s", 0); !ok || a != 0x1000 {
		t.Fatalf("clone lookup = %#x, %v", a, ok)
	}
	c.Record("s", 1, 0x2000)
	if _, ok := l.Lookup("s", 1); ok {
		t.Error("clone growth leaked into the original")
	}
	l.Record("s", 2, 0x3000)
	if _, ok := c.Lookup("s", 2); ok {
		t.Error("original growth leaked into the clone")
	}
}

// TestEnvFork checks a fork replays the recorded streams from the start,
// and that draws past the recorded streams are private to the fork (they
// come from the fork's seed, not from the shared recording source).
func TestEnvFork(t *testing.T) {
	e := NewEnv(42)
	e.BeginRun()
	rec := []uint64{e.Rand(0), e.Rand(0)}

	f := e.Fork(7)
	f.BeginRun()
	if got := []uint64{f.Rand(0), f.Rand(0)}; got[0] != rec[0] || got[1] != rec[1] {
		t.Errorf("fork replay %v != recorded %v", got, rec)
	}
	extra := f.Rand(0) // beyond the recorded stream: fork-private growth
	if _, ok := e.streams[envKey{0, "rand"}]; !ok {
		t.Fatal("recorded stream vanished")
	}
	if n := len(e.streams[envKey{0, "rand"}]); n != 2 {
		t.Errorf("fork growth leaked into the parent (len %d)", n)
	}
	// Two forks with the same seed grow identically; different seeds do not.
	g := e.Fork(7)
	g.BeginRun()
	_, _ = g.Rand(0), g.Rand(0)
	if g.Rand(0) != extra {
		t.Error("same-seed forks diverged on fresh draws")
	}
	h := e.Fork(8)
	h.BeginRun()
	_, _ = h.Rand(0), h.Rand(0)
	if h.Rand(0) == extra {
		t.Error("different-seed forks agreed on fresh draws")
	}
}

// TestEnvInputSeedIsInput checks different input seeds give different
// streams (they are different test inputs), while the same seed gives the
// same stream.
func TestEnvInputSeedIsInput(t *testing.T) {
	f := func(seed int64) bool {
		a := NewEnv(seed)
		a.BeginRun()
		b := NewEnv(seed)
		b.BeginRun()
		return a.Rand(3) == b.Rand(3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	a := NewEnv(1)
	a.BeginRun()
	b := NewEnv(2)
	b.BeginRun()
	if a.Rand(0) == b.Rand(0) {
		t.Error("different input seeds gave the same first value")
	}
}

// TestGettimeofdayMonotoneShape checks the replayed clock looks like a
// plausible timestamp (fixed epoch + bounded jitter).
func TestGettimeofdayMonotoneShape(t *testing.T) {
	e := NewEnv(5)
	e.BeginRun()
	v := e.Gettimeofday(0)
	const base = int64(1_288_000_000_000_000)
	if v < base || v >= base+1_000_000 {
		t.Errorf("timestamp %d out of the expected window", v)
	}
}
