package instantcheck

import (
	"fmt"
	"strings"
)

// GuardReport is the failure report AssertDeterministic produces: the
// campaign report plus, when available, the localized state diff of the
// first divergence — everything §2.3's methodology gives the programmer.
type GuardReport struct {
	// Report is the campaign outcome.
	Report *Report
	// Diffs lists the differing words at the first divergence (nil when
	// snapshot capture failed or was unnecessary).
	Diffs []Difference
}

// Format renders the failure report.
func (g *GuardReport) Format() string {
	r := g.Report
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s is externally NONDETERMINISTIC: %d of %d checking points differ across %d runs (first detected in run %d)\n",
		r.Program, r.NDetPoints, r.Points(), len(r.Runs), r.FirstNDetRun)
	if ord := r.FirstNDetPoint(); ord >= 0 {
		label := r.Stats[ord].Label
		prev := "start of run"
		if ord > 0 {
			prev = fmt.Sprintf("checkpoint %d (%s)", ord-1, r.Stats[ord-1].Label)
		}
		fmt.Fprintf(&sb, "nondeterminism localized between %s and checkpoint %d (%s)\n", prev, ord, label)
	}
	if d := r.DiffSnapshots; d != nil && g.Diffs != nil {
		fmt.Fprintf(&sb, "state diff of runs %d and %d at the first divergence:\n", d.RunA, d.RunB)
		sb.WriteString(RenderDiff(g.Diffs, 12))
	}
	if r.OutputDistinct > 1 {
		fmt.Fprintf(&sb, "output streams also differ: %d distinct output hashes\n", r.OutputDistinct)
	}
	return sb.String()
}

// failer is the subset of testing.TB the guard needs; using the interface
// keeps the library free of a testing import.
type failer interface {
	Helper()
	Fatalf(format string, args ...any)
}

// AssertDeterministic is the CI-adoption entry point: embed it in a test
// to guard a parallel algorithm against nondeterminism regressions. It
// runs the campaign (snapshot capture enabled) and fails the test with a
// localized state-diff report when any two runs disagree.
//
//	func TestMySimulationIsDeterministic(t *testing.T) {
//	    instantcheck.AssertDeterministic(t,
//	        instantcheck.Campaign{Runs: 20, Threads: 4, RoundFP: true},
//	        func() instantcheck.Program { return NewMySimulation() })
//	}
func AssertDeterministic(tb failer, camp Campaign, build Builder) *Report {
	tb.Helper()
	camp.SnapshotDifferingRuns = true
	rep, err := camp.Check(build)
	if err != nil {
		tb.Fatalf("instantcheck: campaign failed: %v", err)
		return nil
	}
	if rep.Deterministic() && rep.OutputDistinct <= 1 {
		return rep
	}
	g := &GuardReport{Report: rep}
	if d := rep.DiffSnapshots; d != nil {
		g.Diffs = DiffStates(d.A, d.B)
	}
	tb.Fatalf("%s", g.Format())
	return rep
}
