# InstantCheck reproduction — convenience targets.

GO ?= go

.PHONY: all test race race-farm bench bench-json bench-fleet-json bench-detect-json bench-smoke obs-smoke fleet-smoke explore-smoke exploreeff build table1 table2 figures everything cover fmt vet lint

all: test lint

# Build every command, the checkfarm daemon included, into ./bin.
build:
	$(GO) build -o bin/ ./cmd/instantcheck ./cmd/statediff ./cmd/icvet ./cmd/checkd ./cmd/checkworker

test:
	$(GO) test ./...

lint:
	$(GO) run ./cmd/icvet ./...
	$(GO) run ./cmd/icvet race ./...

race:
	$(GO) test -race ./...

# The farm's invariants (parallel == sequential, crash resume) under the
# race detector — the CI subset.
race-farm:
	$(GO) test -race ./internal/farm ./internal/core

bench:
	$(GO) test -bench=. -benchmem ./...

# One-iteration pass over every benchmark: proves the benchmark code still
# compiles and runs. This is the CI smoke step — it measures nothing.
# The detector lines are the A/B smoke for bench-detect-json: the epoch
# fast-path pin (TestDetectionRunFastPaths) proves the default detector
# takes its O(1) same-epoch short-circuits on a real run, and the
# ICHECK_RACE_DETECTOR=vc pass proves the vector-clock baseline section
# still runs end to end.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
	$(GO) test -run='TestDetectionRunFastPaths' .
	ICHECK_RACE_DETECTOR=vc $(GO) test -run=NONE -bench='DetectorRun/(barnes|fft)/' -benchtime=1x .

# Observability smoke gate: boot a real checkd, run one small campaign,
# scrape /metrics from the live daemon and fail on malformed exposition or
# missing key series (see cmd/obssmoke).
obs-smoke:
	$(GO) run ./cmd/obssmoke

# Fleet smoke gate: boot a real checkd -fleet plus four checkworker
# processes, run the full 17-app campaign, SIGKILL one worker mid-shard,
# and require every report byte-identical to a plain single-node daemon's
# (see cmd/fleetsmoke).
fleet-smoke:
	$(GO) run ./cmd/fleetsmoke

# Exploration smoke gate: boot a real checkd, submit one explore job per
# strategy hunting a seeded Figure 7 bug, require every search to find its
# divergence within budget, and lint the daemon's per-strategy /metrics
# series (see cmd/exploresmoke).
explore-smoke:
	$(GO) run ./cmd/exploresmoke

# The exploration-efficiency experiment: median runs-to-detect per
# strategy on the three seeded Figure 7 bugs at equal budget (the table in
# EXPERIMENTS.md, "Exploration efficiency").
exploreeff:
	$(GO) run ./cmd/instantcheck exploreeff -small -runs 40 -threads 4 -input 1

# The tier-1 perf suite, recorded into the repo's benchmark trajectory as an
# interleaved A/B over the per-thread store buffer: each round runs the
# whole suite once with ICHECK_STORE_BUFFER=off (the pre-buffer inline
# per-store hashing — "baseline") and once with the default buffered mode
# ("after"), so both sections sample the same machine conditions round by
# round. Odd rounds run baseline first, even rounds run after first: with
# an even round count a linear machine-speed drift contributes equally to
# both sections instead of systematically penalizing whichever one runs
# second. Everything else, the traversal delta cache included, stays at its
# default in both sections, so the buffer is the only knob that varies.
# benchjson averages a section's repeated rounds; BENCHTIME stays small
# because the rounds are the averaging. (BENCH_5 recorded the same suite's
# delta-cache A/B over ICHECK_TRAVERSE_DELTA; BENCH_7 is this one.)
BENCH_OUT    ?= BENCH_7.json
BENCHTIME    ?= 2x
BENCH_ROUNDS ?= 4
BENCH_REGEX  ?= SchemeAblation|CheckApp|FarmThroughput$$|MemStoreLoad|AllocFree|TraverseHash|ZeroSumCache|WriteBatch|WriteScattered|HashWord|AccumulatorWrite
BENCH_PKGS   = . ./internal/mem ./internal/sim ./internal/ihash
bench-json:
	@rm -f $(BENCH_OUT).base.tmp $(BENCH_OUT).after.tmp
	for r in $$(seq $(BENCH_ROUNDS)); do \
		if [ $$((r % 2)) -eq 1 ]; then \
			ICHECK_STORE_BUFFER=off $(GO) test -run=NONE -bench='$(BENCH_REGEX)' -benchmem -benchtime=$(BENCHTIME) $(BENCH_PKGS) >> $(BENCH_OUT).base.tmp || exit 1; \
			$(GO) test -run=NONE -bench='$(BENCH_REGEX)' -benchmem -benchtime=$(BENCHTIME) $(BENCH_PKGS) >> $(BENCH_OUT).after.tmp || exit 1; \
		else \
			$(GO) test -run=NONE -bench='$(BENCH_REGEX)' -benchmem -benchtime=$(BENCHTIME) $(BENCH_PKGS) >> $(BENCH_OUT).after.tmp || exit 1; \
			ICHECK_STORE_BUFFER=off $(GO) test -run=NONE -bench='$(BENCH_REGEX)' -benchmem -benchtime=$(BENCHTIME) $(BENCH_PKGS) >> $(BENCH_OUT).base.tmp || exit 1; \
		fi; \
	done
	$(GO) run ./cmd/benchjson -out $(BENCH_OUT) -section baseline -note "make bench-json, store buffer off, benchtime=$(BENCHTIME), order-alternating rounds=$(BENCH_ROUNDS)" < $(BENCH_OUT).base.tmp
	$(GO) run ./cmd/benchjson -out $(BENCH_OUT) -section after -note "make bench-json, store buffer auto, benchtime=$(BENCHTIME), order-alternating rounds=$(BENCH_ROUNDS)" < $(BENCH_OUT).after.tmp
	@rm -f $(BENCH_OUT).base.tmp $(BENCH_OUT).after.tmp

# The detection-run A/B, recorded as the repo's BENCH_8 trajectory: every
# workload's happens-before detection run (BenchmarkDetectorRun, 4 threads,
# small inputs, fresh detector + machine per iteration) under the default
# epoch detector ("after") against the identical run with the retained
# vector-clock reference selected via ICHECK_RACE_DETECTOR=vc ("baseline").
# The benchmark names are identical in both sections, so benchjson pairs
# them directly; detector=off sub-benchmarks ride along in both sections as
# the plain-check-run control — the env var is only read when a detector is
# attached, so any baseline/after delta there bounds the measurement noise.
# Rounds alternate section order for the same drift-cancelling reason as
# bench-json above.
DETECT_BENCH_OUT    ?= BENCH_8.json
DETECT_BENCHTIME    ?= 10x
DETECT_BENCH_ROUNDS ?= 4
bench-detect-json:
	@rm -f $(DETECT_BENCH_OUT).base.tmp $(DETECT_BENCH_OUT).after.tmp
	for r in $$(seq $(DETECT_BENCH_ROUNDS)); do \
		if [ $$((r % 2)) -eq 1 ]; then \
			ICHECK_RACE_DETECTOR=vc $(GO) test -run=NONE -bench='DetectorRun' -benchtime=$(DETECT_BENCHTIME) . >> $(DETECT_BENCH_OUT).base.tmp || exit 1; \
			$(GO) test -run=NONE -bench='DetectorRun' -benchtime=$(DETECT_BENCHTIME) . >> $(DETECT_BENCH_OUT).after.tmp || exit 1; \
		else \
			$(GO) test -run=NONE -bench='DetectorRun' -benchtime=$(DETECT_BENCHTIME) . >> $(DETECT_BENCH_OUT).after.tmp || exit 1; \
			ICHECK_RACE_DETECTOR=vc $(GO) test -run=NONE -bench='DetectorRun' -benchtime=$(DETECT_BENCHTIME) . >> $(DETECT_BENCH_OUT).base.tmp || exit 1; \
		fi; \
	done
	$(GO) run ./cmd/benchjson -out $(DETECT_BENCH_OUT) -section baseline -note "make bench-detect-json, ICHECK_RACE_DETECTOR=vc (vector-clock reference), benchtime=$(DETECT_BENCHTIME), order-alternating rounds=$(DETECT_BENCH_ROUNDS)" < $(DETECT_BENCH_OUT).base.tmp
	$(GO) run ./cmd/benchjson -out $(DETECT_BENCH_OUT) -section after -note "make bench-detect-json, epoch detector (default), benchtime=$(DETECT_BENCHTIME), order-alternating rounds=$(DETECT_BENCH_ROUNDS)" < $(DETECT_BENCH_OUT).after.tmp
	@rm -f $(DETECT_BENCH_OUT).base.tmp $(DETECT_BENCH_OUT).after.tmp

# The fleet scaling benchmark, recorded as the repo's BENCH_6 trajectory:
# the farm-throughput campaign's replay stage dispatched through a real
# coordinator + worker fleet over HTTP, at 1/2/4 workers, in both the
# natural-speed and the emulated-remote-latency variant (see
# BenchmarkFarmThroughputFleet for why both exist). benchjson averages the
# repeated rounds.
FLEET_BENCH_OUT    ?= BENCH_6.json
FLEET_BENCHTIME    ?= 2x
FLEET_BENCH_ROUNDS ?= 3
bench-fleet-json:
	@rm -f $(FLEET_BENCH_OUT).tmp
	for r in $$(seq $(FLEET_BENCH_ROUNDS)); do \
		$(GO) test -run=NONE -bench='FarmThroughputFleet' -benchmem -benchtime=$(FLEET_BENCHTIME) . >> $(FLEET_BENCH_OUT).tmp || exit 1; \
	done
	$(GO) run ./cmd/benchjson -out $(FLEET_BENCH_OUT) -section fleet -note "make bench-fleet-json, benchtime=$(FLEET_BENCHTIME), rounds=$(FLEET_BENCH_ROUNDS); fleet-remote-workers emulates 10ms/run remote executors" < $(FLEET_BENCH_OUT).tmp
	@rm -f $(FLEET_BENCH_OUT).tmp

table1:
	$(GO) run ./cmd/instantcheck table1

table2:
	$(GO) run ./cmd/instantcheck table2

figures:
	$(GO) run ./cmd/instantcheck fig5
	$(GO) run ./cmd/instantcheck fig6
	$(GO) run ./cmd/instantcheck fig8

everything:
	$(GO) run ./cmd/instantcheck all

cover:
	$(GO) test -cover ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
