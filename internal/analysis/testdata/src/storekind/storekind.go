// Package storekind is a golden fixture for the storekind analyzer.
package storekind

import (
	"instantcheck/internal/mem"
	"instantcheck/internal/sim"
)

type prog struct {
	words  uint64
	floats uint64
}

func (p *prog) Setup(t *sim.Thread) {
	p.words = t.Malloc("sk.words", 4, mem.KindWord)
	p.floats = t.Malloc("sk.floats", 4, mem.KindFloat)
}

func (p *prog) Worker(t *sim.Thread) {
	t.Store(p.words, 1)     // ok: integer store into a word block
	t.StoreF(p.floats, 1.5) // ok: FP store into a float block
	t.StoreF(p.words, 2.5)  // want `StoreF into KindWord block \(site "sk\.words"\)`
	t.Store(p.floats, 3)    // want `Store into KindFloat block \(site "sk\.floats"\)`

	// A locally allocated block is tracked through its variable too.
	buf := t.Malloc("sk.buf", 2, mem.KindFloat)
	t.StoreF(buf, 4.5)             // ok
	t.Store(buf+1*mem.WordSize, 5) // want `Store into KindFloat block \(site "sk\.buf"\)`
	t.Free(buf)

	// An address mentioning two known blocks is ambiguous: skipped.
	t.Store(p.words+p.floats, 6)
}
