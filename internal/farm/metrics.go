package farm

import (
	"time"

	"instantcheck/internal/obs"
	"instantcheck/internal/sim"
)

// Metrics is the farm's instrument panel: every counter the daemon exports
// at /metrics. A Server always carries one (the counters are single atomic
// words, cheap enough to maintain unconditionally); wiring a registry only
// controls whether they are scrapeable.
//
// Two rules keep the PR 3 performance wins intact:
//
//   - nothing on the simulator's per-access path touches these metrics. The
//     hash-path series are flushed once per finished run from the run's
//     sim.Counters, whose own fast-path accounting is derived (misses
//     counted on the slow path only, hits by subtraction);
//   - counters flushed concurrently by run workers are sharded (obs.Sharded
//     / obs.ShardedCounterVec) and aggregated at scrape time, so a farm at
//     full parallelism never serializes on a metrics cache line.
type Metrics struct {
	// Job lifecycle.
	jobsSubmitted *obs.Counter
	jobsResumed   *obs.Counter
	jobsFinished  *obs.CounterVec // state = done | failed | canceled
	jobsRunning   *obs.Gauge
	jobDuration   *obs.Histogram

	// Run execution.
	runsExecuted *obs.ShardedCounter
	runsRestored *obs.Counter
	runDuration  *obs.Histogram

	// Store (append-only hash log).
	storeAppends     *obs.Counter
	storeAppendBytes *obs.Counter
	storeAppendSecs  *obs.Histogram
	storeErrors      *obs.CounterVec // op = append | jobend

	// Hash path, per scheme (paper names as label values).
	stores          *obs.CounterVec // sharded
	storesHashed    *obs.CounterVec // sharded
	checkpoints     *obs.CounterVec // sharded
	checkpointWords *obs.CounterVec // sharded
	fastwinHits     *obs.ShardedCounter
	fastwinMisses   *obs.ShardedCounter
	travRunsHashed  *obs.ShardedCounter
	travSharded     *obs.ShardedCounter
	travFullSweeps  *obs.ShardedCounter
	travDeltaSweeps *obs.ShardedCounter
	travDirtyPages  *obs.ShardedCounter
	travLivePages   *obs.ShardedCounter

	// Store-buffer batching (per-thread coalescing in the incremental
	// schemes), per scheme.
	sbufFlushes   *obs.CounterVec // sharded
	sbufDrained   *obs.CounterVec // sharded
	sbufCoalesced *obs.CounterVec // sharded

	// Detection runs (a race-detector EventListener attached): how many
	// runs paid per-access event dispatch, and how many access events the
	// listeners consumed, by kind.
	detectionRuns   *obs.ShardedCounter
	detectionEvents *obs.CounterVec // sharded; kind = read | write

	// Exploration (explore jobs), per strategy. Explore runs are
	// sequential within a job (strategies learn run to run), so plain
	// vectors suffice.
	exploreRuns        *obs.CounterVec
	exploreDivergences *obs.CounterVec
	exploreDistinct    *obs.CounterVec
	exploreHints       *obs.CounterVec
}

// metricShards is the shard count for counters bumped by concurrent run
// workers. Runs index into shards by run number, so any parallelism up to
// this bound is contention-free.
const metricShards = 32

// newMetrics registers the farm's metric families on reg.
func newMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		jobsSubmitted: reg.Counter("checkfarm_jobs_submitted_total",
			"Campaigns accepted by this daemon process."),
		jobsResumed: reg.Counter("checkfarm_jobs_resumed_total",
			"Unfinished campaigns re-queued from the store at startup."),
		jobsFinished: reg.CounterVec("checkfarm_jobs_finished_total",
			"Jobs reaching a terminal state, by state.", "state"),
		jobsRunning: reg.Gauge("checkfarm_jobs_running",
			"Jobs currently executing on the worker pool."),
		jobDuration: reg.Histogram("checkfarm_job_duration_seconds",
			"Wall time from job start to terminal state.", nil),
		runsExecuted: reg.Sharded("checkfarm_runs_executed_total",
			"Simulated runs executed (including re-recorded run 1 on resume).", metricShards),
		runsRestored: reg.Counter("checkfarm_runs_restored_total",
			"Runs resurrected from committed store records instead of re-executing."),
		runDuration: reg.Histogram("checkfarm_run_duration_seconds",
			"Wall time of one simulated run.", nil),
		storeAppends: reg.Counter("checkfarm_store_appends_total",
			"Record batches appended to the hash-log store."),
		storeAppendBytes: reg.Counter("checkfarm_store_append_bytes_total",
			"Bytes appended to the hash-log store."),
		storeAppendSecs: reg.Histogram("checkfarm_store_append_seconds",
			"Latency of one durable append (write + flush + fsync).", nil),
		storeErrors: reg.CounterVec("checkfarm_store_errors_total",
			"Failed store writes, by operation.", "op"),
		stores: reg.ShardedCounterVec("instantcheck_stores_total",
			"Data stores executed by checked runs, by hashing scheme.", "scheme", metricShards),
		storesHashed: reg.ShardedCounterVec("instantcheck_stores_hashed_total",
			"Stores hashed on the fly by the incremental schemes.", "scheme", metricShards),
		checkpoints: reg.ShardedCounterVec("instantcheck_checkpoints_total",
			"Determinism-checking points captured, by hashing scheme.", "scheme", metricShards),
		checkpointWords: reg.ShardedCounterVec("instantcheck_checkpoint_words_total",
			"Live words in the hashed state summed over checkpoints, by scheme.", "scheme", metricShards),
		fastwinHits: reg.Sharded("instantcheck_fastwindow_hits_total",
			"Memory accesses resolved by the inline fast window (derived: accesses minus slow-path entries).", metricShards),
		fastwinMisses: reg.Sharded("instantcheck_fastwindow_misses_total",
			"Memory accesses that fell through to the slow path.", metricShards),
		travRunsHashed: reg.Sharded("instantcheck_traverse_runs_hashed_total",
			"Page-bounded runs hashed by the traversal scheme's checkpoint sweeps.", metricShards),
		travSharded: reg.Sharded("instantcheck_traverse_sharded_sweeps_total",
			"Checkpoint sweeps that fanned out across goroutine shards.", metricShards),
		travFullSweeps: reg.Sharded("instantcheck_traverse_full_sweeps_total",
			"Traversal checkpoints that swept every live run (seeding sweeps in delta mode; every sweep with delta off).", metricShards),
		travDeltaSweeps: reg.Sharded("instantcheck_traverse_delta_sweeps_total",
			"Traversal checkpoints served by dirty-page delta hashing.", metricShards),
		travDirtyPages: reg.Sharded("instantcheck_traverse_dirty_pages_total",
			"Pages rehashed by delta sweeps (the work delta checkpoints actually did).", metricShards),
		travLivePages: reg.Sharded("instantcheck_traverse_live_pages_total",
			"Per-page cache size sampled at each delta sweep (the work a full sweep would have done).", metricShards),
		sbufFlushes: reg.ShardedCounterVec("instantcheck_storebuffer_flushes_total",
			"Store-buffer drains through the scattered-batch hash kernel, by scheme.", "scheme", metricShards),
		sbufDrained: reg.ShardedCounterVec("instantcheck_storebuffer_drained_words_total",
			"Coalesced word updates hashed at drain time, by scheme.", "scheme", metricShards),
		sbufCoalesced: reg.ShardedCounterVec("instantcheck_storebuffer_coalesced_total",
			"Stores absorbed into a pending buffer entry instead of being hashed, by scheme.", "scheme", metricShards),
		detectionRuns: reg.Sharded("checkfarm_detection_runs_total",
			"Runs executed with a race-detector event listener attached (explore-job harvest runs).", metricShards),
		detectionEvents: reg.ShardedCounterVec("instantcheck_detection_events_total",
			"Access events delivered to attached race detectors, by access kind.", "kind", metricShards),
		exploreRuns: reg.CounterVec("checkfarm_explore_runs_total",
			"Schedules executed by explore jobs, by strategy.", "strategy"),
		exploreDivergences: reg.CounterVec("checkfarm_explore_divergences_total",
			"Explore campaigns that found a State-Hash divergence, by strategy.", "strategy"),
		exploreDistinct: reg.CounterVec("checkfarm_explore_distinct_outcomes_total",
			"Distinct (checkpoint, State Hash) outcomes observed by explore jobs, by strategy.", "strategy"),
		exploreHints: reg.CounterVec("checkfarm_explore_hint_preemptions_total",
			"Directed preemptions fired at hinted racy sites, by strategy.", "strategy"),
	}
}

// observeExploreRun counts one executed exploration schedule.
func (m *Metrics) observeExploreRun(strategy string) {
	if m == nil {
		return
	}
	m.exploreRuns.With(strategy).Inc()
}

// observeExplore flushes a finished exploration campaign's outcome.
func (m *Metrics) observeExplore(out *ExploreOutcome) {
	if m == nil {
		return
	}
	if out.Found {
		m.exploreDivergences.With(out.Strategy).Inc()
	}
	m.exploreDistinct.With(out.Strategy).Add(uint64(out.DistinctOutcomes))
	m.exploreHints.With(out.Strategy).Add(uint64(out.Hits))
}

// observeRun flushes one executed run's simulator counters into the hash-
// path series. shard spreads concurrent flushes (the run index is a natural
// choice); the scheme's paper name becomes the label value.
func (m *Metrics) observeRun(scheme sim.Scheme, shard int, res *sim.Result, d time.Duration) {
	if m == nil {
		return
	}
	m.runsExecuted.Add(shard, 1)
	m.runDuration.Observe(d.Seconds())

	label := scheme.String()
	c := &res.Counters
	m.stores.WithSharded(label).Add(shard, c.Stores)
	m.storesHashed.WithSharded(label).Add(shard, res.MHMStats.HashedStores)
	m.checkpoints.WithSharded(label).Add(shard, c.Checkpoints)
	m.checkpointWords.WithSharded(label).Add(shard, c.CheckpointWords)

	accesses := c.Loads + c.Stores
	misses := c.FastLoadMisses + c.FastStoreMisses
	m.fastwinMisses.Add(shard, misses)
	if accesses > misses { // misses include checker-internal zeroing stores
		m.fastwinHits.Add(shard, accesses-misses)
	}
	m.travRunsHashed.Add(shard, c.TraverseRunsHashed)
	m.travSharded.Add(shard, c.TraverseShardedSweeps)
	m.travFullSweeps.Add(shard, c.TraverseFullSweeps)
	m.travDeltaSweeps.Add(shard, c.TraverseDeltaSweeps)
	m.travDirtyPages.Add(shard, c.TraverseDirtyPages)
	m.travLivePages.Add(shard, c.TraverseLivePages)
	m.sbufFlushes.WithSharded(label).Add(shard, c.StoreBufferFlushes)
	m.sbufDrained.WithSharded(label).Add(shard, c.StoreBufferDrainedWords)
	m.sbufCoalesced.WithSharded(label).Add(shard, c.StoreBufferCoalesced)

	if c.EventReads+c.EventWrites > 0 {
		m.detectionRuns.Add(shard, 1)
		m.detectionEvents.WithSharded("read").Add(shard, c.EventReads)
		m.detectionEvents.WithSharded("write").Add(shard, c.EventWrites)
	}
}

// storeAppend records one durable append's outcome; the store calls it from
// under its own lock.
func (m *Metrics) storeAppend(d time.Duration, bytes int, err error) {
	if m == nil {
		return
	}
	m.storeAppends.Inc()
	m.storeAppendBytes.Add(uint64(bytes))
	m.storeAppendSecs.Observe(d.Seconds())
	if err != nil {
		m.storeErrors.With("append").Inc()
	}
}
