package mem

import "testing"

// FuzzCacheInvalidation drives randomized Alloc/Free/Store/Load sequences —
// including reallocation at a previously freed base via AddrHook, the way
// deterministic malloc replay places blocks — and checks every access
// against a flat map model. It exists to catch stale reads through the two
// access caches (the last-block cache and the fast load/store window), whose
// invalidation on Free and re-establishment on Alloc is the subtle part of
// the memory engine's hot path.
//
// It also validates the dirty-page bitmap the delta hasher relies on: a
// "checkpoint" op diffs the model against a shadow copy taken at the last
// ClearDirty and requires every page whose hash-relevant content changed —
// including pages freed and re-allocated at a reused base — to be reported
// by TraverseDirtyRuns, with run contents matching the model.
func FuzzCacheInvalidation(f *testing.F) {
	f.Add([]byte{0, 3, 1, 4, 2, 5})
	f.Add([]byte{0, 0, 3, 3, 2, 1, 4, 4, 5, 2, 0, 3, 4})
	f.Add([]byte{0, 2, 1, 2, 1, 2, 1, 4})
	f.Add([]byte{0, 9, 3, 3, 6, 2, 0, 6, 1, 1, 3, 5, 6})
	f.Fuzz(func(t *testing.T, ops []byte) {
		m := New()
		model := map[uint64]uint64{}
		// shadow is the hash-relevant state (live nonzero words) at the
		// last ClearDirty; effective() recomputes it from the model. A word
		// that is dead or zero-valued contributes nothing to the state
		// hash, so only live-nonzero words can make a page dirty-relevant.
		shadow := map[uint64]uint64{}
		effective := func() map[uint64]uint64 {
			eff := make(map[uint64]uint64, len(model))
			for a, v := range model {
				if v != 0 {
					eff[a] = v
				}
			}
			return eff
		}
		type slot struct {
			base uint64
			cap  int // footprint in words: reuse must not outgrow it
		}
		var live []*Block
		var freed []slot
		// pendingBase, when set, makes the next Alloc land on a reused
		// (previously freed) base — the replay-placement path.
		pendingBase := uint64(0)
		havePending := false
		m.AddrHook = func(site string, seq, words int) (uint64, bool) {
			if havePending {
				havePending = false
				return pendingBase, true
			}
			return 0, false
		}

		arg := func(i int) byte {
			if i+1 < len(ops) {
				return ops[i+1]
			}
			return 7
		}
		pickLive := func(b byte) *Block {
			if len(live) == 0 {
				return nil
			}
			return live[int(b)%len(live)]
		}
		wordAddr := func(blk *Block, b byte) uint64 {
			return blk.Base + uint64(int(b)%blk.Words)*WordSize
		}

		for i := 0; i < len(ops); i++ {
			op := ops[i] % 7
			sel := arg(i)
			switch op {
			case 0: // alloc fresh
				words := 1 + int(sel)%96
				blk := m.Alloc("fuzz.site", words, KindWord)
				live = append(live, blk)
				for w := 0; w < words; w++ {
					model[blk.Base+uint64(w)*WordSize] = 0
				}
			case 1: // alloc at a freed base, if one exists
				if len(freed) == 0 {
					continue
				}
				j := int(sel) % len(freed)
				s := freed[j]
				freed = append(freed[:j], freed[j+1:]...)
				pendingBase = s.base
				havePending = true
				words := 1 + int(sel)%s.cap
				blk := m.Alloc("fuzz.reuse", words, KindWord)
				havePending = false
				live = append(live, blk)
				for w := 0; w < words; w++ {
					model[blk.Base+uint64(w)*WordSize] = 0
				}
			case 2: // free a random live block
				blk := pickLive(sel)
				if blk == nil {
					continue
				}
				m.Free(blk.Base)
				// The freed footprint is rounded to the allocator's 16-word
				// chunk; reuse may occupy up to that without overlapping the
				// next block.
				freed = append(freed, slot{blk.Base, (blk.Words + 15) / 16 * 16})
				for w := 0; w < blk.Words; w++ {
					delete(model, blk.Base+uint64(w)*WordSize)
				}
				for j, b := range live {
					if b == blk {
						live = append(live[:j], live[j+1:]...)
						break
					}
				}
			case 3: // store through the fast path
				blk := pickLive(sel)
				if blk == nil {
					continue
				}
				addr := wordAddr(blk, arg(i+1))
				val := uint64(sel)<<8 | uint64(i)
				wantOld := model[addr]
				old, ok := m.StoreFast(addr, val)
				if !ok {
					old = m.Store(addr, val)
				}
				if old != wantOld {
					t.Fatalf("op %d: Store old at %#x = %d, model %d", i, addr, old, wantOld)
				}
				model[addr] = val
			case 4: // load through the fast path
				blk := pickLive(sel)
				if blk == nil {
					continue
				}
				addr := wordAddr(blk, arg(i+1))
				v, ok := m.LoadFast(addr)
				if !ok {
					v = m.Load(addr)
				}
				if want := model[addr]; v != want {
					t.Fatalf("op %d: Load %#x = %d, model %d", i, addr, v, want)
				}
			case 5: // verify BlockAt and a sweep of one block
				blk := pickLive(sel)
				if blk == nil {
					continue
				}
				got := m.BlockAt(wordAddr(blk, arg(i+1)))
				if got != blk {
					t.Fatalf("op %d: BlockAt resolved %v, want block at %#x", i, got, blk.Base)
				}
				for w := 0; w < blk.Words; w++ {
					addr := blk.Base + uint64(w)*WordSize
					if v := m.Load(addr); v != model[addr] {
						t.Fatalf("op %d: sweep %#x = %d, model %d", i, addr, v, model[addr])
					}
				}
			case 6: // delta checkpoint: dirty pages must cover every change
				eff := effective()
				changed := map[uint64]bool{}
				for a, v := range shadow {
					if eff[a] != v {
						changed[a/pageBytes] = true
					}
				}
				for a, v := range eff {
					if shadow[a] != v {
						changed[a/pageBytes] = true
					}
				}
				dirty := map[uint64]bool{}
				reported := map[uint64]bool{}
				m.TraverseDirtyRuns(
					func(pn uint64) { dirty[pn] = true },
					func(base uint64, words []uint64, kind Kind) {
						for w, v := range words {
							addr := base + uint64(w)*WordSize
							want, liveWord := model[addr]
							if !liveWord {
								t.Fatalf("op %d: dirty run visited dead word %#x", i, addr)
							}
							if v != want {
								t.Fatalf("op %d: dirty run %#x = %d, model %d", i, addr, v, want)
							}
							reported[addr] = true
						}
					})
				for pn := range changed {
					if !dirty[pn] {
						t.Fatalf("op %d: page %d changed since last checkpoint but is not dirty", i, pn)
					}
				}
				// A dirty page's reported runs must cover every live word on
				// it: a missed run would leave a stale contribution cached.
				for addr := range model {
					if dirty[addr/pageBytes] && !reported[addr] {
						t.Fatalf("op %d: live word %#x on dirty page not reported", i, addr)
					}
				}
				if got, want := m.DirtyPageCount(), len(dirty); got != want {
					t.Fatalf("op %d: DirtyPageCount = %d, TraverseDirtyRuns reported %d", i, got, want)
				}
				m.ClearDirty()
				if n := m.DirtyPageCount(); n != 0 {
					t.Fatalf("op %d: %d pages dirty after ClearDirty", i, n)
				}
				shadow = eff
			}
		}

		// Final cross-check: TraverseRuns must agree with the model on
		// every live word (zero runs are skipped by construction, so only
		// compare the words it reports).
		seen := 0
		m.TraverseRuns(func(base uint64, words []uint64, kind Kind) {
			for w, v := range words {
				addr := base + uint64(w)*WordSize
				want, liveWord := model[addr]
				if !liveWord {
					t.Fatalf("TraverseRuns visited dead word %#x", addr)
				}
				if v != want {
					t.Fatalf("TraverseRuns %#x = %d, model %d", addr, v, want)
				}
				seen++
			}
		})
		if seen != len(model) {
			t.Fatalf("TraverseRuns visited %d words, model has %d", seen, len(model))
		}
	})
}
