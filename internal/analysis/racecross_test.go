package analysis

import (
	"fmt"
	"testing"

	"instantcheck/internal/apps"
	"instantcheck/internal/racefilter"
	"instantcheck/internal/sim"
)

// TestRaceCrossCheck is the soundness audit of the static race engine:
// every race the dynamic happens-before detector observes over the 17
// workloads (plus the three Figure 7 seeded-bug variants) must map, by
// unordered file:line site identity, to a candidate pair the static
// analysis produced — suppressed pairs included, since //icvet:ignore
// race only filters the report, not the engine. A miss here means a
// precision heuristic (owner partition, tid guard, episode model)
// discarded a real race.
func TestRaceCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-check replays every workload; skipped with -short")
	}
	rep := RaceCheck(loadApps(t))

	// Static site-pair index at the granularity dynamic attribution can
	// reproduce: unordered {file:line, file:line}.
	static := make(map[string]bool)
	for _, p := range rep.Pairs {
		static[lineKey(p.A.FileLine(), p.B.FileLine())] = true
	}

	type variant struct {
		name  string
		build func() sim.Program
	}
	var variants []variant
	for _, a := range apps.Registry() {
		a := a
		variants = append(variants, variant{a.Name, func() sim.Program {
			return a.Build(apps.Options{Threads: 4, Small: true})
		}})
		if a.HostsBug != apps.BugNone {
			bug := a.HostsBug
			variants = append(variants, variant{a.Name + "+bug", func() sim.Program {
				return a.Build(apps.Options{Threads: 4, Small: true, Bug: bug})
			}})
		}
	}

	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			races, err := racefilter.Detect(v.build, racefilter.Config{
				Threads: 4, Runs: 4, BaseSeed: 1, InputSeed: 1,
			})
			if err != nil {
				t.Fatalf("Detect: %v", err)
			}
			for _, r := range races {
				if !static[lineKey(r.SiteA, r.SiteB)] {
					t.Errorf("dynamic race %s ~ %s (%s, site %s) has no static candidate pair",
						r.SiteA, r.SiteB, r.Kind, r.Site)
				}
			}
		})
	}
}

// lineKey builds an unordered pair key from two file:line site strings.
func lineKey(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return fmt.Sprintf("%s~%s", a, b)
}
