package ihash

import "testing"

// TestZeroSumMatchesPerWord pins ZeroSum to the word-at-a-time definition.
func TestZeroSumMatchesPerWord(t *testing.T) {
	h := Mix64{}
	base := uint64(0x1000_0000)
	var want Digest
	for i := 0; i < 37; i++ {
		want = want.Combine(h.HashWord(base+uint64(i)*8, 0))
	}
	if got := ZeroSum(h, base, 37); got != want {
		t.Fatalf("ZeroSum = %v, want %v", got, want)
	}
	if got := ZeroSum(h, base, 0); got != Zero {
		t.Fatalf("empty ZeroSum = %v, want zero", got)
	}
}

// TestZeroSumCache checks memoization returns identical digests and that
// distinct runs get distinct entries.
func TestZeroSumCache(t *testing.T) {
	c := NewZeroSumCache(nil)
	a := c.Sum(0x10000, 16)
	if c.Len() != 1 {
		t.Fatalf("cache len = %d", c.Len())
	}
	if b := c.Sum(0x10000, 16); b != a {
		t.Fatal("memoized sum differs")
	}
	if c.Len() != 1 {
		t.Fatal("repeat probe grew the cache")
	}
	longer, shifted := c.Sum(0x10000, 17), c.Sum(0x10080, 16)
	if longer == a && shifted == a {
		t.Fatal("distinct runs collided suspiciously")
	}
	c.Warm(0x20000, 8)
	if c.Len() != 4 {
		t.Fatalf("cache len = %d after warm", c.Len())
	}
	if c.Sum(0x10000, 16) != ZeroSum(Mix64{}, 0x10000, 16) {
		t.Fatal("cached sum != direct sum")
	}
}

// TestWriteBatch checks the run-granular update equals per-word Writes, and
// that nil olds degenerates to insertion.
func TestWriteBatch(t *testing.T) {
	base := uint64(0x3000)
	olds := []uint64{1, 2, 3, 4, 5}
	news := []uint64{9, 2, 0, 4, 7}

	ref := NewAccumulator(nil)
	ref.SetValue(12345)
	for i := range news {
		ref.Write(base+uint64(i)*8, olds[i], news[i])
	}
	got := NewAccumulator(nil)
	got.SetValue(12345)
	got.WriteBatch(base, olds, news)
	if got.Value() != ref.Value() {
		t.Fatalf("WriteBatch = %v, per-word = %v", got.Value(), ref.Value())
	}

	ref2 := NewAccumulator(nil)
	for i, v := range news {
		ref2.Insert(base+uint64(i)*8, v)
	}
	got2 := NewAccumulator(nil)
	got2.WriteBatch(base, nil, news)
	if got2.Value() != ref2.Value() {
		t.Fatalf("insert WriteBatch = %v, per-word = %v", got2.Value(), ref2.Value())
	}
}

// TestWriteBatchLengthMismatch pins the panic on mismatched run lengths.
func TestWriteBatchLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	NewAccumulator(nil).WriteBatch(0, []uint64{1}, []uint64{1, 2})
}

// TestWriteScattered checks the scattered-batch update equals per-word
// Writes for arbitrary (non-contiguous, duplicated) addresses, on both the
// devirtualized Mix64 path and the generic interface path.
func TestWriteScattered(t *testing.T) {
	addrs := []uint64{0x3000, 0x9f18, 0x3000, 0x4008, 0x10_0000}
	olds := []uint64{1, 2, 9, 4, 5}
	news := []uint64{9, 2, 0, 4, 7}

	for _, h := range []Hasher{nil, CRC64{}} {
		ref := NewAccumulator(h)
		ref.SetValue(12345)
		for i := range addrs {
			ref.Write(addrs[i], olds[i], news[i])
		}
		got := NewAccumulator(h)
		got.SetValue(12345)
		got.WriteScattered(addrs, olds, news)
		if got.Value() != ref.Value() {
			t.Fatalf("hasher %T: WriteScattered = %v, per-word = %v", h, got.Value(), ref.Value())
		}
	}
	if WriteScattered(Mix64{}, nil, nil, nil) != Zero {
		t.Fatal("empty scattered batch must be the identity")
	}
}

// TestWriteScatteredLengthMismatch pins the panic on ragged slices.
func TestWriteScatteredLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	WriteScattered(Mix64{}, []uint64{1, 2}, []uint64{1}, []uint64{1, 2})
}
