package mem

import "testing"

// BenchmarkMemStoreLoad measures the raw load/store hot path of the memory
// engine: the fast-window hit rate for the strided-sweep access pattern the
// workload kernels exhibit, with the slow (directory-walk) path exercised at
// every block boundary crossing.
func BenchmarkMemStoreLoad(b *testing.B) {
	const blockWords = 4096
	m := New()
	blk := m.Alloc("bench.block", blockWords, KindWord)

	b.Run("StoreFast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			addr := blk.Base + uint64(i%blockWords)*WordSize
			if _, ok := m.StoreFast(addr, uint64(i)); !ok {
				m.Store(addr, uint64(i))
			}
		}
	})
	b.Run("LoadFast", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			addr := blk.Base + uint64(i%blockWords)*WordSize
			if v, ok := m.LoadFast(addr); ok {
				sink += v
			} else {
				sink += m.Load(addr)
			}
		}
		_ = sink
	})
	b.Run("Load", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink += m.Load(blk.Base + uint64(i%blockWords)*WordSize)
		}
		_ = sink
	})

	// Alternating between two distant blocks defeats both the fast window
	// and the last-block cache on every access: the directory-walk floor.
	far := m.Alloc("bench.far", blockWords, KindWord)
	b.Run("LoadSlowPath", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			base := blk.Base
			if i&1 == 1 {
				base = far.Base
			}
			sink += m.Load(base + uint64(i%blockWords)*WordSize)
		}
		_ = sink
	})
}

// BenchmarkAllocFree measures the allocate/zero/free cycle, which bounds the
// simulator's malloc-heavy workloads (the HW scheme's only modeled overhead
// is allocation-time zero-filling, so the engine must not add real cost on
// top of it).
func BenchmarkAllocFree(b *testing.B) {
	for _, words := range []int{16, 512, 8192} {
		b.Run(sizeName(words), func(b *testing.B) {
			b.ReportAllocs()
			m := New()
			for i := 0; i < b.N; i++ {
				blk := m.Alloc("bench.cycle", words, KindWord)
				m.Store(blk.Base, uint64(i)) // touch so Free has live data to erase
				m.Free(blk.Base)
			}
		})
	}
}

func sizeName(words int) string {
	switch {
	case words >= 1024:
		return "8KiB+"
	case words >= 512:
		return "4KiB"
	default:
		return "128B"
	}
}
