package explore

import (
	"testing"

	"instantcheck/internal/analysis"
	"instantcheck/internal/apps"
	"instantcheck/internal/sim"
)

// waterPotHints derives preemption hints from the static race report:
// the unsuppressed waterProg pairs on the shared potential accumulator —
// exactly what `icvet race` points a tester at.
func waterPotHints(t *testing.T) []RaceHint {
	t.Helper()
	loader, err := analysis.NewLoader("../apps")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.Load("../apps")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var hints []RaceHint
	for _, p := range analysis.RaceCheck(pkg).Active() {
		if p.Program == "waterProg" && p.Region == "static:w.pot" {
			hints = append(hints, RaceHint{SiteA: p.A.FileLine(), SiteB: p.B.FileLine()})
		}
	}
	if len(hints) == 0 {
		t.Fatal("static report has no waterProg w.pot pairs to direct with")
	}
	return hints
}

// TestRaceDirectedFindsWaterSPBug reproduces the paper's Figure 7(b)
// hunt: waterSP with the seeded atomicity violation is deterministic
// under FP rounding unless a preemption lands inside thread 3's unlocked
// read-modify-write of the global energy. Directed search — forcing a
// scheduling decision at each statically-implicated site — must surface
// the differing final State Hash in strictly fewer runs than uniform
// random search over the same seeds.
func TestRaceDirectedFindsWaterSPBug(t *testing.T) {
	hints := waterPotHints(t)
	build := func() sim.Program {
		return apps.ByName("waterSP").Build(apps.Options{
			Threads: 4, Small: true, Bug: apps.BugAtomicity,
		})
	}
	// A long switch interval models realistic stress testing: random
	// preemptions are rare, so the ~4-op racy window is almost never hit
	// by chance — the regime where the hints matter.
	o := Options{Threads: 4, RoundFP: true, InputSeed: 1, SwitchInterval: 4000}
	const maxRuns = 60

	directed, err := FindNondeterminism(build, o, hints, maxRuns)
	if err != nil {
		t.Fatalf("directed search: %v", err)
	}
	if !directed.Found {
		t.Fatalf("directed search missed the Figure 7(b) bug in %d runs", directed.Runs)
	}
	if directed.Hits == 0 {
		t.Error("directed search fired no preemption hints: site matching is broken")
	}

	uniform, err := FindNondeterminism(build, o, nil, maxRuns)
	if err != nil {
		t.Fatalf("uniform search: %v", err)
	}
	if uniform.Found && uniform.Runs <= directed.Runs {
		t.Errorf("uniform search found the bug in %d runs, directed needed %d — hints are not helping",
			uniform.Runs, directed.Runs)
	}
	t.Logf("directed: found in %d runs (%d hint preemptions); uniform: found=%v in %d runs",
		directed.Runs, directed.Hits, uniform.Found, uniform.Runs)
}

// TestRaceDirectedCleanProgram checks directed search reports no
// nondeterminism on the unseeded waterSP: the hints point at the locked
// reduction, and preempting inside a correctly locked critical section
// must not change the outcome.
func TestRaceDirectedCleanProgram(t *testing.T) {
	hints := waterPotHints(t)
	build := func() sim.Program {
		return apps.ByName("waterSP").Build(apps.Options{Threads: 4, Small: true})
	}
	res, err := FindNondeterminism(build, Options{Threads: 4, RoundFP: true, InputSeed: 1}, hints, 8)
	if err != nil {
		t.Fatalf("directed search: %v", err)
	}
	if res.Found {
		t.Errorf("directed search reports nondeterminism on the clean program after %d runs", res.Runs)
	}
}
