package racefilter

// Shadow memory for the epoch detector: a dense two-level page directory
// mirroring internal/mem's address-space layout (4 KiB pages of 512
// 8-byte words, 128 pages per directory leaf), so a shadow-word lookup is
// the same three-shift walk the memory engine does — no per-access map
// hashing — and the one-entry last-page cache turns the common same-page
// access run into a single compare plus an index.
//
// Shadow pages are allocated on first touch. One shadow word is ~7 machine
// words, so the shadow overhead tracks the program's touched footprint,
// not its address-space extent.

const (
	// shadowPageShift is log2 of the simulated page size in bytes
	// (mem.PageWords × mem.WordSize = 512 × 8 = 4096).
	shadowPageShift = 12
	shadowPageWords = 512
	shadowLeafBits  = 7
	shadowLeafSize  = 1 << shadowLeafBits
)

// readEntry is one reader's last read of a word: the packed (slot, clock)
// epoch of the read and the source pc of the first read in that epoch.
// A zero epoch marks an empty entry (clocks start at 1, so no live read
// packs to zero).
type readEntry struct {
	epoch uint64
	pc    uintptr
}

// shadowWord is the per-address detector metadata. The inline two-entry
// read set covers the overwhelmingly common cases (thread-private words
// and producer/consumer pairs); words genuinely read by more threads
// between writes spill to a per-word map, and any write clears the read
// set back to the inline representation.
type shadowWord struct {
	write   uint64  // packed epoch of the last write; 0 = never written
	writePC uintptr // source pc of the first write in that epoch
	reads   [2]readEntry
	spill   map[int]readEntry // slot -> entry; non-nil only while inflated
}

type shadowPage [shadowPageWords]shadowWord

type shadowLeaf struct {
	pages [shadowLeafSize]*shadowPage
}

// shadowDir is the two-level shadow-page directory plus a one-entry
// last-page cache (the same idiom as the memory engine's fast window).
type shadowDir struct {
	root   []*shadowLeaf
	lastPN uint64
	lastPg *shadowPage
	pages  uint64 // shadow pages allocated (stats)
}

// word returns the shadow word for addr, allocating directory nodes and
// the page on first touch.
func (s *shadowDir) word(addr uint64) *shadowWord {
	pn := addr >> shadowPageShift
	if pn == s.lastPN && s.lastPg != nil {
		return &s.lastPg[(addr>>3)&(shadowPageWords-1)]
	}
	return s.wordSlow(addr, pn)
}

func (s *shadowDir) wordSlow(addr, pn uint64) *shadowWord {
	li := pn >> shadowLeafBits
	if uint64(len(s.root)) <= li {
		grown := make([]*shadowLeaf, li+1)
		copy(grown, s.root)
		s.root = grown
	}
	lf := s.root[li]
	if lf == nil {
		lf = &shadowLeaf{}
		s.root[li] = lf
	}
	pi := pn & (shadowLeafSize - 1)
	pg := lf.pages[pi]
	if pg == nil {
		pg = &shadowPage{}
		lf.pages[pi] = pg
		s.pages++
	}
	s.lastPN, s.lastPg = pn, pg
	return &pg[(addr>>3)&(shadowPageWords-1)]
}
