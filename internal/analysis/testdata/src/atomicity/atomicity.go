// Package atomicity is a golden fixture for the atomicity analyzer.
package atomicity

import (
	"instantcheck/internal/mem"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

type prog struct {
	acc  uint64
	hist uint64
	lock *sched.Mutex
	bar  *sched.Barrier
}

func (p *prog) Setup(t *sim.Thread) {
	p.acc = t.AllocStatic("at.acc", 1, mem.KindWord)
	p.hist = t.AllocStatic("at.hist", 8, mem.KindWord)
	p.lock = t.Machine().NewMutex("at.lock")
	p.bar = t.Machine().NewBarrier("at.bar")
}

func (p *prog) Worker(t *sim.Thread) {
	// Directly nested RMW with no lock held.
	t.Store(p.acc, t.Load(p.acc)+1) // want `read-modify-write of shared address p\.acc is not atomic`

	// The same RMW split across a local variable.
	v := t.Load(p.acc)
	t.Compute(2)
	t.Store(p.acc, v+2) // want `read-modify-write of shared address p\.acc is not atomic`

	// Locked RMW: fine.
	t.Lock(p.lock)
	t.Store(p.acc, t.Load(p.acc)+3)
	t.Unlock(p.lock)

	// Per-thread address (built from a local and the tid): fine.
	a := p.hist + uint64(t.TID())*mem.WordSize
	t.Store(a, t.Load(a)+1)

	// Reassigning the local breaks the load-store pairing: storing a
	// constant is not a read-modify-write.
	w := t.Load(p.acc)
	w = 7
	t.Store(p.acc, w)

	// A barrier between the load and the store orders them.
	x := t.Load(p.acc)
	t.BarrierWait(p.bar)
	t.Store(p.acc, x)

	// Store-buffer drain points are NOT synchronization: a checkpoint,
	// hashing-gate toggle or yield between the load and the store makes
	// the thread hash observable but orders nothing, so the RMW is still
	// flagged.
	y := t.Load(p.acc)
	t.Checkpoint("at.cp")
	t.Store(p.acc, y+1) // want `read-modify-write of shared address p\.acc is not atomic`

	z := t.Load(p.acc)
	t.StopHashing()
	t.StartHashing()
	t.Store(p.acc, z+1) // want `read-modify-write of shared address p\.acc is not atomic`

	q := t.Load(p.acc)
	t.Yield()
	t.Store(p.acc, q+1) // want `read-modify-write of shared address p\.acc is not atomic`
}
