package main

import (
	"encoding/json"
	"os"

	"instantcheck"
)

// The -json flag emits machine-readable experiment results for downstream
// plotting. The shapes below are stable, flat projections of the library
// types (the full reports contain per-run data that would bloat the
// output).

type table1JSON struct {
	App              string `json:"app"`
	Source           string `json:"source"`
	FP               bool   `json:"fp"`
	Class            string `json:"class"`
	DetAsIs          bool   `json:"det_as_is"`
	FirstNDetRun     int    `json:"first_ndet_run"`
	FPImpact         string `json:"fp_rounding_impact"`
	FirstNDetAfterFP int    `json:"first_ndet_run_after_fp"`
	IsolationImpact  string `json:"isolation_impact"`
	DetPoints        int    `json:"det_points"`
	NDetPoints       int    `json:"ndet_points"`
	DetAtEnd         bool   `json:"det_at_end"`
	Note             string `json:"note,omitempty"`
}

type table2JSON struct {
	App          string `json:"app"`
	Bug          string `json:"bug"`
	DetPoints    int    `json:"det_points"`
	NDetPoints   int    `json:"ndet_points"`
	FirstNDetRun int    `json:"first_ndet_run"`
}

type distJSON struct {
	App    string `json:"app"`
	Groups []struct {
		Distribution []int `json:"distribution"`
		Checkpoints  int   `json:"checkpoints"`
	} `json:"groups"`
}

type overheadJSON struct {
	App           string  `json:"app"`
	NativeInstr   uint64  `json:"native_instr"`
	HWInc         float64 `json:"hw_inc"`
	SWIncIdeal    float64 `json:"sw_inc_ideal"`
	SWIncBuffered float64 `json:"sw_inc_buffered"`
	SWTrIdeal     float64 `json:"sw_tr_ideal"`
}

type exploreeffJSON struct {
	App        string  `json:"app"`
	Bug        string  `json:"bug"`
	Strategy   string  `json:"strategy"`
	Trials     int     `json:"trials"`
	Detected   int     `json:"detected"`
	MedianRuns int     `json:"median_runs"`
	Censored   bool    `json:"censored"`
	Speedup    float64 `json:"speedup"`
}

func emitJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func table1ToJSON(rows []instantcheck.Table1Row) []table1JSON {
	out := make([]table1JSON, 0, len(rows))
	for _, r := range rows {
		out = append(out, table1JSON{
			App: r.App, Source: r.Source, FP: r.FP, Class: r.Class.String(),
			DetAsIs: r.DetAsIs, FirstNDetRun: r.FirstNDetRun,
			FPImpact: r.FPImpact, FirstNDetAfterFP: r.FirstNDetAfterFP,
			IsolationImpact: r.IsolationImpact,
			DetPoints:       r.DetPoints, NDetPoints: r.NDetPoints,
			DetAtEnd: r.DetAtEnd, Note: r.Note,
		})
	}
	return out
}

func table2ToJSON(rows []instantcheck.Table2Row) []table2JSON {
	out := make([]table2JSON, 0, len(rows))
	for _, r := range rows {
		out = append(out, table2JSON{
			App: r.App, Bug: r.Bug.String(),
			DetPoints: r.DetPoints, NDetPoints: r.NDetPoints,
			FirstNDetRun: r.FirstNDetRun,
		})
	}
	return out
}

func exploreeffToJSON(rows []instantcheck.ExploreEffRow) []exploreeffJSON {
	out := make([]exploreeffJSON, 0, len(rows))
	for _, r := range rows {
		out = append(out, exploreeffJSON{
			App: r.App, Bug: r.Bug.String(), Strategy: r.Strategy,
			Trials: r.Trials, Detected: r.Detected,
			MedianRuns: r.MedianRuns, Censored: r.Censored, Speedup: r.Speedup,
		})
	}
	return out
}

func distToJSON(ds []instantcheck.Distribution) []distJSON {
	out := make([]distJSON, 0, len(ds))
	for _, d := range ds {
		j := distJSON{App: d.App}
		for _, g := range d.Groups {
			j.Groups = append(j.Groups, struct {
				Distribution []int `json:"distribution"`
				Checkpoints  int   `json:"checkpoints"`
			}{g.Distribution, g.Checkpoints})
		}
		out = append(out, j)
	}
	return out
}

func overheadToJSON(rows []instantcheck.Overhead) []overheadJSON {
	out := make([]overheadJSON, 0, len(rows))
	for _, r := range rows {
		out = append(out, overheadJSON{
			App: r.Program, NativeInstr: r.NativeInstr,
			HWInc: r.HWInc, SWIncIdeal: r.SWIncIdeal,
			SWIncBuffered: r.SWIncBuffered, SWTrIdeal: r.SWTrIdeal,
		})
	}
	return out
}
