package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DirectState flags reads and writes of plain Go variables inside
// Setup/Worker bodies that bypass the Thread.Load/Store instrumentation.
//
// The simulator's soundness contract (and the paper's, §4.1) is that every
// shared store is observed by the hashing unit. A program builder can break
// it invisibly: capture a Go variable in the Worker closure — or touch a
// package-level variable, or a field of the program struct — and mutate it
// directly. No hash update fires, no event reaches the race-detector feed,
// and no test notices, because the corruption is deterministic under the
// serialized scheduler. The rules:
//
//   - Worker may not write any variable declared outside its own body: not
//     program-struct fields, not captured locals, not package-level vars.
//     Everything shared must live in simulated memory behind Thread.Store.
//   - Worker may not read a variable that Worker code writes directly (the
//     other half of the same race), nor any mutable package-level variable.
//   - Setup may not write package-level variables, and may not read mutable
//     ones: a Program instance is built fresh per run, but package state
//     persists across the runs of a campaign and makes "fixed input" false.
//
// Reads of program-struct fields in Worker are allowed — Setup initializes
// them before workers start and the checker treats them as frozen input.
var DirectState = &Analyzer{
	Name: "directstate",
	Doc:  "Go-state access in Setup/Worker that bypasses Thread.Load/Store",
	Run:  runDirectState,
}

func runDirectState(pass *Pass) {
	pkg := pass.Pkg
	funcs := progFuncs(pkg)
	if len(funcs) == 0 {
		return
	}

	// Package-level variables that anything in the package assigns are
	// "mutable": reading them in Setup/Worker observes cross-run state.
	mutable := make(map[types.Object]bool)
	inspectFiles(pkg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if obj := rootWriteObject(pkg, lhs); obj != nil && isPackageLevel(pkg, obj) {
					mutable[obj] = true
				}
			}
		case *ast.IncDecStmt:
			if obj := rootWriteObject(pkg, n.X); obj != nil && isPackageLevel(pkg, obj) {
				mutable[obj] = true
			}
		}
		return true
	})

	// Pass A: collect the objects Worker code writes directly, so reads of
	// them (from any Worker in the package) can be flagged too.
	written := make(map[types.Object]bool)
	for _, pf := range funcs {
		if pf.kind != "Worker" {
			continue
		}
		forEachWrite(pkg, pf.decl.Body, func(target ast.Expr, _ token.Pos) {
			if obj, shared := classifyWrite(pkg, pf.decl, target); shared {
				written[obj] = true
			}
		})
	}

	// Pass B: report.
	for _, pf := range funcs {
		pf := pf
		writePos := make(map[*ast.Ident]bool)
		forEachWrite(pkg, pf.decl.Body, func(target ast.Expr, pos token.Pos) {
			obj, shared := classifyWrite(pkg, pf.decl, target)
			markWriteIdents(target, writePos)
			if obj == nil {
				return
			}
			switch {
			case pf.kind == "Worker" && shared:
				pass.Reportf(pos, "Worker writes %s directly, bypassing Thread.Store: the store is invisible to the state hash and the race-detector feed", objDesc(pkg, obj))
			case pf.kind == "Setup" && isPackageLevel(pkg, obj):
				pass.Reportf(pos, "Setup writes package-level %s directly: package state outlives the run and breaks the fixed-input contract; allocate simulated memory instead", objDesc(pkg, obj))
			}
		})
		ast.Inspect(pf.decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || writePos[id] {
				return true
			}
			obj := pkg.Info.Uses[id]
			v, ok := obj.(*types.Var)
			if !ok {
				return true
			}
			switch {
			case pf.kind == "Worker" && written[v]:
				pass.Reportf(id.Pos(), "Worker reads %s, which Worker code elsewhere writes directly; route this shared state through simulated memory (Thread.Load/Store)", objDesc(pkg, v))
			case isPackageLevel(pkg, v) && mutable[v]:
				pass.Reportf(id.Pos(), "%s reads mutable package-level %s, bypassing Thread.Load: its value depends on prior runs of the campaign", pf.kind, objDesc(pkg, v))
			}
			return true
		})
	}
}

// forEachWrite calls fn for every assignment target and inc/dec operand in
// body, skipping pure declarations (v := ... defines a new local).
func forEachWrite(pkg *Package, body *ast.BlockStmt, fn func(target ast.Expr, pos token.Pos)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if id.Name == "_" {
						continue
					}
					// x := ... declares; not a write to shared state.
					if pkg.Info.Defs[id] != nil {
						continue
					}
				}
				fn(lhs, lhs.Pos())
			}
		case *ast.IncDecStmt:
			fn(n.X, n.X.Pos())
		}
		return true
	})
}

// classifyWrite resolves a write target to the object that names the
// written state and reports whether that state lives outside the enclosing
// Setup/Worker function. For selector targets the object is the field; the
// base decides locality, so writing a field of a function-local struct is
// fine while writing through the receiver is shared.
func classifyWrite(pkg *Package, fd *ast.FuncDecl, target ast.Expr) (types.Object, bool) {
	base := target
	var field types.Object
	for {
		switch t := base.(type) {
		case *ast.ParenExpr:
			base = t.X
		case *ast.IndexExpr:
			base = t.X
		case *ast.StarExpr:
			base = t.X
		case *ast.SelectorExpr:
			if field == nil {
				field = pkg.Info.Uses[t.Sel]
			}
			base = t.X
		default:
			id, ok := base.(*ast.Ident)
			if !ok {
				return nil, false
			}
			obj := pkg.Info.Uses[id]
			if obj == nil {
				obj = pkg.Info.Defs[id]
			}
			v, ok := obj.(*types.Var)
			if !ok {
				return nil, false
			}
			named := obj
			if field != nil {
				named = field
			}
			if isPackageLevel(pkg, v) {
				return named, true
			}
			// Declared inside the function body (locals) -> private to the
			// thread. The receiver and parameters are declared in the
			// signature, outside the body, so writes through them are
			// shared.
			local := v.Pos() >= fd.Body.Pos() && v.Pos() <= fd.Body.End()
			return named, !local
		}
	}
}

// rootWriteObject returns the root object a write target ultimately names
// (the base variable, or the package-level var behind selectors), for the
// package-level mutability scan.
func rootWriteObject(pkg *Package, target ast.Expr) types.Object {
	for {
		switch t := target.(type) {
		case *ast.ParenExpr:
			target = t.X
		case *ast.IndexExpr:
			target = t.X
		case *ast.StarExpr:
			target = t.X
		case *ast.SelectorExpr:
			target = t.X
		case *ast.Ident:
			if obj := pkg.Info.Uses[t]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[t]
		default:
			return nil
		}
	}
}

// markWriteIdents records the identifiers that make up a write target so
// the read scan does not double-report them.
func markWriteIdents(target ast.Expr, set map[*ast.Ident]bool) {
	ast.Inspect(target, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			set[id] = true
		}
		return true
	})
}

// objDesc names an object for a diagnostic.
func objDesc(pkg *Package, obj types.Object) string {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return "field " + v.Name()
	}
	if isPackageLevel(pkg, obj) {
		return "variable " + obj.Name()
	}
	return "variable " + obj.Name()
}
