// Package explore implements the systematic-testing application of the
// InstantCheck primitive (paper §6.2). Systematic testing (CHESS-style)
// enumerates thread interleavings of a program while checking properties;
// its search space grows exponentially with the number of scheduling
// decisions. One way to fight the explosion is to recognize *equivalent
// states* and prune the search. Comparing entire states in software is too
// expensive, so CHESS prunes only by happens-before equivalence — which
// misses schedules that commute to the same state (the paper's Figure 1:
// two lock acquisition orders, same final state, different happens-before).
//
// With InstantCheck's cheap state hashes, pruning can be done by *state
// equality*: at every quiescent checkpoint (a barrier episode, where every
// thread is at a known program point) the explorer looks up the pair
// (checkpoint ordinal, State Hash); if it was already visited, the
// continuation subtree is identical to one explored before, and the run is
// aborted on the spot. This is both faster (more schedules pruned) and
// more precise (detects equal states even when the synchronization order
// differs) than happens-before pruning.
//
// The explorer is a stateless-search DFS over scheduling decisions, driven
// through the simulator's controlled scheduler: a scripted decider replays
// a prefix of choices and takes the first option afterwards, recording
// every decision point it passes; the explorer then branches on the
// recorded free decisions.
package explore

import (
	"errors"
	"fmt"

	"instantcheck/internal/ihash"
	"instantcheck/internal/replay"
	"instantcheck/internal/sim"
)

// Options configures an exploration.
type Options struct {
	// Threads is the program's worker count.
	Threads int
	// PreemptEvery inserts a scheduling decision every k simulated
	// operations in addition to the decisions at blocking points; 0
	// explores only blocking-point nondeterminism (non-preemptive
	// schedules).
	PreemptEvery int
	// MaxRuns bounds the number of schedules executed (0 = 100000).
	MaxRuns int
	// MaxDecisions bounds the branching depth considered per run: free
	// decisions beyond it are not branched on (0 = unlimited). This is
	// the "bounded" in bounded systematic testing.
	MaxDecisions int
	// Prune enables state-hash pruning at quiescent checkpoints.
	Prune bool
	// Scheme selects the hashing scheme (default HWInc).
	Scheme sim.Scheme
	// RoundFP enables FP rounding for the state hashes.
	RoundFP bool
	// InputSeed fixes the program's replayed input.
	InputSeed int64
	// SwitchInterval is the mean operation count between random forced
	// preemptions for FindNondeterminism runs (<= 0 selects the
	// scheduler default). Systematic ignores it: its decider controls
	// switching through PreemptEvery.
	SwitchInterval int
}

// Result summarizes an exploration.
type Result struct {
	// Runs is the number of schedules executed (including aborted ones).
	Runs int
	// CompletedRuns is the number of schedules that ran to the end.
	CompletedRuns int
	// PrunedRuns is the number of schedules aborted by state-hash pruning.
	PrunedRuns int
	// FinalStates maps each distinct final State Hash to the number of
	// completed runs that produced it. One entry means the program is
	// externally deterministic across the explored schedules.
	FinalStates map[ihash.Digest]int
	// StatesSeen is the number of distinct (checkpoint, hash) pairs
	// encountered.
	StatesSeen int
	// Exhausted is true when the whole bounded schedule tree was covered
	// within MaxRuns.
	Exhausted bool
}

// Deterministic reports whether every completed schedule ended in the same
// state.
func (r *Result) Deterministic() bool { return len(r.FinalStates) <= 1 }

// errPruned marks a run cancelled by state-hash pruning.
var errPruned = errors.New("explore: state already visited")

// decision records one branching point encountered during a run.
type decision struct {
	options int
	chosen  int
}

// scriptedDecider replays a choice prefix, then follows a deterministic
// round-robin default, recording every decision point. The default must
// rotate rather than always taking option 0: a fixed choice can starve a
// program that spins on a flag (hand-coded synchronization) by re-picking
// the spinner forever, while rotation guarantees progress.
type scriptedDecider struct {
	prefix       []int
	preemptEvery int
	trace        []decision
}

// SwitchBudget implements sched.Decider.
func (d *scriptedDecider) SwitchBudget() int {
	if d.preemptEvery <= 0 {
		return 1 << 30 // switch only at blocking points
	}
	return d.preemptEvery
}

// Pick implements sched.Decider: scripted prefix first, then round-robin.
func (d *scriptedDecider) Pick(n int) int {
	i := len(d.trace)
	choice := i % n
	if i < len(d.prefix) {
		choice = d.prefix[i]
		if choice >= n {
			// Should not happen if replay is exact; clamp defensively so a
			// broken script fails loudly via a different schedule rather
			// than an index panic.
			choice = n - 1
		}
	}
	d.trace = append(d.trace, decision{options: n, chosen: choice})
	return choice
}

// stateKey identifies a quiescent program state.
type stateKey struct {
	ordinal int
	sh      ihash.Digest
}

// Systematic enumerates the program's bounded schedule tree and returns
// coverage statistics. With Prune set, subtrees rooted at already-visited
// quiescent states are cut.
func Systematic(build func() sim.Program, o Options) (*Result, error) {
	if o.Threads <= 0 {
		return nil, fmt.Errorf("explore: Threads must be positive")
	}
	maxRuns := o.MaxRuns
	if maxRuns == 0 {
		maxRuns = 100000
	}
	scheme := o.Scheme
	if scheme == sim.Native {
		scheme = sim.HWInc
	}

	res := &Result{FinalStates: make(map[ihash.Digest]int)}
	seen := make(map[stateKey]bool)
	env := replay.NewEnv(o.InputSeed)
	addrLog := replay.NewAddrLog()

	// DFS over choice prefixes.
	stack := [][]int{nil}
	for len(stack) > 0 && res.Runs < maxRuns {
		prefix := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		d := &scriptedDecider{prefix: prefix, preemptEvery: o.PreemptEvery}
		pruned := false
		hook := func(cp sim.Checkpoint) error {
			if !o.Prune || cp.Label == "end" {
				return nil
			}
			// Checkpoints reached before the scripted prefix is consumed
			// lie on a path shared with the parent schedule; their states
			// are necessarily already marked and must not prune this run
			// before it diverges.
			if len(d.trace) < len(d.prefix) {
				return nil
			}
			key := stateKey{cp.Ordinal, cp.SH}
			if seen[key] {
				pruned = true
				return errPruned
			}
			seen[key] = true
			return nil
		}
		m := sim.NewMachine(sim.Config{
			Threads:        o.Threads,
			Scheme:         scheme,
			RoundFP:        o.RoundFP,
			Decider:        d,
			CheckpointHook: hook,
			Env:            env,
			AddrLog:        addrLog,
		})
		r, err := m.Run(build())
		res.Runs++
		switch {
		case err == nil:
			res.CompletedRuns++
			res.FinalStates[r.FinalSH()]++
			for _, cp := range r.Checkpoints {
				if cp.Label != "end" {
					seen[stateKey{cp.Ordinal, cp.SH}] = true
				}
			}
		case pruned && errors.Is(err, errPruned):
			res.PrunedRuns++
		default:
			return nil, fmt.Errorf("explore: run %d: %w", res.Runs, err)
		}

		// Branch on the free decisions this run took (beyond the prefix),
		// in reverse order so the DFS explores left-to-right.
		limit := len(d.trace)
		if o.MaxDecisions > 0 && o.MaxDecisions < limit {
			limit = o.MaxDecisions
		}
		for i := limit - 1; i >= len(prefix); i-- {
			dec := d.trace[i]
			for c := dec.options - 1; c >= 1; c-- {
				branch := make([]int, i+1)
				for j := 0; j < i; j++ {
					branch[j] = d.trace[j].chosen
				}
				branch[i] = c
				stack = append(stack, branch)
			}
		}
	}
	res.StatesSeen = len(seen)
	res.Exhausted = len(stack) == 0
	return res, nil
}
