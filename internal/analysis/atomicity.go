package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomicity flags unlocked read-modify-write sequences on shared simulated
// addresses: t.Store(a, f(t.Load(a))) — directly nested or split across
// statements through a local — with no Lock held at either end.
//
// This is the static mirror of the paper's §4.1 atomicity caveat: the
// incremental scheme's instrumentation reads the old value and writes the
// new one, and if the program's own read-modify-write is not atomic, a
// preemption between the load and the store loses concurrent updates
// (Figure 7(b)) and can feed a stale old value into the hash (the
// SWIncNonAtomic scheme exhibits exactly this dynamically).
//
// Only addresses that are the same on every thread are considered: an
// address expression built from loop indices, tids, or other basic-typed
// locals (idx(p.hist, i), idx(p.freeHeads, t.TID())) names per-thread or
// per-element state that kernels legitimately update without locks.
// "p.pot"-shaped addresses — receiver fields and package-level state only —
// are the shared accumulators the caveat is about.
var Atomicity = &Analyzer{
	Name: "atomicity",
	Doc:  "unlocked read-modify-write of a shared simulated address (§4.1)",
	Run:  runAtomicity,
}

func runAtomicity(pass *Pass) {
	s := &atomScanner{pass: pass}
	funcBodies(pass.Pkg, func(_ string, body *ast.BlockStmt) {
		s.walkStmts(body.List, newAtomState())
	})
}

// atomState is the scanner's flow state: the lock nesting depth and, for
// each local variable, the shared address its value was loaded from.
type atomState struct {
	depth int
	binds map[types.Object]string
}

func newAtomState() *atomState {
	return &atomState{binds: make(map[types.Object]string)}
}

func (st *atomState) clone() *atomState {
	c := &atomState{depth: st.depth, binds: make(map[types.Object]string, len(st.binds))}
	for k, v := range st.binds {
		c.binds[k] = v
	}
	return c
}

type atomScanner struct {
	pass *Pass
}

// walkStmts scans a statement list in order, returning true when control
// definitely leaves the list early (the remaining statements are dead).
func (s *atomScanner) walkStmts(list []ast.Stmt, st *atomState) bool {
	for _, stmt := range list {
		if s.walkStmt(stmt, st) {
			return true
		}
	}
	return false
}

func (s *atomScanner) walkStmt(stmt ast.Stmt, st *atomState) bool {
	switch stmt := stmt.(type) {
	case *ast.ExprStmt:
		s.scanExpr(stmt.X, st)
		return stmtTerminates(stmt)
	case *ast.AssignStmt:
		s.assign(stmt, st)
	case *ast.DeclStmt:
		if gd, ok := stmt.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					s.bindSpec(vs, st)
				}
			}
		}
	case *ast.IfStmt:
		if stmt.Init != nil {
			s.walkStmt(stmt.Init, st)
		}
		s.scanExpr(stmt.Cond, st)
		bodySt := st.clone()
		bodyTerm := s.walkStmts(stmt.Body.List, bodySt)
		if stmt.Else == nil {
			if !bodyTerm {
				*st = *bodySt
			}
			return false
		}
		elseSt := st.clone()
		elseTerm := s.walkStmt(stmt.Else, elseSt)
		switch {
		case bodyTerm && !elseTerm:
			*st = *elseSt
		case !bodyTerm:
			*st = *bodySt
		}
		return bodyTerm && elseTerm
	case *ast.ForStmt:
		if stmt.Init != nil {
			s.walkStmt(stmt.Init, st)
		}
		if stmt.Cond != nil {
			s.scanExpr(stmt.Cond, st)
		}
		body := st.clone()
		s.walkStmts(stmt.Body.List, body)
		if stmt.Post != nil {
			s.walkStmt(stmt.Post, body)
		}
		*st = *body
	case *ast.RangeStmt:
		s.scanExpr(stmt.X, st)
		body := st.clone()
		s.walkStmts(stmt.Body.List, body)
		*st = *body
	case *ast.BlockStmt:
		return s.walkStmts(stmt.List, st)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Each clause is scanned against a copy of the incoming state; the
		// post-switch state conservatively keeps the incoming one.
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CaseClause:
				s.walkStmts(n.Body, st.clone())
				return false
			case *ast.CommClause:
				s.walkStmts(n.Body, st.clone())
				return false
			}
			return true
		})
	case *ast.LabeledStmt:
		return s.walkStmt(stmt.Stmt, st)
	case *ast.ReturnStmt:
		for _, r := range stmt.Results {
			s.scanExpr(r, st)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.DeferStmt, *ast.GoStmt:
		// A deferred Unlock releases at return, so the rest of the body
		// stays locked — leave the depth untouched. Everything else in the
		// call is still scanned for stores.
		var call *ast.CallExpr
		if d, ok := stmt.(*ast.DeferStmt); ok {
			call = d.Call
		} else {
			call = stmt.(*ast.GoStmt).Call
		}
		if name, ok := threadMethod(s.pass.Pkg, call); !ok || (name != "Unlock" && name != "Lock") {
			s.scanExpr(call, st)
		}
	case *ast.IncDecStmt:
		s.scanExpr(stmt.X, st)
	case *ast.SendStmt:
		s.scanExpr(stmt.Chan, st)
		s.scanExpr(stmt.Value, st)
	}
	return false
}

// assign handles binding: x := t.Load(addr) remembers that x holds the
// value at addr; any other assignment to x forgets it.
func (s *atomScanner) assign(stmt *ast.AssignStmt, st *atomState) {
	pkg := s.pass.Pkg
	paired := len(stmt.Lhs) == len(stmt.Rhs)
	for i, rhs := range stmt.Rhs {
		s.scanExpr(rhs, st)
		if !paired {
			continue
		}
		id, ok := stmt.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		if key := s.loadKey(rhs); key != "" && (stmt.Tok == token.ASSIGN || stmt.Tok == token.DEFINE) {
			st.binds[obj] = key
		} else {
			delete(st.binds, obj)
		}
	}
	if !paired {
		for _, lhs := range stmt.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := pkg.Info.Defs[id]; obj != nil {
					delete(st.binds, obj)
				} else if obj := pkg.Info.Uses[id]; obj != nil {
					delete(st.binds, obj)
				}
			}
		}
	}
}

func (s *atomScanner) bindSpec(vs *ast.ValueSpec, st *atomState) {
	if len(vs.Values) != len(vs.Names) {
		return
	}
	for i, rhs := range vs.Values {
		s.scanExpr(rhs, st)
		obj := s.pass.Pkg.Info.Defs[vs.Names[i]]
		if obj == nil {
			continue
		}
		if key := s.loadKey(rhs); key != "" {
			st.binds[obj] = key
		}
	}
}

// loadKey returns the address key when e contains a Load/LoadF of a shared
// address ("" otherwise).
func (s *atomScanner) loadKey(e ast.Expr) string {
	pkg := s.pass.Pkg
	key := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if key != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := threadMethod(pkg, call); ok && (name == "Load" || name == "LoadF") && len(call.Args) == 1 {
			if sharedAddr(pkg, call.Args[0]) {
				key = exprKey(call.Args[0])
				return false
			}
		}
		return true
	})
	return key
}

// scanExpr walks an expression in evaluation order, maintaining lock depth
// and checking stores. Function literals are scanned as separate bodies.
func (s *atomScanner) scanExpr(e ast.Expr, st *atomState) {
	pkg := s.pass.Pkg
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.walkStmts(n.Body.List, newAtomState())
			return false
		case *ast.CallExpr:
			name, ok := threadMethod(pkg, n)
			if !ok {
				return true
			}
			switch name {
			case "Lock":
				st.depth++
			case "Unlock":
				if st.depth > 0 {
					st.depth--
				}
			case "BarrierWait", "CondWait":
				// Synchronization orders the earlier load before any
				// conflicting store: the pair is no longer an unlocked RMW.
				st.binds = make(map[types.Object]string)
			case "Checkpoint", "StartHashing", "StopHashing", "Yield":
				// Store-buffer drain points, but NOT synchronization: they
				// make the thread hash observable without ordering this
				// thread's accesses against anyone else's, so an RMW
				// spanning one is still an unlocked RMW. Binds survive.
			case "Store", "StoreF":
				s.checkStore(n, st)
			}
		}
		return true
	})
}

// checkStore reports when an unlocked store's value derives from an
// unlocked load of the same shared address.
func (s *atomScanner) checkStore(call *ast.CallExpr, st *atomState) {
	pkg := s.pass.Pkg
	if st.depth > 0 || len(call.Args) != 2 {
		return
	}
	addr, val := call.Args[0], call.Args[1]
	if !sharedAddr(pkg, addr) {
		return
	}
	key := exprKey(addr)
	reported := false
	report := func(how string) {
		if reported {
			return
		}
		reported = true
		s.pass.Reportf(call.Pos(),
			"read-modify-write of shared address %s is not atomic (%s with no lock held): a preemption between the load and the store loses concurrent updates and corrupts the incremental hash (§4.1)",
			key, how)
	}
	ast.Inspect(val, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := threadMethod(pkg, n); ok && (name == "Load" || name == "LoadF") && len(n.Args) == 1 {
				if exprKey(n.Args[0]) == key {
					report("the new value loads the old one in place")
				}
			}
		case *ast.Ident:
			if obj := pkg.Info.Uses[n]; obj != nil && st.binds[obj] == key {
				report("the new value is computed from " + n.Name + ", loaded from the same address earlier")
			}
		}
		return true
	})
}
