package farm

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"instantcheck/internal/ihash"
	"instantcheck/internal/sim"
)

// The store is an append-only, crash-tolerant record of every State Hash
// the farm computes. One text line per record:
//
//	checkfarm-log v1                       header
//	job <id> <spec-json>                   job submitted
//	runstart <id> <run>                    run attempt begins
//	cp <id> <run> <ordinal> <sh> <label>   one checkpoint hash
//	out <id> <run> <fd> <hash> <bytes>     one output-stream hash (§4.3)
//	runend <id> <run> <checkpoints>        run committed
//	explored <id> <outcome-json>           explore job's search outcome
//	jobend <id> <status> <quoted-error>    job reached a terminal state
//
// A run counts only when its runend commit marker is present and its
// checkpoint count matches; anything after the last commit marker — a
// truncated trailing line, a half-written run from a crashed daemon — is
// ignored on load and simply re-executed. Because every run of a campaign
// is reproducible from (seed, replay logs) alone, re-execution yields the
// same hashes the lost lines would have contained, so a resumed campaign
// converges to the identical report.

const storeHeader = "checkfarm-log v1"

// RunLog is one committed run's records.
type RunLog struct {
	// Checkpoints holds the run's hash vector in checkpoint order.
	Checkpoints []HashLogLine
	// Outputs holds the run's per-descriptor output-stream hashes.
	Outputs []OutRecord
	// Done is true once the commit marker was seen.
	Done bool
}

// OutRecord is one output stream's hash (fd, FNV hash, byte count).
type OutRecord struct {
	FD    int
	Hash  uint64
	Bytes uint64
}

// JobLog is the store's view of one job.
type JobLog struct {
	// ID is the job's identifier.
	ID JobID
	// Spec is the submitted campaign description.
	Spec JobSpec
	// Final is "" while the job is unfinished, else "done", "failed" or
	// "canceled".
	Final string
	// Err carries the failure message for failed jobs.
	Err string
	// Explore is the recorded search outcome of a finished explore job
	// (nil for check jobs and for explore jobs that never completed).
	Explore *ExploreOutcome

	runs map[int]*RunLog
}

// Run returns the committed log of the given run, or nil.
func (jl *JobLog) Run(run int) *RunLog {
	rl := jl.runs[run]
	if rl == nil || !rl.Done {
		return nil
	}
	return rl
}

// CompletedRuns lists the committed run indices in increasing order.
func (jl *JobLog) CompletedRuns() []int {
	var out []int
	for run, rl := range jl.runs {
		if rl.Done {
			out = append(out, run)
		}
	}
	sort.Ints(out)
	return out
}

// HashLog flattens the job's committed runs into hash-log lines, ordered
// by run then checkpoint — the stream the hashlog endpoint serves.
func (jl *JobLog) HashLog() []HashLogLine {
	var out []HashLogLine
	for _, run := range jl.CompletedRuns() {
		out = append(out, jl.runs[run].Checkpoints...)
	}
	return out
}

// sameResult checks a fresh result against this committed run's records,
// the conflict detector behind AppendRun's idempotence.
func (rl *RunLog) sameResult(res *sim.Result) error {
	if len(rl.Checkpoints) != len(res.Checkpoints) {
		return fmt.Errorf("committed %d checkpoints, appended %d", len(rl.Checkpoints), len(res.Checkpoints))
	}
	for i, cp := range res.Checkpoints {
		have := rl.Checkpoints[i]
		if have.Ordinal != cp.Ordinal || have.SH != cp.SH || have.Label != cp.Label {
			return fmt.Errorf("checkpoint %d: committed (%d %v %q), appended (%d %v %q)",
				i, have.Ordinal, have.SH, have.Label, cp.Ordinal, cp.SH, cp.Label)
		}
	}
	if len(rl.Outputs) != len(res.Outputs) {
		return fmt.Errorf("committed %d output streams, appended %d", len(rl.Outputs), len(res.Outputs))
	}
	for _, o := range rl.Outputs {
		got, ok := res.Outputs[o.FD]
		if !ok || got.Hash != o.Hash || got.Bytes != o.Bytes {
			return fmt.Errorf("output fd %d: committed (%016x %d), appended (%016x %d ok=%v)",
				o.FD, o.Hash, o.Bytes, got.Hash, got.Bytes, ok)
		}
	}
	return nil
}

// Result reconstructs a committed run as a checker run result. Only the
// hash-level fields are populated — exactly what report assembly compares.
func (rl *RunLog) Result() *sim.Result {
	res := &sim.Result{}
	for _, cp := range rl.Checkpoints {
		res.Checkpoints = append(res.Checkpoints, sim.Checkpoint{
			Ordinal: cp.Ordinal,
			Label:   cp.Label,
			SH:      cp.SH,
		})
	}
	if len(rl.Outputs) > 0 {
		res.Outputs = make(map[int]sim.OutputStream, len(rl.Outputs))
		for _, o := range rl.Outputs {
			res.Outputs[o.FD] = sim.OutputStream{Hash: o.Hash, Bytes: o.Bytes}
			res.OutputBytes += o.Bytes
		}
	}
	res.OutputHash = res.Outputs[sim.Stdout].Hash
	return res
}

// Store is the append-only hash-log store plus its in-memory index. All
// methods are safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	w       *bufio.Writer
	jobs    map[JobID]*JobLog
	order   []JobID
	maxID   int
	metrics *Metrics
}

// setMetrics attaches the farm's metrics so append latency and volume are
// observable. Nil is fine (standalone stores in tests stay uninstrumented).
func (s *Store) setMetrics(m *Metrics) {
	s.mu.Lock()
	s.metrics = m
	s.mu.Unlock()
}

// OpenStore opens (creating if needed) the store at path and rebuilds the
// index by scanning the log. Unparseable trailing data — the signature of
// a crash mid-append — is tolerated and skipped.
func OpenStore(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("farm: open store: %w", err)
	}
	s := &Store{path: path, f: f, jobs: make(map[JobID]*JobLog)}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	end, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("farm: seek store: %w", err)
	}
	s.w = bufio.NewWriter(f)
	if end == 0 {
		if err := s.appendLine(storeHeader); err != nil {
			f.Close()
			return nil, err
		}
	} else if err := s.terminateTornLine(end); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// terminateTornLine makes sure the log ends with a newline before new
// records are appended. A crash can leave a half-written final line; the
// loader already skips it, but without the terminator the next append
// would fuse onto the torn line and be lost too.
func (s *Store) terminateTornLine(end int64) error {
	buf := make([]byte, 1)
	if _, err := s.f.ReadAt(buf, end-1); err != nil {
		return fmt.Errorf("farm: read store tail: %w", err)
	}
	if buf[0] == '\n' {
		return nil
	}
	if _, err := s.w.WriteString("\n"); err != nil {
		return err
	}
	return s.w.Flush()
}

// Path returns the on-disk location of the log.
func (s *Store) Path() string { return s.path }

// Close flushes and closes the log file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.f.Close()
}

// load scans the log and rebuilds the index.
func (s *Store) load() error {
	sc := bufio.NewScanner(s.f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		s.indexLine(strings.TrimRight(sc.Text(), "\r"))
	}
	return sc.Err()
}

// indexLine folds one log line into the index. Malformed lines are
// skipped: the only way they arise is a crash mid-write, and their data is
// recomputed on resume.
func (s *Store) indexLine(line string) {
	if line == "" || line == storeHeader {
		return
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 3 {
		return
	}
	kind, id, rest := parts[0], JobID(parts[1]), parts[2]
	if kind == "job" {
		var spec JobSpec
		if err := json.Unmarshal([]byte(rest), &spec); err != nil {
			return
		}
		if _, ok := s.jobs[id]; !ok {
			s.jobs[id] = &JobLog{ID: id, Spec: spec, runs: make(map[int]*RunLog)}
			s.order = append(s.order, id)
			if n, err := strconv.Atoi(strings.TrimPrefix(string(id), "j")); err == nil && n > s.maxID {
				s.maxID = n
			}
		}
		return
	}
	jl := s.jobs[id]
	if jl == nil {
		return
	}
	switch kind {
	case "runstart":
		run, err := strconv.Atoi(rest)
		if err != nil {
			return
		}
		// A fresh attempt discards any half-written earlier attempt.
		jl.runs[run] = &RunLog{}
	case "cp":
		f := strings.SplitN(rest, " ", 4)
		if len(f) != 4 {
			return
		}
		run, err1 := strconv.Atoi(f[0])
		ord, err2 := strconv.Atoi(f[1])
		sh, err3 := strconv.ParseUint(f[2], 16, 64)
		label, err4 := strconv.Unquote(f[3])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return
		}
		rl := jl.runs[run]
		if rl == nil || rl.Done {
			return
		}
		rl.Checkpoints = append(rl.Checkpoints, HashLogLine{Run: run, Ordinal: ord, Label: label, SH: ihash.Digest(sh)})
	case "out":
		f := strings.Fields(rest)
		if len(f) != 4 {
			return
		}
		run, err1 := strconv.Atoi(f[0])
		fd, err2 := strconv.Atoi(f[1])
		hash, err3 := strconv.ParseUint(f[2], 16, 64)
		bytes, err4 := strconv.ParseUint(f[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return
		}
		rl := jl.runs[run]
		if rl == nil || rl.Done {
			return
		}
		rl.Outputs = append(rl.Outputs, OutRecord{FD: fd, Hash: hash, Bytes: bytes})
	case "runend":
		f := strings.Fields(rest)
		if len(f) != 2 {
			return
		}
		run, err1 := strconv.Atoi(f[0])
		ncp, err2 := strconv.Atoi(f[1])
		if err1 != nil || err2 != nil {
			return
		}
		rl := jl.runs[run]
		if rl == nil || len(rl.Checkpoints) != ncp {
			return // commit marker without matching data: drop the run
		}
		rl.Done = true
	case "explored":
		var out ExploreOutcome
		if err := json.Unmarshal([]byte(rest), &out); err != nil {
			return
		}
		jl.Explore = &out
	case "jobend":
		f := strings.SplitN(rest, " ", 2)
		jl.Final = f[0]
		if len(f) == 2 {
			if msg, err := strconv.Unquote(f[1]); err == nil {
				jl.Err = msg
			}
		}
	}
}

// appendLine writes one line and syncs it to disk. Every record is
// durable before the call returns: a crash never loses a committed run.
func (s *Store) appendLine(line string) error {
	start := time.Now()
	err := func() error {
		if _, err := s.w.WriteString(line + "\n"); err != nil {
			return err
		}
		if err := s.w.Flush(); err != nil {
			return err
		}
		return s.f.Sync()
	}()
	s.metrics.storeAppend(time.Since(start), len(line)+1, err)
	return err
}

// NextID allocates the next job identifier.
func (s *Store) NextID() JobID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxID++
	return JobID(fmt.Sprintf("j%06d", s.maxID))
}

// BeginJob records a submitted job.
func (s *Store) BeginJob(id JobID, spec JobSpec) error {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; ok {
		return fmt.Errorf("farm: job %s already in store", id)
	}
	if err := s.appendLine(fmt.Sprintf("job %s %s", id, specJSON)); err != nil {
		return err
	}
	s.jobs[id] = &JobLog{ID: id, Spec: spec, runs: make(map[int]*RunLog)}
	s.order = append(s.order, id)
	return nil
}

// AppendRun commits one run's hashes: the checkpoint lines, the output
// lines and the commit marker are appended and synced as a unit.
//
// The append is idempotent by run index: committing a run that is already
// committed with identical content is a no-op (no duplicate lines reach
// the log), which is what makes a fleet's straggler re-dispatch safe — a
// re-dispatched shard and its zombie worker both append, the store keeps
// one canonical record set. Content that DISAGREES with the committed run
// is an error: runs are deterministic, so a conflict means a harness bug
// (mismatched binaries or seeds), never a benign race.
func (s *Store) AppendRun(id JobID, run int, res *sim.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	jl := s.jobs[id]
	if jl == nil {
		return fmt.Errorf("farm: job %s not in store", id)
	}
	if prev := jl.runs[run]; prev != nil && prev.Done {
		if err := prev.sameResult(res); err != nil {
			return fmt.Errorf("farm: job %s run %d: duplicate append disagrees with committed record: %w", id, run, err)
		}
		return nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "runstart %s %d\n", id, run)
	rl := &RunLog{}
	for _, cp := range res.Checkpoints {
		fmt.Fprintf(&sb, "cp %s %d %d %016x %q\n", id, run, cp.Ordinal, uint64(cp.SH), cp.Label)
		rl.Checkpoints = append(rl.Checkpoints, HashLogLine{Run: run, Ordinal: cp.Ordinal, Label: cp.Label, SH: cp.SH})
	}
	fds := make([]int, 0, len(res.Outputs))
	for fd := range res.Outputs {
		fds = append(fds, fd)
	}
	sort.Ints(fds)
	for _, fd := range fds {
		o := res.Outputs[fd]
		fmt.Fprintf(&sb, "out %s %d %d %016x %d\n", id, run, fd, o.Hash, o.Bytes)
		rl.Outputs = append(rl.Outputs, OutRecord{FD: fd, Hash: o.Hash, Bytes: o.Bytes})
	}
	fmt.Fprintf(&sb, "runend %s %d %d", id, run, len(res.Checkpoints))
	if err := s.appendLine(sb.String()); err != nil {
		return err
	}
	rl.Done = true
	jl.runs[run] = rl
	return nil
}

// SetExploreOutcome records an explore job's search outcome. Written
// before the jobend marker, it is what Resume rebuilds a finished explore
// job's report from — the run records alone cannot say at which run the
// search stopped or why.
func (s *Store) SetExploreOutcome(id JobID, out *ExploreOutcome) error {
	outJSON, err := json.Marshal(out)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	jl := s.jobs[id]
	if jl == nil {
		return fmt.Errorf("farm: job %s not in store", id)
	}
	if err := s.appendLine(fmt.Sprintf("explored %s %s", id, outJSON)); err != nil {
		return err
	}
	cp := *out
	jl.Explore = &cp
	return nil
}

// EndJob records a job's terminal status.
func (s *Store) EndJob(id JobID, status, errMsg string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	jl := s.jobs[id]
	if jl == nil {
		return fmt.Errorf("farm: job %s not in store", id)
	}
	line := fmt.Sprintf("jobend %s %s", id, status)
	if errMsg != "" {
		line += " " + strconv.Quote(errMsg)
	}
	if err := s.appendLine(line); err != nil {
		return err
	}
	jl.Final = status
	jl.Err = errMsg
	return nil
}

// Job returns a snapshot of the stored job, or nil. The snapshot shares no
// mutable state with the index, so callers may read it while the daemon
// keeps appending.
func (s *Store) Job(id JobID) *JobLog {
	s.mu.Lock()
	defer s.mu.Unlock()
	jl := s.jobs[id]
	if jl == nil {
		return nil
	}
	return jl.clone()
}

// Jobs returns snapshots of all stored jobs in submission order.
func (s *Store) Jobs() []*JobLog {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*JobLog, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].clone())
	}
	return out
}

func (jl *JobLog) clone() *JobLog {
	c := &JobLog{ID: jl.ID, Spec: jl.Spec, Final: jl.Final, Err: jl.Err, runs: make(map[int]*RunLog, len(jl.runs))}
	if jl.Explore != nil {
		e := *jl.Explore
		c.Explore = &e
	}
	for run, rl := range jl.runs {
		rc := &RunLog{
			Checkpoints: append([]HashLogLine(nil), rl.Checkpoints...),
			Outputs:     append([]OutRecord(nil), rl.Outputs...),
			Done:        rl.Done,
		}
		c.runs[run] = rc
	}
	return c
}
