package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"

	"instantcheck/internal/farm"
	"instantcheck/internal/obs"
)

// remoteStats renders a daemon's /healthz and /metrics as a human-readable
// snapshot: the health summary first, then every counter and gauge, with
// histogram families folded to count/mean. -raw skips the rendering and
// dumps the Prometheus exposition verbatim (for piping into other tools).
func remoteStats(ctx context.Context, c *farm.Client, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("remote stats", flag.ExitOnError)
	raw := fs.Bool("raw", false, "dump the raw Prometheus text exposition")
	if err := fs.Parse(args); err != nil {
		return err
	}
	h, err := c.Health(ctx)
	if err != nil {
		return fmt.Errorf("remote stats: %w", err)
	}
	text, err := c.MetricsText(ctx)
	if err != nil {
		return fmt.Errorf("remote stats: %w", err)
	}
	if *raw {
		fmt.Fprint(w, text)
		return nil
	}
	samples, err := obs.ParseExposition(strings.NewReader(text))
	if err != nil {
		return fmt.Errorf("remote stats: daemon served malformed metrics: %w", err)
	}

	fmt.Fprintf(w, "%s: %s  up %s  %d job(s), %d running, %d queued\nstore %s\n",
		c.BaseURL, h.Status, formatSeconds(h.UptimeSeconds), h.Jobs, h.Running, h.QueueDepth, h.StorePath)
	if line := deltaRatioLine(samples); line != "" {
		fmt.Fprintln(w, line)
	}
	if line := coalesceLine(samples); line != "" {
		fmt.Fprintln(w, line)
	}
	if line := fleetLine(samples); line != "" {
		fmt.Fprintln(w, line)
	}
	if line := detectionLine(samples); line != "" {
		fmt.Fprintln(w, line)
	}
	for _, line := range exploreLines(samples) {
		fmt.Fprintln(w, line)
	}
	fmt.Fprintln(w)
	printSamples(w, samples)
	return nil
}

// deltaRatioLine summarizes the dirty-page delta hasher's effectiveness:
// what fraction of the live state delta checkpoints actually rehashed,
// against the volume full sweeps would have visited. Empty when the daemon
// has run no delta checkpoints yet.
func deltaRatioLine(samples []obs.Sample) string {
	var dirty, live float64
	for _, s := range samples {
		switch s.Name {
		case "instantcheck_traverse_dirty_pages_total":
			dirty = s.Value
		case "instantcheck_traverse_live_pages_total":
			live = s.Value
		}
	}
	if live <= 0 {
		return ""
	}
	return fmt.Sprintf("traverse delta: %s of %s live pages rehashed (%.1f%% dirty)",
		formatMetric(dirty), formatMetric(live), 100*dirty/live)
}

// coalesceLine summarizes the store buffer's effectiveness: how many stores
// the incremental schemes absorbed into pending buffer entries against the
// word updates that reached the hash kernel at drain time, across however
// many flushes. Empty before any buffered run has drained (buffer off, or a
// traversal-only daemon). Per-scheme series fold to a daemon-wide total,
// like fleetLine's leased shards.
func coalesceLine(samples []obs.Sample) string {
	var flushes, drained, coalesced float64
	for _, s := range samples {
		switch s.Name {
		case "instantcheck_storebuffer_flushes_total":
			flushes += s.Value
		case "instantcheck_storebuffer_drained_words_total":
			drained += s.Value
		case "instantcheck_storebuffer_coalesced_total":
			coalesced += s.Value
		}
	}
	if flushes <= 0 {
		return ""
	}
	return fmt.Sprintf("store buffer: %s stores coalesced into %s drained words over %s flushes (%.1f%% absorbed)",
		formatMetric(coalesced), formatMetric(drained), formatMetric(flushes),
		100*coalesced/(coalesced+drained))
}

// fleetLine summarizes a fleet-mode daemon: live workers, shard traffic and
// how much re-dispatch the campaign needed. Empty on a non-fleet daemon
// (the checkfleet families are absent) or before any worker has leased.
func fleetLine(samples []obs.Sample) string {
	var workers, leased, completed, expired, requeued float64
	seen := false
	for _, s := range samples {
		switch s.Name {
		case "checkfleet_workers_live":
			workers, seen = s.Value, true
		case "checkfleet_shards_leased_total":
			leased += s.Value // per-worker series; fold to a fleet total
		case "checkfleet_shards_completed_total":
			completed = s.Value
		case "checkfleet_shards_expired_total":
			expired = s.Value
		case "checkfleet_runs_requeued_total":
			requeued = s.Value
		}
	}
	if !seen || leased == 0 {
		return ""
	}
	return fmt.Sprintf("fleet: %s worker(s) live, shards %s leased / %s completed / %s expired, %s run(s) re-queued",
		formatMetric(workers), formatMetric(leased), formatMetric(completed),
		formatMetric(expired), formatMetric(requeued))
}

// detectionLine summarizes detection-run traffic: how many runs carried a
// race-detector listener and the access-event volume those listeners
// consumed. Empty before any detection run has executed.
func detectionLine(samples []obs.Sample) string {
	var runs, reads, writes float64
	for _, s := range samples {
		switch s.Name {
		case "checkfarm_detection_runs_total":
			runs = s.Value
		case "instantcheck_detection_events_total":
			switch s.Labels["kind"] {
			case "read":
				reads += s.Value
			case "write":
				writes += s.Value
			}
		}
	}
	if runs <= 0 {
		return ""
	}
	return fmt.Sprintf("detection: %s run(s), %s read / %s write events observed",
		formatMetric(runs), formatMetric(reads), formatMetric(writes))
}

// exploreLines summarizes exploration traffic per strategy: schedules
// executed, campaigns that found a divergence, coverage and directed
// preemptions. Empty before any explore job has run.
func exploreLines(samples []obs.Sample) []string {
	type agg struct{ runs, div, distinct, hits float64 }
	byStrategy := map[string]*agg{}
	get := func(s obs.Sample) *agg {
		name := s.Labels["strategy"]
		a := byStrategy[name]
		if a == nil {
			a = &agg{}
			byStrategy[name] = a
		}
		return a
	}
	for _, s := range samples {
		switch s.Name {
		case "checkfarm_explore_runs_total":
			get(s).runs = s.Value
		case "checkfarm_explore_divergences_total":
			get(s).div = s.Value
		case "checkfarm_explore_distinct_outcomes_total":
			get(s).distinct = s.Value
		case "checkfarm_explore_hint_preemptions_total":
			get(s).hits = s.Value
		}
	}
	names := make([]string, 0, len(byStrategy))
	for name, a := range byStrategy {
		if a.runs > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []string
	for _, name := range names {
		a := byStrategy[name]
		line := fmt.Sprintf("explore[%s]: %s run(s), %s divergence(s) found, %s distinct outcomes",
			name, formatMetric(a.runs), formatMetric(a.div), formatMetric(a.distinct))
		if a.hits > 0 {
			line += fmt.Sprintf(", %s directed preemptions", formatMetric(a.hits))
		}
		out = append(out, line)
	}
	return out
}

// formatSeconds renders an uptime without sub-second noise.
func formatSeconds(s float64) string {
	sec := int64(s)
	switch {
	case sec >= 3600:
		return fmt.Sprintf("%dh%dm", sec/3600, sec%3600/60)
	case sec >= 60:
		return fmt.Sprintf("%dm%ds", sec/60, sec%60)
	default:
		return fmt.Sprintf("%ds", sec)
	}
}

// printSamples renders parsed exposition samples, one aligned line per
// series, folding each histogram family into a single count/mean line.
func printSamples(w io.Writer, samples []obs.Sample) {
	type histo struct{ sum, count float64 }
	hists := map[string]*histo{}
	var lines []string
	for _, s := range samples {
		if strings.HasSuffix(s.Name, "_bucket") {
			continue // the per-bound detail is -raw territory
		}
		if base, ok := strings.CutSuffix(s.Name, "_sum"); ok {
			h := hists[base]
			if h == nil {
				h = &histo{}
				hists[base] = h
			}
			h.sum = s.Value
			continue
		}
		if base, ok := strings.CutSuffix(s.Name, "_count"); ok {
			h := hists[base]
			if h == nil {
				h = &histo{}
				hists[base] = h
			}
			h.count = s.Value
			continue
		}
		name := s.Name
		if len(s.Labels) > 0 {
			keys := make([]string, 0, len(s.Labels))
			for k := range s.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			pairs := make([]string, len(keys))
			for i, k := range keys {
				pairs[i] = k + "=" + s.Labels[k]
			}
			name += "{" + strings.Join(pairs, ",") + "}"
		}
		lines = append(lines, fmt.Sprintf("%-58s %s", name, formatMetric(s.Value)))
	}
	for base, h := range hists {
		mean := "-"
		if h.count > 0 {
			mean = formatMetric(h.sum / h.count)
		}
		lines = append(lines, fmt.Sprintf("%-58s count %s, mean %s", base, formatMetric(h.count), mean))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

// formatMetric prints integral values without an exponent and everything
// else with sensible precision.
func formatMetric(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6g", v)
}
