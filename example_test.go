package instantcheck_test

import (
	"fmt"

	"instantcheck"
	"instantcheck/internal/mem"
)

// figure1 is the paper's running example: two threads add their local
// values to a shared global under a lock. The lock-acquisition order is
// nondeterministic, but every run ends with G == 12.
type figure1 struct {
	g  uint64
	mu *instantcheck.Mutex
}

func (p *figure1) Name() string { return "figure1" }
func (p *figure1) Threads() int { return 2 }
func (p *figure1) Setup(t *instantcheck.Thread) {
	p.g = t.AllocStatic("static:G", 1, mem.KindWord)
	t.Store(p.g, 2)
	p.mu = t.Machine().NewMutex("G")
}
func (p *figure1) Worker(t *instantcheck.Thread) {
	l := []uint64{7, 3}[t.TID()]
	t.Lock(p.mu)
	t.Store(p.g, t.Load(p.g)+l)
	t.Unlock(p.mu)
}

// ExampleCheck runs a determinism-checking campaign on the paper's
// Figure 1 program: internally nondeterministic, externally deterministic.
func ExampleCheck() {
	rep, err := instantcheck.Check(
		instantcheck.Campaign{Runs: 30, Threads: 2},
		func() instantcheck.Program { return &figure1{} },
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("deterministic:", rep.Deterministic())
	fmt.Println("checking points:", rep.Points())
	// Output:
	// deterministic: true
	// checking points: 1
}

// ExampleCharacterize classifies a workload into the paper's Table 1
// taxonomy: ocean's racy-order FP residual makes it nondeterministic
// bit-by-bit but deterministic after rounding.
func ExampleCharacterize() {
	app := instantcheck.WorkloadByName("ocean")
	ch, err := instantcheck.Characterize(
		instantcheck.Campaign{Runs: 8, Threads: 4},
		app.Builder(instantcheck.WorkloadOptions{Threads: 4, Small: true}),
		nil,
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("class:", ch.Class)
	fmt.Println("bit-by-bit deterministic:", ch.BitByBit.Deterministic())
	fmt.Println("after rounding:", ch.AfterRounding.Deterministic())
	// Output:
	// class: FP-prec
	// bit-by-bit deterministic: false
	// after rounding: true
}

// ExampleClassifyRaces filters volrend's benign hand-coded-barrier races
// (paper §6.1).
func ExampleClassifyRaces() {
	app := instantcheck.WorkloadByName("volrend")
	cl, err := instantcheck.ClassifyRaces(
		app.Builder(instantcheck.WorkloadOptions{Threads: 4, Small: true}),
		instantcheck.RaceConfig{Threads: 4, Runs: 8},
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("deterministic:", cl.Deterministic)
	fmt.Println("all benign:", cl.BenignCount() == len(cl.Verdicts) && len(cl.Verdicts) > 0)
	// Output:
	// deterministic: true
	// all benign: true
}
