// Command bugdetect walks the paper's full bug-finding workflow (§2.3,
// §7.4) on the radix order violation of Figure 7(c):
//
//  1. seed the bug (thread 3 skips a flag wait once, in the last pass);
//  2. run a 30-run checking campaign — InstantCheck reports the program
//     nondeterministic and localizes the problem between two checkpoints;
//  3. re-execute the two differing runs, capture their full memory states
//     at the first differing checkpoint, and diff them;
//  4. map every differing address back to the allocation site and offset —
//     the report the paper's prototype tool hands the programmer.
package main

import (
	"fmt"
	"log"

	"instantcheck"
)

func main() {
	app := instantcheck.WorkloadByName("radix")

	fmt.Println("== baseline: radix without the seeded bug ==")
	clean, err := instantcheck.Check(instantcheck.Campaign{}, app.Builder(instantcheck.WorkloadOptions{}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d checking points, deterministic = %v\n\n", clean.Points(), clean.Deterministic())

	fmt.Println("== with the Figure 7(c) order violation seeded in thread 3 ==")
	camp := instantcheck.Campaign{SnapshotDifferingRuns: true}
	buggy, err := instantcheck.Check(camp, app.Builder(instantcheck.WorkloadOptions{
		Bug: instantcheck.BugOrder,
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d det / %d ndet checking points; nondeterminism first detected in run %d\n",
		buggy.DetPoints, buggy.NDetPoints, buggy.FirstNDetRun)
	if ord := buggy.FirstNDetPoint(); ord > 0 {
		fmt.Printf("bug localized between checkpoint %d (%s, deterministic) and checkpoint %d (%s)\n",
			ord-1, buggy.Stats[ord-1].Label, ord, buggy.Stats[ord].Label)
	}

	d := buggy.DiffSnapshots
	if d == nil {
		log.Fatal("no state capture — bug did not manifest in this campaign")
	}
	fmt.Printf("\n== state diff of runs %d and %d at checkpoint %d (%s) ==\n",
		d.RunA, d.RunB, d.Ordinal, d.Label)
	diffs := instantcheck.DiffStates(d.A, d.B)
	fmt.Print(instantcheck.RenderDiff(diffs, 8))
	fmt.Println("\nThe differing words sit in radix's key arrays: the programmer now")
	fmt.Println("knows WHERE (which structures) and WHEN (between which barriers)")
	fmt.Println("the nondeterminism appears, and can set a watchpoint there.")
}
