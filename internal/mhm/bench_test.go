package mhm

import (
	"testing"

	"instantcheck/internal/fpround"
	"instantcheck/internal/ihash"
)

var benchTH ihash.Digest

// BenchmarkOnStore measures the modeled MHM store path (basic design).
func BenchmarkOnStore(b *testing.B) {
	u := New(nil, fpround.Default)
	for i := 0; i < b.N; i++ {
		u.OnStore(uint64(i&4095)*8, uint64(i), uint64(i+1), false)
	}
	benchTH = u.TH()
}

// BenchmarkOnStoreRounded measures the FP path through the round-off unit.
func BenchmarkOnStoreRounded(b *testing.B) {
	u := New(nil, fpround.Default)
	u.StartFPRounding()
	bits := uint64(0x3ff3c0ca428c59fb) // 1.2345...
	for i := 0; i < b.N; i++ {
		u.OnStore(uint64(i&4095)*8, bits, bits+uint64(i&7), true)
	}
	benchTH = u.TH()
}

// BenchmarkOnStoreClustered measures the Figure 3(b) parallel datapath
// model with its deferred merge.
func BenchmarkOnStoreClustered(b *testing.B) {
	u := NewClustered(nil, fpround.Default, 4, nil)
	for i := 0; i < b.N; i++ {
		u.OnStore(uint64(i&4095)*8, uint64(i), uint64(i+1), false)
	}
	benchTH = u.TH()
}
