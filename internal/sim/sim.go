// Package sim executes simulated parallel programs under the serializing
// random scheduler and exposes exactly the event stream InstantCheck needs:
// every store (with old and new value, as the MHM sees them on the L1 update
// path), every allocation and free, every synchronization operation, every
// output write, and a checkpoint at every barrier episode and at program
// end.
//
// The simulator stands in for the Pin-based binary instrumentation the paper
// uses (§7.1): Go has no dynamic binary instrumentation ecosystem, so the
// workloads are written against this package's Thread API instead, and the
// hashing schemes observe them through the Machine. Execution is serialized
// (one thread at a time), matching the paper's evaluation environment and
// its SW-InstantCheck_Inc prototype, which "serializes program execution and
// achieves atomicity without using locks".
//
// A Machine also maintains the instruction counters that feed the paper's
// Figure 6 cost model: native instruction count, store counts, words
// zero-filled at allocation and erased at free, and the state size swept at
// each checkpoint.
package sim

import (
	"instantcheck/internal/fpround"
	"instantcheck/internal/ihash"
	"instantcheck/internal/mem"
	"instantcheck/internal/mhm"
	"instantcheck/internal/replay"
	"instantcheck/internal/sched"
)

// Scheme selects how (and whether) the machine computes state hashes.
type Scheme int

const (
	// Native runs the program with no determinism checking at all.
	Native Scheme = iota
	// HWInc models HW-InstantCheck_Inc: per-thread MHM units hash every
	// store on the fly; checkpoints combine TH registers in software.
	HWInc
	// SWInc models SW-InstantCheck_Inc: the same incremental updates, but
	// performed by instrumentation code, which the cost model charges at
	// software hashing rates. Because execution is serialized, the
	// old-value read is atomic with the store, as in the paper's prototype.
	SWInc
	// SWIncNonAtomic models the §4.1 caveat: the instrumentation reads the
	// old value in a separate step with a preemption window before the
	// store, so write-write races can feed a stale old value into the hash
	// and cause false nondeterminism alarms.
	SWIncNonAtomic
	// SWTr models SW-InstantCheck_Tr: no per-store work; every checkpoint
	// traverses the static segment and the table of live allocations.
	SWTr
)

// String names the scheme as the paper does.
func (s Scheme) String() string {
	switch s {
	case Native:
		return "Native"
	case HWInc:
		return "HW-InstantCheck_Inc"
	case SWInc:
		return "SW-InstantCheck_Inc"
	case SWIncNonAtomic:
		return "SW-InstantCheck_Inc(non-atomic)"
	case SWTr:
		return "SW-InstantCheck_Tr"
	default:
		return "Scheme(?)"
	}
}

// Hashing reports whether the scheme computes state hashes at checkpoints.
func (s Scheme) Hashing() bool { return s != Native }

// Incremental reports whether the scheme hashes stores on the fly.
func (s Scheme) Incremental() bool {
	return s == HWInc || s == SWInc || s == SWIncNonAtomic
}

// Instruction-cost constants for the native work a program performs. The
// absolute values are a conventional RISC-flavored accounting; Figure 6 only
// depends on ratios.
const (
	CostLoad    = 1
	CostStore   = 1
	CostCompute = 1 // per Compute unit
	CostLock    = 4
	CostUnlock  = 2
	CostBarrier = 24
	CostMalloc  = 40
	CostFree    = 24
	CostEnvCall = 18
	CostOutput  = 1 // per 8 output bytes
)

// Config describes one run of a program.
type Config struct {
	// Threads is the worker thread count (the paper uses 8).
	Threads int
	// ScheduleSeed seeds the random scheduler. Different runs of a
	// determinism-checking campaign use different schedule seeds.
	ScheduleSeed int64
	// SwitchInterval is the mean operation count between forced
	// preemptions (<= 0 selects the scheduler default).
	SwitchInterval int
	// Scheme selects the hashing scheme.
	Scheme Scheme
	// Hasher is the location hash h(addr, value); nil selects ihash.Mix64.
	Hasher ihash.Hasher
	// Rounding configures the FP round-off unit; RoundFP turns it on from
	// the start of the run (start_FP_rounding).
	Rounding fpround.Policy
	// RoundFP enables FP rounding from the start of the run.
	RoundFP bool
	// AddrLog, if non-nil, records/replays heap allocation addresses so
	// malloc behaves as fixed input across the campaign's runs (§5).
	AddrLog *replay.AddrLog
	// Env, if non-nil, records/replays nondeterministic library calls.
	Env *replay.Env
	// Ignore deletes explicitly-specified nondeterministic structures from
	// the hash at every checkpoint (§2.2, §5).
	Ignore *IgnoreSet
	// SnapshotAt lists checkpoint ordinals at which to capture a full
	// memory snapshot for the state-diff debugging tool (§2.3). Nil means
	// never.
	SnapshotAt map[int]bool
	// Decider overrides the scheduler's decision policy. Nil selects the
	// default seeded random decider; the systematic-testing explorer
	// (paper §6.2) supplies a scripted one. When set, ScheduleSeed and
	// SwitchInterval are ignored.
	Decider sched.Decider
	// CheckpointHook, if non-nil, runs at every checkpoint right after
	// its State Hash is computed, while the state is quiescent. Returning
	// a non-nil error aborts the run (the explorer's state-pruning and
	// the replay-assist early-mismatch detection use this). The hook must
	// not touch simulated memory.
	CheckpointHook func(cp Checkpoint) error
	// Events, if non-nil, receives the run's access and synchronization
	// events (the feed for the race-detector substrate of §6.1). Listener
	// calls happen while execution is serialized.
	Events EventListener
	// CaptureOutput retains the raw bytes of every output stream in
	// Result.OutputData (for tests that decode the program's output);
	// by default only the stream hashes are kept, as in the paper.
	CaptureOutput bool
	// TraverseShards controls the parallelism of the traversal scheme's
	// checkpoint sweep. 0 (the default) selects automatically: shard
	// across runtime.GOMAXPROCS goroutines when the live state is large
	// enough to amortize the fan-out, sequential otherwise. 1 or any
	// negative value forces the sequential sweep; N > 1 forces N shards
	// (property tests use this to exercise the parallel path on small
	// states). The sharded sweep is bit-identical to the sequential one
	// because ⊕ is commutative and associative.
	TraverseShards int
	// StoreBufferWords sizes the per-thread MHM store buffer: how many
	// coalesced (addr, old, new) entries a unit parks between observation
	// points before a forced drain through the scattered-batch hash kernel.
	// The zero value selects the auto default (StoreBufferAutoWords); any
	// negative value disables the buffer, restoring inline per-store
	// hashing (the pre-buffer behavior; A/B benchmarks and differential
	// tests use it). The buffer applies to the HWInc and SWInc schemes;
	// SWIncNonAtomic always hashes inline, preserving its deliberate §4.1
	// stale-read window unchanged. Setting ICHECK_STORE_BUFFER=off in the
	// environment pins the buffer off process-wide (the interleaved-A/B
	// hook, mirroring ICHECK_TRAVERSE_DELTA).
	StoreBufferWords int
	// TraverseDelta selects the traversal scheme's checkpoint strategy.
	// The zero value (TraverseDeltaAuto) full-sweeps the first checkpoint
	// to seed a per-page hash-contribution cache, then rehashes only the
	// pages dirtied since the previous checkpoint and patches the cached
	// State Hash — O(dirty) instead of O(live) per checkpoint, and
	// bit-identical to the full sweep because the page sums form an
	// abelian group under ⊕/⊖.
	TraverseDelta TraverseDeltaMode
}

// StoreBufferAutoWords is the store-buffer capacity the zero value of
// Config.StoreBufferWords selects. 256 entries keep the slot table (512
// slots at ≤50% load) inside the L1 data cache alongside the memory
// engine's working set, while leaving drains rare enough that the
// devirtualized batch kernel amortizes its loop setup.
const StoreBufferAutoWords = 256

// TraverseDeltaMode selects how the traversal scheme computes checkpoint
// hashes after the first sweep.
type TraverseDeltaMode int

const (
	// TraverseDeltaAuto (the default) enables dirty-page delta hashing:
	// the first traversal checkpoint sweeps everything and seeds the
	// per-page cache; later checkpoints rehash only dirty pages.
	TraverseDeltaAuto TraverseDeltaMode = iota
	// TraverseDeltaOff forces a full sweep at every checkpoint (the
	// pre-delta behavior; A/B benchmarks and differential tests use it).
	TraverseDeltaOff
)

// EventListener observes a run's memory accesses and synchronization, the
// event feed a dynamic race detector consumes (paper §6.1). The init
// (setup) thread reports t.TID() == -1. Checker-internal writes (the
// zeroing of freed blocks) are not reported; they are not program accesses.
//
// Access events carry the reporting *Thread rather than a captured program
// counter: the source site of the access is pulled, not pushed. A listener
// that needs it calls t.PC() — a stack unwind — from inside the callback,
// and does so only on its slow path (a first access in an epoch, an actual
// race report), so the common repeat access pays nothing for attribution.
// t.PC() resolves to a file:line with SitePos, the same source sites the
// static analyzers report.
type EventListener interface {
	// OnRead reports a data load by t; t.PC() identifies the source site.
	OnRead(t *Thread, addr uint64)
	// OnWrite reports a data store by t; t.PC() identifies the source site.
	OnWrite(t *Thread, addr uint64)
	// OnAcquire reports a mutex acquisition (after the lock is held).
	OnAcquire(tid int, mu *sched.Mutex)
	// OnRelease reports a mutex release (before the lock is dropped).
	OnRelease(tid int, mu *sched.Mutex)
	// OnBarrier reports a checkpoint barrier episode (global quiescence);
	// ordinal is the checkpoint ordinal.
	OnBarrier(ordinal int)
}

// Checkpoint records one determinism-checking point: a dynamic barrier
// episode or the end of the program.
type Checkpoint struct {
	// Ordinal is the 0-based dynamic index of the checkpoint within the run.
	Ordinal int
	// Label is the barrier name, or "end" for the final checkpoint.
	Label string
	// SH is the State Hash at this point (ignore-set already applied).
	// Zero for Native runs.
	SH ihash.Digest
	// RawSH is the State Hash before ignore-set adjustment.
	RawSH ihash.Digest
	// LiveWords is the hashed-state size in words at this point.
	LiveWords int
	// Snapshot is the full state copy, if requested via Config.SnapshotAt.
	Snapshot *mem.Snapshot
}

// Counters aggregates the run's activity for the Figure 6 cost model.
type Counters struct {
	// Instr is the native instruction count (all threads plus setup).
	Instr uint64
	// PerThread is the native instruction count per worker thread.
	PerThread []uint64
	// SetupInstr is the native instruction count of the setup phase.
	SetupInstr uint64
	// Stores counts data stores (not including checker-induced zeroing).
	Stores uint64
	// FPStores counts the subset of Stores that were FP stores.
	FPStores uint64
	// Loads counts data loads.
	Loads uint64
	// AllocZeroWords is the number of words zero-filled at allocation —
	// checking-only work (native runs do not zero, §7.3).
	AllocZeroWords uint64
	// FreeEraseWords is the number of words whose hashes were erased at
	// free — checking-only work.
	FreeEraseWords uint64
	// CheckpointWords sums the hashed-state size over all checkpoints —
	// the sweep volume of SW-InstantCheck_Tr.
	CheckpointWords uint64
	// IgnoredWordChecks sums, over checkpoints, the number of words the
	// ignore-set deletion examined.
	IgnoredWordChecks uint64
	// Checkpoints is the number of determinism-checking points.
	Checkpoints uint64
	// SchedOps is the scheduler's Yield-point count for the worker phase —
	// the operation clock preemption budgets are expressed in. Exploration
	// strategies (PCT) calibrate their change-point placement against it.
	SchedOps uint64
	// OutputBytes is the total bytes written to the output stream.
	OutputBytes uint64
	// Allocs and Frees count dynamic allocation events.
	Allocs uint64
	// Frees counts dynamic free events.
	Frees uint64

	// The remaining fields are observability counters for the checkfarm's
	// metrics layer, not part of the Figure 6 cost model. They are filled
	// off the hot path: the fast-window numbers are copied from the memory
	// engine once at run end, and the traversal numbers are bumped once per
	// checkpoint sweep.

	// FastLoadMisses and FastStoreMisses count accesses that fell through
	// the memory engine's inline fast window into the slow path (store
	// misses include checker-internal zeroing on free). Fast-window hits
	// are derived as Loads+Stores minus misses; the hit path itself does
	// no counting.
	FastLoadMisses  uint64
	FastStoreMisses uint64
	// TraverseRunsHashed counts the page-bounded runs the traversal scheme
	// actually hashed across all checkpoints (zero runs that cancel via
	// Σh(a,0) are excluded).
	TraverseRunsHashed uint64
	// TraverseShardedSweeps counts checkpoint sweeps that fanned out across
	// goroutine shards; sequential sweeps are Checkpoints minus this (for
	// the traversal scheme).
	TraverseShardedSweeps uint64
	// TraverseFullSweeps and TraverseDeltaSweeps split the traversal
	// scheme's checkpoints by strategy: full sweeps visit every live run
	// (the seeding sweep in delta mode, every sweep with delta off);
	// delta sweeps rehash only pages dirtied since the last checkpoint.
	TraverseFullSweeps  uint64
	TraverseDeltaSweeps uint64
	// TraverseDirtyPages sums the dirty pages rehashed over all delta
	// sweeps; TraverseLivePages sums the per-page cache size (pages with
	// nonzero contributions) sampled at each delta sweep. Their ratio is
	// the fraction of live state a delta checkpoint actually touched.
	TraverseDirtyPages uint64
	TraverseLivePages  uint64
	// StoreBufferFlushes, StoreBufferDrainedWords, StoreBufferCoalesced
	// and StoreBufferEvictions mirror the run's aggregated store-buffer
	// mhm.Stats, copied once at run end: buffer drains executed, coalesced
	// entries hashed at drains, stores that merged into an already-pending
	// entry instead of adding hash terms on the hot path, and pending
	// entries emitted early on a broken coalescing chain. DrainedWords +
	// Evictions is the number of hash pairs the buffered scheme actually
	// computed (the quantity the Figure 6 buffered-SW-Inc model charges).
	StoreBufferFlushes      uint64
	StoreBufferDrainedWords uint64
	StoreBufferCoalesced    uint64
	StoreBufferEvictions    uint64
	// EventReads and EventWrites count the access events delivered to an
	// attached EventListener — the per-access volume of a detection run.
	// Both stay zero when Config.Events is nil, so the farm can tell
	// detection runs from plain check runs by these alone.
	EventReads  uint64
	EventWrites uint64
}

// OutputStream is one file descriptor's hashed output (§4.3).
type OutputStream struct {
	// Hash is the FNV-1a of the bytes in write order.
	Hash uint64
	// Bytes is the stream length.
	Bytes uint64
}

// Stdout is the descriptor Thread.Write targets.
const Stdout = 1

// Result is the outcome of one run.
type Result struct {
	// Checkpoints lists every determinism-checking point, in order. The
	// last entry is always the end-of-program checkpoint.
	Checkpoints []Checkpoint
	// Outputs maps each written file descriptor to its stream hash (§4.3).
	Outputs map[int]OutputStream
	// OutputData holds the raw stream bytes per descriptor when
	// Config.CaptureOutput was set.
	OutputData map[int][]byte
	// OutputHash is the stdout stream's hash (0 if nothing was written).
	OutputHash uint64
	// OutputBytes is the total output length across descriptors.
	OutputBytes uint64
	// Counters holds the cost-model counters.
	Counters Counters
	// MHMStats aggregates the MHM activity of all units (incremental
	// schemes only).
	MHMStats mhm.Stats
	// FinalLiveWords is the hashed-state size at program end.
	FinalLiveWords int
}

// FinalSH returns the State Hash at program end.
func (r *Result) FinalSH() ihash.Digest {
	if len(r.Checkpoints) == 0 {
		return ihash.Zero
	}
	return r.Checkpoints[len(r.Checkpoints)-1].SH
}

// SHVector returns the per-checkpoint State Hashes as a slice, the vector
// InstantCheck compares across runs.
func (r *Result) SHVector() []ihash.Digest {
	v := make([]ihash.Digest, len(r.Checkpoints))
	for i, cp := range r.Checkpoints {
		v[i] = cp.SH
	}
	return v
}
