package sched

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// trace runs n threads that each append events to a shared log under the
// serialized schedule and returns the event order.
func trace(seed int64, n, opsPer int) []string {
	s := New(n, seed, 2)
	var log []string
	_ = s.Run(func(tid int) {
		for i := 0; i < opsPer; i++ {
			log = append(log, fmt.Sprintf("t%d.%d", tid, i))
			s.Yield()
		}
	})
	return log
}

// TestSameSeedSameSchedule property-checks reproducibility: the same seed
// yields the identical interleaving — the foundation of re-execution for
// the state-diff tool.
func TestSameSeedSameSchedule(t *testing.T) {
	f := func(seed int64) bool {
		a := trace(seed, 4, 20)
		b := trace(seed, 4, 20)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestDifferentSeedsDiffer checks different seeds explore different
// interleavings (statistically: at least one differing pair among several).
func TestDifferentSeedsDiffer(t *testing.T) {
	base := strings.Join(trace(1, 4, 20), ",")
	for seed := int64(2); seed < 8; seed++ {
		if strings.Join(trace(seed, 4, 20), ",") != base {
			return
		}
	}
	t.Error("7 different seeds produced identical schedules")
}

// TestAllThreadsComplete checks every thread runs to completion and every
// event appears exactly once.
func TestAllThreadsComplete(t *testing.T) {
	log := trace(3, 5, 10)
	if len(log) != 50 {
		t.Fatalf("%d events, want 50", len(log))
	}
	seen := map[string]bool{}
	for _, e := range log {
		if seen[e] {
			t.Fatalf("duplicate event %s", e)
		}
		seen[e] = true
	}
}

// TestSerialization checks only one thread runs at a time: per-thread
// event sequences appear in program order.
func TestSerialization(t *testing.T) {
	log := trace(7, 4, 25)
	next := make([]int, 4)
	for _, e := range log {
		var tid, i int
		fmt.Sscanf(e, "t%d.%d", &tid, &i)
		if i != next[tid] {
			t.Fatalf("thread %d event %d out of order (want %d)", tid, i, next[tid])
		}
		next[tid]++
	}
}

// TestMutexMutualExclusion checks lock-protected critical sections never
// interleave, across many seeds.
func TestMutexMutualExclusion(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s := New(4, seed, 1)
		mu := NewMutex("m")
		inside := 0
		maxInside := 0
		err := s.Run(func(tid int) {
			for i := 0; i < 10; i++ {
				mu.Lock(s, tid)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				s.Yield() // try hard to interleave inside the section
				s.Yield()
				inside--
				mu.Unlock(s, tid)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if maxInside != 1 {
			t.Fatalf("seed %d: %d threads inside the critical section", seed, maxInside)
		}
	}
}

// TestMutexUnlockByNonOwnerPanics checks the ownership assertion.
func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	s := New(2, 1, 2)
	mu := NewMutex("m")
	err := s.Run(func(tid int) {
		if tid == 0 {
			mu.Lock(s, tid)
		} else {
			for !mu.held {
				s.Yield()
			}
			mu.Unlock(s, tid) // not the owner: must panic
		}
	})
	if err == nil || !strings.Contains(err.Error(), "unlocking mutex") {
		t.Errorf("err = %v", err)
	}
}

// TestBarrierEpisodes checks a barrier releases everyone together and runs
// OnFull exactly once per episode with the state quiescent.
func TestBarrierEpisodes(t *testing.T) {
	const nt, eps = 5, 7
	for seed := int64(0); seed < 10; seed++ {
		s := New(nt, seed, 2)
		b := NewBarrier("b", nt)
		arrived := 0
		var fullCounts []int
		b.OnFull = func(ep, last int) {
			fullCounts = append(fullCounts, arrived)
		}
		phase := make([]int, nt)
		err := s.Run(func(tid int) {
			for e := 0; e < eps; e++ {
				arrived++
				b.Await(s, tid)
				phase[tid]++
				// After release, every thread must have arrived at the
				// episode: arrived is a multiple boundary check below.
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if b.Episode() != eps {
			t.Fatalf("episodes = %d", b.Episode())
		}
		if len(fullCounts) != eps {
			t.Fatalf("OnFull ran %d times", len(fullCounts))
		}
		for i, c := range fullCounts {
			if c != (i+1)*nt {
				t.Fatalf("episode %d fired with %d arrivals, want %d (quiescence violated)", i, c, (i+1)*nt)
			}
		}
	}
}

// TestBarrierSubset checks barriers for a subset of the threads.
func TestBarrierSubset(t *testing.T) {
	s := New(4, 3, 2)
	b := NewBarrier("sub", 2)
	done := make([]bool, 4)
	err := s.Run(func(tid int) {
		if tid < 2 {
			b.Await(s, tid)
		}
		done[tid] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	for tid, d := range done {
		if !d {
			t.Errorf("thread %d never finished", tid)
		}
	}
}

// TestCondProducerConsumer checks condition variables with a bounded
// buffer across seeds: all items transfer, no deadlock.
func TestCondProducerConsumer(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		s := New(3, seed, 1)
		mu := NewMutex("q")
		notEmpty := NewCond("ne", mu)
		var queue []int
		produced, consumed := 0, 0
		const items = 20
		err := s.Run(func(tid int) {
			if tid == 0 { // producer
				for i := 0; i < items; i++ {
					mu.Lock(s, tid)
					queue = append(queue, i)
					produced++
					notEmpty.Signal(s, tid)
					mu.Unlock(s, tid)
				}
				mu.Lock(s, tid)
				queue = append(queue, -1, -1) // poison for both consumers
				notEmpty.Broadcast(s, tid)
				mu.Unlock(s, tid)
				return
			}
			for { // consumers
				mu.Lock(s, tid)
				for len(queue) == 0 {
					notEmpty.Wait(s, tid)
				}
				v := queue[0]
				queue = queue[1:]
				mu.Unlock(s, tid)
				if v == -1 {
					return
				}
				consumed++
			}
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if produced != items || consumed != items {
			t.Fatalf("seed %d: produced %d consumed %d", seed, produced, consumed)
		}
	}
}

// TestDeadlockDetected checks the scheduler reports a deadlock with the
// blocked threads' reasons instead of hanging.
func TestDeadlockDetected(t *testing.T) {
	s := New(2, 1, 2)
	a, b := NewMutex("A"), NewMutex("B")
	err := s.Run(func(tid int) {
		first, second := a, b
		if tid == 1 {
			first, second = b, a
		}
		first.Lock(s, tid)
		// Force the classic ABBA interleaving regardless of schedule.
		for !(a.held && b.held) {
			s.Yield()
		}
		second.Lock(s, tid)
		second.Unlock(s, tid)
		first.Unlock(s, tid)
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if !strings.Contains(err.Error(), "lock A") || !strings.Contains(err.Error(), "lock B") {
		t.Errorf("deadlock diagnostics missing lock names: %v", err)
	}
}

// TestAbortUnwindsCleanly checks Abort cancels the run: Run returns an
// error wrapping ErrAborted and every goroutine unwinds (no leaked parked
// threads keep the barrier alive).
func TestAbortUnwindsCleanly(t *testing.T) {
	reason := errors.New("pruned")
	for seed := int64(0); seed < 10; seed++ {
		s := New(4, seed, 2)
		b := NewBarrier("b", 4)
		b.OnFull = func(ep, last int) {
			if ep == 1 {
				s.Abort(reason)
			}
		}
		err := s.Run(func(tid int) {
			for i := 0; i < 5; i++ {
				b.Await(s, tid)
			}
		})
		if !errors.Is(err, ErrAborted) || !errors.Is(err, reason) {
			t.Fatalf("seed %d: err = %v", seed, err)
		}
	}
}

// TestScriptedDeciderControl checks NewControlled drives the schedule
// exactly: with a decider that always picks the last runnable candidate,
// the first thread to run is deterministic.
func TestScriptedDeciderControl(t *testing.T) {
	var order []int
	s := NewControlled(3, pickLast{})
	err := s.Run(func(tid int) {
		order = append(order, tid)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
}

// pickLast always selects the last candidate and never preempts.
type pickLast struct{}

func (pickLast) SwitchBudget() int { return 1 << 30 }
func (pickLast) Pick(n int) int    { return n - 1 }

// TestThreadPanicPropagates checks a panicking thread fails the run with
// its message rather than crashing the process.
func TestThreadPanicPropagates(t *testing.T) {
	s := New(2, 1, 2)
	err := s.Run(func(tid int) {
		if tid == 1 {
			panic("boom")
		}
		for i := 0; i < 100; i++ {
			s.Yield()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

// TestOpsClock checks the progress clock advances per Yield.
func TestOpsClock(t *testing.T) {
	s := New(2, 1, 3)
	_ = s.Run(func(tid int) {
		for i := 0; i < 10; i++ {
			s.Yield()
		}
	})
	if s.Ops() != 20 {
		t.Errorf("Ops = %d, want 20", s.Ops())
	}
	if s.N() != 2 {
		t.Errorf("N = %d", s.N())
	}
}

// TestUnparkIdempotent checks unparking an already-runnable thread is a
// harmless no-op.
func TestUnparkIdempotent(t *testing.T) {
	s := New(2, 1, 2)
	released := false
	err := s.Run(func(tid int) {
		if tid == 0 {
			s.Unpark(1) // 1 is runnable: no-op
			released = true
		} else {
			for !released {
				s.Yield() // keep thread 1 alive until the unpark lands
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestUnparkFinishedPanics checks unparking a finished thread is rejected —
// it would indicate a corrupted synchronization object.
func TestUnparkFinishedPanics(t *testing.T) {
	s := New(2, 1, 2)
	oneDone := false
	err := s.Run(func(tid int) {
		if tid == 1 {
			oneDone = true
			return
		}
		for !oneDone {
			s.Yield()
		}
		s.Yield() // let thread 1 fully retire
		s.Unpark(1)
	})
	if err == nil || !strings.Contains(err.Error(), "unpark of finished thread") {
		t.Fatalf("err = %v", err)
	}
}
