package apps

import (
	"instantcheck/internal/core"
	"instantcheck/internal/mem"
	"instantcheck/internal/sched"
	"instantcheck/internal/sim"
)

func init() {
	register(&App{
		Name:          "volrend",
		Source:        "splash2",
		UsesFP:        false,
		ExpectedClass: core.ClassBitDeterministic,
		Build: func(o Options) sim.Program {
			p := &volrendProg{nt: o.threads(), dim: 24, img: 32}
			if o.Small {
				p.dim, p.img = 12, 16
			}
			return p
		},
	})
}

// volrendProg reproduces SPLASH-2's volrend: ray casting through a voxel
// volume into an image, in fixed-point integer arithmetic (the original's
// hot path is table-driven; the paper lists volrend as FP-free). Five
// phases separated by pthread barriers give the 6 dynamic points of
// Table 1.
//
// Like the original, the classification phase synchronizes its two
// sub-phases with a hand-coded sense-reversing barrier that contains a
// benign data race: waiters spin on the sense word without holding the
// lock that protects the arrival counter. The race changes per-run timing
// but never the final memory state, and InstantCheck correctly reports
// volrend as deterministic despite it (§7.2.1). Hand-coded barriers are
// deliberately not checkpoints — the paper checks only at pthread barriers.
type volrendProg struct {
	nt  int
	dim int // voxel cube edge
	img int // image edge

	voxel   uint64 // dim³ densities
	opacity uint64 // dim³ derived opacities
	shade   uint64 // dim³ classified shades
	image   uint64 // img² pixels
	hist    uint64 // 16-bucket brightness histogram (thread 0)

	// Hand-coded sense-reversing barrier state.
	hcCount uint64
	hcSense uint64
	hcLock  *sched.Mutex

	phase barrier
}

func (p *volrendProg) Name() string { return "volrend" }

func (p *volrendProg) Threads() int { return p.nt }

func (p *volrendProg) vox(x, y, z int) int { return (x*p.dim+y)*p.dim + z }

func (p *volrendProg) Setup(t *sim.Thread) {
	d := p.dim
	p.voxel = t.AllocStatic("static:vr.voxel", d*d*d, mem.KindWord)
	p.opacity = t.AllocStatic("static:vr.opacity", d*d*d, mem.KindWord)
	p.shade = t.AllocStatic("static:vr.shade", d*d*d, mem.KindWord)
	p.image = t.AllocStatic("static:vr.image", p.img*p.img, mem.KindWord)
	p.hist = t.AllocStatic("static:vr.hist", 16, mem.KindWord)
	p.hcCount = t.AllocStatic("static:vr.hc.count", 1, mem.KindWord)
	p.hcSense = t.AllocStatic("static:vr.hc.sense", 1, mem.KindWord)
	p.hcLock = t.Machine().NewMutex("vr.hc")
	rng := newXorshift(5)
	for i := 0; i < d*d*d; i++ {
		t.Store(idx(p.voxel, i), rng.next()%4096)
	}
	p.phase = newBarrier(t, "vr.phase")
}

func (p *volrendProg) Worker(t *sim.Thread) {
	d := p.dim
	tid := t.TID()
	total := d * d * d

	// Phase 1: derive raw opacities from densities (disjoint spans).
	lo, hi := span(total, p.nt, tid)
	for i := lo; i < hi; i++ {
		v := t.Load(idx(p.voxel, i))
		t.Compute(20)
		t.Store(idx(p.opacity, i), v/2)
	}
	p.phase.await(t)

	// Phase 2, sub-phase (a): threshold opacities in place.
	for i := lo; i < hi; i++ {
		o := t.Load(idx(p.opacity, i))
		if o > 1024 {
			o = 1024
		}
		t.Store(idx(p.opacity, i), o)
	}
	// The hand-coded barrier orders (a) before (b): sub-phase (b) reads a
	// right neighbor that may belong to another thread's span.
	p.handBarrier(t)
	for i := lo; i < hi; i++ {
		o := t.Load(idx(p.opacity, i))
		if i+1 < total {
			//icvet:ignore race benign neighbor read (§6.1): either order yields an opacity within the clamp, and the adaptive ray count is insensitive to it
			if n := t.Load(idx(p.opacity, i+1)); n > o {
				o = n
			}
		}
		t.Compute(16)
		t.Store(idx(p.shade, i), o)
	}
	p.phase.await(t)

	// Phase 3: cast rays; each thread owns disjoint image rows.
	rlo, rhi := span(p.img, p.nt, tid)
	for y := rlo; y < rhi; y++ {
		for x := 0; x < p.img; x++ {
			acc := uint64(0)
			trans := uint64(4096)
			for z := 0; z < d; z++ {
				vx := x * d / p.img
				vy := y * d / p.img
				o := t.Load(idx(p.shade, p.vox(vx, vy, z)))
				acc += trans * o >> 12
				trans = trans * (4096 - o/4) >> 12
				t.Compute(20) // table lookups + fixed-point compositing
			}
			t.Store(idx(p.image, y*p.img+x), acc)
		}
	}
	p.phase.await(t)

	// Phase 4: normalize pixels (disjoint spans again).
	plo, phi := span(p.img*p.img, p.nt, tid)
	for i := plo; i < phi; i++ {
		v := t.Load(idx(p.image, i))
		t.Store(idx(p.image, i), v>>4)
	}
	p.phase.await(t)

	// Phase 5: thread 0 builds the brightness histogram.
	if tid == 0 {
		for i := 0; i < p.img*p.img; i++ {
			v := t.Load(idx(p.image, i))
			b := int(v % 16)
			c := t.Load(idx(p.hist, b))
			t.Store(idx(p.hist, b), c+1)
		}
	}
	p.phase.await(t)
}

// handBarrier is volrend's hand-coded sense-reversing barrier. The arrival
// counter is protected by a lock, but the spin on the sense word — and the
// initial read of it — happen with no lock held: a data race in the
// original program, but a benign one, since every run still reaches the
// same final state (the counter returns to zero and the sense word flips a
// fixed number of times).
func (p *volrendProg) handBarrier(t *sim.Thread) {
	mySense := t.Load(p.hcSense) // racy read: benign
	t.Lock(p.hcLock)
	c := t.Load(p.hcCount) + 1
	if c == uint64(p.nt) {
		t.Store(p.hcCount, 0)
		//icvet:ignore race hand-coded sense-reversing barrier: the sense flip releases the spinners by design
		t.Store(p.hcSense, 1-mySense)
		t.Unlock(p.hcLock)
		return
	}
	t.Store(p.hcCount, c)
	t.Unlock(p.hcLock)
	for t.Load(p.hcSense) == mySense {
		t.Yield()
	}
}
