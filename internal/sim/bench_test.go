package sim

import (
	"testing"

	"instantcheck/internal/replay"
)

// benchRun executes one fuzz run under the given scheme, for comparing the
// runtime (not modeled) cost of the schemes inside this simulator.
func benchRun(b *testing.B, scheme Scheme) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		m := NewMachine(Config{
			Threads:      4,
			ScheduleSeed: int64(i),
			Scheme:       scheme,
			AddrLog:      replay.NewAddrLog(),
		})
		if _, err := m.Run(newFuzz(4, 99, 200)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineNative measures the simulator with checking off.
func BenchmarkMachineNative(b *testing.B) { benchRun(b, Native) }

// BenchmarkMachineHWInc measures the HW-InstantCheck_Inc model.
func BenchmarkMachineHWInc(b *testing.B) { benchRun(b, HWInc) }

// BenchmarkMachineSWTr measures traversal hashing at every checkpoint.
func BenchmarkMachineSWTr(b *testing.B) { benchRun(b, SWTr) }

// BenchmarkTraverseHash isolates the per-checkpoint sweep cost, sequential
// versus sharded across goroutines. On a single-core host the parallel
// variant mostly measures fan-out overhead; with real cores it shows the
// sweep scaling.
func BenchmarkTraverseHash(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		shards int
	}{
		{"sequential", 1},
		{"parallel", 4},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			m := NewMachine(Config{
				Threads: 1, ScheduleSeed: 1, Scheme: SWTr,
				TraverseShards: cfg.shards,
			})
			prog := newFuzz(1, 7, 300)
			if _, err := m.Run(prog); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = m.traverseHash()
			}
		})
	}
}
