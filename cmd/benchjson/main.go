// Command benchjson converts `go test -bench` text output (read from stdin)
// into a JSON section of a benchmark-trajectory file, so performance numbers
// can be committed alongside the code that produced them and compared across
// PRs.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem ./... | benchjson -out BENCH_3.json -section after
//
// The output file holds one object per section ("baseline", "after", ...);
// writing a section replaces it and preserves the others, so a pre-change
// binary's numbers and the current tree's numbers can live side by side.
// Repeated runs of the same benchmark are averaged, which is how interleaved
// A/B measurements (several alternating rounds of two binaries) are meant to
// be fed in on noisy machines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's averaged measurement.
type Result struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Runs        int     `json:"runs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Section is one labeled set of measurements plus the environment header
// lines the test binary printed.
type Section struct {
	Note       string   `json:"note,omitempty"`
	Env        []string `json:"env,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH.json", "trajectory file to create or update")
	section := flag.String("section", "after", "section name to (re)write")
	note := flag.String("note", "", "free-form provenance note stored in the section")
	flag.Parse()

	sec := Section{Note: *note}
	type acc struct {
		runs               int
		iters              int64
		ns, bytes, allocs  float64
		hasBytes, hasAlloc bool
	}
	sums := map[string]*acc{}
	pkgs := map[string]string{}
	var order []string
	envSeen := map[string]bool{}
	curPkg := ""

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			curPkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "goos: "), strings.HasPrefix(line, "goarch: "), strings.HasPrefix(line, "cpu: "):
			if !envSeen[line] {
				envSeen[line] = true
				sec.Env = append(sec.Env, line)
			}
			continue
		}
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		a := sums[name]
		if a == nil {
			a = &acc{}
			sums[name] = a
			pkgs[name] = curPkg
			order = append(order, name)
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		a.runs++
		a.iters += iters
		a.ns += ns
		if m[4] != "" {
			v, _ := strconv.ParseFloat(m[4], 64)
			a.bytes += v
			a.hasBytes = true
		}
		if m[5] != "" {
			v, _ := strconv.ParseFloat(m[5], 64)
			a.allocs += v
			a.hasAlloc = true
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(order) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	for _, name := range order {
		a := sums[name]
		n := float64(a.runs)
		r := Result{
			Name: name, Pkg: pkgs[name],
			Runs: a.runs, Iterations: a.iters,
			NsPerOp: round2(a.ns / n),
		}
		if a.hasBytes {
			r.BytesPerOp = round2(a.bytes / n)
		}
		if a.hasAlloc {
			r.AllocsPerOp = round2(a.allocs / n)
		}
		sec.Benchmarks = append(sec.Benchmarks, r)
	}

	file := map[string]json.RawMessage{}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			fatal(fmt.Errorf("%s exists but is not a JSON object: %w", *out, err))
		}
	}
	raw, err := json.MarshalIndent(sec, "  ", "  ")
	if err != nil {
		fatal(err)
	}
	file[*section] = raw

	keys := make([]string, 0, len(file))
	for k := range file {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("{\n")
	for i, k := range keys {
		kb, _ := json.Marshal(k)
		fmt.Fprintf(&b, "  %s: %s", kb, file[k])
		if i < len(keys)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote section %q (%d benchmarks) to %s\n", *section, len(sec.Benchmarks), *out)
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
