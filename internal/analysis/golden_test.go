package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestGolden runs each analyzer over its fixture package under
// testdata/src/<name> and checks the diagnostics against the fixture's
// "want" comments: a line with a comment containing want `regexp` must
// produce exactly one diagnostic matching the regexp, and no other line
// may produce any.
func TestGolden(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			runGolden(t, a.Name)
		})
	}
}

type goldenKey struct {
	file string
	line int
}

func runGolden(t *testing.T, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	a := ByName(name)
	if a == nil {
		t.Fatalf("no analyzer named %q", name)
	}

	wants := parseWants(t, pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}

	diags := RunAnalyzers(pkg, []*Analyzer{a}, RunOptions{NoSuppress: true})
	checkWants(t, wants, diags)
}

// TestStaleIgnoreGolden checks StaleIgnores against its fixture: live
// //icvet:ignore comments (covering a real finding or race pair) stay
// silent, dead or misspelled ones are flagged.
func TestStaleIgnoreGolden(t *testing.T) {
	dir := filepath.Join("testdata", "src", "staleignore")
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.Load(dir)
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	wants := parseWants(t, pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}
	full := RunAnalyzers(pkg, All(), RunOptions{NoSuppress: true})
	checkWants(t, wants, StaleIgnores(pkg, full, RaceCheck(pkg).Pairs))
}

// checkWants matches diagnostics against want comments one-to-one.
func checkWants(t *testing.T, wants map[goldenKey]*regexp.Regexp, diags []Diagnostic) {
	t.Helper()
	matched := make(map[goldenKey]bool)
	for _, d := range diags {
		k := goldenKey{d.Pos.Filename, d.Pos.Line}
		re, ok := wants[k]
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(k.file), k.line, d.Message)
			continue
		}
		if matched[k] {
			t.Errorf("second diagnostic at %s:%d: %s", filepath.Base(k.file), k.line, d.Message)
			continue
		}
		if !re.MatchString(d.Message) {
			t.Errorf("diagnostic at %s:%d does not match %q:\n  got: %s", filepath.Base(k.file), k.line, re, d.Message)
		}
		matched[k] = true
	}
	for k, re := range wants {
		if !matched[k] {
			t.Errorf("missing diagnostic at %s:%d matching %q", filepath.Base(k.file), k.line, re)
		}
	}
}

// parseWants collects the want `regexp` comments of a fixture package,
// keyed by the file and line they sit on.
func parseWants(t *testing.T, pkg *Package) map[goldenKey]*regexp.Regexp {
	t.Helper()
	wants := make(map[goldenKey]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, "want `")
				if i < 0 {
					continue
				}
				rest := c.Text[i+len("want `"):]
				j := strings.Index(rest, "`")
				if j < 0 {
					t.Fatalf("%s: unterminated want comment", pkg.Fset.Position(c.Pos()))
				}
				re, err := regexp.Compile(rest[:j])
				if err != nil {
					t.Fatalf("%s: bad want regexp: %v", pkg.Fset.Position(c.Pos()), err)
				}
				pos := pkg.Fset.Position(c.Pos())
				k := goldenKey{pos.Filename, pos.Line}
				if _, dup := wants[k]; dup {
					t.Fatalf("%s: two want comments on one line", pos)
				}
				wants[k] = re
			}
		}
	}
	return wants
}
