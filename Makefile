# InstantCheck reproduction — convenience targets.

GO ?= go

.PHONY: all test race race-farm bench build table1 table2 figures everything cover fmt vet lint

all: test lint

# Build every command, the checkfarm daemon included, into ./bin.
build:
	$(GO) build -o bin/ ./cmd/instantcheck ./cmd/statediff ./cmd/icvet ./cmd/checkd

test:
	$(GO) test ./...

lint:
	$(GO) run ./cmd/icvet ./...

race:
	$(GO) test -race ./...

# The farm's invariants (parallel == sequential, crash resume) under the
# race detector — the CI subset.
race-farm:
	$(GO) test -race ./internal/farm ./internal/core

bench:
	$(GO) test -bench=. -benchmem ./...

table1:
	$(GO) run ./cmd/instantcheck table1

table2:
	$(GO) run ./cmd/instantcheck table2

figures:
	$(GO) run ./cmd/instantcheck fig5
	$(GO) run ./cmd/instantcheck fig6
	$(GO) run ./cmd/instantcheck fig8

everything:
	$(GO) run ./cmd/instantcheck all

cover:
	$(GO) test -cover ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
