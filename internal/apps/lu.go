package apps

import (
	"instantcheck/internal/core"
	"instantcheck/internal/mem"
	"instantcheck/internal/sim"
)

func init() {
	register(&App{
		Name:          "lu",
		Source:        "splash2",
		UsesFP:        true,
		ExpectedClass: core.ClassBitDeterministic,
		Build: func(o Options) sim.Program {
			p := &luProg{nt: o.threads(), nb: 22, bs: 6}
			if o.Small {
				p.nb, p.bs = 4, 4
			}
			return p
		},
	})
}

// luProg reproduces SPLASH-2's lu: blocked in-place LU factorization of a
// dense nb*bs × nb*bs matrix without pivoting (the matrix is made
// diagonally dominant). Each elimination step runs three phases — diagonal
// block factorization, perimeter panel update, interior trailing update —
// with block ownership statically partitioned, so all writes are disjoint
// and the factorization is bit-by-bit deterministic. Three barriers per
// step plus a final one give the 68 dynamic points of Table 1
// (22 steps × 3 + final + end).
type luProg struct {
	nt int
	nb int // blocks per dimension
	bs int // block size

	a     uint64 // n×n row-major
	norm  uint64 // final checksum word
	diag  barrier
	panel barrier
	inner barrier
	done  barrier
}

func (p *luProg) Name() string { return "lu" }

func (p *luProg) Threads() int { return p.nt }

func (p *luProg) n() int { return p.nb * p.bs }

func (p *luProg) at(i, j int) uint64 { return idx(p.a, i*p.n()+j) }

func (p *luProg) Setup(t *sim.Thread) {
	n := p.n()
	p.a = t.AllocStatic("static:lu.a", n*n, mem.KindFloat)
	rng := newXorshift(11)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := rng.unitFloat() - 0.5
			if i == j {
				v += float64(n) // diagonal dominance: no pivoting needed
			}
			t.StoreF(p.at(i, j), v)
		}
	}
	p.norm = t.AllocStatic("static:lu.norm", 1, mem.KindFloat)
	p.diag = newBarrier(t, "lu.diag")
	p.panel = newBarrier(t, "lu.panel")
	p.inner = newBarrier(t, "lu.inner")
	p.done = newBarrier(t, "lu.done")
}

// blockOwner statically assigns block (bi, bj) to a thread, as SPLASH-2's
// 2-D scatter decomposition does.
func (p *luProg) blockOwner(bi, bj int) int { return (bi*p.nb + bj) % p.nt }

func (p *luProg) Worker(t *sim.Thread) {
	bs := p.bs
	for k := 0; k < p.nb; k++ {
		// Phase 1: the diagonal block's owner factors it in place.
		if p.blockOwner(k, k) == t.TID() {
			for kk := 0; kk < bs; kk++ {
				r, c := k*bs+kk, k*bs+kk
				piv := t.LoadF(p.at(r, c))
				for i := kk + 1; i < bs; i++ {
					l := t.LoadF(p.at(k*bs+i, c)) / piv
					t.Compute(2)
					t.StoreF(p.at(k*bs+i, c), l)
					for j := kk + 1; j < bs; j++ {
						v := t.LoadF(p.at(k*bs+i, k*bs+j)) - l*t.LoadF(p.at(r, k*bs+j))
						t.Compute(2)
						t.StoreF(p.at(k*bs+i, k*bs+j), v)
					}
				}
			}
		}
		p.diag.await(t)

		// Phase 2: update the perimeter panels against the diagonal block.
		for m := k + 1; m < p.nb; m++ {
			if p.blockOwner(k, m) == t.TID() {
				p.solveRowPanel(t, k, m)
			}
			if p.blockOwner(m, k) == t.TID() {
				p.solveColPanel(t, k, m)
			}
		}
		p.panel.await(t)

		// Phase 3: rank-bs update of the trailing submatrix.
		for bi := k + 1; bi < p.nb; bi++ {
			for bj := k + 1; bj < p.nb; bj++ {
				if p.blockOwner(bi, bj) != t.TID() {
					continue
				}
				p.updateInterior(t, k, bi, bj)
			}
		}
		p.inner.await(t)
	}
	// Final phase: thread 0 records the factor's trace as a checksum (a
	// pure function of the now-stable matrix), then everyone synchronizes
	// once more — the 67th barrier, giving Table 1's 68 points with "end".
	if t.TID() == 0 {
		sum := 0.0
		for i := 0; i < p.n(); i++ {
			sum += t.LoadF(p.at(i, i))
		}
		t.StoreF(p.norm, sum)
	}
	p.done.await(t)
}

// solveRowPanel computes U(k,m) = L(k,k)^-1 * A(k,m) in place.
func (p *luProg) solveRowPanel(t *sim.Thread, k, m int) {
	bs := p.bs
	for kk := 0; kk < bs; kk++ {
		for i := kk + 1; i < bs; i++ {
			l := t.LoadF(p.at(k*bs+i, k*bs+kk))
			for j := 0; j < bs; j++ {
				v := t.LoadF(p.at(k*bs+i, m*bs+j)) - l*t.LoadF(p.at(k*bs+kk, m*bs+j))
				t.Compute(2)
				t.StoreF(p.at(k*bs+i, m*bs+j), v)
			}
		}
	}
}

// solveColPanel computes L(m,k) = A(m,k) * U(k,k)^-1 in place.
func (p *luProg) solveColPanel(t *sim.Thread, k, m int) {
	bs := p.bs
	for kk := 0; kk < bs; kk++ {
		piv := t.LoadF(p.at(k*bs+kk, k*bs+kk))
		for i := 0; i < bs; i++ {
			s := t.LoadF(p.at(m*bs+i, k*bs+kk))
			for j := 0; j < kk; j++ {
				s -= t.LoadF(p.at(m*bs+i, k*bs+j)) * t.LoadF(p.at(k*bs+j, k*bs+kk))
				t.Compute(2)
			}
			t.Compute(2)
			t.StoreF(p.at(m*bs+i, k*bs+kk), s/piv)
		}
	}
}

// updateInterior computes A(bi,bj) -= L(bi,k) * U(k,bj), updating the
// destination element in place per rank-1 term, as SPLASH-2's lu does.
func (p *luProg) updateInterior(t *sim.Thread, k, bi, bj int) {
	bs := p.bs
	for i := 0; i < bs; i++ {
		for j := 0; j < bs; j++ {
			for kk := 0; kk < bs; kk++ {
				s := t.LoadF(p.at(bi*bs+i, bj*bs+j)) -
					t.LoadF(p.at(bi*bs+i, k*bs+kk))*t.LoadF(p.at(k*bs+kk, bj*bs+j))
				t.Compute(16) // multiply-add plus address generation and loop control
				t.StoreF(p.at(bi*bs+i, bj*bs+j), s)
			}
		}
	}
}
