package instantcheck

import (
	"instantcheck/internal/dreplay"
	"instantcheck/internal/explore"
	"instantcheck/internal/racefilter"
	"instantcheck/internal/sim"
)

// The paper's §6 presents the fast state-comparison primitive as useful
// beyond determinism checking. The three applications it outlines are
// implemented here:
//
//   - §6.1 filtering out benign data races  (DetectRaces / ClassifyRaces)
//   - §6.2 systematic testing with state-hash pruning  (Systematic)
//   - §6.3 deterministic replay assisted by hash logs  (RecordReplayLog)

// Systematic-testing application (§6.2).
type (
	// SystematicOptions configures schedule-tree exploration.
	SystematicOptions = explore.Options
	// SystematicResult reports coverage and pruning statistics.
	SystematicResult = explore.Result
)

// Systematic enumerates a program's bounded schedule tree; with
// Options.Prune set, subtrees rooted at already-visited quiescent states
// (identified by checkpoint State Hashes) are cut — the state pruning the
// paper proposes for CHESS-style testing.
func Systematic(build func() sim.Program, o SystematicOptions) (*SystematicResult, error) {
	return explore.Systematic(build, o)
}

// Deterministic-replay application (§6.3).
type (
	// ReplayLog is the state-hash portion of a partial execution log.
	ReplayLog = dreplay.Log
	// ReplayConfig describes the recorded program configuration.
	ReplayConfig = dreplay.Config
	// ReplayAttempt is one replay candidate's outcome.
	ReplayAttempt = dreplay.Attempt
	// ReplayResult summarizes a replay search.
	ReplayResult = dreplay.Result
)

// RecordReplayLog executes the program once and returns the per-checkpoint
// hash log of that original execution; candidate replays are then searched
// with ReplayLog.Search, each cut off at its first mismatching checkpoint.
func RecordReplayLog(build func() sim.Program, cfg ReplayConfig, seed int64) (*ReplayLog, error) {
	return dreplay.Record(build, cfg, seed)
}

// Benign-race-filtering application (§6.1).
type (
	// Race is one detected happens-before data race.
	Race = racefilter.Race
	// RaceVerdict classifies one race as benign or harmful.
	RaceVerdict = racefilter.Verdict
	// RaceClassification is the overall filtering result.
	RaceClassification = racefilter.Classification
	// RaceConfig drives detection and classification runs.
	RaceConfig = racefilter.Config
	// RaceDetector is the epoch-based happens-before detector; attach it
	// to a run via MachineConfig.Events.
	RaceDetector = racefilter.Detector
	// AccessKind distinguishes the racing access pair.
	AccessKind = racefilter.AccessKind
)

// Race access-pair kinds.
const (
	// RaceWriteWrite is a write racing a previous write.
	RaceWriteWrite = racefilter.WriteWrite
	// RaceReadWrite is a write racing a previous read.
	RaceReadWrite = racefilter.ReadWrite
	// RaceWriteRead is a read racing a previous write.
	RaceWriteRead = racefilter.WriteRead
)

// NewRaceDetector returns an epoch-based happens-before race detector
// for nt worker threads.
func NewRaceDetector(nt int) *RaceDetector { return racefilter.NewDetector(nt) }

// DetectRaces runs the program under several schedules with the
// happens-before detector attached and returns the union of races found.
func DetectRaces(build func() sim.Program, cfg RaceConfig) ([]Race, error) {
	return racefilter.Detect(build, cfg)
}

// ClassifyRaces detects races and classifies each benign or harmful by
// comparing the final memory states of many schedules — the InstantCheck
// state comparison that "already filters out benign races" (§6.1).
func ClassifyRaces(build func() sim.Program, cfg RaceConfig) (*RaceClassification, error) {
	return racefilter.Classify(build, cfg)
}
