package sim

import (
	"fmt"

	"instantcheck/internal/fpround"
	"instantcheck/internal/ihash"
	"instantcheck/internal/mem"
	"instantcheck/internal/mhm"
	"instantcheck/internal/sched"
)

// Program is a simulated parallel program. Setup runs once on an
// initialization thread before the workers start (allocating global state
// and reading input); Worker runs once per worker thread under the
// serializing scheduler. A Program instance is used for exactly one run;
// build a fresh instance per run so shared handles reset.
type Program interface {
	// Name identifies the program.
	Name() string
	// Threads returns the worker thread count.
	Threads() int
	// Setup initializes global state using the init thread.
	Setup(t *Thread)
	// Worker is the body of worker thread t.TID().
	Worker(t *Thread)
}

// Machine executes one run of a Program under one Config.
type Machine struct {
	cfg Config
	// Mem is the simulated address space.
	Mem *mem.Memory

	sch    *sched.Scheduler
	hasher ihash.Hasher

	// units[tid] is worker tid's MHM; initUnit belongs to the setup thread.
	units    []*mhm.Unit
	initUnit *mhm.Unit

	rounding fpround.Policy
	roundFP  bool

	checkpoints []Checkpoint
	counters    Counters

	outputs    map[int]*OutputStream
	outputData map[int][]byte

	running  bool
	finished bool
}

// NewMachine prepares a machine for one run.
func NewMachine(cfg Config) *Machine {
	if cfg.Threads <= 0 {
		panic("sim: Config.Threads must be positive")
	}
	h := cfg.Hasher
	if h == nil {
		h = ihash.Mix64{}
	}
	if cfg.RoundFP && !cfg.Rounding.Enabled() {
		cfg.Rounding = fpround.Default
	}
	m := &Machine{
		cfg:      cfg,
		Mem:      mem.New(),
		hasher:   h,
		rounding: cfg.Rounding,
		roundFP:  cfg.RoundFP,
	}
	m.counters.PerThread = make([]uint64, cfg.Threads)
	if cfg.Scheme.Incremental() {
		m.units = make([]*mhm.Unit, cfg.Threads)
		for i := range m.units {
			m.units[i] = m.newUnit()
		}
		m.initUnit = m.newUnit()
	}
	if cfg.AddrLog != nil {
		log := cfg.AddrLog
		m.Mem.AddrHook = func(site string, seq, words int) (uint64, bool) {
			return log.Lookup(site, seq)
		}
	}
	return m
}

func (m *Machine) newUnit() *mhm.Unit {
	u := mhm.New(m.hasher, m.rounding)
	if m.roundFP {
		u.StartFPRounding()
	}
	return u
}

// Config returns the run configuration.
func (m *Machine) Config() Config { return m.cfg }

// Scheduler returns the scheduler (nil before Run starts workers).
func (m *Machine) Scheduler() *sched.Scheduler { return m.sch }

// Run executes the program to completion and returns the run result. The
// final checkpoint ("end") is always captured, matching the paper's check at
// run end. Run may be called once per Machine.
func (m *Machine) Run(p Program) (*Result, error) {
	if m.finished {
		panic("sim: Machine reused across runs")
	}
	m.finished = true
	if p.Threads() != m.cfg.Threads {
		return nil, fmt.Errorf("sim: program %s wants %d threads, config has %d", p.Name(), p.Threads(), m.cfg.Threads)
	}
	if m.cfg.Env != nil {
		m.cfg.Env.BeginRun()
	}
	// Setup phase on the init thread: the allocations and stores it makes
	// are the program's fixed input state.
	init := &Thread{m: m, tid: -1, unit: m.initUnit}
	p.Setup(init)
	m.counters.SetupInstr = init.instr
	m.counters.Instr += init.instr

	if m.cfg.Decider != nil {
		m.sch = sched.NewControlled(m.cfg.Threads, m.cfg.Decider)
	} else {
		m.sch = sched.New(m.cfg.Threads, m.cfg.ScheduleSeed, m.cfg.SwitchInterval)
	}
	threads := make([]*Thread, m.cfg.Threads)
	for i := range threads {
		var u *mhm.Unit
		if m.units != nil {
			u = m.units[i]
		}
		threads[i] = &Thread{m: m, tid: i, unit: u}
	}
	m.running = true
	err := m.sch.Run(func(tid int) {
		p.Worker(threads[tid])
	})
	m.running = false
	if err != nil {
		return nil, err
	}
	for i, t := range threads {
		m.counters.PerThread[i] = t.instr
		m.counters.Instr += t.instr
	}
	if err := m.capture("end"); err != nil {
		return nil, err
	}
	res := &Result{
		Checkpoints:    m.checkpoints,
		Counters:       m.counters,
		FinalLiveWords: m.Mem.LiveWords(),
	}
	if len(m.outputs) > 0 {
		res.Outputs = make(map[int]OutputStream, len(m.outputs))
		for fd, s := range m.outputs {
			res.Outputs[fd] = *s
			res.OutputBytes += s.Bytes
		}
		if s, ok := m.outputs[Stdout]; ok {
			res.OutputHash = s.Hash
		}
		res.OutputData = m.outputData
	}
	if m.units != nil {
		for _, u := range m.units {
			res.MHMStats.Add(u.Stats())
		}
		res.MHMStats.Add(m.initUnit.Stats())
	}
	return res, nil
}

// NewMutex returns a named scheduler-aware mutex.
func (m *Machine) NewMutex(name string) *sched.Mutex { return sched.NewMutex(name) }

// NewCond returns a condition variable tied to mu.
func (m *Machine) NewCond(name string, mu *sched.Mutex) *sched.Cond {
	return sched.NewCond(name, mu)
}

// NewBarrier returns a pthread-style barrier for all worker threads. Every
// barrier episode is a determinism-checking point: when the last thread
// arrives — with all other participants blocked, so the shared state is
// quiescent — the machine captures a checkpoint (paper §2.3: "InstantCheck
// checks determinism at each program barrier and at run end").
func (m *Machine) NewBarrier(name string) *sched.Barrier {
	return m.NewBarrierN(name, m.cfg.Threads)
}

// NewBarrierN returns a checkpointing barrier for an explicit party count
// (for programs where only a subset of threads synchronizes).
func (m *Machine) NewBarrierN(name string, parties int) *sched.Barrier {
	b := sched.NewBarrier(name, parties)
	b.OnFull = func(episode, lastTID int) {
		if err := m.capture(name); err != nil {
			// The checkpoint hook asked to cancel (state pruning, replay
			// mismatch): unwind the run cleanly.
			m.sch.Abort(err)
		}
	}
	return b
}

// capture records a determinism-checking point and runs the checkpoint
// hook. It must run while the state is quiescent: on the last thread to
// arrive at a barrier, or after all threads have finished.
func (m *Machine) capture(label string) error {
	cp := Checkpoint{
		Ordinal:   len(m.checkpoints),
		Label:     label,
		LiveWords: m.Mem.LiveWords(),
	}
	m.counters.Checkpoints++
	m.counters.CheckpointWords += uint64(cp.LiveWords)
	if m.cfg.Scheme.Hashing() {
		var sh ihash.Digest
		if m.cfg.Scheme.Incremental() {
			sh = m.initUnit.TH()
			for _, u := range m.units {
				sh = sh.Combine(u.TH())
			}
		} else {
			sh = m.traverseHash()
		}
		cp.RawSH = sh
		adj, examined := m.cfg.Ignore.adjust(m, sh)
		cp.SH = adj
		m.counters.IgnoredWordChecks += examined
	}
	if m.cfg.SnapshotAt[cp.Ordinal] {
		cp.Snapshot = m.Mem.Snapshot()
	}
	m.checkpoints = append(m.checkpoints, cp)
	if m.cfg.Events != nil {
		m.cfg.Events.OnBarrier(cp.Ordinal)
	}
	if m.cfg.CheckpointHook != nil {
		return m.cfg.CheckpointHook(cp)
	}
	return nil
}

// traverseHash computes the state hash by sweeping the static segment and
// the live-allocation table, as SW-InstantCheck_Tr does (§4.2). Each live
// word contributes h(a, v) ⊖ h(a, 0): its delta from the fixed zero-filled
// initial state, the same quantity the incremental schemes accumulate. FP
// words are rounded using the allocation table's type information.
func (m *Machine) traverseHash() ihash.Digest {
	var sh ihash.Digest
	round := m.roundFP
	m.Mem.Traverse(func(addr, value uint64, kind mem.Kind) {
		if kind == mem.KindFloat && round {
			value = m.rounding.RoundBits(value)
		}
		sh = sh.Combine(m.hasher.HashWord(addr, value)).Subtract(m.hasher.HashWord(addr, 0))
	})
	return sh
}

// SetFPRounding flips the FP round-off unit for every thread mid-run,
// implementing start_FP_rounding / stop_FP_rounding issued by the program.
func (m *Machine) SetFPRounding(on bool) {
	m.roundFP = on
	if m.units == nil {
		return
	}
	set := func(u *mhm.Unit) {
		if on {
			u.StartFPRounding()
		} else {
			u.StopFPRounding()
		}
	}
	for _, u := range m.units {
		set(u)
	}
	set(m.initUnit)
}

func (m *Machine) writeOutput(fd int, p []byte) {
	// FNV-1a over the stream in write order: InstantCheck's libc-write
	// interception hashes "the actually written bytes before the return
	// from the function" (§4.3), so ordering between unsynchronized
	// writers is visible — deliberately. Each descriptor carries its own
	// stream hash, as a full per-file implementation would.
	if m.outputs == nil {
		m.outputs = make(map[int]*OutputStream)
	}
	s := m.outputs[fd]
	if s == nil {
		s = &OutputStream{Hash: 14695981039346656037}
		m.outputs[fd] = s
	}
	const prime = 1099511628211
	h := s.Hash
	for _, b := range p {
		h ^= uint64(b)
		h *= prime
	}
	s.Hash = h
	s.Bytes += uint64(len(p))
	m.counters.OutputBytes += uint64(len(p))
	if m.cfg.CaptureOutput {
		if m.outputData == nil {
			m.outputData = make(map[int][]byte)
		}
		m.outputData[fd] = append(m.outputData[fd], p...)
	}
}
