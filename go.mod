module instantcheck

go 1.22
