package farm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"instantcheck/internal/core"
	"instantcheck/internal/sim"
)

// Dispatcher executes the outstanding replay runs of one campaign. It is
// the seam between the farm's job lifecycle (record, resume, merge — all
// handled by runJob) and wherever the replay runs actually execute:
//
//   - the default localDispatcher fans the runs out across an in-process
//     worker pool, exactly the pre-fleet behavior;
//   - the fleet coordinator (internal/fleet) implements Dispatcher by
//     leasing run-shards to remote worker processes and feeding their
//     streamed results back through deliver.
//
// The contract: Dispatch returns only after every run in need has been
// passed to deliver exactly once, or with the first error. deliver may be
// called concurrently for distinct runs but never twice for the same run;
// runJob additionally dedups by run index, so a dispatcher that re-issues
// work (straggler re-dispatch racing its zombie) is still safe. Dispatch
// must respect ctx cancellation.
type Dispatcher interface {
	Dispatch(ctx context.Context, id JobID, spec JobSpec, runner *core.Runner, need []int,
		deliver func(run int, res *sim.Result) error) error
}

// localDispatcher is the in-process dispatcher: a pool of Parallelism
// goroutines draining the run list, each run on a private clone of the
// recorded logs.
type localDispatcher struct {
	m *Metrics
}

func (d localDispatcher) Dispatch(ctx context.Context, id JobID, spec JobSpec, runner *core.Runner, need []int,
	deliver func(run int, res *sim.Result) error) error {

	camp := runner.Campaign()
	workers := camp.Parallelism
	if workers > len(need) {
		workers = len(need)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	runs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for run := range runs {
				if ctx.Err() != nil {
					continue
				}
				replayStart := time.Now()
				res, err := runner.Replay(run)
				if err == nil {
					d.m.observeRun(camp.Scheme, run, res, time.Since(replayStart))
					err = deliver(run, res)
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for _, run := range need {
		runs <- run
	}
	close(runs)
	wg.Wait()
	return firstErr
}

// PlanShards splits outstanding run indices into shards of at most size
// runs — the lease unit of a distributed campaign. size <= 0 yields one
// shard with everything. The shards partition need in order; a coordinator
// re-planning after lease expiry passes only the still-missing runs.
func PlanShards(need []int, size int) [][]int {
	if len(need) == 0 {
		return nil
	}
	if size <= 0 {
		size = len(need)
	}
	out := make([][]int, 0, (len(need)+size-1)/size)
	for len(need) > 0 {
		n := size
		if n > len(need) {
			n = len(need)
		}
		out = append(out, append([]int(nil), need[:n]...))
		need = need[n:]
	}
	return out
}

// runJob executes one campaign, the heart of the farm:
//
//   - the recording run executes first and alone (it records the replay
//     logs every other run depends on, §5);
//   - the remaining runs go to the dispatcher — the in-process pool by
//     default, a fleet coordinator when one is configured;
//   - runs already committed in prior (a resumed campaign) are not
//     re-executed — their hash vectors come straight from the store;
//   - the merge stage folds all vectors into a report. The hash combine
//     and the cross-run comparison are commutative, so the report is
//     byte-identical to a sequential campaign's.
//
// onRun is called once per newly executed run, from at most one goroutine
// at a time per run but concurrently across runs; the store's AppendRun is
// the intended sink. progress is called after every finished run. m (nil
// allowed) receives per-run hash-path metrics, sharded by run index so the
// concurrent workers never contend. disp nil selects the local pool.
func runJob(ctx context.Context, id JobID, spec JobSpec, prior *JobLog, m *Metrics, disp Dispatcher,
	onRun func(run int, res *sim.Result) error,
	progress func(done, total int)) (*Report, *core.Report, error) {

	camp, build, err := spec.Resolve()
	if err != nil {
		return nil, nil, err
	}
	runner, err := camp.NewRunner(build)
	if err != nil {
		return nil, nil, err
	}
	camp = runner.Campaign() // defaults applied
	total := camp.Runs
	results := make([]*sim.Result, total)
	done := 0
	report := func(run int, res *sim.Result) error {
		if onRun != nil {
			if err := onRun(run, res); err != nil {
				return err
			}
		}
		return nil
	}

	// Resurrect committed runs from the store. Their hashes are trusted;
	// run 0 is additionally cross-checked below against the re-recorded
	// vector, which catches a log written by a different binary or input.
	if prior != nil {
		for _, run := range prior.CompletedRuns() {
			if run < total {
				results[run] = prior.Run(run).Result()
				done++
				if m != nil {
					m.runsRestored.Inc()
				}
			}
		}
	}

	// Recording run. Even when run 0 was committed before a restart it is
	// re-executed: the in-memory replay logs exist only as a side effect
	// of recording, and re-recording is deterministic.
	recordStart := time.Now()
	first, err := runner.Record()
	if err != nil {
		return nil, nil, err
	}
	m.observeRun(camp.Scheme, 0, first, time.Since(recordStart))
	if results[0] != nil {
		if err := sameVector(results[0], first); err != nil {
			return nil, nil, fmt.Errorf("farm: stored hash log disagrees with re-recorded run 1: %w", err)
		}
	} else {
		if err := report(0, first); err != nil {
			return nil, nil, err
		}
		done++
	}
	results[0] = first
	var mu sync.Mutex
	if progress != nil {
		progress(done, total)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	var need []int
	for run := 1; run < total; run++ {
		if results[run] == nil {
			need = append(need, run)
		}
	}
	// deliver persists and folds one dispatched run. Duplicate deliveries
	// of a run (a re-dispatched shard racing its zombie lease) are dropped
	// after the store's own idempotence check accepted them.
	deliver := func(run int, res *sim.Result) error {
		mu.Lock()
		dup := results[run] != nil
		mu.Unlock()
		if dup {
			return nil
		}
		if err := report(run, res); err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		if results[run] != nil {
			return nil
		}
		results[run] = res
		done++
		if progress != nil {
			progress(done, total)
		}
		return nil
	}
	if disp == nil {
		disp = localDispatcher{m: m}
	}
	if len(need) > 0 {
		if err := disp.Dispatch(ctx, id, spec, runner, need, deliver); err != nil {
			return nil, nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	coreRep, err := camp.Assemble(runner.Name(), results)
	if err != nil {
		return nil, nil, err
	}
	return projectReport(coreRep), coreRep, nil
}

// sameVector checks a stored run's hash vector against a re-executed one.
func sameVector(stored, fresh *sim.Result) error {
	if len(stored.Checkpoints) != len(fresh.Checkpoints) {
		return fmt.Errorf("stored %d checkpoints, re-executed %d", len(stored.Checkpoints), len(fresh.Checkpoints))
	}
	for i := range stored.Checkpoints {
		if stored.Checkpoints[i].SH != fresh.Checkpoints[i].SH {
			return fmt.Errorf("checkpoint %d: stored %v, re-executed %v",
				i, stored.Checkpoints[i].SH, fresh.Checkpoints[i].SH)
		}
	}
	return nil
}

// reportFromLog assembles a finished job's report purely from its stored
// hash log — the restart path for jobs that completed before the daemon
// went down. Every run must be committed.
func reportFromLog(jl *JobLog) (*Report, error) {
	camp, _, err := jl.Spec.Resolve()
	if err != nil {
		return nil, err
	}
	camp, err = camp.WithDefaults()
	if err != nil {
		return nil, err
	}
	completed := jl.CompletedRuns()
	if len(completed) != camp.Runs {
		return nil, fmt.Errorf("farm: job %s: %d of %d runs in log", jl.ID, len(completed), camp.Runs)
	}
	results := make([]*sim.Result, camp.Runs)
	for _, run := range completed {
		if run >= camp.Runs {
			return nil, fmt.Errorf("farm: job %s: run %d out of range", jl.ID, run)
		}
		results[run] = jl.Run(run).Result()
	}
	coreRep, err := camp.Assemble(jl.Spec.App, results)
	if err != nil {
		return nil, err
	}
	return projectReport(coreRep), nil
}
