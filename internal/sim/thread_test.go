package sim

import (
	"testing"

	"instantcheck/internal/fpround"
	"instantcheck/internal/mem"
	"instantcheck/internal/replay"
	"instantcheck/internal/sched"
)

// TestCondVariables drives a producer/consumer through the Thread-level
// condition-variable API.
func TestCondVariables(t *testing.T) {
	var mu *sched.Mutex
	var avail *sched.Cond
	var q, out uint64
	p := &funcProg{nt: 3,
		setup: func(th *Thread) {
			q = th.AllocStatic("static:q", 2, mem.KindWord) // {count, next}
			out = th.AllocStatic("static:out", 8, mem.KindWord)
			mu = th.Machine().NewMutex("q")
			avail = th.Machine().NewCond("avail", mu)
		},
		worker: func(th *Thread) {
			if th.TID() == 0 { // producer: publish 8 items
				for i := 0; i < 8; i++ {
					th.Lock(mu)
					th.Store(q, th.Load(q)+1)
					if i == 7 {
						th.CondBroadcast(avail)
					} else {
						th.CondSignal(avail)
					}
					th.Unlock(mu)
				}
				return
			}
			for { // consumers: each item goes to a distinct out slot
				th.Lock(mu)
				for th.Load(q) == 0 {
					if th.Load(q+8) >= 8 { // all consumed
						th.Unlock(mu)
						return
					}
					th.CondWait(avail)
				}
				th.Store(q, th.Load(q)-1)
				slot := th.Load(q + 8)
				th.Store(q+8, slot+1)
				th.Unlock(mu)
				th.Store(out+slot*8, slot+100)
				if slot == 7 {
					th.Lock(mu)
					th.CondBroadcast(avail) // release any waiter at the end
					th.Unlock(mu)
				}
			}
		},
	}
	m := NewMachine(Config{Threads: 3, ScheduleSeed: 5, Scheme: HWInc})
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if m.Mem.BlockAt(out) == nil {
		t.Fatal("out block missing")
	}
	for i := 0; i < 8; i++ {
		if got := m.Mem.Peek(out + uint64(i)*8); got != uint64(i+100) {
			t.Errorf("out[%d] = %d", i, got)
		}
	}
}

// TestGettimeofdayAndYield covers the env clock and explicit yields.
func TestGettimeofdayAndYield(t *testing.T) {
	var stamps []int64
	p := &funcProg{nt: 2, worker: func(th *Thread) {
		th.Yield()
		stamps = append(stamps, th.Gettimeofday())
		th.Yield()
	}}
	env := replay.NewEnv(3)
	m := NewMachine(Config{Threads: 2, ScheduleSeed: 1, Scheme: HWInc, Env: env})
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if len(stamps) != 2 {
		t.Fatalf("%d stamps", len(stamps))
	}
	// Replay: a second run returns the same per-thread values.
	first := append([]int64(nil), stamps...)
	stamps = nil
	m2 := NewMachine(Config{Threads: 2, ScheduleSeed: 99, Scheme: HWInc, Env: env})
	if _, err := m2.Run(p); err != nil {
		t.Fatal(err)
	}
	if len(stamps) != 2 {
		t.Fatal("second run stamps")
	}
	// Same multiset (schedule may reorder which thread appended first).
	if !(first[0] == stamps[0] && first[1] == stamps[1]) &&
		!(first[0] == stamps[1] && first[1] == stamps[0]) {
		t.Errorf("gettimeofday not replayed: %v vs %v", first, stamps)
	}
}

// TestSetFPRounding covers mid-run rounding toggles: the machine-level
// switch flips every unit.
func TestSetFPRounding(t *testing.T) {
	m := NewMachine(Config{Threads: 1, ScheduleSeed: 1, Scheme: HWInc, Rounding: fpround.Default})
	p := &funcProg{nt: 1,
		setup: func(th *Thread) { th.AllocStatic("static:f", 2, mem.KindFloat) },
		worker: func(th *Thread) {
			th.Machine().SetFPRounding(true)
			th.StoreF(mem.StaticBase, 1.23456789)
			th.Machine().SetFPRounding(false)
			th.StoreF(mem.StaticBase+8, 1.23456789)
		},
	}
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	// The first store was rounded inside the hash; the second bit-exact.
	// Both physical values are full precision (rounding affects hashing
	// only).
	if m.Mem.Peek(mem.StaticBase) != m.Mem.Peek(mem.StaticBase+8) {
		t.Error("rounding must not change stored values")
	}
}

// TestMachineAccessors covers trivial getters and thread metadata.
func TestMachineAccessors(t *testing.T) {
	m := NewMachine(Config{Threads: 2, ScheduleSeed: 1, Scheme: SWTr})
	if m.Config().Threads != 2 {
		t.Error("Config()")
	}
	p := &funcProg{nt: 2, worker: func(th *Thread) {
		if th.Machine() != m {
			t.Error("Machine()")
		}
		th.Compute(5)
		if th.Instr() == 0 {
			t.Error("Instr()")
		}
		if th.Machine().Scheduler() == nil {
			t.Error("Scheduler()")
		}
	}}
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
}

// TestAllocStaticOutsideSetupPanics covers the init-thread guard.
func TestAllocStaticOutsideSetupPanics(t *testing.T) {
	m := NewMachine(Config{Threads: 1, ScheduleSeed: 1, Scheme: HWInc})
	_, err := m.Run(&funcProg{nt: 1, worker: func(th *Thread) {
		th.AllocStatic("static:late", 1, mem.KindWord)
	}})
	if err == nil {
		t.Error("late static allocation accepted")
	}
}

// TestIgnoreSetAccessors covers rule introspection.
func TestIgnoreSetAccessors(t *testing.T) {
	ig := NewIgnoreSet(
		IgnoreRule{Site: "b", Offsets: []int{3, 1, 3}},
		IgnoreRule{Site: "a"},
		IgnoreRule{Site: "b", Offsets: []int{2}},
	)
	if ig.Empty() {
		t.Error("Empty")
	}
	if len(ig.Rules()) != 3 {
		t.Error("Rules")
	}
	sites := ig.Sites()
	if len(sites) != 2 || sites[0] != "a" || sites[1] != "b" {
		t.Errorf("Sites = %v", sites)
	}
	var nilSet *IgnoreSet
	if !nilSet.Empty() || nilSet.Rules() != nil || nilSet.Sites() != nil {
		t.Error("nil ignore set accessors")
	}
}

// TestCheckpointHookAbort covers hook-driven cancellation mid-run.
func TestCheckpointHookAbort(t *testing.T) {
	var bar *sched.Barrier
	p := &funcProg{nt: 2,
		setup: func(th *Thread) { bar = th.Machine().NewBarrier("b") },
		worker: func(th *Thread) {
			for i := 0; i < 5; i++ {
				th.BarrierWait(bar)
			}
		},
	}
	hookErr := errSentinel{}
	m := NewMachine(Config{Threads: 2, ScheduleSeed: 1, Scheme: HWInc,
		CheckpointHook: func(cp Checkpoint) error {
			if cp.Ordinal == 2 {
				return hookErr
			}
			return nil
		}})
	_, err := m.Run(p)
	if err == nil {
		t.Fatal("hook abort did not fail the run")
	}
}

type errSentinel struct{}

func (errSentinel) Error() string { return "sentinel" }

// pcProbe asserts, on every data event, that the frame-pointer unwind
// (Thread.PC) and the runtime.Callers unwind (Thread.CallersPC) resolve
// the same access pc — the property that lets the epoch detector pull
// through the cheap walk while the reference detector keeps the
// baseline's capture without diverging on attribution.
type pcProbe struct {
	t   *testing.T
	pcs []uintptr
}

func (p *pcProbe) check(th *Thread) {
	fast, slow := th.PC(), th.CallersPC()
	if fast == 0 || fast != slow {
		p.t.Errorf("PC() = %#x, CallersPC() = %#x; want equal and nonzero", fast, slow)
	}
	p.pcs = append(p.pcs, fast)
}

func (p *pcProbe) OnRead(th *Thread, addr uint64)     { p.check(th) }
func (p *pcProbe) OnWrite(th *Thread, addr uint64)    { p.check(th) }
func (p *pcProbe) OnAcquire(tid int, mu *sched.Mutex) {}
func (p *pcProbe) OnRelease(tid int, mu *sched.Mutex) {}
func (p *pcProbe) OnBarrier(ordinal int)              {}

// TestPCUnwindersAgree pins the two pc-capture paths against each other
// through real accessor frames (Load, Store, LoadF, StoreF, from both the
// setup thread and workers) and checks the pcs resolve into this file.
func TestPCUnwindersAgree(t *testing.T) {
	probe := &pcProbe{t: t}
	var f uint64
	p := &funcProg{nt: 2,
		setup: func(th *Thread) {
			w := th.AllocStatic("static:w", 2, mem.KindWord)
			f = th.AllocStatic("static:f", 2, mem.KindFloat)
			th.Store(w, 7)
			_ = th.Load(w)
		},
		worker: func(th *Thread) {
			base := f + uint64(th.TID())*8
			th.StoreF(base, 1.5)
			_ = th.LoadF(base)
		},
	}
	m := NewMachine(Config{Threads: 2, ScheduleSeed: 1, Scheme: HWInc, Events: probe})
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if len(probe.pcs) != 6 {
		t.Fatalf("%d events observed, want 6", len(probe.pcs))
	}
	for _, pc := range probe.pcs {
		if file, line := SitePos(pc); file == "" || line == 0 {
			t.Errorf("pc %#x does not resolve to a source position", pc)
		}
	}
}
