//go:build !amd64

package sim

// fpchain is the no-op stub for architectures without the assembly
// frame-pointer walker; returning 0 frames makes Thread.PC fall back to
// the runtime.Callers-based unwind.
func fpchain(buf *[8]uintptr) int32 { return 0 }
