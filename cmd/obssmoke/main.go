// Command obssmoke is the observability smoke gate: it launches a real
// checkd process, drives one small campaign through it, and scrapes
// /metrics from the live daemon, failing on malformed Prometheus
// exposition or on missing key series. CI runs it next to the benchmark
// smoke step (`make obs-smoke`).
//
// Usage:
//
//	obssmoke [-checkd path/to/checkd] [-keep]
//
// Without -checkd the daemon binary is built into a temp directory with
// the local go toolchain.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"instantcheck/internal/farm"
	"instantcheck/internal/obs"
)

// requiredSeries are the metric families a post-campaign scrape must carry
// a sample of: job lifecycle, queue depth, store activity and hash path.
var requiredSeries = []string{
	"checkfarm_jobs_submitted_total",
	"checkfarm_jobs_finished_total",
	"checkfarm_jobs_running",
	"checkfarm_queue_depth",
	"checkfarm_runs_executed_total",
	"checkfarm_store_appends_total",
	"checkfarm_store_append_seconds_count",
	"instantcheck_stores_total",
	"instantcheck_stores_hashed_total",
	"instantcheck_checkpoints_total",
	"instantcheck_fastwindow_misses_total",
	"instantcheck_traverse_delta_sweeps_total",
	"instantcheck_traverse_dirty_pages_total",
	"instantcheck_storebuffer_flushes_total",
	"instantcheck_storebuffer_coalesced_total",
	"checkd_goroutines",
}

func main() {
	checkdPath := flag.String("checkd", "", "checkd binary (empty: go build ./cmd/checkd into a temp dir)")
	keep := flag.Bool("keep", false, "keep the temp store/binary directory for inspection")
	flag.Parse()
	log.SetPrefix("obssmoke: ")
	log.SetFlags(0)
	if err := run(*checkdPath, *keep); err != nil {
		log.Fatal(err)
	}
	log.Print("PASS")
}

func run(checkdPath string, keep bool) error {
	dir, err := os.MkdirTemp("", "obssmoke")
	if err != nil {
		return err
	}
	if keep {
		log.Printf("workdir %s", dir)
	} else {
		defer os.RemoveAll(dir)
	}

	if checkdPath == "" {
		checkdPath = filepath.Join(dir, "checkd")
		build := exec.Command("go", "build", "-o", checkdPath, "./cmd/checkd")
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("build checkd: %w", err)
		}
	}

	// A free port for the daemon: bind :0, remember, release.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	ln.Close()

	daemon := exec.Command(checkdPath,
		"-addr", addr,
		"-store", filepath.Join(dir, "farm.log"),
		"-pprof")
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("start checkd: %w", err)
	}
	defer func() {
		daemon.Process.Signal(syscall.SIGTERM)
		daemon.Wait()
	}()

	c := farm.NewClient("http://" + addr)
	if err := waitHealthy(c, 15*time.Second); err != nil {
		return err
	}

	// Scrape 1: a fresh daemon already serves a well-formed exposition.
	if _, err := scrapeAndLint(c); err != nil {
		return fmt.Errorf("fresh-daemon scrape: %w", err)
	}

	// Drive one small campaign end to end.
	job, err := c.Submit(context.Background(), farm.JobSpec{App: "fft", Runs: 4, Threads: 4, Small: true})
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	done, err := c.Wait(ctx, job.ID, 100*time.Millisecond)
	if err != nil {
		return fmt.Errorf("wait: %w", err)
	}
	if done.State != farm.JobDone {
		return fmt.Errorf("smoke job finished as %s: %s", done.State, done.Error)
	}

	// Scrape 2: lints clean and carries every required series.
	samples, err := scrapeAndLint(c)
	if err != nil {
		return fmt.Errorf("post-campaign scrape: %w", err)
	}
	have := map[string]bool{}
	for _, s := range samples {
		have[s.Name] = true
	}
	var missing []string
	for _, name := range requiredSeries {
		if !have[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("scrape is missing required series: %s", strings.Join(missing, ", "))
	}
	log.Printf("scraped %d samples from live daemon, all %d required series present",
		len(samples), len(requiredSeries))
	return nil
}

// waitHealthy polls /healthz until the daemon answers.
func waitHealthy(c *farm.Client, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		h, err := c.Health(context.Background())
		if err == nil && h.Status == "ok" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon not healthy after %v: %v", timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// scrapeAndLint fetches /metrics and validates the exposition format.
func scrapeAndLint(c *farm.Client) ([]obs.Sample, error) {
	text, err := c.MetricsText(context.Background())
	if err != nil {
		return nil, err
	}
	if err := obs.Lint(strings.NewReader(text)); err != nil {
		return nil, fmt.Errorf("malformed exposition: %w", err)
	}
	return obs.ParseExposition(strings.NewReader(text))
}
