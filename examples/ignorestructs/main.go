// Command ignorestructs demonstrates isolating small nondeterministic
// structures from the state hash (paper §2.2, §7.2): cholesky is
// nondeterministic because of its free-task list (linkage and stale
// payloads are schedule-dependent) even after FP rounding; deleting that
// one structure from the hash — the paper's minus_hash/plus_hash idiom —
// reveals that everything else is deterministic.
//
// It also shows the paper's custom-allocator observation: restoring
// cholesky's original racy pool allocator keeps the program
// nondeterministic even with the ignore set, because the pool is not
// covered by it.
package main

import (
	"fmt"
	"log"

	"instantcheck"
)

func main() {
	app := instantcheck.WorkloadByName("cholesky")
	opts := instantcheck.WorkloadOptions{}

	run := func(label string, camp instantcheck.Campaign, o instantcheck.WorkloadOptions) *instantcheck.Report {
		rep, err := instantcheck.Check(camp, app.Builder(o))
		if err != nil {
			log.Fatal(err)
		}
		verdict := "NONDETERMINISTIC"
		if rep.Deterministic() {
			verdict = "deterministic"
		}
		fmt.Printf("%-46s -> %s (%d/%d points ndet, first ndet run %s)\n",
			label, verdict, rep.NDetPoints, rep.Points(), orDash(rep.FirstNDetRun))
		return rep
	}

	fmt.Println("cholesky, 30 runs x 8 threads:")
	run("bit-by-bit", instantcheck.Campaign{}, opts)
	run("with FP rounding", instantcheck.Campaign{RoundFP: true}, opts)
	rep := run("rounding + free-list isolated", instantcheck.Campaign{
		RoundFP: true,
		Ignore:  app.IgnoreSet(),
	}, opts)
	if !rep.Deterministic() {
		log.Fatal("expected determinism after isolation")
	}

	fmt.Println()
	fmt.Println("the ignore set deletes these structures from every hash:")
	for _, r := range app.IgnoreSet().Rules() {
		what := "whole blocks"
		if r.Offsets != nil {
			what = fmt.Sprintf("offsets %v", r.Offsets)
		}
		fmt.Printf("  site %-24s (%s)\n", r.Site, what)
	}

	fmt.Println()
	fmt.Println("with the original racy custom allocator (paper: route it through")
	fmt.Println("malloc instead), isolation is not enough:")
	opts.RawCustomAlloc = true
	run("raw allocator, rounding + isolation", instantcheck.Campaign{
		RoundFP: true,
		Ignore:  app.IgnoreSet(),
	}, opts)
}

func orDash(n int) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprint(n)
}
