package farm

import (
	"reflect"
	"testing"

	"instantcheck/internal/ihash"
)

// mkLog builds a hash log of runs 0..runs-1 with cps checkpoints each,
// hashes derived from (run, ordinal) so any two logs built alike agree.
func mkLog(runs, cps int) []HashLogLine {
	var out []HashLogLine
	for run := 0; run < runs; run++ {
		for ord := 0; ord < cps; ord++ {
			label := "b"
			if ord == cps-1 {
				label = "end"
			}
			out = append(out, HashLogLine{Run: run, Ordinal: ord, Label: label,
				SH: ihash.Digest(uint64(run)*1000 + uint64(ord) + 7)})
		}
	}
	return out
}

// TestCompareTruncatedRun simulates a worker dying mid-run: log B carries
// run 1 as a strict prefix of A's. The old comparator called the run
// "differing" but left First nil, so nothing named the divergence; now the
// first checkpoint the shorter side lacks is reported as missing.
func TestCompareTruncatedRun(t *testing.T) {
	a := mkLog(3, 4)
	var b []HashLogLine
	for _, l := range a {
		if l.Run == 1 && l.Ordinal >= 2 {
			continue // B's run 1 was cut short
		}
		b = append(b, l)
	}
	res := CompareHashLogs(a, b)
	if res.Equal {
		t.Fatalf("truncated run compared equal: %+v", res)
	}
	if res.First == nil {
		t.Fatal("truncation produced no named divergence")
	}
	if res.First.Run != 1 || res.First.Ordinal != 2 || res.First.B != missingSide || res.First.A == missingSide {
		t.Errorf("first divergence = %+v, want run 1 ordinal 2 with B missing", res.First)
	}
	if !reflect.DeepEqual(res.DifferingRuns, []int{1}) {
		t.Errorf("differing runs = %v", res.DifferingRuns)
	}
	if res.RunsCompared != 3 {
		t.Errorf("runs compared = %d, want 3", res.RunsCompared)
	}

	// Mirror image: the truncated side as A.
	res = CompareHashLogs(b, a)
	if res.Equal || res.First == nil || res.First.A != missingSide {
		t.Errorf("mirrored truncation: %+v first=%+v", res, res.First)
	}
}

// TestCompareDivergentLengthLogs covers whole runs present on one side
// only — a campaign whose tail was lost with a killed worker. The diff
// must name the first missing run, not silently match the common prefix
// (the old comparator even reported Equal=true when both sides happened to
// hold the same NUMBER of runs with different indices).
func TestCompareDivergentLengthLogs(t *testing.T) {
	a := mkLog(4, 2)
	b := mkLog(2, 2) // B lost runs 2 and 3
	res := CompareHashLogs(a, b)
	if res.Equal {
		t.Fatalf("shorter log compared equal: %+v", res)
	}
	if res.RunsA != 4 || res.RunsB != 2 || res.RunsCompared != 2 {
		t.Errorf("run counts: %+v", res)
	}
	if !reflect.DeepEqual(res.OnlyA, []int{2, 3}) || len(res.OnlyB) != 0 {
		t.Errorf("only_a=%v only_b=%v", res.OnlyA, res.OnlyB)
	}
	if res.First == nil || res.First.Run != 2 || res.First.Ordinal != 0 || res.First.B != missingSide {
		t.Errorf("first divergence = %+v, want run 2 ordinal 0 missing on B", res.First)
	}
	if !reflect.DeepEqual(res.DifferingRuns, []int{2, 3}) {
		t.Errorf("differing runs = %v", res.DifferingRuns)
	}

	// Same run COUNT but disjoint indices: must not compare equal.
	var shifted []HashLogLine
	for _, l := range mkLog(2, 2) {
		l.Run += 2
		shifted = append(shifted, l)
	}
	res = CompareHashLogs(b, shifted)
	if res.Equal || res.RunsCompared != 0 || res.First == nil {
		t.Errorf("disjoint-run compare: %+v", res)
	}
	if res.First.Run != 0 || res.First.B != missingSide {
		t.Errorf("disjoint first divergence = %+v", res.First)
	}

	// An empty side diverges at the other side's first run.
	res = CompareHashLogs(nil, b)
	if res.Equal || res.First == nil || res.First.Run != 0 || res.First.A != missingSide {
		t.Errorf("empty-vs-log compare: %+v first=%+v", res, res.First)
	}
	// Two empty logs are (vacuously) equal.
	if res := CompareHashLogs(nil, nil); !res.Equal || res.First != nil {
		t.Errorf("empty-vs-empty: %+v", res)
	}
}

// TestCompareHashMismatchBeatsTruncation: when a run both diverges in
// content and lengths differ, the content mismatch is the named cause.
func TestCompareHashMismatchBeatsTruncation(t *testing.T) {
	a := mkLog(1, 4)
	b := append([]HashLogLine(nil), a[:3]...) // truncated...
	b[1].SH ^= 0xff                           // ...and divergent before the cut
	res := CompareHashLogs(a, b)
	if res.Equal || res.First == nil {
		t.Fatalf("compare: %+v", res)
	}
	if res.First.Ordinal != 1 || res.First.A == missingSide || res.First.B == missingSide {
		t.Errorf("first divergence = %+v, want the ordinal-1 hash mismatch", res.First)
	}
}

// TestPlanShards pins the lease unit: shards partition the run list in
// order, sized at most size, with the remainder in the last shard.
func TestPlanShards(t *testing.T) {
	need := []int{1, 2, 3, 5, 8, 9, 11}
	got := PlanShards(need, 3)
	want := [][]int{{1, 2, 3}, {5, 8, 9}, {11}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PlanShards(%v, 3) = %v, want %v", need, got, want)
	}
	if got := PlanShards(need, 0); !reflect.DeepEqual(got, [][]int{need}) {
		t.Errorf("size 0 = %v, want one shard", got)
	}
	if got := PlanShards(nil, 4); got != nil {
		t.Errorf("empty need = %v, want nil", got)
	}
	if got := PlanShards([]int{7}, 100); !reflect.DeepEqual(got, [][]int{{7}}) {
		t.Errorf("oversized shard = %v", got)
	}
	// Shards are copies: mutating one must not alias the caller's slice.
	shards := PlanShards(need, 2)
	shards[0][0] = 999
	if need[0] != 1 {
		t.Error("PlanShards aliases its input")
	}
}
